// Package ucqn processes unions of conjunctive queries with negation
// (UCQ¬) over sources with limited access patterns, implementing
// Nash & Ludäscher, "Processing Unions of Conjunctive Queries with
// Negation under Limited Access Patterns" (EDBT 2004).
//
// A source with access pattern R^α (α a word over {i, o}) can only be
// called by supplying values for every 'i' slot — the model of a web
// service operation. The package answers the questions the paper poses:
//
//   - Is a query executable as written, orderable, or feasible
//     (equivalent to some executable plan)? Feasibility is decided by
//     FEASIBLE (Π₂ᴾ-complete in general, with cheap certificates for the
//     common cases).
//   - If the query is not feasible, what are the best executable
//     under- and overestimate plans (PLAN*)?
//   - At runtime, is the answer complete anyway, and if not, how
//     complete is it at least (ANSWER*)?
//
// The surface syntax is Datalog-style:
//
//	q, err := ucqn.ParseQuery(`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)
//	ps, err := ucqn.ParsePatterns(`B^ioo B^oio C^oo L^o`)
//	res := ucqn.Feasible(q, ps)     // feasible via reordering
//
// See the examples/ directory for end-to-end usage including plan
// execution against simulated limited-access sources.
package ucqn

import (
	"context"

	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lichang"
	"repro/internal/logic"
	"repro/internal/minimize"
	"repro/internal/parser"
	"repro/internal/sources"
)

// Core representation types.
type (
	// Term is a variable, constant, or the distinguished null.
	Term = logic.Term
	// Atom is a predicate applied to terms.
	Atom = logic.Atom
	// Literal is an atom or its negation.
	Literal = logic.Literal
	// Rule is a conjunctive query with negation (CQ¬) in rule form.
	Rule = logic.CQ
	// Query is a union of CQ¬ rules sharing a head (UCQ¬).
	Query = logic.UCQ
	// Subst is a substitution from variable names to terms.
	Subst = logic.Subst
)

// Access-pattern types.
type (
	// Pattern is a word over {i, o}, e.g. "oio" in B^oio.
	Pattern = access.Pattern
	// PatternSet maps relations to their declared access patterns.
	PatternSet = access.Set
	// AdornedLiteral is a literal with its chosen access pattern — one
	// step of an execution plan.
	AdornedLiteral = access.AdornedLiteral
)

// Planning and feasibility types.
type (
	// PlanStar is the PLAN* output: underestimate and overestimate plans.
	PlanStar = core.PlanStar
	// RuleAnalysis is PLAN*'s per-rule decomposition into answerable and
	// unanswerable parts.
	RuleAnalysis = core.RuleAnalysis
	// FeasibleResult is FEASIBLE's verdict with its explanation.
	FeasibleResult = core.FeasibleResult
	// Verdict says which certificate decided feasibility.
	Verdict = core.Verdict
)

// Verdict values.
const (
	VerdictUnderEqualsOver    = core.VerdictUnderEqualsOver
	VerdictNullInOverestimate = core.VerdictNullInOverestimate
	VerdictContainment        = core.VerdictContainment
)

// Runtime types.
type (
	// Instance is an in-memory database instance.
	Instance = engine.Instance
	// Catalog is a set of callable limited-access sources.
	Catalog = sources.Catalog
	// Source is a callable relation with limited access patterns.
	Source = sources.Source
	// Table is an in-memory metered source.
	Table = sources.Table
	// Tuple is a row of constants as returned by sources.
	Tuple = sources.Tuple
	// SourceStats is a source's traffic accounting.
	SourceStats = sources.Stats
	// Rel is a set of answer rows.
	Rel = engine.Rel
	// Row is one answer tuple (values or nulls).
	Row = engine.Row
	// Value is a constant answer value or null.
	Value = engine.Value
	// AnswerStar is the ANSWER* runtime report.
	AnswerStar = engine.AnswerStar
	// DomResult is the outcome of domain enumeration.
	DomResult = engine.DomResult
)

// Var returns a variable term.
func Var(name string) Term { return logic.Var(name) }

// Const returns a constant term.
func Const(name string) Term { return logic.Const(name) }

// Null is the distinguished null term.
var Null = logic.Null

// ParseQuery parses one or more Datalog-style rules into a UCQ¬ query.
func ParseQuery(src string) (Query, error) { return parser.ParseUCQ(src) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(src string) Query { return parser.MustUCQ(src) }

// ParseRule parses exactly one rule into a CQ¬.
func ParseRule(src string) (Rule, error) { return parser.ParseCQ(src) }

// MustParseRule is ParseRule that panics on error.
func MustParseRule(src string) Rule { return parser.MustCQ(src) }

// ParsePatterns parses access-pattern declarations like "B^ioo C^oo".
func ParsePatterns(src string) (*PatternSet, error) { return parser.ParsePatterns(src) }

// MustParsePatterns is ParsePatterns that panics on error.
func MustParsePatterns(src string) *PatternSet { return parser.MustPatterns(src) }

// NewPatternSet returns an empty pattern set.
func NewPatternSet() *PatternSet { return access.NewSet() }

// Executable reports whether the query is executable as written
// (Definition 3 of the paper).
func Executable(q Query, ps *PatternSet) bool { return core.Executable(q, ps) }

// Orderable reports whether each rule admits an executable reordering
// (Definition 4); quadratic time.
func Orderable(q Query, ps *PatternSet) bool { return core.OrderableUCQ(q, ps) }

// Reorder returns the executable reordering chosen by ANSWERABLE, and
// whether all rules were orderable.
func Reorder(q Query, ps *PatternSet) (Query, bool) { return core.ReorderUCQ(q, ps) }

// AnswerablePart computes ans(Q), the paper's Figure 1 algorithm applied
// rule-wise.
func AnswerablePart(q Query, ps *PatternSet) Query { return core.AnswerableUCQ(q, ps) }

// Plan runs PLAN* (Figure 2): executable underestimate and overestimate
// plans with per-rule analysis; quadratic time.
func Plan(q Query, ps *PatternSet) PlanStar { return core.ComputePlans(q, ps) }

// Feasible runs FEASIBLE (Figure 3): exact feasibility, deciding by
// cheap certificates when possible and by the Π₂ᴾ-complete containment
// test otherwise.
func Feasible(q Query, ps *PatternSet) FeasibleResult { return core.Feasible(q, ps) }

// FeasibleLimited is Feasible with a bound on containment search nodes;
// it returns ErrBudget if the bound is hit.
func FeasibleLimited(q Query, ps *PatternSet, maxNodes int) (FeasibleResult, error) {
	return core.FeasibleLimited(q, ps, maxNodes)
}

// ErrBudget is returned by the *Limited functions when the search budget
// is exhausted.
var ErrBudget = containment.ErrBudget

// ExecutionOrder returns the adorned steps of an executable rule.
func ExecutionOrder(r Rule, ps *PatternSet) ([]AdornedLiteral, error) {
	return core.ExecutionOrder(r, ps)
}

// Contained reports P ⊑ Q for UCQ¬ queries (Theorems 12/13 of the
// paper; Chandra–Merlin / Sagiv–Yannakakis on the negation-free classes).
func Contained(p, q Query) bool { return containment.ContainedUCQ(p, q) }

// Equivalent reports logical equivalence of two queries.
func Equivalent(p, q Query) bool { return containment.Equivalent(p, q) }

// Satisfiable reports whether some rule body is satisfiable
// (Proposition 8).
func Satisfiable(q Query) bool { return containment.SatisfiableUCQ(q) }

// Minimize returns a minimal equivalent of the rule (its core when
// negation-free).
func Minimize(r Rule) Rule { return minimize.CQ(r) }

// MinimizeUnion returns a minimal equivalent union: minimized rules with
// redundant disjuncts removed.
func MinimizeUnion(q Query) Query { return minimize.UCQ(q) }

// Li–Chang baseline algorithms (Sections 5.3–5.4 of the paper). They are
// defined for the negation-free classes and return an error on CQ¬ input.
var (
	CQStable      = lichang.CQStable
	CQStableStar  = lichang.CQStableStar
	UCQStable     = lichang.UCQStable
	UCQStableStar = lichang.UCQStableStar
)

// NewInstance returns an empty database instance.
func NewInstance() *Instance { return engine.NewInstance() }

// NewRel returns an empty answer relation.
func NewRel() *Rel { return engine.NewRel() }

// RowOf builds an answer row of constant values.
func RowOf(vals ...string) Row { return engine.RowOf(vals...) }

// NewTable builds an in-memory metered source.
func NewTable(name string, arity int, patterns []Pattern, rows []Tuple) (*Table, error) {
	return sources.NewTable(name, arity, patterns, rows)
}

// NewCatalog builds a catalog from sources.
func NewCatalog(srcs ...Source) (*Catalog, error) { return sources.NewCatalog(srcs...) }

// Answer evaluates an executable plan through the catalog's limited
// sources.
//
// Deprecated: use Exec, which takes a context. Answer(q, ps, cat) is
// Exec(context.Background(), q, ps, cat) followed by Result.Rel.
func Answer(q Query, ps *PatternSet, cat *Catalog) (*Rel, error) {
	res, err := Exec(context.Background(), q, ps, cat)
	if err != nil {
		return nil, err
	}
	return res.Rel()
}

// AnswerNaive evaluates the query directly over the instance, ignoring
// access patterns (ground truth for experiments).
//
// Deprecated: use Exec with WithNaive(in) (ps and cat may be nil).
func AnswerNaive(q Query, in *Instance) (*Rel, error) {
	res, err := Exec(context.Background(), q, nil, nil, WithNaive(in))
	if err != nil {
		return nil, err
	}
	return res.Rel()
}

// RunAnswerStar runs ANSWER* (Figure 4): runtime under/overestimates
// with the completeness report.
//
// Deprecated: use Exec with WithAnswerStar and read Result.Star; or call
// RunAnswerStar on a Runtime for the context-taking form.
func RunAnswerStar(q Query, ps *PatternSet, cat *Catalog) (AnswerStar, error) {
	res, err := Exec(context.Background(), q, ps, cat, WithAnswerStar())
	if err != nil {
		return AnswerStar{}, err
	}
	star, _ := res.Star()
	return star, nil
}

// ImproveUnder upgrades an ANSWER* underestimate with domain enumeration
// views (Example 8 of the paper). maxCalls bounds the enumeration.
//
// Deprecated: use Exec with WithImproveUnder(maxCalls) for the one-call
// path, or call ImproveUnder on a Runtime for the context-taking form
// over an existing AnswerStar.
func ImproveUnder(a AnswerStar, ps *PatternSet, cat *Catalog, maxCalls int) (*Rel, Query, DomResult, error) {
	return engine.DefaultRuntime().ImproveUnder(context.Background(), a, ps, cat, maxCalls)
}

// EnumerateDomain computes the reachable-domain view dom(x) by calling
// sources to a fixpoint ([DL97]; Example 8).
func EnumerateDomain(cat *Catalog, seeds []string, maxCalls int) DomResult {
	return engine.EnumerateDomain(cat, seeds, maxCalls)
}

// ReduceContToFeasible is the Theorem 18 reduction: P ⊑ Q iff the
// returned query is feasible under the returned patterns.
func ReduceContToFeasible(p, q Query) (Query, *PatternSet, error) {
	return containment.ReduceContToFeasible(p, q)
}

// ReduceContCQToFeasible is the Proposition 20 reduction for single
// rules: P ⊑ Q iff the returned rule is feasible under the returned
// patterns.
func ReduceContCQToFeasible(p, q Rule) (Rule, *PatternSet, error) {
	return containment.ReduceContCQToFeasible(p, q)
}
