package ucqn

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func TestExplainFeasibleFacade(t *testing.T) {
	// Example 9 is feasible via containment; the explanation must carry
	// a verifiable witness.
	q := MustParseQuery(`Q(x) :- F(x), B(x), B(y), F(z).`)
	ps := MustParsePatterns(`F^o B^i`)
	ex := ExplainFeasible(q, ps)
	if !ex.Result.Feasible || ex.Result.Verdict != VerdictContainment {
		t.Fatalf("explanation = %+v", ex.Result)
	}
	if len(ex.Witnesses) != 1 {
		t.Fatalf("witnesses = %d", len(ex.Witnesses))
	}
	over := ex.Result.Plans.Over.Rules[0]
	if err := VerifyWitness(over, q, ex.Witnesses[0]); err != nil {
		t.Errorf("witness does not verify: %v", err)
	}
	// Fast-path verdicts carry no witnesses.
	ex2 := ExplainFeasible(MustParseQuery(`Q(x) :- F(x).`), ps)
	if ex2.Result.Verdict != VerdictUnderEqualsOver || len(ex2.Witnesses) != 0 {
		t.Errorf("fast path explanation = %+v", ex2)
	}
}

func TestExplainContainedFacade(t *testing.T) {
	p := MustParseRule(`Q(x) :- R(x).`)
	q := MustParseQuery("Q(x) :- R(x), not S(x).\nQ(x) :- R(x), S(x).")
	w, ok := ExplainContained(p, q)
	if !ok {
		t.Fatal("containment expected")
	}
	if err := VerifyWitness(p, q, w); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if !strings.Contains(w.String(), "conjoin") {
		t.Errorf("witness rendering: %s", w)
	}
}

func TestAnswerProfiledFacade(t *testing.T) {
	in := NewInstance().MustAdd("R", "a", "k").MustAdd("T", "k", "v")
	ps := MustParsePatterns(`R^oo T^io`)
	cat, err := in.Catalog(ps)
	if err != nil {
		t.Fatal(err)
	}
	rel, prof, err := execProfiled(MustParseQuery(`Q(x, y) :- R(x, z), T(z, y).`), ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || prof.TotalCalls() != 2 {
		t.Errorf("rel=%d calls=%d", rel.Len(), prof.TotalCalls())
	}
}

// Semantic differential test: when the checker claims P ⊑ Q, answers
// must be contained on every random instance; when it denies it, a
// random search often finds a counterexample (and any counterexample
// found must coincide with a denial).
func TestContainmentSemanticSoundness(t *testing.T) {
	g := workload.New(202)
	s := g.Schema(3, 1, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 3, ConstProb: 0.1, HeadVars: 1, DomainSize: 3}
	claims, refuted := 0, 0
	for i := 0; i < 80; i++ {
		p := g.UCQ(s, 1, cfg)
		q := g.UCQ(s, 2, cfg)
		claimed := Contained(p, q)
		foundCounterexample := false
		for trial := 0; trial < 15; trial++ {
			in := engine.NewInstance()
			if err := in.LoadFacts(g.Facts(s, 4, 3)); err != nil {
				t.Fatal(err)
			}
			ap, err := execNaive(p, in)
			if err != nil {
				t.Fatal(err)
			}
			aq, err := execNaive(q, in)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range ap.Rows() {
				if !aq.Contains(row) {
					foundCounterexample = true
				}
			}
			if foundCounterexample {
				break
			}
		}
		if claimed {
			claims++
			if foundCounterexample {
				t.Fatalf("checker claims %s ⊑ %s but a counterexample instance exists", p, q)
			}
		} else if foundCounterexample {
			refuted++
		}
	}
	if claims == 0 {
		t.Error("no positive containment claims exercised; generator mis-tuned")
	}
	if refuted == 0 {
		t.Error("no denial was confirmed by a counterexample; test too weak")
	}
}
