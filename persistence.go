package ucqn

// Persistent answer-cache facade: WithPersistence gives an Exec call a
// crash-safe, warm-restarting query cache backed by a directory, and
// OpenQueryCache exposes the same cache for callers that want to hold
// it (share it with a server, close it on shutdown). Caches are
// process-wide per directory: every Exec and OpenQueryCache against the
// same dir shares one cache, so concurrent callers see each other's
// entries and the on-disk log has a single writer.

import (
	"path/filepath"
	"sync"

	"repro/internal/qcache"
	"repro/internal/qcache/persist"
)

// PersistRecoveryStats reports what opening a persistence directory
// found on disk (records recovered, corrupt or stale records dropped,
// torn bytes truncated).
type PersistRecoveryStats = persist.RecoveryStats

// persistentCaches is the process-wide registry of directory-backed
// caches. Guarded by persistentMu; entries are never removed (a cache,
// like its directory, lives as long as the process unless explicitly
// closed).
var (
	persistentMu     sync.Mutex
	persistentCaches = map[string]*QueryCache{}
)

// OpenQueryCache returns the process-wide persistent query cache for
// dir, creating it — and recovering whatever answer entries survived in
// the directory — on first use. Corrupt or torn on-disk state is
// dropped record-by-record, never an error: the only errors are real
// filesystem failures. opt applies only when this call creates the
// cache; later calls for the same directory return the existing cache
// unchanged. Call ClosePersist on the cache during graceful shutdown to
// make the final fsync batch durable.
func OpenQueryCache(dir string, opt QueryCacheOptions) (*QueryCache, error) {
	key, err := filepath.Abs(dir)
	if err != nil {
		key = dir
	}
	persistentMu.Lock()
	defer persistentMu.Unlock()
	if qc, ok := persistentCaches[key]; ok {
		return qc, nil
	}
	qc, _, err := qcache.OpenPersistent(dir, opt, persist.Options{})
	if err != nil {
		return nil, err
	}
	persistentCaches[key] = qc
	return qc, nil
}

// WithPersistence routes this Exec call through the persistent query
// cache for dir (see OpenQueryCache): answers survive restarts, and
// recovery tolerates crashes and corruption by dropping exactly the
// unverifiable records. It is WithQueryCache with a durable cache, and
// the two do not combine — pass one or the other. Catalogs must carry a
// stable label (Catalog.SetPersistentID) for their answers to persist;
// unlabeled catalogs get plain in-memory caching.
func WithPersistence(dir string) ExecOption {
	return func(c *execConfig) { c.persistDir = dir }
}
