// Package fakedb is an in-repo database/sql driver for exercising the
// SQL adapter without an external database. It understands exactly the
// statement shapes internal/adapter generates —
//
//	SELECT c1, c2 FROM t
//	SELECT c1, c2 FROM t WHERE a = ? [AND b = ?]
//	SELECT c1, c2 FROM t WHERE a IN (?, ?, ...)
//	SELECT c1, c2 FROM t WHERE (a = ? AND b = ?) OR (...)
//
// — over named in-memory stores (the DSN names the store), with
// injectable latency and fault bursts and per-store counters for
// queries and approximate bytes on the wire. Anything outside those
// shapes is a loud error: the point is verifying the adapter's
// generated SQL, not emulating a database.
package fakedb

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func init() {
	sql.Register("fakedb", fdbDriver{})
}

var (
	storesMu sync.Mutex
	stores   = map[string]*Store{}
)

// StoreFor returns the named store, creating it on first use. The DSN
// of a fakedb connection ("sql://fakedb/<name>") selects the store, so
// tests load data through the same handle the adapter queries.
func StoreFor(name string) *Store {
	storesMu.Lock()
	defer storesMu.Unlock()
	st, ok := stores[name]
	if !ok {
		st = &Store{tables: map[string]*table{}}
		stores[name] = st
	}
	return st
}

// Store is one named in-memory database.
type Store struct {
	mu      sync.Mutex
	tables  map[string]*table
	latency time.Duration
	pending []error

	queries atomic.Int64
	bytes   atomic.Int64
}

type table struct {
	cols []string
	rows [][]string
}

// Load replaces a table's contents.
func (s *Store) Load(name string, cols []string, rows [][]string) {
	t := &table{cols: append([]string(nil), cols...)}
	for _, r := range rows {
		t.rows = append(t.rows, append([]string(nil), r...))
	}
	s.mu.Lock()
	s.tables[name] = t
	s.mu.Unlock()
}

// SetLatency makes every query sleep d before answering (honoring the
// query context).
func (s *Store) SetLatency(d time.Duration) {
	s.mu.Lock()
	s.latency = d
	s.mu.Unlock()
}

// FailNext makes the next n queries fail with err (a transient backend
// outage when err looks like a connection problem).
func (s *Store) FailNext(n int, err error) {
	s.mu.Lock()
	s.pending = s.pending[:0]
	for i := 0; i < n; i++ {
		s.pending = append(s.pending, err)
	}
	s.mu.Unlock()
}

// Queries returns the number of queries executed against the store
// (failed ones included) — the backend-side round-trip count.
func (s *Store) Queries() int64 { return s.queries.Load() }

// BytesOnWire approximates payload bytes transferred: statement text
// plus argument values plus every result cell.
func (s *Store) BytesOnWire() int64 { return s.bytes.Load() }

// Reset clears counters and injected faults (data stays loaded).
func (s *Store) Reset() {
	s.mu.Lock()
	s.pending = s.pending[:0]
	s.latency = 0
	s.mu.Unlock()
	s.queries.Store(0)
	s.bytes.Store(0)
}

// fdbDriver implements driver.Driver.
type fdbDriver struct{}

func (fdbDriver) Open(dsn string) (driver.Conn, error) {
	return &conn{store: StoreFor(dsn)}, nil
}

// conn implements driver.Conn and driver.QueryerContext; database/sql
// routes QueryContext straight here, so Prepare never runs for the
// adapter's statements.
type conn struct{ store *Store }

func (c *conn) Prepare(q string) (driver.Stmt, error) {
	return nil, fmt.Errorf("fakedb: prepared statements not supported (got %q)", q)
}

func (c *conn) Close() error { return nil }
func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("fakedb: transactions not supported")
}

// QueryContext implements driver.QueryerContext.
func (c *conn) QueryContext(ctx context.Context, q string, args []driver.NamedValue) (driver.Rows, error) {
	st := c.store
	st.queries.Add(1)
	st.mu.Lock()
	lat := st.latency
	var fault error
	if len(st.pending) > 0 {
		fault = st.pending[0]
		st.pending = st.pending[1:]
	}
	st.mu.Unlock()
	if lat > 0 {
		timer := time.NewTimer(lat)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fault != nil {
		return nil, fault
	}
	vals := make([]string, len(args))
	wire := int64(len(q))
	for i, a := range args {
		s, ok := a.Value.(string)
		if !ok {
			return nil, fmt.Errorf("fakedb: non-string argument %T", a.Value)
		}
		vals[i] = s
		wire += int64(len(s))
	}
	cols, rows, err := st.run(q, vals)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		for _, cell := range r {
			wire += int64(len(cell))
		}
	}
	st.bytes.Add(wire)
	return &resultRows{cols: cols, rows: rows}, nil
}

// run parses and evaluates one of the supported statement shapes.
func (s *Store) run(q string, args []string) ([]string, [][]string, error) {
	rest, ok := strings.CutPrefix(q, "SELECT ")
	if !ok {
		return nil, nil, fmt.Errorf("fakedb: unsupported statement %q", q)
	}
	colPart, rest, ok := strings.Cut(rest, " FROM ")
	if !ok {
		return nil, nil, fmt.Errorf("fakedb: no FROM in %q", q)
	}
	cols := strings.Split(colPart, ", ")
	tblName, where, hasWhere := strings.Cut(rest, " WHERE ")

	s.mu.Lock()
	tbl, found := s.tables[tblName]
	s.mu.Unlock()
	if !found {
		return nil, nil, fmt.Errorf("fakedb: no table %q", tblName)
	}
	colIdx := func(name string) (int, error) {
		for i, c := range tbl.cols {
			if c == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("fakedb: no column %q in table %q", name, tblName)
	}

	// Compile the WHERE clause to a row predicate.
	match := func([]string) bool { return true }
	switch {
	case !hasWhere:
	case strings.Contains(where, " IN ("):
		colName, list, _ := strings.Cut(where, " IN (")
		list = strings.TrimSuffix(list, ")")
		n := len(strings.Split(list, ", "))
		if n != len(args) {
			return nil, nil, fmt.Errorf("fakedb: %d placeholders for %d args in %q", n, len(args), q)
		}
		idx, err := colIdx(colName)
		if err != nil {
			return nil, nil, err
		}
		want := make(map[string]bool, len(args))
		for _, v := range args {
			want[v] = true
		}
		match = func(row []string) bool { return want[row[idx]] }
	case strings.HasPrefix(where, "("):
		// OR of parenthesized conjunctions.
		type conj struct {
			idx  []int
			vals []string
		}
		var conjs []conj
		argPos := 0
		for _, clause := range strings.Split(where, " OR ") {
			clause = strings.TrimPrefix(clause, "(")
			clause = strings.TrimSuffix(clause, ")")
			var cj conj
			for _, term := range strings.Split(clause, " AND ") {
				colName, ok := strings.CutSuffix(term, " = ?")
				if !ok {
					return nil, nil, fmt.Errorf("fakedb: unsupported term %q in %q", term, q)
				}
				idx, err := colIdx(colName)
				if err != nil {
					return nil, nil, err
				}
				if argPos >= len(args) {
					return nil, nil, fmt.Errorf("fakedb: too few args for %q", q)
				}
				cj.idx = append(cj.idx, idx)
				cj.vals = append(cj.vals, args[argPos])
				argPos++
			}
			conjs = append(conjs, cj)
		}
		if argPos != len(args) {
			return nil, nil, fmt.Errorf("fakedb: %d args for %d placeholders in %q", len(args), argPos, q)
		}
		match = func(row []string) bool {
			for _, cj := range conjs {
				hit := true
				for k, idx := range cj.idx {
					if row[idx] != cj.vals[k] {
						hit = false
						break
					}
				}
				if hit {
					return true
				}
			}
			return false
		}
	default:
		// Plain conjunction: a = ? [AND b = ?].
		terms := strings.Split(where, " AND ")
		if len(terms) != len(args) {
			return nil, nil, fmt.Errorf("fakedb: %d terms for %d args in %q", len(terms), len(args), q)
		}
		var idxs []int
		for _, term := range terms {
			colName, ok := strings.CutSuffix(term, " = ?")
			if !ok {
				return nil, nil, fmt.Errorf("fakedb: unsupported term %q in %q", term, q)
			}
			idx, err := colIdx(colName)
			if err != nil {
				return nil, nil, err
			}
			idxs = append(idxs, idx)
		}
		match = func(row []string) bool {
			for k, idx := range idxs {
				if row[idx] != args[k] {
					return false
				}
			}
			return true
		}
	}

	// Project the selected columns from every matching row.
	proj := make([]int, len(cols))
	for i, c := range cols {
		idx, err := colIdx(c)
		if err != nil {
			return nil, nil, err
		}
		proj[i] = idx
	}
	var out [][]string
	for _, row := range tbl.rows {
		if !match(row) {
			continue
		}
		r := make([]string, len(proj))
		for i, idx := range proj {
			r[i] = row[idx]
		}
		out = append(out, r)
	}
	return cols, out, nil
}

// resultRows implements driver.Rows.
type resultRows struct {
	cols []string
	rows [][]string
	pos  int
}

func (r *resultRows) Columns() []string { return r.cols }
func (r *resultRows) Close() error      { return nil }

func (r *resultRows) Next(dest []driver.Value) error {
	if r.pos >= len(r.rows) {
		return io.EOF
	}
	for i, v := range r.rows[r.pos] {
		dest[i] = v
	}
	r.pos++
	return nil
}
