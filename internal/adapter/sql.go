package adapter

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/sources"
)

func init() {
	Register("sql", openSQL)
}

// SQL adapts a relational table behind database/sql to a limited-access
// source: an adorned access compiles to a parameterized
//
//	SELECT cols FROM table WHERE in-col = ? [AND ...]
//
// and a whole binding group compiles to ONE round trip per MaxBatch
// chunk —
//
//	SELECT cols FROM table WHERE in-col IN (?, ?, ...)
//
// for single-input patterns, an OR of per-vector conjunctions for
// multi-input ones — with the returned rows demultiplexed back to their
// binding by input-column value. Everything the engine sees is the
// ordinary Source contract: the pushdown only changes how many wire
// round trips a step costs.
//
// Driver and DSN come from the backend URL ("sql://driver/dsn"); the
// driver must be registered with database/sql by the importing program
// (tests and the daemons use the in-repo fakedb driver; real
// deployments blank-import their driver of choice). It is safe for
// concurrent use.
type SQL struct {
	name     string
	arity    int
	patterns []access.Pattern
	declared map[access.Pattern]bool
	table    string
	cols     []string
	maxBatch int
	db       *sql.DB

	mu    sync.Mutex
	stats sources.Stats
}

// openSQL builds a SQL adapter from a spec (scheme "sql").
func openSQL(spec Spec) (sources.Source, error) {
	rest := strings.TrimPrefix(spec.Backend, "sql://")
	driver, dsn, ok := strings.Cut(rest, "/")
	if !ok || driver == "" || dsn == "" {
		return nil, fmt.Errorf("adapter: source %s: sql backend %q must be sql://driver/dsn", spec.Name, spec.Backend)
	}
	ps, err := spec.patterns()
	if err != nil {
		return nil, err
	}
	if spec.Table == "" {
		return nil, fmt.Errorf("adapter: source %s: sql backend needs a table", spec.Name)
	}
	if len(spec.Columns) != spec.Arity {
		return nil, fmt.Errorf("adapter: source %s: %d columns for arity %d", spec.Name, len(spec.Columns), spec.Arity)
	}
	for _, ident := range append([]string{spec.Table}, spec.Columns...) {
		if !validIdent(ident) {
			return nil, fmt.Errorf("adapter: source %s: %q is not a plain SQL identifier", spec.Name, ident)
		}
	}
	db, err := sql.Open(driver, dsn)
	if err != nil {
		return nil, fmt.Errorf("adapter: source %s: opening %s: %w", spec.Name, spec.Backend, err)
	}
	a := &SQL{
		name:     spec.Name,
		arity:    spec.Arity,
		patterns: ps,
		declared: map[access.Pattern]bool{},
		table:    spec.Table,
		cols:     append([]string(nil), spec.Columns...),
		maxBatch: spec.maxBatch(),
		db:       db,
	}
	for _, p := range ps {
		a.declared[p] = true
	}
	return a, nil
}

// validIdent accepts exactly the unquoted-identifier charset, which is
// the only thing ever interpolated into generated SQL (values always
// travel as placeholders).
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Name implements Source.
func (a *SQL) Name() string { return a.name }

// Arity implements Source.
func (a *SQL) Arity() int { return a.arity }

// Patterns implements Source.
func (a *SQL) Patterns() []access.Pattern {
	return append([]access.Pattern(nil), a.patterns...)
}

// DB exposes the underlying pool (for tests and shutdown).
func (a *SQL) DB() *sql.DB { return a.db }

// Close releases the connection pool.
func (a *SQL) Close() error { return a.db.Close() }

// checkContract enforces the access-pattern restriction at the call
// boundary, like every in-memory source.
func (a *SQL) checkContract(p access.Pattern, nInputs int) error {
	if !a.declared[p] {
		return fmt.Errorf("adapter: source %s does not support pattern %s (has %v)", a.name, p, a.patterns)
	}
	if nInputs != p.InputCount() {
		return fmt.Errorf("adapter: call to %s^%s with %d inputs, want %d", a.name, p, nInputs, p.InputCount())
	}
	return nil
}

// inCols returns the column names of p's input positions, in slot order.
func (a *SQL) inCols(p access.Pattern) []string {
	var cols []string
	for j := 0; j < p.Arity(); j++ {
		if p.Input(j) {
			cols = append(cols, a.cols[j])
		}
	}
	return cols
}

// Call implements Source.
func (a *SQL) Call(p access.Pattern, inputs []string) ([]sources.Tuple, error) {
	return a.CallContext(context.Background(), p, inputs)
}

// CallContext implements ContextSource: one parameterized SELECT.
func (a *SQL) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]sources.Tuple, error) {
	if err := a.checkContract(p, len(inputs)); err != nil {
		return nil, err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "SELECT %s FROM %s", strings.Join(a.cols, ", "), a.table)
	args := make([]any, 0, len(inputs))
	for k, col := range a.inCols(p) {
		if k == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		sb.WriteString(col + " = ?")
		args = append(args, inputs[k])
	}
	start := time.Now()
	rows, err := a.query(ctx, sb.String(), args)
	a.meter(1, 1, len(rows), time.Since(start))
	return rows, err
}

// CallBatch implements sources.BatchSource: the whole binding group in
// ceil(n/MaxBatch) round trips, results demultiplexed back per vector
// by their input-column values.
func (a *SQL) CallBatch(ctx context.Context, p access.Pattern, inputs [][]string) ([][]sources.Tuple, error) {
	for _, in := range inputs {
		if err := a.checkContract(p, len(in)); err != nil {
			return nil, err
		}
	}
	out := make([][]sources.Tuple, len(inputs))
	nin := p.InputCount()
	if nin == 0 {
		// All-output: one SELECT answers every vector identically.
		start := time.Now()
		rows, err := a.query(ctx, fmt.Sprintf("SELECT %s FROM %s", strings.Join(a.cols, ", "), a.table), nil)
		a.meter(len(inputs), 1, len(rows)*len(inputs), time.Since(start))
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i] = copyRows(rows)
		}
		return out, nil
	}
	// Input slot j of the pattern is relation position inPos[j].
	inPos := make([]int, 0, nin)
	for j := 0; j < p.Arity(); j++ {
		if p.Input(j) {
			inPos = append(inPos, j)
		}
	}
	inCols := a.inCols(p)
	for lo := 0; lo < len(inputs); lo += a.maxBatch {
		hi := lo + a.maxBatch
		if hi > len(inputs) {
			hi = len(inputs)
		}
		chunk := inputs[lo:hi]
		var sb strings.Builder
		fmt.Fprintf(&sb, "SELECT %s FROM %s WHERE ", strings.Join(a.cols, ", "), a.table)
		args := make([]any, 0, len(chunk)*nin)
		if nin == 1 {
			sb.WriteString(inCols[0] + " IN (")
			for k, in := range chunk {
				if k > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString("?")
				args = append(args, in[0])
			}
			sb.WriteString(")")
		} else {
			for k, in := range chunk {
				if k > 0 {
					sb.WriteString(" OR ")
				}
				sb.WriteString("(")
				for c, col := range inCols {
					if c > 0 {
						sb.WriteString(" AND ")
					}
					sb.WriteString(col + " = ?")
					args = append(args, in[c])
				}
				sb.WriteString(")")
			}
		}
		// Demux map: input key -> the chunk's vector indexes wanting it
		// (duplicates within a batch each get the rows).
		want := make(map[string][]int, len(chunk))
		for k, in := range chunk {
			want[strings.Join(in, "\x1f")] = append(want[strings.Join(in, "\x1f")], lo+k)
		}
		start := time.Now()
		rows, err := a.query(ctx, sb.String(), args)
		if err != nil {
			a.meter(len(chunk), 1, 0, time.Since(start))
			return nil, err
		}
		tuples := 0
		keyParts := make([]string, nin)
		for _, row := range rows {
			for c, pos := range inPos {
				keyParts[c] = row[pos]
			}
			for _, i := range want[strings.Join(keyParts, "\x1f")] {
				out[i] = append(out[i], append(sources.Tuple(nil), row...))
				tuples++
			}
		}
		a.meter(len(chunk), 1, tuples, time.Since(start))
	}
	return out, nil
}

// query runs one SELECT and scans every row into string tuples. Driver
// and connection failures are transient (the backend may come back);
// context errors pass through untouched so the engine's timeout and
// cancellation classification work exactly as for in-memory sources.
func (a *SQL) query(ctx context.Context, q string, args []any) ([]sources.Tuple, error) {
	rs, err := a.db.QueryContext(ctx, q, args...)
	if err != nil {
		return nil, a.wireErr(err)
	}
	defer rs.Close()
	var out []sources.Tuple
	vals := make([]sql.NullString, a.arity)
	ptrs := make([]any, a.arity)
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	for rs.Next() {
		if err := rs.Scan(ptrs...); err != nil {
			return nil, a.wireErr(err)
		}
		t := make(sources.Tuple, a.arity)
		for i := range vals {
			t[i] = vals[i].String
		}
		out = append(out, t)
	}
	if err := rs.Err(); err != nil {
		return nil, a.wireErr(err)
	}
	return out, nil
}

func (a *SQL) wireErr(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return sources.Transient(fmt.Errorf("adapter: sql %s: %w", a.name, err))
}

// meter folds one round trip into the traffic counters: calls is the
// logical calls serviced, trips the wire round trips, tuples the tuples
// delivered to callers.
func (a *SQL) meter(calls, trips, tuples int, el time.Duration) {
	a.mu.Lock()
	a.stats.Calls += calls
	a.stats.TuplesReturned += tuples
	if trips > 0 {
		a.stats.RoundTrips += trips
		if calls > trips {
			a.stats.BatchedCalls += calls
		}
		a.stats.Observe(el)
	}
	a.mu.Unlock()
}

// StatsSnapshot implements StatsReporter.
func (a *SQL) StatsSnapshot() sources.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ResetStats implements StatsReporter.
func (a *SQL) ResetStats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = sources.Stats{}
}

func copyRows(rows []sources.Tuple) []sources.Tuple {
	out := make([]sources.Tuple, len(rows))
	for i, r := range rows {
		out[i] = append(sources.Tuple(nil), r...)
	}
	return out
}
