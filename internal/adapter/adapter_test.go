package adapter

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/adapter/fakedb"
	"repro/internal/sources"
)

// sqlSpec mounts a fresh fakedb store (unique per test) with the given
// rows and returns the opened adapter plus its store.
func sqlSpec(t *testing.T, patterns []string, cols []string, rows [][]string, maxBatch int) (*SQL, *fakedb.Store) {
	t.Helper()
	dsn := "t_" + strings.ReplaceAll(t.Name(), "/", "_")
	st := fakedb.StoreFor(dsn)
	st.Reset()
	st.Load("rel", cols, rows)
	src, err := Open(Spec{
		Name:     "r",
		Arity:    len(cols),
		Patterns: patterns,
		Backend:  "sql://fakedb/" + dsn,
		Table:    "rel",
		Columns:  cols,
		MaxBatch: maxBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := src.(*SQL)
	t.Cleanup(func() { a.Close() })
	return a, st
}

func TestSQLCallSingle(t *testing.T) {
	a, st := sqlSpec(t, []string{"io", "oo"}, []string{"c0", "c1"}, [][]string{
		{"a", "1"}, {"a", "2"}, {"b", "3"},
	}, 0)
	rows, err := a.Call(access.Pattern("io"), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][0] != "a" || rows[1][1] != "2" {
		t.Fatalf("got %v", rows)
	}
	all, err := a.Call(access.Pattern("oo"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("scan got %v", all)
	}
	if got := st.Queries(); got != 2 {
		t.Fatalf("store saw %d queries, want 2", got)
	}
	stats := a.StatsSnapshot()
	if stats.Calls != 2 || stats.RoundTrips != 2 || stats.TuplesReturned != 5 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestSQLContractEnforced(t *testing.T) {
	a, _ := sqlSpec(t, []string{"io"}, []string{"c0", "c1"}, nil, 0)
	if _, err := a.Call(access.Pattern("oi"), []string{"x"}); err == nil {
		t.Fatal("undeclared pattern accepted")
	}
	if _, err := a.Call(access.Pattern("io"), []string{"x", "y"}); err == nil {
		t.Fatal("wrong input count accepted")
	}
	if _, err := a.CallBatch(context.Background(), access.Pattern("oi"), [][]string{{"x"}}); err == nil {
		t.Fatal("batch with undeclared pattern accepted")
	}
}

func TestSQLBatchSingleInputIN(t *testing.T) {
	a, st := sqlSpec(t, []string{"io"}, []string{"k", "v"}, [][]string{
		{"a", "1"}, {"a", "2"}, {"b", "3"}, {"c", "4"},
	}, 0)
	inputs := [][]string{{"a"}, {"missing"}, {"b"}, {"a"}} // dup + miss
	groups, err := a.CallBatch(context.Background(), access.Pattern("io"), inputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("%d groups", len(groups))
	}
	if len(groups[0]) != 2 || len(groups[1]) != 0 || len(groups[2]) != 1 || len(groups[3]) != 2 {
		t.Fatalf("group sizes %d %d %d %d", len(groups[0]), len(groups[1]), len(groups[2]), len(groups[3]))
	}
	if groups[2][0][1] != "3" {
		t.Fatalf("demux wrong: %v", groups[2])
	}
	if got := st.Queries(); got != 1 {
		t.Fatalf("store saw %d round trips, want 1", got)
	}
	stats := a.StatsSnapshot()
	if stats.Calls != 4 || stats.RoundTrips != 1 || stats.BatchedCalls != 4 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestSQLBatchMultiInputOR(t *testing.T) {
	a, st := sqlSpec(t, []string{"iio"}, []string{"x", "y", "z"}, [][]string{
		{"a", "p", "1"}, {"a", "q", "2"}, {"b", "p", "3"},
	}, 0)
	groups, err := a.CallBatch(context.Background(), access.Pattern("iio"), [][]string{
		{"a", "p"}, {"b", "p"}, {"a", "zz"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups[0]) != 1 || groups[0][0][2] != "1" {
		t.Fatalf("group 0: %v", groups[0])
	}
	if len(groups[1]) != 1 || groups[1][0][2] != "3" {
		t.Fatalf("group 1: %v", groups[1])
	}
	if len(groups[2]) != 0 {
		t.Fatalf("group 2: %v", groups[2])
	}
	if st.Queries() != 1 {
		t.Fatalf("store saw %d round trips, want 1", st.Queries())
	}
}

func TestSQLBatchAllOutput(t *testing.T) {
	a, st := sqlSpec(t, []string{"oo"}, []string{"x", "y"}, [][]string{{"a", "1"}, {"b", "2"}}, 0)
	groups, err := a.CallBatch(context.Background(), access.Pattern("oo"), [][]string{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 2 || len(groups[1]) != 2 {
		t.Fatalf("groups %v", groups)
	}
	if st.Queries() != 1 {
		t.Fatalf("store saw %d round trips, want 1", st.Queries())
	}
}

func TestSQLBatchChunksByMaxBatch(t *testing.T) {
	var rows [][]string
	var inputs [][]string
	for i := 0; i < 10; i++ {
		rows = append(rows, []string{fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)})
		inputs = append(inputs, []string{fmt.Sprintf("k%d", i)})
	}
	a, st := sqlSpec(t, []string{"io"}, []string{"k", "v"}, rows, 4)
	groups, err := a.CallBatch(context.Background(), access.Pattern("io"), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range groups {
		if len(g) != 1 || g[0][1] != fmt.Sprintf("v%d", i) {
			t.Fatalf("group %d: %v", i, g)
		}
	}
	if st.Queries() != 3 { // ceil(10/4)
		t.Fatalf("store saw %d round trips, want 3", st.Queries())
	}
}

func TestSQLBatchMatchesSequential(t *testing.T) {
	rows := [][]string{{"a", "p", "1"}, {"a", "q", "2"}, {"b", "p", "3"}, {"c", "r", "4"}}
	a, _ := sqlSpec(t, []string{"ioo"}, []string{"x", "y", "z"}, rows, 0)
	inputs := [][]string{{"a"}, {"b"}, {"nope"}, {"c"}, {"a"}}
	batch, err := a.CallBatch(context.Background(), access.Pattern("ioo"), inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		seq, err := a.Call(access.Pattern("ioo"), in)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(batch[i]) {
			t.Fatalf("input %v: batch %v vs sequential %v", in, batch[i], seq)
		}
		for k := range seq {
			for j := range seq[k] {
				if seq[k][j] != batch[i][k][j] {
					t.Fatalf("input %v row %d: batch %v vs sequential %v", in, k, batch[i][k], seq[k])
				}
			}
		}
	}
}

func TestSQLFaultIsTransient(t *testing.T) {
	a, st := sqlSpec(t, []string{"io"}, []string{"k", "v"}, [][]string{{"a", "1"}}, 0)
	st.FailNext(1, errors.New("connection refused"))
	_, err := a.Call(access.Pattern("io"), []string{"a"})
	if err == nil {
		t.Fatal("injected fault returned no error")
	}
	if !sources.IsTransient(err) {
		t.Fatalf("backend fault not transient: %v", err)
	}
	// Recovered on the next round trip.
	if _, err := a.Call(access.Pattern("io"), []string{"a"}); err != nil {
		t.Fatalf("after fault drained: %v", err)
	}
}

func TestSQLSlowBackendHonorsContext(t *testing.T) {
	a, st := sqlSpec(t, []string{"io"}, []string{"k", "v"}, [][]string{{"a", "1"}}, 0)
	st.SetLatency(200 * time.Millisecond)
	defer st.SetLatency(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := a.CallContext(ctx, access.Pattern("io"), []string{"a"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded through the driver, got %v", err)
	}
}

func TestSQLSpecValidation(t *testing.T) {
	bad := []Spec{
		{Name: "r", Arity: 2, Patterns: []string{"io"}, Backend: "sql://fakedb"},                                                  // no dsn
		{Name: "r", Arity: 2, Patterns: []string{"io"}, Backend: "sql://fakedb/d"},                                                // no table
		{Name: "r", Arity: 2, Patterns: []string{"io"}, Backend: "sql://fakedb/d", Table: "t", Columns: []string{"a"}},            // arity mismatch
		{Name: "r", Arity: 2, Patterns: []string{"io"}, Backend: "sql://fakedb/d", Table: "t; DROP", Columns: []string{"a", "b"}}, // injection
		{Name: "r", Arity: 2, Patterns: []string{"io"}, Backend: "sql://fakedb/d", Table: "t", Columns: []string{"a", "b drop"}},  // injection
		{Name: "r", Arity: 2, Patterns: []string{"iox"}, Backend: "sql://fakedb/d", Table: "t", Columns: []string{"a", "b"}},      // bad pattern
		{Name: "r", Arity: 2, Patterns: []string{"i"}, Backend: "sql://fakedb/d", Table: "t", Columns: []string{"a", "b"}},        // pattern arity
		{Name: "r", Arity: 2, Patterns: []string{"io"}, Backend: "nosuch://x/y", Table: "t", Columns: []string{"a", "b"}},         // unknown scheme
		{Name: "r", Arity: 2, Patterns: []string{"io"}, Backend: "plain-address", Table: "t", Columns: []string{"a", "b"}},        // no scheme
		{Name: "r", Arity: 2, Patterns: nil, Backend: "sql://fakedb/d", Table: "t", Columns: []string{"a", "b"}},                  // no patterns
	}
	for i, spec := range bad {
		if _, err := Open(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestSchemesRegistered(t *testing.T) {
	have := map[string]bool{}
	for _, s := range Schemes() {
		have[s] = true
	}
	for _, want := range []string{"sql", "http", "https"} {
		if !have[want] {
			t.Errorf("scheme %s not registered (have %v)", want, Schemes())
		}
	}
}

func TestParseConfigShapes(t *testing.T) {
	multi := `{"tenants": [{"tenant": "acme", "sources": [
		{"name": "r", "arity": 1, "patterns": ["o"], "backend": "sql://fakedb/x", "table": "t", "columns": ["a"]}
	]}]}`
	cfg, err := ParseConfig([]byte(multi))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 1 || cfg.Tenants[0].Tenant != "acme" {
		t.Fatalf("parsed %+v", cfg)
	}
	single := `{"tenant": "solo", "sources": [
		{"name": "r", "arity": 1, "patterns": ["o"], "backend": "sql://fakedb/x", "table": "t", "columns": ["a"]}
	]}`
	cfg, err = ParseConfig([]byte(single))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 1 || cfg.Tenants[0].Tenant != "solo" {
		t.Fatalf("parsed %+v", cfg)
	}
	for i, bad := range []string{
		`{}`,
		`{"tenants": [{"tenant": "", "sources": [{"name":"r"}]}]}`,
		`{"tenants": [{"tenant": "a", "sources": []}]}`,
		`{"tenants": [{"tenant": "a", "sources": [{"name":"r"}]}, {"tenant": "a", "sources": [{"name":"r"}]}]}`,
		`not json`,
	} {
		if _, err := ParseConfig([]byte(bad)); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestCatalogConfigOpen(t *testing.T) {
	dsn := "t_cfg_open"
	st := fakedb.StoreFor(dsn)
	st.Reset()
	st.Load("rel", []string{"k", "v"}, [][]string{{"a", "1"}})
	tc := CatalogConfig{Tenant: "acme", Sources: []Spec{{
		Name: "r", Arity: 2, Patterns: []string{"io"},
		Backend: "sql://fakedb/" + dsn, Table: "rel", Columns: []string{"k", "v"},
	}}}
	cat, err := tc.Open()
	if err != nil {
		t.Fatal(err)
	}
	if cat.PersistentID() != "acme" {
		t.Fatalf("persistent id %q", cat.PersistentID())
	}
	src := cat.Source("r")
	if src == nil {
		t.Fatal("relation r not mounted")
	}
	rows, err := sources.CallWithContext(context.Background(), src, access.Pattern("io"), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][1] != "1" {
		t.Fatalf("rows %v", rows)
	}
	if !sources.IsBatchCapable(src) {
		t.Fatal("mounted sql source not batch capable")
	}
}
