package adapter

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/sources"
)

func init() {
	Register("http", openHTTP)
	Register("https", openHTTP)
}

// wireRequest is the JSON group protocol's request: one access pattern
// and the binding group's input vectors (a plain call is a group of
// one). wireResponse aligns groups[i] with inputs[i].
type wireRequest struct {
	Relation string     `json:"relation"`
	Pattern  string     `json:"pattern"`
	Inputs   [][]string `json:"inputs"`
}

type wireResponse struct {
	Groups [][][]string `json:"groups"`
}

// sharedTransport is the pooled transport all HTTP adapters share:
// adapters in one process typically target few endpoints, and the
// point of pooling is reusing connections across calls and adapters.
var sharedTransport = &http.Transport{
	MaxIdleConns:        64,
	MaxIdleConnsPerHost: 16,
	IdleConnTimeout:     90 * time.Second,
}

// HTTP adapts a remote endpoint speaking the JSON group protocol (see
// Backend for the reference server) to a limited-access source. It
// keeps connections pooled (one shared Transport per process),
// coalesces identical in-flight requests across callers — two queries
// asking the same (pattern, group) while one request is on the wire
// share that request — and meters an optional client-side token-bucket
// rate limiter, reporting waits in the stats. Batches travel as one
// POST per MaxBatch chunk. It is safe for concurrent use.
type HTTP struct {
	name     string
	arity    int
	patterns []access.Pattern
	declared map[access.Pattern]bool
	endpoint string
	maxBatch int
	client   *http.Client
	limiter  *tokenBucket

	mu       sync.Mutex
	stats    sources.Stats
	inflight map[string]*httpFlight
}

// httpFlight is one in-progress wire request shared by coalesced
// callers.
type httpFlight struct {
	done   chan struct{}
	groups [][]sources.Tuple
	err    error
}

// openHTTP builds an HTTP adapter from a spec (schemes http/https).
func openHTTP(spec Spec) (sources.Source, error) {
	ps, err := spec.patterns()
	if err != nil {
		return nil, err
	}
	a := &HTTP{
		name:     spec.Name,
		arity:    spec.Arity,
		patterns: ps,
		declared: map[access.Pattern]bool{},
		endpoint: spec.Backend,
		maxBatch: spec.maxBatch(),
		client:   &http.Client{Transport: sharedTransport},
		inflight: map[string]*httpFlight{},
	}
	for _, p := range ps {
		a.declared[p] = true
	}
	if spec.RateLimit > 0 {
		burst := spec.Burst
		if burst < 1 {
			burst = 1
		}
		a.limiter = &tokenBucket{rate: spec.RateLimit, burst: float64(burst), tokens: float64(burst), last: time.Now()}
	}
	return a, nil
}

// Name implements Source.
func (a *HTTP) Name() string { return a.name }

// Arity implements Source.
func (a *HTTP) Arity() int { return a.arity }

// Patterns implements Source.
func (a *HTTP) Patterns() []access.Pattern {
	return append([]access.Pattern(nil), a.patterns...)
}

func (a *HTTP) checkContract(p access.Pattern, nInputs int) error {
	if !a.declared[p] {
		return fmt.Errorf("adapter: source %s does not support pattern %s (has %v)", a.name, p, a.patterns)
	}
	if nInputs != p.InputCount() {
		return fmt.Errorf("adapter: call to %s^%s with %d inputs, want %d", a.name, p, nInputs, p.InputCount())
	}
	return nil
}

// Call implements Source.
func (a *HTTP) Call(p access.Pattern, inputs []string) ([]sources.Tuple, error) {
	return a.CallContext(context.Background(), p, inputs)
}

// CallContext implements ContextSource: a group of one.
func (a *HTTP) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]sources.Tuple, error) {
	groups, err := a.CallBatch(ctx, p, [][]string{inputs})
	if err != nil {
		return nil, err
	}
	return groups[0], nil
}

// CallBatch implements sources.BatchSource: the whole binding group as
// one POST per MaxBatch chunk, coalesced with identical in-flight
// requests.
func (a *HTTP) CallBatch(ctx context.Context, p access.Pattern, inputs [][]string) ([][]sources.Tuple, error) {
	for _, in := range inputs {
		if err := a.checkContract(p, len(in)); err != nil {
			return nil, err
		}
	}
	out := make([][]sources.Tuple, 0, len(inputs))
	for lo := 0; lo < len(inputs); lo += a.maxBatch {
		hi := lo + a.maxBatch
		if hi > len(inputs) {
			hi = len(inputs)
		}
		groups, err := a.fetch(ctx, p, inputs[lo:hi])
		if err != nil {
			return nil, err
		}
		out = append(out, groups...)
	}
	return out, nil
}

// fetch services one chunk, joining an identical in-flight request when
// one exists (the coalescing is keyed by the full request payload, so
// single calls and whole batches both coalesce). A follower whose
// leader died of the leader's own cancellation retries rather than
// inheriting an error its own live context never caused.
func (a *HTTP) fetch(ctx context.Context, p access.Pattern, inputs [][]string) ([][]sources.Tuple, error) {
	body, err := json.Marshal(wireRequest{Relation: a.name, Pattern: string(p), Inputs: inputs})
	if err != nil {
		return nil, fmt.Errorf("adapter: http %s: %w", a.name, err)
	}
	key := string(body)
	for {
		a.mu.Lock()
		if f, found := a.inflight[key]; found {
			a.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err != nil {
				if (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) && ctx.Err() == nil {
					continue // leader hung up; take over
				}
				return nil, f.err
			}
			a.meterServed(len(inputs), f.groups, 0)
			return f.groups, nil
		}
		f := &httpFlight{done: make(chan struct{})}
		a.inflight[key] = f
		a.mu.Unlock()

		f.groups, f.err = a.roundTrip(ctx, body, len(inputs))

		a.mu.Lock()
		delete(a.inflight, key)
		a.mu.Unlock()
		close(f.done)
		return f.groups, f.err
	}
}

// roundTrip performs one wire request: limiter, POST, decode, meter.
func (a *HTTP) roundTrip(ctx context.Context, body []byte, nCalls int) ([][]sources.Tuple, error) {
	waited, err := a.limiter.wait(ctx)
	if waited > 0 {
		a.mu.Lock()
		a.stats.RateLimitWaits++
		a.stats.RateLimitWait += waited
		a.mu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("adapter: http %s: %w", a.name, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, sources.Transient(fmt.Errorf("adapter: http %s: %w", a.name, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		werr := fmt.Errorf("adapter: http %s: %s: %s", a.name, resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return nil, sources.Transient(werr)
		}
		return nil, werr
	}
	var wr wireResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		return nil, sources.Transient(fmt.Errorf("adapter: http %s: decoding response: %w", a.name, err))
	}
	if len(wr.Groups) != nCalls {
		return nil, sources.Transient(fmt.Errorf("adapter: http %s: %d groups for %d inputs", a.name, len(wr.Groups), nCalls))
	}
	groups := make([][]sources.Tuple, nCalls)
	for i, g := range wr.Groups {
		tuples := make([]sources.Tuple, len(g))
		for k, row := range g {
			if len(row) != a.arity {
				return nil, sources.Transient(fmt.Errorf("adapter: http %s: row of %d values, want arity %d", a.name, len(row), a.arity))
			}
			tuples[k] = sources.Tuple(row)
		}
		groups[i] = tuples
	}
	a.meterServed(nCalls, groups, 1)
	a.mu.Lock()
	a.stats.Observe(time.Since(start))
	a.mu.Unlock()
	return groups, nil
}

// meterServed counts calls serviced from groups (trips is 1 for a wire
// round trip, 0 for a coalesced follower).
func (a *HTTP) meterServed(nCalls int, groups [][]sources.Tuple, trips int) {
	tuples := 0
	for _, g := range groups {
		tuples += len(g)
	}
	a.mu.Lock()
	a.stats.Calls += nCalls
	a.stats.TuplesReturned += tuples
	a.stats.RoundTrips += trips
	if trips > 0 && nCalls > 1 {
		a.stats.BatchedCalls += nCalls
	}
	a.mu.Unlock()
}

// StatsSnapshot implements StatsReporter.
func (a *HTTP) StatsSnapshot() sources.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// ResetStats implements StatsReporter.
func (a *HTTP) ResetStats() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats = sources.Stats{}
}

// tokenBucket is a minimal client-side rate limiter: rate tokens per
// second up to burst, one token per wire request. A nil bucket never
// waits.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// wait blocks until a token is available (or ctx dies), returning how
// long it waited.
func (tb *tokenBucket) wait(ctx context.Context) (time.Duration, error) {
	if tb == nil {
		return 0, nil
	}
	var waited time.Duration
	for {
		tb.mu.Lock()
		now := time.Now()
		tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return waited, nil
		}
		need := time.Duration((1 - tb.tokens) / tb.rate * float64(time.Second))
		tb.mu.Unlock()
		if need <= 0 {
			need = time.Millisecond
		}
		timer := time.NewTimer(need)
		select {
		case <-timer.C:
			waited += need
		case <-ctx.Done():
			timer.Stop()
			return waited, ctx.Err()
		}
	}
}
