package adapter

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/sources"
)

// httpFixture serves a two-column relation over the JSON group protocol
// and returns the opened adapter plus the backend for fault injection.
func httpFixture(t *testing.T, spec Spec, rows []sources.Tuple) (*HTTP, *Backend) {
	t.Helper()
	pats := make([]access.Pattern, 0, len(spec.Patterns))
	for _, p := range spec.Patterns {
		pats = append(pats, access.Pattern(p))
	}
	tbl, err := sources.NewTable(spec.Name, spec.Arity, pats, rows)
	if err != nil {
		t.Fatal(err)
	}
	backend := NewBackend(tbl)
	srv := httptest.NewServer(backend)
	t.Cleanup(srv.Close)
	spec.Backend = srv.URL
	src, err := Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	return src.(*HTTP), backend
}

var httpRows = []sources.Tuple{{"a", "1"}, {"a", "2"}, {"b", "3"}}

func baseHTTPSpec() Spec {
	return Spec{Name: "r", Arity: 2, Patterns: []string{"io", "oo"}}
}

func TestHTTPCallAndBatch(t *testing.T) {
	a, backend := httpFixture(t, baseHTTPSpec(), httpRows)
	rows, err := a.Call(access.Pattern("io"), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows %v", rows)
	}
	groups, err := a.CallBatch(context.Background(), access.Pattern("io"), [][]string{{"a"}, {"b"}, {"zz"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups[0]) != 2 || len(groups[1]) != 1 || len(groups[2]) != 0 {
		t.Fatalf("groups %v", groups)
	}
	if got := backend.Requests(); got != 2 { // one single call + one batched group
		t.Fatalf("backend saw %d requests, want 2", got)
	}
	stats := a.StatsSnapshot()
	if stats.Calls != 4 || stats.RoundTrips != 2 || stats.BatchedCalls != 3 {
		t.Fatalf("stats %+v", stats)
	}
	if backend.BytesOnWire() == 0 {
		t.Fatal("backend metered no bytes")
	}
}

func TestHTTPCoalescesIdenticalInflight(t *testing.T) {
	a, backend := httpFixture(t, baseHTTPSpec(), httpRows)
	backend.SetLatency(50 * time.Millisecond)
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, err := a.CallContext(context.Background(), access.Pattern("io"), []string{"a"})
			if err == nil && len(rows) != 2 {
				err = errors.New("wrong rows")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := backend.Requests(); got >= callers {
		t.Fatalf("no coalescing: %d requests for %d identical callers", got, callers)
	}
	stats := a.StatsSnapshot()
	if stats.Calls != callers {
		t.Fatalf("all callers must be counted as calls: %+v", stats)
	}
	if int64(stats.RoundTrips) != backend.Requests() {
		t.Fatalf("adapter round trips %d vs backend requests %d", stats.RoundTrips, backend.Requests())
	}
}

func TestHTTP5xxTransient400Permanent(t *testing.T) {
	a, backend := httpFixture(t, baseHTTPSpec(), httpRows)
	backend.FailNext(1, http.StatusServiceUnavailable)
	_, err := a.Call(access.Pattern("io"), []string{"a"})
	if err == nil || !sources.IsTransient(err) {
		t.Fatalf("503 must be transient, got %v", err)
	}
	backend.FailNext(1, http.StatusBadRequest)
	_, err = a.Call(access.Pattern("io"), []string{"a"})
	if err == nil || sources.IsTransient(err) {
		t.Fatalf("400 must be permanent, got %v", err)
	}
	// Drained: next call succeeds.
	if _, err := a.Call(access.Pattern("io"), []string{"a"}); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPConnRefusedTransient(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // port now refuses connections
	spec := baseHTTPSpec()
	spec.Backend = url
	src, err := Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, err = src.(*HTTP).Call(access.Pattern("io"), []string{"a"})
	if err == nil || !sources.IsTransient(err) {
		t.Fatalf("connection refused must be transient, got %v", err)
	}
}

func TestHTTPSlowEndpointHonorsContext(t *testing.T) {
	a, backend := httpFixture(t, baseHTTPSpec(), httpRows)
	backend.SetLatency(500 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.CallContext(ctx, access.Pattern("io"), []string{"a"})
	if err == nil {
		t.Fatal("slow endpoint returned before its latency")
	}
	if !errors.Is(err, context.DeadlineExceeded) && !sources.IsTransient(err) {
		t.Fatalf("timeout produced a new failure class: %v", err)
	}
	if time.Since(start) > 300*time.Millisecond {
		t.Fatalf("context deadline not honored (took %v)", time.Since(start))
	}
}

func TestHTTPRateLimiterRecordsWaits(t *testing.T) {
	spec := baseHTTPSpec()
	spec.RateLimit = 50 // 20ms per token after the burst
	spec.Burst = 1
	a, _ := httpFixture(t, spec, httpRows)
	for i := 0; i < 4; i++ {
		if _, err := a.Call(access.Pattern("oo"), nil); err != nil {
			t.Fatal(err)
		}
	}
	stats := a.StatsSnapshot()
	if stats.RateLimitWaits == 0 || stats.RateLimitWait <= 0 {
		t.Fatalf("limiter waits not recorded: %+v", stats)
	}
}

func TestHTTPMalformedResponseTransient(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"groups": [[["only-one-col"]], [], []]}`)) // arity 1, want 2
	}))
	t.Cleanup(srv.Close)
	spec := baseHTTPSpec()
	spec.Backend = srv.URL
	src, err := Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := src.(*HTTP)
	_, err = a.CallBatch(context.Background(), access.Pattern("io"), [][]string{{"a"}, {"b"}, {"c"}})
	if err == nil || !sources.IsTransient(err) {
		t.Fatalf("bad arity row must be transient, got %v", err)
	}
	_, err = a.Call(access.Pattern("io"), []string{"a"}) // 1 input, server answers 3 groups
	if err == nil || !sources.IsTransient(err) {
		t.Fatalf("group/input mismatch must be transient, got %v", err)
	}
}

func TestTokenBucketNilNeverWaits(t *testing.T) {
	var tb *tokenBucket
	waited, err := tb.wait(context.Background())
	if waited != 0 || err != nil {
		t.Fatalf("nil bucket waited %v err %v", waited, err)
	}
}
