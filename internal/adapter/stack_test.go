package adapter

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/access"
	"repro/internal/adapter/fakedb"
	"repro/internal/sources"
)

// Stats attribution through the resilience stack: however an adapter is
// wrapped — Cached over Breaker, Breaker over Cached, a ReplicaSet of
// wrapped adapters — Catalog.TotalStats must report exactly the
// adapter's own wire traffic, never doubled (two reporters counting the
// same round trip) and never dropped (a wrapper hiding the adapter).
func TestStackStatsAttribution(t *testing.T) {
	build := func(t *testing.T, tag string) (*SQL, *fakedb.Store) {
		dsn := "t_stack_" + tag
		st := fakedb.StoreFor(dsn)
		st.Reset()
		st.Load("rel", []string{"k", "v"}, [][]string{{"a", "1"}, {"b", "2"}, {"c", "3"}})
		src, err := Open(Spec{
			Name: "r", Arity: 2, Patterns: []string{"io"},
			Backend: "sql://fakedb/" + dsn, Table: "rel", Columns: []string{"k", "v"},
		})
		if err != nil {
			t.Fatal(err)
		}
		a := src.(*SQL)
		t.Cleanup(func() { a.Close() })
		return a, st
	}

	stacks := []struct {
		name string
		wrap func(t *testing.T, a *SQL) sources.Source
	}{
		{"bare", func(t *testing.T, a *SQL) sources.Source { return a }},
		{"cached_over_breaker", func(t *testing.T, a *SQL) sources.Source {
			return sources.NewCached(sources.NewBreaker(a, sources.BreakerConfig{}))
		}},
		{"breaker_over_cached", func(t *testing.T, a *SQL) sources.Source {
			return sources.NewBreaker(sources.NewCached(a), sources.BreakerConfig{})
		}},
		{"replicaset_of_wrapped", func(t *testing.T, a *SQL) sources.Source {
			rs, err := sources.NewReplicaSet(sources.ReplicaConfig{},
				sources.NewCached(sources.NewBreaker(a, sources.BreakerConfig{})))
			if err != nil {
				t.Fatal(err)
			}
			return rs
		}},
	}
	for _, tc := range stacks {
		t.Run(tc.name, func(t *testing.T) {
			a, st := build(t, tc.name)
			top := tc.wrap(t, a)
			cat, err := sources.NewCatalog(top)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			p := access.Pattern("io")
			// A plain call, a repeat (cache hit where a cache is present),
			// and a batch through the whole stack.
			if _, err := sources.CallWithContext(ctx, top, p, []string{"a"}); err != nil {
				t.Fatal(err)
			}
			if _, err := sources.CallWithContext(ctx, top, p, []string{"a"}); err != nil {
				t.Fatal(err)
			}
			if !sources.IsBatchCapable(top) {
				t.Fatalf("%s stack lost batch capability", tc.name)
			}
			groups, err := sources.CallBatchWithContext(ctx, top, p, [][]string{{"b"}, {"c"}})
			if err != nil {
				t.Fatal(err)
			}
			if len(groups) != 2 || len(groups[0]) != 1 || len(groups[1]) != 1 {
				t.Fatalf("batch through stack: %v", groups)
			}
			total := cat.TotalStats()
			own := a.StatsSnapshot()
			if total != own {
				t.Fatalf("TotalStats %+v != adapter stats %+v (double count or drop)", total, own)
			}
			if own.RoundTrips == 0 || own.Calls == 0 {
				t.Fatalf("adapter metered nothing: %+v", own)
			}
			if int64(own.RoundTrips) != st.Queries() {
				t.Fatalf("adapter round trips %d vs store queries %d", own.RoundTrips, st.Queries())
			}
			// Reset through the stack reaches the adapter.
			cat.ResetStats()
			if got := a.StatsSnapshot(); got != (sources.Stats{}) {
				t.Fatalf("ResetStats did not reach the adapter: %+v", got)
			}
		})
	}
}

// A breaker above an adapter must open on repeated backend faults and
// recover after cooldown — external backends introduce no new failure
// class the stack cannot absorb.
func TestStackBreakerOpensOnBackendFaults(t *testing.T) {
	dsn := "t_stack_faults"
	st := fakedb.StoreFor(dsn)
	st.Reset()
	st.Load("rel", []string{"k", "v"}, [][]string{{"a", "1"}})
	src, err := Open(Spec{
		Name: "r", Arity: 2, Patterns: []string{"io"},
		Backend: "sql://fakedb/" + dsn, Table: "rel", Columns: []string{"k", "v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	brk := sources.NewBreaker(src, sources.BreakerConfig{Window: 4, Threshold: 2})
	st.FailNext(10, fmt.Errorf("connection refused"))
	sawOpen := false
	for i := 0; i < 10; i++ {
		_, err := sources.CallWithContext(context.Background(), brk, access.Pattern("io"), []string{"a"})
		if err == nil {
			t.Fatal("faulted backend answered")
		}
		if errors.Is(err, sources.ErrBreakerOpen) {
			sawOpen = true
			break
		}
		if !sources.IsTransient(err) {
			t.Fatalf("backend fault escaped transient classification: %v", err)
		}
	}
	if !sawOpen {
		t.Fatal("breaker never opened on repeated backend faults")
	}
}
