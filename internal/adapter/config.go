package adapter

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sources"
)

// CatalogConfig maps one tenant's relations onto external backends.
type CatalogConfig struct {
	// Tenant names the catalog; the server mounts it under this tenant
	// and it becomes the catalog's persistent identity (answer-cache
	// persistence keys on it).
	Tenant string `json:"tenant"`
	// Sources are the relations and their backends.
	Sources []Spec `json:"sources"`
}

// Config is a parsed catalog config file: one catalog per tenant.
type Config struct {
	Tenants []CatalogConfig `json:"tenants"`
}

// ParseConfig decodes a catalog config. Both shapes are accepted: the
// multi-tenant {"tenants": [...]} form and a bare single-tenant
// {"tenant": ..., "sources": [...]} object.
func ParseConfig(data []byte) (*Config, error) {
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("adapter: parsing catalog config: %w", err)
	}
	if len(cfg.Tenants) == 0 {
		var single CatalogConfig
		if err := json.Unmarshal(data, &single); err != nil {
			return nil, fmt.Errorf("adapter: parsing catalog config: %w", err)
		}
		if len(single.Sources) > 0 {
			cfg.Tenants = []CatalogConfig{single}
		}
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("adapter: catalog config declares no tenants")
	}
	seen := map[string]bool{}
	for i, t := range cfg.Tenants {
		if t.Tenant == "" {
			return nil, fmt.Errorf("adapter: catalog config tenant %d has no name", i)
		}
		if seen[t.Tenant] {
			return nil, fmt.Errorf("adapter: catalog config declares tenant %s twice", t.Tenant)
		}
		seen[t.Tenant] = true
		if len(t.Sources) == 0 {
			return nil, fmt.Errorf("adapter: tenant %s declares no sources", t.Tenant)
		}
	}
	return &cfg, nil
}

// LoadConfig reads and parses a catalog config file.
func LoadConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("adapter: reading catalog config: %w", err)
	}
	return ParseConfig(data)
}

// Open builds the tenant's catalog: every spec opened through the
// registry, the catalog labeled with the tenant name (so answer-cache
// persistence composes).
func (t CatalogConfig) Open() (*sources.Catalog, error) {
	srcs := make([]sources.Source, 0, len(t.Sources))
	for _, spec := range t.Sources {
		s, err := Open(spec)
		if err != nil {
			return nil, fmt.Errorf("adapter: tenant %s: %w", t.Tenant, err)
		}
		srcs = append(srcs, s)
	}
	cat, err := sources.NewCatalog(srcs...)
	if err != nil {
		return nil, fmt.Errorf("adapter: tenant %s: %w", t.Tenant, err)
	}
	cat.SetPersistentID(t.Tenant)
	return cat, nil
}
