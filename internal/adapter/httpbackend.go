package adapter

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/sources"
)

// Backend is the reference server for the JSON group protocol: an
// http.Handler answering wireRequests from an in-memory source. Tests
// mount it on httptest servers — with injectable latency and fault
// bursts — and deployments can use it to expose any Source over the
// wire (two ucqnd processes can front each other's catalogs with it).
// It meters requests and approximate bytes on the wire, which is what
// E27 reports.
type Backend struct {
	src sources.Source

	mu         sync.Mutex
	latency    time.Duration
	failNext   int
	failStatus int

	requests atomic.Int64
	bytes    atomic.Int64
}

// NewBackend serves src over the JSON group protocol.
func NewBackend(src sources.Source) *Backend { return &Backend{src: src} }

// SetLatency makes every request sleep d before answering (simulated
// service time; honors the request context).
func (b *Backend) SetLatency(d time.Duration) {
	b.mu.Lock()
	b.latency = d
	b.mu.Unlock()
}

// FailNext makes the next n requests fail with the given HTTP status
// (e.g. 503 for a transient outage, 400 for a permanent one).
func (b *Backend) FailNext(n, status int) {
	b.mu.Lock()
	b.failNext, b.failStatus = n, status
	b.mu.Unlock()
}

// Requests returns the number of wire requests served (failed ones
// included) — the backend-side round-trip count.
func (b *Backend) Requests() int64 { return b.requests.Load() }

// BytesOnWire approximates the payload bytes transferred (request plus
// response bodies).
func (b *Backend) BytesOnWire() int64 { return b.bytes.Load() }

// ServeHTTP implements http.Handler.
func (b *Backend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.requests.Add(1)
	var req wireRequest
	body := http.MaxBytesReader(w, r.Body, 32<<20)
	dec := json.NewDecoder(body)
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	b.mu.Lock()
	lat := b.latency
	fail := false
	status := 0
	if b.failNext > 0 {
		b.failNext--
		fail, status = true, b.failStatus
	}
	b.mu.Unlock()
	if lat > 0 {
		timer := time.NewTimer(lat)
		select {
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
	if fail {
		http.Error(w, "injected fault", status)
		return
	}
	p := access.Pattern(req.Pattern)
	resp := wireResponse{Groups: make([][][]string, len(req.Inputs))}
	for i, in := range req.Inputs {
		rows, err := sources.CallWithContext(r.Context(), b.src, p, in)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		group := make([][]string, len(rows))
		for k, t := range rows {
			group[k] = t
		}
		resp.Groups[i] = group
	}
	out, err := json.Marshal(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b.countBytes(&req, out)
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// countBytes approximates the wire payload of one exchange.
func (b *Backend) countBytes(req *wireRequest, resp []byte) {
	in, _ := json.Marshal(req)
	b.bytes.Add(int64(len(in) + len(resp)))
}
