// Package adapter connects the engine to real external backends. The
// paper's limited-access sources ARE external services — query forms
// you can only call with the input slots bound — and everything in
// internal/sources up to now simulates them in memory. An adapter
// implements the same Source/ContextSource/StatsReporter contracts over
// a wire protocol, so it slots under the whole resilience stack
// (Cached, Breaker, ReplicaSet, hedging, budgets) unchanged; adapters
// additionally implement sources.BatchSource, servicing a whole binding
// group in one round trip (SQL: one IN (...) query; HTTP: one POSTed
// group), which the engine's call layer detects and uses.
//
// Backends are addressed by scheme — "sql://driver/dsn" compiles
// adorned accesses to parameterized SELECTs over database/sql;
// "http://host/path" speaks the JSON group protocol of Backend — and
// opened through a registry (Register/Open), so deployments can mount
// additional backend kinds without touching this package. A catalog
// config file (config.go) maps tenant relations onto backend specs;
// cmd/ucqnd mounts it via -catalog.
package adapter

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/access"
	"repro/internal/sources"
)

// Spec describes one relation mounted on an external backend.
type Spec struct {
	// Name is the relation name the source answers to.
	Name string `json:"name"`
	// Arity is the relation arity.
	Arity int `json:"arity"`
	// Patterns are the declared access patterns (words over i/o, e.g.
	// "io" — exactly the adornments of the paper).
	Patterns []string `json:"patterns"`
	// Backend addresses the external system: scheme://rest, e.g.
	// "sql://fakedb/orders" (driver fakedb, DSN orders) or
	// "http://10.0.0.7:8093/rel" (the JSON group endpoint).
	Backend string `json:"backend"`

	// Table and Columns map relation positions onto SQL storage: column
	// j holds position j. Required for sql backends; ignored by http.
	Table   string   `json:"table,omitempty"`
	Columns []string `json:"columns,omitempty"`

	// MaxBatch chunks batched round trips: a binding group larger than
	// this is serviced in ceil(n/MaxBatch) round trips. 0 means
	// DefaultMaxBatch.
	MaxBatch int `json:"max_batch,omitempty"`

	// RateLimit and Burst configure the http adapter's client-side
	// token-bucket limiter (requests per second and bucket size). 0
	// disables limiting. Ignored by sql.
	RateLimit float64 `json:"rate_limit,omitempty"`
	Burst     int     `json:"burst,omitempty"`
}

// DefaultMaxBatch is the round-trip chunk size when Spec.MaxBatch is 0:
// large enough that the paper-scale binding groups (hundreds of
// bindings) fit one round trip, small enough to keep single statements
// bounded.
const DefaultMaxBatch = 1024

func (s Spec) maxBatch() int {
	if s.MaxBatch > 0 {
		return s.MaxBatch
	}
	return DefaultMaxBatch
}

// patterns parses and validates the declared access patterns.
func (s Spec) patterns() ([]access.Pattern, error) {
	if len(s.Patterns) == 0 {
		return nil, fmt.Errorf("adapter: source %s declares no access pattern", s.Name)
	}
	out := make([]access.Pattern, 0, len(s.Patterns))
	for _, raw := range s.Patterns {
		p, err := access.ParsePattern(raw)
		if err != nil {
			return nil, fmt.Errorf("adapter: source %s: %w", s.Name, err)
		}
		if p.Arity() != s.Arity {
			return nil, fmt.Errorf("adapter: source %s has arity %d but pattern %s has arity %d", s.Name, s.Arity, p, p.Arity())
		}
		out = append(out, p)
	}
	return out, nil
}

// OpenFunc builds a source for one backend scheme.
type OpenFunc func(spec Spec) (sources.Source, error)

var (
	regMu    sync.RWMutex
	registry = map[string]OpenFunc{}
)

// Register installs an OpenFunc for a backend scheme (e.g. "sql").
// Registering a duplicate scheme panics, like database/sql.Register:
// two subsystems silently fighting over a scheme is a deployment bug.
func Register(scheme string, open OpenFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if open == nil {
		panic("adapter: Register with nil OpenFunc")
	}
	if _, dup := registry[scheme]; dup {
		panic("adapter: Register called twice for scheme " + scheme)
	}
	registry[scheme] = open
}

// Schemes returns the registered backend schemes, sorted.
func Schemes() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Open builds the source for a spec, dispatching on the scheme of
// spec.Backend.
func Open(spec Spec) (sources.Source, error) {
	scheme, _, ok := strings.Cut(spec.Backend, "://")
	if !ok || scheme == "" {
		return nil, fmt.Errorf("adapter: source %s: backend %q has no scheme:// prefix", spec.Name, spec.Backend)
	}
	regMu.RLock()
	open, found := registry[scheme]
	regMu.RUnlock()
	if !found {
		return nil, fmt.Errorf("adapter: source %s: no adapter registered for scheme %q (have %v)", spec.Name, scheme, Schemes())
	}
	return open(spec)
}
