// Package qcache is a two-tier semantic query cache for UCQ¬ execution
// under limited access patterns.
//
// Tier 1 (plan cache) keys on an isomorphism-invariant canonical form
// of the *minimized* query: each disjunct is minimized to its core
// (minimize.CQ), the cores are canonicalized (containment.Canonicalize)
// with the head predicate normalized away, and the sorted, deduplicated
// per-core keys — together with the access-pattern set — form the key.
// α-renamed, literal-padded, duplicated-disjunct, and otherwise
// non-minimal resubmissions of the same query therefore hit the same
// entry and skip re-planning (orderability check, reordering,
// adornment, FEASIBLE verdict). A textual fast key (order-insensitive
// but multiplicity-sensitive) fronts the canonical computation for
// exact resubmissions, and an in-flight table (singleflight) makes a
// thundering herd on a cold hot query plan once.
//
// Tier 2 (answer cache) stores, per executed disjunct, the disjunct's
// own answer rows keyed by (canonical core key, catalog identity,
// catalog generation). A later execution reuses a disjunct's rows only
// when its core is *equivalent* to the cached core — either the keys
// are equal (isomorphism, hence equivalence) or a budgeted mutual
// containment check (containment.ContainsLimited both ways) proves
// equivalence for non-isomorphic cores. One-way containment is never
// enough: p ⊑ q makes q's rows an overestimate of p's, and answer-level
// reuse must return exactly ANSWER(p). When every disjunct is covered
// the union is assembled from cache without any source call; when only
// some are, the remainder runs live and the results are unioned.
//
// Both tiers are LRU-bounded (entries, and approximate bytes for
// answers), optionally TTL-expired, and invalidated by the catalog
// generation counter (sources.Catalog.Invalidate / ResetStats). The
// cache is safe for concurrent use.
package qcache

import (
	"container/list"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/minimize"
	"repro/internal/qcache/persist"
	"repro/internal/sources"
)

// canonHeadPred is the head predicate used in canonical cores: the
// query's own head predicate name carries no semantics, so "Q(x) :- R(x)"
// and "Ans(x) :- R(x)" must share cache entries.
const canonHeadPred = "Q"

// Options configures a Cache. The zero value selects the defaults.
type Options struct {
	// MaxPlanEntries bounds the plan cache (default 512; negative =
	// unbounded).
	MaxPlanEntries int
	// MaxAnswerEntries bounds the answer cache's entry count (default
	// 1024; negative = unbounded).
	MaxAnswerEntries int
	// MaxAnswerBytes bounds the answer cache's approximate row bytes
	// (default 64 MiB; negative = unbounded).
	MaxAnswerBytes int64
	// TTL expires entries of both tiers after this duration (0 = never).
	TTL time.Duration
	// FeasibleBudget bounds the containment nodes spent computing the
	// cached FEASIBLE verdict (default 20000). On exhaustion the verdict
	// is recorded as unknown; execution is unaffected.
	FeasibleBudget int
	// EquivScanLimit bounds how many cached cores a single uncovered
	// disjunct may be tested against for equivalence (default 16;
	// negative = no scan).
	EquivScanLimit int
	// EquivBudget bounds the total containment nodes one Answers call
	// may spend on equivalence scans (default 20000).
	EquivBudget int
	// DisableAnswers turns tier 2 off: plans are cached, answers are
	// always computed live (the "plan-only" mode of the E22 ablation).
	DisableAnswers bool
	// Now is the cache's clock (nil = time.Now). Tests inject a virtual
	// clock (mirroring sources.VirtualClock) so TTL expiry and
	// persistence timestamps are deterministic.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxPlanEntries == 0 {
		o.MaxPlanEntries = 512
	}
	if o.MaxAnswerEntries == 0 {
		o.MaxAnswerEntries = 1024
	}
	if o.MaxAnswerBytes == 0 {
		o.MaxAnswerBytes = 64 << 20
	}
	if o.FeasibleBudget == 0 {
		o.FeasibleBudget = 20000
	}
	if o.EquivScanLimit == 0 {
		o.EquivScanLimit = 16
	}
	if o.EquivBudget == 0 {
		o.EquivBudget = 20000
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Stats are the cache's cumulative counters.
type Stats struct {
	PlanHits   int // plan served from cache (incl. singleflight followers and α-aliases)
	PlanMisses int // plans built
	AnswerHits int // executions answered entirely from cached rows
	// PartialReuseRules counts disjuncts whose rows were served from
	// cache while sibling disjuncts ran live.
	PartialReuseRules int
	// EquivHits counts disjuncts reused via the budgeted mutual
	// containment check rather than key equality.
	EquivHits int
	// Evictions counts entries (plans and answers) evicted by capacity,
	// bytes, or TTL.
	Evictions int
	// PersistLoads counts answer entries warm-loaded from the
	// persistence log, and PersistBytes their approximate row bytes.
	PersistLoads int
	PersistBytes int64
	// PersistDrops counts persisted records dropped rather than served:
	// unverifiable on disk (torn, bit-flipped, failed validation) or
	// superseded by a newer generation.
	PersistDrops int
}

// Feasibility is the cached FEASIBLE verdict.
type Feasibility int

const (
	// FeasibilityUnknown: the budgeted check did not conclude.
	FeasibilityUnknown Feasibility = iota
	// FeasibilityYes: the query is feasible under the patterns.
	FeasibilityYes
	// FeasibilityNo: the query is infeasible under the patterns.
	FeasibilityNo
)

func (f Feasibility) String() string {
	switch f {
	case FeasibilityYes:
		return "feasible"
	case FeasibilityNo:
		return "infeasible"
	default:
		return "unknown"
	}
}

// PlanEntry is one cached plan: the executable representative of an
// equivalence class of submitted queries, with its verdicts.
type PlanEntry struct {
	key       string
	exec      logic.UCQ                 // executable representative; evaluated on behalf of every member
	steps     [][]access.AdornedLiteral // adornment per non-False exec rule (nil entry = False rule)
	cores     []logic.CQ                // canonical core per exec rule, head normalized; positional
	coreKeys  []string                  // CanonicalKey of cores[i]
	orderable bool
	feasible  Feasibility
	verdict   core.Verdict
	planErr   error
	created   time.Time
}

// Exec returns the executable representative the cache evaluates for
// this entry. It is equivalent to every query that maps to the entry.
func (e *PlanEntry) Exec() logic.UCQ { return e.exec }

// Err returns the cached planning failure (the query is not orderable
// under the patterns), or nil.
func (e *PlanEntry) Err() error { return e.planErr }

// Orderable reports the cached orderability verdict.
func (e *PlanEntry) Orderable() bool { return e.orderable }

// Feasible returns the cached FEASIBLE verdict and its certificate
// class (meaningful when the verdict is not unknown).
func (e *PlanEntry) Feasible() (Feasibility, core.Verdict) { return e.feasible, e.verdict }

// Steps returns the cached adornment of exec rule i (nil for False
// rules).
func (e *PlanEntry) Steps(i int) []access.AdornedLiteral { return e.steps[i] }

// Key returns the entry's canonical cache key (for diagnostics).
func (e *PlanEntry) Key() string { return e.key }

// PlanInfo reports how a Plan call was served.
type PlanInfo struct {
	// Hit is true when the plan came from the cache (including via the
	// canonical key of an α-renamed or non-minimal variant, and
	// singleflight followers).
	Hit bool
	// Evictions counts cache entries evicted during this call.
	Evictions int
}

// planFlight is one in-progress plan build that concurrent callers of
// the same fast key wait on.
type planFlight struct {
	done  chan struct{}
	entry *PlanEntry
}

// ansEntry is one disjunct's cached answer rows.
type ansEntry struct {
	key     string // coreKey + catalog fingerprint
	catFP   string
	core    logic.CQ // canonical core (head normalized); for equivalence scans
	arity   int
	rows    []engine.Row
	bytes   int64
	created time.Time
}

// AnswerHit is the result of consulting the answer cache for one plan
// entry.
type AnswerHit struct {
	// Full is the complete answer, assembled from cached rows in rule
	// order, when every non-False disjunct is covered; nil otherwise.
	Full *engine.Rel
	// Rows[i] holds exec rule i's cached rows when Covered[i].
	Rows [][]engine.Row
	// Covered[i] reports whether exec rule i needs no live evaluation
	// (cached rows, or a statically unsatisfiable core).
	Covered []bool
	// ReusedRules counts the covered non-False exec rules — the number
	// of disjuncts the incompleteness accounting must credit as
	// survived-without-running.
	ReusedRules int
	// CachedRules counts the disjuncts covered by cached rows (excludes
	// statically unsatisfiable cores); this is the profile's
	// PartialReuseRules on a non-full hit.
	CachedRules int
	// EquivHits counts disjuncts covered via the mutual containment
	// check rather than key equality.
	EquivHits int
}

// Cache is the two-tier semantic query cache. Create one with New and
// share it across Exec callers; it is safe for concurrent use.
type Cache struct {
	opt Options

	mu      sync.Mutex
	fast    map[string]string        // textual fast key -> canonical key
	plans   map[string]*list.Element // canonical key -> element in planLRU
	planLRU *list.List               // of *PlanEntry; front = most recently used
	flights map[string]*planFlight   // fast key -> in-progress build

	answers  map[string]*list.Element // answer key -> element in ansLRU
	ansLRU   *list.List               // of *ansEntry
	ansBytes int64

	// persist is the optional crash-safe spill layer (nil = memory
	// only): a private persist.Log, or a fleet node sharing a
	// directory with other replicas. restored tracks the store version
	// each catalog label was warm-loaded at (value = Version()+1, so
	// the zero value means never restored); a label re-restores when
	// the store version moved behind the cache's back.
	persist  persist.Store
	restored map[string]uint64

	stats Stats
}

// New returns a Cache with the given options (zero value = defaults).
func New(opt Options) *Cache {
	return &Cache{
		opt:      opt.withDefaults(),
		fast:     map[string]string{},
		plans:    map[string]*list.Element{},
		planLRU:  list.New(),
		flights:  map[string]*planFlight{},
		answers:  map[string]*list.Element{},
		ansLRU:   list.New(),
		restored: map[string]uint64{},
	}
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of cached plans and answer entries.
func (c *Cache) Len() (plans, answers int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.planLRU.Len(), c.ansLRU.Len()
}

// Purge drops every cached plan and answer (counters are kept).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fast = map[string]string{}
	c.plans = map[string]*list.Element{}
	c.planLRU = list.New()
	c.answers = map[string]*list.Element{}
	c.ansLRU = list.New()
	c.ansBytes = 0
	// Forget restore state so persisted entries can warm the cache again
	// on the next lookup (re-restoring is idempotent).
	c.restored = map[string]uint64{}
}

func (c *Cache) fresh(created time.Time) bool {
	return c.opt.TTL <= 0 || c.opt.Now().Sub(created) < c.opt.TTL
}

// fastKey renders q textually: per rule, the head and the *sorted* body
// literal renderings — keeping duplicates, so a literal-padded variant
// misses here and is caught by the minimize/canonicalize path — with
// the rules themselves sorted, plus the pattern-set fingerprint.
func fastKey(q logic.UCQ, ps *access.Set) string {
	rules := make([]string, len(q.Rules))
	for i, r := range q.Rules {
		if r.False {
			rules[i] = r.Head().String() + " :- false"
			continue
		}
		lits := make([]string, len(r.Body))
		for j, l := range r.Body {
			lits[j] = l.Key()
		}
		sort.Strings(lits)
		rules[i] = r.Head().String() + " :- " + strings.Join(lits, ", ")
	}
	sort.Strings(rules)
	return strings.Join(rules, "\n") + "\x00" + ps.String()
}

// Plan returns the cached plan entry for q under ps, building (and
// caching) it on a miss. The entry's Err is non-nil when the query
// admits no executable form under ps; callers should return it.
func (c *Cache) Plan(q logic.UCQ, ps *access.Set) (*PlanEntry, PlanInfo) {
	fk := fastKey(q, ps)
	c.mu.Lock()
	if pk, ok := c.fast[fk]; ok {
		if elem, ok2 := c.plans[pk]; ok2 {
			e := elem.Value.(*PlanEntry)
			if c.fresh(e.created) {
				c.planLRU.MoveToFront(elem)
				c.stats.PlanHits++
				c.mu.Unlock()
				return e, PlanInfo{Hit: true}
			}
			c.removePlanLocked(elem)
			c.stats.Evictions++
		}
		delete(c.fast, fk)
	}
	if f, ok := c.flights[fk]; ok {
		c.mu.Unlock()
		<-f.done
		c.mu.Lock()
		c.stats.PlanHits++
		c.mu.Unlock()
		return f.entry, PlanInfo{Hit: true}
	}
	f := &planFlight{done: make(chan struct{})}
	c.flights[fk] = f
	c.mu.Unlock()

	built := c.build(q, ps)

	c.mu.Lock()
	entry := built
	hit := false
	evictions := 0
	if elem, ok := c.plans[built.key]; ok {
		if e := elem.Value.(*PlanEntry); c.fresh(e.created) {
			// An isomorphic (α-renamed / non-minimal) variant is already
			// cached: serve it, discard the rebuild.
			entry = e
			c.planLRU.MoveToFront(elem)
			c.stats.PlanHits++
			hit = true
		} else {
			c.removePlanLocked(elem)
			c.stats.Evictions++
			evictions++
		}
	}
	if !hit {
		c.plans[built.key] = c.planLRU.PushFront(built)
		c.stats.PlanMisses++
		if max := c.opt.MaxPlanEntries; max > 0 {
			for c.planLRU.Len() > max {
				c.removePlanLocked(c.planLRU.Back())
				c.stats.Evictions++
				evictions++
			}
		}
	}
	// The fast map holds textual aliases; bound it coarsely so distinct
	// renderings of the same classes cannot grow it without limit.
	if max := c.opt.MaxPlanEntries; max > 0 && len(c.fast) >= 4*max {
		c.fast = map[string]string{}
	}
	c.fast[fk] = entry.key
	delete(c.flights, fk)
	f.entry = entry
	c.mu.Unlock()
	close(f.done)
	return entry, PlanInfo{Hit: hit, Evictions: evictions}
}

// removePlanLocked removes a plan element from both indexes; c.mu held.
func (c *Cache) removePlanLocked(elem *list.Element) {
	e := c.planLRU.Remove(elem).(*PlanEntry)
	delete(c.plans, e.key)
}

// build computes a PlanEntry for q: minimize each disjunct to its core,
// canonicalize, pick an executable representative, adorn it, and run
// the budgeted FEASIBLE check.
func (c *Cache) build(q logic.UCQ, ps *access.Set) *PlanEntry {
	e := &PlanEntry{created: c.opt.Now()}

	// Choose the representative to evaluate. Preferred: the reordered
	// minimized union — minimal bodies mean minimal source calls, and
	// every member of the equivalence class (padded, α-renamed, …) then
	// executes the same minimal plan. It is skipped when minimization
	// proved a disjunct unsatisfiable (a False exec rule would change
	// partial-results rule accounting relative to an uncached run, which
	// evaluates the satisfiable-but-unminimized rule) or when dropping
	// literals lost a binding provider and broke orderability. Fallbacks:
	// the submitted form if executable as written, else its ANSWERABLE
	// reordering. Every candidate is equivalent to q, so evaluating the
	// representative is sound for every query that maps to this entry.
	cores := minimize.Cores(q)
	anyFalse := false
	for _, cr := range cores {
		if cr.False {
			anyFalse = true
			break
		}
	}
	minimized, minOK := core.ReorderUCQ(logic.UCQ{Rules: cores}, ps)
	switch {
	case minOK && !anyFalse:
		e.exec = minimized
		e.orderable = true
	case core.Executable(q, ps):
		e.exec = q.Clone()
		e.orderable = true
	default:
		if reordered, ok := core.ReorderUCQ(q, ps); ok {
			e.exec = reordered
			e.orderable = true
		} else if minOK {
			e.exec = minimized
			e.orderable = true
		} else {
			e.planErr = fmt.Errorf("qcache: query is not orderable under the given patterns (no executable form): %s", q)
		}
	}

	// Canonical cores, positional with q.Rules (and hence with e.exec's
	// rules: Reorder preserves positions). The head predicate is
	// normalized away — it names the answer, it does not select it.
	e.cores = make([]logic.CQ, len(cores))
	e.coreKeys = make([]string, len(cores))
	keySet := make([]string, 0, len(cores))
	seen := map[string]bool{}
	for i, cr := range cores {
		n := cr.Clone()
		n.HeadPred = canonHeadPred
		canon := containment.Canonicalize(n)
		e.cores[i] = canon
		e.coreKeys[i] = canon.String()
		if !seen[e.coreKeys[i]] {
			seen[e.coreKeys[i]] = true
			keySet = append(keySet, e.coreKeys[i])
		}
	}
	sort.Strings(keySet)
	e.key = strings.Join(keySet, " | ") + "\x00" + ps.String()

	if e.planErr == nil {
		e.steps = make([][]access.AdornedLiteral, len(e.exec.Rules))
		for i, rule := range e.exec.Rules {
			if rule.False {
				continue
			}
			steps, ok := access.AdornInOrder(rule.Body, ps)
			if !ok {
				// Should not happen for an executable representative;
				// degrade to a planning error rather than panic.
				e.planErr = fmt.Errorf("qcache: rule is not executable as written: %s", rule)
				break
			}
			e.steps[i] = steps
		}
	}

	// The FEASIBLE verdict rides along: on a hit it answers the
	// Π₂ᴾ-complete question for free. Budgeted, because the cache must
	// never stall a request on an adversarial query.
	if res, err := core.FeasibleLimited(q, ps, c.opt.FeasibleBudget); err == nil {
		if res.Feasible {
			e.feasible = FeasibilityYes
		} else {
			e.feasible = FeasibilityNo
		}
		e.verdict = res.Verdict
	}
	return e
}

// catFingerprint keys answers to a catalog identity and generation:
// swapping catalogs or invalidating one orphans its cached answers.
//
// Identity is the catalog's registered monotonic ID, never its address:
// a pointer rendering ("%p") aliases as soon as the garbage collector
// recycles the address of a dead catalog for a new one — the cache
// holds no reference to the catalog, so nothing pins it — and a second
// tenant's catalog landing on a first tenant's old address would be
// served the first tenant's cached answers. IDs are process-unique and
// never reused, so distinct catalogs can never collide however the
// allocator places them.
func catFingerprint(cat *sources.Catalog) string {
	return fmt.Sprintf("%d:%d", cat.ID(), cat.Generation())
}

// Answers consults the answer cache for e against cat. Soundness: a
// disjunct's rows are reused only when its core is equivalent to the
// cached core (key equality ⇒ isomorphism ⇒ equivalence, or the mutual
// containment check) and the catalog fingerprint — identity plus
// generation — matches. One-way containment is never used.
func (c *Cache) Answers(e *PlanEntry, cat *sources.Catalog) AnswerHit {
	n := len(e.exec.Rules)
	hit := AnswerHit{Rows: make([][]engine.Row, n), Covered: make([]bool, n)}
	if c.opt.DisableAnswers || e.planErr != nil {
		return hit
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Warm-load any persisted state for this catalog's label before
	// computing the fingerprint: the restore may advance the catalog's
	// generation, and the fingerprint must reflect it.
	c.ensureRestoredLocked(cat, true)
	catFP := catFingerprint(cat)
	equivBudget := c.opt.EquivBudget
	full := true
	for i, rule := range e.exec.Rules {
		if rule.False {
			continue
		}
		if e.cores[i].False {
			// Statically unsatisfiable disjunct: covered with no rows on
			// any catalog.
			hit.Covered[i] = true
			hit.ReusedRules++
			continue
		}
		key := e.coreKeys[i] + "\x1f" + catFP
		elem, ok := c.answers[key]
		if ok {
			a := elem.Value.(*ansEntry)
			if !c.fresh(a.created) {
				c.removeAnswerLocked(elem)
				c.stats.Evictions++
				ok = false
			} else {
				c.ansLRU.MoveToFront(elem)
				hit.Rows[i] = a.rows
				hit.Covered[i] = true
				hit.ReusedRules++
				hit.CachedRules++
			}
		}
		if !ok {
			if a := c.equivScanLocked(e.cores[i], catFP, &equivBudget); a != nil {
				// Alias the scanned entry under this core's key so the
				// next lookup is O(1).
				c.installAnswerLocked(&ansEntry{
					key: key, catFP: catFP, core: a.core, arity: a.arity,
					rows: a.rows, bytes: a.bytes, created: a.created,
				})
				hit.Rows[i] = a.rows
				hit.Covered[i] = true
				hit.ReusedRules++
				hit.CachedRules++
				hit.EquivHits++
				c.stats.EquivHits++
			} else {
				full = false
			}
		}
	}
	if full {
		// Assemble in rule order: identical rows and insertion order to a
		// sequential live evaluation.
		rel := engine.NewRel()
		for i := range e.exec.Rules {
			for _, row := range hit.Rows[i] {
				rel.Add(row)
			}
		}
		hit.Full = rel
		c.stats.AnswerHits++
	} else if hit.CachedRules > 0 {
		c.stats.PartialReuseRules += hit.CachedRules
	}
	return hit
}

// equivScanLocked looks for a cached entry (same catalog fingerprint
// and head arity) whose core is equivalent to want, spending at most
// the remaining budget of containment nodes and Options.EquivScanLimit
// candidates. c.mu must be held.
func (c *Cache) equivScanLocked(want logic.CQ, catFP string, budget *int) *ansEntry {
	if c.opt.EquivScanLimit < 0 || *budget <= 0 {
		return nil
	}
	tried := 0
	for elem := c.ansLRU.Front(); elem != nil; elem = elem.Next() {
		a := elem.Value.(*ansEntry)
		if a.catFP != catFP || a.arity != len(want.HeadArgs) || !c.fresh(a.created) {
			continue
		}
		if tried >= c.opt.EquivScanLimit || *budget <= 0 {
			return nil
		}
		tried++
		if equivalentWithin(want, a.core, budget) {
			return a
		}
	}
	return nil
}

// equivalentWithin decides equivalence of two CQ¬ cores with a shared
// node budget, charging the nodes actually spent. Budget exhaustion
// counts as "not equivalent" (reuse is then skipped — sound, merely a
// missed hit).
func equivalentWithin(a, b logic.CQ, budget *int) bool {
	for _, dir := range [2][2]logic.CQ{{a, b}, {b, a}} {
		ck := containment.NewChecker(logic.AsUnion(dir[1]))
		ok, err := ck.ContainsLimited(dir[0], *budget)
		*budget -= ck.Nodes
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// StoreAnswers records per-disjunct answer relations from a live
// evaluation: rels[i] is exec rule i's own answer relation, nil when
// the rule did not run (cached, False, or degraded — degraded disjuncts
// must never be cached: their rows are incomplete). It returns the
// number of entries evicted to make room.
func (c *Cache) StoreAnswers(e *PlanEntry, cat *sources.Catalog, rels []*engine.Rel) int {
	if c.opt.DisableAnswers || e.planErr != nil {
		return 0
	}
	c.mu.Lock()
	c.ensureRestoredLocked(cat, true)
	catFP := catFingerprint(cat)
	before := c.stats.Evictions
	now := c.opt.Now()
	lg := c.persist
	var label string
	if lg != nil {
		label = cat.PersistentID()
	}
	gen := cat.Generation()
	var spill []persist.Entry
	for i, rel := range rels {
		if rel == nil || i >= len(e.exec.Rules) || e.exec.Rules[i].False || e.cores[i].False {
			continue
		}
		key := e.coreKeys[i] + "\x1f" + catFP
		if _, ok := c.answers[key]; ok {
			continue // first writer wins; equal up to row order anyway
		}
		rows := rel.Rows()
		var bytes int64
		for _, row := range rows {
			bytes += int64(len(row.Key())) + 32
		}
		c.installAnswerLocked(&ansEntry{
			key: key, catFP: catFP, core: e.cores[i], arity: len(e.cores[i].HeadArgs),
			rows: rows, bytes: bytes, created: now,
		})
		if label != "" {
			if pe, ok := persistEntry(label, gen, now, e.coreKeys[i], e.cores[i], rows); ok {
				spill = append(spill, pe)
			}
		}
	}
	evicted := c.stats.Evictions - before
	c.mu.Unlock()
	// Appends run outside the cache lock: disk latency must not stall
	// concurrent lookups, and a failed append only degrades durability
	// (the in-memory entry stays), never the caller.
	for _, pe := range spill {
		_ = lg.Append(pe)
	}
	return evicted
}

// installAnswerLocked inserts an answer entry and evicts past the
// entry/byte bounds; c.mu must be held.
func (c *Cache) installAnswerLocked(a *ansEntry) {
	if elem, ok := c.answers[a.key]; ok {
		c.removeAnswerLocked(elem)
	}
	c.answers[a.key] = c.ansLRU.PushFront(a)
	c.ansBytes += a.bytes
	for (c.opt.MaxAnswerEntries > 0 && c.ansLRU.Len() > c.opt.MaxAnswerEntries) ||
		(c.opt.MaxAnswerBytes > 0 && c.ansBytes > c.opt.MaxAnswerBytes && c.ansLRU.Len() > 1) {
		c.removeAnswerLocked(c.ansLRU.Back())
		c.stats.Evictions++
	}
}

// removeAnswerLocked removes an answer element from both indexes.
func (c *Cache) removeAnswerLocked(elem *list.Element) {
	a := c.ansLRU.Remove(elem).(*ansEntry)
	delete(c.answers, a.key)
	c.ansBytes -= a.bytes
}
