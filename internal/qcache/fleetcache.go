package qcache

// Fleet glue: backing the answer cache with a shared-directory fleet
// node instead of a private log. The cache uses the node through the
// same persist.Store seam as a Log; what changes is behind it — the
// node may be the fleet's single writer (then it owns the log exactly
// like OpenPersistent's) or a follower (then Label serves the last
// good published snapshot + log suffix, Append is memory-only, and
// AppendTombstone fans out through the node's inbox). The node's
// Version bumps on refreshes and fleet invalidations, which is what
// makes ensureRestoredLocked re-load labels a sibling replica paid
// for.

import (
	"repro/internal/qcache/fleet"
	"repro/internal/qcache/persist"
)

// OpenFleet builds a Cache joined to the shared fleet directory as
// replica fopt.ID. The returned node is also installed as the cache's
// persistence backend; close the cache with ClosePersist (which
// closes the node, releasing the lease if it is the writer). The only
// errors are real filesystem failures on this replica's own files —
// shared-state trouble degrades the node, never fails the open.
func OpenFleet(dir string, opt Options, fopt fleet.Options) (*Cache, *fleet.Node, error) {
	c := New(opt)
	if fopt.Now == nil {
		fopt.Now = c.opt.Now
	}
	n, err := fleet.Open(dir, fopt)
	if err != nil {
		return nil, nil, err
	}
	c.AttachStore(n, persist.RecoveryStats{})
	return c, n, nil
}
