package qcache

// Persistence glue: attaching a crash-safe persist.Log to the answer
// cache (Tier 2) so restarts come up warm.
//
// On-disk entries are keyed by (catalog label, generation, core key).
// The label is the catalog's operator-chosen PersistentID — the
// process-local Catalog.ID() does not survive restarts — so only
// labeled catalogs persist. At the first lookup or store against a
// labeled catalog the cache lazily "restores" its label: it advances
// the live catalog's generation to the persisted one and installs the
// recovered entries under the live fingerprint, subject to the same
// LRU/byte/TTL bounds as freshly computed answers. Every recovered
// record is re-validated (core JSON parses, canonical key matches,
// arities agree); anything that fails is dropped and counted in
// Stats.PersistDrops, never served.
//
// Invalidation must go through InvalidateCatalog when persistence is
// on: it restores first (so the bump lands above the persisted
// generation), bumps the catalog, and appends a tombstone — a restart
// can then never resurrect the invalidated answers. A raw
// Catalog.Invalidate still protects the running process (the
// fingerprint changes), and the next StoreAnswers implicitly
// supersedes the persisted state via its higher generation; only a
// crash in between would restore pre-invalidation answers.

import (
	"encoding/json"
	"time"

	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/qcache/persist"
	"repro/internal/sources"
)

// OpenPersistent builds a Cache backed by the persistence directory:
// it recovers whatever survived under dir (tolerating torn tails,
// truncation, bit-flips, and missing files) and opens the log for
// appending. The only errors are real filesystem failures; corrupt
// content yields a cold cache, not a dead process.
func OpenPersistent(dir string, opt Options, popt persist.Options) (*Cache, persist.RecoveryStats, error) {
	c := New(opt)
	if popt.Now == nil {
		popt.Now = c.opt.Now
	}
	lg, rs, err := persist.Open(dir, popt)
	if err != nil {
		return nil, rs, err
	}
	c.AttachPersist(lg, rs)
	return c, rs, nil
}

// AttachPersist wires an opened log into the cache and folds its
// recovery accounting into the cache stats. Entries are installed
// lazily, per catalog label, at the first Answers/StoreAnswers against
// a catalog with that PersistentID.
func (c *Cache) AttachPersist(lg *persist.Log, rs persist.RecoveryStats) {
	c.AttachStore(lg, rs)
}

// AttachStore wires any persistence backend (a private Log or a fleet
// node) into the cache; see AttachPersist. On a backend whose Version
// advances (fleet), labels re-restore whenever the shared state moved
// behind this cache's back.
func (c *Cache) AttachStore(st persist.Store, rs persist.RecoveryStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.persist = st
	c.restored = map[string]uint64{}
	c.stats.PersistDrops += rs.CorruptDrops + rs.StaleDrops
}

// Persist returns the attached persistence backend (nil when the
// cache is memory only) — for stats, explicit Sync, and tests.
func (c *Cache) Persist() persist.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.persist
}

// ClosePersist flushes and closes the attached log (no-op when memory
// only). Graceful shutdown should call it so the last fsync batch is
// durable.
func (c *Cache) ClosePersist() error {
	c.mu.Lock()
	lg := c.persist
	c.mu.Unlock()
	if lg == nil {
		return nil
	}
	return lg.Close()
}

// InvalidateCatalog invalidates cat the persistence-aware way: restore
// first (so the new generation lands above everything persisted), bump
// the catalog, then append a tombstone pinning the bumped generation.
// After a restart the tombstone guarantees every answer stored below it
// stays dead. Without an attached log (or an unlabeled catalog) it
// degrades to a plain Catalog.Invalidate.
func (c *Cache) InvalidateCatalog(cat *sources.Catalog) {
	c.mu.Lock()
	c.ensureRestoredLocked(cat, false)
	cat.Invalidate()
	lg := c.persist
	var label string
	if lg != nil {
		label = cat.PersistentID()
	}
	gen := cat.Generation()
	c.mu.Unlock()
	if lg != nil && label != "" {
		_ = lg.AppendTombstone(label, gen)
	}
}

// ensureRestoredLocked warm-loads the persisted state for cat's label:
// advance the catalog's generation to the persisted one, then (when
// install is set) install the recovered entries under the live
// fingerprint. c.mu must be held. The install flag lets the
// invalidation path sync generations without paying to install entries
// it is about to orphan. With a private Log the load happens once per
// label (Version is constantly 0); with a fleet store it repeats each
// time the store version moved — a follower refresh or a fleet-wide
// invalidation changed the state behind this cache's back.
func (c *Cache) ensureRestoredLocked(cat *sources.Catalog, install bool) {
	if c.persist == nil {
		return
	}
	label := cat.PersistentID()
	if label == "" {
		return
	}
	ver := c.persist.Version() + 1 // +1 so the map's zero value means "never"
	if c.restored[label] == ver {
		return
	}
	c.restored[label] = ver
	gen, entries := c.persist.Label(label)
	if gen == 0 && len(entries) == 0 {
		return
	}
	cat.AdvanceGeneration(gen)
	if !install || c.opt.DisableAnswers {
		return
	}
	if cat.Generation() != gen {
		// The live catalog was already past the persisted generation
		// (invalidated in this process before its first persistent use):
		// everything on disk is stale.
		c.stats.PersistDrops += len(entries)
		return
	}
	catFP := catFingerprint(cat)
	for _, pe := range entries {
		a, ok := c.restoreEntry(pe, catFP)
		if !ok {
			c.stats.PersistDrops++
			continue
		}
		if a == nil {
			continue // TTL-expired, not corrupt
		}
		if _, dup := c.answers[a.key]; dup {
			continue
		}
		c.installAnswerLocked(a)
		c.stats.PersistLoads++
		c.stats.PersistBytes += a.bytes
	}
}

// restoreEntry re-validates one recovered record and converts it into
// an in-memory answer entry. ok=false means the record is structurally
// untrustworthy (drop and count); a nil entry with ok=true means it is
// merely TTL-expired.
func (c *Cache) restoreEntry(pe persist.Entry, catFP string) (*ansEntry, bool) {
	var cq logic.CQ
	if err := json.Unmarshal(pe.Core, &cq); err != nil {
		return nil, false
	}
	// The stored canonical key must match the stored core: a mismatch
	// means the canonicalization (or the bytes) drifted, and serving the
	// rows under this key could alias a different query.
	if cq.String() != pe.CoreKey || len(cq.HeadArgs) != pe.Arity {
		return nil, false
	}
	created := time.Unix(0, pe.Created)
	if !c.fresh(created) {
		return nil, true
	}
	rows := make([]engine.Row, 0, len(pe.Rows))
	var bytes int64
	for _, pr := range pe.Rows {
		if len(pr) != pe.Arity {
			return nil, false
		}
		row := make(engine.Row, len(pr))
		for j, v := range pr {
			if v.Null {
				row[j] = engine.NullValue
			} else {
				row[j] = engine.Value{S: v.S}
			}
		}
		rows = append(rows, row)
		bytes += int64(len(row.Key())) + 32
	}
	return &ansEntry{
		key: pe.CoreKey + "\x1f" + catFP, catFP: catFP, core: cq,
		arity: pe.Arity, rows: rows, bytes: bytes, created: created,
	}, true
}

// persistEntry renders one freshly stored answer as an on-disk record.
// ok=false when the core does not serialize (nothing is persisted; the
// in-memory entry is unaffected).
func persistEntry(label string, gen int64, now time.Time, coreKey string, core logic.CQ, rows []engine.Row) (persist.Entry, bool) {
	coreJSON, err := json.Marshal(core)
	if err != nil {
		return persist.Entry{}, false
	}
	prows := make([][]persist.Value, len(rows))
	for i, row := range rows {
		pr := make([]persist.Value, len(row))
		for j, v := range row {
			if v.Null {
				pr[j] = persist.Value{Null: true}
			} else {
				pr[j] = persist.Value{S: v.S}
			}
		}
		prows[i] = pr
	}
	return persist.Entry{
		Label: label, Gen: gen, Created: now.UnixNano(),
		CoreKey: coreKey, Core: coreJSON,
		Arity: len(core.HeadArgs), Rows: prows,
	}, true
}
