package persist

// Crash-recovery property test: kill the writer at a random byte
// offset (and, separately, flip random bits in whatever it wrote),
// reopen, and require that recovery (a) never fails, (b) serves only
// records that are byte-identical to ones actually appended, and (c)
// never resurrects a generation the writer had tombstoned.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writerTrace is everything the simulated process appended before the
// crash, keyed for verification. Every version appended under a key is
// kept: a torn tail legitimately rolls a key back to an earlier
// version, so recovery must produce *some* appended version verbatim —
// never a blend or an invention.
type writerTrace struct {
	entries map[string][]Entry // label \x00 gen \x00 coreKey -> appended versions
	maxGen  map[string]int64   // label -> highest generation written (entry or tombstone)
}

func (tr *writerTrace) record(e Entry) {
	k := traceKey(e.Label, e.Gen, e.CoreKey)
	tr.entries[k] = append(tr.entries[k], e)
	if e.Gen > tr.maxGen[e.Label] {
		tr.maxGen[e.Label] = e.Gen
	}
}

func traceKey(label string, gen int64, coreKey string) string {
	return fmt.Sprintf("%s\x00%d\x00%s", label, gen, coreKey)
}

// runDoomedWriter appends a random workload through a FaultFS that
// crashes at crashAt cumulative bytes, returning the trace of
// everything it tried to write.
func runDoomedWriter(t *testing.T, dir string, rng *rand.Rand, crashAt int64) *writerTrace {
	t.Helper()
	ffs := &FaultFS{CrashAtByte: crashAt}
	l, _, err := Open(dir, Options{FS: ffs, SyncEvery: 1 + rng.Intn(4), CompactBytes: int64(1+rng.Intn(4)) * 1024})
	if err != nil {
		// The crash offset can land inside Open's own header write; that
		// is still a valid crash point with an empty trace.
		return &writerTrace{entries: map[string][]Entry{}, maxGen: map[string]int64{}}
	}
	tr := &writerTrace{entries: map[string][]Entry{}, maxGen: map[string]int64{}}
	gens := map[string]int64{}
	for i := 0; i < 300 && !ffs.Crashed(); i++ {
		label := fmt.Sprintf("tenant-%d", rng.Intn(3))
		if rng.Intn(12) == 0 {
			gens[label]++
			// Count the generation whether or not the append reported
			// success: the crash can land exactly past the full frame, in
			// which case the tombstone is durable despite the error.
			l.AppendTombstone(label, gens[label])
			if gens[label] > tr.maxGen[label] {
				tr.maxGen[label] = gens[label]
			}
			continue
		}
		nrows := rng.Intn(4)
		var rows [][]Value
		if nrows > 0 {
			rows = make([][]Value, nrows)
		}
		for r := range rows {
			rows[r] = []Value{{S: fmt.Sprintf("v%d-%d", i, r)}, {S: fmt.Sprintf("w%d", rng.Intn(9))}}
		}
		e := Entry{
			Label:   label,
			Gen:     gens[label],
			Created: int64(i + 1),
			CoreKey: fmt.Sprintf("core-%d", rng.Intn(20)),
			Core:    []byte(fmt.Sprintf(`{"head":"Q","i":%d}`, i)),
			Arity:   2,
			Rows:    rows,
		}
		// Record the attempt whether or not Append reported success: a
		// failed append may still be partially durable (torn tail), and if
		// the full frame made it to disk the recovered copy must still
		// verify byte-identical.
		l.Append(e)
		tr.record(e)
	}
	l.Close() // the dead process's descriptors vanish either way
	if ffs.OpenHandles() != 0 {
		t.Fatalf("crash cycle leaked %d handles", ffs.OpenHandles())
	}
	return tr
}

// verifyRecovery checks the recovered state against the trace.
func verifyRecovery(t *testing.T, dir string, tr *writerTrace) {
	t.Helper()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery must never fail: %v", err)
	}
	defer l.Close()
	for label, max := range tr.maxGen {
		gen, entries := l.Label(label)
		if gen > max {
			t.Fatalf("label %s recovered generation %d beyond anything written (%d)", label, gen, max)
		}
		for _, got := range entries {
			if got.Gen != gen {
				t.Fatalf("label %s: entry at gen %d served under gen %d", label, got.Gen, gen)
			}
			versions, ok := tr.entries[traceKey(label, got.Gen, got.CoreKey)]
			if !ok {
				t.Fatalf("label %s: recovered entry %q@%d was never written", label, got.CoreKey, got.Gen)
			}
			match := false
			for _, want := range versions {
				if reflect.DeepEqual(got, want) {
					match = true
					break
				}
			}
			if !match {
				t.Fatalf("label %s: recovered entry matches no appended version:\n got %+v\nversions %+v", label, got, versions)
			}
		}
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			dir := t.TempDir()
			// Kill the writer somewhere inside the bytes it will write.
			crashAt := int64(1 + rng.Intn(20_000))
			tr := runDoomedWriter(t, dir, rng, crashAt)
			verifyRecovery(t, dir, tr)
		})
	}
}

func TestCrashRecoveryWithBitFlips(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 100; seed < 100+seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			dir := t.TempDir()
			tr := runDoomedWriter(t, dir, rng, int64(4_000+rng.Intn(16_000)))
			// Flip a few random bits across whatever files survived the
			// crash — disk rot on top of the torn tail.
			for _, name := range []string{logFile, snapFile} {
				path := filepath.Join(dir, name)
				data, err := os.ReadFile(path)
				if err != nil || len(data) == 0 {
					continue
				}
				for k := 0; k < 1+rng.Intn(3); k++ {
					data[rng.Intn(len(data))] ^= 1 << rng.Intn(8)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			// The flips may or may not hit live records; either way no
			// recovered record may differ from what was written, because a
			// flipped frame fails its checksum and is dropped. (A flip in a
			// length field can only shrink the readable prefix.)
			verifyRecovery(t, dir, tr)
		})
	}
}
