package persist

// Invalidation inboxes: the fan-out path for fleet invalidations.
// Followers cannot append to the shared log (single writer), but an
// invalidation accepted by any replica must reach every replica at
// least once. Each replica therefore owns one append-only file under
// <dir>/inbox/ — <id>.inval, same CRC framing as the log, tombstone
// records only — that it alone writes. Every node scans all inbox
// files each poll tick and applies the maximum generation per label;
// generation application is a forward-only CAS, so re-delivery is
// idempotent and "at least once" is free. The writer additionally
// absorbs inbox generations into the main log (as ordinary
// tombstones), after which the owning replica prunes its inbox back
// to the header. A torn or corrupt inbox suffix is dropped exactly
// like a torn log tail: the invalidation it carried was never acked
// durable, and the issuing replica re-appends on recovery if its
// catalog still holds the higher generation.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

const (
	inboxDirName = "inbox"
	inboxSuffix  = ".inval"
	inboxMagic   = "UCQNINBOX1\n"
)

// Inbox is one replica's owned invalidation file. Safe for concurrent
// use. Append failures follow the log's inert discipline: first
// unrecoverable failure turns the inbox off and Err reports why.
type Inbox struct {
	fsys FS
	path string

	mu      sync.Mutex
	f       File
	off     int64
	pending map[string]int64 // label -> highest gen this replica published
	broken  error
	closed  bool
}

// inboxPath returns the inbox file path for a replica ID.
func inboxPath(dir, id string) string {
	return filepath.Join(dir, inboxDirName, id+inboxSuffix)
}

// OpenInbox opens (creating if needed) the inbox owned by replica id
// under the shared dir, recovering its pending records. Torn tails
// are truncated away exactly as in Open.
func OpenInbox(fsys FS, dir, id string) (*Inbox, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if err := fsys.MkdirAll(filepath.Join(dir, inboxDirName)); err != nil {
		return nil, fmt.Errorf("persist: inbox dir: %w", err)
	}
	ib := &Inbox{fsys: fsys, path: inboxPath(dir, id), pending: map[string]int64{}}

	var validLen int64
	if data, err := fsys.ReadFile(ib.path); err == nil {
		for label, gen := range replayInbox(data, &validLen) {
			ib.pending[label] = gen
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("persist: inbox read: %w", err)
	}

	f, size, err := fsys.OpenAppend(ib.path)
	if err != nil {
		return nil, fmt.Errorf("persist: inbox open: %w", err)
	}
	ib.f = f
	ib.off = size
	if validLen < size {
		if err := f.Truncate(validLen); err != nil {
			f.Close()
			return nil, fmt.Errorf("persist: inbox truncate: %w", err)
		}
		ib.off = validLen
	}
	if ib.off == 0 {
		if err := ib.writeLocked([]byte(inboxMagic)); err != nil {
			ib.broken = err
		}
	}
	return ib, nil
}

// replayInbox folds the tombstones of one inbox file, reporting the
// highest generation per label and (via validLen) the truncation
// point past the last valid frame. Corrupt content is simply skipped:
// an invalidation that never became durable was never acked.
func replayInbox(data []byte, validLen *int64) map[string]int64 {
	out := map[string]int64{}
	*validLen = 0
	if len(data) < len(inboxMagic) || string(data[:len(inboxMagic)]) != inboxMagic {
		return out
	}
	off := len(inboxMagic)
	*validLen = int64(off)
	for off < len(data) {
		payload, next, err := readFrame(data, off)
		if err != nil {
			return out
		}
		rec, err := decodeRecord(payload)
		if err == nil && rec.tomb && rec.gen > out[rec.label] {
			out[rec.label] = rec.gen
		}
		off = next
		*validLen = int64(next)
	}
	return out
}

// Append publishes one invalidation (label advanced to gen), fsynced
// immediately — invalidations are rare and must not be lost to a
// batch window.
func (ib *Inbox) Append(label string, gen int64) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return fmt.Errorf("persist: inbox is closed")
	}
	if ib.broken != nil {
		return ib.broken
	}
	if gen <= ib.pending[label] {
		return nil // already published at or past gen
	}
	if err := ib.writeLocked(appendFrame(nil, encodeTombstone(label, gen))); err != nil {
		return err
	}
	if err := ib.f.Sync(); err != nil {
		ib.broken = fmt.Errorf("persist: inbox fsync: %w", err)
		return ib.broken
	}
	ib.pending[label] = gen
	return nil
}

func (ib *Inbox) writeLocked(b []byte) error {
	n, err := ib.f.Write(b)
	if err == nil && n == len(b) {
		ib.off += int64(n)
		return nil
	}
	if err == nil {
		err = fmt.Errorf("persist: inbox short write: %d of %d bytes", n, len(b))
	}
	if terr := ib.f.Truncate(ib.off); terr != nil {
		ib.broken = fmt.Errorf("%w (and truncate failed: %v)", err, terr)
		return ib.broken
	}
	return err
}

// Pending returns a copy of the labels this inbox still publishes.
func (ib *Inbox) Pending() map[string]int64 {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	out := make(map[string]int64, len(ib.pending))
	for label, gen := range ib.pending {
		out[label] = gen
	}
	return out
}

// PruneIfCovered truncates the inbox back to its header once every
// pending record is covered (per the callback — typically "the
// published log generation is at least this high"). Pruning is an
// optimization, not a correctness step: an unpruned record re-applies
// idempotently forever.
func (ib *Inbox) PruneIfCovered(covered func(label string, gen int64) bool) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed || ib.broken != nil || len(ib.pending) == 0 {
		return ib.broken
	}
	for label, gen := range ib.pending {
		if !covered(label, gen) {
			return nil
		}
	}
	if err := ib.f.Truncate(int64(len(inboxMagic))); err != nil {
		ib.broken = fmt.Errorf("persist: inbox prune: %w", err)
		return ib.broken
	}
	ib.off = int64(len(inboxMagic))
	ib.pending = map[string]int64{}
	return nil
}

// Err reports why the inbox turned itself off, nil while healthy.
func (ib *Inbox) Err() error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return ib.broken
}

// Close closes the inbox file.
func (ib *Inbox) Close() error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return nil
	}
	ib.closed = true
	return ib.f.Close()
}

// ReadInboxes scans every replica's inbox under dir and returns the
// highest published generation per label across the fleet. A missing
// inbox directory is an empty result; unreadable or corrupt files
// contribute what verifies and nothing more.
func ReadInboxes(fsys FS, dir string) map[string]int64 {
	if fsys == nil {
		fsys = OSFS{}
	}
	out := map[string]int64{}
	names, err := fsys.ReadDir(filepath.Join(dir, inboxDirName))
	if err != nil {
		return out
	}
	for _, name := range names {
		if !strings.HasSuffix(name, inboxSuffix) {
			continue
		}
		data, err := fsys.ReadFile(filepath.Join(dir, inboxDirName, name))
		if err != nil {
			continue
		}
		var valid int64
		for label, gen := range replayInbox(data, &valid) {
			if gen > out[label] {
				out[label] = gen
			}
		}
	}
	return out
}
