package persist

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestInboxAppendRecoverPrune(t *testing.T) {
	dir := t.TempDir()
	ib, err := OpenInbox(nil, dir, "replica-a")
	if err != nil {
		t.Fatalf("OpenInbox: %v", err)
	}
	if err := ib.Append("t0", 3); err != nil {
		t.Fatal(err)
	}
	if err := ib.Append("t1", 1); err != nil {
		t.Fatal(err)
	}
	// Re-publishing at or below the pending generation is a no-op.
	sizeBefore := inboxSize(t, dir, "replica-a")
	if err := ib.Append("t0", 3); err != nil {
		t.Fatal(err)
	}
	if err := ib.Append("t0", 2); err != nil {
		t.Fatal(err)
	}
	if got := inboxSize(t, dir, "replica-a"); got != sizeBefore {
		t.Fatalf("idempotent appends grew the inbox: %d -> %d", sizeBefore, got)
	}
	want := map[string]int64{"t0": 3, "t1": 1}
	if got := ib.Pending(); !reflect.DeepEqual(got, want) {
		t.Fatalf("pending = %v, want %v", got, want)
	}
	if err := ib.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen recovers the pending set; the fleet-wide scan sees it.
	ib2, err := OpenInbox(nil, dir, "replica-a")
	if err != nil {
		t.Fatal(err)
	}
	defer ib2.Close()
	if got := ib2.Pending(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered pending = %v, want %v", got, want)
	}
	if got := ReadInboxes(nil, dir); !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadInboxes = %v, want %v", got, want)
	}

	// Prune only once every record is covered.
	if err := ib2.PruneIfCovered(func(label string, gen int64) bool { return label == "t0" }); err != nil {
		t.Fatal(err)
	}
	if len(ib2.Pending()) != 2 {
		t.Fatal("partial coverage pruned the inbox")
	}
	if err := ib2.PruneIfCovered(func(string, int64) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if len(ib2.Pending()) != 0 {
		t.Fatalf("pending after prune = %v", ib2.Pending())
	}
	if got := inboxSize(t, dir, "replica-a"); got != int64(len(inboxMagic)) {
		t.Fatalf("pruned inbox size = %d, want header only", got)
	}
	if got := ReadInboxes(nil, dir); len(got) != 0 {
		t.Fatalf("ReadInboxes after prune = %v", got)
	}
}

func inboxSize(t *testing.T, dir, id string) int64 {
	t.Helper()
	st, err := os.Stat(inboxPath(dir, id))
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

func TestInboxTornTailDropsOnlyTheSuffix(t *testing.T) {
	dir := t.TempDir()
	ib, err := OpenInbox(nil, dir, "r")
	if err != nil {
		t.Fatal(err)
	}
	if err := ib.Append("first", 1); err != nil {
		t.Fatal(err)
	}
	if err := ib.Append("second", 2); err != nil {
		t.Fatal(err)
	}
	ib.Close()

	path := inboxPath(dir, "r")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	// The torn record was never durable, so it is not pending; the
	// intact prefix survives and the file is writable again.
	ib2, err := OpenInbox(nil, dir, "r")
	if err != nil {
		t.Fatal(err)
	}
	defer ib2.Close()
	if got := ib2.Pending(); !reflect.DeepEqual(got, map[string]int64{"first": 1}) {
		t.Fatalf("pending after torn tail = %v", got)
	}
	if err := ib2.Append("third", 3); err != nil {
		t.Fatalf("append after truncation: %v", err)
	}
	if got := ReadInboxes(nil, dir); !reflect.DeepEqual(got, map[string]int64{"first": 1, "third": 3}) {
		t.Fatalf("ReadInboxes = %v", got)
	}
}

func TestReadInboxesMergesReplicasAndSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenInbox(nil, dir, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenInbox(nil, dir, "b")
	if err != nil {
		t.Fatal(err)
	}
	a.Append("t", 2)
	a.Append("only-a", 1)
	b.Append("t", 5)
	a.Close()
	b.Close()
	// Garbage and non-inbox files in the directory contribute nothing.
	os.WriteFile(filepath.Join(dir, inboxDirName, "junk.inval"), []byte("not an inbox"), 0o644)
	os.WriteFile(filepath.Join(dir, inboxDirName, "README"), []byte("hi"), 0o644)

	want := map[string]int64{"t": 5, "only-a": 1}
	if got := ReadInboxes(nil, dir); !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadInboxes = %v, want %v", got, want)
	}
	// A missing inbox directory is an empty result, not an error.
	if got := ReadInboxes(nil, t.TempDir()); len(got) != 0 {
		t.Fatalf("empty dir ReadInboxes = %v", got)
	}
}
