package persist

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// mkLease builds a lease expiring ttl after now.
func mkLease(id, nonce string, now time.Time, ttl time.Duration) Lease {
	return Lease{ID: id, Nonce: nonce, ExpiresUnixNano: now.Add(ttl).UnixNano()}
}

func TestLeaseAcquireContendRenewRelease(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	ttl := 10 * time.Second

	a := mkLease("a", "a-1", now, ttl)
	if ok, err := TryAcquire(nil, dir, a, now); err != nil || !ok {
		t.Fatalf("first acquire: ok=%v err=%v", ok, err)
	}
	// A live lease is contention, not an error — even for the holder
	// retrying under a fresh nonce.
	b := mkLease("b", "b-1", now, ttl)
	if ok, err := TryAcquire(nil, dir, b, now.Add(time.Second)); err != nil || ok {
		t.Fatalf("contended acquire: ok=%v err=%v", ok, err)
	}

	cur, err := ReadLease(nil, dir)
	if err != nil || cur.ID != "a" || cur.Nonce != "a-1" {
		t.Fatalf("published lease = %+v, %v", cur, err)
	}

	// Renewal extends the holder; a stranger's renewal is ErrLeaseLost.
	a2 := a
	a2.ExpiresUnixNano = now.Add(2 * ttl).UnixNano()
	if err := Renew(nil, dir, a2); err != nil {
		t.Fatalf("holder renew: %v", err)
	}
	if cur, _ := ReadLease(nil, dir); cur.Expires() != a2.Expires() {
		t.Fatalf("renewal not published: %+v", cur)
	}
	if err := Renew(nil, dir, b); err != ErrLeaseLost {
		t.Fatalf("stranger renew = %v, want ErrLeaseLost", err)
	}
	if err := Release(nil, dir, b); err != ErrLeaseLost {
		t.Fatalf("stranger release = %v, want ErrLeaseLost", err)
	}
	if err := Release(nil, dir, a2); err != nil {
		t.Fatalf("holder release: %v", err)
	}
	// Released: the next acquirer does not wait out the TTL.
	if ok, err := TryAcquire(nil, dir, b, now.Add(2*time.Second)); err != nil || !ok {
		t.Fatalf("post-release acquire: ok=%v err=%v", ok, err)
	}
}

func TestLeaseExpiredStealAndOldHolderFencedOut(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	a := mkLease("a", "a-1", now, time.Second)
	if ok, _ := TryAcquire(nil, dir, a, now); !ok {
		t.Fatal("seed acquire failed")
	}
	// Past expiry, a contender steals in one TryAcquire.
	later := now.Add(2 * time.Second)
	b := mkLease("b", "b-1", later, 10*time.Second)
	if ok, err := TryAcquire(nil, dir, b, later); err != nil || !ok {
		t.Fatalf("steal: ok=%v err=%v", ok, err)
	}
	if cur, _ := ReadLease(nil, dir); cur.ID != "b" {
		t.Fatalf("lease after steal = %+v", cur)
	}
	// The old holder's renewal must fail: its record is gone.
	if err := Renew(nil, dir, a); err != ErrLeaseLost {
		t.Fatalf("dead holder renew = %v, want ErrLeaseLost", err)
	}
	// No temp or stale droppings survive a completed protocol round.
	names, err := OSFS{}.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if name != leaseFile {
			t.Fatalf("leftover lease artifact %q", name)
		}
	}
}

func TestLeaseConcurrentStealElectsExactlyOne(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	dead := mkLease("dead", "dead-1", now.Add(-time.Minute), time.Second)
	if ok, _ := TryAcquire(nil, dir, dead, now.Add(-time.Minute)); !ok {
		t.Fatal("seed acquire failed")
	}

	const contenders = 16
	wins := make(chan string, contenders)
	var wg sync.WaitGroup
	for i := 0; i < contenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l := mkLease(fmt.Sprintf("c%d", i), fmt.Sprintf("c%d-1", i), now, 10*time.Second)
			ok, err := TryAcquire(nil, dir, l, now)
			if err != nil {
				t.Errorf("contender %d: %v", i, err)
			}
			if ok {
				wins <- l.ID
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []string
	for id := range wins {
		winners = append(winners, id)
	}
	if len(winners) != 1 {
		t.Fatalf("%d contenders won the steal: %v", len(winners), winners)
	}
	if cur, err := ReadLease(nil, dir); err != nil || cur.ID != winners[0] {
		t.Fatalf("published lease %+v (err %v), want winner %s", cur, err, winners[0])
	}
}

// A renewal that lands between a stealer's expiry check and its
// rename must survive: the stealer re-reads the stolen record, sees
// it live, and restores it.
func TestLeaseStealRestoresRenewedHolder(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	a := mkLease("a", "a-1", now, time.Second)
	if ok, _ := TryAcquire(nil, dir, a, now); !ok {
		t.Fatal("seed acquire failed")
	}

	// The stealer runs at now+2s (lease looks dead). The FaultFS rename
	// hook fires just before the steal's rename — the holder renews in
	// that window, exactly the race the re-read guards.
	later := now.Add(2 * time.Second)
	renewed := a
	renewed.ExpiresUnixNano = later.Add(10 * time.Second).UnixNano()
	ffs := &FaultFS{}
	var once sync.Once
	ffs.OnRename = func(oldPath, newPath string) {
		if filepath.Base(oldPath) == leaseFile {
			once.Do(func() {
				if err := Renew(nil, dir, renewed); err != nil {
					t.Errorf("in-window renew: %v", err)
				}
			})
		}
	}
	b := mkLease("b", "b-1", later, 10*time.Second)
	ok, err := TryAcquire(ffs, dir, b, later)
	if err != nil {
		t.Fatalf("steal attempt: %v", err)
	}
	if ok {
		t.Fatal("steal succeeded over a renewed (live) lease")
	}
	cur, err := ReadLease(nil, dir)
	if err != nil || cur.ID != "a" || cur.Expires() != renewed.Expires() {
		t.Fatalf("renewed lease not restored: %+v, %v", cur, err)
	}
}
