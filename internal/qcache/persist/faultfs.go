package persist

// FaultFS: a filesystem for durability tests. It forwards to an inner
// FS (the real disk in an os.TempDir, usually) while injecting the
// failure modes the recovery path must survive — short writes, failed
// fsyncs, ENOSPC, and a simulated process death at an exact cumulative
// byte offset — and it counts open handles so tests can assert that
// crash/reopen cycles leak no file descriptors. It lives in the package
// proper (not a _test file) because the engine-level chaos suite
// injects it from other packages' tests.

import (
	"errors"
	"sync"
)

// Injected fault errors.
var (
	// ErrCrashed is returned by every operation after the crash offset
	// was hit: the simulated process is dead.
	ErrCrashed = errors.New("faultfs: crashed")
	// ErrNoSpace simulates ENOSPC.
	ErrNoSpace = errors.New("faultfs: no space left on device")
	// ErrSyncFailed simulates a failed fsync.
	ErrSyncFailed = errors.New("faultfs: fsync failed")
)

// FaultFS wraps an FS with fault injection. Configure the exported
// fields before handing it to Open; they must not be changed while the
// log is live (the mutex protects the counters, not the policy).
type FaultFS struct {
	// Inner is the real filesystem (nil = OSFS).
	Inner FS

	// CrashAtByte simulates the process dying mid-write: once the
	// cumulative bytes written through this FS reach the offset, the
	// crossing write persists only the bytes up to it and every later
	// operation fails with ErrCrashed. Zero disables.
	CrashAtByte int64
	// ShortWriteEveryN truncates every Nth write to half its length
	// (with a write error), exercising the torn-tail truncation path.
	// Zero disables.
	ShortWriteEveryN int
	// FailSyncEveryN fails every Nth Sync with ErrSyncFailed. Zero
	// disables.
	FailSyncEveryN int
	// MaxBytes simulates a full disk: writes that would push the
	// cumulative written bytes past it fail with ErrNoSpace (nothing of
	// the failing write is persisted). Zero disables.
	MaxBytes int64

	// OnRename, when set, runs immediately before every Rename goes
	// through (after the crash check). Interleaving tests block here to
	// freeze a writer mid-compaction — between snapshot publication and
	// log truncation — while a follower reads.
	OnRename func(oldPath, newPath string)
	// OnReadFile, when set, runs immediately before every ReadFile.
	// Interleaving tests use it to stall a follower between its reads of
	// the snapshot and the log while the writer compacts underneath it.
	OnReadFile func(path string)

	mu      sync.Mutex
	written int64
	writes  int
	syncs   int
	crashed bool
	open    int
}

func (f *FaultFS) inner() FS {
	if f.Inner == nil {
		return OSFS{}
	}
	return f.Inner
}

// Written reports the cumulative bytes written through the FS.
func (f *FaultFS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Crashed reports whether the crash offset was reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// OpenHandles reports the number of files opened through the FS and not
// yet closed — the fd-leak gauge for crash/reopen cycle tests.
func (f *FaultFS) OpenHandles() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.open
}

// checkAlive returns ErrCrashed once the crash offset was hit.
func (f *FaultFS) checkAlive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// admitWrite decides how much of an n-byte write goes through and which
// error the writer sees. It charges the admitted bytes.
func (f *FaultFS) admitWrite(n int) (allowed int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	f.writes++
	allowed = n
	if f.ShortWriteEveryN > 0 && f.writes%f.ShortWriteEveryN == 0 {
		allowed = n / 2
		err = errors.New("faultfs: injected short write")
	}
	if f.MaxBytes > 0 && f.written+int64(allowed) > f.MaxBytes {
		return 0, ErrNoSpace
	}
	if f.CrashAtByte > 0 && f.written+int64(allowed) >= f.CrashAtByte {
		allowed = int(f.CrashAtByte - f.written)
		if allowed < 0 {
			allowed = 0
		}
		f.crashed = true
		err = ErrCrashed
	}
	f.written += int64(allowed)
	return allowed, err
}

func (f *FaultFS) admitSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.syncs++
	if f.FailSyncEveryN > 0 && f.syncs%f.FailSyncEveryN == 0 {
		return ErrSyncFailed
	}
	return nil
}

// faultFile wraps an inner File, consulting the parent FS on every
// operation.
type faultFile struct {
	fs     *FaultFS
	inner  File
	closed bool
}

func (f *faultFile) Write(b []byte) (int, error) {
	allowed, ferr := f.fs.admitWrite(len(b))
	n := 0
	if allowed > 0 {
		var werr error
		n, werr = f.inner.Write(b[:allowed])
		if ferr == nil {
			ferr = werr
		}
	}
	if ferr == nil && n < len(b) {
		ferr = errors.New("faultfs: short write")
	}
	return n, ferr
}

func (f *faultFile) Sync() error {
	if err := f.fs.admitSync(); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if err := f.fs.checkAlive(); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error {
	if !f.closed {
		f.closed = true
		f.fs.mu.Lock()
		f.fs.open--
		f.fs.mu.Unlock()
	}
	// Closing is allowed even post-crash: the dead process's descriptors
	// are gone either way, and the leak gauge must drain.
	return f.inner.Close()
}

// MkdirAll implements FS.
func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner().MkdirAll(dir)
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(path string) (File, int64, error) {
	if err := f.checkAlive(); err != nil {
		return nil, 0, err
	}
	inner, size, err := f.inner().OpenAppend(path)
	if err != nil {
		return nil, 0, err
	}
	f.mu.Lock()
	f.open++
	f.mu.Unlock()
	return &faultFile{fs: f, inner: inner}, size, nil
}

// Create implements FS.
func (f *FaultFS) Create(path string) (File, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	inner, err := f.inner().Create(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.open++
	f.mu.Unlock()
	return &faultFile{fs: f, inner: inner}, nil
}

// ReadFile implements FS.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	if f.OnReadFile != nil {
		f.OnReadFile(path)
	}
	return f.inner().ReadFile(path)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	if f.OnRename != nil {
		f.OnRename(oldPath, newPath)
	}
	return f.inner().Rename(oldPath, newPath)
}

// Link implements FS.
func (f *FaultFS) Link(oldPath, newPath string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner().Link(oldPath, newPath)
}

// Remove implements FS.
func (f *FaultFS) Remove(path string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner().Remove(path)
}

// ReadDir implements FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	return f.inner().ReadDir(dir)
}

// SyncDir implements FS.
func (f *FaultFS) SyncDir(dir string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner().SyncDir(dir)
}
