package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFollowerLoadStateMirrorsTheLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1, CompactBytes: -1})
	defer l.Close()
	want := []Entry{
		entry("t", 0, "k1", row("a")),
		entry("t", 0, "k2", row("b", "c")),
	}
	for _, e := range want {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendTombstone("gone", 7); err != nil {
		t.Fatal(err)
	}

	st, err := LoadState(nil, dir)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if st.Seq%2 != 0 {
		t.Fatalf("Seq = %d, want even", st.Seq)
	}
	gen, got := st.Label("t")
	if gen != 0 {
		t.Fatalf("gen = %d", gen)
	}
	sortEntries(got)
	sortEntries(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("follower state differs:\n got %+v\nwant %+v", got, want)
	}
	if st.Gen("gone") != 7 {
		t.Fatalf("tombstoned gen = %d, want 7", st.Gen("gone"))
	}
	labels := st.Labels()
	if len(labels) != 2 {
		t.Fatalf("labels = %v", labels)
	}

	// After the writer compacts, a fresh load sees the same state under
	// a higher even sequence.
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	st2, err := LoadState(nil, dir)
	if err != nil {
		t.Fatalf("post-compaction LoadState: %v", err)
	}
	if st2.Seq <= st.Seq || st2.Seq%2 != 0 {
		t.Fatalf("Seq after compaction = %d (was %d), want higher even", st2.Seq, st.Seq)
	}
	_, got2 := st2.Label("t")
	sortEntries(got2)
	if !reflect.DeepEqual(got2, want) {
		t.Fatalf("compacted follower state differs: %+v", got2)
	}
}

func TestFollowerRejectsOddSeq(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1})
	l.Append(entry("t", 0, "k", row("v")))
	l.Close()
	// An odd sequence on disk means a compaction is (or died) in
	// flight: the pair may be mid-rewrite, so the load must bail.
	if err := os.WriteFile(filepath.Join(dir, verFile), []byte("3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadState(nil, dir); err != ErrConcurrentCompaction {
		t.Fatalf("odd seq load = %v, want ErrConcurrentCompaction", err)
	}
	// The owner's Open repairs the odd marker (crashed compaction) and
	// followers can read again.
	l2, _ := mustOpen(t, dir, Options{})
	defer l2.Close()
	if _, err := LoadState(nil, dir); err != nil {
		t.Fatalf("load after repair: %v", err)
	}
}

// The deterministic interleaving: a follower that read the snapshot
// stalls before reading the log; the writer compacts in that window.
// The seqlock close must reject the mixed-epoch read.
func TestFollowerLoadRacingCompactionIsRejected(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{}
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1, CompactBytes: -1})
	defer l.Close()
	for i := 0; i < 8; i++ {
		if err := l.Append(entry("t", 0, fmt.Sprintf("k%d", i), row("v"))); err != nil {
			t.Fatal(err)
		}
	}

	var once sync.Once
	ffs.OnReadFile = func(path string) {
		if filepath.Base(path) != logFile {
			return
		}
		once.Do(func() {
			if err := l.Compact(); err != nil {
				t.Errorf("in-window Compact: %v", err)
			}
		})
	}
	if _, err := LoadState(ffs, dir); err != ErrConcurrentCompaction {
		t.Fatalf("racing load = %v, want ErrConcurrentCompaction", err)
	}
	// The retry (no compaction in the window this time) sees the full
	// compacted state.
	ffs.OnReadFile = nil
	st, err := LoadState(ffs, dir)
	if err != nil {
		t.Fatalf("retry load: %v", err)
	}
	if st.Stats.Entries != 8 {
		t.Fatalf("retry entries = %d, want 8", st.Stats.Entries)
	}
}

// The property form of the race: a writer appends and compacts under
// real concurrency while followers load continuously. Every
// successful load must be internally consistent (adjacent keys within
// one write round of each other) and follower reads must be monotonic
// — a later successful load never observes earlier values.
func TestFollowerReadsAreMonotonicUnderCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1, CompactBytes: -1})

	var stop atomic.Bool
	var writerErr atomic.Value
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; !stop.Load(); i++ {
			v := fmt.Sprintf("%08d", i)
			if err := l.Append(entry("t", 0, "hot", row(v))); err != nil {
				writerErr.Store(err)
				return
			}
			if err := l.Append(entry("t", 0, "ctr", row(v))); err != nil {
				writerErr.Store(err)
				return
			}
			if i%7 == 0 {
				if err := l.Compact(); err != nil {
					writerErr.Store(err)
					return
				}
			}
		}
	}()

	parse := func(es []Entry, key string) int {
		for _, e := range es {
			if e.CoreKey == key {
				n := 0
				fmt.Sscanf(e.Rows[0][0].S, "%d", &n)
				return n
			}
		}
		return 0
	}
	lastHot, successes, rejects := 0, 0, 0
	for i := 0; i < 400; i++ {
		st, err := LoadState(nil, dir)
		if err == ErrConcurrentCompaction {
			rejects++
			continue
		}
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		successes++
		_, es := st.Label("t")
		hot, ctr := parse(es, "hot"), parse(es, "ctr")
		// Within one epoch the two keys were written back to back:
		// they can differ by at most the in-flight round.
		if d := hot - ctr; d < 0 || d > 1 {
			t.Fatalf("mixed-epoch state: hot=%d ctr=%d", hot, ctr)
		}
		if hot < lastHot {
			t.Fatalf("follower went back in time: %d after %d", hot, lastHot)
		}
		lastHot = hot
	}
	stop.Store(true)
	<-done
	if err, _ := writerErr.Load().(error); err != nil {
		t.Fatalf("writer: %v", err)
	}
	l.Close()
	if successes == 0 {
		t.Fatalf("no load succeeded (%d compaction rejects)", rejects)
	}
	if lastHot == 0 {
		t.Fatal("follower never observed a write")
	}
}
