// Package persist is the crash-safe spill layer for the Tier 2 answer
// cache (internal/qcache): an append-only log of checksummed,
// length-prefixed records — per-disjunct answer rows keyed by a stable
// catalog label, catalog generation, and canonical core key, plus
// generation tombstones — with periodic compacted snapshots written via
// atomic rename, and batched fsyncs.
//
// The durability contract is asymmetric by design. Writes are
// best-effort: an append that fails (short write, ENOSPC, dead disk)
// degrades the process to a memory-only cache, never fails a query.
// Reads are paranoid: recovery accepts a record only when its frame is
// intact (length sane, CRC32-C matching, fields well-formed) and its
// generation is current, and it tolerates torn tails, truncation,
// bit-flips, and missing files by dropping exactly the unverifiable
// suffix or record — Open never fails on corrupt content, and a corrupt
// row is never surfaced. A recovered torn tail is truncated away before
// the log is appended to again, so new records always begin at a valid
// frame boundary.
//
// Generations provide the invalidation story across restarts: an entry
// is live only under its label's highest generation seen anywhere in
// the snapshot or log. Catalog.Invalidate during operation appends a
// tombstone carrying the bumped generation, so a restart can never
// resurrect answers the tenant explicitly invalidated; on recovery the
// in-memory catalog is advanced past the persisted generation before
// any entry is served.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

const (
	logFile      = "answers.log"
	snapFile     = "answers.snap"
	snapTmpFile  = "answers.snap.tmp"
	verFile      = "answers.ver"
	verTmpFile   = "answers.ver.tmp"
	defaultSync  = 64
	defaultBytes = 8 << 20
)

// Store is what the answer cache needs from a persistence backend. Log
// implements it for the single-process case; a fleet node implements it
// over a shared directory (the writer role delegating to an owned Log,
// the reader role to follower snapshots). All implementations must be
// safe for concurrent use and must never fail a caller for durability's
// sake: a broken backend reports through Err and keeps absorbing calls.
type Store interface {
	// Label returns the label's current generation and its live entries.
	Label(label string) (gen int64, entries []Entry)
	// Append records one answer entry (best-effort; see Err).
	Append(e Entry) error
	// AppendTombstone records that label's generation advanced to gen.
	AppendTombstone(label string, gen int64) error
	// Version is a monotonic counter that advances whenever the visible
	// state may have changed *behind the owning cache's back* (a fleet
	// follower refresh, an absorbed remote invalidation). A cache
	// re-restores a label when the version moved since its last restore.
	// A plain Log always returns 0: its state changes only through its
	// own cache's writes.
	Version() uint64
	// Err reports why the backend stopped persisting, nil while healthy.
	Err() error
	// Sync flushes buffered appends to stable storage.
	Sync() error
	// Close releases the backend (final flush included).
	Close() error
	// Dir returns the backing directory (diagnostics).
	Dir() string
}

// Options configures a Log. The zero value uses the real filesystem,
// fsyncs every 64 appended records, and compacts when the log file
// exceeds 8 MiB.
type Options struct {
	// FS is the filesystem implementation (nil = OSFS). Tests inject a
	// FaultFS here.
	FS FS
	// SyncEvery fsyncs the log after this many appended records
	// (default 64; 1 = every record; negative = only on Compact/Close).
	SyncEvery int
	// CompactBytes triggers a snapshot + log truncation when the log
	// file grows past this size (default 8 MiB; negative = never).
	CompactBytes int64
	// Now is the clock used to stamp snapshots (nil = time.Now); tests
	// inject a virtual clock for deterministic snapshot-age behavior.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = defaultSync
	}
	if o.CompactBytes == 0 {
		o.CompactBytes = defaultBytes
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// RecoveryStats reports what Open found on disk.
type RecoveryStats struct {
	// SnapshotRecords and LogRecords count the frames that decoded and
	// verified from each file.
	SnapshotRecords int
	LogRecords      int
	// Entries is the number of live answer entries after generation
	// filtering — what a warm load can install.
	Entries int
	// Bytes approximates the row bytes of the live entries.
	Bytes int64
	// CorruptDrops counts corruption events: an unreadable snapshot, a
	// torn or bit-flipped frame (and the suffix it takes with it), or a
	// record whose fields failed validation.
	CorruptDrops int
	// StaleDrops counts verified records dropped because a higher
	// generation (entry or tombstone) superseded them.
	StaleDrops int
	// TruncatedBytes is the size of the torn log tail cut off before
	// reopening for append.
	TruncatedBytes int64
}

// labelState is the live state of one catalog label: its highest
// generation and the entries stored under it.
type labelState struct {
	gen     int64
	entries map[string]Entry // core key -> entry
}

// stateMap is the generation-filtered fold of a record stream, shared
// by the writer's Log and the read-only follower State.
type stateMap map[string]*labelState

// apply folds one record into the state. Generation rules: a record
// below its label's current generation is stale; one above it bumps the
// label and clears the superseded entries.
func (m stateMap) apply(rec record, rs *RecoveryStats) {
	label, gen := rec.label, rec.gen
	if !rec.tomb {
		label, gen = rec.entry.Label, rec.entry.Gen
	}
	st := m[label]
	if st == nil {
		st = &labelState{entries: map[string]Entry{}}
		m[label] = st
	}
	if gen < st.gen {
		if rs != nil && !rec.tomb {
			rs.StaleDrops++
		}
		return
	}
	if gen > st.gen {
		if rs != nil {
			rs.StaleDrops += len(st.entries)
		}
		st.gen = gen
		st.entries = map[string]Entry{}
	}
	if !rec.tomb {
		st.entries[rec.entry.CoreKey] = rec.entry
	}
}

// replayAt applies every valid frame of data (which must start with the
// given magic) to the state, returning the number of applied records
// and reporting in valid the byte offset one past the last valid frame
// (the truncation point for the log file).
func (m stateMap) replayAt(data []byte, magic string, rs *RecoveryStats, valid *int64) int {
	*valid = 0
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		if len(data) > 0 {
			rs.CorruptDrops++
		}
		return 0
	}
	*valid = int64(len(magic))
	off, applied := len(magic), 0
	for off < len(data) {
		payload, next, err := readFrame(data, off)
		if err != nil {
			// Torn or flipped: everything from here on is unverifiable.
			rs.CorruptDrops++
			return applied
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The frame verified but the payload did not parse (version
			// drift, or a collision-surviving flip). Drop this record but
			// keep scanning: framing is still trustworthy.
			rs.CorruptDrops++
			off = next
			*valid = int64(next)
			continue
		}
		m.apply(rec, rs)
		applied++
		off = next
		*valid = int64(next)
	}
	return applied
}

// label returns the label's generation and a copy of its live entries.
func (m stateMap) label(label string) (int64, []Entry) {
	st := m[label]
	if st == nil {
		return 0, nil
	}
	out := make([]Entry, 0, len(st.entries))
	for _, e := range st.entries {
		out = append(out, e)
	}
	return st.gen, out
}

// Log is the persistence layer: an in-memory mirror of the live entries
// plus the append-only file feeding recovery. It is safe for concurrent
// use. All write failures are absorbed after the first: the log turns
// itself off (Err reports why) and the owning cache keeps serving from
// memory.
type Log struct {
	dir string
	opt Options

	mu      sync.Mutex
	f       File
	off     int64 // durable log size: end of the last fully written frame
	pending int   // appended records since the last fsync
	state   stateMap
	seq     int64 // published compaction sequence (even = stable; see LoadState)
	broken  error // first unrecoverable write failure; nil while healthy
	closed  bool
}

// Open recovers the persisted state under dir (creating it if needed)
// and opens the log for appending. Corrupt or stale content is dropped
// and counted, never fatal: the only errors Open returns are real
// filesystem failures (permission, I/O on open) — a trashed file yields
// an empty state, not a dead server.
func Open(dir string, opt Options) (*Log, RecoveryStats, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(dir); err != nil {
		return nil, RecoveryStats{}, fmt.Errorf("persist: %w", err)
	}
	l := &Log{dir: dir, opt: opt, state: stateMap{}}
	var rs RecoveryStats

	// A crash mid-snapshot leaves the temporary file behind; it was
	// never renamed, so it is dead weight.
	_ = opt.FS.Remove(filepath.Join(dir, snapTmpFile))

	// An odd published sequence means the previous writer died
	// mid-compaction: followers reject such a state (seqlock), so even
	// it out — the files themselves are consistent (the rename either
	// happened or it did not; replay is idempotent either way).
	l.seq = readSeq(opt.FS, dir)
	if l.seq%2 == 1 {
		if err := writeSeq(opt.FS, dir, l.seq+1); err == nil {
			l.seq++
		}
	}

	// Snapshot first (the compacted past), then the log (everything
	// since). Replaying log records over snapshot state is idempotent:
	// entries overwrite equal entries, generations only advance.
	if data, err := opt.FS.ReadFile(filepath.Join(dir, snapFile)); err == nil {
		var valid int64
		rs.SnapshotRecords = l.state.replayAt(data, snapMagic, &rs, &valid)
	} else if !os.IsNotExist(err) {
		rs.CorruptDrops++ // unreadable snapshot: treat as lost, not fatal
	}

	logPath := filepath.Join(dir, logFile)
	var validLog int64
	if data, err := opt.FS.ReadFile(logPath); err == nil {
		n, valid := 0, int64(0)
		n = l.state.replayAt(data, logMagic, &rs, &valid)
		rs.LogRecords = n
		validLog = valid
		if valid < int64(len(data)) {
			rs.TruncatedBytes = int64(len(data)) - valid
		}
	} else if !os.IsNotExist(err) {
		rs.CorruptDrops++
	}

	f, size, err := opt.FS.OpenAppend(logPath)
	if err != nil {
		return nil, RecoveryStats{}, fmt.Errorf("persist: %w", err)
	}
	l.f = f
	l.off = size
	// Cut off the torn tail (or an entirely unreadable log) so appends
	// resume at a frame boundary. A log without even a magic header is
	// rewritten from scratch.
	if validLog < size {
		if err := f.Truncate(validLog); err != nil {
			f.Close()
			return nil, RecoveryStats{}, fmt.Errorf("persist: truncate torn tail: %w", err)
		}
		l.off = validLog
	}
	if l.off == 0 {
		if err := l.writeLocked([]byte(logMagic)); err != nil {
			l.broken = err
		}
	}

	for _, st := range l.state {
		for _, e := range st.entries {
			rs.Entries++
			rs.Bytes += entryBytes(e)
		}
	}
	return l, rs, nil
}

// entryBytes approximates the resident row bytes of one entry.
func entryBytes(e Entry) int64 {
	var n int64
	for _, row := range e.Rows {
		n += 16
		for _, v := range row {
			n += int64(len(v.S)) + 16
		}
	}
	return n
}

// Label returns the label's current generation and a copy of its live
// entries (nil when the label has no persisted state).
func (l *Log) Label(label string) (gen int64, entries []Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state.label(label)
}

// Gen returns the label's current generation without copying entries —
// the cheap accessor the fleet writer uses to decide whether an inbox
// tombstone is already absorbed.
func (l *Log) Gen(label string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.state[label]
	if st == nil {
		return 0
	}
	return st.gen
}

// Version implements Store. A plain Log's state changes only through
// its own cache's Append/AppendTombstone calls, so the restore-once
// behavior of the cache is preserved by never advancing.
func (l *Log) Version() uint64 { return 0 }

// Fence turns the log inert with the given reason (no-op when already
// broken or err is nil). A fleet writer that lost its lease fences its
// log before demoting so no append can race the next writer's takeover.
func (l *Log) Fence(err error) {
	if err == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken == nil {
		l.broken = err
	}
}

// Append records one answer entry. Errors are reported but terminal
// only for the log, not the caller: after the first unrecoverable
// failure the log goes inert and every later Append returns the same
// error (check Err).
func (l *Log) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	l.state.apply(record{entry: e}, nil)
	return l.appendFrameLocked(encodeEntry(e))
}

// AppendTombstone records that label's generation advanced to gen: on
// recovery every entry below gen is dropped, so a restart cannot
// resurrect explicitly invalidated answers.
func (l *Log) AppendTombstone(label string, gen int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	l.state.apply(record{tomb: true, label: label, gen: gen}, nil)
	return l.appendFrameLocked(encodeTombstone(label, gen))
}

func (l *Log) usableLocked() error {
	if l.closed {
		return errors.New("persist: log is closed")
	}
	return l.broken
}

// appendFrameLocked frames, writes, and (per the batching policy)
// fsyncs one payload, compacting afterwards if the log outgrew its
// bound.
func (l *Log) appendFrameLocked(payload []byte) error {
	if err := l.writeLocked(appendFrame(nil, payload)); err != nil {
		return err
	}
	l.pending++
	if l.opt.SyncEvery > 0 && l.pending >= l.opt.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if l.opt.CompactBytes > 0 && l.off > l.opt.CompactBytes {
		return l.compactLocked()
	}
	return nil
}

// writeLocked appends raw bytes to the log file. A short or failed
// write leaves a torn tail; the log tries to truncate back to the last
// good frame boundary and stay usable, and turns itself off when even
// that fails.
func (l *Log) writeLocked(b []byte) error {
	n, err := l.f.Write(b)
	if err == nil && n == len(b) {
		l.off += int64(n)
		return nil
	}
	if err == nil {
		err = fmt.Errorf("persist: short write: %d of %d bytes", n, len(b))
	} else {
		err = fmt.Errorf("persist: write: %w", err)
	}
	if terr := l.f.Truncate(l.off); terr != nil {
		// The tail is torn and uncuttable: stop persisting entirely
		// rather than ever appending after garbage. Recovery will drop
		// the tail on the next start.
		l.broken = fmt.Errorf("%w (and truncate failed: %v)", err, terr)
		return l.broken
	}
	return err
}

func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		// A failed fsync means unknown durability for everything since
		// the last success; the safe stance is to stop claiming any.
		l.broken = fmt.Errorf("persist: fsync: %w", err)
		return l.broken
	}
	l.pending = 0
	return nil
}

// Compact writes the current live state as a fresh snapshot (atomic
// rename) and truncates the log.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	return l.compactLocked()
}

func (l *Log) compactLocked() error {
	// Seqlock open: publish an odd sequence before touching the
	// snapshot/log pair so a follower that reads the files while we
	// rewrite them sees seq-before != seq-after (or an odd value) and
	// keeps its last good state instead of mixing epochs.
	if err := writeSeq(l.opt.FS, l.dir, l.seq+1); err != nil {
		return l.giveUp(fmt.Errorf("persist: seq open: %w", err))
	}
	l.seq++
	// Render the snapshot: per label a tombstone pinning the generation
	// (so labels whose entries all expired still invalidate), then the
	// entries.
	buf := []byte(snapMagic)
	for label, st := range l.state {
		buf = appendFrame(buf, encodeTombstone(label, st.gen))
		for _, e := range st.entries {
			buf = appendFrame(buf, encodeEntry(e))
		}
	}
	tmp := filepath.Join(l.dir, snapTmpFile)
	f, err := l.opt.FS.Create(tmp)
	if err != nil {
		return l.giveUp(fmt.Errorf("persist: snapshot create: %w", err))
	}
	n, err := f.Write(buf)
	if err == nil && n != len(buf) {
		err = fmt.Errorf("short write: %d of %d bytes", n, len(buf))
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		_ = l.opt.FS.Remove(tmp)
		return l.giveUp(fmt.Errorf("persist: snapshot write: %w", err))
	}
	// The commit point: an intact snapshot atomically replaces the old
	// one. A crash before this rename keeps the old snapshot + full log;
	// a crash after it keeps the new snapshot + stale log records, which
	// replay idempotently.
	if err := l.opt.FS.Rename(tmp, filepath.Join(l.dir, snapFile)); err != nil {
		_ = l.opt.FS.Remove(tmp)
		return l.giveUp(fmt.Errorf("persist: snapshot rename: %w", err))
	}
	if err := l.opt.FS.SyncDir(l.dir); err != nil {
		return l.giveUp(fmt.Errorf("persist: snapshot dir sync: %w", err))
	}
	// Reset the log to just its header.
	if err := l.f.Truncate(int64(len(logMagic))); err != nil {
		return l.giveUp(fmt.Errorf("persist: log reset: %w", err))
	}
	l.off = int64(len(logMagic))
	l.pending = 0
	// Seqlock close: the snapshot/log pair is consistent again.
	if err := writeSeq(l.opt.FS, l.dir, l.seq+1); err != nil {
		return l.giveUp(fmt.Errorf("persist: seq close: %w", err))
	}
	l.seq++
	return nil
}

// readSeq reads the published compaction sequence, 0 when the file is
// missing or unparseable (a fresh or pre-seqlock directory).
func readSeq(fsys FS, dir string) int64 {
	data, err := fsys.ReadFile(filepath.Join(dir, verFile))
	if err != nil {
		return 0
	}
	var seq int64
	if _, err := fmt.Sscanf(string(data), "%d", &seq); err != nil || seq < 0 {
		return 0
	}
	return seq
}

// writeSeq durably publishes seq: write-temp, fsync, atomic rename,
// directory fsync — the same discipline as the snapshot itself.
func writeSeq(fsys FS, dir string, seq int64) error {
	tmp := filepath.Join(dir, verTmpFile)
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	b := []byte(fmt.Sprintf("%d\n", seq))
	n, err := f.Write(b)
	if err == nil && n != len(b) {
		err = fmt.Errorf("short write: %d of %d bytes", n, len(b))
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, verFile)); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// giveUp marks the log permanently inert after an unrecoverable
// compaction failure (the on-disk state stays consistent — recovery
// reads whichever of snapshot/log combination survived).
func (l *Log) giveUp(err error) error {
	l.broken = err
	return err
}

// Sync flushes any unsynced appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if l.pending == 0 {
		return nil
	}
	return l.syncLocked()
}

// Err reports why the log turned itself off, or nil while it is
// healthy.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Dir returns the directory the log persists under.
func (l *Log) Dir() string { return l.dir }

// Close flushes and closes the log file. The graceful-shutdown path of
// a server should call it so the last fsync batch is durable.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.broken == nil && l.pending > 0 {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return err
}
