package persist

// On-disk record format. Both files — the append-only log and the
// compacted snapshot — are a magic header followed by a sequence of
// frames:
//
//	[payload length: uint32 LE][CRC32-C of payload: uint32 LE][payload]
//
// The checksum covers the payload only; the length field is validated
// against the remaining file size and a hard cap, so a corrupt length
// cannot force a giant allocation. Any frame that fails validation ends
// the readable prefix: recovery keeps everything before it and drops the
// rest, which is exactly the torn-tail semantics an append-only log
// wants (a record is either wholly durable or it never happened).
//
// A payload is a record-type byte followed by the record's fields:
//
//	entry     = 0x01, label, gen, created, coreKey, coreJSON, arity,
//	            nrows, rows (each: ncols, then per value a null flag
//	            byte and the string bytes)
//	tombstone = 0x02, label, gen
//
// Integers are varints; strings are uvarint length + raw bytes. Rows
// are stored as strings (interned IDs are process-local and meaningless
// on disk).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

const (
	logMagic  = "UCQNLOG1\n"
	snapMagic = "UCQNSNAP1\n"

	recEntry     = 0x01
	recTombstone = 0x02

	// maxFrame caps a single record; anything larger is treated as
	// corruption rather than allocated.
	maxFrame = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Value is one answer cell: a constant string or the distinguished
// null. It mirrors engine.Value without importing the engine.
type Value struct {
	S    string
	Null bool
}

// Entry is one persisted answer-cache record: the rows of one
// disjunct's answer under one catalog identity and generation.
type Entry struct {
	// Label is the catalog's stable persistent identity (chosen by the
	// operator, e.g. the tenant name) — never the process-local catalog
	// ID, which does not survive a restart.
	Label string
	// Gen is the catalog generation the rows were computed under.
	Gen int64
	// Created is the entry's creation time in Unix nanoseconds (for TTL
	// expiry across restarts).
	Created int64
	// CoreKey is the canonical core key the cache indexes the entry by.
	CoreKey string
	// Core is the canonical core itself (JSON-encoded logic.CQ), kept so
	// a recovered entry can participate in equivalence scans.
	Core []byte
	// Arity is the head arity of the core.
	Arity int
	// Rows are the disjunct's answer rows.
	Rows [][]Value
}

// record is one decoded frame: an entry or a tombstone.
type record struct {
	tomb  bool
	label string // tombstone fields
	gen   int64
	entry Entry // valid when !tomb
}

// errCorrupt marks an unreadable frame; recovery converts it into "drop
// the suffix", never into a failed open.
var errCorrupt = errors.New("persist: corrupt record")

// appendFrame appends one length+crc framed payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// readFrame reads the frame starting at off, returning the payload and
// the offset one past the frame. Any violation — short header, length
// past EOF or the cap, checksum mismatch — returns errCorrupt.
func readFrame(data []byte, off int) (payload []byte, next int, err error) {
	if off+8 > len(data) {
		return nil, 0, errCorrupt
	}
	n := binary.LittleEndian.Uint32(data[off : off+4])
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n > maxFrame || off+8+int(n) > len(data) {
		return nil, 0, errCorrupt
	}
	payload = data[off+8 : off+8+int(n)]
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, 0, errCorrupt
	}
	return payload, off + 8 + int(n), nil
}

// --- payload encoding ---------------------------------------------------

func appendUvarint(dst []byte, v uint64) []byte { return binary.AppendUvarint(dst, v) }

func appendVarint(dst []byte, v int64) []byte { return binary.AppendVarint(dst, v) }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeEntry renders an entry payload.
func encodeEntry(e Entry) []byte {
	// Rough pre-size: fields plus row bytes.
	n := 64 + len(e.Label) + len(e.CoreKey) + len(e.Core)
	for _, row := range e.Rows {
		n += 8
		for _, v := range row {
			n += len(v.S) + 2
		}
	}
	b := make([]byte, 0, n)
	b = append(b, recEntry)
	b = appendString(b, e.Label)
	b = appendVarint(b, e.Gen)
	b = appendVarint(b, e.Created)
	b = appendString(b, e.CoreKey)
	b = appendString(b, string(e.Core))
	b = appendUvarint(b, uint64(e.Arity))
	b = appendUvarint(b, uint64(len(e.Rows)))
	for _, row := range e.Rows {
		b = appendUvarint(b, uint64(len(row)))
		for _, v := range row {
			if v.Null {
				b = append(b, 1)
				continue
			}
			b = append(b, 0)
			b = appendString(b, v.S)
		}
	}
	return b
}

// encodeTombstone renders a tombstone payload.
func encodeTombstone(label string, gen int64) []byte {
	b := make([]byte, 0, 16+len(label))
	b = append(b, recTombstone)
	b = appendString(b, label)
	return appendVarint(b, gen)
}

// payloadReader decodes payload fields, latching the first error.
type payloadReader struct {
	b   []byte
	off int
	err error
}

func (r *payloadReader) byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.err = errCorrupt
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *payloadReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = errCorrupt
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.err = errCorrupt
		return 0
	}
	r.off += n
	return v
}

func (r *payloadReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.err = errCorrupt
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// decodeRecord parses one payload into a record. A structurally invalid
// payload — wrong type byte, truncated fields, absurd counts — is
// corruption even though its checksum matched (a version drift reads
// the same as a bit-flip to the caller: drop the record, never serve
// it).
func decodeRecord(payload []byte) (record, error) {
	r := &payloadReader{b: payload}
	switch r.byte() {
	case recTombstone:
		rec := record{tomb: true}
		rec.label = r.string()
		rec.gen = r.varint()
		if r.err != nil || rec.label == "" {
			return record{}, errCorrupt
		}
		return rec, nil
	case recEntry:
		var e Entry
		e.Label = r.string()
		e.Gen = r.varint()
		e.Created = r.varint()
		e.CoreKey = r.string()
		if core := r.string(); core != "" {
			e.Core = []byte(core)
		}
		e.Arity = int(r.uvarint())
		nrows := r.uvarint()
		if r.err != nil || e.Label == "" || e.CoreKey == "" || e.Arity < 0 ||
			nrows > uint64(len(payload)) {
			return record{}, errCorrupt
		}
		// Keep zero-length slices nil so a decoded entry compares equal
		// (reflect.DeepEqual) to the entry that was appended.
		if nrows > 0 {
			e.Rows = make([][]Value, 0, nrows)
		}
		for i := uint64(0); i < nrows; i++ {
			ncols := r.uvarint()
			if r.err != nil || ncols > uint64(len(payload)) {
				return record{}, errCorrupt
			}
			var row []Value
			if ncols > 0 {
				row = make([]Value, 0, ncols)
			}
			for j := uint64(0); j < ncols; j++ {
				if r.byte() == 1 {
					row = append(row, Value{Null: true})
				} else {
					row = append(row, Value{S: r.string()})
				}
			}
			e.Rows = append(e.Rows, row)
		}
		if r.err != nil || r.off != len(payload) {
			return record{}, errCorrupt
		}
		return record{entry: e}, nil
	default:
		return record{}, fmt.Errorf("%w: unknown record type", errCorrupt)
	}
}
