package persist

// Read-only follower replay: a fleet reader loads the shared
// snapshot + log pair without owning either file. Consistency comes
// from a seqlock, not locking — the writer publishes an odd sequence
// in answers.ver before rewriting the pair during compaction and an
// even one after, so a follower that observes the same even sequence
// before and after its reads knows the files it read belong to one
// stable epoch. Any mismatch (or an odd value) returns
// ErrConcurrentCompaction and the follower keeps serving its last
// good state; the next poll retries. Torn log tails and corrupt
// frames degrade exactly as in Open: the unverifiable suffix is
// dropped and counted, never fatal.

import (
	"errors"
	"os"
	"path/filepath"
)

// ErrConcurrentCompaction reports that a follower load raced the
// writer's compaction and must be retried; the previous state is
// still valid.
var ErrConcurrentCompaction = errors.New("persist: load raced a compaction")

// State is an immutable point-in-time view of a persistence
// directory, produced by LoadState. It is safe for concurrent reads.
type State struct {
	// Seq is the compaction sequence the state was read under.
	Seq int64
	// Stats counts what the load found (and dropped).
	Stats RecoveryStats

	state stateMap
}

// LoadState reads the snapshot + log pair under dir without taking
// ownership of any file. fsys nil means the real filesystem.
func LoadState(fsys FS, dir string) (*State, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	seqBefore := readSeq(fsys, dir)
	if seqBefore%2 == 1 {
		return nil, ErrConcurrentCompaction
	}
	st := &State{Seq: seqBefore, state: stateMap{}}
	rs := &st.Stats

	if data, err := fsys.ReadFile(filepath.Join(dir, snapFile)); err == nil {
		var valid int64
		rs.SnapshotRecords = st.state.replayAt(data, snapMagic, rs, &valid)
	} else if !os.IsNotExist(err) {
		rs.CorruptDrops++
	}
	if data, err := fsys.ReadFile(filepath.Join(dir, logFile)); err == nil {
		var valid int64
		rs.LogRecords = st.state.replayAt(data, logMagic, rs, &valid)
		if valid < int64(len(data)) {
			rs.TruncatedBytes = int64(len(data)) - valid
		}
	} else if !os.IsNotExist(err) {
		rs.CorruptDrops++
	}

	// Seqlock close: if the writer compacted underneath the reads, the
	// snapshot and log may be from different epochs — discard.
	if seqAfter := readSeq(fsys, dir); seqAfter != seqBefore {
		return nil, ErrConcurrentCompaction
	}

	for _, ls := range st.state {
		for _, e := range ls.entries {
			rs.Entries++
			rs.Bytes += entryBytes(e)
		}
	}
	return st, nil
}

// Label returns the label's generation and a copy of its live entries.
func (s *State) Label(label string) (int64, []Entry) {
	return s.state.label(label)
}

// Gen returns the label's generation without copying entries.
func (s *State) Gen(label string) int64 {
	ls := s.state[label]
	if ls == nil {
		return 0
	}
	return ls.gen
}

// Labels returns every label present in the state.
func (s *State) Labels() []string {
	out := make([]string, 0, len(s.state))
	for label := range s.state {
		out = append(out, label)
	}
	return out
}
