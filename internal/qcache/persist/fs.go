package persist

// Filesystem abstraction: the log performs every disk operation through
// the FS interface so tests can inject the failures real disks produce —
// short writes, failed fsyncs, ENOSPC, a process dying at an arbitrary
// byte offset — without touching the real filesystem. OSFS is the
// production implementation.

import (
	"io"
	"os"
)

// File is the subset of *os.File the log writes through.
type File interface {
	io.Writer
	// Sync flushes the file's dirty pages to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (the log uses it to drop a
	// torn tail before appending past it).
	Truncate(size int64) error
	Close() error
}

// FS is the set of filesystem operations the log needs.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenAppend opens path for appending — creating it if missing — and
	// reports its current size.
	OpenAppend(path string) (File, int64, error)
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// ReadFile reads the whole file; a missing file returns an error
	// satisfying os.IsNotExist.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Link creates newPath as a hard link to oldPath, failing with an
	// error satisfying os.IsExist when newPath already exists. It is the
	// atomic publish-if-absent primitive the lease protocol builds on.
	Link(oldPath, newPath string) error
	// Remove deletes path (missing files are not an error for callers
	// that check).
	Remove(path string) error
	// ReadDir lists the file names in dir, sorted; a missing directory
	// returns an error satisfying os.IsNotExist.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making a preceding rename or
	// create durable.
	SyncDir(dir string) error
}

// OSFS is the real-disk FS.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(path string) (File, int64, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

// Create implements FS.
func (OSFS) Create(path string) (File, error) { return os.Create(path) }

// ReadFile implements FS.
func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// Rename implements FS.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Link implements FS.
func (OSFS) Link(oldPath, newPath string) error { return os.Link(oldPath, newPath) }

// Remove implements FS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
