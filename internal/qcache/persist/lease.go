package persist

// The writer lease: mutual exclusion over a shared directory with
// nothing but portable filesystem primitives. One file —
// writer.lease — holds a JSON record naming the holder, a
// per-acquisition nonce, and an expiry timestamp. Acquisition is
// Link(tmp, lease): hard-linking fails atomically when the target
// exists, so exactly one contender publishes. Takeover of an expired
// lease is Rename(lease, stale-unique): rename is atomic and the
// source disappears, so concurrent stealers get ENOENT and exactly
// one wins; the winner re-reads the stolen record to catch a renewal
// that slipped in, restoring it if the holder was actually live.
// Renewal is verify-mine-then-rename-over.
//
// The protocol's safety assumption, stated once here and enforced by
// the fencing rule in fleet: a holder must stop writing (self-fence)
// the moment its lease expires by its *own* clock, renewals must
// complete strictly before expiry, and clocks across the fleet may
// disagree by less than TTL/2. Under those terms the
// verify-then-rename window of Renew cannot overlap a legitimate
// steal: by the time a stealer sees the lease expired, the holder has
// either renewed (stealer re-reads and restores) or self-fenced
// (holder never writes again). A clock skewed past the bound voids
// the guarantee — that is the documented limit, not a handled case.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

const leaseFile = "writer.lease"

// Lease is the on-disk writer-lease record.
type Lease struct {
	// ID names the holding replica.
	ID string `json:"id"`
	// Nonce is unique per acquisition, so a replica that lost and
	// re-took the lease cannot be confused with its earlier tenure.
	Nonce string `json:"nonce"`
	// ExpiresUnixNano is the wall-clock expiry.
	ExpiresUnixNano int64 `json:"expires_unix_nano"`
}

// Expires returns the expiry as a time.
func (l Lease) Expires() time.Time { return time.Unix(0, l.ExpiresUnixNano) }

// ReadLease reads and parses the current lease record. A missing file
// returns an error satisfying os.IsNotExist; a corrupt one returns a
// parse error (callers treat both as "no live holder").
func ReadLease(fsys FS, dir string) (Lease, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	data, err := fsys.ReadFile(filepath.Join(dir, leaseFile))
	if err != nil {
		return Lease{}, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return Lease{}, fmt.Errorf("persist: lease corrupt: %w", err)
	}
	return l, nil
}

// writeLeaseTmp durably writes the lease record to a nonce-unique
// temporary file and returns its path.
func writeLeaseTmp(fsys FS, dir string, l Lease) (string, error) {
	tmp := filepath.Join(dir, leaseFile+"."+l.Nonce+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return "", err
	}
	data, err := json.Marshal(l)
	if err == nil {
		var n int
		n, err = f.Write(data)
		if err == nil && n != len(data) {
			err = fmt.Errorf("short write: %d of %d bytes", n, len(data))
		}
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		_ = fsys.Remove(tmp)
		return "", err
	}
	return tmp, nil
}

// TryAcquire attempts to take the writer lease as l (whose Nonce must
// be unique across the fleet for this attempt). It returns true when
// l is now the published holder. A held, unexpired lease returns
// (false, nil) — contention, not failure. now is the acquirer's
// clock.
func TryAcquire(fsys FS, dir string, l Lease, now time.Time) (bool, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	tmp, err := writeLeaseTmp(fsys, dir, l)
	if err != nil {
		return false, fmt.Errorf("persist: lease write: %w", err)
	}
	defer func() { _ = fsys.Remove(tmp) }()

	leasePath := filepath.Join(dir, leaseFile)
	switch err := fsys.Link(tmp, leasePath); {
	case err == nil:
		return true, fsys.SyncDir(dir)
	case !os.IsExist(err):
		return false, fmt.Errorf("persist: lease link: %w", err)
	}

	// Someone holds (or held) the lease. Expired or unreadable means
	// dead-holder takeover; live means contention.
	cur, rerr := ReadLease(fsys, dir)
	if rerr == nil && now.Before(cur.Expires()) {
		return false, nil
	}
	if rerr != nil && os.IsNotExist(rerr) {
		// Released between our Link and read: next tick retries.
		return false, nil
	}

	// Steal: atomically rename the dead lease aside. Exactly one
	// concurrent stealer wins the rename; losers see ENOENT.
	stale := filepath.Join(dir, leaseFile+".stale."+l.Nonce)
	if err := fsys.Rename(leasePath, stale); err != nil {
		if os.IsNotExist(err) {
			return false, nil // lost the steal race
		}
		return false, fmt.Errorf("persist: lease steal: %w", err)
	}
	defer func() { _ = fsys.Remove(stale) }()

	// Re-check the stolen record: a renewal may have replaced the
	// expired lease between our read and the steal. If the stolen
	// lease is live, put it back (unless a faster acquirer already
	// published a new one — then theirs stands).
	if stolen, err := readLeaseFile(fsys, stale); err == nil && now.Before(stolen.Expires()) {
		_ = fsys.Link(stale, leasePath)
		_ = fsys.SyncDir(dir)
		return false, nil
	}

	// The steal removed a genuinely dead lease; publish ours.
	switch err := fsys.Link(tmp, leasePath); {
	case err == nil:
		return true, fsys.SyncDir(dir)
	case os.IsExist(err):
		return false, nil // another acquirer beat us post-steal
	default:
		return false, fmt.Errorf("persist: lease link: %w", err)
	}
}

// readLeaseFile parses the lease record at an arbitrary path.
func readLeaseFile(fsys FS, path string) (Lease, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return Lease{}, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return Lease{}, err
	}
	return l, nil
}

// ErrLeaseLost reports that the caller no longer holds the lease it
// tried to renew or release: the holder must self-fence, not retry.
var ErrLeaseLost = fmt.Errorf("persist: lease lost")

// Renew extends the holder's lease to l's new expiry. It fails with
// ErrLeaseLost when the published lease is not l's (same ID and
// Nonce) — the holder must then self-fence, not retry.
func Renew(fsys FS, dir string, l Lease) error {
	if fsys == nil {
		fsys = OSFS{}
	}
	cur, err := ReadLease(fsys, dir)
	if err != nil || cur.ID != l.ID || cur.Nonce != l.Nonce {
		return ErrLeaseLost
	}
	tmp, err := writeLeaseTmp(fsys, dir, l)
	if err != nil {
		return fmt.Errorf("persist: lease renew: %w", err)
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, leaseFile)); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("persist: lease renew: %w", err)
	}
	return fsys.SyncDir(dir)
}

// Release drops the lease if (and only if) l still holds it.
// Best-effort: an error just means the next acquirer waits out the
// TTL.
func Release(fsys FS, dir string, l Lease) error {
	if fsys == nil {
		fsys = OSFS{}
	}
	cur, err := ReadLease(fsys, dir)
	if err != nil || cur.ID != l.ID || cur.Nonce != l.Nonce {
		return ErrLeaseLost
	}
	if err := fsys.Remove(filepath.Join(dir, leaseFile)); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
