package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// entry builds a deterministic test entry.
func entry(label string, gen int64, key string, rows ...[]Value) Entry {
	return Entry{
		Label:   label,
		Gen:     gen,
		Created: 1000 + gen,
		CoreKey: key,
		Core:    []byte(`{"head":"Q"}`),
		Arity:   2,
		Rows:    rows,
	}
}

func row(vals ...string) []Value {
	out := make([]Value, len(vals))
	for i, s := range vals {
		out[i] = Value{S: s}
	}
	return out
}

// sortEntries orders entries for comparison.
func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].CoreKey < es[j].CoreKey })
}

func mustOpen(t *testing.T, dir string, opt Options) (*Log, RecoveryStats) {
	t.Helper()
	l, rs, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rs := mustOpen(t, dir, Options{SyncEvery: 1})
	if rs.Entries != 0 || rs.CorruptDrops != 0 {
		t.Fatalf("fresh dir recovered %+v", rs)
	}
	want := []Entry{
		entry("tenant-0", 0, "k1", row("a", "b"), row("c", "d")),
		entry("tenant-0", 0, "k2", row("x", "y")),
		entry("tenant-0", 0, "k3"), // empty answer: zero rows is a valid, cacheable answer
	}
	// A null value must round-trip distinguishably from the string "null".
	want = append(want, Entry{
		Label: "tenant-0", Gen: 0, Created: 7, CoreKey: "k4",
		Core: []byte("{}"), Arity: 1,
		Rows: [][]Value{{{Null: true}}, {{S: "null"}}},
	})
	for _, e := range want {
		if err := l.Append(e); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rs2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rs2.Entries != len(want) || rs2.CorruptDrops != 0 || rs2.StaleDrops != 0 {
		t.Fatalf("recovery %+v, want %d clean entries", rs2, len(want))
	}
	gen, got := l2.Label("tenant-0")
	if gen != 0 {
		t.Fatalf("gen = %d", gen)
	}
	sortEntries(got)
	sortEntries(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered entries differ:\n got %+v\nwant %+v", got, want)
	}
	if g, e := l2.Label("nobody"); g != 0 || e != nil {
		t.Fatalf("unknown label returned %d, %v", g, e)
	}
}

func TestGenerationsAndTombstones(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1})
	if err := l.Append(entry("t", 0, "k1", row("old"))); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entry("t", 0, "k2", row("old2"))); err != nil {
		t.Fatal(err)
	}
	// The tenant invalidates: generation bumps, a tombstone is logged.
	if err := l.AppendTombstone("t", 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entry("t", 1, "k1", row("new"))); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rs := mustOpen(t, dir, Options{})
	defer l2.Close()
	gen, got := l2.Label("t")
	if gen != 1 {
		t.Fatalf("gen = %d, want 1", gen)
	}
	if len(got) != 1 || got[0].CoreKey != "k1" || got[0].Rows[0][0].S != "new" {
		t.Fatalf("recovered %+v, want only the gen-1 entry", got)
	}
	if rs.StaleDrops != 2 {
		t.Fatalf("StaleDrops = %d, want 2 (the gen-0 entries)", rs.StaleDrops)
	}
	// An entry arriving below the tombstoned generation is ignored even
	// at runtime.
	if err := l2.Append(entry("t", 0, "k9", row("zombie"))); err != nil {
		t.Fatal(err)
	}
	if _, es := l2.Label("t"); len(es) != 1 {
		t.Fatalf("stale runtime append resurfaced: %+v", es)
	}
}

func TestTornTailDropsExactlyTheSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1})
	for i := 0; i < 5; i++ {
		if err := l.Append(entry("t", 0, fmt.Sprintf("k%d", i), row("v"))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	path := filepath.Join(dir, logFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail mid-record.
	torn := data[:len(data)-7]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rs := mustOpen(t, dir, Options{})
	if rs.Entries != 4 || rs.CorruptDrops != 1 {
		t.Fatalf("recovery %+v, want 4 entries and 1 corrupt drop", rs)
	}
	if rs.TruncatedBytes == 0 {
		t.Fatal("torn tail not accounted")
	}
	// Appending after recovery lands on a clean frame boundary: the new
	// record must survive the next reopen.
	if err := l2.Append(entry("t", 0, "k-after", row("w"))); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, rs3 := mustOpen(t, dir, Options{})
	defer l3.Close()
	if rs3.Entries != 5 || rs3.CorruptDrops != 0 {
		t.Fatalf("post-truncate recovery %+v, want 5 clean entries", rs3)
	}
	if _, es := l3.Label("t"); len(es) != 5 {
		t.Fatalf("entries = %d", len(es))
	}
}

func TestBitFlipDropsOnlyThatSuffix(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1})
	for i := 0; i < 6; i++ {
		if err := l.Append(entry("t", 0, fmt.Sprintf("k%d", i), row(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := filepath.Join(dir, logFile)
	data, _ := os.ReadFile(path)
	// Flip one bit roughly in the middle of the file.
	data[len(data)/2] ^= 0x10
	os.WriteFile(path, data, 0o644)

	l2, rs := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rs.CorruptDrops == 0 {
		t.Fatalf("bit flip not detected: %+v", rs)
	}
	// Whatever survived must be a verbatim prefix subset of what was
	// written — never an altered row.
	_, got := l2.Label("t")
	for _, e := range got {
		i := -1
		fmt.Sscanf(e.CoreKey, "k%d", &i)
		if i < 0 || e.Rows[0][0].S != fmt.Sprintf("v%d", i) {
			t.Fatalf("corrupt row served: %+v", e)
		}
	}
	if len(got) >= 6 {
		t.Fatalf("flip dropped nothing (%d entries)", len(got))
	}
}

func TestMissingAndGarbageFiles(t *testing.T) {
	// Entirely missing directory contents: clean empty recovery.
	l, rs := mustOpen(t, t.TempDir(), Options{})
	if rs.Entries != 0 || rs.CorruptDrops != 0 {
		t.Fatalf("empty dir: %+v", rs)
	}
	l.Close()

	// Garbage in both files: everything dropped, open still succeeds,
	// and the log is writable again.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, logFile), []byte("not a log at all"), 0o644)
	os.WriteFile(filepath.Join(dir, snapFile), []byte("junk"), 0o644)
	l2, rs2 := mustOpen(t, dir, Options{SyncEvery: 1})
	if rs2.Entries != 0 || rs2.CorruptDrops != 2 {
		t.Fatalf("garbage files: %+v, want 2 corrupt drops", rs2)
	}
	if err := l2.Append(entry("t", 0, "k", row("v"))); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3, rs3 := mustOpen(t, dir, Options{})
	defer l3.Close()
	if rs3.Entries != 1 {
		t.Fatalf("rewritten log did not recover: %+v", rs3)
	}
}

func TestCompactionSnapshotAndReset(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1, CompactBytes: -1})
	for i := 0; i < 10; i++ {
		// Overwrite the same key: the log holds 10 records, the state 1.
		if err := l.Append(entry("t", 0, "hot", row(fmt.Sprintf("v%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AppendTombstone("gone", 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	l.Close()

	// The log is just a header now; the snapshot carries the state.
	if st, err := os.Stat(filepath.Join(dir, logFile)); err != nil || st.Size() != int64(len(logMagic)) {
		t.Fatalf("log not reset after compaction: %v, size=%d", err, st.Size())
	}
	l2, rs := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rs.SnapshotRecords == 0 || rs.Entries != 1 {
		t.Fatalf("snapshot recovery: %+v", rs)
	}
	if _, es := l2.Label("t"); len(es) != 1 || es[0].Rows[0][0].S != "v9" {
		t.Fatalf("compacted state lost the last write: %+v", es)
	}
	// The entry-less label's generation survives via its tombstone: a
	// stale writer cannot resurrect pre-invalidation data.
	if err := l2.Append(entry("gone", 1, "zombie", row("x"))); err != nil {
		t.Fatal(err)
	}
	if gen, es := l2.Label("gone"); gen != 3 || len(es) != 0 {
		t.Fatalf("tombstoned generation lost in snapshot: gen=%d entries=%+v", gen, es)
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1, CompactBytes: 512})
	for i := 0; i < 100; i++ {
		if err := l.Append(entry("t", 0, "hot", row("vvvvvvvvvvvvvvvv"))); err != nil {
			t.Fatal(err)
		}
	}
	st, err := os.Stat(filepath.Join(dir, logFile))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 1024 {
		t.Fatalf("log never compacted: %d bytes", st.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, snapFile)); err != nil {
		t.Fatalf("no snapshot after auto-compaction: %v", err)
	}
	l.Close()
	l2, rs := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rs.Entries != 1 {
		t.Fatalf("recovery after auto-compaction: %+v", rs)
	}
}

func TestTruncatedSnapshotKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SyncEvery: 1, CompactBytes: -1})
	for i := 0; i < 8; i++ {
		l.Append(entry("t", 0, fmt.Sprintf("k%d", i), row("v")))
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	path := filepath.Join(dir, snapFile)
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:2*len(data)/3], 0o644)

	l2, rs := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rs.CorruptDrops == 0 {
		t.Fatalf("truncated snapshot not detected: %+v", rs)
	}
	if rs.Entries == 0 || rs.Entries >= 8 {
		t.Fatalf("want a strict prefix of 8 entries, got %d", rs.Entries)
	}
}

func TestENOSPCAndSyncFailureGoInertNotFatal(t *testing.T) {
	ffs := &FaultFS{MaxBytes: 600}
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{FS: ffs, SyncEvery: 1, CompactBytes: -1})
	var firstErr error
	for i := 0; i < 50; i++ {
		if err := l.Append(entry("t", 0, fmt.Sprintf("k%d", i), row("value"))); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("disk-full never surfaced")
	}
	// The in-memory mirror keeps working; appends keep failing without
	// panics; Close is clean.
	_ = l.Append(entry("t", 0, "more", row("v")))
	l.Close()
	if ffs.OpenHandles() != 0 {
		t.Fatalf("leaked %d handles", ffs.OpenHandles())
	}

	// Whatever made it to disk before ENOSPC recovers cleanly.
	l2, rs := mustOpen(t, dir, Options{})
	defer l2.Close()
	if rs.CorruptDrops > 1 {
		t.Fatalf("ENOSPC must leave at most one torn record: %+v", rs)
	}

	// Failed fsync: the log goes inert (durability unknown), the caller
	// survives.
	ffs2 := &FaultFS{FailSyncEveryN: 1}
	l3, _ := mustOpen(t, t.TempDir(), Options{FS: ffs2, SyncEvery: 1})
	if err := l3.Append(entry("t", 0, "k", row("v"))); err == nil {
		t.Fatal("failed fsync not surfaced")
	}
	if l3.Err() == nil {
		t.Fatal("log did not mark itself broken after fsync failure")
	}
	l3.Close()
	if ffs2.OpenHandles() != 0 {
		t.Fatalf("leaked %d handles", ffs2.OpenHandles())
	}
}

func TestShortWritesTruncateAndContinue(t *testing.T) {
	ffs := &FaultFS{ShortWriteEveryN: 5}
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{FS: ffs, SyncEvery: -1, CompactBytes: -1})
	ok := 0
	for i := 0; i < 40; i++ {
		if err := l.Append(entry("t", 0, fmt.Sprintf("k%d", i), row("v"))); err == nil {
			ok++
		}
	}
	l.Close()
	if ok == 0 || ok == 40 {
		t.Fatalf("short-write injection did not bite: %d/40 ok", ok)
	}
	l2, rs := mustOpen(t, dir, Options{})
	defer l2.Close()
	// Every record that reported success and survived the torn-tail
	// truncations must read back verbatim; no corruption may surface.
	if rs.CorruptDrops != 0 {
		t.Fatalf("short-write survivors corrupt: %+v", rs)
	}
	_, es := l2.Label("t")
	if len(es) == 0 {
		t.Fatal("nothing survived the short writes")
	}
	for _, e := range es {
		if len(e.Rows) != 1 || e.Rows[0][0].S != "v" {
			t.Fatalf("corrupt survivor: %+v", e)
		}
	}
}
