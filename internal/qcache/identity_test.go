package qcache

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/sources"
)

// makeIdentityCatalog builds a fresh single-relation catalog whose R
// rows are exactly rows. All catalogs share the same shape, which is
// what makes the allocator likely to recycle one's address for the
// next.
func makeIdentityCatalog(t *testing.T, rows ...string) *sources.Catalog {
	t.Helper()
	in := engine.NewInstance()
	for _, v := range rows {
		in.MustAdd("R", v)
	}
	return in.MustCatalog(pats(t, "R^o"))
}

// TestCatalogIDsNeverRepeat pins the identity contract the answer cache
// keys on: every catalog gets a distinct, stable, non-zero ID, however
// many catalogs have lived and died before it.
func TestCatalogIDsNeverRepeat(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		cat := makeIdentityCatalog(t, "a")
		id := cat.ID()
		if id == 0 {
			t.Fatal("catalog ID must be non-zero")
		}
		if id != cat.ID() {
			t.Fatalf("catalog ID changed between calls: %d then %d", id, cat.ID())
		}
		if seen[id] {
			t.Fatalf("catalog ID %d handed out twice", id)
		}
		seen[id] = true
		runtime.GC() // let earlier catalogs die; IDs must not be recycled
	}
}

// TestRecycledCatalogAddressDoesNotAliasAnswers is the regression test
// for the catalog-identity bug: Tier-2 entries used to be keyed by
// fmt.Sprintf("%p", cat), so a catalog allocated at a dead catalog's
// recycled address — same pointer rendering, same generation — would be
// served the dead catalog's cached answers (one tenant reading another
// tenant's rows). The cache holds no reference to the catalog, so the
// GC is free to recycle it. With identity keyed on the registered
// monotonic Catalog.ID the hunt below must never observe a cross-catalog
// hit, address collision or not.
func TestRecycledCatalogAddressDoesNotAliasAnswers(t *testing.T) {
	c := New(Options{})
	ps := pats(t, "R^o")
	entry, _ := c.Plan(q(t, "Q(x) :- R(x)."), ps)
	if entry.Err() != nil {
		t.Fatalf("plan: %v", entry.Err())
	}

	// Populate Tier 2 on behalf of a generation of catalogs, remember
	// their addresses, then drop every reference so the GC can recycle
	// them. The cache keeps only fingerprint strings, so nothing pins
	// the catalogs — exactly the situation that made the pointer key
	// unsound.
	c.opt.MaxAnswerEntries = -1 // keep every poisoned entry resident
	dead := map[string]bool{}
	for i := 0; i < 2048; i++ {
		cat := makeIdentityCatalog(t, "poisoned")
		c.StoreAnswers(entry, cat, []*engine.Rel{rel("poisoned")})
		if i == 0 {
			if hit := c.Answers(entry, cat); hit.Full == nil {
				t.Fatal("sanity: a stored catalog must hit its own answers")
			}
		}
		dead[fmt.Sprintf("%p", cat)] = true
	}

	// Hunt for an allocation reuse: a fresh catalog (different data,
	// same zero generation) landing on any dead catalog's address. The
	// catalogs are identically shaped, so the allocator tends to hand
	// freed slots back; if it never does, the run proves nothing and
	// skips.
	for i := 0; i < 100000; i++ {
		if i%64 == 0 {
			runtime.GC()
		}
		fresh := makeIdentityCatalog(t, "fresh")
		if !dead[fmt.Sprintf("%p", fresh)] {
			continue
		}
		// Address recycled. The fresh catalog holds different data, so
		// reusing a dead catalog's rows would be unsound.
		hit := c.Answers(entry, fresh)
		if hit.Full != nil {
			t.Fatalf("recycled address served a dead catalog's answers: %v", hit.Full.Rows())
		}
		for i, covered := range hit.Covered {
			if covered {
				t.Fatalf("recycled address covered disjunct %d from a dead catalog's entries", i)
			}
		}
		return
	}
	t.Skip("allocator never recycled a dead catalog's address; nothing to observe")
}
