package qcache

import (
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/sources"
)

func q(t *testing.T, src string) logic.UCQ {
	t.Helper()
	u, err := parser.ParseUCQ(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return u
}

func pats(t *testing.T, src string) *access.Set {
	t.Helper()
	ps, err := parser.ParsePatterns(src)
	if err != nil {
		t.Fatalf("parse patterns %q: %v", src, err)
	}
	return ps
}

// testCatalog builds a catalog with R/S/T unary all-output tables.
func testCatalog(t *testing.T) *sources.Catalog {
	t.Helper()
	in := engine.NewInstance()
	in.MustAdd("R", "a").MustAdd("R", "b").MustAdd("S", "b").MustAdd("T", "c")
	return in.MustCatalog(pats(t, "R^o S^o T^o"))
}

func rel(rows ...string) *engine.Rel {
	r := engine.NewRel()
	for _, v := range rows {
		r.Add(engine.Row{engine.V(v)})
	}
	return r
}

func TestPlanCacheHitsVariants(t *testing.T) {
	c := New(Options{})
	ps := pats(t, "R^o S^i")
	base := q(t, "Q(x) :- R(x), S(x).")

	e1, info := c.Plan(base, ps)
	if info.Hit {
		t.Fatal("first plan must miss")
	}
	if e1.Err() != nil {
		t.Fatalf("plan error: %v", e1.Err())
	}
	if !e1.Orderable() {
		t.Fatal("query is executable as written; entry must be orderable")
	}

	// α-renamed: different fast key, same canonical key.
	alpha := q(t, "Q(y) :- R(y), S(y).")
	e2, info := c.Plan(alpha, ps)
	if !info.Hit {
		t.Fatal("α-renamed resubmission must hit the plan cache")
	}
	if e2 != e1 {
		t.Fatal("α-renamed hit must return the cached entry")
	}

	// Literal-padded: non-minimal, caught by the minimized canonical key.
	padded := q(t, "Q(x) :- R(x), S(x), R(x).")
	if _, info = c.Plan(padded, ps); !info.Hit {
		t.Fatal("padded resubmission must hit the plan cache")
	}

	// Exact resubmission: fast-key path.
	if _, info = c.Plan(base, ps); !info.Hit {
		t.Fatal("exact resubmission must hit")
	}

	st := c.Stats()
	if st.PlanMisses != 1 || st.PlanHits != 3 {
		t.Fatalf("stats = %+v, want 1 miss / 3 hits", st)
	}

	// Same query under different patterns is a different plan.
	if _, info = c.Plan(base, pats(t, "R^o S^o")); info.Hit {
		t.Fatal("different pattern set must miss")
	}
}

func TestPlanCacheReordersOrderable(t *testing.T) {
	c := New(Options{})
	ps := pats(t, "R^o S^i")
	// Not executable as written (S first needs its input), but orderable.
	u := q(t, "Q(x) :- S(x), R(x).")
	e, _ := c.Plan(u, ps)
	if e.Err() != nil {
		t.Fatalf("orderable query must plan: %v", e.Err())
	}
	if got := e.Exec().Rules[0].Body[0].Atom.Pred; got != "R" {
		t.Fatalf("representative must be reordered to start with R, got %s", got)
	}
	if e.Steps(0) == nil {
		t.Fatal("adornment must be cached")
	}
	// The orderable query and its executable ordering share the entry.
	if _, info := c.Plan(q(t, "Q(x) :- R(x), S(x)."), ps); !info.Hit {
		t.Fatal("the executable ordering of the same query must hit")
	}
}

func TestPlanCacheReplaysError(t *testing.T) {
	c := New(Options{})
	ps := pats(t, "R^i")
	u := q(t, "Q(x) :- R(x).") // needs x bound; not orderable
	e1, info1 := c.Plan(u, ps)
	if e1.Err() == nil {
		t.Fatal("unorderable query must carry a plan error")
	}
	e2, info2 := c.Plan(q(t, "Q(z) :- R(z)."), ps)
	if e2.Err() == nil || info1.Hit || !info2.Hit {
		t.Fatal("the planning failure must be cached and replayed")
	}
}

func TestPlanLRUEviction(t *testing.T) {
	c := New(Options{MaxPlanEntries: 2})
	ps := pats(t, "R^o S^o T^o")
	c.Plan(q(t, "Q(x) :- R(x)."), ps)
	c.Plan(q(t, "Q(x) :- S(x)."), ps)
	c.Plan(q(t, "Q(x) :- T(x)."), ps) // evicts the R plan
	if plans, _ := c.Len(); plans != 2 {
		t.Fatalf("plan count = %d, want 2", plans)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if _, info := c.Plan(q(t, "Q(x) :- R(x)."), ps); info.Hit {
		t.Fatal("evicted plan must miss")
	}
}

func TestPlanSingleflight(t *testing.T) {
	c := New(Options{})
	ps := pats(t, "R^o")
	u := q(t, "Q(x) :- R(x).")
	var wg sync.WaitGroup
	entries := make([]*PlanEntry, 16)
	for i := range entries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entries[i], _ = c.Plan(u, ps)
		}(i)
	}
	wg.Wait()
	for _, e := range entries {
		if e != entries[0] {
			t.Fatal("concurrent planners must share one entry")
		}
	}
	if st := c.Stats(); st.PlanMisses != 1 {
		t.Fatalf("plan built %d times, want 1", st.PlanMisses)
	}
}

func TestAnswerStoreAndFullHit(t *testing.T) {
	c := New(Options{})
	ps := pats(t, "R^o S^o T^o")
	cat := testCatalog(t)
	u := q(t, "Q(x) :- R(x).\nQ(x) :- S(x).")
	e, _ := c.Plan(u, ps)

	if hit := c.Answers(e, cat); hit.Full != nil || hit.CachedRules != 0 {
		t.Fatal("cold answer cache must miss")
	}
	c.StoreAnswers(e, cat, []*engine.Rel{rel("a", "b"), rel("b")})

	hit := c.Answers(e, cat)
	if hit.Full == nil {
		t.Fatalf("both disjuncts stored; want a full hit, got %+v", hit)
	}
	if hit.ReusedRules != 2 || hit.CachedRules != 2 {
		t.Fatalf("reuse accounting = %d/%d, want 2/2", hit.ReusedRules, hit.CachedRules)
	}
	// Union semantics: "b" appears in both disjuncts, deduped in Full.
	if hit.Full.Len() != 2 {
		t.Fatalf("full hit has %d rows, want 2", hit.Full.Len())
	}

	// An α-variant of the same union hits the same answers.
	e2, _ := c.Plan(q(t, "Q(v) :- S(v).\nQ(v) :- R(v)."), ps)
	if h := c.Answers(e2, cat); h.Full == nil {
		t.Fatal("α-renamed, disjunct-swapped union must reuse the answers")
	}
	if st := c.Stats(); st.AnswerHits != 2 {
		t.Fatalf("answer hits = %d, want 2", st.AnswerHits)
	}
}

func TestAnswerPartialCoverage(t *testing.T) {
	c := New(Options{})
	ps := pats(t, "R^o S^o T^o")
	cat := testCatalog(t)
	e, _ := c.Plan(q(t, "Q(x) :- R(x).\nQ(x) :- S(x)."), ps)
	c.StoreAnswers(e, cat, []*engine.Rel{rel("a", "b"), nil}) // only disjunct 0

	hit := c.Answers(e, cat)
	if hit.Full != nil {
		t.Fatal("one uncovered disjunct must not be a full hit")
	}
	if !hit.Covered[0] || hit.Covered[1] {
		t.Fatalf("coverage = %v, want [true false]", hit.Covered)
	}
	if hit.CachedRules != 1 || len(hit.Rows[0]) != 2 {
		t.Fatalf("partial reuse = %d rules / %d rows, want 1 / 2", hit.CachedRules, len(hit.Rows[0]))
	}
	if st := c.Stats(); st.PartialReuseRules != 1 {
		t.Fatalf("PartialReuseRules = %d, want 1", st.PartialReuseRules)
	}
}

func TestAnswerGenerationInvalidation(t *testing.T) {
	c := New(Options{})
	ps := pats(t, "R^o S^o T^o")
	cat := testCatalog(t)
	e, _ := c.Plan(q(t, "Q(x) :- R(x)."), ps)
	c.StoreAnswers(e, cat, []*engine.Rel{rel("a")})
	if c.Answers(e, cat).Full == nil {
		t.Fatal("want a hit before invalidation")
	}
	cat.Invalidate()
	if c.Answers(e, cat).Full != nil {
		t.Fatal("bumped catalog generation must orphan the cached answers")
	}
	// A different catalog value never shares answers either.
	if c.Answers(e, testCatalog(t)).Full != nil {
		t.Fatal("a different catalog must not share answers")
	}
}

// TestAnswerTTLInjectedClock pins TTL expiry to a deterministic clock:
// Options.Now replaces time.Now, so the boundary is exact — no sleeps,
// no flake margin. This is the same injection seam sources.VirtualClock
// gives the replica runtime.
func TestAnswerTTLInjectedClock(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := New(Options{TTL: time.Minute, Now: clock})
	ps := pats(t, "R^o S^o T^o")
	cat := testCatalog(t)
	e, _ := c.Plan(q(t, "Q(x) :- R(x)."), ps)
	c.StoreAnswers(e, cat, []*engine.Rel{rel("a")})

	advance(time.Minute - time.Second)
	if c.Answers(e, cat).Full == nil {
		t.Fatal("one second before the TTL boundary must still hit")
	}
	advance(2 * time.Second)
	if c.Answers(e, cat).Full != nil {
		t.Fatal("one second past the TTL boundary must miss")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("TTL expiry must count as an eviction")
	}

	// Re-storing under the advanced clock starts a fresh window.
	c.StoreAnswers(e, cat, []*engine.Rel{rel("a")})
	advance(30 * time.Second)
	if c.Answers(e, cat).Full == nil {
		t.Fatal("a re-stored answer gets a fresh TTL window")
	}
}

func TestAnswerTTLAndFalseCores(t *testing.T) {
	c := New(Options{TTL: time.Millisecond})
	ps := pats(t, "R^o S^o T^o")
	cat := testCatalog(t)
	e, _ := c.Plan(q(t, "Q(x) :- R(x)."), ps)
	c.StoreAnswers(e, cat, []*engine.Rel{rel("a")})
	time.Sleep(5 * time.Millisecond)
	if c.Answers(e, cat).Full != nil {
		t.Fatal("expired answers must miss")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("TTL expiry must count as an eviction")
	}

	// A statically unsatisfiable disjunct is covered with no rows, on any
	// catalog, without storage.
	c2 := New(Options{})
	e2, _ := c2.Plan(q(t, `Q(x) :- R(x), not R(x).`), ps)
	hit := c2.Answers(e2, cat)
	if hit.Full == nil || hit.Full.Len() != 0 {
		t.Fatalf("unsatisfiable disjunct must be a full empty hit, got %+v", hit)
	}
}

func TestAnswerLRUBounds(t *testing.T) {
	c := New(Options{MaxAnswerEntries: 1})
	ps := pats(t, "R^o S^o T^o")
	cat := testCatalog(t)
	e1, _ := c.Plan(q(t, "Q(x) :- R(x)."), ps)
	e2, _ := c.Plan(q(t, "Q(x) :- S(x)."), ps)
	c.StoreAnswers(e1, cat, []*engine.Rel{rel("a")})
	c.StoreAnswers(e2, cat, []*engine.Rel{rel("b")}) // evicts e1's answers
	if _, answers := c.Len(); answers != 1 {
		t.Fatalf("answer entries = %d, want 1", answers)
	}
	if c.Answers(e1, cat).Full != nil {
		t.Fatal("evicted answers must miss")
	}
	if c.Answers(e2, cat).Full == nil {
		t.Fatal("resident answers must hit")
	}

	// Byte bound: a single oversized entry still stores (bounds keep at
	// least one entry), but a second pushes the first out.
	cb := New(Options{MaxAnswerBytes: 1})
	cb.StoreAnswers(e1, cat, []*engine.Rel{rel("a")})
	cb.StoreAnswers(e2, cat, []*engine.Rel{rel("b")})
	if _, answers := cb.Len(); answers != 1 {
		t.Fatalf("byte-bounded answer entries = %d, want 1", answers)
	}
}

func TestDisableAnswers(t *testing.T) {
	c := New(Options{DisableAnswers: true})
	ps := pats(t, "R^o S^o T^o")
	cat := testCatalog(t)
	e, _ := c.Plan(q(t, "Q(x) :- R(x)."), ps)
	c.StoreAnswers(e, cat, []*engine.Rel{rel("a")})
	if hit := c.Answers(e, cat); hit.Full != nil || hit.CachedRules != 0 {
		t.Fatal("DisableAnswers must never serve rows")
	}
	if _, answers := c.Len(); answers != 0 {
		t.Fatal("DisableAnswers must not store rows")
	}
}

func TestEquivScanMechanism(t *testing.T) {
	c := New(Options{})
	stored := q(t, "Q(x) :- R(x), not S(x).").Rules[0]
	stored.HeadPred = canonHeadPred
	c.mu.Lock()
	c.installAnswerLocked(&ansEntry{
		key: "k\x1ffp", catFP: "fp", core: stored, arity: 1,
		rows: []engine.Row{{engine.V("a")}}, created: time.Now(),
	})
	// Equivalent core (here: identical up to renaming) under a different
	// key is found by the mutual containment scan.
	want := q(t, "Q(y) :- R(y), not S(y).").Rules[0]
	want.HeadPred = canonHeadPred
	budget := 10000
	if a := c.equivScanLocked(want, "fp", &budget); a == nil {
		t.Fatal("equivalent core must be found by the scan")
	}
	if budget >= 10000 {
		t.Fatal("the scan must charge its containment nodes")
	}
	// A non-equivalent core is rejected.
	other := q(t, "Q(y) :- R(y).").Rules[0]
	other.HeadPred = canonHeadPred
	budget = 10000
	if a := c.equivScanLocked(other, "fp", &budget); a != nil {
		t.Fatal("non-equivalent core must not reuse rows")
	}
	// Wrong fingerprint, exhausted budget, and disabled scan all refuse.
	budget = 10000
	if a := c.equivScanLocked(want, "other-fp", &budget); a != nil {
		t.Fatal("fingerprint mismatch must refuse")
	}
	budget = 0
	if a := c.equivScanLocked(want, "fp", &budget); a != nil {
		t.Fatal("exhausted budget must refuse")
	}
	c.mu.Unlock()

	cOff := New(Options{EquivScanLimit: -1})
	cOff.mu.Lock()
	budget = 10000
	if a := cOff.equivScanLocked(want, "fp", &budget); a != nil {
		t.Fatal("disabled scan must refuse")
	}
	cOff.mu.Unlock()
}

func TestPurge(t *testing.T) {
	c := New(Options{})
	ps := pats(t, "R^o S^o T^o")
	cat := testCatalog(t)
	e, _ := c.Plan(q(t, "Q(x) :- R(x)."), ps)
	c.StoreAnswers(e, cat, []*engine.Rel{rel("a")})
	c.Purge()
	if p, a := c.Len(); p != 0 || a != 0 {
		t.Fatalf("after Purge: %d plans, %d answers; want 0/0", p, a)
	}
	if _, info := c.Plan(q(t, "Q(x) :- R(x)."), ps); info.Hit {
		t.Fatal("purged plan must miss")
	}
}
