package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/qcache/persist"
)

// vclock is the virtual wall clock every node of a test fleet shares.
// Tests advance it by hand and drive Tick explicitly, so lease expiry
// and takeover timing are exact, not sleep-based.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *vclock { return &vclock{t: time.Unix(10000, 0)} }

func (c *vclock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

func testEntry(key, val string) persist.Entry {
	return persist.Entry{
		Label:   "t",
		Created: 1,
		CoreKey: key,
		Core:    []byte(`{"head":"Q"}`),
		Arity:   1,
		Rows:    [][]persist.Value{{{S: val}}},
	}
}

// openNode joins dir as id with manual ticks, a shared virtual clock,
// and per-append durability (the chaos rounds reason about acked
// writes, so no batch window).
func openNode(t *testing.T, dir, id string, clk *vclock, fs persist.FS, ttl time.Duration) *Node {
	t.Helper()
	n, err := Open(dir, Options{
		ID:  id,
		TTL: ttl,
		FS:  fs,
		Now: clk.now,
		Log: persist.Options{SyncEvery: 1, CompactBytes: -1},
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", id, err)
	}
	return n
}

func TestFirstReplicaIsWriterAndReadersFollow(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	ttl := 10 * time.Second

	a := openNode(t, dir, "a", clk, nil, ttl)
	defer a.Close()
	if a.Role() != Writer {
		t.Fatalf("first replica role = %v, want writer", a.Role())
	}
	b := openNode(t, dir, "b", clk, nil, ttl)
	defer b.Close()
	if b.Role() != Reader {
		t.Fatalf("second replica role = %v, want reader", b.Role())
	}

	// B warm-reads what A pays for, within one poll tick.
	if err := a.Append(testEntry("k1", "v1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	v0 := b.Version()
	b.Tick(clk.advance(time.Second))
	if _, es := b.Label("t"); len(es) != 1 || es[0].CoreKey != "k1" {
		t.Fatalf("follower state = %+v, want A's entry", es)
	}
	if b.Version() == v0 {
		t.Fatal("follower refresh did not bump the store version")
	}

	// Stats reflect the roles; the reader reports its staleness and
	// the observed lease, the writer its own.
	as, bs := a.Stats(), b.Stats()
	if as.Role != "writer" || bs.Role != "reader" {
		t.Fatalf("stats roles = %s/%s", as.Role, bs.Role)
	}
	if as.LeaseID != "a" || bs.LeaseID != "a" {
		t.Fatalf("lease IDs = %q/%q, want a/a", as.LeaseID, bs.LeaseID)
	}
	if bs.StalenessBoundMS != (ttl / 5).Milliseconds() {
		t.Fatalf("staleness bound = %dms", bs.StalenessBoundMS)
	}
}

func TestWriterCrashReaderTakesOverWithinTTL(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	ttl := 10 * time.Second
	poll := ttl / 5

	a := openNode(t, dir, "a", clk, nil, ttl)
	b := openNode(t, dir, "b", clk, nil, ttl)
	defer b.Close()
	if err := a.Append(testEntry("paid", "v")); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}

	// A crashes: it never ticks (renews) again. B keeps polling; it
	// must become the writer within TTL + one poll of the crash.
	crash := clk.now()
	var promoted time.Time
	for i := 0; i < 20 && b.Role() != Writer; i++ {
		promoted = clk.advance(poll)
		b.Tick(promoted)
	}
	if b.Role() != Writer {
		t.Fatal("reader never took over")
	}
	if max := ttl + poll; promoted.Sub(crash) > max {
		t.Fatalf("takeover took %v, bound is %v", promoted.Sub(crash), max)
	}
	if st := b.Stats(); st.Takeovers != 1 || st.LeaseID != "b" {
		t.Fatalf("post-takeover stats = %+v", st)
	}
	// The new writer owns everything the old one persisted.
	if _, es := b.Label("t"); len(es) != 1 || es[0].CoreKey != "paid" {
		t.Fatalf("takeover lost the acked entry: %+v", es)
	}

	// The crashed writer resumes: its first interaction past the lost
	// tenure fences it — its write is dropped, its role demoted.
	if err := a.Append(testEntry("zombie", "v")); err != nil {
		t.Fatalf("stale writer append must be a silent no-op, got %v", err)
	}
	if a.Role() != Reader {
		t.Fatalf("resumed stale writer role = %v, want reader", a.Role())
	}
	if st := a.Stats(); st.Fenced != 1 {
		t.Fatalf("fence not counted: %+v", st)
	}
	if _, es := b.Label("t"); len(es) != 1 {
		t.Fatalf("zombie write reached the shared state: %+v", es)
	}
	a.Close()
}

func TestInvalidationFansOutToEveryReplica(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	ttl := 10 * time.Second
	poll := ttl / 5

	a := openNode(t, dir, "a", clk, nil, ttl) // writer
	b := openNode(t, dir, "b", clk, nil, ttl)
	c := openNode(t, dir, "c", clk, nil, ttl)
	defer a.Close()
	defer b.Close()
	defer c.Close()

	if err := a.Append(testEntry("k", "v")); err != nil {
		t.Fatal(err)
	}
	a.Sync()
	b.Tick(clk.advance(poll))
	c.Tick(clk.advance(poll))

	// B (a reader) accepts the invalidation: locally visible at once,
	// durable in B's inbox.
	if err := b.AppendTombstone("t", 5); err != nil {
		t.Fatal(err)
	}
	if gen, es := b.Label("t"); gen != 5 || len(es) != 0 {
		t.Fatalf("accepting replica still serves: gen=%d entries=%+v", gen, es)
	}

	// One tick later every replica has applied it — C straight from
	// the inbox scan, A by absorbing it into the log.
	now := clk.advance(poll)
	a.Tick(now)
	c.Tick(now)
	if gen, es := c.Label("t"); gen != 5 || len(es) != 0 {
		t.Fatalf("sibling reader after one tick: gen=%d entries=%+v", gen, es)
	}
	if gen, es := a.Label("t"); gen != 5 || len(es) != 0 {
		t.Fatalf("writer after one tick: gen=%d entries=%+v", gen, es)
	}

	// The absorbed tombstone is durable in the log, so B's inbox record
	// is covered and pruned once B sees the refreshed state.
	b.Tick(clk.advance(poll))
	if gens := persist.ReadInboxes(nil, dir); len(gens) != 0 {
		t.Fatalf("inboxes not pruned after absorption: %v", gens)
	}
	// And a brand-new replica recovers the generation from the log.
	d := openNode(t, dir, "d", clk, nil, ttl)
	defer d.Close()
	if gen, _ := d.Label("t"); gen != 5 {
		t.Fatalf("fresh replica gen = %d, want 5", gen)
	}
}

func TestBrokenStorageDegradesAndHandsOff(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	ttl := 10 * time.Second

	// A starts healthy (the lease acquisition's fsync succeeds), then
	// the disk goes bad: an append's fsync fails, which turns the log
	// inert — durability is unknown from here on.
	ffs := &persist.FaultFS{FailSyncEveryN: 10}
	a := openNode(t, dir, "a", clk, ffs, ttl)
	defer a.Close()
	if a.Role() != Writer {
		t.Fatalf("role = %v, want writer", a.Role())
	}
	broke := false
	for i := 0; i < 200 && !broke; i++ {
		broke = a.Append(testEntry(fmt.Sprintf("k%d", i), "vvvvvvvvvvvvvvvv")) != nil
	}
	if !broke {
		t.Fatal("failed fsync never surfaced")
	}
	if a.Err() == nil {
		t.Fatal("broken log not surfaced through Err")
	}

	// The next tick hands the lease back and degrades A to its local
	// cache; queries are never blocked (Append stays a cheap no-op).
	a.Tick(clk.advance(time.Second))
	if a.Role() != Reader {
		t.Fatalf("broken-log writer did not fence: %v", a.Role())
	}
	if st := a.Stats(); st.Degraded == "" || st.Fenced != 1 {
		t.Fatalf("fenced without a degraded reason: %+v", st)
	}
	if err := a.Append(testEntry("k2", "v")); err != nil {
		t.Fatalf("degraded append must not fail the caller: %v", err)
	}

	// A healthy replica acquires the released lease without waiting
	// out the TTL.
	b := openNode(t, dir, "b", clk, nil, ttl)
	defer b.Close()
	if b.Role() != Writer {
		b.Tick(clk.advance(time.Second))
	}
	if b.Role() != Writer {
		t.Fatalf("healthy replica did not take over a released lease: %+v", b.Stats())
	}
}

// The kill-the-writer chaos suite (the `make fleet-smoke` payload):
// seeded rounds of crash, takeover, and resurrection across three
// replicas on one directory. Invariants checked every round: a
// survivor is promoted within TTL + one poll of virtual time, at most
// one live writer exists, and a resurrected writer's late write is
// fenced off. At the end, a fresh replica must recover exactly the
// acked entries — every synced write survives, no zombie write leaks.
func TestChaosKillTheWriter(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	ttl := 10 * time.Second
	poll := ttl / 5
	ffs := &persist.FaultFS{}
	rng := rand.New(rand.NewSource(42))

	nodes := map[string]*Node{
		"a": openNode(t, dir, "a", clk, ffs, ttl),
		"b": openNode(t, dir, "b", clk, ffs, ttl),
		"c": openNode(t, dir, "c", clk, ffs, ttl),
	}
	ids := []string{"a", "b", "c"}
	live := map[string]bool{"a": true, "b": true, "c": true}

	writerOf := func() string {
		w := ""
		for id, n := range nodes {
			if live[id] && n.Role() == Writer {
				if w != "" {
					t.Fatalf("split brain: %s and %s are both live writers", w, id)
				}
				w = id
			}
		}
		return w
	}
	tickLive := func(now time.Time) {
		for _, id := range ids {
			if live[id] {
				nodes[id].Tick(now)
			}
		}
	}

	acked := map[string]bool{}
	zombies := map[string]bool{}
	for round := 0; round < 12; round++ {
		// Settle: everyone ticks until a writer exists.
		start := clk.now()
		for writerOf() == "" {
			tickLive(clk.advance(poll))
			if clk.now().Sub(start) > ttl+2*poll {
				t.Fatalf("round %d: no writer within %v", round, ttl+2*poll)
			}
		}
		w := writerOf()

		// The writer acks a few entries (synced, per-append
		// durability): these must survive everything below.
		for i := 0; i < 1+rng.Intn(3); i++ {
			key := fmt.Sprintf("r%d-%d", round, i)
			if err := nodes[w].Append(testEntry(key, "v")); err != nil {
				t.Fatalf("round %d append: %v", round, err)
			}
			if err := nodes[w].Sync(); err != nil {
				t.Fatalf("round %d sync: %v", round, err)
			}
			acked[key] = true
		}

		// Kill the writer: it stops ticking (renewing) mid-tenure.
		live[w] = false
		killed := clk.now()

		// Survivors poll until one takes over; the window is bounded.
		for writerOf() == "" {
			tickLive(clk.advance(poll))
			if clk.now().Sub(killed) > ttl+2*poll {
				t.Fatalf("round %d: takeover exceeded %v after the crash", round, ttl+2*poll)
			}
		}

		// The corpse resumes and tries to write past its tenure: the
		// fence must eat the write silently.
		zombie := fmt.Sprintf("zombie-%d", round)
		if err := nodes[w].Append(testEntry(zombie, "boo")); err != nil {
			t.Fatalf("round %d: fenced append errored: %v", round, err)
		}
		zombies[zombie] = true
		if nodes[w].Role() != Reader {
			t.Fatalf("round %d: resumed writer %s not demoted", round, w)
		}
		live[w] = true // rejoined as a reader
	}

	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	if h := ffs.OpenHandles(); h != 0 {
		t.Fatalf("leaked %d file handles across the chaos rounds", h)
	}

	// A fresh replica recovers the full acked history and nothing else.
	final := openNode(t, dir, "final", clk, ffs, ttl)
	_, es := final.Label("t")
	got := map[string]bool{}
	for _, e := range es {
		got[e.CoreKey] = true
	}
	for key := range acked {
		if !got[key] {
			t.Errorf("acked entry %s lost", key)
		}
	}
	for key := range zombies {
		if got[key] {
			t.Errorf("zombie write %s leaked into the shared state", key)
		}
	}
	if err := final.Close(); err != nil {
		t.Fatal(err)
	}
	if h := ffs.OpenHandles(); h != 0 {
		t.Fatalf("final replica leaked %d handles", h)
	}
}

func TestBackgroundTickerStopsOnClose(t *testing.T) {
	before := runtime.NumGoroutine()
	n, err := Open(t.TempDir(), Options{ID: "bg", TTL: 400 * time.Millisecond, Background: true})
	if err != nil {
		t.Fatal(err)
	}
	if n.Role() != Writer {
		t.Fatalf("role = %v", n.Role())
	}
	// Let the real ticker fire at least once before closing.
	time.Sleep(120 * time.Millisecond)
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	// Close must reap the runner: no goroutine may outlive the node.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Closing twice is fine, and a closed node's store surface is inert.
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
}
