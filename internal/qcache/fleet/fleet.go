// Package fleet implements shared-directory mode for the persistent
// answer cache: N server replicas cooperate over one storage root. At
// most one replica — the holder of a TTL'd, fsynced lease file — is
// the writer: it owns the append log and compaction exactly as a
// single-process persist.Log does. Every other replica is a reader:
// it follows the published snapshot + log suffix at a poll interval
// (persist.LoadState, seqlock-validated), applies fleet-wide
// invalidations from the per-replica inbox files, and never writes
// the shared log.
//
// Robustness contract, in order of importance:
//
//   - No split brain. A writer tracks its lease expiry by its own
//     clock and self-fences — turns its log inert and demotes to
//     reader — the moment a renewal has not landed by expiry. Fencing
//     is checked on every append, not just on ticks, so a paused and
//     resumed writer cannot slip a write past its lost tenure.
//   - Bounded takeover. A reader that observes an expired (or
//     missing, or corrupt) lease attempts takeover on its next tick;
//     the lease steal is atomic (see persist/lease.go), so concurrent
//     candidates elect exactly one.
//   - Never block a query. Storage trouble — unreadable directory,
//     ENOSPC, a broken log — degrades the replica to its local
//     in-memory cache (the persist best-effort contract); queries are
//     answered from memory and the node keeps retrying on ticks.
//   - At-least-once invalidation. An invalidation accepted by any
//     replica is durable in that replica's inbox before it is acked;
//     every replica applies all inboxes every tick (idempotently, via
//     forward-only generation CAS), so no replica serves a killed
//     answer past its next refresh. The poll interval is therefore
//     the staleness bound, and Stats surfaces both.
package fleet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/qcache/persist"
)

// Role is a node's current fleet role.
type Role int

// The two roles. A node moves Reader -> Writer on takeover and
// Writer -> Reader on fencing; both transitions bump Version.
const (
	Reader Role = iota
	Writer
)

// String returns "reader" or "writer".
func (r Role) String() string {
	if r == Writer {
		return "writer"
	}
	return "reader"
}

// Options configures a fleet node.
type Options struct {
	// ID names this replica; it must be unique across the fleet and
	// stable across restarts (it keys the replica's inbox file).
	ID string
	// TTL is the lease duration (default 10s). A writer must renew
	// within it or self-fence; takeover happens within one poll
	// interval after expiry.
	TTL time.Duration
	// Poll is the tick interval: follower refresh, lease renewal,
	// inbox scan (default TTL/5, clamped to at most TTL/3 so two
	// renewals fit in every tenure). It is the fleet's staleness
	// bound.
	Poll time.Duration
	// FS is the filesystem (nil = the real one). Tests inject a
	// FaultFS.
	FS persist.FS
	// Now is the clock (nil = time.Now). Tests inject a virtual
	// clock and drive Tick by hand.
	Now func() time.Time
	// Log configures the writer-role persist.Log (FS and Now are
	// overridden by the fields above).
	Log persist.Options
	// Background starts a goroutine ticking every Poll. Leave false
	// to drive Tick manually (tests).
	Background bool
}

func (o Options) withDefaults() Options {
	if o.TTL <= 0 {
		o.TTL = 10 * time.Second
	}
	if o.Poll <= 0 {
		o.Poll = o.TTL / 5
	}
	if o.Poll > o.TTL/3 {
		o.Poll = o.TTL / 3
	}
	if o.FS == nil {
		o.FS = persist.OSFS{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	o.Log.FS = o.FS
	o.Log.Now = o.Now
	return o
}

// Stats is a snapshot of a node's fleet health for /v1/stats.
type Stats struct {
	// ID and Role identify the replica and its current role.
	ID   string `json:"id"`
	Role string `json:"role"`
	// Version is the store version (bumps when the visible state
	// changed behind the cache's back).
	Version uint64 `json:"version"`
	// LeaseID is the observed lease holder ("" when none).
	LeaseID string `json:"lease_id,omitempty"`
	// LeaseAgeMS and LeaseRemainingMS describe the current lease (a
	// writer's own; a reader's last observation). Remaining < 0 means
	// expired.
	LeaseAgeMS       int64 `json:"lease_age_ms"`
	LeaseRemainingMS int64 `json:"lease_remaining_ms"`
	// StalenessMS is how far behind the shared state this replica may
	// be (time since its last successful refresh; 0 for the writer).
	// StalenessBoundMS is the configured worst case (the poll
	// interval).
	StalenessMS      int64 `json:"staleness_ms"`
	StalenessBoundMS int64 `json:"staleness_bound_ms"`
	// Takeovers counts Reader -> Writer promotions; Fenced counts
	// Writer -> Reader self-fences.
	Takeovers int64 `json:"takeovers"`
	Fenced    int64 `json:"fenced"`
	// Degraded carries the storage error currently keeping this
	// replica on its local cache ("" while healthy).
	Degraded string `json:"degraded,omitempty"`
}

// Node is one replica's handle on the shared directory. It implements
// persist.Store, so a qcache.Cache uses it exactly like a private
// Log. Safe for concurrent use.
type Node struct {
	dir string
	opt Options

	// tickMu serializes ticks; mu guards the fields below and is
	// never held across IO.
	tickMu sync.Mutex
	mu     sync.Mutex

	role         Role
	lease        persist.Lease // writer: the held lease
	leaseExpires time.Time     // writer: expiry by own clock (fence deadline)
	obsLease     persist.Lease // reader: last observed lease
	obsLeaseOK   bool
	nonceCtr     uint64

	log       *persist.Log   // writer role only
	state     *persist.State // reader role: last good follower state
	inbox     *persist.Inbox // always owned, role-independent
	inboxGens map[string]int64

	version     uint64
	degraded    error
	lastRefresh time.Time
	takeovers   int64
	fenced      int64
	closed      bool

	stop chan struct{}
	done chan struct{}
}

// Open joins the fleet under dir as replica opt.ID, creating the
// directory on first use. The node immediately runs one tick, so the
// first replica into an empty directory comes up as the writer. The
// only errors are real filesystem failures on the node's own inbox —
// shared-state trouble degrades, never fails.
func Open(dir string, opt Options) (*Node, error) {
	opt = opt.withDefaults()
	if opt.ID == "" {
		return nil, fmt.Errorf("fleet: Options.ID must be non-empty")
	}
	if err := opt.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	ib, err := persist.OpenInbox(opt.FS, dir, opt.ID)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	n := &Node{
		dir:       dir,
		opt:       opt,
		role:      Reader,
		inbox:     ib,
		inboxGens: map[string]int64{},
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	n.Tick(opt.Now())
	if opt.Background {
		go n.run()
	} else {
		close(n.done)
	}
	return n, nil
}

func (n *Node) run() {
	defer close(n.done)
	t := time.NewTicker(n.opt.Poll)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
			n.Tick(n.opt.Now())
		}
	}
}

// Tick advances the node's fleet protocol once at the given time:
// writer — renew or self-fence, absorb inboxes, prune; reader —
// observe the lease, take over if expired, refresh follower state,
// scan inboxes. Production nodes tick from the background runner;
// tests call it directly with a virtual clock.
func (n *Node) Tick(now time.Time) {
	n.tickMu.Lock()
	defer n.tickMu.Unlock()

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	// Self-fence before anything else: a tick arriving past the fence
	// deadline means renewals stopped landing — tenure is over no
	// matter what the lease file says now.
	if n.role == Writer && !now.Before(n.leaseExpires) {
		n.fenceLocked(fmt.Errorf("fleet: lease expired without renewal"))
	}
	role := n.role
	n.mu.Unlock()

	if role == Writer {
		n.tickWriter(now)
	} else {
		n.tickReader(now)
	}
}

// fenceLocked ends the writer tenure: the log is turned inert (so a
// concurrent spill goroutine cannot write after the fence) and
// closed, and the node demotes to a stateless reader that will
// refresh on its next tick. n.mu must be held.
func (n *Node) fenceLocked(reason error) {
	if n.role != Writer {
		return
	}
	if n.log != nil {
		n.log.Fence(reason)
		_ = n.log.Close()
		n.log = nil
	}
	n.role = Reader
	n.state = nil
	n.fenced++
	n.version++
	n.degraded = reason
}

// tickWriter renews the lease (or fences), absorbs fleet-wide inbox
// invalidations into the log, and prunes the node's own inbox.
func (n *Node) tickWriter(now time.Time) {
	n.mu.Lock()
	lease := n.lease
	lg := n.inboxFenceCheckLocked(now)
	n.mu.Unlock()
	if lg == nil {
		return
	}

	// Renew first: everything else this tick writes under the tenure
	// the renewal extends.
	lease.ExpiresUnixNano = now.Add(n.opt.TTL).UnixNano()
	err := persist.Renew(n.opt.FS, n.dir, lease)
	n.mu.Lock()
	switch {
	case err == nil && n.role == Writer:
		n.lease = lease
		n.leaseExpires = lease.Expires()
		n.degraded = nil
	case err == persist.ErrLeaseLost:
		// Someone else's lease is published: they observed ours
		// expired, so our tenure is over *now*, not at the deadline.
		n.fenceLocked(fmt.Errorf("fleet: lease lost to another writer"))
		n.mu.Unlock()
		return
	default:
		// IO trouble renewing: keep writing until the fence deadline
		// (the lease file still names us), but surface the degradation.
		n.degraded = err
	}
	n.mu.Unlock()

	// A broken log cannot serve the fleet: hand the lease back so a
	// replica with healthy storage can take over, and degrade local.
	if lerr := lg.Err(); lerr != nil {
		_ = persist.Release(n.opt.FS, n.dir, lease)
		n.mu.Lock()
		n.fenceLocked(fmt.Errorf("fleet: writer log broken: %w", lerr))
		n.mu.Unlock()
		return
	}

	n.absorbInboxes(lg)
	_ = n.inbox.PruneIfCovered(func(label string, gen int64) bool {
		return lg.Gen(label) >= gen
	})

	n.mu.Lock()
	n.lastRefresh = now
	n.mu.Unlock()
}

// inboxFenceCheckLocked returns the writer log, or nil after fencing
// if the deadline passed while waiting for the lock.
func (n *Node) inboxFenceCheckLocked(now time.Time) *persist.Log {
	if n.role != Writer {
		return nil
	}
	if !now.Before(n.leaseExpires) {
		n.fenceLocked(fmt.Errorf("fleet: lease expired without renewal"))
		return nil
	}
	return n.log
}

// absorbInboxes folds every replica's published invalidations into
// the log as ordinary tombstones (idempotent: only generations ahead
// of the log are appended) and syncs them durable.
func (n *Node) absorbInboxes(lg *persist.Log) {
	gens := persist.ReadInboxes(n.opt.FS, n.dir)
	absorbed := false
	for label, gen := range gens {
		if gen > lg.Gen(label) {
			if lg.AppendTombstone(label, gen) == nil {
				absorbed = true
			}
		}
	}
	if !absorbed {
		return
	}
	_ = lg.Sync()
	n.mu.Lock()
	n.version++ // generations moved behind the owning cache's back
	n.mu.Unlock()
}

// tickReader observes the lease (taking over if it is dead), then
// refreshes the follower state and scans the inboxes.
func (n *Node) tickReader(now time.Time) {
	lease, lerr := persist.ReadLease(n.opt.FS, n.dir)
	n.mu.Lock()
	n.obsLease, n.obsLeaseOK = lease, lerr == nil
	n.mu.Unlock()

	if lerr != nil || !now.Before(lease.Expires()) {
		if n.takeover(now) {
			return
		}
	}

	st, err := persist.LoadState(n.opt.FS, n.dir)
	n.mu.Lock()
	switch {
	case n.closed:
	case err == nil:
		changed := n.state == nil ||
			st.Seq != n.state.Seq ||
			st.Stats.SnapshotRecords != n.state.Stats.SnapshotRecords ||
			st.Stats.LogRecords != n.state.Stats.LogRecords ||
			st.Stats.Entries != n.state.Stats.Entries
		n.state = st
		n.lastRefresh = now
		n.degraded = nil
		if changed {
			n.version++
		}
	case err == persist.ErrConcurrentCompaction:
		// Raced the writer's compaction: keep the last good state and
		// try again next tick. Not a degradation.
	default:
		n.degraded = err
	}
	n.mu.Unlock()

	n.scanInboxes()
	if st := n.followerState(); st != nil {
		_ = n.inbox.PruneIfCovered(func(label string, gen int64) bool {
			return st.Gen(label) >= gen
		})
	}
}

func (n *Node) followerState() *persist.State {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// scanInboxes merges every replica's published invalidation
// generations into the node's overlay, so a killed answer stops
// being served at most one poll interval after any replica acked it.
func (n *Node) scanInboxes() {
	gens := persist.ReadInboxes(n.opt.FS, n.dir)
	n.mu.Lock()
	for label, gen := range gens {
		if gen > n.inboxGens[label] {
			n.inboxGens[label] = gen
			n.version++
		}
	}
	n.mu.Unlock()
}

// takeover attempts to claim an expired or missing lease and, on
// success, promote to writer. Returns true when the node is the
// writer afterwards.
func (n *Node) takeover(now time.Time) bool {
	n.mu.Lock()
	n.nonceCtr++
	lease := persist.Lease{
		ID:              n.opt.ID,
		Nonce:           fmt.Sprintf("%s-%d-%d", n.opt.ID, now.UnixNano(), n.nonceCtr),
		ExpiresUnixNano: now.Add(n.opt.TTL).UnixNano(),
	}
	n.mu.Unlock()

	ok, err := persist.TryAcquire(n.opt.FS, n.dir, lease, now)
	if err != nil {
		n.mu.Lock()
		n.degraded = err
		n.mu.Unlock()
		return false
	}
	if !ok {
		return false // contention: someone live holds it, or we lost the race
	}

	// We hold the lease; open the log. The previous writer either
	// closed it, crashed (Open repairs torn tails and odd seq), or is
	// fenced — in every case single-writer ownership is ours now.
	lg, _, err := persist.Open(n.dir, n.opt.Log)
	if err != nil {
		_ = persist.Release(n.opt.FS, n.dir, lease)
		n.mu.Lock()
		n.degraded = fmt.Errorf("fleet: promote: %w", err)
		n.mu.Unlock()
		return false
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = lg.Close()
		_ = persist.Release(n.opt.FS, n.dir, lease)
		return false
	}
	n.role = Writer
	n.lease = lease
	n.leaseExpires = lease.Expires()
	n.log = lg
	n.state = nil
	n.takeovers++
	n.version++ // the visible state moved from follower view to log view
	n.lastRefresh = now
	n.degraded = nil
	n.mu.Unlock()

	// Absorb straight away so invalidations parked in inboxes during
	// the writerless window land without waiting another tick.
	n.absorbInboxes(lg)
	return true
}

// writerLog returns the log while the node is an unfenced writer,
// enforcing the fence deadline on the query path itself: a stalled
// node that resumes past expiry fences here, before any write.
func (n *Node) writerLog() *persist.Log {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inboxFenceCheckLocked(n.opt.Now())
}

// Label implements persist.Store: the writer answers from its log, a
// reader from its last good follower state, and both overlay the
// fleet-wide invalidation generations — a killed label reports the
// killed generation (with no entries) even before the writer absorbs
// the tombstone into the log.
func (n *Node) Label(label string) (int64, []persist.Entry) {
	n.mu.Lock()
	lg, st, ig := n.log, n.state, n.inboxGens[label]
	n.mu.Unlock()
	var gen int64
	var entries []persist.Entry
	switch {
	case lg != nil:
		gen, entries = lg.Label(label)
	case st != nil:
		gen, entries = st.Label(label)
	}
	if ig > gen {
		return ig, nil
	}
	return gen, entries
}

// Append implements persist.Store. Only the writer persists; a reader
// absorbs the call — its freshly computed answers stay in its memory
// tier (best-effort durability, exactly the persist contract).
func (n *Node) Append(e persist.Entry) error {
	lg := n.writerLog()
	if lg == nil {
		return nil
	}
	return lg.Append(e)
}

// AppendTombstone implements persist.Store: the fleet invalidation
// path. The generation becomes visible locally at once, durable in
// the writer's log (synced — an invalidation never sits in a batch
// window) or, from a reader, in this replica's inbox, from where
// every replica applies it within one poll interval.
func (n *Node) AppendTombstone(label string, gen int64) error {
	n.mu.Lock()
	if gen > n.inboxGens[label] {
		n.inboxGens[label] = gen
	}
	lg := n.inboxFenceCheckLocked(n.opt.Now())
	n.mu.Unlock()
	if lg != nil {
		if err := lg.AppendTombstone(label, gen); err == nil {
			return lg.Sync()
		}
		// Broken log: fall through to the inbox so the invalidation
		// still reaches the fleet when a healthy writer takes over.
	}
	return n.inbox.Append(label, gen)
}

// Version implements persist.Store: it advances whenever the visible
// state may have changed behind the owning cache's back (follower
// refresh, absorbed or scanned invalidation, role change), telling
// the cache to re-restore labels.
func (n *Node) Version() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.version
}

// Err implements persist.Store: the storage error currently degrading
// this replica to its local cache, nil while healthy.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.degraded != nil {
		return n.degraded
	}
	if n.log != nil {
		return n.log.Err()
	}
	return nil
}

// Sync implements persist.Store (writer: flush the log; reader:
// nothing to flush).
func (n *Node) Sync() error {
	n.mu.Lock()
	lg := n.log
	n.mu.Unlock()
	if lg == nil {
		return nil
	}
	return lg.Sync()
}

// Dir implements persist.Store.
func (n *Node) Dir() string { return n.dir }

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Stats snapshots the node's fleet health.
func (n *Node) Stats() Stats {
	now := n.opt.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Stats{
		ID:               n.opt.ID,
		Role:             n.role.String(),
		Version:          n.version,
		StalenessBoundMS: n.opt.Poll.Milliseconds(),
		Takeovers:        n.takeovers,
		Fenced:           n.fenced,
	}
	lease, ok := n.obsLease, n.obsLeaseOK
	if n.role == Writer {
		lease, ok = n.lease, true
		// The writer is never stale: it reads its own log.
	} else if !n.lastRefresh.IsZero() {
		st.StalenessMS = now.Sub(n.lastRefresh).Milliseconds()
	}
	if ok {
		st.LeaseID = lease.ID
		issued := lease.Expires().Add(-n.opt.TTL)
		st.LeaseAgeMS = now.Sub(issued).Milliseconds()
		st.LeaseRemainingMS = lease.Expires().Sub(now).Milliseconds()
	}
	if n.degraded != nil {
		st.Degraded = n.degraded.Error()
	}
	return st
}

// Close leaves the fleet: stop ticking, release the lease (writer),
// close the log and inbox. Never blocks on shared-storage health.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		<-n.done
		return nil
	}
	n.closed = true
	role, lease := n.role, n.lease
	lg, ib := n.log, n.inbox
	n.log = nil
	n.mu.Unlock()

	close(n.stop)
	<-n.done

	var err error
	if lg != nil {
		err = lg.Close()
	}
	if role == Writer {
		_ = persist.Release(n.opt.FS, n.dir, lease)
	}
	if cerr := ib.Close(); err == nil {
		err = cerr
	}
	return err
}
