// Package logic defines the logical core used throughout the library:
// terms, atoms, literals, conjunctive queries with negation (CQ¬) and
// unions of conjunctive queries with negation (UCQ¬) in Datalog rule form,
// together with substitutions, safety checking, and canonical printing.
//
// The representation follows Section 2 of Nash & Ludäscher, "Processing
// Unions of Conjunctive Queries with Negation under Limited Access
// Patterns" (EDBT 2004). Queries are treated as immutable values: every
// algorithm that needs to change a query clones it first.
package logic

import "strings"

// Kind classifies a Term.
type Kind uint8

const (
	// KindVar is a variable. Variables are written in lowercase in the
	// paper; here any name is allowed and the Kind field is authoritative.
	KindVar Kind = iota
	// KindConst is a constant.
	KindConst
	// KindNull is the distinguished null value used in overestimate plans
	// (Section 4.1 of the paper) for head variables whose value cannot be
	// retrieved under the given access patterns.
	KindNull
)

// Term is a variable, a constant, or the distinguished null.
// The zero value is the variable with the empty name, which is invalid;
// use Var, Const, or Null to construct terms.
type Term struct {
	Name string
	Kind Kind
}

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{Name: name, Kind: KindVar} }

// Const returns a constant term with the given name.
func Const(name string) Term { return Term{Name: name, Kind: KindConst} }

// Null is the distinguished null term.
var Null = Term{Name: "null", Kind: KindNull}

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == KindVar }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Kind == KindConst }

// IsNull reports whether t is the null term.
func (t Term) IsNull() bool { return t.Kind == KindNull }

// String renders the term. Constants are double-quoted with the minimal
// escaping the parser's lexer understands (backslash, quote, newline,
// carriage return, tab); all other bytes are printed raw, so printing
// and parsing round-trip arbitrary constant values.
func (t Term) String() string {
	switch t.Kind {
	case KindNull:
		return "null"
	case KindConst:
		return quoteConst(t.Name)
	default:
		return t.Name
	}
}

// quoteConst renders a constant in double quotes with minimal escapes.
func quoteConst(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
