package logic

import (
	"strings"
	"testing"
)

// ex1 is Example 1 of the paper:
// Q(i, a, t) :- B(i, a, t), C(i, a), not L(i)
func ex1() CQ {
	return CQ{
		HeadPred: "Q",
		HeadArgs: []Term{Var("i"), Var("a"), Var("t")},
		Body: []Literal{
			Pos(NewAtom("B", Var("i"), Var("a"), Var("t"))),
			Pos(NewAtom("C", Var("i"), Var("a"))),
			Neg(NewAtom("L", Var("i"))),
		},
	}
}

func TestCQVarsAndParts(t *testing.T) {
	q := ex1()
	if got := q.FreeVars(); len(got) != 3 {
		t.Fatalf("FreeVars() = %v, want 3 vars", got)
	}
	if got := q.Vars(); len(got) != 3 {
		t.Fatalf("Vars() = %v, want 3 vars", got)
	}
	if got := len(q.Positive()); got != 2 {
		t.Errorf("len(Positive()) = %d, want 2", got)
	}
	if got := len(q.Negative()); got != 1 {
		t.Errorf("len(Negative()) = %d, want 1", got)
	}
	pp := q.PositivePart()
	if len(pp.Body) != 2 || pp.Body[0].Negated || pp.Body[1].Negated {
		t.Errorf("PositivePart() = %v", pp)
	}
}

func TestCQSafety(t *testing.T) {
	tests := []struct {
		name string
		q    CQ
		safe bool
	}{
		{"paper example 1 is safe", ex1(), true},
		{
			"head var not in positive body is unsafe",
			CQ{HeadPred: "Q", HeadArgs: []Term{Var("x"), Var("y")},
				Body: []Literal{Pos(NewAtom("R", Var("x")))}},
			false,
		},
		{
			"var only in negative literal is unsafe",
			CQ{HeadPred: "Q", HeadArgs: []Term{Var("x")},
				Body: []Literal{Pos(NewAtom("R", Var("x"))), Neg(NewAtom("S", Var("z")))}},
			false,
		},
		{
			"false query is safe",
			FalseQuery("Q", []Term{Var("x")}),
			true,
		},
		{
			"constants in head are fine",
			CQ{HeadPred: "Q", HeadArgs: []Term{Const("c")},
				Body: []Literal{Pos(NewAtom("R", Var("x")))}},
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.q.Safe(); got != tt.safe {
				t.Errorf("Safe() = %v, want %v for %s", got, tt.safe, tt.q)
			}
		})
	}
}

func TestCQString(t *testing.T) {
	q := ex1()
	want := "Q(i, a, t) :- B(i, a, t), C(i, a), not L(i)"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	f := FalseQuery("Q", []Term{Var("x")})
	if got := f.String(); got != "Q(x) :- false" {
		t.Errorf("false String() = %q", got)
	}
	tr := CQ{HeadPred: "Q"}
	if got := tr.String(); got != "Q() :- true" {
		t.Errorf("true String() = %q", got)
	}
}

func TestCQEqualAsSet(t *testing.T) {
	q := ex1()
	r := q.Clone()
	// Reverse the body.
	for i, j := 0, len(r.Body)-1; i < j; i, j = i+1, j-1 {
		r.Body[i], r.Body[j] = r.Body[j], r.Body[i]
	}
	if q.Equal(r) {
		t.Error("Equal must be order-sensitive")
	}
	if !q.EqualAsSet(r) {
		t.Error("EqualAsSet must be order-insensitive")
	}
	r.Body[0] = Pos(NewAtom("Z", Var("i")))
	if q.EqualAsSet(r) {
		t.Error("EqualAsSet must detect differing literals")
	}
}

func TestUCQValidate(t *testing.T) {
	q := ex1()
	u := Union(q, q)
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	bad := q.Clone()
	bad.HeadArgs = []Term{Var("i"), Var("a")}
	if err := Union(q, bad).Validate(); err == nil {
		t.Error("Validate() must reject differing head arities")
	}
	bad2 := q.Clone()
	bad2.HeadArgs = []Term{Var("a"), Var("i"), Var("t")}
	if err := Union(q, bad2).Validate(); err == nil {
		t.Error("Validate() must reject differing head variables")
	}
}

func TestUCQDropFalseRules(t *testing.T) {
	u := Union(ex1(), FalseQuery("Q", []Term{Var("i"), Var("a"), Var("t")}))
	d := u.DropFalseRules()
	if len(d.Rules) != 1 {
		t.Fatalf("DropFalseRules() kept %d rules, want 1", len(d.Rules))
	}
	if u2 := Union(FalseQuery("Q", nil)); !u2.IsFalse() {
		t.Error("union of false rules must be false")
	}
}

func TestSubstApply(t *testing.T) {
	s := Subst{"x": Const("a"), "z": Var("w")}
	q := CQ{
		HeadPred: "Q", HeadArgs: []Term{Var("x"), Var("y")},
		Body: []Literal{
			Pos(NewAtom("R", Var("x"), Var("z"))),
			Neg(NewAtom("S", Var("z"))),
		},
	}
	r := s.CQ(q)
	if r.HeadArgs[0] != Const("a") || r.HeadArgs[1] != Var("y") {
		t.Errorf("head after subst = %v", r.HeadArgs)
	}
	if r.Body[0].Atom.Args[1] != Var("w") || r.Body[1].Atom.Args[0] != Var("w") {
		t.Errorf("body after subst = %v", r.Body)
	}
	// Original untouched.
	if q.Body[0].Atom.Args[0] != Var("x") {
		t.Error("substitution must not mutate its input")
	}
}

func TestRenameApart(t *testing.T) {
	q := ex1()
	taken := map[string]bool{"i": true, "t": true}
	r, s := RenameApart(q, taken)
	if len(s) != 2 {
		t.Fatalf("expected 2 renamings, got %v", s)
	}
	for _, v := range r.Vars() {
		if v.Name == "i" || v.Name == "t" {
			t.Errorf("renamed query still uses taken name %s", v.Name)
		}
	}
	if _, ok := s["a"]; ok {
		t.Error("non-colliding variable must not be renamed")
	}
}

func TestFreeze(t *testing.T) {
	q := ex1()
	f, s := Freeze(q)
	if len(s) != 3 {
		t.Fatalf("Freeze returned %d bindings, want 3", len(s))
	}
	for _, l := range f.Body {
		for _, a := range l.Atom.Args {
			if a.IsVar() {
				t.Fatalf("frozen query still contains variable %v", a)
			}
		}
	}
	if !strings.Contains(s["i"].Name, "i") {
		t.Errorf("frozen constant for i should mention i: %v", s["i"])
	}
}

func TestSubstString(t *testing.T) {
	s := Subst{"y": Var("w"), "x": Const("a")}
	if got, want := s.String(), `{x/"a", y/w}`; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
