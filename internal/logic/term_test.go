package logic

import "testing"

func TestTermConstructors(t *testing.T) {
	tests := []struct {
		name    string
		term    Term
		isVar   bool
		isConst bool
		isNull  bool
		str     string
	}{
		{"variable", Var("x"), true, false, false, "x"},
		{"constant", Const("a"), false, true, false, `"a"`},
		{"null", Null, false, false, true, "null"},
		{"uppercase variable allowed", Var("X1"), true, false, false, "X1"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.term.IsVar(); got != tt.isVar {
				t.Errorf("IsVar() = %v, want %v", got, tt.isVar)
			}
			if got := tt.term.IsConst(); got != tt.isConst {
				t.Errorf("IsConst() = %v, want %v", got, tt.isConst)
			}
			if got := tt.term.IsNull(); got != tt.isNull {
				t.Errorf("IsNull() = %v, want %v", got, tt.isNull)
			}
			if got := tt.term.String(); got != tt.str {
				t.Errorf("String() = %q, want %q", got, tt.str)
			}
		})
	}
}

func TestTermEquality(t *testing.T) {
	if Var("x") != Var("x") {
		t.Error("equal variables must compare equal")
	}
	if Var("x") == Const("x") {
		t.Error("variable and constant with same name must differ")
	}
	if Var("null") == Null {
		t.Error("variable named null must differ from the null term")
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("R", Var("x"), Const("c"), Var("x"), Var("y"))
	if a.Arity() != 4 {
		t.Fatalf("Arity() = %d, want 4", a.Arity())
	}
	vars := a.Vars()
	if len(vars) != 2 || vars[0] != Var("x") || vars[1] != Var("y") {
		t.Errorf("Vars() = %v, want [x y] in first-occurrence order", vars)
	}
	if got, want := a.String(), `R(x, "c", x, y)`; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	b := a.Clone()
	b.Args[0] = Var("z")
	if a.Args[0] != Var("x") {
		t.Error("Clone must not share argument storage")
	}
}

func TestLiteralComplement(t *testing.T) {
	l := Pos(NewAtom("R", Var("x")))
	c := l.Complement()
	if !c.Negated || !c.Atom.Equal(l.Atom) {
		t.Errorf("Complement() = %v", c)
	}
	if !c.Complement().Equal(l) {
		t.Error("double complement must be identity")
	}
	if got, want := Neg(NewAtom("S", Var("z"))).String(), "not S(z)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
