package logic

import "testing"

func TestCQHelpers(t *testing.T) {
	q := ex1()
	if !q.HasLiteral(Neg(NewAtom("L", Var("i")))) {
		t.Error("HasLiteral must find not L(i)")
	}
	if q.HasLiteral(Pos(NewAtom("L", Var("i")))) {
		t.Error("HasLiteral must be sign-sensitive")
	}
	if !q.HasAtom(NewAtom("C", Var("i"), Var("a")), false) {
		t.Error("HasAtom must find C(i, a)")
	}
	rels := q.Relations()
	if len(rels) != 3 || rels["B"] != 3 || rels["L"] != 1 {
		t.Errorf("Relations = %v", rels)
	}
	bv := q.BodyVars()
	if len(bv) != 3 {
		t.Errorf("BodyVars = %v", bv)
	}
	if q.Key() != q.String() {
		t.Error("Key must equal String")
	}
	if q.HasNullHead() {
		t.Error("no null in Example 1 head")
	}
	q2 := q.Clone()
	q2.HeadArgs[0] = Null
	if !q2.HasNullHead() {
		t.Error("HasNullHead must see null")
	}
}

func TestAtomLiteralKeys(t *testing.T) {
	a := NewAtom("R", Var("x"), Const("c"))
	if a.Key() != a.String() {
		t.Error("Atom.Key must equal String")
	}
	l := Neg(a)
	if l.Key() != "not "+a.String() {
		t.Errorf("Literal.Key = %q", l.Key())
	}
	if !l.Equal(l.Clone()) {
		t.Error("clone must be equal")
	}
	if l.Equal(Pos(a)) {
		t.Error("sign must matter")
	}
}

func TestUCQHelpers(t *testing.T) {
	u := Union(ex1())
	if u.HeadPred() != "Q" || u.HeadArity() != 3 {
		t.Errorf("head = %s/%d", u.HeadPred(), u.HeadArity())
	}
	empty := UCQ{}
	if empty.HeadPred() != "" || empty.HeadArity() != 0 {
		t.Error("empty union head must be zero")
	}
	if !empty.IsFalse() {
		t.Error("empty union is false")
	}
	if u.IsFalse() {
		t.Error("nonempty satisfiable union is not false")
	}
	rels := u.Relations()
	if len(rels) != 3 {
		t.Errorf("Relations = %v", rels)
	}
	if u.HasNull() {
		t.Error("no nulls in Example 1")
	}
	withNull := u.Clone()
	withNull.Rules[0].HeadArgs[2] = Null
	if !withNull.HasNull() {
		t.Error("HasNull must see the null head")
	}
	if u.Equal(withNull) {
		t.Error("Equal must distinguish null heads")
	}
}

func TestUCQEqualAsSet(t *testing.T) {
	a := Union(
		CQ{HeadPred: "Q", HeadArgs: []Term{Var("x")}, Body: []Literal{Pos(NewAtom("R", Var("x")))}},
		CQ{HeadPred: "Q", HeadArgs: []Term{Var("x")}, Body: []Literal{Pos(NewAtom("S", Var("x")))}},
	)
	b := Union(a.Rules[1], a.Rules[0]) // swapped
	if !a.EqualAsSet(b) {
		t.Error("EqualAsSet must ignore rule order")
	}
	if a.Equal(b) {
		t.Error("Equal must be order-sensitive")
	}
	c := Union(a.Rules[0], a.Rules[0])
	if a.EqualAsSet(c) {
		t.Error("EqualAsSet must distinguish different rule multisets")
	}
}

func TestSubstHelpers(t *testing.T) {
	s := NewSubst().Bind("x", Const("a"))
	if s.Term(Var("x")) != Const("a") || s.Term(Var("y")) != Var("y") {
		t.Error("Term lookup wrong")
	}
	if s.Term(Const("x")) != Const("x") {
		t.Error("constants must pass through")
	}
	if s.Term(Null) != Null {
		t.Error("null must pass through")
	}
	a := s.Atom(NewAtom("R", Var("x"), Var("y")))
	if a.Args[0] != Const("a") || a.Args[1] != Var("y") {
		t.Errorf("Atom subst = %v", a)
	}
	l := s.Literal(Neg(NewAtom("R", Var("x"))))
	if !l.Negated || l.Atom.Args[0] != Const("a") {
		t.Errorf("Literal subst = %v", l)
	}
	u := s.UCQ(Union(ex1()))
	if len(u.Rules) != 1 {
		t.Errorf("UCQ subst = %v", u)
	}
	// Bind must not mutate the receiver.
	s2 := s.Bind("y", Const("b"))
	if _, ok := s["y"]; ok {
		t.Error("Bind mutated the receiver")
	}
	if len(s2) != 2 {
		t.Errorf("Bind result = %v", s2)
	}
}

func TestVarNames(t *testing.T) {
	names := VarNames(ex1())
	if len(names) != 3 || !names["i"] || !names["a"] || !names["t"] {
		t.Errorf("VarNames = %v", names)
	}
}

func TestPositivePart(t *testing.T) {
	pp := ex1().PositivePart()
	if len(pp.Body) != 2 || pp.False {
		t.Errorf("PositivePart = %v", pp)
	}
	f := FalseQuery("Q", nil).PositivePart()
	if !f.False {
		t.Error("PositivePart of false must stay false")
	}
}

func TestQuoteConstEscapes(t *testing.T) {
	tests := []struct{ in, want string }{
		{"plain", `"plain"`},
		{`with"quote`, `"with\"quote"`},
		{`back\slash`, `"back\\slash"`},
		{"new\nline", `"new\nline"`},
		{"tab\tchar", `"tab\tchar"`},
		{"\xf3", "\"\xf3\""}, // raw non-UTF8 byte passes through
	}
	for _, tt := range tests {
		if got := Const(tt.in).String(); got != tt.want {
			t.Errorf("Const(%q).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	if err := (CQ{}).Validate(); err == nil {
		t.Error("empty head pred must be invalid")
	}
	bad := FalseQuery("Q", nil)
	bad.Body = []Literal{Pos(NewAtom("R", Var("x")))}
	if err := bad.Validate(); err == nil {
		t.Error("false query with a body must be invalid")
	}
}
