package logic

import "strings"

// Atom is a predicate applied to a sequence of terms, R(x̄).
type Atom struct {
	Pred string
	Args []Term
}

// NewAtom constructs an atom.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args}
}

// Equal reports syntactic equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Vars returns the variables of the atom in order of first occurrence.
func (a Atom) Vars() []Term {
	var out []Term
	seen := map[string]bool{}
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t)
		}
	}
	return out
}

// String renders the atom, e.g. R(x, "c").
func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Pred)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key returns a canonical string usable as a map key for the atom.
func (a Atom) Key() string { return a.String() }

// Literal is an atom or its negation.
type Literal struct {
	Atom    Atom
	Negated bool
}

// Pos returns a positive literal over the atom.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg returns a negated literal over the atom.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// Clone returns a deep copy of the literal.
func (l Literal) Clone() Literal {
	return Literal{Atom: l.Atom.Clone(), Negated: l.Negated}
}

// Equal reports syntactic equality of two literals.
func (l Literal) Equal(m Literal) bool {
	return l.Negated == m.Negated && l.Atom.Equal(m.Atom)
}

// Complement returns the literal with opposite sign.
func (l Literal) Complement() Literal {
	return Literal{Atom: l.Atom, Negated: !l.Negated}
}

// Vars returns the variables of the literal in order of first occurrence.
func (l Literal) Vars() []Term { return l.Atom.Vars() }

// String renders the literal, e.g. not S(z).
func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Key returns a canonical string usable as a map key for the literal.
func (l Literal) Key() string { return l.String() }
