package logic

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTermJSONRoundTrip(t *testing.T) {
	for _, term := range []Term{Var("x"), Const("a"), Const(""), Const("with \"quotes\""), Null} {
		data, err := json.Marshal(term)
		if err != nil {
			t.Fatal(err)
		}
		var back Term
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != term {
			t.Errorf("round trip %v → %s → %v", term, data, back)
		}
	}
}

func TestTermJSONErrors(t *testing.T) {
	bad := []string{
		`{"kind":"wat"}`,
		`{"kind":"var"}`,
		`[1,2]`,
	}
	for _, src := range bad {
		var term Term
		if err := json.Unmarshal([]byte(src), &term); err == nil {
			t.Errorf("Unmarshal(%q) succeeded", src)
		}
	}
}

func TestQueryJSONRoundTrip(t *testing.T) {
	u := Union(ex1(), FalseQuery("Q", []Term{Var("i"), Var("a"), Var("t")}))
	data, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	var back UCQ
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, data)
	}
	if !u.Equal(back) {
		t.Errorf("round trip changed query:\n%s\nvs\n%s", u, back)
	}
	// Spot-check the wire shape.
	s := string(data)
	for _, want := range []string{`"head":"Q"`, `"negated":true`, `"kind":"var"`, `"false":true`} {
		if !strings.Contains(s, want) {
			t.Errorf("wire form missing %q:\n%s", want, s)
		}
	}
}

func TestQueryJSONValidates(t *testing.T) {
	// A head variable missing from the body must be rejected on decode.
	src := `{"rules":[{"head":"Q","headArgs":[{"kind":"var","name":"x"}],"body":[{"atom":{"pred":"R","args":[{"kind":"var","name":"y"}]}}]}]}`
	var u UCQ
	if err := json.Unmarshal([]byte(src), &u); err == nil {
		t.Error("non-range-restricted rule must be rejected")
	}
	var q CQ
	if err := json.Unmarshal([]byte(`{"head":""}`), &q); err == nil {
		t.Error("empty head must be rejected")
	}
	var a Atom
	if err := json.Unmarshal([]byte(`{"pred":""}`), &a); err == nil {
		t.Error("empty predicate must be rejected")
	}
}
