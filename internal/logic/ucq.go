package logic

import (
	"fmt"
	"strings"
)

// UCQ is a union of conjunctive queries with negation (UCQ¬) in rule form:
// a set of CQ¬ rules with identical heads. A UCQ with no rules is the
// query "false" (it returns no tuples and is vacuously executable).
type UCQ struct {
	Rules []CQ
}

// Union constructs a UCQ from rules.
func Union(rules ...CQ) UCQ {
	out := make([]CQ, len(rules))
	for i, r := range rules {
		out[i] = r.Clone()
	}
	return UCQ{Rules: out}
}

// Clone returns a deep copy.
func (u UCQ) Clone() UCQ {
	rules := make([]CQ, len(u.Rules))
	for i, r := range u.Rules {
		rules[i] = r.Clone()
	}
	return UCQ{Rules: rules}
}

// IsFalse reports whether the union has no satisfiable rule bodies
// syntactically present (i.e. no rules at all, or all rules are "false").
func (u UCQ) IsFalse() bool {
	for _, r := range u.Rules {
		if !r.False {
			return false
		}
	}
	return true
}

// HeadPred returns the head predicate (empty for an empty union).
func (u UCQ) HeadPred() string {
	if len(u.Rules) == 0 {
		return ""
	}
	return u.Rules[0].HeadPred
}

// HeadArity returns the arity of the head (0 for an empty union).
func (u UCQ) HeadArity() int {
	if len(u.Rules) == 0 {
		return 0
	}
	return len(u.Rules[0].HeadArgs)
}

// Safe reports whether every rule is safe and all rules have the same
// head predicate, arity, and free variables, per Section 2 of the paper.
func (u UCQ) Safe() bool { return u.Validate() == nil }

// Validate returns an error describing why the union is malformed, or nil.
func (u UCQ) Validate() error {
	if len(u.Rules) == 0 {
		return nil
	}
	first := u.Rules[0]
	for i, r := range u.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i+1, err)
		}
		if r.HeadPred != first.HeadPred || len(r.HeadArgs) != len(first.HeadArgs) {
			return fmt.Errorf("rule %d: head %s/%d differs from %s/%d",
				i+1, r.HeadPred, len(r.HeadArgs), first.HeadPred, len(first.HeadArgs))
		}
		for j := range r.HeadArgs {
			if r.HeadArgs[j] != first.HeadArgs[j] {
				return fmt.Errorf("rule %d: head argument %d (%s) differs from rule 1 (%s); all rules of a union must share the same head",
					i+1, j+1, r.HeadArgs[j], first.HeadArgs[j])
			}
		}
	}
	return nil
}

// Equal reports syntactic equality (same rules in the same order).
func (u UCQ) Equal(v UCQ) bool {
	if len(u.Rules) != len(v.Rules) {
		return false
	}
	for i := range u.Rules {
		if !u.Rules[i].Equal(v.Rules[i]) {
			return false
		}
	}
	return true
}

// EqualAsSet reports equality where both rule order and body literal order
// are ignored.
func (u UCQ) EqualAsSet(v UCQ) bool {
	if len(u.Rules) != len(v.Rules) {
		return false
	}
	used := make([]bool, len(v.Rules))
outer:
	for _, r := range u.Rules {
		for j, s := range v.Rules {
			if !used[j] && r.EqualAsSet(s) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// Relations returns relation name → arity over all rules.
func (u UCQ) Relations() map[string]int {
	out := map[string]int{}
	for _, r := range u.Rules {
		for name, ar := range r.Relations() {
			out[name] = ar
		}
	}
	return out
}

// HasNull reports whether any rule has a null head argument. FEASIBLE
// (Figure 3 of the paper) uses this to conclude infeasibility.
func (u UCQ) HasNull() bool {
	for _, r := range u.Rules {
		if r.HasNullHead() {
			return true
		}
	}
	return false
}

// DropFalseRules returns the union without rules marked false.
func (u UCQ) DropFalseRules() UCQ {
	var rules []CQ
	for _, r := range u.Rules {
		if !r.False {
			rules = append(rules, r.Clone())
		}
	}
	return UCQ{Rules: rules}
}

// String renders the union one rule per line.
func (u UCQ) String() string {
	if len(u.Rules) == 0 {
		return "<empty union (false)>"
	}
	var b strings.Builder
	for i, r := range u.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	return b.String()
}

// AsUnion wraps a single CQ¬ as a UCQ¬.
func AsUnion(q CQ) UCQ { return UCQ{Rules: []CQ{q.Clone()}} }
