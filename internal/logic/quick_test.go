package logic_test

// Property-based tests (testing/quick) on the logical core, using a
// quick.Generator that produces arbitrary safe CQ¬ queries. The external
// test package lets us round-trip through the parser without an import
// cycle.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/logic"
	"repro/internal/parser"
)

// genCQ wraps a random safe query for quick.
type genCQ struct {
	Q logic.CQ
}

// Generate implements quick.Generator: random positive literals over a
// small vocabulary, then negatives and a head drawn from the positive
// variables, so the query is safe.
func (genCQ) Generate(r *rand.Rand, size int) reflect.Value {
	nPos := 1 + r.Intn(3)
	nNeg := r.Intn(2)
	var body []logic.Literal
	var posVars []logic.Term
	seen := map[string]bool{}
	term := func() logic.Term {
		if r.Intn(10) == 0 {
			return logic.Const(fmt.Sprintf("c%d", r.Intn(3)))
		}
		return logic.Var(fmt.Sprintf("v%d", r.Intn(4)))
	}
	for i := 0; i < nPos; i++ {
		ar := 1 + r.Intn(2)
		args := make([]logic.Term, ar)
		for j := range args {
			args[j] = term()
			if args[j].IsVar() && !seen[args[j].Name] {
				seen[args[j].Name] = true
				posVars = append(posVars, args[j])
			}
		}
		body = append(body, logic.Pos(logic.NewAtom(fmt.Sprintf("R%d", r.Intn(3)), args...)))
	}
	for i := 0; i < nNeg && len(posVars) > 0; i++ {
		ar := 1 + r.Intn(2)
		args := make([]logic.Term, ar)
		for j := range args {
			args[j] = posVars[r.Intn(len(posVars))]
		}
		body = append(body, logic.Neg(logic.NewAtom(fmt.Sprintf("R%d", r.Intn(3)), args...)))
	}
	var head []logic.Term
	if len(posVars) > 0 {
		head = append(head, posVars[r.Intn(len(posVars))])
	}
	return reflect.ValueOf(genCQ{Q: logic.CQ{HeadPred: "Q", HeadArgs: head, Body: body}})
}

func qc(t *testing.T, f any) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickGeneratedQueriesAreSafe(t *testing.T) {
	qc(t, func(g genCQ) bool { return g.Q.Safe() && g.Q.Validate() == nil })
}

func TestQuickCloneIsDeepAndEqual(t *testing.T) {
	qc(t, func(g genCQ) bool {
		c := g.Q.Clone()
		if !c.Equal(g.Q) {
			return false
		}
		// Mutate the clone everywhere; the original must be unchanged.
		for i := range c.Body {
			c.Body[i].Atom.Pred = "MUTATED"
			for j := range c.Body[i].Atom.Args {
				c.Body[i].Atom.Args[j] = logic.Const("zzz")
			}
		}
		if len(c.HeadArgs) > 0 {
			c.HeadArgs[0] = logic.Const("zzz")
		}
		orig := g.Q
		for _, l := range orig.Body {
			if l.Atom.Pred == "MUTATED" {
				return false
			}
			for _, a := range l.Atom.Args {
				if a == logic.Const("zzz") {
					return false
				}
			}
		}
		return true
	})
}

func TestQuickEqualAsSetUnderPermutation(t *testing.T) {
	qc(t, func(g genCQ, seed int64) bool {
		perm := g.Q.Clone()
		r := rand.New(rand.NewSource(seed))
		r.Shuffle(len(perm.Body), func(i, j int) {
			perm.Body[i], perm.Body[j] = perm.Body[j], perm.Body[i]
		})
		return g.Q.EqualAsSet(perm)
	})
}

func TestQuickParserRoundTrip(t *testing.T) {
	qc(t, func(g genCQ) bool {
		r, err := parser.ParseCQ(g.Q.String())
		if err != nil {
			t.Logf("reparse error on %s: %v", g.Q, err)
			return false
		}
		return r.Equal(g.Q)
	})
}

func TestQuickFreezeGrounds(t *testing.T) {
	qc(t, func(g genCQ) bool {
		f, s := logic.Freeze(g.Q)
		if len(s) != len(g.Q.Vars()) {
			return false
		}
		for _, l := range f.Body {
			for _, a := range l.Atom.Args {
				if a.IsVar() {
					return false
				}
			}
		}
		return true
	})
}

func TestQuickRenameApartAvoidsTaken(t *testing.T) {
	qc(t, func(g genCQ) bool {
		taken := map[string]bool{"v0": true, "v2": true}
		r, _ := logic.RenameApart(g.Q, taken)
		for _, v := range r.Vars() {
			if taken[v.Name] {
				return false
			}
		}
		// Renaming is a bijection on variables: the query shape is
		// preserved (same number of vars, literals, and head arity).
		return len(r.Vars()) == len(g.Q.Vars()) &&
			len(r.Body) == len(g.Q.Body) &&
			len(r.HeadArgs) == len(g.Q.HeadArgs)
	})
}

func TestQuickSubstComposition(t *testing.T) {
	qc(t, func(g genCQ) bool {
		// Applying {v0/c0} then {v1/c1} equals applying the merged map
		// when domains and ranges are disjoint from each other.
		s1 := logic.Subst{"v0": logic.Const("c0")}
		s2 := logic.Subst{"v1": logic.Const("c1")}
		merged := logic.Subst{"v0": logic.Const("c0"), "v1": logic.Const("c1")}
		return s2.CQ(s1.CQ(g.Q)).Equal(merged.CQ(g.Q))
	})
}

func TestQuickPositiveNegativeSplit(t *testing.T) {
	qc(t, func(g genCQ) bool {
		return len(g.Q.Positive())+len(g.Q.Negative()) == len(g.Q.Body)
	})
}
