package logic

import (
	"encoding/json"
	"fmt"
)

// JSON encoding: terms marshal as tagged objects so variables, constants
// and null are unambiguous; atoms, literals and queries marshal
// structurally. A mediator service exchanging plans with clients needs a
// wire form, and the Datalog text form is lossy for exotic constant
// values only in readability, not content — JSON is the
// machine-friendly alternative.

type termJSON struct {
	Kind string `json:"kind"` // "var" | "const" | "null"
	Name string `json:"name,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (t Term) MarshalJSON() ([]byte, error) {
	switch t.Kind {
	case KindVar:
		return json.Marshal(termJSON{Kind: "var", Name: t.Name})
	case KindConst:
		return json.Marshal(termJSON{Kind: "const", Name: t.Name})
	case KindNull:
		return json.Marshal(termJSON{Kind: "null"})
	}
	return nil, fmt.Errorf("logic: unknown term kind %d", t.Kind)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Term) UnmarshalJSON(data []byte) error {
	var tj termJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return err
	}
	switch tj.Kind {
	case "var":
		if tj.Name == "" {
			return fmt.Errorf("logic: variable with empty name")
		}
		*t = Var(tj.Name)
	case "const":
		*t = Const(tj.Name)
	case "null":
		*t = Null
	default:
		return fmt.Errorf("logic: unknown term kind %q", tj.Kind)
	}
	return nil
}

type atomJSON struct {
	Pred string `json:"pred"`
	Args []Term `json:"args,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (a Atom) MarshalJSON() ([]byte, error) {
	return json.Marshal(atomJSON{Pred: a.Pred, Args: a.Args})
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Atom) UnmarshalJSON(data []byte) error {
	var aj atomJSON
	if err := json.Unmarshal(data, &aj); err != nil {
		return err
	}
	if aj.Pred == "" {
		return fmt.Errorf("logic: atom with empty predicate")
	}
	a.Pred, a.Args = aj.Pred, aj.Args
	return nil
}

type literalJSON struct {
	Atom    Atom `json:"atom"`
	Negated bool `json:"negated,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (l Literal) MarshalJSON() ([]byte, error) {
	return json.Marshal(literalJSON{Atom: l.Atom, Negated: l.Negated})
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *Literal) UnmarshalJSON(data []byte) error {
	var lj literalJSON
	if err := json.Unmarshal(data, &lj); err != nil {
		return err
	}
	l.Atom, l.Negated = lj.Atom, lj.Negated
	return nil
}

type cqJSON struct {
	HeadPred string    `json:"head"`
	HeadArgs []Term    `json:"headArgs,omitempty"`
	Body     []Literal `json:"body,omitempty"`
	False    bool      `json:"false,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (q CQ) MarshalJSON() ([]byte, error) {
	return json.Marshal(cqJSON{HeadPred: q.HeadPred, HeadArgs: q.HeadArgs, Body: q.Body, False: q.False})
}

// UnmarshalJSON implements json.Unmarshaler; the decoded rule is
// validated (range restriction, false-rule shape).
func (q *CQ) UnmarshalJSON(data []byte) error {
	var qj cqJSON
	if err := json.Unmarshal(data, &qj); err != nil {
		return err
	}
	out := CQ{HeadPred: qj.HeadPred, HeadArgs: qj.HeadArgs, Body: qj.Body, False: qj.False}
	if err := out.Validate(); err != nil {
		return err
	}
	*q = out
	return nil
}

type ucqJSON struct {
	Rules []CQ `json:"rules"`
}

// MarshalJSON implements json.Marshaler.
func (u UCQ) MarshalJSON() ([]byte, error) {
	return json.Marshal(ucqJSON{Rules: u.Rules})
}

// UnmarshalJSON implements json.Unmarshaler; the decoded union is
// validated (common heads).
func (u *UCQ) UnmarshalJSON(data []byte) error {
	var uj ucqJSON
	if err := json.Unmarshal(data, &uj); err != nil {
		return err
	}
	out := UCQ{Rules: uj.Rules}
	if err := out.Validate(); err != nil {
		return err
	}
	*u = out
	return nil
}
