package logic

import (
	"fmt"
	"sort"
	"strings"
)

// Subst is a substitution from variable names to terms. Applying a
// substitution never changes constants or null.
type Subst map[string]Term

// NewSubst returns an empty substitution.
func NewSubst() Subst { return Subst{} }

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Bind returns a copy of s with v bound to t.
func (s Subst) Bind(v string, t Term) Subst {
	out := s.Clone()
	out[v] = t
	return out
}

// Term applies the substitution to a single term.
func (s Subst) Term(t Term) Term {
	if t.IsVar() {
		if u, ok := s[t.Name]; ok {
			return u
		}
	}
	return t
}

// Atom applies the substitution to an atom.
func (s Subst) Atom(a Atom) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = s.Term(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// Literal applies the substitution to a literal.
func (s Subst) Literal(l Literal) Literal {
	return Literal{Atom: s.Atom(l.Atom), Negated: l.Negated}
}

// CQ applies the substitution to every head argument and body literal.
func (s Subst) CQ(q CQ) CQ {
	head := make([]Term, len(q.HeadArgs))
	for i, t := range q.HeadArgs {
		head[i] = s.Term(t)
	}
	body := make([]Literal, len(q.Body))
	for i, l := range q.Body {
		body[i] = s.Literal(l)
	}
	return CQ{HeadPred: q.HeadPred, HeadArgs: head, Body: body, False: q.False}
}

// UCQ applies the substitution to every rule.
func (s Subst) UCQ(u UCQ) UCQ {
	rules := make([]CQ, len(u.Rules))
	for i, r := range u.Rules {
		rules[i] = s.CQ(r)
	}
	return UCQ{Rules: rules}
}

// String renders the substitution deterministically, e.g. {x/a, y/b}.
func (s Subst) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s/%s", k, s[k])
	}
	b.WriteByte('}')
	return b.String()
}

// RenameApart returns a copy of q whose variables are renamed so that they
// are disjoint from the variable names in taken. Fresh names are built by
// appending a numeric suffix. The returned substitution maps old names to
// the fresh variables.
func RenameApart(q CQ, taken map[string]bool) (CQ, Subst) {
	s := NewSubst()
	used := map[string]bool{}
	for k := range taken {
		used[k] = true
	}
	for _, v := range q.Vars() {
		if !used[v.Name] {
			used[v.Name] = true
			continue
		}
		n := 1
		fresh := fmt.Sprintf("%s_%d", v.Name, n)
		for used[fresh] {
			n++
			fresh = fmt.Sprintf("%s_%d", v.Name, n)
		}
		used[fresh] = true
		s[v.Name] = Var(fresh)
	}
	return s.CQ(q), s
}

// Freeze returns the frozen query [Q]: a substitution mapping each
// variable of q to a fresh constant, together with the frozen body. The
// frozen positive part [Q⁺] is a Herbrand model of Q⁺ (Proposition 8 of
// the paper uses this construction).
func Freeze(q CQ) (CQ, Subst) {
	s := NewSubst()
	for i, v := range q.Vars() {
		s[v.Name] = Const(fmt.Sprintf("§%s_%d", v.Name, i))
	}
	return s.CQ(q), s
}

// VarNames returns the set of variable names of q.
func VarNames(q CQ) map[string]bool {
	out := map[string]bool{}
	for _, v := range q.Vars() {
		out[v.Name] = true
	}
	return out
}
