package logic

import (
	"fmt"
	"strings"
)

// CQ is a conjunctive query with negation (CQ¬) in Datalog rule form:
//
//	Head(HeadArgs) ← Body[0], …, Body[n-1]
//
// The free (distinguished) variables are the variables of the head; all
// other body variables are existentially quantified. A CQ with the False
// flag set is the query written "false" in the paper: it returns no tuples
// and is vacuously executable. A CQ with an empty body and False unset is
// the query "true", which is non-executable.
type CQ struct {
	HeadPred string
	HeadArgs []Term
	Body     []Literal
	False    bool
}

// FalseQuery returns the query "false" with the given head.
func FalseQuery(headPred string, headArgs []Term) CQ {
	return CQ{HeadPred: headPred, HeadArgs: cloneTerms(headArgs), False: true}
}

func cloneTerms(ts []Term) []Term {
	out := make([]Term, len(ts))
	copy(out, ts)
	return out
}

// Clone returns a deep copy of the query.
func (q CQ) Clone() CQ {
	body := make([]Literal, len(q.Body))
	for i, l := range q.Body {
		body[i] = l.Clone()
	}
	return CQ{HeadPred: q.HeadPred, HeadArgs: cloneTerms(q.HeadArgs), Body: body, False: q.False}
}

// Head returns the head as an atom.
func (q CQ) Head() Atom { return Atom{Pred: q.HeadPred, Args: q.HeadArgs} }

// FreeVars returns the distinguished variables of the query — the
// variables of the head — in order of first occurrence.
func (q CQ) FreeVars() []Term { return q.Head().Vars() }

// Vars returns all variables of the query (head and body) in order of
// first occurrence.
func (q CQ) Vars() []Term {
	var out []Term
	seen := map[string]bool{}
	add := func(ts []Term) {
		for _, t := range ts {
			if t.IsVar() && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t)
			}
		}
	}
	add(q.HeadArgs)
	for _, l := range q.Body {
		add(l.Atom.Args)
	}
	return out
}

// BodyVars returns all variables appearing in the body.
func (q CQ) BodyVars() []Term {
	var out []Term
	seen := map[string]bool{}
	for _, l := range q.Body {
		for _, t := range l.Atom.Args {
			if t.IsVar() && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// Positive returns the positive literals of the body, in order. This is
// the query Q⁺ of the paper (viewed as a list of literals).
func (q CQ) Positive() []Literal {
	var out []Literal
	for _, l := range q.Body {
		if !l.Negated {
			out = append(out, l)
		}
	}
	return out
}

// Negative returns the negative literals of the body, in order. This is
// the query Q⁻ of the paper.
func (q CQ) Negative() []Literal {
	var out []Literal
	for _, l := range q.Body {
		if l.Negated {
			out = append(out, l)
		}
	}
	return out
}

// PositivePart returns the CQ whose body is Q⁺ with the same head.
func (q CQ) PositivePart() CQ {
	return CQ{HeadPred: q.HeadPred, HeadArgs: cloneTerms(q.HeadArgs), Body: q.Positive(), False: q.False}
}

// HasLiteral reports whether the body contains a literal syntactically
// equal to l.
func (q CQ) HasLiteral(l Literal) bool {
	for _, m := range q.Body {
		if m.Equal(l) {
			return true
		}
	}
	return false
}

// HasAtom reports whether the body contains the atom a with the given sign.
func (q CQ) HasAtom(a Atom, negated bool) bool {
	return q.HasLiteral(Literal{Atom: a, Negated: negated})
}

// Safe reports whether the query is safe: every variable of the query
// (including head variables) appears in a positive body literal. The
// query "false" is considered safe.
func (q CQ) Safe() bool {
	if q.False {
		return true
	}
	pos := map[string]bool{}
	for _, l := range q.Body {
		if l.Negated {
			continue
		}
		for _, t := range l.Atom.Args {
			if t.IsVar() {
				pos[t.Name] = true
			}
		}
	}
	for _, v := range q.Vars() {
		if !pos[v.Name] {
			return false
		}
	}
	return true
}

// HeadSafe reports whether every head variable appears in a positive body
// literal (range restriction). This is weaker than Safe: variables that
// occur only in negated literals are tolerated, because the paper itself
// uses such queries (Example 3); their semantics is existential over the
// active domain. The strict notion required by the theory is Safe.
func (q CQ) HeadSafe() bool {
	if q.False {
		return true
	}
	pos := map[string]bool{}
	for _, l := range q.Body {
		if l.Negated {
			continue
		}
		for _, t := range l.Atom.Args {
			if t.IsVar() {
				pos[t.Name] = true
			}
		}
	}
	for _, t := range q.HeadArgs {
		if t.IsVar() && !pos[t.Name] {
			return false
		}
	}
	return true
}

// Validate returns an error describing why the query is malformed, or nil.
// It checks range restriction of the head (HeadSafe); use Safe for the
// paper's strict safety notion.
func (q CQ) Validate() error {
	if q.HeadPred == "" {
		return fmt.Errorf("logic: query has empty head predicate")
	}
	if q.False {
		if len(q.Body) != 0 {
			return fmt.Errorf("logic: false query %s must have empty body", q.HeadPred)
		}
		return nil
	}
	if !q.HeadSafe() {
		return fmt.Errorf("logic: query %s is not range-restricted: some head variable does not appear in a positive body literal", q.HeadPred)
	}
	return nil
}

// Equal reports syntactic equality (same head, same body in the same order).
func (q CQ) Equal(r CQ) bool {
	if q.False != r.False || q.HeadPred != r.HeadPred || len(q.HeadArgs) != len(r.HeadArgs) || len(q.Body) != len(r.Body) {
		return false
	}
	for i := range q.HeadArgs {
		if q.HeadArgs[i] != r.HeadArgs[i] {
			return false
		}
	}
	for i := range q.Body {
		if !q.Body[i].Equal(r.Body[i]) {
			return false
		}
	}
	return true
}

// EqualAsSet reports equality of head and body where body literal order is
// ignored (but multiplicity beyond set membership is not significant).
func (q CQ) EqualAsSet(r CQ) bool {
	if q.False != r.False || q.HeadPred != r.HeadPred || len(q.HeadArgs) != len(r.HeadArgs) {
		return false
	}
	for i := range q.HeadArgs {
		if q.HeadArgs[i] != r.HeadArgs[i] {
			return false
		}
	}
	qs := map[string]bool{}
	for _, l := range q.Body {
		qs[l.Key()] = true
	}
	rs := map[string]bool{}
	for _, l := range r.Body {
		rs[l.Key()] = true
	}
	if len(qs) != len(rs) {
		return false
	}
	for k := range qs {
		if !rs[k] {
			return false
		}
	}
	return true
}

// HasNullHead reports whether any head argument is null.
func (q CQ) HasNullHead() bool {
	for _, t := range q.HeadArgs {
		if t.IsNull() {
			return true
		}
	}
	return false
}

// String renders the query in rule form, e.g.
//
//	Q(x, y) :- R(x, z), not S(z), B(x, y)
func (q CQ) String() string {
	var b strings.Builder
	b.WriteString(q.Head().String())
	b.WriteString(" :- ")
	if q.False {
		b.WriteString("false")
		return b.String()
	}
	if len(q.Body) == 0 {
		b.WriteString("true")
		return b.String()
	}
	for i, l := range q.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.String())
	}
	return b.String()
}

// Key returns a canonical string usable as a map key for the query.
func (q CQ) Key() string { return q.String() }

// Relations returns the set of relation names used in the body.
func (q CQ) Relations() map[string]int {
	out := map[string]int{}
	for _, l := range q.Body {
		out[l.Atom.Pred] = l.Atom.Arity()
	}
	return out
}
