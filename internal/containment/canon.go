package containment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/logic"
)

// Canonicalization renders a CQ¬ in an isomorphism-invariant normal
// form: two queries that differ only by a bijective renaming of their
// variables (and by body literal order or duplication) receive the same
// canonical form and key. This is the tier-1 index of the semantic
// query cache: α-renamed and padded resubmissions collapse to one
// cache entry without running the Π₂ᴾ containment test.
//
// Head variables are named first, in order of occurrence in the head
// ("h0", "h1", …) — the head is part of the query's semantics, so this
// is forced. Body-only variables are named by a signature-refinement
// search: at each step the variables with the lexicographically least
// local signature (their incident literals, rendered with already-named
// variables fixed) are tried in turn, and the branch whose final
// rendering is smallest wins. Ties branch, bounded by canonLeafBudget
// leaves; past the budget the remaining variables are assigned in a
// deterministic (signature, original name) order.
//
// Soundness does not depend on the search heuristic: the renaming is
// injective, so equal keys imply the renamed queries are syntactically
// identical (up to literal order and duplicates), hence the originals
// are isomorphic and therefore equivalent. A weak heuristic can only
// cost cache hits (two isomorphic queries mapping to different keys is
// impossible once the search is exhaustive; the budget fallback merely
// risks that for adversarially symmetric queries), never correctness.

// canonLeafBudget bounds the number of complete namings the
// tie-branching search may render before falling back to the
// deterministic assignment order.
const canonLeafBudget = 512

// Canonicalize returns the canonical form of q: variables renamed as
// described above, body literals deduplicated and sorted. The result is
// equivalent to q.
func Canonicalize(q logic.CQ) logic.CQ {
	cq, _ := canonicalize(q)
	return cq
}

// CanonicalKey returns the canonical rendering of q. Two queries that
// are isomorphic (equal up to bijective variable renaming, literal
// order, and literal duplication) receive equal keys; equal keys imply
// isomorphism.
func CanonicalKey(q logic.CQ) string {
	_, key := canonicalize(q)
	return key
}

func canonicalize(q logic.CQ) (logic.CQ, string) {
	naming := logic.NewSubst()
	h := 0
	for _, t := range q.HeadArgs {
		if t.IsVar() {
			if _, ok := naming[t.Name]; !ok {
				naming[t.Name] = logic.Var(fmt.Sprintf("h%d", h))
				h++
			}
		}
	}
	if q.False {
		out := naming.CQ(q)
		return out, out.String()
	}
	var unnamed []string
	seen := map[string]bool{}
	for _, l := range q.Body {
		for _, t := range l.Atom.Args {
			if t.IsVar() && !seen[t.Name] {
				seen[t.Name] = true
				if _, ok := naming[t.Name]; !ok {
					unnamed = append(unnamed, t.Name)
				}
			}
		}
	}
	s := canonSearch{q: q, budget: canonLeafBudget}
	s.search(naming, unnamed, 0)
	out := applyCanon(q, s.best)
	return out, out.String()
}

// applyCanon applies the naming and normalizes the body: duplicates
// dropped, literals sorted by their rendering.
func applyCanon(q logic.CQ, naming logic.Subst) logic.CQ {
	out := naming.CQ(q)
	seen := map[string]bool{}
	body := out.Body[:0]
	for _, l := range out.Body {
		k := l.Key()
		if !seen[k] {
			seen[k] = true
			body = append(body, l)
		}
	}
	out.Body = body
	sort.Slice(out.Body, func(i, j int) bool { return out.Body[i].Key() < out.Body[j].Key() })
	return out
}

type canonSearch struct {
	q       logic.CQ
	budget  int
	best    logic.Subst
	bestKey string
}

func (s *canonSearch) record(naming logic.Subst) {
	key := applyCanon(s.q, naming).String()
	if s.best == nil || key < s.bestKey {
		s.best = naming.Clone()
		s.bestKey = key
	}
}

func (s *canonSearch) search(naming logic.Subst, unnamed []string, next int) {
	if len(unnamed) == 0 {
		s.budget--
		s.record(naming)
		return
	}
	sigs := signatures(s.q, naming, unnamed)
	if s.budget <= 0 {
		// Budget exhausted: finish this branch deterministically.
		s.budget--
		final := naming.Clone()
		rest := append([]string(nil), unnamed...)
		sort.SliceStable(rest, func(i, j int) bool {
			if sigs[rest[i]] != sigs[rest[j]] {
				return sigs[rest[i]] < sigs[rest[j]]
			}
			return rest[i] < rest[j]
		})
		for _, v := range rest {
			final[v] = logic.Var(fmt.Sprintf("v%d", next))
			next++
		}
		s.record(final)
		return
	}
	min := ""
	for i, v := range unnamed {
		if i == 0 || sigs[v] < min {
			min = sigs[v]
		}
	}
	name := logic.Var(fmt.Sprintf("v%d", next))
	for _, v := range unnamed {
		if sigs[v] != min {
			continue
		}
		rest := make([]string, 0, len(unnamed)-1)
		for _, u := range unnamed {
			if u != v {
				rest = append(rest, u)
			}
		}
		s.search(naming.Bind(v, name), rest, next+1)
	}
}

// signatures computes, for each unnamed variable, a local fingerprint:
// the sorted renderings of the body literals it occurs in, with named
// variables shown canonically, the variable itself as "*", and other
// unnamed variables as "_".
func signatures(q logic.CQ, naming logic.Subst, unnamed []string) map[string]string {
	unnamedSet := make(map[string]bool, len(unnamed))
	for _, v := range unnamed {
		unnamedSet[v] = true
	}
	out := make(map[string]string, len(unnamed))
	for _, v := range unnamed {
		var pieces []string
		for _, l := range q.Body {
			occurs := false
			for _, t := range l.Atom.Args {
				if t.IsVar() && t.Name == v {
					occurs = true
					break
				}
			}
			if !occurs {
				continue
			}
			var b strings.Builder
			if l.Negated {
				b.WriteString("not ")
			}
			b.WriteString(l.Atom.Pred)
			b.WriteByte('(')
			for i, t := range l.Atom.Args {
				if i > 0 {
					b.WriteByte(',')
				}
				switch {
				case t.IsVar() && t.Name == v:
					b.WriteByte('*')
				case t.IsVar() && unnamedSet[t.Name]:
					b.WriteByte('_')
				default:
					b.WriteString(naming.Term(t).String())
				}
			}
			b.WriteByte(')')
			pieces = append(pieces, b.String())
		}
		sort.Strings(pieces)
		out[v] = strings.Join(pieces, ";")
	}
	return out
}

// CanonicalKeyUCQ returns an order-insensitive canonical key for a
// union: the sorted, deduplicated canonical keys of its rules.
func CanonicalKeyUCQ(u logic.UCQ) string {
	keys := make([]string, 0, len(u.Rules))
	seen := map[string]bool{}
	for _, r := range u.Rules {
		k := CanonicalKey(r)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return strings.Join(keys, " | ")
}
