package containment

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// Witness is a checkable certificate for P ⊑ Q: either P is
// unsatisfiable, or a containment mapping σ into some disjunct Qᵢ
// together with one child witness per negative literal of Qᵢ (for
// P ∧ R(σȳ) ⊑ Q), exactly the tree of Theorem 13. Witnesses make the
// Π₂ᴾ decision auditable: Verify re-checks one in polynomial time
// (relative to the witness size).
type Witness struct {
	// Unsat is set when P itself is unsatisfiable (base case).
	Unsat bool
	// Disjunct is the index of the disjunct of Q that σ maps into.
	Disjunct int
	// Mapping is the containment mapping σ: vars(Qᵢ) → terms(P).
	Mapping logic.Subst
	// Children holds one entry per negative literal of Qᵢ, in order.
	Children []ChildWitness
}

// ChildWitness justifies one negative literal of the chosen disjunct.
type ChildWitness struct {
	// Negative is the literal ¬R(ȳ) of Qᵢ.
	Negative logic.Literal
	// Added is R(σȳ), the atom conjoined to P.
	Added logic.Atom
	// Sub is the witness for P ∧ R(σȳ) ⊑ Q.
	Sub *Witness
}

// String renders the witness tree.
func (w *Witness) String() string {
	var b strings.Builder
	w.render(&b, 0)
	return strings.TrimRight(b.String(), "\n")
}

func (w *Witness) render(b *strings.Builder, depth int) {
	pad := strings.Repeat("  ", depth)
	if w.Unsat {
		fmt.Fprintf(b, "%sunsatisfiable (trivially contained)\n", pad)
		return
	}
	fmt.Fprintf(b, "%svia disjunct %d with σ = %s\n", pad, w.Disjunct+1, w.Mapping)
	for _, c := range w.Children {
		fmt.Fprintf(b, "%s  %s: conjoin %s\n", pad, c.Negative, c.Added)
		c.Sub.render(b, depth+2)
	}
}

// Explain returns a witness for p ⊑ q (the checker's query), or nil and
// false when the containment does not hold. It mirrors Contains but
// records the successful branch; its memo only caches failures, since
// successes must be rebuilt per branch to capture their subtrees.
func (c *Checker) Explain(p logic.CQ) (*Witness, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.explain(p)
}

// explain is the recursive body of Explain; c.mu must be held.
func (c *Checker) explain(p logic.CQ) (*Witness, bool) {
	c.Nodes++
	if !Satisfiable(p) {
		return &Witness{Unsat: true}, true
	}
	key := canonKey(p)
	if v, ok := c.memo[key]; ok && !v {
		c.MemoHits++
		return nil, false
	}
	for i, qi := range c.q.Rules {
		if qi.False || !Satisfiable(qi) {
			continue
		}
		if w, ok := c.explainDisjunct(p, qi, i); ok {
			c.memo[key] = true
			return w, true
		}
	}
	c.memo[key] = false
	return nil, false
}

func (c *Checker) explainDisjunct(p, qi logic.CQ, index int) (*Witness, bool) {
	var found *Witness
	findMapping(p, qi, func(sigma logic.Subst) bool {
		negs := qi.Negative()
		w := &Witness{Disjunct: index, Mapping: sigma.Clone()}
		for _, nl := range negs {
			ra := sigma.Atom(nl.Atom)
			if p.HasAtom(ra, false) {
				return false
			}
			ext := p.Clone()
			ext.Body = append(ext.Body, logic.Pos(ra))
			sub, ok := c.explain(ext)
			if !ok {
				return false
			}
			w.Children = append(w.Children, ChildWitness{Negative: nl.Clone(), Added: ra, Sub: sub})
		}
		found = w
		return true
	})
	return found, found != nil
}

// Verify checks a witness against p and the checker's query q,
// re-validating every mapping and every unsatisfiability claim. It
// returns an error describing the first defect found.
func (c *Checker) Verify(p logic.CQ, w *Witness) error {
	if w == nil {
		return fmt.Errorf("containment: nil witness")
	}
	if w.Unsat {
		if Satisfiable(p) {
			return fmt.Errorf("containment: witness claims %s unsatisfiable, but it is satisfiable", p)
		}
		return nil
	}
	if w.Disjunct < 0 || w.Disjunct >= len(c.q.Rules) {
		return fmt.Errorf("containment: witness names disjunct %d of %d", w.Disjunct+1, len(c.q.Rules))
	}
	qi := c.q.Rules[w.Disjunct]
	if err := checkMapping(p, qi, w.Mapping); err != nil {
		return err
	}
	negs := qi.Negative()
	if len(negs) != len(w.Children) {
		return fmt.Errorf("containment: witness has %d children for %d negative literals", len(w.Children), len(negs))
	}
	for i, nl := range negs {
		cw := w.Children[i]
		if !cw.Negative.Equal(nl) {
			return fmt.Errorf("containment: child %d is for %s, want %s", i+1, cw.Negative, nl)
		}
		want := w.Mapping.Atom(nl.Atom)
		if !cw.Added.Equal(want) {
			return fmt.Errorf("containment: child %d conjoins %s, want %s", i+1, cw.Added, want)
		}
		if p.HasAtom(cw.Added, false) {
			return fmt.Errorf("containment: %s already occurs positively in P; σ is invalid", cw.Added)
		}
		ext := p.Clone()
		ext.Body = append(ext.Body, logic.Pos(cw.Added))
		if err := c.Verify(ext, cw.Sub); err != nil {
			return err
		}
	}
	return nil
}

// checkMapping validates that sigma is a containment mapping from qi's
// positive part into p's positive part with aligned heads.
func checkMapping(p, qi logic.CQ, sigma logic.Subst) error {
	if p.HeadPred != qi.HeadPred || len(p.HeadArgs) != len(qi.HeadArgs) {
		return fmt.Errorf("containment: heads %s/%d and %s/%d differ", p.HeadPred, len(p.HeadArgs), qi.HeadPred, len(qi.HeadArgs))
	}
	for j, qa := range qi.HeadArgs {
		if sigma.Term(qa) != p.HeadArgs[j] {
			return fmt.Errorf("containment: σ maps head argument %d to %s, want %s", j+1, sigma.Term(qa), p.HeadArgs[j])
		}
	}
	for _, l := range qi.Positive() {
		img := sigma.Atom(l.Atom)
		if !p.HasAtom(img, false) {
			return fmt.Errorf("containment: σ image %s of %s is not a positive literal of P", img, l.Atom)
		}
	}
	return nil
}
