package containment

import (
	"sync"
	"testing"
)

// TestCheckerConcurrentHammer exercises a shared checker from many
// goroutines (run under -race): the memo table, the Nodes counter, and
// the budget limit are shared state behind the mutex.
func TestCheckerConcurrentHammer(t *testing.T) {
	q := ucq(t, `
		Q(x) :- R(x), not S1(x), not S2(x).
		Q(x) :- R(x), S1(x).
		Q(x) :- R(x), S2(x).
	`)
	probes := []struct {
		src  string
		want bool
	}{
		{`Q(x) :- R(x).`, true},
		{`Q(y) :- R(y), S1(y).`, true},
		{`Q(x) :- T(x).`, false},
		{`Q(x) :- R(x), not S1(x).`, true}, // the union is equivalent to R
		{`Q(x) :- S1(x).`, false},
	}
	c := NewChecker(q)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p := probes[(g+i)%len(probes)]
				if got := c.Contains(cq(t, p.src)); got != p.want {
					t.Errorf("Contains(%s) = %v, want %v", p.src, got, p.want)
				}
				if g%2 == 0 {
					// Budgeted calls share the same limit field; they must
					// not corrupt concurrent unlimited calls.
					if _, err := c.ContainsLimited(cq(t, p.src), 1_000_000); err != nil {
						t.Errorf("ContainsLimited: %v", err)
					}
				}
				if g%3 == 0 {
					if w, ok := c.Explain(cq(t, probes[0].src)); !ok || w == nil {
						t.Error("Explain lost a witness under concurrency")
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestContainsLimitedResetsLimit pins the budget bookkeeping: after a
// budget abort the limit is cleared, so a later unlimited Contains can
// run arbitrarily far past the old bound, and a later generous
// ContainsLimited is unaffected by the earlier exhaustion.
func TestContainsLimitedResetsLimit(t *testing.T) {
	q := ucq(t, `
		Q(x) :- R(x), not S1(x), not S2(x), not S3(x).
		Q(x) :- R(x), S1(x).
		Q(x) :- R(x), S2(x).
		Q(x) :- R(x), S3(x).
	`)
	p := cq(t, `Q(x) :- R(x).`)
	c := NewChecker(q)
	if _, err := c.ContainsLimited(p, 2); err != ErrBudget {
		t.Fatalf("tiny budget: got %v, want ErrBudget", err)
	}
	if c.limit != 0 {
		t.Fatalf("limit = %d after abort, want 0", c.limit)
	}
	nodesAfterAbort := c.Nodes
	// The unlimited call must sail past the exhausted budget's bound.
	if !c.Contains(p) {
		t.Fatal("unlimited Contains after abort must decide true")
	}
	if c.Nodes <= nodesAfterAbort+2 {
		t.Errorf("unlimited Contains did only %d nodes past the abort; the stale limit is still in force", c.Nodes-nodesAfterAbort)
	}
	if c.limit != 0 {
		t.Errorf("limit = %d after unlimited Contains, want 0", c.limit)
	}
	// And a fresh budgeted call starts its budget from the current node
	// count rather than the aborted one.
	c.memo = map[string]bool{} // force a real re-search
	got, err := c.ContainsLimited(p, 1_000_000)
	if err != nil || !got {
		t.Errorf("generous budget after abort = %v, %v; want true, nil", got, err)
	}
}

// TestContainsLimitedMidSearchAbort exhausts the budget strictly in the
// middle of the recursion (the query forces child containment checks)
// and checks the checker is reusable for a different probe afterwards.
func TestContainsLimitedMidSearchAbort(t *testing.T) {
	q := ucq(t, `
		Q(x) :- R(x), not S1(x), not S2(x), not S3(x), not S4(x).
		Q(x) :- R(x), S1(x).
		Q(x) :- R(x), S2(x).
		Q(x) :- R(x), S3(x).
		Q(x) :- R(x), S4(x).
	`)
	p := cq(t, `Q(x) :- R(x).`)
	c := NewChecker(q)
	// Find a budget that aborts mid-search: more than one node, fewer
	// than the full search needs.
	full := NewChecker(q)
	if !full.Contains(p) {
		t.Fatal("sanity: containment must hold")
	}
	if full.Nodes < 4 {
		t.Fatalf("sanity: search too small (%d nodes) to abort mid-way", full.Nodes)
	}
	if _, err := c.ContainsLimited(p, full.Nodes/2); err != ErrBudget {
		t.Fatalf("mid-search budget: got %v, want ErrBudget", err)
	}
	// Reusable for a different probe after the panic-recover.
	if c.Contains(cq(t, `Q(x) :- T(x).`)) {
		t.Error("checker decided a false containment after recovery")
	}
	if got, err := c.ContainsLimited(p, 1_000_000); err != nil || !got {
		t.Errorf("post-recovery budgeted call = %v, %v; want true, nil", got, err)
	}
}
