package containment

import (
	"errors"
	"sort"
	"strings"
	"sync"

	"repro/internal/logic"
)

// Checker decides containment of CQ¬ queries in a fixed UCQ¬ query Q,
// memoizing subproblems across calls. It implements Theorem 13 of the
// paper (Wei & Lausen, Theorem 5): P ⊑ Q iff P is unsatisfiable, or some
// disjunct Qᵢ admits a containment mapping σ witnessing P⁺ ⊑ Qᵢ⁺ such
// that for every negative literal ¬R(ȳ) of Qᵢ, R(σȳ) is not in P and
// P ∧ R(σȳ) ⊑ Q. The recursion terminates because each step conjoins to
// P a new atom over P's own terms, of which there are finitely many.
//
// Checker also counts the work done (recursion nodes and containment
// mappings tried), which the benchmark harness reports.
//
// A Checker is safe for concurrent use: Contains, ContainsLimited, and
// Explain serialize on an internal mutex (the memo table and the
// Nodes/limit counters are shared mutable state). The exported counters
// are only meaningful when read with no call in flight.
type Checker struct {
	mu    sync.Mutex
	q     logic.UCQ
	memo  map[string]bool
	limit int
	trees []*joinTreeInfo // per-disjunct join tree (nil = cyclic or has negation)

	// DisableAcyclic turns off the Chekuri–Rajaraman acyclic fast path
	// (Section 5.1 of the paper); for ablation benchmarks.
	DisableAcyclic bool

	// Nodes is the number of (sub)containment problems examined,
	// including memo hits.
	Nodes int
	// MemoHits is the number of subproblems answered from the memo table.
	MemoHits int
	// AcyclicHits counts disjunct checks answered by the acyclic
	// semijoin program instead of backtracking search.
	AcyclicHits int
}

// ErrBudget is returned by ContainsLimited when the node budget is
// exhausted before the search concludes.
var ErrBudget = errors.New("containment: node budget exhausted")

// NewChecker returns a checker for containment in q.
func NewChecker(q logic.UCQ) *Checker {
	c := &Checker{q: q.Clone(), memo: map[string]bool{}}
	c.trees = make([]*joinTreeInfo, len(c.q.Rules))
	for i, qi := range c.q.Rules {
		if len(qi.Negative()) > 0 {
			continue // enumeration needed; fast path does existence only
		}
		if tree, ok := joinTree(qi.Positive()); ok {
			t := tree
			c.trees[i] = &t
		}
	}
	return c
}

// ContainsLimited is Contains with a bound on the number of containment
// subproblems examined; it returns ErrBudget when the bound is hit. Use
// it when feeding adversarial or randomly generated queries to the
// Π₂ᴾ-complete test.
func (c *Checker) ContainsLimited(p logic.CQ, maxNodes int) (result bool, err error) {
	if maxNodes <= 0 {
		return false, ErrBudget
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = c.Nodes + maxNodes
	defer func() {
		c.limit = 0
		if r := recover(); r != nil {
			if r == errBudgetSentinel {
				err = ErrBudget
				return
			}
			panic(r)
		}
	}()
	return c.contains(p), nil
}

var errBudgetSentinel = new(int)

// Contains reports whether p ⊑ q for the checker's query q.
func (c *Checker) Contains(p logic.CQ) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.contains(p)
}

// contains is the recursive body of Contains; c.mu must be held.
func (c *Checker) contains(p logic.CQ) bool {
	c.Nodes++
	if c.limit > 0 && c.Nodes > c.limit {
		panic(errBudgetSentinel)
	}
	if !Satisfiable(p) {
		return true
	}
	key := canonKey(p)
	if v, ok := c.memo[key]; ok {
		c.MemoHits++
		return v
	}
	result := false
	for i, qi := range c.q.Rules {
		if qi.False || !Satisfiable(qi) {
			continue
		}
		if !c.DisableAcyclic && c.trees[i] != nil {
			// Negation-free acyclic disjunct: mapping existence decides,
			// via the polynomial semijoin program (CR97, Section 5.1).
			c.AcyclicHits++
			if acyclicMappingExists(p, qi, *c.trees[i]) {
				result = true
				break
			}
			continue
		}
		if c.viaDisjunct(p, qi) {
			result = true
			break
		}
	}
	c.memo[key] = result
	return result
}

// viaDisjunct reports whether containment of p in the union is witnessed
// through disjunct qi.
func (c *Checker) viaDisjunct(p, qi logic.CQ) bool {
	// Distinct mappings often induce the same images of qi's negative
	// literals; each image set needs to be explored only once.
	triedImages := map[string]bool{}
	return findMapping(p, qi, func(sigma logic.Subst) bool {
		negs := qi.Negative()
		// Condition of Theorem 12/13: R(σȳ) must not occur positively
		// in P for any negative literal ¬R(ȳ) of Qᵢ.
		images := make([]logic.Atom, len(negs))
		var key strings.Builder
		for i, nl := range negs {
			ra := sigma.Atom(nl.Atom)
			if p.HasAtom(ra, false) {
				return false
			}
			images[i] = ra
			key.WriteString(ra.Key())
			key.WriteByte(';')
		}
		if k := key.String(); triedImages[k] {
			return false // equivalent mapping already failed (or this one is redundant)
		} else {
			triedImages[k] = true
		}
		// Recursive step: P ∧ R(σȳ) ⊑ Q for every negative literal.
		for _, ra := range images {
			if p.HasAtom(ra, true) {
				// ¬R(σȳ) is already in P, so P ∧ R(σȳ) is unsatisfiable
				// and the child containment holds trivially.
				continue
			}
			ext := p.Clone()
			ext.Body = append(ext.Body, logic.Pos(ra))
			if !c.contains(ext) {
				return false
			}
		}
		return true
	})
}

// canonKey renders p's head and body as an order-insensitive,
// duplicate-insensitive key for memoization.
func canonKey(p logic.CQ) string {
	keys := make([]string, 0, len(p.Body))
	seen := map[string]bool{}
	for _, l := range p.Body {
		k := l.Key()
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return p.Head().String() + " :- " + strings.Join(keys, ", ")
}

// Contained reports whether the CQ¬ query p is contained in the UCQ¬
// query q (Theorem 13 of the paper).
func Contained(p logic.CQ, q logic.UCQ) bool {
	return NewChecker(q).Contains(p)
}

// ContainedCQ reports whether p ⊑ q for CQ¬ queries p and q
// (Theorem 12 of the paper; plain Chandra–Merlin when negation-free).
func ContainedCQ(p, q logic.CQ) bool {
	return Contained(p, logic.AsUnion(q))
}

// ContainedUCQ reports whether p ⊑ q for UCQ¬ queries: every rule of p
// must be contained in q.
func ContainedUCQ(p, q logic.UCQ) bool {
	c := NewChecker(q)
	for _, r := range p.Rules {
		if !c.Contains(r) {
			return false
		}
	}
	return true
}

// Equivalent reports whether p and q are logically equivalent.
func Equivalent(p, q logic.UCQ) bool {
	return ContainedUCQ(p, q) && ContainedUCQ(q, p)
}
