package containment

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestReduceContToFeasibleShape(t *testing.T) {
	p := ucq(t, "Q(x) :- R(x), S(x).\nQ(x) :- T(x).")
	q := ucq(t, `Q(x) :- R(x).`)
	red, ps, err := ReduceContToFeasible(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// |P| rules with the fresh B literal + |Q| rules untouched.
	if len(red.Rules) != 3 {
		t.Fatalf("reduced = %s", red)
	}
	for i := 0; i < 2; i++ {
		last := red.Rules[i].Body[len(red.Rules[i].Body)-1]
		if last.Atom.Pred != "B__fresh" || last.Negated {
			t.Errorf("P-rule %d missing fresh B literal: %s", i, red.Rules[i])
		}
	}
	if !red.Rules[2].Equal(q.Rules[0]) {
		t.Errorf("Q-rule changed: %s", red.Rules[2])
	}
	// Patterns: everything all-output except B^i.
	if got := ps.Patterns("B__fresh"); len(got) != 1 || got[0] != "i" {
		t.Errorf("B pattern = %v", got)
	}
	for _, rel := range []string{"R", "S", "T"} {
		if got := ps.Patterns(rel); len(got) != 1 || !got[0].AllOutput() {
			t.Errorf("%s patterns = %v", rel, got)
		}
	}
}

func TestReduceContToFeasibleErrors(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	if _, _, err := ReduceContToFeasible(logic.UCQ{}, q); err == nil {
		t.Error("empty P must be rejected")
	}
	q2 := ucq(t, `P(x, y) :- R(x, y).`)
	if _, _, err := ReduceContToFeasible(q, q2); err == nil {
		t.Error("head mismatch must be rejected")
	}
	// Conflicting arities for the same relation name.
	p3 := ucq(t, `Q(x) :- R(x).`)
	q3 := ucq(t, `Q(x) :- R(x, y).`)
	if _, _, err := ReduceContToFeasible(p3, q3); err == nil {
		t.Error("conflicting relation arities must be rejected")
	}
}

func TestReduceContCQShape(t *testing.T) {
	p := cq(t, `Q(x) :- R(x, y), not S(y).`)
	q := cq(t, `Q(x) :- R(x, z).`)
	l, ps, err := ReduceContCQToFeasible(p, q)
	if err != nil {
		t.Fatal(err)
	}
	s := l.String()
	for _, want := range []string{"T__fresh(u__fresh)", "R__p(u__fresh, x, y)", "not S__p(u__fresh, y)", "R__p(v__fresh,"} {
		if !strings.Contains(s, want) {
			t.Errorf("L missing %q: %s", want, s)
		}
	}
	if got := ps.Patterns("T__fresh"); len(got) != 1 || got[0] != "o" {
		t.Errorf("T pattern = %v", got)
	}
	if got := ps.Patterns("R__p"); len(got) != 1 || got[0] != "ioo" {
		t.Errorf("R' pattern = %v", got)
	}
}

func TestReduceContCQRenamesApart(t *testing.T) {
	// Both queries use existential y; they must not be conflated in L.
	p := cq(t, `Q(x) :- R(x, y).`)
	q := cq(t, `Q(x) :- S(x, y).`)
	l, _, err := ReduceContCQToFeasible(p, q)
	if err != nil {
		t.Fatal(err)
	}
	// Count distinct occurrences: R__p(u, x, y) and S__p(v, x, y_1).
	s := l.String()
	if strings.Contains(s, "S__p(v__fresh, x, y)") {
		t.Errorf("Q's existential variable was captured: %s", s)
	}
}

func TestReduceContCQUnsatEdgeCases(t *testing.T) {
	sat := cq(t, `Q(x) :- R(x).`)
	unsatQ := cq(t, `Q(x) :- R(x), S(x), not S(x).`)
	unsatP := cq(t, `Q(x) :- R(x), not R(x).`)

	// Q unsat, P sat: must yield an infeasible instance.
	l, ps, err := ReduceContCQToFeasible(sat, unsatQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Body) != 2 {
		t.Errorf("infeasible dispatch instance = %s", l)
	}
	_ = ps
	// Both unsat: trivially feasible instance.
	l2, _, err := ReduceContCQToFeasible(unsatP, unsatQ)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2.Body) != 1 {
		t.Errorf("feasible dispatch instance = %s", l2)
	}
}

func TestReduceContCQErrors(t *testing.T) {
	p := cq(t, `Q(x) :- R(x).`)
	if _, _, err := ReduceContCQToFeasible(p, cq(t, `P(x) :- R(x).`)); err == nil {
		t.Error("head mismatch must be rejected")
	}
	if _, _, err := ReduceContCQToFeasible(logic.FalseQuery("Q", []logic.Term{logic.Var("x")}), p); err == nil {
		t.Error("false query must be rejected")
	}
}

func TestContainsLimited(t *testing.T) {
	q := ucq(t, `
		Q(x) :- R(x), not S1(x), not S2(x), not S3(x).
		Q(x) :- R(x), S1(x).
		Q(x) :- R(x), S2(x).
		Q(x) :- R(x), S3(x).
	`)
	p := cq(t, `Q(x) :- R(x).`)
	c := NewChecker(q)
	if _, err := c.ContainsLimited(p, 2); err != ErrBudget {
		t.Errorf("tiny budget must return ErrBudget, got %v", err)
	}
	c2 := NewChecker(q)
	got, err := c2.ContainsLimited(p, 1_000_000)
	if err != nil || !got {
		t.Errorf("big budget must decide true, got %v %v", got, err)
	}
	// After a budget abort the checker remains usable.
	if !c.Contains(p) {
		t.Error("checker must recover after budget exhaustion")
	}
}

func TestFeasibilityAsContainment(t *testing.T) {
	a := ucq(t, `Q(x) :- R(x).`)
	q := ucq(t, `Q(x) :- R(x), S(x).`)
	p1, p2 := FeasibilityAsContainment(a, q)
	if !p1.Equal(a) || !p2.Equal(q) {
		t.Error("FeasibilityAsContainment must return clones of its inputs")
	}
}
