package containment

import (
	"testing"

	"repro/internal/logic"
	"repro/internal/parser"
)

func cq(t *testing.T, src string) logic.CQ {
	t.Helper()
	q, err := parser.ParseCQ(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func ucq(t *testing.T, src string) logic.UCQ {
	t.Helper()
	u, err := parser.ParseUCQ(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return u
}

func TestSatisfiable(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want bool
	}{
		{"positive only", `Q(x) :- R(x, y).`, true},
		{"complementary pair", `Q(x) :- R(x), not R(x).`, false},
		{"complement with different args", `Q(x) :- R(x, y), not R(y, x).`, true},
		{"negation of other relation", `Q(x) :- R(x), not S(x).`, true},
		{"ground complement", `Q(x) :- R(x), S("a"), not S("a").`, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Satisfiable(cq(t, tt.src)); got != tt.want {
				t.Errorf("Satisfiable = %v, want %v", got, tt.want)
			}
		})
	}
	if Satisfiable(logic.FalseQuery("Q", nil)) {
		t.Error("false must be unsatisfiable")
	}
	if !SatisfiableUCQ(ucq(t, "Q(x) :- R(x), not R(x).\nQ(x) :- S(x).")) {
		t.Error("union with one satisfiable rule must be satisfiable")
	}
}

func TestCQContainmentClassics(t *testing.T) {
	tests := []struct {
		name string
		p, q string
		want bool
	}{
		{
			"reflexive",
			`Q(x) :- R(x, y).`, `Q(x) :- R(x, y).`,
			true,
		},
		{
			"self-loop contained in edge",
			`Q(x) :- R(x, x).`, `Q(x) :- R(x, y).`,
			true,
		},
		{
			"edge not contained in self-loop",
			`Q(x) :- R(x, y).`, `Q(x) :- R(x, x).`,
			false,
		},
		{
			"triangle contained in path of length 2",
			`Q(x) :- E(x, y), E(y, z), E(z, x).`, `Q(x) :- E(x, y), E(y, z).`,
			true,
		},
		{
			"path not contained in triangle",
			`Q(x) :- E(x, y), E(y, z).`, `Q(x) :- E(x, y), E(y, z), E(z, x).`,
			false,
		},
		{
			"boolean: loop in edge",
			`Q() :- E(x, x).`, `Q() :- E(x, y).`,
			true,
		},
		{
			"constant must match",
			`Q(x) :- R(x, "a").`, `Q(x) :- R(x, y).`,
			true,
		},
		{
			"variable not contained in constant",
			`Q(x) :- R(x, y).`, `Q(x) :- R(x, "a").`,
			false,
		},
		{
			"head variables respected",
			`Q(x, y) :- R(x, y).`, `Q(x, y) :- R(y, x).`,
			false,
		},
		{
			"redundant literal",
			`Q(x) :- R(x, y), R(x, z).`, `Q(x) :- R(x, y).`,
			true,
		},
		{
			"other direction of redundant literal",
			`Q(x) :- R(x, y).`, `Q(x) :- R(x, y), R(x, z).`,
			true,
		},
		{
			"different predicate",
			`Q(x) :- R(x).`, `Q(x) :- S(x).`,
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ContainedCQ(cq(t, tt.p), cq(t, tt.q)); got != tt.want {
				t.Errorf("ContainedCQ = %v, want %v\n p = %s\n q = %s", got, tt.want, tt.p, tt.q)
			}
		})
	}
}

func TestCQNegContainment(t *testing.T) {
	tests := []struct {
		name string
		p, q string
		want bool
	}{
		{
			"dropping a negative literal generalizes",
			`Q(x) :- R(x), not S(x).`, `Q(x) :- R(x).`,
			true,
		},
		{
			"cannot add a negative literal",
			`Q(x) :- R(x).`, `Q(x) :- R(x), not S(x).`,
			false,
		},
		{
			"same negative literal",
			`Q(x) :- R(x), not S(x).`, `Q(x) :- R(x), not S(x).`,
			true,
		},
		{
			"negative literal with weaker positive part",
			`Q(x) :- R(x), T(x), not S(x).`, `Q(x) :- R(x), not S(x).`,
			true,
		},
		{
			"unsatisfiable P contained in anything",
			`Q(x) :- R(x), not R(x).`, `Q(x) :- S(x).`,
			true,
		},
		{
			"negation mismatch on arguments",
			`Q(x) :- R(x, y), not S(x).`, `Q(x) :- R(x, y), not S(y).`,
			false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ContainedCQ(cq(t, tt.p), cq(t, tt.q)); got != tt.want {
				t.Errorf("ContainedCQ = %v, want %v\n p = %s\n q = %s", got, tt.want, tt.p, tt.q)
			}
		})
	}
}

// The recursion of Theorem 13 is needed: R(x) is contained in the union
// (R ∧ ¬S) ∨ (R ∧ S) but in neither disjunct alone.
func TestUnionRecursionCaseSplit(t *testing.T) {
	p := cq(t, `Q(x) :- R(x).`)
	q := ucq(t, `
		Q(x) :- R(x), not S(x).
		Q(x) :- R(x), S(x).
	`)
	if !Contained(p, q) {
		t.Error("R(x) must be contained in (R∧¬S) ∨ (R∧S)")
	}
	for _, r := range q.Rules {
		if ContainedCQ(p, r) {
			t.Errorf("R(x) must not be contained in single disjunct %s", r)
		}
	}
	// Three-way case split over two relations.
	q2 := ucq(t, `
		Q(x) :- R(x), not S(x), not T(x).
		Q(x) :- R(x), S(x).
		Q(x) :- R(x), T(x).
	`)
	if !Contained(p, q2) {
		t.Error("R(x) must be contained in the three-way case split")
	}
	// Remove one case and containment fails.
	q3 := ucq(t, `
		Q(x) :- R(x), not S(x), not T(x).
		Q(x) :- R(x), S(x).
	`)
	if Contained(p, q3) {
		t.Error("R(x) must not be contained when the T case is missing")
	}
}

// Example 3 of the paper: the union is equivalent to Q'(a) :- L(i), B(i,a,t).
func TestExample3Equivalence(t *testing.T) {
	u := ucq(t, `
		Q(a) :- B(i, a, t), L(i), B(i', a', t).
		Q(a) :- B(i, a, t), L(i), not B(i', a', t).
	`)
	qp := ucq(t, `Q(a) :- L(i), B(i, a, t).`)
	if !ContainedUCQ(u, qp) {
		t.Error("Example 3 union must be contained in Q'")
	}
	if !ContainedUCQ(qp, u) {
		t.Error("Q' must be contained in the Example 3 union")
	}
	if !Equivalent(u, qp) {
		t.Error("Equivalent must hold for Example 3")
	}
}

func TestUCQContainment(t *testing.T) {
	tests := []struct {
		name string
		p, q string
		want bool
	}{
		{
			"disjunct-wise",
			"Q(x) :- F(x), G(x).\nQ(x) :- F(x), H(x).",
			"Q(x) :- F(x).",
			true,
		},
		{
			"union on the right",
			"Q(x) :- F(x), G(x).",
			"Q(x) :- G(x).\nQ(x) :- H(x).",
			true,
		},
		{
			"not contained",
			"Q(x) :- F(x).",
			"Q(x) :- F(x), G(x).\nQ(x) :- F(x), H(x).",
			false,
		},
		{
			"example 10: answerable part contained in query",
			"Q(x) :- F(x), G(x).\nQ(x) :- F(x), H(x).\nQ(x) :- F(x).",
			"Q(x) :- F(x), G(x).\nQ(x) :- F(x), H(x), B(y).\nQ(x) :- F(x).",
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ContainedUCQ(ucq(t, tt.p), ucq(t, tt.q)); got != tt.want {
				t.Errorf("ContainedUCQ = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCheckerCountsWork(t *testing.T) {
	c := NewChecker(ucq(t, `
		Q(x) :- R(x), not S(x).
		Q(x) :- R(x), S(x).
	`))
	if !c.Contains(cq(t, `Q(x) :- R(x).`)) {
		t.Fatal("containment expected")
	}
	if c.Nodes < 2 {
		t.Errorf("Nodes = %d, want at least 2 (recursion happened)", c.Nodes)
	}
	// Re-checking uses the memo.
	before := c.MemoHits
	c.Contains(cq(t, `Q(x) :- R(x).`))
	if c.MemoHits <= before {
		t.Error("second identical check must hit the memo")
	}
}

func TestContainmentWithHeadConstants(t *testing.T) {
	p := cq(t, `Q("a", x) :- R(x).`)
	q := cq(t, `Q("a", x) :- R(x).`)
	if !ContainedCQ(p, q) {
		t.Error("identical head constants must be contained")
	}
	q2 := cq(t, `Q("b", x) :- R(x).`)
	if ContainedCQ(p, q2) {
		t.Error("different head constants must not be contained")
	}
}

func TestContainmentEmptyBodyTrue(t *testing.T) {
	// Q() :- true contains every boolean query; nothing nonempty
	// contains it (other than itself).
	tr := logic.CQ{HeadPred: "Q"}
	p := cq(t, `Q() :- R(x).`)
	if !ContainedCQ(p, tr) {
		t.Error("R(x) must be contained in true")
	}
	if ContainedCQ(tr, p) {
		t.Error("true must not be contained in R(x)")
	}
	if !ContainedCQ(tr, tr) {
		t.Error("true must be contained in itself")
	}
}

func TestContainmentFalseRules(t *testing.T) {
	f := logic.FalseQuery("Q", []logic.Term{logic.Var("x")})
	p := cq(t, `Q(x) :- R(x).`)
	if !ContainedCQ(f, p) {
		t.Error("false must be contained in anything")
	}
	if ContainedCQ(p, f) {
		t.Error("a satisfiable query must not be contained in false")
	}
	// False disjuncts on the right are ignored.
	u := logic.Union(f, p)
	if !Contained(p, u) {
		t.Error("p must be contained in false ∨ p")
	}
}
