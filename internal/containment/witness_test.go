package containment

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/workload"
)

func TestExplainSimpleCQ(t *testing.T) {
	p := cq(t, `Q(x) :- R(x, x).`)
	q := logic.AsUnion(cq(t, `Q(x) :- R(x, y).`))
	c := NewChecker(q)
	w, ok := c.Explain(p)
	if !ok {
		t.Fatal("containment expected")
	}
	if w.Disjunct != 0 || len(w.Children) != 0 {
		t.Errorf("witness = %+v", w)
	}
	if err := NewChecker(q).Verify(p, w); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// The mapping must send y to x.
	if got := w.Mapping.Term(logic.Var("y")); got != logic.Var("x") {
		t.Errorf("σ(y) = %v", got)
	}
}

func TestExplainNegativeRecursion(t *testing.T) {
	p := cq(t, `Q(x) :- R(x).`)
	q := ucq(t, `
		Q(x) :- R(x), not S(x).
		Q(x) :- R(x), S(x).
	`)
	c := NewChecker(q)
	w, ok := c.Explain(p)
	if !ok {
		t.Fatal("containment expected")
	}
	if len(w.Children) != 1 {
		t.Fatalf("witness children = %d", len(w.Children))
	}
	sub := w.Children[0].Sub
	if sub == nil || sub.Unsat {
		t.Fatalf("child witness = %+v", sub)
	}
	if err := NewChecker(q).Verify(p, w); err != nil {
		t.Errorf("Verify: %v", err)
	}
	s := w.String()
	for _, want := range []string{"via disjunct", "conjoin"} {
		if !strings.Contains(s, want) {
			t.Errorf("witness rendering missing %q:\n%s", want, s)
		}
	}
}

func TestExplainUnsat(t *testing.T) {
	p := cq(t, `Q(x) :- R(x), not R(x).`)
	q := logic.AsUnion(cq(t, `Q(x) :- S(x).`))
	c := NewChecker(q)
	w, ok := c.Explain(p)
	if !ok || !w.Unsat {
		t.Fatalf("want unsat witness, got %+v %v", w, ok)
	}
	if err := c.Verify(p, w); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestExplainNotContained(t *testing.T) {
	p := cq(t, `Q(x) :- R(x).`)
	q := logic.AsUnion(cq(t, `Q(x) :- R(x), not S(x).`))
	c := NewChecker(q)
	if _, ok := c.Explain(p); ok {
		t.Error("containment must fail")
	}
}

func TestVerifyRejectsBogusWitness(t *testing.T) {
	p := cq(t, `Q(x) :- R(x).`)
	q := logic.AsUnion(cq(t, `Q(x) :- S(x).`))
	c := NewChecker(q)
	bogus := &Witness{Disjunct: 0, Mapping: logic.Subst{"x": logic.Var("x")}}
	if err := c.Verify(p, bogus); err == nil {
		t.Error("bogus mapping must be rejected")
	}
	if err := c.Verify(p, &Witness{Unsat: true}); err == nil {
		t.Error("false unsat claim must be rejected")
	}
	if err := c.Verify(p, &Witness{Disjunct: 7}); err == nil {
		t.Error("out-of-range disjunct must be rejected")
	}
	if err := c.Verify(p, nil); err == nil {
		t.Error("nil witness must be rejected")
	}
}

// Explain agrees with Contains, and every produced witness verifies, on
// random queries.
func TestExplainAgreesAndVerifies(t *testing.T) {
	g := workload.New(55)
	s := g.Schema(3, 1, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 4}
	for i := 0; i < 150; i++ {
		p := g.CQ(s, cfg)
		q := g.UCQ(s, 2, cfg)
		want := NewChecker(q).Contains(p)
		c := NewChecker(q)
		w, got := c.Explain(p)
		if got != want {
			t.Fatalf("Explain (%v) disagrees with Contains (%v) on\nP=%s\nQ=%s", got, want, p, q)
		}
		if got {
			if err := NewChecker(q).Verify(p, w); err != nil {
				t.Fatalf("witness fails verification: %v\nP=%s\nQ=%s\n%s", err, p, q, w)
			}
		}
	}
}
