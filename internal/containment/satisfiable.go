// Package containment implements query containment for the four classes
// CQ, UCQ, CQ¬, and UCQ¬, following the algorithms the paper builds on:
//
//   - CQ/UCQ containment via containment mappings (Chandra & Merlin 1977;
//     Sagiv & Yannakakis 1980),
//   - CQ¬/UCQ¬ containment via Wei & Lausen (ICDT 2003) Theorems 2 and 5,
//     as restated in Theorems 12 and 13 of Nash & Ludäscher (EDBT 2004),
//   - CQ¬ satisfiability (Proposition 8),
//   - the two many-one reductions between containment and feasibility
//     (Theorem 18 and Proposition 20).
//
// The containment test is Π₂ᴾ-complete for CQ¬/UCQ¬, so worst-case
// exponential time is expected; the implementation memoizes subproblems
// and prunes the containment-mapping search.
package containment

import "repro/internal/logic"

// Satisfiable reports whether a CQ¬ query is satisfiable. By
// Proposition 8 of the paper, Q is unsatisfiable iff some atom appears
// both positively and negatively in the body (or Q is the query false).
// The check runs in near-linear time using a set of positive atom keys.
func Satisfiable(q logic.CQ) bool {
	if q.False {
		return false
	}
	pos := make(map[string]bool, len(q.Body))
	for _, l := range q.Body {
		if !l.Negated {
			pos[l.Atom.Key()] = true
		}
	}
	for _, l := range q.Body {
		if l.Negated && pos[l.Atom.Key()] {
			return false
		}
	}
	return true
}

// SatisfiableUCQ reports whether some rule of u is satisfiable.
func SatisfiableUCQ(u logic.UCQ) bool {
	for _, r := range u.Rules {
		if Satisfiable(r) {
			return true
		}
	}
	return false
}
