package containment

import (
	"sort"
	"strings"

	"repro/internal/logic"
)

// This file implements the acyclic fast path the paper points to in
// Section 5.1: Chekuri & Rajaraman (ICDT 1997) show containment in an
// acyclic CQ is decidable in polynomial time, and "by the nature of the
// algorithm in [WL03], these gains … will also improve the test for
// containment of CQ¬ and UCQ¬". When a disjunct Qᵢ of the right-hand
// query is negation-free and acyclic, the checker replaces the
// backtracking containment-mapping search by a Yannakakis-style
// semijoin program over Qᵢ's join tree.

// Acyclic reports whether the hypergraph of q's positive literals is
// α-acyclic, using GYO ear removal. Queries with no positive literals
// are trivially acyclic.
func Acyclic(q logic.CQ) bool {
	_, ok := joinTree(q.Positive())
	return ok
}

// joinTree runs GYO reduction and returns, for each literal index, the
// parent literal index it was absorbed into (-1 for the root/last
// remaining edges), together with the removal order. ok is false when
// the hypergraph is cyclic.
func joinTree(pos []logic.Literal) (tree joinTreeInfo, ok bool) {
	n := len(pos)
	tree.parent = make([]int, n)
	for i := range tree.parent {
		tree.parent[i] = -1
	}
	if n <= 1 {
		return tree, true
	}
	vars := make([]map[string]bool, n)
	for i, l := range pos {
		vars[i] = map[string]bool{}
		for _, v := range l.Vars() {
			vars[i][v.Name] = true
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	for remaining > 1 {
		removed := false
		for e := 0; e < n && remaining > 1; e++ {
			if !alive[e] {
				continue
			}
			// Shared vertices of e: those appearing in another live edge.
			shared := map[string]bool{}
			for v := range vars[e] {
				for w := 0; w < n; w++ {
					if w != e && alive[w] && vars[w][v] {
						shared[v] = true
						break
					}
				}
			}
			// e is an ear if some other live edge w covers shared(e).
			for w := 0; w < n; w++ {
				if w == e || !alive[w] {
					continue
				}
				covered := true
				for v := range shared {
					if !vars[w][v] {
						covered = false
						break
					}
				}
				if covered {
					alive[e] = false
					tree.parent[e] = w
					tree.order = append(tree.order, e)
					remaining--
					removed = true
					break
				}
			}
		}
		if !removed {
			return tree, false
		}
	}
	for i := 0; i < n; i++ {
		if alive[i] {
			tree.root = i
			tree.order = append(tree.order, i)
		}
	}
	return tree, true
}

type joinTreeInfo struct {
	parent []int // parent[i] = literal index i was absorbed into, -1 for root
	order  []int // removal order; root last
	root   int
}

// acyclicMappingExists reports whether a containment mapping from the
// negation-free acyclic query q into p exists, by a bottom-up semijoin
// over q's join tree. sigma0 is the head-alignment binding. It must
// only be called when q has no negative literals (and hence no
// unconstrained variables to enumerate).
func acyclicMappingExists(p, q logic.CQ, tree joinTreeInfo) bool {
	qPos := q.Positive()
	if len(qPos) == 0 {
		return true
	}
	sigma0, ok := headAlignment(p, q)
	if !ok {
		return false
	}
	pPos := p.Positive()

	// Candidate assignments per node, restricted to the node's variables.
	cands := make([]map[string]logic.Subst, len(qPos))
	for i, ql := range qPos {
		cands[i] = map[string]logic.Subst{}
		for _, pl := range pPos {
			if pl.Atom.Pred != ql.Atom.Pred || pl.Atom.Arity() != ql.Atom.Arity() {
				continue
			}
			if a, ok := extend(sigma0, ql.Atom, pl.Atom); ok {
				local := restrict(a, ql)
				cands[i][substKey(local)] = local
			}
		}
		if len(cands[i]) == 0 {
			return false
		}
	}

	// children[w] = ears absorbed into w.
	children := make(map[int][]int)
	for e, w := range tree.parent {
		if w >= 0 {
			children[w] = append(children[w], e)
		}
	}
	// Process in removal order (children always precede parents), hash
	// semijoin on the shared variables so each pass is linear in the
	// candidate sets.
	for _, node := range tree.order {
		for _, c := range children[node] {
			shared := sharedVars(qPos[node], qPos[c])
			// Index the child's candidates by their shared-variable
			// projection.
			index := map[string]bool{}
			for _, b := range cands[c] {
				index[projKey(b, shared)] = true
			}
			for key, a := range cands[node] {
				if !index[projKey(a, shared)] {
					delete(cands[node], key)
				}
			}
			if len(cands[node]) == 0 {
				return false
			}
		}
	}
	return true
}

// sharedVars lists the variable names common to two literals, sorted.
func sharedVars(a, b logic.Literal) []string {
	inA := map[string]bool{}
	for _, v := range a.Vars() {
		inA[v.Name] = true
	}
	var out []string
	for _, v := range b.Vars() {
		if inA[v.Name] {
			out = append(out, v.Name)
		}
	}
	sort.Strings(out)
	return out
}

// projKey encodes an assignment's values on the given variables.
func projKey(a logic.Subst, vars []string) string {
	var b strings.Builder
	for _, v := range vars {
		b.WriteString(a[v].String())
		b.WriteByte(';')
	}
	return b.String()
}

// restrict keeps only the bindings for variables of literal ql.
func restrict(a logic.Subst, ql logic.Literal) logic.Subst {
	out := logic.NewSubst()
	for _, v := range ql.Vars() {
		if t, ok := a[v.Name]; ok {
			out[v.Name] = t
		}
	}
	return out
}

func substKey(s logic.Subst) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s[k].String())
		b.WriteByte(';')
	}
	return b.String()
}

// headAlignment computes the initial binding unifying q's head with p's
// head (the σ-is-identity-on-free-variables requirement).
func headAlignment(p, q logic.CQ) (logic.Subst, bool) {
	if len(p.HeadArgs) != len(q.HeadArgs) || p.HeadPred != q.HeadPred {
		return nil, false
	}
	sigma := logic.NewSubst()
	for j, qa := range q.HeadArgs {
		pa := p.HeadArgs[j]
		if qa.IsVar() {
			if bound, ok := sigma[qa.Name]; ok {
				if bound != pa {
					return nil, false
				}
				continue
			}
			sigma[qa.Name] = pa
			continue
		}
		if qa != pa {
			return nil, false
		}
	}
	return sigma, true
}
