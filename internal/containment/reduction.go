package containment

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/logic"
)

// ReduceContToFeasible implements the reduction of Theorem 18 of the
// paper (CONT(UCQ¬) ≤ₘᴾ FEASIBLE(UCQ¬)): given P = P₁ ∨ … ∨ Pₖ and Q
// over the same head, it builds
//
//	P' := P₁ ∧ B(y)  ∨ … ∨  Pₖ ∧ B(y)      (B fresh, pattern B^i)
//	Q' := P' ∨ Q
//
// with every relation of P and Q given an all-output pattern. Then
// P ⊑ Q iff Q' is feasible. The fresh variable y makes every P' rule
// unanswerable in its B literal, so ans(Q') ≡ P ∨ Q; feasibility of Q'
// is exactly the containment P ∨ Q ⊑ P' ∨ Q, which holds iff P ⊑ Q.
func ReduceContToFeasible(p, q logic.UCQ) (logic.UCQ, *access.Set, error) {
	if len(p.Rules) == 0 || len(q.Rules) == 0 {
		return logic.UCQ{}, nil, fmt.Errorf("containment: reduction needs nonempty queries")
	}
	if p.HeadPred() != q.HeadPred() || p.HeadArity() != q.HeadArity() {
		return logic.UCQ{}, nil, fmt.Errorf("containment: reduction needs a common head, got %s/%d and %s/%d",
			p.HeadPred(), p.HeadArity(), q.HeadPred(), q.HeadArity())
	}
	rels := p.Relations()
	for name, ar := range q.Relations() {
		if prev, ok := rels[name]; ok && prev != ar {
			return logic.UCQ{}, nil, fmt.Errorf("containment: relation %s used with arities %d and %d", name, prev, ar)
		}
		rels[name] = ar
	}
	const bName = "B__fresh"
	if _, clash := rels[bName]; clash {
		return logic.UCQ{}, nil, fmt.Errorf("containment: relation name %s already in use", bName)
	}
	// Fresh variable name not used anywhere.
	yName := "y__fresh"
	ps := access.NewSet()
	for name, ar := range rels {
		if err := ps.Add(name, access.AllOutputPattern(ar)); err != nil {
			return logic.UCQ{}, nil, err
		}
	}
	if err := ps.Add(bName, "i"); err != nil {
		return logic.UCQ{}, nil, err
	}

	var rules []logic.CQ
	for _, r := range p.Rules {
		ext := r.Clone()
		ext.Body = append(ext.Body, logic.Pos(logic.NewAtom(bName, logic.Var(yName))))
		rules = append(rules, ext)
	}
	for _, r := range q.Rules {
		rules = append(rules, r.Clone())
	}
	return logic.UCQ{Rules: rules}, ps, nil
}

// ReduceContCQToFeasible implements the reduction of Proposition 20
// (CONT(CQ¬) ≤ₘᴾ FEASIBLE(CQ¬)): given CQ¬ queries P(x̄) and Q(x̄), it
// builds the single rule
//
//	L(x̄) :- T(u), R̂'₁(u, x̄₁), …, R̂'ₖ(u, x̄ₖ), Ŝ'₁(v, ȳ₁), …, Ŝ'ₗ(v, ȳₗ)
//
// where each relation R of arity n becomes R' of arity n+1, P's literals
// are tagged with the fresh variable u and Q's with the fresh variable v,
// and the access patterns are T^o and R'^io…o. Then ans(L) is the T/u/P
// part (v can never be bound), and P ⊑ Q iff L is feasible.
func ReduceContCQToFeasible(p, q logic.CQ) (logic.CQ, *access.Set, error) {
	if p.HeadPred != q.HeadPred || len(p.HeadArgs) != len(q.HeadArgs) {
		return logic.CQ{}, nil, fmt.Errorf("containment: reduction needs a common head")
	}
	if p.False || q.False {
		return logic.CQ{}, nil, fmt.Errorf("containment: reduction needs non-false queries")
	}
	// Edge case the paper's Proposition 20 glosses over: if Q is
	// unsatisfiable (it contains a complementary literal pair), the
	// constructed L would also be unsatisfiable — hence trivially
	// feasible — even though P ⊑ Q holds only for unsatisfiable P. The
	// satisfiability checks are quadratic, so dispatching to a fixed
	// feasible/infeasible instance keeps the reduction polynomial and
	// many-one.
	if !Satisfiable(q) {
		if !Satisfiable(p) {
			// P ⊑ Q holds; emit a trivially feasible instance.
			out := logic.CQ{HeadPred: "L", Body: []logic.Literal{logic.Pos(logic.NewAtom("T__fresh", logic.Var("u__fresh")))}}
			ps := access.NewSet()
			_ = ps.Add("T__fresh", "o")
			return out, ps, nil
		}
		// P ⋢ Q; emit a trivially infeasible instance (the essential
		// B literal can never be called).
		out := logic.CQ{HeadPred: "L", Body: []logic.Literal{
			logic.Pos(logic.NewAtom("T__fresh", logic.Var("u__fresh"))),
			logic.Pos(logic.NewAtom("B__fresh", logic.Var("y__fresh"))),
		}}
		ps := access.NewSet()
		_ = ps.Add("T__fresh", "o")
		_ = ps.Add("B__fresh", "i")
		return out, ps, nil
	}
	const tName = "T__fresh"
	uVar, vVar := logic.Var("u__fresh"), logic.Var("v__fresh")

	// P's and Q's existential variables are quantified separately in L,
	// so Q's must be renamed apart from P's. Head variables are shared
	// (they are never existential in P, so they are not in taken).
	taken := map[string]bool{}
	headVar := map[string]bool{}
	for _, t := range p.HeadArgs {
		if t.IsVar() {
			headVar[t.Name] = true
		}
	}
	for _, v := range p.Vars() {
		if !headVar[v.Name] {
			taken[v.Name] = true
		}
	}
	q, _ = logic.RenameApart(q, taken)

	ps := access.NewSet()
	if err := ps.Add(tName, "o"); err != nil {
		return logic.CQ{}, nil, err
	}
	tag := func(l logic.Literal, tagVar logic.Term) (logic.Literal, error) {
		args := append([]logic.Term{tagVar}, l.Atom.Args...)
		name := l.Atom.Pred + "__p"
		pat := access.Pattern("i" + string(access.AllOutputPattern(len(l.Atom.Args))))
		if err := ps.Add(name, pat); err != nil {
			return logic.Literal{}, err
		}
		return logic.Literal{Atom: logic.NewAtom(name, args...), Negated: l.Negated}, nil
	}

	out := logic.CQ{HeadPred: "L", HeadArgs: append([]logic.Term(nil), p.HeadArgs...)}
	out.Body = append(out.Body, logic.Pos(logic.NewAtom(tName, uVar)))
	for _, l := range p.Body {
		tl, err := tag(l, uVar)
		if err != nil {
			return logic.CQ{}, nil, err
		}
		out.Body = append(out.Body, tl)
	}
	for _, l := range q.Body {
		tl, err := tag(l, vVar)
		if err != nil {
			return logic.CQ{}, nil, err
		}
		out.Body = append(out.Body, tl)
	}
	return out, ps, nil
}

// FeasibilityAsContainment expresses feasibility as a containment
// instance (Corollary 17, the easy direction of Theorem 18): Q is
// feasible iff ans(Q) ⊑ Q. It returns the pair (ans(Q), Q) to feed a
// containment checker; ans must be supplied by the caller (core computes
// it) to keep this package free of a dependency on core.
func FeasibilityAsContainment(ans, q logic.UCQ) (logic.UCQ, logic.UCQ) {
	return ans.Clone(), q.Clone()
}
