package containment

import (
	"sort"

	"repro/internal/logic"
)

// A containment mapping from Q to P (witnessing P ⊑ Q for positive
// queries) is a substitution σ on the variables of Q such that σ maps the
// head of Q onto the head of P and every positive literal R(ȳ) of Q onto
// a positive literal R(σȳ) of P. Wei–Lausen containment additionally
// needs σ to be total on all variables of Q, including variables that
// occur only in negative literals; those range over the terms of P.

// mappingSearch enumerates containment mappings from q's positive part
// into p's positive part, extended to be total on totalVars (variables of
// q not determined by the positive match range over p's terms). It calls
// yield for each mapping found and stops early when yield returns true.
// The overall return value is true iff some yield returned true.
type mappingSearch struct {
	pPos   []logic.Literal // positive literals of P (match targets)
	pTerms []logic.Term    // candidate values for unconstrained variables
	yield  func(logic.Subst) bool
}

// findMapping reports whether some containment mapping σ from q into p
// exists for which yield returns true. The heads are aligned positionally:
// q's head argument j must map to p's head argument j.
func findMapping(p, q logic.CQ, yield func(logic.Subst) bool) bool {
	// Align heads: σ is the identity on free variables in the paper's
	// setting (same head variable tuple); positional unification
	// generalizes this to heads with constants.
	sigma, ok := headAlignment(p, q)
	if !ok {
		return false
	}

	qPos := q.Positive()
	// Candidate target literals per source literal, by predicate and arity.
	cands := make([][]logic.Literal, len(qPos))
	pPos := p.Positive()
	for i, ql := range qPos {
		for _, pl := range pPos {
			if pl.Atom.Pred == ql.Atom.Pred && pl.Atom.Arity() == ql.Atom.Arity() {
				cands[i] = append(cands[i], pl)
			}
		}
		if len(cands[i]) == 0 {
			return false
		}
	}
	// Most-constrained-first: match literals with few candidates early.
	order := make([]int, len(qPos))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(cands[order[a]]) < len(cands[order[b]])
	})

	ms := &mappingSearch{pPos: pPos, pTerms: termsOf(p), yield: yield}
	extra := unconstrainedVars(q, qPos)
	return ms.match(sigma, qPos, cands, order, 0, extra)
}

// match extends sigma literal by literal, then enumerates values for the
// remaining unconstrained variables.
func (ms *mappingSearch) match(sigma logic.Subst, qPos []logic.Literal, cands [][]logic.Literal, order []int, k int, extra []string) bool {
	if k == len(order) {
		return ms.assignExtra(sigma, extra, 0)
	}
	i := order[k]
	ql := qPos[i]
	for _, pl := range cands[i] {
		next, ok := extend(sigma, ql.Atom, pl.Atom)
		if !ok {
			continue
		}
		if ms.match(next, qPos, cands, order, k+1, extra) {
			return true
		}
	}
	return false
}

// assignExtra enumerates assignments of p's terms to variables of q that
// the positive match left unbound (they occur only in negative literals).
func (ms *mappingSearch) assignExtra(sigma logic.Subst, extra []string, k int) bool {
	for k < len(extra) {
		if _, ok := sigma[extra[k]]; ok {
			k++
			continue
		}
		break
	}
	if k == len(extra) {
		return ms.yield(sigma)
	}
	for _, t := range ms.pTerms {
		if ms.assignExtra(sigma.Bind(extra[k], t), extra, k+1) {
			return true
		}
	}
	return false
}

// extend unifies source atom qa with target atom pa under sigma,
// returning the extended substitution. Constants and null must match
// exactly; variables of q bind to the corresponding term of p.
func extend(sigma logic.Subst, qa, pa logic.Atom) (logic.Subst, bool) {
	next := sigma
	copied := false
	for j, qt := range qa.Args {
		pt := pa.Args[j]
		if qt.IsVar() {
			if bound, ok := next[qt.Name]; ok {
				if bound != pt {
					return nil, false
				}
				continue
			}
			if !copied {
				next = next.Clone()
				copied = true
			}
			next[qt.Name] = pt
			continue
		}
		if qt != pt {
			return nil, false
		}
	}
	return next, true
}

// termsOf returns the distinct terms (variables and constants) occurring
// in p's head and body, in first-occurrence order.
func termsOf(p logic.CQ) []logic.Term {
	var out []logic.Term
	seen := map[logic.Term]bool{}
	add := func(ts []logic.Term) {
		for _, t := range ts {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	add(p.HeadArgs)
	for _, l := range p.Body {
		add(l.Atom.Args)
	}
	return out
}

// unconstrainedVars lists variables of q that do not occur in its head or
// positive part, in deterministic order. These occur only in negative
// literals (the paper's Example 3 has such variables); a total containment
// mapping must still assign them.
func unconstrainedVars(q logic.CQ, qPos []logic.Literal) []string {
	bound := map[string]bool{}
	for _, t := range q.HeadArgs {
		if t.IsVar() {
			bound[t.Name] = true
		}
	}
	for _, l := range qPos {
		for _, v := range l.Vars() {
			bound[v.Name] = true
		}
	}
	var out []string
	for _, v := range q.Vars() {
		if !bound[v.Name] {
			out = append(out, v.Name)
		}
	}
	return out
}
