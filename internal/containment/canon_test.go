package containment

import (
	"fmt"
	"testing"

	"repro/internal/logic"
)

func TestCanonicalKeyAlphaInvariance(t *testing.T) {
	pairs := []struct{ a, b string }{
		{`Q(x) :- R(x, y), S(y, z).`, `Q(u) :- R(u, w2), S(w2, k).`},
		{`Q(x, y) :- R(x, z), not S(z), B(x, y).`, `Q(a, b) :- R(a, c), not S(c), B(a, b).`},
		{`Q(x) :- R(x, y), R(y, x).`, `Q(p) :- R(q, p), R(p, q).`},
		{`Q() :- E(a, b), E(b, c), E(c, a).`, `Q() :- E(z2, z0), E(z0, z1), E(z1, z2).`},
		{`Q(x) :- R(x, "c").`, `Q(v9) :- R(v9, "c").`},
	}
	for i, p := range pairs {
		ka, kb := CanonicalKey(cq(t, p.a)), CanonicalKey(cq(t, p.b))
		if ka != kb {
			t.Errorf("pair %d: keys differ:\n  %s -> %s\n  %s -> %s", i, p.a, ka, p.b, kb)
		}
	}
}

func TestCanonicalKeyOrderAndDuplicates(t *testing.T) {
	a := cq(t, `Q(x) :- R(x, y), S(y), R(x, y).`)
	b := cq(t, `Q(x) :- S(y), R(x, y).`)
	if ka, kb := CanonicalKey(a), CanonicalKey(b); ka != kb {
		t.Errorf("literal order/duplication must not matter: %q vs %q", ka, kb)
	}
	c := Canonicalize(a)
	if len(c.Body) != 2 {
		t.Errorf("canonical form must drop duplicates, got %s", c)
	}
}

func TestCanonicalKeyDistinguishes(t *testing.T) {
	pairs := []struct{ a, b string }{
		// Join shape differs.
		{`Q(x) :- R(x, y), S(y, z).`, `Q(x) :- R(x, y), S(z, y).`},
		// Head order is part of the query.
		{`Q(x, y) :- R(x, y).`, `Q(y, x) :- R(x, y).`},
		// Sign differs.
		{`Q(x) :- R(x), S(x).`, `Q(x) :- R(x), not S(x).`},
		// Constant vs variable.
		{`Q(x) :- R(x, "c").`, `Q(x) :- R(x, y).`},
		// Different constants.
		{`Q(x) :- R(x, "c").`, `Q(x) :- R(x, "d").`},
		// Self-join vs chain.
		{`Q(x) :- R(x, x).`, `Q(x) :- R(x, y).`},
	}
	for i, p := range pairs {
		ka, kb := CanonicalKey(cq(t, p.a)), CanonicalKey(cq(t, p.b))
		if ka == kb {
			t.Errorf("pair %d: distinct queries share key %q", i, ka)
		}
	}
}

func TestCanonicalKeySymmetricTies(t *testing.T) {
	// A highly symmetric body: every variable has the same local
	// signature, so the search must branch on ties. Any rotation of the
	// cycle is isomorphic and must key identically.
	mk := func(names ...string) logic.CQ {
		q := logic.CQ{HeadPred: "Q"}
		for i := range names {
			q.Body = append(q.Body, logic.Pos(logic.NewAtom("E",
				logic.Var(names[i]), logic.Var(names[(i+1)%len(names)]))))
		}
		return q
	}
	base := CanonicalKey(mk("a", "b", "c", "d"))
	for _, perm := range [][]string{
		{"b", "c", "d", "a"},
		{"d", "a", "b", "c"},
		{"w", "x", "y", "z"},
	} {
		if k := CanonicalKey(mk(perm...)); k != base {
			t.Errorf("rotation %v keys %q, want %q", perm, k, base)
		}
	}
}

func TestCanonicalKeyFalseAndUCQ(t *testing.T) {
	f := logic.FalseQuery("Q", []logic.Term{logic.Var("weird")})
	if k := CanonicalKey(f); k != `Q(h0) :- false` {
		t.Errorf("false key = %q", k)
	}
	u1 := ucq(t, "Q(x) :- R(x).\nQ(x) :- S(x, y).")
	u2 := ucq(t, "Q(a) :- S(a, b).\nQ(a) :- R(a).")
	if CanonicalKeyUCQ(u1) != CanonicalKeyUCQ(u2) {
		t.Error("disjunct order and renaming must not change the UCQ key")
	}
	u3 := ucq(t, "Q(x) :- R(x).")
	if CanonicalKeyUCQ(u1) == CanonicalKeyUCQ(u3) {
		t.Error("different unions must not collide")
	}
}

func TestCanonicalizeEquivalentToInput(t *testing.T) {
	// The canonical form must be equivalent to the input (it is the
	// same query up to renaming), checked with the checker itself.
	srcs := []string{
		`Q(x) :- R(x, y), S(y, z), not T(z).`,
		`Q(x, y) :- R(x, z), B(x, y), not S(z).`,
		`Q() :- E(a, b), E(b, c), E(c, a).`,
	}
	for _, src := range srcs {
		q := cq(t, src)
		c := Canonicalize(q)
		if !Equivalent(logic.AsUnion(q), logic.AsUnion(c)) {
			t.Errorf("canonical form of %s is not equivalent: %s", q, c)
		}
	}
}

func TestCanonicalKeyBudgetFallbackDeterministic(t *testing.T) {
	// A clique larger than the leaf budget can absorb: the fallback
	// assignment must still be deterministic and rename-invariant for
	// identical structures (here: the same query under two namings that
	// sort the same way relative to signatures).
	mk := func(prefix string, n int) logic.CQ {
		q := logic.CQ{HeadPred: "Q"}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					q.Body = append(q.Body, logic.Pos(logic.NewAtom("E",
						logic.Var(fmt.Sprintf("%s%d", prefix, i)),
						logic.Var(fmt.Sprintf("%s%d", prefix, j)))))
				}
			}
		}
		return q
	}
	k1, k2 := CanonicalKey(mk("a", 8)), CanonicalKey(mk("b", 8))
	if k1 != k2 {
		t.Errorf("clique keys differ under renaming: %q vs %q", k1, k2)
	}
	if k1 != CanonicalKey(mk("a", 8)) {
		t.Error("canonical key must be deterministic")
	}
}
