package containment

import (
	"fmt"
	"testing"

	"repro/internal/logic"
	"repro/internal/workload"
)

func TestAcyclic(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want bool
	}{
		{"single atom", `Q(x) :- R(x, y).`, true},
		{"chain", `Q(x) :- E(x, y), E(y, z), E(z, w).`, true},
		{"star", `Q(x) :- R(x, a), S(x, b), T(x, c).`, true},
		{"triangle", `Q(x) :- E(x, y), E(y, z), E(z, x).`, false},
		{"square", `Q(x) :- E(x, y), F(y, z), G(z, w), H(w, x).`, false},
		{"covered cycle", `Q(x) :- T3(x, y, z), E(x, y), E(y, z), E(z, x).`, true},
		{"negation ignored in hypergraph", `Q(x) :- E(x, y), not F(y, x).`, true},
		{"no positive literals", `Q() :- true.`, true},
		{"two components", `Q(x) :- R(x, y), S(a, b).`, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Acyclic(cq(t, tt.src)); got != tt.want {
				t.Errorf("Acyclic = %v, want %v", got, tt.want)
			}
		})
	}
}

// The acyclic fast path must agree with the backtracking search on every
// negation-free containment instance.
func TestAcyclicFastPathAgreement(t *testing.T) {
	g := workload.New(88)
	s := g.Schema(3, 1, 3)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 0, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 4}
	acyclicSeen := 0
	for i := 0; i < 300; i++ {
		p := g.CQ(s, cfg)
		q := g.CQ(s, cfg)
		fast := NewChecker(logic.AsUnion(q))
		slow := NewChecker(logic.AsUnion(q))
		slow.DisableAcyclic = true
		got := fast.Contains(p)
		want := slow.Contains(p)
		if got != want {
			t.Fatalf("fast path disagreement on\nP=%s\nQ=%s\nfast=%v slow=%v (acyclic=%v)",
				p, q, got, want, Acyclic(q))
		}
		if fast.AcyclicHits > 0 {
			acyclicSeen++
		}
	}
	if acyclicSeen == 0 {
		t.Error("fast path never engaged; generator or acyclicity test mis-tuned")
	}
}

// Chain containments (deep acyclic instances) through the fast path.
func TestAcyclicChains(t *testing.T) {
	chain := func(n int, loop bool) logic.CQ {
		q := logic.CQ{HeadPred: "Q", HeadArgs: []logic.Term{logic.Var("x0")}}
		for i := 0; i < n; i++ {
			q.Body = append(q.Body, logic.Pos(logic.NewAtom("E",
				logic.Var(fmt.Sprintf("x%d", i)), logic.Var(fmt.Sprintf("x%d", i+1)))))
		}
		if loop {
			q.Body = append(q.Body, logic.Pos(logic.NewAtom("E",
				logic.Var(fmt.Sprintf("x%d", n)), logic.Var("x0"))))
		}
		return q
	}
	// A cycle of length n+1 maps onto any chain of length ≤ n+1... it
	// does not (heads); but a chain of length 2n contains... keep it
	// concrete: the loop query is contained in the plain chain of equal
	// length (drop the closing edge), not conversely.
	for _, n := range []int{3, 7, 15} {
		p := chain(n, true)
		q := chain(n, false)
		c := NewChecker(logic.AsUnion(q))
		if !c.Contains(p) {
			t.Errorf("n=%d: looped chain must be contained in open chain", n)
		}
		if c.AcyclicHits == 0 {
			t.Errorf("n=%d: expected the acyclic fast path to engage", n)
		}
		c2 := NewChecker(logic.AsUnion(p))
		if c2.Contains(q) {
			t.Errorf("n=%d: open chain must not be contained in looped chain", n)
		}
	}
}

// The fast path also accelerates the Wei–Lausen recursion: negation-free
// acyclic disjuncts inside a union with negation still use it.
func TestAcyclicInsideUnionWithNegation(t *testing.T) {
	p := cq(t, `Q(x) :- R(x).`)
	u := ucq(t, `
		Q(x) :- R(x), not S(x).
		Q(x) :- R(x), S(x).
	`)
	c := NewChecker(u)
	if !c.Contains(p) {
		t.Fatal("containment expected")
	}
	// Both disjuncts have negative literals or... the second doesn't:
	// R(x), S(x) is negation-free and acyclic, so the recursive call
	// P ∧ S(x) ⊑ Q should hit the fast path.
	if c.AcyclicHits == 0 {
		t.Error("expected acyclic hits in the recursion")
	}
}
