// Package services models web service operations the way Section 1 of
// the paper does: an operation op: x₁…xₙ → y₁…yₘ has an input message
// with n parts and an output message with m parts, and "a family of web
// service operations over k attributes can be concisely described as a
// relation R(a₁,…,aₖ) with an associated set of access patterns". A
// Registry collects operation descriptions, validates that operations on
// the same relation agree on its attributes, and derives the access.Set
// that the planning algorithms consume — making queries declarative
// specifications for web service composition.
package services

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/access"
)

// Operation describes one web service operation over a backing relation.
type Operation struct {
	// Name is the operation name, e.g. "getBooksByAuthor".
	Name string
	// Relation is the backing relation, e.g. "B".
	Relation string
	// Attributes names the relation's columns in order,
	// e.g. isbn, author, title.
	Attributes []string
	// Inputs lists the attributes the caller must supply (the input
	// message parts); the rest are outputs.
	Inputs []string
}

// Pattern derives the access pattern of the operation: 'i' at input
// attributes, 'o' elsewhere.
func (o Operation) Pattern() (access.Pattern, error) {
	if len(o.Attributes) == 0 {
		return "", fmt.Errorf("services: operation %s has no attributes", o.Name)
	}
	pos := map[string]int{}
	for i, a := range o.Attributes {
		if _, dup := pos[a]; dup {
			return "", fmt.Errorf("services: operation %s repeats attribute %s", o.Name, a)
		}
		pos[a] = i
	}
	word := []byte(strings.Repeat("o", len(o.Attributes)))
	for _, in := range o.Inputs {
		j, ok := pos[in]
		if !ok {
			return "", fmt.Errorf("services: operation %s declares unknown input attribute %s", o.Name, in)
		}
		word[j] = 'i'
	}
	return access.Pattern(word), nil
}

// Signature renders the operation as the paper writes it, e.g.
// getBooksByAuthor: author -> {(isbn, title)}.
func (o Operation) Signature() string {
	var outs []string
	inSet := map[string]bool{}
	for _, in := range o.Inputs {
		inSet[in] = true
	}
	for _, a := range o.Attributes {
		if !inSet[a] {
			outs = append(outs, a)
		}
	}
	return fmt.Sprintf("%s: %s -> {(%s)}", o.Name, strings.Join(o.Inputs, ", "), strings.Join(outs, ", "))
}

// Registry is a set of operation descriptions.
type Registry struct {
	ops    []Operation
	schema map[string][]string // relation → attributes
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{schema: map[string][]string{}} }

// Register validates and adds an operation. Operations backing the same
// relation must declare identical attribute lists.
func (r *Registry) Register(op Operation) error {
	if op.Name == "" || op.Relation == "" {
		return fmt.Errorf("services: operation needs a name and a relation")
	}
	if _, err := op.Pattern(); err != nil {
		return err
	}
	if attrs, ok := r.schema[op.Relation]; ok {
		if len(attrs) != len(op.Attributes) {
			return fmt.Errorf("services: relation %s declared with %d attributes, operation %s uses %d",
				op.Relation, len(attrs), op.Name, len(op.Attributes))
		}
		for i := range attrs {
			if attrs[i] != op.Attributes[i] {
				return fmt.Errorf("services: relation %s attribute %d is %s, operation %s says %s",
					op.Relation, i+1, attrs[i], op.Name, op.Attributes[i])
			}
		}
	} else {
		r.schema[op.Relation] = append([]string(nil), op.Attributes...)
	}
	for _, existing := range r.ops {
		if existing.Name == op.Name {
			return fmt.Errorf("services: duplicate operation name %s", op.Name)
		}
	}
	r.ops = append(r.ops, op)
	return nil
}

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(op Operation) *Registry {
	if err := r.Register(op); err != nil {
		panic(err)
	}
	return r
}

// PatternSet derives the access patterns of all registered operations.
func (r *Registry) PatternSet() (*access.Set, error) {
	set := access.NewSet()
	for _, op := range r.ops {
		p, err := op.Pattern()
		if err != nil {
			return nil, err
		}
		if err := set.Add(op.Relation, p); err != nil {
			return nil, err
		}
	}
	return set, nil
}

// Operations returns the operations backing the relation, in
// registration order; with an empty name, all operations.
func (r *Registry) Operations(relation string) []Operation {
	var out []Operation
	for _, op := range r.ops {
		if relation == "" || op.Relation == relation {
			out = append(out, op)
		}
	}
	return out
}

// Attributes returns the attribute names of the relation, or nil.
func (r *Registry) Attributes(relation string) []string {
	return append([]string(nil), r.schema[relation]...)
}

// Relations returns the backed relation names, sorted.
func (r *Registry) Relations() []string {
	out := make([]string, 0, len(r.schema))
	for name := range r.schema {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OperationFor returns a registered operation of the relation whose
// pattern equals p, for reporting which operation a plan step invokes.
func (r *Registry) OperationFor(relation string, p access.Pattern) (Operation, bool) {
	for _, op := range r.ops {
		if op.Relation != relation {
			continue
		}
		q, err := op.Pattern()
		if err == nil && q == p {
			return op, true
		}
	}
	return Operation{}, false
}
