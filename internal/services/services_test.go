package services

import (
	"testing"

	"repro/internal/access"
)

// The paper's Section 1 example: op_B: author → {(isbn, title)} becomes
// B^oio.
func bookOps(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	ops := []Operation{
		{Name: "getByISBN", Relation: "B", Attributes: []string{"isbn", "author", "title"}, Inputs: []string{"isbn"}},
		{Name: "getByAuthor", Relation: "B", Attributes: []string{"isbn", "author", "title"}, Inputs: []string{"author"}},
		{Name: "scanCatalog", Relation: "C", Attributes: []string{"isbn", "author"}},
		{Name: "inLibrary", Relation: "L", Attributes: []string{"isbn"}, Inputs: []string{"isbn"}},
	}
	for _, op := range ops {
		if err := r.Register(op); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestOperationPattern(t *testing.T) {
	op := Operation{Name: "getByAuthor", Relation: "B",
		Attributes: []string{"isbn", "author", "title"}, Inputs: []string{"author"}}
	p, err := op.Pattern()
	if err != nil {
		t.Fatal(err)
	}
	if p != "oio" {
		t.Errorf("Pattern = %s, want oio", p)
	}
	if got, want := op.Signature(), "getByAuthor: author -> {(isbn, title)}"; got != want {
		t.Errorf("Signature = %q, want %q", got, want)
	}
}

func TestOperationValidation(t *testing.T) {
	bad := []Operation{
		{Name: "x", Relation: "R"},
		{Name: "x", Relation: "R", Attributes: []string{"a", "a"}},
		{Name: "x", Relation: "R", Attributes: []string{"a"}, Inputs: []string{"nope"}},
	}
	for _, op := range bad {
		if _, err := op.Pattern(); err == nil {
			t.Errorf("Pattern for %+v succeeded, want error", op)
		}
	}
}

func TestRegistryPatternSet(t *testing.T) {
	r := bookOps(t)
	ps, err := r.PatternSet()
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the pattern set of Example 1, with L^i instead of L^o.
	if got, want := ps.String(), "B^ioo B^oio C^oo L^i"; got != want {
		t.Errorf("PatternSet = %q, want %q", got, want)
	}
}

func TestRegistryConsistency(t *testing.T) {
	r := bookOps(t)
	if err := r.Register(Operation{Name: "getByISBN", Relation: "X", Attributes: []string{"a"}}); err == nil {
		t.Error("duplicate name must be rejected")
	}
	if err := r.Register(Operation{Name: "bad1", Relation: "B", Attributes: []string{"isbn", "author"}, Inputs: []string{"isbn"}}); err == nil {
		t.Error("attribute count mismatch must be rejected")
	}
	if err := r.Register(Operation{Name: "bad2", Relation: "B", Attributes: []string{"isbn", "title", "author"}, Inputs: []string{"isbn"}}); err == nil {
		t.Error("attribute order mismatch must be rejected")
	}
	if err := r.Register(Operation{Name: "", Relation: "B"}); err == nil {
		t.Error("empty name must be rejected")
	}
}

func TestRegistryLookups(t *testing.T) {
	r := bookOps(t)
	if got := r.Relations(); len(got) != 3 || got[0] != "B" {
		t.Errorf("Relations = %v", got)
	}
	if got := r.Operations("B"); len(got) != 2 {
		t.Errorf("Operations(B) = %v", got)
	}
	if got := r.Operations(""); len(got) != 4 {
		t.Errorf("Operations() = %v", got)
	}
	if got := r.Attributes("C"); len(got) != 2 || got[1] != "author" {
		t.Errorf("Attributes(C) = %v", got)
	}
	op, ok := r.OperationFor("B", access.MustPattern("oio"))
	if !ok || op.Name != "getByAuthor" {
		t.Errorf("OperationFor(B, oio) = %+v %v", op, ok)
	}
	if _, ok := r.OperationFor("B", access.MustPattern("ooo")); ok {
		t.Error("unregistered pattern must not resolve")
	}
}
