package constraints

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parser"
	"repro/internal/workload"
)

func TestParse(t *testing.T) {
	s, err := Parse(`R[1] < S[0]; T[0,1] < U[1,0]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("parsed %d INDs", len(s))
	}
	if s[0].From != "R" || s[0].FromCols[0] != 1 || s[0].To != "S" || s[0].ToCols[0] != 0 {
		t.Errorf("IND 0 = %+v", s[0])
	}
	if got := s[1].String(); got != "T[[0 1]] ⊆ U[[1 0]]" {
		t.Logf("String() = %q (format informational)", got)
	}
	for _, bad := range []string{`R < S[0]`, `R[] < S[0]`, `R[0] < S[0,1]`, `R[x] < S[0]`, `R[0] < S[0]; garbage`} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestHoldsAndViolations(t *testing.T) {
	s := MustParse(`R[1] < S[0]`)
	in := engine.NewInstance().
		MustAdd("R", "x1", "z1").
		MustAdd("S", "z1")
	if !s.Holds(in) {
		t.Error("dependency satisfied but Holds is false")
	}
	in.MustAdd("R", "x2", "z9")
	if s.Holds(in) || s.Violations(in) != 1 {
		t.Errorf("want 1 violation, got %d", s.Violations(in))
	}
}

// Example 6 of the paper: with R.z ⊆ S.z the first disjunct of the
// Example 4 plan is refuted at compile time, and the query becomes
// feasible after semantic optimization.
func TestExample6SemanticOptimization(t *testing.T) {
	u := parser.MustUCQ(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := parser.MustPatterns(`S^o R^oo B^oi T^oo`)
	inds := MustParse(`R[1] < S[0]`)

	if core.Feasible(u, ps).Feasible {
		t.Fatal("without constraints the query is infeasible")
	}
	opt := inds.Optimize(u)
	if len(opt.Rules) != 1 {
		t.Fatalf("optimizer kept %d rules, want 1:\n%s", len(opt.Rules), opt)
	}
	res := core.Feasible(opt, ps)
	if !res.Feasible {
		t.Errorf("optimized query must be feasible: %v", res)
	}
}

func TestRefutesRuleRequiresFullCover(t *testing.T) {
	// S has arity 2; the IND pins only column 0, so ¬S(z, w) is not
	// refuted (some S-tuple has z in column 0, but maybe not (z, w)).
	inds := MustParse(`R[1] < S[0]`)
	r := parser.MustCQ(`Q(x) :- R(x, z), S(z, w), not S(z, w).`)
	// This rule is unsatisfiable syntactically anyway; use a cleaner one:
	r2 := parser.MustCQ(`Q(x) :- R(x, z), T(w), not S(z, w).`)
	if inds.RefutesRule(r2) {
		t.Error("partial-cover dependency must not refute a wider negated literal")
	}
	_ = r
	// Full cover with arity-1 S refutes.
	r3 := parser.MustCQ(`Q(x) :- R(x, z), not S(z).`)
	if !inds.RefutesRule(r3) {
		t.Error("Example 6 shape must be refuted")
	}
	// Mismatched variables do not refute.
	r4 := parser.MustCQ(`Q(x) :- R(x, z), S(w), not S(x).`)
	if inds.RefutesRule(r4) {
		t.Error("different variable must not be refuted")
	}
}

func TestMultiColumnIND(t *testing.T) {
	inds := MustParse(`E[0,2] < F[1,0]`)
	r := parser.MustCQ(`Q(x) :- E(x, y, z), not F(z, x).`)
	if !inds.RefutesRule(r) {
		t.Error("multi-column dependency must refute")
	}
	r2 := parser.MustCQ(`Q(x) :- E(x, y, z), not F(x, z).`)
	if inds.RefutesRule(r2) {
		t.Error("swapped columns must not refute")
	}
}

// Optimize preserves semantics on instances satisfying the constraints:
// answers agree with the unoptimized query.
func TestOptimizePreservesSemantics(t *testing.T) {
	u := parser.MustUCQ(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	inds := MustParse(`R[1] < S[0]`)
	opt := inds.Optimize(u)
	g := workload.New(77)
	s := workload.Schema{Relations: []workload.RelDef{
		{Name: "R", Arity: 2}, {Name: "S", Arity: 1}, {Name: "B", Arity: 2}, {Name: "T", Arity: 2},
	}}
	for trial := 0; trial < 25; trial++ {
		in := engine.NewInstance()
		if err := in.LoadFacts(g.FactsWithInclusion(s, 8, 6, "R", 1, "S", 0)); err != nil {
			t.Fatal(err)
		}
		if !inds.Holds(in) {
			t.Fatal("generator must satisfy the dependency")
		}
		a, err := engine.AnswerNaive(u, in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := engine.AnswerNaive(opt, in)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("optimization changed answers:\noriginal %s\noptimized %s", a, b)
		}
	}
}
