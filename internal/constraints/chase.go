package constraints

import (
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/sources"
)

// Chase extends the rule body with the positive atoms the inclusion
// dependencies imply: for every dependency From[c̄] ⊆ To[d̄] and every
// positive From-literal whose projection has no matching To-literal, a
// To-atom is added with the projected terms at d̄ and fresh existential
// variables elsewhere. On instances satisfying the dependencies the
// chased rule is equivalent to the original; syntactic tests (notably
// Proposition 8 unsatisfiability) then see consequences the bare rule
// hides — e.g. with R[1] ⊆ S[0], chasing R(x,z) ∧ ¬S(z) adds S(z) and
// exposes the complementary pair.
//
// Cyclic dependency sets can chase forever; maxRounds caps the
// iteration, and the second return value reports whether a fixpoint was
// reached within the cap (the result is sound either way — every added
// atom is implied).
func (s Set) Chase(q logic.CQ, maxRounds int) (logic.CQ, bool) {
	if q.False {
		return q.Clone(), true
	}
	out := q.Clone()
	fresh := 0
	for round := 0; round < maxRounds; round++ {
		added := false
		for _, d := range s {
			var toAdd []logic.Literal
			for _, pos := range out.Body {
				if pos.Negated || pos.Atom.Pred != d.From {
					continue
				}
				if maxCol(d.FromCols) >= pos.Atom.Arity() {
					continue
				}
				if s.hasMatchingTo(out, d, pos.Atom) || hasMatchingIn(toAdd, d, pos.Atom) {
					continue
				}
				toArity := d.toArity(out)
				if toArity < 0 {
					// Arity of To is unknown (no To-literal in the rule);
					// infer the minimal arity covering ToCols.
					toArity = maxCol(d.ToCols) + 1
				}
				args := make([]logic.Term, toArity)
				for i := range args {
					args[i] = logic.Var(fmt.Sprintf("χ%d", fresh))
					fresh++
				}
				for i := range d.FromCols {
					args[d.ToCols[i]] = pos.Atom.Args[d.FromCols[i]]
				}
				toAdd = append(toAdd, logic.Pos(logic.NewAtom(d.To, args...)))
			}
			if len(toAdd) > 0 {
				out.Body = append(out.Body, toAdd...)
				added = true
			}
		}
		if !added {
			return out, true
		}
	}
	return out, false
}

// toArity returns the arity the rule already uses for relation d.To, or
// -1 when the relation does not occur.
func (d IND) toArity(q logic.CQ) int {
	for _, l := range q.Body {
		if l.Atom.Pred == d.To {
			return l.Atom.Arity()
		}
	}
	return -1
}

// hasMatchingTo reports whether the rule has a positive To-literal whose
// d̄-projection equals the From-atom's c̄-projection.
func (s Set) hasMatchingTo(q logic.CQ, d IND, from logic.Atom) bool {
	for _, l := range q.Body {
		if l.Negated || l.Atom.Pred != d.To {
			continue
		}
		if matchesProjection(l.Atom, d, from) {
			return true
		}
	}
	return false
}

func hasMatchingIn(lits []logic.Literal, d IND, from logic.Atom) bool {
	for _, l := range lits {
		if l.Atom.Pred == d.To && matchesProjection(l.Atom, d, from) {
			return true
		}
	}
	return false
}

func matchesProjection(to logic.Atom, d IND, from logic.Atom) bool {
	if maxCol(d.ToCols) >= to.Arity() {
		return false
	}
	for i := range d.FromCols {
		if to.Args[d.ToCols[i]] != from.Args[d.FromCols[i]] {
			return false
		}
	}
	return true
}

// DefaultChaseRounds bounds the chase for the convenience wrappers.
const DefaultChaseRounds = 16

// SatisfiableUnder reports whether the rule is satisfiable on some
// instance satisfying the dependencies: the chased rule must pass the
// Proposition 8 check. False answers are definite; true answers are
// sound for the syntactic criterion (as in the paper, which only uses
// complementary-pair unsatisfiability).
func (s Set) SatisfiableUnder(q logic.CQ) bool {
	chased, _ := s.Chase(q, DefaultChaseRounds)
	return containment.Satisfiable(chased)
}

// OptimizeChase drops rules whose chase is unsatisfiable — a strictly
// stronger compile-time semantic optimizer than Optimize/RefutesRule,
// since the chase follows dependency chains (R ⊆ S ⊆ T) and partial
// column covers that the direct pattern match misses.
func (s Set) OptimizeChase(u logic.UCQ) logic.UCQ {
	var rules []logic.CQ
	for _, r := range u.Rules {
		if !s.SatisfiableUnder(r) {
			continue
		}
		rules = append(rules, r.Clone())
	}
	return logic.UCQ{Rules: rules}
}

// FeasibleUnder decides feasibility modulo the dependencies: rules
// refuted by the chase are dropped first (they are empty on every legal
// instance), then the paper's FEASIBLE runs on the remainder. A query
// infeasible in general may be feasible under constraints (Example 6).
func FeasibleUnder(u logic.UCQ, ps *access.Set, s Set) core.FeasibleResult {
	return core.Feasible(s.OptimizeChase(u), ps)
}

// AnswerStarUnder runs ANSWER* on the semantically optimized query:
// rules the dependencies refute are dropped before planning, which can
// remove null-producing overestimate rules and turn an "unknown
// completeness" report into a certified-complete one (the compile-time
// counterpart of Example 6's runtime observation). The caller must only
// use it when the catalog's data satisfies the dependencies.
func AnswerStarUnder(u logic.UCQ, ps *access.Set, cat *sources.Catalog, s Set) (engine.AnswerStar, error) {
	return AnswerStarUnderContext(context.Background(), nil, u, ps, cat, s)
}

// AnswerStarUnderContext is AnswerStarUnder honoring a context and an
// explicit runtime (nil means the engine's default runtime).
func AnswerStarUnderContext(ctx context.Context, rt *engine.Runtime, u logic.UCQ, ps *access.Set, cat *sources.Catalog, s Set) (engine.AnswerStar, error) {
	if rt == nil {
		rt = engine.DefaultRuntime()
	}
	return rt.RunAnswerStar(ctx, s.OptimizeChase(u), ps, cat)
}
