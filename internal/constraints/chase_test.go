package constraints

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/workload"
)

func TestChaseAddsImpliedAtom(t *testing.T) {
	inds := MustParse(`R[1] < S[0]`)
	q := parser.MustCQ(`Q(x) :- R(x, z).`)
	chased, done := inds.Chase(q, DefaultChaseRounds)
	if !done {
		t.Fatal("chase must reach a fixpoint")
	}
	if len(chased.Body) != 2 || chased.Body[1].Atom.Pred != "S" {
		t.Fatalf("chased = %s", chased)
	}
	if chased.Body[1].Atom.Args[0] != q.Body[0].Atom.Args[1] {
		t.Errorf("projected term not propagated: %s", chased)
	}
	// Idempotent: chasing again adds nothing.
	again, _ := inds.Chase(chased, DefaultChaseRounds)
	if len(again.Body) != len(chased.Body) {
		t.Errorf("chase not idempotent: %s", again)
	}
}

func TestChaseExposesUnsatisfiability(t *testing.T) {
	inds := MustParse(`R[1] < S[0]`)
	q := parser.MustCQ(`Q(x) :- R(x, z), not S(z).`)
	if inds.SatisfiableUnder(q) {
		t.Error("Example 6 rule must be unsatisfiable under the dependency")
	}
	// Without the negation it stays satisfiable.
	q2 := parser.MustCQ(`Q(x) :- R(x, z), S(z).`)
	if !inds.SatisfiableUnder(q2) {
		t.Error("positive rule must stay satisfiable")
	}
}

// The chase follows dependency chains the direct RefutesRule check
// cannot see.
func TestChaseFollowsChains(t *testing.T) {
	inds := MustParse(`R[1] < S[0]; S[0] < T[0]`)
	q := parser.MustCQ(`Q(x) :- R(x, z), not T(z).`)
	if inds.RefutesRule(q) {
		t.Fatal("the direct check must NOT see the two-step chain (that is the point)")
	}
	if inds.SatisfiableUnder(q) {
		t.Error("the chase must refute through the chain R ⊆ S ⊆ T")
	}
}

func TestChasePartialCoverDoesNotRefute(t *testing.T) {
	// S has arity 2, the dependency pins only column 0: ¬S(z, w) is not
	// refuted (the implied S-tuple may differ in column 1).
	inds := MustParse(`R[1] < S[0]`)
	q := parser.MustCQ(`Q(x) :- R(x, z), W(w), not S(z, w).`)
	if !inds.SatisfiableUnder(q) {
		t.Error("partial cover must not refute")
	}
}

func TestChaseCyclicBudget(t *testing.T) {
	// E[1] ⊆ E[0] keeps generating new atoms with fresh variables.
	inds := MustParse(`E[1] < E[0]`)
	q := parser.MustCQ(`Q(x) :- E(x, y).`)
	chased, done := inds.Chase(q, 3)
	if done {
		t.Error("cyclic chase must hit the round cap")
	}
	if len(chased.Body) <= 1 {
		t.Error("cyclic chase must still add implied atoms")
	}
	if len(chased.Body) > 5 {
		t.Errorf("round cap not respected: %d atoms", len(chased.Body))
	}
}

func TestFeasibleUnder(t *testing.T) {
	u := parser.MustUCQ(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := parser.MustPatterns(`S^o R^oo B^oi T^oo`)
	inds := MustParse(`R[1] < S[0]`)
	if core.Feasible(u, ps).Feasible {
		t.Fatal("infeasible without constraints")
	}
	res := FeasibleUnder(u, ps, inds)
	if !res.Feasible {
		t.Errorf("feasible under the dependency: %v", res)
	}
}

// AnswerStarUnder certifies completeness at compile time: the Example 4
// view under the Example 6 foreign key plans without the null rule, so
// ANSWER* reports a complete answer with no overestimate gap.
func TestAnswerStarUnder(t *testing.T) {
	u := parser.MustUCQ(`
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := parser.MustPatterns(`S^o R^oo B^oi T^oo`)
	inds := MustParse(`R[1] < S[0]`)
	in := engine.NewInstance()
	in.MustAdd("R", "x1", "z1")
	in.MustAdd("S", "z1")
	in.MustAdd("B", "x1", "y1")
	in.MustAdd("T", "t1", "t2")
	if !inds.Holds(in) {
		t.Fatal("instance must satisfy the dependency")
	}
	cat, err := in.Catalog(ps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnswerStarUnder(u, ps, cat, inds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.Over.HasNull() {
		t.Errorf("optimized ANSWER* must be complete and null-free: %s", res.Report())
	}
	// Sound: equals the unoptimized underestimate's answers (and ground
	// truth) on this legal instance.
	plain, err := engine.RunAnswerStar(u, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Under.Equal(plain.Under) {
		t.Errorf("answers differ: %s vs %s", res.Under, plain.Under)
	}
}

// Chase preserves answers on instances satisfying the dependencies.
func TestChasePreservesSemantics(t *testing.T) {
	inds := MustParse(`R[1] < S[0]`)
	queries := []string{
		`Q(x) :- R(x, z).`,
		`Q(x) :- R(x, z), not S(z).`,
		`Q(x) :- R(x, z), S(z).`,
	}
	g := workload.New(123)
	s := workload.Schema{Relations: []workload.RelDef{
		{Name: "R", Arity: 2}, {Name: "S", Arity: 1},
	}}
	for trial := 0; trial < 20; trial++ {
		in := engine.NewInstance()
		if err := in.LoadFacts(g.FactsWithInclusion(s, 6, 5, "R", 1, "S", 0)); err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			q := parser.MustCQ(qs)
			chased, _ := inds.Chase(q, DefaultChaseRounds)
			a, err := engine.AnswerNaive(logic.AsUnion(q), in)
			if err != nil {
				t.Fatal(err)
			}
			b, err := engine.AnswerNaive(logic.AsUnion(chased), in)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("chase changed answers for %q on a legal instance:\n%s\nvs\n%s", qs, a, b)
			}
		}
	}
}
