// Package constraints implements inclusion dependencies (foreign keys)
// and the semantic optimization of Example 6 of the paper: when
// R[z] ⊆ S[z] holds, a rule containing R(x, z) and ¬S(z) is
// unsatisfiable on every instance satisfying the constraint, so a
// semantic optimizer can discard it at compile time — turning some
// infeasible plans into feasible ones and sharpening PLAN* estimates.
// The paper lists reasoning with integrity constraints as the natural
// extension of its framework (Section 6).
package constraints

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/logic"
)

// IND is an inclusion dependency From[FromCols] ⊆ To[ToCols]: for every
// tuple of From, the values at FromCols appear as the values at ToCols
// of some tuple of To. When ToCols covers every column of To, the
// dependency pins the full To-tuple (the case needed to refute a negated
// To literal).
type IND struct {
	From     string
	FromCols []int
	To       string
	ToCols   []int
}

// Validate checks structural sanity.
func (d IND) Validate() error {
	if len(d.FromCols) == 0 || len(d.FromCols) != len(d.ToCols) {
		return fmt.Errorf("constraints: %s: column lists must be nonempty and equal length", d)
	}
	seen := map[int]bool{}
	for _, c := range d.ToCols {
		if seen[c] {
			return fmt.Errorf("constraints: %s: repeated target column %d", d, c)
		}
		seen[c] = true
	}
	return nil
}

// String renders the dependency, e.g. R[1] ⊆ S[0].
func (d IND) String() string {
	return fmt.Sprintf("%s%v ⊆ %s%v", d.From, d.FromCols, d.To, d.ToCols)
}

// Set is a collection of inclusion dependencies.
type Set []IND

// Parse reads dependencies in the form "R[1] < S[0]; T[0,1] < U[1,0]".
func Parse(src string) (Set, error) {
	var out Set
	for _, part := range strings.Split(src, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var d IND
		halves := strings.SplitN(part, "<", 2)
		if len(halves) != 2 {
			return nil, fmt.Errorf("constraints: %q: want R[cols] < S[cols]", part)
		}
		var err error
		d.From, d.FromCols, err = parseSide(halves[0])
		if err != nil {
			return nil, err
		}
		d.To, d.ToCols, err = parseSide(halves[1])
		if err != nil {
			return nil, err
		}
		if err := d.Validate(); err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func parseSide(s string) (string, []int, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '[')
	if open < 0 || !strings.HasSuffix(s, "]") {
		return "", nil, fmt.Errorf("constraints: %q: want Name[col,...]", s)
	}
	name := strings.TrimSpace(s[:open])
	var cols []int
	for _, c := range strings.Split(s[open+1:len(s)-1], ",") {
		c = strings.TrimSpace(c)
		var n int
		if _, err := fmt.Sscanf(c, "%d", &n); err != nil || n < 0 {
			return "", nil, fmt.Errorf("constraints: %q: bad column %q", s, c)
		}
		cols = append(cols, n)
	}
	return name, cols, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) Set {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// Holds reports whether the instance satisfies every dependency.
func (s Set) Holds(in *engine.Instance) bool {
	return s.Violations(in) == 0
}

// Violations counts From-tuples whose projection is missing from To.
func (s Set) Violations(in *engine.Instance) int {
	bad := 0
	for _, d := range s {
		// Index To's projections.
		proj := map[string]bool{}
		for _, row := range in.Rows(d.To) {
			proj[projectKey(row, d.ToCols)] = true
		}
		for _, row := range in.Rows(d.From) {
			if !proj[projectKey(row, d.FromCols)] {
				bad++
			}
		}
	}
	return bad
}

func projectKey(row []string, cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = row[c]
	}
	return strings.Join(parts, "\x1f")
}

// RefutesRule reports whether the rule body is unsatisfiable on every
// instance satisfying the dependencies: it contains a positive literal
// From(ā) and a negated literal ¬To(b̄) such that some dependency maps
// ā's FromCols exactly onto b̄'s ToCols, and ToCols covers all of To's
// columns (so the dependency pins the whole negated tuple). Example 6 of
// the paper is the one-column case R[1] ⊆ S[0] against
// R(x, z), ¬S(z).
func (s Set) RefutesRule(r logic.CQ) bool {
	if r.False {
		return true
	}
	for _, d := range s {
		for _, pos := range r.Body {
			if pos.Negated || pos.Atom.Pred != d.From {
				continue
			}
			if maxCol(d.FromCols) >= pos.Atom.Arity() {
				continue
			}
			for _, neg := range r.Body {
				if !neg.Negated || neg.Atom.Pred != d.To {
					continue
				}
				if len(d.ToCols) != neg.Atom.Arity() || maxCol(d.ToCols) >= neg.Atom.Arity() {
					continue // dependency does not pin the whole tuple
				}
				match := true
				for i := range d.FromCols {
					if pos.Atom.Args[d.FromCols[i]] != neg.Atom.Args[d.ToCols[i]] {
						match = false
						break
					}
				}
				if match {
					return true
				}
			}
		}
	}
	return false
}

func maxCol(cols []int) int {
	m := -1
	for _, c := range cols {
		if c > m {
			m = c
		}
	}
	return m
}

// Optimize drops rules refuted by the dependencies (the compile-time
// semantic optimization of Example 6). The result is equivalent to the
// input on every instance satisfying the dependencies.
func (s Set) Optimize(u logic.UCQ) logic.UCQ {
	var rules []logic.CQ
	for _, r := range u.Rules {
		if s.RefutesRule(r) {
			continue
		}
		rules = append(rules, r.Clone())
	}
	return logic.UCQ{Rules: rules}
}
