package workload

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/logic"
)

// ChainQuery builds Q(x0, xn) :- R1(x0, x1), …, Rn(x{n-1}, xn) with
// patterns Ri^io, and R1 additionally ^oo. Written in this order the
// query is executable; Reversed scrambles it so that ANSWERABLE needs
// its full quadratic behaviour to reorder (one literal is recovered per
// round). This is the scaling family for experiments E1 and E2.
func ChainQuery(n int) (logic.CQ, *access.Set) {
	ps := access.NewSet()
	q := logic.CQ{HeadPred: "Q", HeadArgs: []logic.Term{logic.Var("x0"), logic.Var(fmt.Sprintf("x%d", n))}}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("R%d", i)
		_ = ps.Add(name, "io")
		q.Body = append(q.Body, logic.Pos(logic.NewAtom(name,
			logic.Var(fmt.Sprintf("x%d", i-1)), logic.Var(fmt.Sprintf("x%d", i)))))
	}
	_ = ps.Add("R1", "oo")
	return q, ps
}

// Reversed returns the query with its body literal order reversed.
func Reversed(q logic.CQ) logic.CQ {
	out := q.Clone()
	for i, j := 0, len(out.Body)-1; i < j; i, j = i+1, j-1 {
		out.Body[i], out.Body[j] = out.Body[j], out.Body[i]
	}
	return out
}

// StarQuery builds Q(x) :- R1(x, y1), …, Rn(x, yn), not S(x) with
// patterns Ri^io (plus R1^oo) and S^i: executable as written once x is
// bound. Used for fan-out-shaped plans in the benchmarks.
func StarQuery(n int) (logic.CQ, *access.Set) {
	ps := access.NewSet()
	q := logic.CQ{HeadPred: "Q", HeadArgs: []logic.Term{logic.Var("x")}}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("R%d", i)
		_ = ps.Add(name, "io")
		q.Body = append(q.Body, logic.Pos(logic.NewAtom(name,
			logic.Var("x"), logic.Var(fmt.Sprintf("y%d", i)))))
	}
	_ = ps.Add("R1", "oo")
	_ = ps.Add("S", "i")
	q.Body = append(q.Body, logic.Neg(logic.NewAtom("S", logic.Var("x"))))
	return q, ps
}

// CaseSplitFamily builds the hard instance family for experiment E3:
//
//	P(x) :- R(x), B(y)                          (infeasible part, B^i)
//	Q(x) :- R(x), not S1(x), …, not Sn(x)
//	Q(x) :- R(x), S1(x)
//	…
//	Q(x) :- R(x), Sn(x)
//
// and the query under test is P ∨ Q-rules. ans of the first rule is
// R(x), so FEASIBLE must decide R(x) ⊑ Q, which forces the Wei–Lausen
// recursion to expand every negative literal: the containment tree grows
// with n, exhibiting the Π₂ᴾ-hard behaviour. The query is feasible
// (the case split covers R(x)).
func CaseSplitFamily(n int) (logic.UCQ, *access.Set) {
	ps := access.NewSet()
	_ = ps.Add("R", "o")
	_ = ps.Add("B", "i")
	x := logic.Var("x")
	r := logic.Pos(logic.NewAtom("R", x))

	var rules []logic.CQ
	// The infeasible rule whose answerable part is R(x).
	rules = append(rules, logic.CQ{
		HeadPred: "Q", HeadArgs: []logic.Term{x},
		Body: []logic.Literal{r, logic.Pos(logic.NewAtom("B", logic.Var("y")))},
	})
	// The all-negative rule.
	allNeg := logic.CQ{HeadPred: "Q", HeadArgs: []logic.Term{x}, Body: []logic.Literal{r}}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("S%d", i)
		_ = ps.Add(name, "i")
		allNeg.Body = append(allNeg.Body, logic.Neg(logic.NewAtom(name, x)))
	}
	rules = append(rules, allNeg)
	// One positive rule per Si.
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("S%d", i)
		rules = append(rules, logic.CQ{
			HeadPred: "Q", HeadArgs: []logic.Term{x},
			Body: []logic.Literal{r, logic.Pos(logic.NewAtom(name, x))},
		})
	}
	return logic.UCQ{Rules: rules}, ps
}

// EasyFamily is the polynomial counterpart of CaseSplitFamily for
// experiment E3: same size, but every rule is fully answerable, so
// FEASIBLE exits through the cheap Qᵘ = Qᵒ certificate.
func EasyFamily(n int) (logic.UCQ, *access.Set) {
	ps := access.NewSet()
	_ = ps.Add("R", "o")
	x := logic.Var("x")
	r := logic.Pos(logic.NewAtom("R", x))
	var rules []logic.CQ
	allNeg := logic.CQ{HeadPred: "Q", HeadArgs: []logic.Term{x}, Body: []logic.Literal{r}}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("S%d", i)
		_ = ps.Add(name, "i")
		allNeg.Body = append(allNeg.Body, logic.Neg(logic.NewAtom(name, x)))
	}
	rules = append(rules, allNeg)
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("S%d", i)
		rules = append(rules, logic.CQ{
			HeadPred: "Q", HeadArgs: []logic.Term{x},
			Body: []logic.Literal{r, logic.Pos(logic.NewAtom(name, x))},
		})
	}
	return logic.UCQ{Rules: rules}, ps
}
