package workload

import (
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logic"
)

func TestGeneratedCQIsSafe(t *testing.T) {
	g := New(1)
	s := g.Schema(4, 1, 3)
	cfg := DefaultQueryConfig()
	for i := 0; i < 200; i++ {
		q := g.CQ(s, cfg)
		if !q.Safe() {
			t.Fatalf("generated query %d is unsafe: %s", i, q)
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("generated query %d invalid: %v", i, err)
		}
	}
}

func TestGeneratedUCQSharesHead(t *testing.T) {
	g := New(2)
	s := g.Schema(5, 1, 3)
	cfg := DefaultQueryConfig()
	for i := 0; i < 50; i++ {
		u := g.UCQ(s, 3, cfg)
		if err := u.Validate(); err != nil {
			t.Fatalf("generated union %d invalid: %v\n%s", i, err, u)
		}
		for _, r := range u.Rules {
			if !r.Safe() {
				t.Fatalf("generated union rule unsafe: %s", r)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := New(7).UCQ(New(7).Schema(4, 1, 3), 3, DefaultQueryConfig())
	b := New(7).UCQ(New(7).Schema(4, 1, 3), 3, DefaultQueryConfig())
	if !a.Equal(b) {
		t.Error("same seed must generate the same query")
	}
	c := New(8).UCQ(New(8).Schema(4, 1, 3), 3, DefaultQueryConfig())
	if a.Equal(c) {
		t.Error("different seeds should generate different queries")
	}
}

func TestPatternsRespectArity(t *testing.T) {
	g := New(3)
	s := g.Schema(5, 1, 4)
	ps := g.Patterns(s, 0.5, 2)
	for _, r := range s.Relations {
		if !ps.Has(r.Name) && r.Name != s.Relations[0].Name {
			continue // relation may coincidentally have no pattern? Patterns adds per rel
		}
		for _, p := range ps.Patterns(r.Name) {
			if p.Arity() != r.Arity {
				t.Errorf("pattern %s^%s has wrong arity (relation arity %d)", r.Name, p, r.Arity)
			}
		}
	}
	// First relation must be scannable.
	first := s.Relations[0]
	found := false
	for _, p := range ps.Patterns(first.Name) {
		if p.AllOutput() {
			found = true
		}
	}
	if !found {
		t.Error("first relation must have an all-output pattern")
	}
}

func TestFactsMatchSchema(t *testing.T) {
	g := New(4)
	s := g.Schema(3, 2, 2)
	facts := g.Facts(s, 10, 5)
	if len(facts) != 30 {
		t.Fatalf("got %d facts, want 30", len(facts))
	}
	in := engine.NewInstance()
	if err := in.LoadFacts(facts); err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Relations {
		if in.Arity(r.Name) != r.Arity {
			t.Errorf("relation %s arity %d, want %d", r.Name, in.Arity(r.Name), r.Arity)
		}
	}
}

func TestFactsWithInclusion(t *testing.T) {
	g := New(5)
	s := Schema{Relations: []RelDef{{Name: "R", Arity: 2}, {Name: "S", Arity: 1}}}
	facts := g.FactsWithInclusion(s, 20, 10, "R", 1, "S", 0)
	in := engine.NewInstance()
	if err := in.LoadFacts(facts); err != nil {
		t.Fatal(err)
	}
	for _, row := range in.Rows("R") {
		if !in.Has("S", row[1]) {
			t.Errorf("inclusion violated: R value %q not in S", row[1])
		}
	}
}

func TestChainQuery(t *testing.T) {
	q, ps := ChainQuery(6)
	if len(q.Body) != 6 {
		t.Fatalf("chain body = %d", len(q.Body))
	}
	if !access.ExecutableCQ(q, ps) {
		t.Error("chain must be executable as written")
	}
	rev := Reversed(q)
	if access.ExecutableCQ(rev, ps) {
		t.Error("reversed chain must not be executable as written")
	}
	if !core.Orderable(rev, ps) {
		t.Error("reversed chain must be orderable")
	}
}

func TestStarQuery(t *testing.T) {
	q, ps := StarQuery(5)
	if !access.ExecutableCQ(q, ps) {
		t.Error("star must be executable as written")
	}
	if len(q.Negative()) != 1 {
		t.Error("star must end with a negated filter")
	}
}

func TestCaseSplitFamily(t *testing.T) {
	u, ps := CaseSplitFamily(3)
	if len(u.Rules) != 5 {
		t.Fatalf("case split rules = %d, want 5", len(u.Rules))
	}
	res := core.Feasible(u, ps)
	if !res.Feasible {
		t.Error("case split family must be feasible (split covers R)")
	}
	if res.Verdict != core.VerdictContainment {
		t.Errorf("case split must need containment, got %v", res.Verdict)
	}
	if res.Nodes < 3 {
		t.Errorf("containment tree too small: %d nodes", res.Nodes)
	}

	easy, eps := EasyFamily(3)
	eres := core.Feasible(easy, eps)
	if !eres.Feasible || eres.Verdict != core.VerdictUnderEqualsOver {
		t.Errorf("easy family must be feasible via the fast path, got %v", eres)
	}
}

// Hard instances grow: the containment tree of CaseSplitFamily(n) gets
// strictly larger with n.
func TestCaseSplitGrowth(t *testing.T) {
	var prev int
	for n := 1; n <= 4; n++ {
		u, ps := CaseSplitFamily(n)
		res := core.Feasible(u, ps)
		if !res.Feasible {
			t.Fatalf("n=%d must be feasible", n)
		}
		if res.Nodes <= prev {
			t.Errorf("n=%d: nodes %d did not grow beyond %d", n, res.Nodes, prev)
		}
		prev = res.Nodes
	}
}

func TestPaperExamples(t *testing.T) {
	for _, ex := range PaperExamples() {
		t.Run(ex.Name, func(t *testing.T) {
			if got := core.Executable(ex.Query, ex.Patterns); got != ex.Executable {
				t.Errorf("executable = %v, want %v", got, ex.Executable)
			}
			if got := core.OrderableUCQ(ex.Query, ex.Patterns); got != ex.Orderable {
				t.Errorf("orderable = %v, want %v", got, ex.Orderable)
			}
			if got := core.Feasible(ex.Query, ex.Patterns).Feasible; got != ex.Feasible {
				t.Errorf("feasible = %v, want %v", got, ex.Feasible)
			}
		})
	}
}

func TestGeneratedQueriesExerciseFeasible(t *testing.T) {
	g := New(11)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.55, 2)
	cfg := QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 6}
	feasible, infeasible, blown := 0, 0, 0
	for i := 0; i < 60; i++ {
		u := g.UCQ(s, 2, cfg)
		res, err := core.FeasibleLimited(u, ps, 50_000)
		if err != nil {
			blown++ // Π₂ᴾ worst case hit; expected occasionally
			continue
		}
		if res.Feasible {
			feasible++
		} else {
			infeasible++
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Errorf("workload must produce both outcomes: feasible=%d infeasible=%d blown=%d", feasible, infeasible, blown)
	}
	if blown > 30 {
		t.Errorf("too many budget blowups (%d/60); generator or checker mis-tuned", blown)
	}
	_ = logic.UCQ{}
}
