package workload

import (
	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/parser"
)

// PaperExample is one worked example of the paper, with its expected
// classification, used by tests and by cmd/paperbench.
type PaperExample struct {
	Name        string
	Description string
	Query       logic.UCQ
	Patterns    *access.Set
	// Expected properties (from the paper's prose).
	Executable bool
	Orderable  bool
	Feasible   bool
}

// PaperExamples returns the paper's worked feasibility examples
// (Examples 1, 3, 4, 9, 10; the remaining examples concern runtime
// behaviour and are exercised by the engine tests and cmd/answer).
func PaperExamples() []PaperExample {
	return []PaperExample{
		{
			Name:        "example-1",
			Description: "book store: executable after reordering (calling C first binds i and a)",
			Query:       parser.MustUCQ(`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`),
			Patterns:    parser.MustPatterns(`B^ioo B^oio C^oo L^o`),
			Executable:  false,
			Orderable:   true,
			Feasible:    true,
		},
		{
			Name:        "example-3",
			Description: "feasible but not orderable: i' and a' cannot be bound, yet the union is equivalent to Q'(a) :- L(i), B(i,a,t)",
			Query: parser.MustUCQ(`
				Q(a) :- B(i, a, t), L(i), B(i', a', t).
				Q(a) :- B(i, a, t), L(i), not B(i', a', t).
			`),
			Patterns:   parser.MustPatterns(`B^ioo B^oio L^o`),
			Executable: false,
			Orderable:  false,
			Feasible:   true,
		},
		{
			Name:        "example-4",
			Description: "under/overestimate plans with a null head variable; infeasible because B^oi can never be called",
			Query: parser.MustUCQ(`
				Q(x, y) :- not S(z), R(x, z), B(x, y).
				Q(x, y) :- T(x, y).
			`),
			Patterns:   parser.MustPatterns(`S^o R^oo B^oi T^oo`),
			Executable: false,
			Orderable:  false,
			Feasible:   false,
		},
		{
			Name:        "example-9",
			Description: "CQ processing: ans(Q) = F(x), B(x), F(z) and the containment check decides feasibility",
			Query:       parser.MustUCQ(`Q(x) :- F(x), B(x), B(y), F(z).`),
			Patterns:    parser.MustPatterns(`F^o B^i`),
			Executable:  false,
			Orderable:   false,
			Feasible:    true,
		},
		{
			Name:        "example-10",
			Description: "UCQ processing: the B(y) disjunct is absorbed by the F(x) disjunct",
			Query: parser.MustUCQ(`
				Q(x) :- F(x), G(x).
				Q(x) :- F(x), H(x), B(y).
				Q(x) :- F(x).
			`),
			Patterns:   parser.MustPatterns(`F^o G^o H^o B^i`),
			Executable: false,
			Orderable:  false,
			Feasible:   true,
		},
	}
}
