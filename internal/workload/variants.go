package workload

// Query variants for cache experiments: semantically identical rewrites
// of a query that a textual cache misses but the canonical plan cache
// must hit — α-renamings and redundant-literal padding.

import (
	"repro/internal/logic"
)

// AlphaRename returns u with every variable renamed injectively by
// appending "_r<tag>" — a fresh α-variant of the same query. Constants
// and the head predicate are untouched, so the result is isomorphic
// (hence equivalent) to u and executable wherever u is.
func AlphaRename(u logic.UCQ, tag string) logic.UCQ {
	out := u.Clone()
	for i := range out.Rules {
		out.Rules[i] = renameCQ(out.Rules[i], "_r"+tag)
	}
	return out
}

func renameCQ(q logic.CQ, suffix string) logic.CQ {
	rename := func(t logic.Term) logic.Term {
		if t.IsVar() {
			t.Name += suffix
		}
		return t
	}
	for i := range q.HeadArgs {
		q.HeadArgs[i] = rename(q.HeadArgs[i])
	}
	for i := range q.Body {
		for j := range q.Body[i].Atom.Args {
			q.Body[i].Atom.Args[j] = rename(q.Body[i].Atom.Args[j])
		}
	}
	return q
}

// PadRedundant returns u with the last positive literal of every rule
// duplicated — a non-minimal but equivalent rewrite. The duplicate is
// answerable exactly where the original is (same variables, already
// bound when it repeats), so the padded query stays executable; query
// minimization removes it, so the canonical plan cache still hits.
// Rules with no positive literal are returned unchanged.
func PadRedundant(u logic.UCQ) logic.UCQ {
	out := u.Clone()
	for i := range out.Rules {
		r := &out.Rules[i]
		if r.False {
			continue
		}
		for j := len(r.Body) - 1; j >= 0; j-- {
			if !r.Body[j].Negated {
				dup := r.Body[j].Clone()
				r.Body = append(r.Body, dup)
				break
			}
		}
	}
	return out
}
