// Package workload generates schemas, access patterns, queries, and
// database instances for property tests, experiments, and benchmarks.
// All generation is driven by an explicit seed so every experiment is
// reproducible. It also provides structured query families (chains,
// stars, case splits) whose feasibility behaviour is known analytically,
// and the paper's worked examples as named fixtures.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/parser"
)

// Gen is a seeded generator.
type Gen struct {
	rng *rand.Rand
}

// New returns a generator with the given seed.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// RelDef names a relation and its arity.
type RelDef struct {
	Name  string
	Arity int
}

// Schema is a list of relations.
type Schema struct {
	Relations []RelDef
}

// Schema generates numRels relations R0…R{n-1} with arities drawn
// uniformly from [minArity, maxArity].
func (g *Gen) Schema(numRels, minArity, maxArity int) Schema {
	s := Schema{}
	for i := 0; i < numRels; i++ {
		ar := minArity
		if maxArity > minArity {
			ar += g.rng.Intn(maxArity - minArity + 1)
		}
		s.Relations = append(s.Relations, RelDef{Name: fmt.Sprintf("R%d", i), Arity: ar})
	}
	return s
}

// Patterns draws patternsPerRel access patterns for every relation, each
// slot independently being an input with probability inputProb. The
// first relation always gets one all-output pattern so that generated
// queries have at least one possible starting point (mirroring real
// integration scenarios, which always have some scannable source).
func (g *Gen) Patterns(s Schema, inputProb float64, patternsPerRel int) *access.Set {
	set := access.NewSet()
	for i, r := range s.Relations {
		if i == 0 {
			_ = set.Add(r.Name, access.AllOutputPattern(r.Arity))
		}
		for k := 0; k < patternsPerRel; k++ {
			word := make([]byte, r.Arity)
			for j := range word {
				if g.rng.Float64() < inputProb {
					word[j] = 'i'
				} else {
					word[j] = 'o'
				}
			}
			_ = set.Add(r.Name, access.Pattern(word))
		}
	}
	return set
}

// QueryConfig controls random query shape.
type QueryConfig struct {
	// PosLits and NegLits are the number of positive and negative body
	// literals per rule.
	PosLits, NegLits int
	// VarPool is the number of distinct variable names drawn from.
	VarPool int
	// ConstProb is the probability that an argument position holds a
	// constant instead of a variable.
	ConstProb float64
	// HeadVars is the number of distinguished variables.
	HeadVars int
	// DomainSize is the constant pool size used for ConstProb draws and
	// by Facts.
	DomainSize int
}

// DefaultQueryConfig is a reasonable medium-size configuration.
func DefaultQueryConfig() QueryConfig {
	return QueryConfig{PosLits: 4, NegLits: 1, VarPool: 6, ConstProb: 0.1, HeadVars: 2, DomainSize: 8}
}

func (g *Gen) constant(cfg QueryConfig) logic.Term {
	return logic.Const(fmt.Sprintf("c%d", g.rng.Intn(max(1, cfg.DomainSize))))
}

// CQ generates a safe CQ¬ rule over the schema: positive literals are
// drawn first; negative literals and the head use only variables that
// occur positively, so the result is safe in the paper's strict sense.
func (g *Gen) CQ(s Schema, cfg QueryConfig) logic.CQ {
	return g.cqWithHead(s, cfg, nil)
}

// cqWithHead generates a rule; when head is non-nil the rule reuses
// exactly those head variables (for union members sharing a head).
func (g *Gen) cqWithHead(s Schema, cfg QueryConfig, head []logic.Term) logic.CQ {
	pool := make([]string, max(1, cfg.VarPool))
	for i := range pool {
		pool[i] = fmt.Sprintf("v%d", i)
	}
	var body []logic.Literal
	posVars := map[string]bool{}
	var posVarList []string
	for i := 0; i < max(1, cfg.PosLits); i++ {
		r := s.Relations[g.rng.Intn(len(s.Relations))]
		args := make([]logic.Term, r.Arity)
		for j := range args {
			if g.rng.Float64() < cfg.ConstProb {
				args[j] = g.constant(cfg)
				continue
			}
			name := pool[g.rng.Intn(len(pool))]
			args[j] = logic.Var(name)
			if !posVars[name] {
				posVars[name] = true
				posVarList = append(posVarList, name)
			}
		}
		body = append(body, logic.Pos(logic.NewAtom(r.Name, args...)))
	}

	if head == nil {
		k := min(max(0, cfg.HeadVars), len(posVarList))
		head = make([]logic.Term, k)
		perm := g.rng.Perm(len(posVarList))
		for i := 0; i < k; i++ {
			head[i] = logic.Var(posVarList[perm[i]])
		}
	} else {
		// Force the shared head variables into positive literals, never
		// overwriting a position that already holds a head variable
		// (placing h1 must not evict h0).
		isHead := map[string]bool{}
		for _, h := range head {
			if h.IsVar() {
				isHead[h.Name] = true
			}
		}
		for _, h := range head {
			if !h.IsVar() || posVars[h.Name] {
				continue
			}
			for tries := 0; tries < 100; tries++ {
				li := g.rng.Intn(len(body))
				if body[li].Negated || body[li].Atom.Arity() == 0 {
					continue
				}
				aj := g.rng.Intn(body[li].Atom.Arity())
				at := body[li].Atom.Args[aj]
				if at.IsVar() && isHead[at.Name] {
					continue
				}
				body[li].Atom.Args[aj] = h
				posVars[h.Name] = true
				break
			}
			if !posVars[h.Name] {
				// Fall back to a dedicated unary-ish literal using the
				// first relation.
				r := s.Relations[0]
				args := make([]logic.Term, r.Arity)
				for j := range args {
					args[j] = h
				}
				body = append(body, logic.Pos(logic.NewAtom(r.Name, args...)))
				posVars[h.Name] = true
			}
		}
	}

	// Negative literals come last and draw only from variables with a
	// positive occurrence (recomputed after head forcing), keeping the
	// rule safe in the paper's strict sense.
	posVarList = posVarList[:0]
	posVars = map[string]bool{}
	for _, l := range body {
		for _, v := range l.Vars() {
			if !posVars[v.Name] {
				posVars[v.Name] = true
				posVarList = append(posVarList, v.Name)
			}
		}
	}
	for i := 0; i < cfg.NegLits && len(posVarList) > 0; i++ {
		r := s.Relations[g.rng.Intn(len(s.Relations))]
		args := make([]logic.Term, r.Arity)
		for j := range args {
			if g.rng.Float64() < cfg.ConstProb {
				args[j] = g.constant(cfg)
				continue
			}
			args[j] = logic.Var(posVarList[g.rng.Intn(len(posVarList))])
		}
		body = append(body, logic.Neg(logic.NewAtom(r.Name, args...)))
	}
	return logic.CQ{HeadPred: "Q", HeadArgs: head, Body: body}
}

// UCQ generates a union of rules CQs sharing one head.
func (g *Gen) UCQ(s Schema, rules int, cfg QueryConfig) logic.UCQ {
	head := make([]logic.Term, max(0, cfg.HeadVars))
	for i := range head {
		head[i] = logic.Var(fmt.Sprintf("h%d", i))
	}
	var out []logic.CQ
	for i := 0; i < max(1, rules); i++ {
		out = append(out, g.cqWithHead(s, cfg, head))
	}
	return logic.UCQ{Rules: out}
}

// Facts generates tuplesPerRel random tuples per relation over a
// constant domain c0…c{DomainSize-1}.
func (g *Gen) Facts(s Schema, tuplesPerRel, domainSize int) []parser.Fact {
	var out []parser.Fact
	for _, r := range s.Relations {
		for i := 0; i < tuplesPerRel; i++ {
			args := make([]string, r.Arity)
			for j := range args {
				args[j] = fmt.Sprintf("c%d", g.rng.Intn(max(1, domainSize)))
			}
			out = append(out, parser.Fact{Pred: r.Name, Args: args})
		}
	}
	return out
}

// FactsWithInclusion generates facts where every value in column fromCol
// of relation from also appears in column toCol of relation to — the
// foreign-key situation of Example 6 that makes infeasible plans
// runtime-complete.
func (g *Gen) FactsWithInclusion(s Schema, tuplesPerRel, domainSize int, from string, fromCol int, to string, toCol int) []parser.Fact {
	facts := g.Facts(s, tuplesPerRel, domainSize)
	var toArity int
	for _, r := range s.Relations {
		if r.Name == to {
			toArity = r.Arity
		}
	}
	for _, f := range facts {
		if f.Pred != from {
			continue
		}
		args := make([]string, toArity)
		for j := range args {
			args[j] = fmt.Sprintf("c%d", g.rng.Intn(max(1, domainSize)))
		}
		args[toCol] = f.Args[fromCol]
		facts = append(facts, parser.Fact{Pred: to, Args: args})
	}
	return facts
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
