package program

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/workload"
)

func prog(t *testing.T, src string) *Program {
	t.Helper()
	p := New()
	rules, err := parser.ParseRules(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if err := p.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestCompileTwoLevels(t *testing.T) {
	p := prog(t, `
		Sub(id, sp) :- LabA(id, sp).
		Sub(id, sp) :- LabB(id, sp).
		Good(id) :- Sub(id, sp), Consent(id).
	`)
	u, err := p.Compile("Good")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 2 {
		t.Fatalf("compiled = %s", u)
	}
	for _, r := range u.Rules {
		for _, l := range r.Body {
			if p.IDB(l.Atom.Pred) {
				t.Errorf("compiled rule still mentions IDB predicate: %s", r)
			}
		}
	}
}

func TestCompileThreeLevelHierarchy(t *testing.T) {
	p := prog(t, `
		L1(x) :- E1(x).
		L1(x) :- E2(x).
		L2(x) :- L1(x), E3(x).
		L3(x, y) :- L2(x), L2(y), E4(x, y).
	`)
	u, err := p.Compile("L3")
	if err != nil {
		t.Fatal(err)
	}
	// L2 has 2 disjuncts; L3 joins two L2s: 4 compiled rules.
	if len(u.Rules) != 4 {
		t.Fatalf("compiled %d rules, want 4:\n%s", len(u.Rules), u)
	}
}

func TestCompileNegatedIDB(t *testing.T) {
	p := prog(t, `
		Bad(x) :- Flag(x).
		Bad(x) :- Block(x).
		Ok(x) :- All(x), not Bad(x).
	`)
	u, err := p.Compile("Ok")
	if err != nil {
		t.Fatal(err)
	}
	got := u.Rules[0].String()
	if !strings.Contains(got, "not Flag(") || !strings.Contains(got, "not Block(") {
		t.Errorf("negated IDB not expanded: %s", got)
	}
	// A negated IDB with a join underneath is rejected.
	p2 := prog(t, `
		Bad(x) :- Flag(x), Extra(x, y).
		Ok(x) :- All(x), not Bad(x).
	`)
	if _, err := p2.Compile("Ok"); err == nil {
		t.Error("negated IDB with existential variables must be rejected")
	}
}

func TestRecursionRejected(t *testing.T) {
	p := prog(t, `
		A(x) :- B(x).
		B(x) :- A(x).
	`)
	if _, err := p.Compile("A"); err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Errorf("recursion must be rejected, got %v", err)
	}
	p2 := prog(t, `A(x) :- A(x), E(x).`)
	if _, err := p2.Compile("A"); err == nil {
		t.Error("self-recursion must be rejected")
	}
}

func TestCompileUnknownPredicate(t *testing.T) {
	p := prog(t, `A(x) :- E(x).`)
	if _, err := p.Compile("Zzz"); err == nil {
		t.Error("unknown predicate must be rejected")
	}
}

func TestArityConflictRejected(t *testing.T) {
	p := New()
	if err := p.Add(parser.MustCQ(`A(x) :- E(x).`)); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(parser.MustCQ(`A(x, y) :- E2(x, y).`)); err == nil {
		t.Error("arity conflict must be rejected")
	}
}

func TestProgramParseAndAddAll(t *testing.T) {
	p := New()
	if err := p.Parse("A(x) :- E(x).\nA(x) :- F(x).", parser.ParseUCQ); err != nil {
		t.Fatal(err)
	}
	if err := p.AddAll(parser.MustUCQ(`B(x) :- G(x).`)); err != nil {
		t.Fatal(err)
	}
	if err := p.Parse("garbage", parser.ParseUCQ); err == nil {
		t.Error("Parse must propagate parser errors")
	}
	if !p.IDB("A") || !p.IDB("B") || p.IDB("E") {
		t.Error("IDB lookup wrong")
	}
	if got := p.Predicates(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Predicates = %v", got)
	}
	order, err := p.CheckNonrecursive()
	if err != nil || len(order) != 2 {
		t.Errorf("CheckNonrecursive = %v %v", order, err)
	}
	u, err := p.Compile("A")
	if err != nil || len(u.Rules) != 2 {
		t.Errorf("Compile(A) = %v %v", u, err)
	}
}

func TestProgramDiamondDependency(t *testing.T) {
	// A diamond (not a tree) is still nonrecursive and compiles.
	p := prog(t, `
		Base(x) :- E(x).
		Left(x) :- Base(x), L(x).
		Right(x) :- Base(x), R(x).
		Top(x) :- Left(x), Right(x).
	`)
	u, err := p.Compile("Top")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 1 || len(u.Rules[0].Body) != 4 {
		t.Errorf("diamond compile = %s", u)
	}
}

// Compiled programs agree with bottom-up materialization on random
// instances.
func TestCompileSemantics(t *testing.T) {
	src := `
		L1(x) :- E1(x).
		L1(x) :- E2(x).
		L2(x) :- L1(x), E3(x).
		Top(x, y) :- L2(x), E4(x, y), not L1(y).
	`
	p := prog(t, src)
	compiled, err := p.Compile("Top")
	if err != nil {
		t.Fatal(err)
	}
	order, err := p.CheckNonrecursive()
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(33)
	s := workload.Schema{Relations: []workload.RelDef{
		{Name: "E1", Arity: 1}, {Name: "E2", Arity: 1}, {Name: "E3", Arity: 1}, {Name: "E4", Arity: 2},
	}}
	for trial := 0; trial < 20; trial++ {
		edb := engine.NewInstance()
		if err := edb.LoadFacts(g.Facts(s, 6, 4)); err != nil {
			t.Fatal(err)
		}
		// Bottom-up: materialize IDB predicates in dependency order.
		mat := engine.NewInstance()
		for _, rel := range []string{"E1", "E2", "E3", "E4"} {
			for _, row := range edb.Rows(rel) {
				mat.MustAdd(rel, row...)
			}
		}
		for _, h := range order {
			def := logic.UCQ{Rules: p.defOf(h)}
			rel, err := engine.AnswerNaive(def, mat)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range rel.Rows() {
				vals := make([]string, len(row))
				for i, v := range row {
					vals[i] = v.S
				}
				mat.MustAdd(h, vals...)
			}
		}
		want, err := engine.AnswerNaive(parser.MustUCQ(`Q(x, y) :- Top(x, y).`), mat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := engine.AnswerNaive(compiled, edb)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("compiled program disagrees with bottom-up on trial %d:\ncompiled: %s\nbottom-up: %s\nprogram:\n%s",
				trial, got, want, compiled)
		}
	}
}
