// Package program implements nonrecursive Datalog¬ programs: a set of
// rules defining intensional (IDB) predicates over source (EDB)
// relations and over each other, without recursion. A program compiles
// any IDB predicate to a UCQ¬ over the EDB relations by repeated
// unfolding — the multi-level generalization of the GAV view layer
// (internal/mediator), matching how real mediator hierarchies stack
// integrated views on integrated views. The compiled UCQ¬ then flows
// through the paper's planning pipeline unchanged.
//
// Negated IDB literals are expressible in UCQ¬ only when the negated
// predicate's definition unfolds to a union of single positive EDB atoms
// without existential variables (¬(A ∨ B) = ¬A ∧ ¬B); otherwise
// compilation reports an error, as in the mediator package.
package program

import (
	"fmt"
	"sort"

	"repro/internal/logic"
	"repro/internal/mediator"
)

// Program is a set of nonrecursive Datalog¬ rules.
type Program struct {
	rules []logic.CQ
	heads map[string]bool
}

// New returns an empty program.
func New() *Program { return &Program{heads: map[string]bool{}} }

// Add appends one rule. Rules defining the same head predicate are
// disjuncts of its definition. The rule must be range-restricted.
func (p *Program) Add(r logic.CQ) error {
	if err := r.Validate(); err != nil {
		return fmt.Errorf("program: %w", err)
	}
	if existing := p.defOf(r.HeadPred); len(existing) > 0 {
		if len(existing[0].HeadArgs) != len(r.HeadArgs) {
			return fmt.Errorf("program: %s defined with arities %d and %d",
				r.HeadPred, len(existing[0].HeadArgs), len(r.HeadArgs))
		}
	}
	p.rules = append(p.rules, r.Clone())
	p.heads[r.HeadPred] = true
	return nil
}

// Parse adds all rules from the source text.
func (p *Program) Parse(src string, parse func(string) (logic.UCQ, error)) error {
	u, err := parse(src)
	if err != nil {
		return err
	}
	for _, r := range u.Rules {
		if err := p.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// AddAll adds every rule of the union, which — unlike ParseUCQ input —
// may define several predicates when called repeatedly.
func (p *Program) AddAll(u logic.UCQ) error {
	for _, r := range u.Rules {
		if err := p.Add(r); err != nil {
			return err
		}
	}
	return nil
}

// IDB reports whether the predicate is defined by the program.
func (p *Program) IDB(pred string) bool { return p.heads[pred] }

// Predicates returns the defined predicate names, sorted.
func (p *Program) Predicates() []string {
	out := make([]string, 0, len(p.heads))
	for h := range p.heads {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

func (p *Program) defOf(pred string) []logic.CQ {
	var out []logic.CQ
	for _, r := range p.rules {
		if r.HeadPred == pred {
			out = append(out, r)
		}
	}
	return out
}

// CheckNonrecursive verifies that the dependency graph of IDB predicates
// is acyclic and returns a topological order (used-before-user). It is
// called by Compile; exposed for diagnostics.
func (p *Program) CheckNonrecursive() ([]string, error) {
	deps := map[string]map[string]bool{}
	for _, r := range p.rules {
		if deps[r.HeadPred] == nil {
			deps[r.HeadPred] = map[string]bool{}
		}
		for _, l := range r.Body {
			if p.heads[l.Atom.Pred] {
				deps[r.HeadPred][l.Atom.Pred] = true
			}
		}
	}
	var order []string
	state := map[string]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(string) error
	visit = func(h string) error {
		switch state[h] {
		case 1:
			return fmt.Errorf("program: recursion through %s", h)
		case 2:
			return nil
		}
		state[h] = 1
		var next []string
		for d := range deps[h] {
			next = append(next, d)
		}
		sort.Strings(next)
		for _, d := range next {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[h] = 2
		order = append(order, h)
		return nil
	}
	for _, h := range p.Predicates() {
		if err := visit(h); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Compile expands the definition of pred into a UCQ¬ over EDB relations
// only, by unfolding IDB predicates in dependency order through the
// mediator's view-unfolding machinery.
func (p *Program) Compile(pred string) (logic.UCQ, error) {
	if !p.heads[pred] {
		return logic.UCQ{}, fmt.Errorf("program: %s is not defined", pred)
	}
	order, err := p.CheckNonrecursive()
	if err != nil {
		return logic.UCQ{}, err
	}
	// Build fully-EDB view definitions bottom-up: when a predicate's
	// turn comes, everything it uses already has an EDB-only definition.
	views := mediator.NewViews()
	compiled := map[string]logic.UCQ{}
	regErr := map[string]error{}
	for _, h := range order {
		def := logic.UCQ{Rules: p.defOf(h)}
		// A predicate whose compiled definition could not become a view
		// must not be silently treated as EDB by the unfolding.
		for _, r := range def.Rules {
			for _, l := range r.Body {
				if err := regErr[l.Atom.Pred]; err != nil {
					return logic.UCQ{}, fmt.Errorf("program: %s uses %s: %w", h, l.Atom.Pred, err)
				}
			}
		}
		flat, err := views.Unfold(def)
		if err != nil {
			return logic.UCQ{}, fmt.Errorf("program: compiling %s: %w", h, err)
		}
		compiled[h] = flat
		if err := views.Add(normalizeHead(flat)); err != nil {
			// The predicate is still usable as a final result; only
			// later references to it are impossible.
			regErr[h] = err
		}
	}
	return compiled[pred], nil
}

// normalizeHead rewrites the union so every rule's head is a tuple of
// distinct fresh variables (the form mediator.Views requires), renaming
// rule-locally. Head constants and repeated head variables become
// explicit body equalities via variable substitution — since bodies are
// over EDB atoms, a repeated variable is planted at both positions.
func normalizeHead(u logic.UCQ) logic.UCQ {
	out := u.Clone()
	for i := range out.Rules {
		out.Rules[i] = normalizeRuleHead(out.Rules[i])
	}
	return out
}

func normalizeRuleHead(r logic.CQ) logic.CQ {
	headNames := make([]string, len(r.HeadArgs))
	for j := range r.HeadArgs {
		headNames[j] = fmt.Sprintf("ĥ%d", j)
	}
	// Only heads that are tuples of distinct variables can be renamed
	// soundly without equality atoms. Constant or repeated head terms
	// are left unchanged; Views.Add then rejects them with a clear
	// message (they would need an equality predicate to express).
	seen := map[string]int{}
	sub := logic.NewSubst()
	conforming := true
	for j, t := range r.HeadArgs {
		if !t.IsVar() {
			conforming = false
			break
		}
		if _, dup := seen[t.Name]; dup {
			conforming = false
			break
		}
		seen[t.Name] = j
		sub[t.Name] = logic.Var(headNames[j])
	}
	if !conforming {
		// Leave as-is; Views.Add will reject and surface a clear error.
		return r
	}
	out := sub.CQ(r)
	for j := range out.HeadArgs {
		out.HeadArgs[j] = logic.Var(headNames[j])
	}
	return out
}
