// Package parser implements the textual surface syntax of the library:
// Datalog-style rules for CQ¬/UCQ¬ queries, access-pattern declarations
// (B^ioo), and database instances as lists of ground facts.
//
// Syntax summary:
//
//	Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).   # a rule; "<-" also works
//	Q(x)       :- false.                            # the empty query
//	B^ioo  B^oio  C^oo  L^o                         # access patterns
//	B("0471", "knuth", "taocp").                    # a fact
//
// In argument position, bare identifiers are variables, quoted strings and
// numbers are constants, and the keyword null is the distinguished null.
// Comments run from '#' or '%' to end of line.
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted constant
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokCaret
	tokArrow // :- or <-
	tokPeriod
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokCaret:
		return "'^'"
	case tokArrow:
		return "':-'"
	case tokPeriod:
		return "'.'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
	line int
}

type lexer struct {
	src    string
	off    int
	line   int
	tokens []token
}

// lex tokenizes src, returning an error with line information on the
// first malformed token.
func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, t)
		if t.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("parser: line %d: %s", l.line, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.off < len(l.src) {
		c := l.src[l.off]
		switch {
		case c == '\n':
			l.line++
			l.off++
		case c == ' ' || c == '\t' || c == '\r':
			l.off++
		case c == '#' || c == '%':
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.off++
			}
		default:
			goto scan
		}
	}
scan:
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: l.off, line: l.line}, nil
	}
	start, line := l.off, l.line
	c := l.src[l.off]
	switch {
	case c == '(':
		l.off++
		return token{tokLParen, "(", start, line}, nil
	case c == ')':
		l.off++
		return token{tokRParen, ")", start, line}, nil
	case c == ',':
		l.off++
		return token{tokComma, ",", start, line}, nil
	case c == '^':
		l.off++
		return token{tokCaret, "^", start, line}, nil
	case c == '.':
		l.off++
		return token{tokPeriod, ".", start, line}, nil
	case c == ':':
		if strings.HasPrefix(l.src[l.off:], ":-") {
			l.off += 2
			return token{tokArrow, ":-", start, line}, nil
		}
		return token{}, l.errf("unexpected ':'; did you mean ':-'?")
	case c == '<':
		if strings.HasPrefix(l.src[l.off:], "<-") {
			l.off += 2
			return token{tokArrow, "<-", start, line}, nil
		}
		return token{}, l.errf("unexpected '<'; did you mean '<-'?")
	case c == '"' || c == '\'':
		quote := c
		l.off++
		var b strings.Builder
		for l.off < len(l.src) {
			d := l.src[l.off]
			if d == '\n' {
				return token{}, l.errf("newline in string literal")
			}
			if d == '\\' && l.off+1 < len(l.src) {
				esc := l.src[l.off+1]
				l.off += 2
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 'r':
					b.WriteByte('\r')
				case 't':
					b.WriteByte('\t')
				default:
					b.WriteByte(esc)
				}
				continue
			}
			if d == quote {
				l.off++
				return token{tokString, b.String(), start, line}, nil
			}
			b.WriteByte(d)
			l.off++
		}
		return token{}, l.errf("unterminated string literal")
	case c >= '0' && c <= '9' || c == '-' && l.off+1 < len(l.src) && l.src[l.off+1] >= '0' && l.src[l.off+1] <= '9':
		end := l.off + 1
		for end < len(l.src) && (l.src[end] >= '0' && l.src[end] <= '9' || l.src[end] == '.') {
			// Don't swallow a rule-terminating period: only accept '.'
			// when followed by a digit.
			if l.src[end] == '.' && (end+1 >= len(l.src) || l.src[end+1] < '0' || l.src[end+1] > '9') {
				break
			}
			end++
		}
		text := l.src[l.off:end]
		l.off = end
		return token{tokNumber, text, start, line}, nil
	default:
		r, size := utf8.DecodeRuneInString(l.src[l.off:])
		if !isIdentStart(r) {
			return token{}, l.errf("unexpected character %q", r)
		}
		end := l.off + size
		for end < len(l.src) {
			r, size := utf8.DecodeRuneInString(l.src[end:])
			if !isIdentPart(r) {
				break
			}
			end += size
		}
		text := l.src[l.off:end]
		l.off = end
		return token{tokIdent, text, start, line}, nil
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '\'' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
