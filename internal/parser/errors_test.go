package parser

import (
	"strings"
	"testing"
)

func TestMustHelpersPanic(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s must panic on bad input", name)
			}
		}()
		fn()
	}
	assertPanics("MustUCQ", func() { MustUCQ("garbage") })
	assertPanics("MustCQ", func() { MustCQ("garbage") })
	assertPanics("MustPatterns", func() { MustPatterns("B^zz") })
	assertPanics("MustFacts", func() { MustFacts("R(x).") })
	assertPanics("MustRules", func() { MustRules("") })
}

func TestMustHelpersSucceed(t *testing.T) {
	if q := MustCQ(`Q(x) :- R(x).`); q.HeadPred != "Q" {
		t.Error("MustCQ broken")
	}
	if u := MustUCQ(`Q(x) :- R(x).`); len(u.Rules) != 1 {
		t.Error("MustUCQ broken")
	}
	if s := MustPatterns(`R^o`); !s.Has("R") {
		t.Error("MustPatterns broken")
	}
	if f := MustFacts(`R("a").`); len(f) != 1 {
		t.Error("MustFacts broken")
	}
	if r := MustRules("A(x) :- E(x).\nB(x) :- F(x)."); len(r) != 2 {
		t.Error("MustRules broken")
	}
}

func TestParseCQRejectsMultipleRules(t *testing.T) {
	if _, err := ParseCQ("Q(x) :- R(x).\nQ(x) :- S(x)."); err == nil {
		t.Error("ParseCQ must reject multiple rules")
	}
}

func TestParseRulesValidatesEachRule(t *testing.T) {
	if _, err := ParseRules(`A(x, y) :- E(x).`); err == nil {
		t.Error("non-range-restricted rule must be rejected")
	}
	rules, err := ParseRules("A(x) :- E(x).\nB(y) :- F(y, z).")
	if err != nil || len(rules) != 2 {
		t.Errorf("multi-head parse failed: %v %v", rules, err)
	}
}

func TestLexerErrorMessages(t *testing.T) {
	cases := map[string]string{
		"Q(x) : R(x).":        "did you mean ':-'",
		"Q(x) < R(x).":        "did you mean '<-'",
		"Q(x) :- R(\"a\nb\")": "newline in string",
		"Q(x) :- R(@).":       "unexpected character",
	}
	for src, want := range cases {
		_, err := ParseUCQ(src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("ParseUCQ(%q) error = %v, want mention of %q", src, err, want)
		}
	}
}

func TestNumberLexing(t *testing.T) {
	q, err := ParseCQ(`Q(x) :- R(x, 3.14, -7, 42).`)
	if err != nil {
		t.Fatal(err)
	}
	args := q.Body[0].Atom.Args
	for i, want := range []string{"3.14", "-7", "42"} {
		if args[i+1].Name != want || !args[i+1].IsConst() {
			t.Errorf("arg %d = %v, want constant %q", i+1, args[i+1], want)
		}
	}
	// A trailing period after a number terminates the rule, not the
	// number.
	q2, err := ParseCQ(`Q(x) :- R(x, 42).`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Body[0].Atom.Args[1].Name != "42" {
		t.Errorf("args = %v", q2.Body[0].Atom.Args)
	}
}

func TestEscapeDecoding(t *testing.T) {
	q, err := ParseCQ(`Q(x) :- R(x, "a\nb\tc\\d\"e").`)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := q.Body[0].Atom.Args[1].Name, "a\nb\tc\\d\"e"; got != want {
		t.Errorf("decoded = %q, want %q", got, want)
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	q, err := ParseCQ(`Qé(α) :- Rβ(α).`)
	if err != nil {
		t.Fatal(err)
	}
	if q.HeadPred != "Qé" || q.Body[0].Atom.Args[0].Name != "α" {
		t.Errorf("unicode parse = %v", q)
	}
}

func TestZeroArityAtom(t *testing.T) {
	q, err := ParseCQ(`Q() :- Flag().`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Body[0].Atom.Arity() != 0 {
		t.Errorf("zero-arity atom = %v", q.Body[0])
	}
}
