package parser

import "testing"

// FuzzParseUCQ checks that the parser never panics and that everything
// it accepts round-trips through printing.
func FuzzParseUCQ(f *testing.F) {
	seeds := []string{
		`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`,
		"Q(x) :- R(x, \"c\").\nQ(x) :- S(x, 42).",
		`Q(x) :- false.`,
		`Q() :- true.`,
		`Q(a) :- B(i', a', t).`,
		"# comment\nQ(x) <- R(x). % trailing",
		`Q(x) :- R(x,`,
		"Q(x) :-\x00R(x).",
		`Q(x) :- R("unterminated`,
		`^^`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := ParseUCQ(src)
		if err != nil {
			return
		}
		printed := u.String()
		u2, err := ParseUCQ(printed)
		if err != nil {
			t.Fatalf("accepted %q but failed to reparse its printing %q: %v", src, printed, err)
		}
		if !u.Equal(u2) {
			t.Fatalf("round trip changed query:\n%s\nvs\n%s", u, u2)
		}
	})
}

// FuzzParsePatterns checks the pattern parser never panics.
func FuzzParsePatterns(f *testing.F) {
	for _, s := range []string{`B^ioo B^oio`, `X^`, `^io`, `B^iox`, `B^ioo B^io`} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParsePatterns(src)
		if err != nil {
			return
		}
		// Whatever parses must re-parse from its printing.
		if _, err := ParsePatterns(s.String()); err != nil {
			t.Fatalf("accepted %q but failed on its printing %q: %v", src, s, err)
		}
	})
}

// FuzzParseFacts checks the fact parser never panics.
func FuzzParseFacts(f *testing.F) {
	for _, s := range []string{`R("a", "b").`, `R(x).`, `R(.`, `R("a")`} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseFacts(src)
	})
}
