package parser

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/logic"
)

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(k tokenKind) bool {
	return p.cur().kind == k
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, fmt.Errorf("parser: line %d: expected %s, found %s %q", t.line, k, t.kind, t.text)
	}
	p.advance()
	return t, nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("parser: line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

// ParseUCQ parses one or more rules into a UCQ¬. All rules must share the
// same head; the result is validated for safety.
func ParseUCQ(src string) (logic.UCQ, error) {
	toks, err := lex(src)
	if err != nil {
		return logic.UCQ{}, err
	}
	p := &parser{toks: toks}
	var rules []logic.CQ
	for !p.at(tokEOF) {
		r, err := p.rule()
		if err != nil {
			return logic.UCQ{}, err
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return logic.UCQ{}, fmt.Errorf("parser: no rules found")
	}
	u := logic.UCQ{Rules: rules}
	if err := u.Validate(); err != nil {
		return logic.UCQ{}, fmt.Errorf("parser: %w", err)
	}
	return u, nil
}

// ParseRules parses a list of rules that may define several different
// head predicates (a nonrecursive Datalog¬ program), validating each
// rule individually but not the common-head property of ParseUCQ.
func ParseRules(src string) ([]logic.CQ, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var rules []logic.CQ
	for !p.at(tokEOF) {
		r, err := p.rule()
		if err != nil {
			return nil, err
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("parser: %w", err)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("parser: no rules found")
	}
	return rules, nil
}

// MustRules is ParseRules that panics on error.
func MustRules(src string) []logic.CQ {
	rs, err := ParseRules(src)
	if err != nil {
		panic(err)
	}
	return rs
}

// ParseCQ parses exactly one rule into a CQ¬.
func ParseCQ(src string) (logic.CQ, error) {
	u, err := ParseUCQ(src)
	if err != nil {
		return logic.CQ{}, err
	}
	if len(u.Rules) != 1 {
		return logic.CQ{}, fmt.Errorf("parser: expected a single rule, found %d", len(u.Rules))
	}
	return u.Rules[0], nil
}

// MustUCQ is ParseUCQ that panics on error; for tests and fixtures.
func MustUCQ(src string) logic.UCQ {
	u, err := ParseUCQ(src)
	if err != nil {
		panic(err)
	}
	return u
}

// MustCQ is ParseCQ that panics on error; for tests and fixtures.
func MustCQ(src string) logic.CQ {
	q, err := ParseCQ(src)
	if err != nil {
		panic(err)
	}
	return q
}

// rule parses Head(args) :- body . where body is a comma-separated list of
// possibly negated atoms, or the keyword false or true.
func (p *parser) rule() (logic.CQ, error) {
	head, err := p.atom()
	if err != nil {
		return logic.CQ{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return logic.CQ{}, err
	}
	q := logic.CQ{HeadPred: head.Pred, HeadArgs: head.Args}
	// Special bodies.
	if p.at(tokIdent) && p.cur().text == "false" {
		p.advance()
		q.False = true
		return q, p.endOfRule()
	}
	if p.at(tokIdent) && p.cur().text == "true" {
		p.advance()
		return q, p.endOfRule()
	}
	for {
		l, err := p.literal()
		if err != nil {
			return logic.CQ{}, err
		}
		q.Body = append(q.Body, l)
		if p.at(tokComma) {
			p.advance()
			continue
		}
		break
	}
	return q, p.endOfRule()
}

// endOfRule consumes an optional terminating period.
func (p *parser) endOfRule() error {
	if p.at(tokPeriod) {
		p.advance()
	}
	return nil
}

func (p *parser) literal() (logic.Literal, error) {
	neg := false
	if p.at(tokIdent) && (p.cur().text == "not" || p.cur().text == "NOT") {
		p.advance()
		neg = true
	}
	a, err := p.atom()
	if err != nil {
		return logic.Literal{}, err
	}
	return logic.Literal{Atom: a, Negated: neg}, nil
}

func (p *parser) atom() (logic.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return logic.Atom{}, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return logic.Atom{}, err
	}
	var args []logic.Term
	if !p.at(tokRParen) {
		for {
			t, err := p.term()
			if err != nil {
				return logic.Atom{}, err
			}
			args = append(args, t)
			if p.at(tokComma) {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return logic.Atom{}, err
	}
	return logic.Atom{Pred: name.text, Args: args}, nil
}

func (p *parser) term() (logic.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.advance()
		if t.text == "null" {
			return logic.Null, nil
		}
		return logic.Var(t.text), nil
	case tokString, tokNumber:
		p.advance()
		return logic.Const(t.text), nil
	default:
		return logic.Term{}, p.errf("expected a term, found %s %q", t.kind, t.text)
	}
}

// ParsePatterns parses access-pattern declarations like
//
//	B^ioo B^oio C^oo L^o
//
// separated by whitespace, commas, or periods.
func ParsePatterns(src string) (*access.Set, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	set := access.NewSet()
	for !p.at(tokEOF) {
		if p.at(tokComma) || p.at(tokPeriod) {
			p.advance()
			continue
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokCaret); err != nil {
			return nil, err
		}
		word, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		pat, err := access.ParsePattern(word.text)
		if err != nil {
			return nil, fmt.Errorf("parser: line %d: %w", word.line, err)
		}
		if err := set.Add(name.text, pat); err != nil {
			return nil, fmt.Errorf("parser: line %d: %w", name.line, err)
		}
	}
	return set, nil
}

// MustPatterns is ParsePatterns that panics on error.
func MustPatterns(src string) *access.Set {
	s, err := ParsePatterns(src)
	if err != nil {
		panic(err)
	}
	return s
}

// Fact is a ground atom of a database instance.
type Fact struct {
	Pred string
	Args []string
}

// ParseFacts parses a database instance given as ground facts, e.g.
//
//	B("0471", "knuth", "taocp").
//	C("0471", "knuth").
//
// Arguments must be constants (quoted strings or numbers).
func ParseFacts(src string) ([]Fact, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var facts []Fact
	for !p.at(tokEOF) {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		f := Fact{Pred: a.Pred, Args: make([]string, len(a.Args))}
		for i, t := range a.Args {
			if !t.IsConst() {
				return nil, fmt.Errorf("parser: fact %s has non-constant argument %s; quote constants", a.Pred, t)
			}
			f.Args[i] = t.Name
		}
		facts = append(facts, f)
		if err := p.endOfRule(); err != nil {
			return nil, err
		}
	}
	return facts, nil
}

// MustFacts is ParseFacts that panics on error.
func MustFacts(src string) []Fact {
	fs, err := ParseFacts(src)
	if err != nil {
		panic(err)
	}
	return fs
}
