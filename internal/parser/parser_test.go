package parser

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestParseCQExample1(t *testing.T) {
	q, err := ParseCQ(`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)
	if err != nil {
		t.Fatal(err)
	}
	if q.HeadPred != "Q" || len(q.HeadArgs) != 3 {
		t.Fatalf("head = %s/%d", q.HeadPred, len(q.HeadArgs))
	}
	if len(q.Body) != 3 {
		t.Fatalf("body has %d literals", len(q.Body))
	}
	if !q.Body[2].Negated || q.Body[2].Atom.Pred != "L" {
		t.Errorf("third literal = %v, want not L(i)", q.Body[2])
	}
	want := "Q(i, a, t) :- B(i, a, t), C(i, a), not L(i)"
	if got := q.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseUCQExample3(t *testing.T) {
	// Example 3 of the paper, with primed variables.
	u, err := ParseUCQ(`
		Q(a) :- B(i, a, t), L(i), B(i', a', t).
		Q(a) :- B(i, a, t), L(i), not B(i', a', t).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 2 {
		t.Fatalf("got %d rules", len(u.Rules))
	}
	if got := u.Rules[0].Body[2].Atom.Args[0]; got != logic.Var("i'") {
		t.Errorf("primed variable parsed as %v", got)
	}
	if !u.Rules[1].Body[2].Negated {
		t.Error("second rule's last literal must be negated")
	}
}

func TestParseTermKinds(t *testing.T) {
	q, err := ParseCQ(`Q(x) :- R(x, "knuth", 1968, null, 'single').`)
	if err != nil {
		t.Fatal(err)
	}
	args := q.Body[0].Atom.Args
	wants := []logic.Term{
		logic.Var("x"),
		logic.Const("knuth"),
		logic.Const("1968"),
		logic.Null,
		logic.Const("single"),
	}
	for i, w := range wants {
		if args[i] != w {
			t.Errorf("arg %d = %v, want %v", i, args[i], w)
		}
	}
}

func TestParseFalseAndTrueBodies(t *testing.T) {
	q, err := ParseCQ(`Q(x) :- false.`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.False {
		t.Error("false body not recognized")
	}
	// The query "true" is unsafe when the head has variables, so use an
	// empty head.
	q2, err := ParseCQ(`Q() :- true.`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.False || len(q2.Body) != 0 {
		t.Errorf("true body = %v", q2)
	}
}

func TestParseRejectsUnsafe(t *testing.T) {
	if _, err := ParseCQ(`Q(x, y) :- R(x).`); err == nil {
		t.Error("unsafe query must be rejected")
	}
	// Variables occurring only in negated literals are accepted (the paper
	// itself uses such queries in Example 3), but the query is not Safe.
	q, err := ParseCQ(`Q(x) :- R(x), not S(z).`)
	if err != nil {
		t.Errorf("negation-unsafe query must parse: %v", err)
	} else if q.Safe() {
		t.Error("negation-unsafe query must not be Safe()")
	}
	if _, err := ParseUCQ(`
		Q(x) :- R(x).
		Q(y) :- R(y).
	`); err == nil {
		t.Error("differing head variables across rules must be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`Q(x)`,
		`Q(x) : R(x).`,
		`Q(x) :- R(x`,
		`Q(x) :- R(x,).`,
		`Q(x) :- not not R(x).`,
		`Q(x) :- R(x) S(x).`,
		`Q(x) :- R("unterminated).`,
	}
	for _, src := range bad {
		if _, err := ParseUCQ(src); err == nil {
			t.Errorf("ParseUCQ(%q) succeeded, want error", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	u, err := ParseUCQ(`
		# paper example
		Q(x) :- R(x).  % trailing comment
		Q(x) :- S(x).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 2 {
		t.Fatalf("got %d rules", len(u.Rules))
	}
}

func TestParseArrowVariants(t *testing.T) {
	a, err := ParseCQ(`Q(x) :- R(x).`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseCQ(`Q(x) <- R(x).`)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error(":- and <- must parse identically")
	}
}

func TestParsePatterns(t *testing.T) {
	s, err := ParsePatterns(`B^ioo B^oio, C^oo. L^o`)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.String(), "B^ioo B^oio C^oo L^o"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if _, err := ParsePatterns(`B^iox`); err == nil {
		t.Error("invalid pattern letter must be rejected")
	}
	if _, err := ParsePatterns(`B^ioo B^io`); err == nil {
		t.Error("conflicting arities must be rejected")
	}
}

func TestParseFacts(t *testing.T) {
	fs, err := ParseFacts(`
		B("0471", "knuth", "taocp").
		C("0471", "knuth").
		N(1, 2).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 3 {
		t.Fatalf("got %d facts", len(fs))
	}
	if fs[0].Pred != "B" || fs[0].Args[2] != "taocp" {
		t.Errorf("fact 0 = %+v", fs[0])
	}
	if fs[2].Args[0] != "1" || fs[2].Args[1] != "2" {
		t.Errorf("numeric fact = %+v", fs[2])
	}
	if _, err := ParseFacts(`B(x).`); err == nil {
		t.Error("non-ground fact must be rejected")
	}
}

// Round trip: printing a parsed query and re-parsing it yields the same
// query.
func TestRoundTrip(t *testing.T) {
	srcs := []string{
		`Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`,
		`Q(x, y) :- R(x, z), not S(z), B(x, y).
		 Q(x, y) :- T(x, y).`,
		`Q(x) :- R(x, "c"), not S(x, 42).`,
		`Q(x) :- false.`,
	}
	for _, src := range srcs {
		u, err := ParseUCQ(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		printed := u.String()
		u2, err := ParseUCQ(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		if !u.Equal(u2) {
			t.Errorf("round trip changed query:\n%s\nvs\n%s", u, u2)
		}
	}
}

func TestLexerLineNumbers(t *testing.T) {
	_, err := ParseUCQ("Q(x) :- R(x).\nQ(x) :- R(x), @")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error should mention line 2, got %v", err)
	}
}
