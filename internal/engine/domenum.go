package engine

import (
	"context"
	"sort"
	"strings"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// DomRelation is the reserved name of the synthetic unary domain
// enumeration view dom(x) (Example 8 of the paper).
const DomRelation = "__dom"

// DomResult is the outcome of domain enumeration.
type DomResult struct {
	// Values is the enumerated partial domain, sorted.
	Values []string
	// Calls is the number of source calls spent enumerating.
	Calls int
	// Truncated reports that the call budget was exhausted before the
	// fixpoint; Values is then an under-approximation of the reachable
	// domain (still sound for underestimates).
	Truncated bool
}

// EnumerateDomain computes a partial domain enumeration view over the
// catalog, in the style of [DL97] (recursive plans for information
// gathering): starting from the seed constants and everything obtainable
// from sources callable with no inputs, it repeatedly calls every source
// pattern with all combinations of already-known values until no new
// value appears or maxCalls source calls have been spent. The result is
// the set of values retrievable from the sources, a sound domain for
// dom(x) atoms.
func EnumerateDomain(cat *sources.Catalog, seeds []string, maxCalls int) DomResult {
	res, _ := EnumerateDomainContext(context.Background(), cat, seeds, maxCalls)
	return res
}

// EnumerateDomainContext is EnumerateDomain honoring a context: on
// cancellation it stops issuing calls and returns the context error
// alongside the (truncated, still sound) domain enumerated so far.
func EnumerateDomainContext(ctx context.Context, cat *sources.Catalog, seeds []string, maxCalls int) (DomResult, error) {
	dom := map[string]bool{}
	for _, s := range seeds {
		dom[s] = true
	}
	res := DomResult{}
	called := map[string]bool{} // source^pattern(inputs) already issued
	for {
		grew := false
		for _, name := range cat.Names() {
			src := cat.Source(name)
			for _, p := range src.Patterns() {
				grewHere, stop, err := enumeratePattern(ctx, src, p, dom, called, &res, maxCalls)
				grew = grew || grewHere
				if stop || err != nil {
					res.Truncated = true
					res.Values = sortedKeys(dom)
					return res, err
				}
			}
		}
		if !grew {
			break
		}
	}
	res.Values = sortedKeys(dom)
	return res, nil
}

// enumeratePattern issues all not-yet-made calls to src^p whose inputs
// are drawn from dom, adding returned values to dom. It reports whether
// dom grew and whether the call budget ran out; a context error aborts
// the enumeration.
func enumeratePattern(ctx context.Context, src sources.Source, p access.Pattern, dom map[string]bool, called map[string]bool, res *DomResult, maxCalls int) (grew, stop bool, ctxErr error) {
	k := p.InputCount()
	values := sortedKeys(dom)
	if k > 0 && len(values) == 0 {
		return false, false, nil
	}
	inputs := make([]string, k)
	var rec func(i int) bool // returns true to stop
	rec = func(i int) bool {
		if i == k {
			key := src.Name() + "^" + string(p) + "(" + strings.Join(inputs, "\x1f") + ")"
			if called[key] {
				return false
			}
			if res.Calls >= maxCalls {
				stop = true
				return true
			}
			if err := ctx.Err(); err != nil {
				ctxErr = err
				return true
			}
			called[key] = true
			res.Calls++
			tuples, err := sources.CallWithContext(ctx, src, p, append([]string(nil), inputs...))
			switch {
			case err == nil:
			case ctx.Err() != nil:
				ctxErr = ctx.Err()
				return true
			default:
				return false // pattern/source mismatch; skip
			}
			for _, t := range tuples {
				for _, v := range t {
					if !dom[v] {
						dom[v] = true
						grew = true
					}
				}
			}
			return false
		}
		for _, v := range values {
			inputs[i] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	rec(0)
	return grew, stop, ctxErr
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ImprovedUnderRule builds the domain-enumeration-improved underestimate
// rule of Example 8: ansBody ∧ dom(v₁) ∧ … ∧ dom(vₖ) ∧ U, where the vᵢ
// are the variables of the unanswerable part U not bound by the
// answerable part. The rule is executable against a catalog extended
// with the __dom source whenever every relation of U has some access
// pattern (all variables are bound when U runs). It returns ok=false
// when some relation of U has no pattern at all.
func ImprovedUnderRule(ans logic.CQ, unanswerable []logic.Literal, ps *access.Set) (logic.CQ, bool) {
	if ans.False || len(unanswerable) == 0 {
		return logic.CQ{}, false
	}
	bound := map[string]bool{}
	for _, l := range ans.Body {
		for _, v := range l.Vars() {
			bound[v.Name] = true
		}
	}
	out := ans.Clone()
	// Restore the original head: variables the overestimate would null
	// are now bound through dom atoms.
	var need []string
	seen := map[string]bool{}
	for _, l := range unanswerable {
		if !ps.Has(l.Atom.Pred) {
			return logic.CQ{}, false
		}
		for _, v := range l.Vars() {
			if !bound[v.Name] && !seen[v.Name] {
				seen[v.Name] = true
				need = append(need, v.Name)
			}
		}
	}
	for _, v := range need {
		out.Body = append(out.Body, logic.Pos(logic.NewAtom(DomRelation, logic.Var(v))))
	}
	for _, l := range unanswerable {
		out.Body = append(out.Body, l.Clone())
	}
	return out, true
}

// WithDomSource returns a catalog and pattern set extended with the
// __dom relation holding the enumerated values, so improved rules can be
// executed by the ordinary plan executor.
func WithDomSource(cat *sources.Catalog, ps *access.Set, dom []string) (*sources.Catalog, *access.Set, error) {
	rows := make([]sources.Tuple, len(dom))
	for i, v := range dom {
		rows[i] = sources.Tuple{v}
	}
	table, err := sources.NewTable(DomRelation, 1, []access.Pattern{"o"}, rows)
	if err != nil {
		return nil, nil, err
	}
	var srcs []sources.Source
	for _, name := range cat.Names() {
		srcs = append(srcs, cat.Source(name))
	}
	srcs = append(srcs, table)
	next, err := sources.NewCatalog(srcs...)
	if err != nil {
		return nil, nil, err
	}
	ps2 := ps.Clone()
	if err := ps2.Add(DomRelation, "o"); err != nil {
		return nil, nil, err
	}
	return next, ps2, nil
}
