package engine

// Graceful degradation. ANSWER* (Figure 4 of the paper) already accepts
// that the full answer may be unobtainable at compile time and returns a
// certified underestimate plus completeness information instead of
// nothing. Partial-results mode extends the same contract to *runtime*
// failure: when a rule's evaluation dies terminally — circuit breaker
// open, per-query budget exhausted, a non-transient source error — the
// engine drops that disjunct, keeps the rest, and reports what was
// dropped. The surviving rules' tuples are exactly
// ANSWER(Q \ failed rules, D): every reported tuple is a certain answer
// (each disjunct's answers are answers of the union), i.e. a certified
// underestimate in the sense of ansᵤ; the Δ of the failed disjuncts is
// unknown because they were never evaluated, so the report carries the
// disjunct-level ratio instead of the paper's tuple-level one.

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/logic"
	"repro/internal/sources"
)

// FailureClass says why a disjunct was dropped in partial-results mode.
type FailureClass string

const (
	// FailReplicas: every replica of a replicated source failed — the
	// whole replica set is exhausted (sources.ErrReplicasExhausted). A
	// rule backed by replicas degrades only on this class; any single
	// surviving replica keeps it complete.
	FailReplicas FailureClass = "replicas-exhausted"
	// FailBreaker: a circuit breaker was open — the source is known dead
	// and the call failed fast (sources.ErrBreakerOpen).
	FailBreaker FailureClass = "breaker-open"
	// FailBudget: the per-query call/time budget was exhausted
	// (ErrCallBudget).
	FailBudget FailureClass = "budget-exhausted"
	// FailTransient: a transient failure survived every retry the policy
	// allowed (including per-call deadline expiries).
	FailTransient FailureClass = "retries-exhausted"
	// FailTerminal: a non-retryable failure — contract violation,
	// unsafe plan, source panic.
	FailTerminal FailureClass = "terminal"
)

// ClassifyFailure maps a rule-evaluation error to its failure class.
// Errors joined from several calls classify by the most specific member
// (replica exhaustion, then breaker, then budget, then transient).
// Replica exhaustion is checked first: a ReplicasError unwraps to its
// member failures, so a set that died of quarantined replicas would
// otherwise classify as a single breaker failure.
func ClassifyFailure(err error) FailureClass {
	switch {
	case errors.Is(err, sources.ErrReplicasExhausted):
		return FailReplicas
	case errors.Is(err, sources.ErrBreakerOpen):
		return FailBreaker
	case errors.Is(err, ErrCallBudget):
		return FailBudget
	case sources.IsTransient(err):
		return FailTransient
	default:
		return FailTerminal
	}
}

// RuleFailure is one dropped disjunct: which rule, which source and
// step killed it, and why.
type RuleFailure struct {
	// RuleIndex is the rule's position in the executed union.
	RuleIndex int
	// Rule is the dropped disjunct.
	Rule logic.CQ
	// Source names the relation whose call failed, when the failure is
	// attributable to one ("" otherwise, e.g. an unsafe head).
	Source string
	// Step renders the failing adorned step, when attributable.
	Step string
	// Replicas lists the replica labels of the exhausted replica set,
	// when the failure is a replica exhaustion (nil otherwise).
	Replicas []string
	// Class is the failure classification.
	Class FailureClass
	// Err is the underlying error.
	Err error
}

// String renders one failure line.
func (f RuleFailure) String() string {
	at := f.Step
	if at == "" {
		at = "?"
	}
	return fmt.Sprintf("rule %d (%s) failed at %s: %s: %v", f.RuleIndex+1, f.Rule, at, f.Class, f.Err)
}

// Incompleteness is the completeness report of a degraded execution,
// shaped after the AnswerStar report: the answers returned are the
// certified underestimate (surviving disjuncts only), Failed lists the
// disjuncts that could not be evaluated, and RuleRatio is the
// disjunct-level completeness lower bound standing in for Figure 4's
// |ansᵤ|/|ansₒ| (Δ over the failed disjuncts is unknown — they were
// never evaluated).
type Incompleteness struct {
	// Failed lists the dropped disjuncts in rule order, with the failing
	// source, step, and failure class.
	Failed []RuleFailure
	// RulesTotal counts the executable disjuncts of the union;
	// RulesSurvived those that evaluated fully.
	RulesTotal, RulesSurvived int
}

// Complete reports whether every disjunct evaluated fully: the answer
// is the exact ANSWER(Q, D), not just an underestimate.
func (inc Incompleteness) Complete() bool { return len(inc.Failed) == 0 }

// RuleRatio is the fraction of disjuncts that evaluated fully; ok is
// false for an empty union. 1.0 means complete.
func (inc Incompleteness) RuleRatio() (float64, bool) {
	if inc.RulesTotal == 0 {
		return 0, false
	}
	return float64(inc.RulesSurvived) / float64(inc.RulesTotal), true
}

// FailedSources returns the distinct sources named by the failures, in
// first-failure order.
func (inc Incompleteness) FailedSources() []string {
	var out []string
	seen := map[string]bool{}
	for _, f := range inc.Failed {
		if f.Source == "" || seen[f.Source] {
			continue
		}
		seen[f.Source] = true
		out = append(out, f.Source)
	}
	return out
}

// Report renders the degradation report in the shape of Figure 4's
// completeness output.
func (inc Incompleteness) Report() string {
	var b strings.Builder
	if inc.Complete() {
		b.WriteString("answer is complete: every disjunct evaluated\n")
		return strings.TrimRight(b.String(), "\n")
	}
	b.WriteString("answer is an underestimate: these disjuncts could not be evaluated:\n")
	for _, f := range inc.Failed {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if srcs := inc.FailedSources(); len(srcs) > 0 {
		fmt.Fprintf(&b, "failed sources: %s\n", strings.Join(srcs, ", "))
	}
	if r, ok := inc.RuleRatio(); ok {
		fmt.Fprintf(&b, "at least %d of %d disjuncts (%.2f) answered in full\n", inc.RulesSurvived, inc.RulesTotal, r)
	}
	return strings.TrimRight(b.String(), "\n")
}

// record appends a failure for rule i, attributing source and step when
// the error chain carries a callError.
func (inc *Incompleteness) record(i int, rule logic.CQ, err error) {
	f := RuleFailure{RuleIndex: i, Rule: rule.Clone(), Class: ClassifyFailure(err), Err: err}
	var ce *callError
	if errors.As(err, &ce) {
		f.Source = ce.Source
		f.Step = fmt.Sprintf("%s^%s", ce.Source, ce.Pattern)
	}
	var re *sources.ReplicasError
	if errors.As(err, &re) {
		if f.Source == "" {
			f.Source = re.Source
		}
		f.Replicas = append([]string(nil), re.Tried...)
	}
	inc.Failed = append(inc.Failed, f)
}

// degradable reports whether a rule failure may be absorbed in
// partial-results mode: the caller's context must still be live (its
// cancellation always aborts the execution) and the failure must be a
// runtime condition, not a compile-time planning error.
func degradable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return !errors.Is(err, errNotExecutable)
}
