package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/sources"
)

// batchTable wraps a Table with genuine batching: one "round trip" per
// CallBatch, optionally failing the next batch attempts.
type batchTable struct {
	*sources.Table

	mu         sync.Mutex
	roundTrips int
	batched    int
	failBatch  []error
}

func newBatchTable(t *testing.T, name string, arity int, pats string, rows []sources.Tuple) *batchTable {
	t.Helper()
	var ps []access.Pattern
	for _, w := range splitWords(pats) {
		ps = append(ps, access.Pattern(w))
	}
	tbl, err := sources.NewTable(name, arity, ps, rows)
	if err != nil {
		t.Fatal(err)
	}
	return &batchTable{Table: tbl}
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

func (b *batchTable) CallBatch(ctx context.Context, p access.Pattern, inputs [][]string) ([][]sources.Tuple, error) {
	b.mu.Lock()
	b.roundTrips++
	b.batched += len(inputs)
	var fail error
	if len(b.failBatch) > 0 {
		fail = b.failBatch[0]
		b.failBatch = b.failBatch[1:]
	}
	b.mu.Unlock()
	if fail != nil {
		return nil, fail
	}
	out := make([][]sources.Tuple, len(inputs))
	for i, in := range inputs {
		rows, err := sources.CallWithContext(ctx, b.Table, p, in)
		if err != nil {
			return nil, err
		}
		out[i] = rows
	}
	return out, nil
}

func (b *batchTable) failNextBatches(errs ...error) {
	b.mu.Lock()
	b.failBatch = append(b.failBatch, errs...)
	b.mu.Unlock()
}

func (b *batchTable) trips() (int, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.roundTrips, b.batched
}

// batchJoinFixture: 200 R rows fanning into 10 distinct T keys, so the
// T step issues one deduplicated binding group of 10 calls.
func batchJoinFixture(t *testing.T) (*sources.Catalog, *batchTable, *access.Set) {
	t.Helper()
	var rRows []sources.Tuple
	for i := 0; i < 200; i++ {
		rRows = append(rRows, sources.Tuple{fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%10)})
	}
	rTbl, err := sources.NewTable("R", 2, []access.Pattern{"oo"}, rRows)
	if err != nil {
		t.Fatal(err)
	}
	var tRows []sources.Tuple
	for z := 0; z < 10; z++ {
		tRows = append(tRows, sources.Tuple{fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z)})
	}
	bt := newBatchTable(t, "T", 2, "io", tRows)
	cat, err := sources.NewCatalog(rTbl, bt)
	if err != nil {
		t.Fatal(err)
	}
	return cat, bt, pats(t, `R^oo T^io`)
}

// The engine must detect a batch-capable source and service the whole
// deduplicated binding group in one round trip, with the pushdown
// visible in the profile.
func TestRuntimeBatchesCallGroups(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	cat, bt, ps := batchJoinFixture(t)

	ans, prof, err := NewRuntime().AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 200 {
		t.Fatalf("answers = %d, want 200", ans.Len())
	}
	trips, batched := bt.trips()
	if trips != 1 || batched != 10 {
		t.Fatalf("round trips = %d (batched %d), want 1 round trip of 10 calls", trips, batched)
	}
	calls := prof.Calls
	if calls.BatchGroups != 1 || calls.BatchedCalls != 10 {
		t.Fatalf("profile batch counters %d/%d, want 1/10", calls.BatchGroups, calls.BatchedCalls)
	}
	// The batch is charged as ONE attempt in the call counters: 1 R scan
	// + 1 T round trip.
	if got := prof.TotalCalls(); got != 2 {
		t.Fatalf("profile calls = %d, want 2", got)
	}
}

// Identical answers with and without the batch path (the plain Table is
// the reference).
func TestRuntimeBatchMatchesSequentialAnswers(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	cat, _, ps := batchJoinFixture(t)
	batchAns, err := NewRuntime().Answer(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}

	in := NewInstance()
	for i := 0; i < 200; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%10))
	}
	for z := 0; z < 10; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}
	plainAns, err := NewRuntime().Answer(context.Background(), q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	if !batchAns.Equal(plainAns) {
		t.Fatalf("batched answers differ from per-call answers:\nbatch %s\nplain %s", batchAns, plainAns)
	}
}

// A failed batch attempt (beyond retries) must fall back to the
// per-call path: same answers, no batch counters, and the failure class
// unchanged.
func TestRuntimeBatchFallsBackPerCall(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	cat, bt, ps := batchJoinFixture(t)
	bt.failNextBatches(
		errors.New("batch statement rejected"), // permanent: no batch retry, straight to fallback
	)
	rt := NewRuntime()
	rt.Retry = RetryPolicy{MaxAttempts: 2}
	ans, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatalf("fallback must absorb the failed batch: %v", err)
	}
	if ans.Len() != 200 {
		t.Fatalf("answers = %d, want 200", ans.Len())
	}
	calls := prof.Calls
	if calls.BatchGroups != 0 {
		t.Fatalf("failed batch still recorded as a group: %+v", calls)
	}
}

// A transient batch failure is retried as a batch before any fallback.
func TestRuntimeBatchRetriesTransient(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	cat, bt, ps := batchJoinFixture(t)
	bt.failNextBatches(sources.Transient(errors.New("backend hiccup")))
	rt := NewRuntime()
	rt.Retry = RetryPolicy{MaxAttempts: 3}
	_, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	trips, _ := bt.trips()
	if trips != 2 {
		t.Fatalf("round trips = %d, want 2 (failed + retried batch)", trips)
	}
	calls := prof.Calls
	if calls.BatchGroups != 1 || calls.Retries != 1 {
		t.Fatalf("profile %+v, want one batch group with one retry", calls)
	}
}

// Budget accounting: a batched group is one round trip and must be
// charged as one call, so a budget that would starve the per-call path
// completes on the batch path.
func TestRuntimeBatchChargesBudgetPerRoundTrip(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	cat, _, ps := batchJoinFixture(t)
	rt := NewRuntime()
	rt.Budget = Budget{MaxCalls: 2} // 1 scan + 1 batched round trip
	ans, err := rt.Answer(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatalf("batch must fit the round-trip budget: %v", err)
	}
	if ans.Len() != 200 {
		t.Fatalf("answers = %d, want 200", ans.Len())
	}

	// The same budget must exhaust on the per-call path.
	in := NewInstance()
	for i := 0; i < 200; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%10))
	}
	for z := 0; z < 10; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}
	rt2 := NewRuntime()
	rt2.Budget = Budget{MaxCalls: 2}
	if _, err := rt2.Answer(context.Background(), q, ps, in.MustCatalog(ps)); !errors.Is(err, ErrCallBudget) {
		t.Fatalf("per-call path under the same budget: err = %v, want ErrCallBudget", err)
	}
}

// The streamed pipeline shares the call layer and must batch too.
func TestRuntimeBatchInStream(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	cat, bt, ps := batchJoinFixture(t)
	stream, err := NewRuntime().Stream(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := stream.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 200 {
		t.Fatalf("streamed answers = %d, want 200", rel.Len())
	}
	trips, batched := bt.trips()
	if trips != 1 || batched != 10 {
		t.Fatalf("streamed round trips = %d (batched %d), want 1/10", trips, batched)
	}
}

// A wrapper over a non-batching source must not advertise batching to
// the engine: the capability probe looks through to the bottom of the
// stack.
func TestBatchCapabilityProbesThroughWrappers(t *testing.T) {
	plain, err := sources.NewTable("P", 1, []access.Pattern{"o"}, []sources.Tuple{{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if sources.IsBatchCapable(sources.NewCached(plain)) {
		t.Fatal("Cached over a plain table must not claim batching")
	}
	if sources.IsBatchCapable(sources.NewBreaker(plain, sources.BreakerConfig{})) {
		t.Fatal("Breaker over a plain table must not claim batching")
	}
	bt := newBatchTable(t, "B", 1, "o", []sources.Tuple{{"a"}})
	if !sources.IsBatchCapable(sources.NewCached(sources.NewBreaker(bt, sources.BreakerConfig{}))) {
		t.Fatal("stack over a batching source must claim batching")
	}
}
