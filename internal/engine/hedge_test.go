package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/sources"
)

// declOrder is a routing policy that always tries replicas in
// declaration order, so tests control exactly which replica is the
// hedged-call primary.
type declOrder struct{}

func (declOrder) Rank(tick uint64, h []sources.ReplicaHealth) []int {
	out := make([]int, len(h))
	for i := range out {
		out[i] = i
	}
	return out
}

// replicaCat builds a single-relation catalog whose source is a replica
// set over the given replicas, routed in declaration order.
func replicaCat(t *testing.T, replicas ...sources.Source) (*sources.Catalog, *sources.ReplicaSet) {
	t.Helper()
	rs, err := sources.NewReplicaSet(sources.ReplicaConfig{Policy: declOrder{}}, replicas...)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := sources.NewCatalog(rs)
	if err != nil {
		t.Fatal(err)
	}
	return cat, rs
}

// rTable returns one replica of the unary relation R holding value "a".
func rTable(t *testing.T, ps *access.Set) sources.Source {
	t.Helper()
	return NewInstance().MustAdd("R", "a").MustCatalog(ps).Source("R")
}

// A hung primary must not stall the call: the hedge timer launches a
// backup on the next replica, the backup's rows win, and the cancelled
// loser is charged (it was launched) but never pollutes the replica's
// health or breaker window.
func TestHedgeBackupWinsOverHungPrimary(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	hung := sources.NewFlaky(rTable(t, ps), sources.FlakyConfig{FailEveryN: 1, Hang: true})
	cat, rs := replicaCat(t, hung, rTable(t, ps))

	rt := NewRuntime()
	rt.Hedge = HedgePolicy{Delay: 2 * time.Millisecond}
	rt.Budget = Budget{MaxCalls: 10}
	ans, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatalf("hedging must mask the hung primary: %v", err)
	}
	if ans.Len() != 1 {
		t.Errorf("answers = %d, want 1", ans.Len())
	}
	sp := prof.Rules[0].Steps[0]
	if sp.Calls != 2 {
		t.Errorf("Calls = %d, want 2 (primary + hedge)", sp.Calls)
	}
	if sp.HedgedCalls != 1 || sp.HedgeWins != 1 {
		t.Errorf("hedged=%d won=%d, want 1/1", sp.HedgedCalls, sp.HedgeWins)
	}
	if sp.Retries != 0 {
		t.Errorf("Retries = %d: a hedged race is one round, not a retry", sp.Retries)
	}
	// Every launched leg was charged exactly once.
	if prof.Calls.BudgetSpent != 2 {
		t.Errorf("BudgetSpent = %d, want 2 (one per launched leg)", prof.Calls.BudgetSpent)
	}
	// The cancelled loser never reached its table and never entered the
	// replica's health window or breaker state.
	st := rs.ReplicaStats()
	if st[0].Calls != 0 || st[0].Failures != 0 {
		t.Errorf("cancelled loser polluted health: %+v", st[0])
	}
	if st[0].State != sources.BreakerClosed {
		t.Errorf("loser breaker = %s, want closed", st[0].State)
	}
	if st[1].Calls != 1 || st[1].Failures != 0 {
		t.Errorf("winner health = %+v, want 1 clean call", st[1])
	}
	// Real remote traffic: only the winner's table answered.
	if got := cat.TotalStats().Calls; got != 1 {
		t.Errorf("remote calls = %d, want 1", got)
	}
}

// A replica that fails outright triggers immediate failover — before
// the hedge timer — and the failover leg is not counted as a hedge.
func TestHedgeFailoverIsNotAHedge(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	failing := sources.NewFlaky(rTable(t, ps), sources.FlakyConfig{FailEveryN: 1})
	cat, rs := replicaCat(t, failing, rTable(t, ps))

	rt := NewRuntime()
	rt.Hedge = HedgePolicy{Delay: time.Hour} // the timer must never decide this test
	ans, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatalf("failover must absorb the failing replica: %v", err)
	}
	if ans.Len() != 1 {
		t.Errorf("answers = %d, want 1", ans.Len())
	}
	sp := prof.Rules[0].Steps[0]
	if sp.Calls != 2 {
		t.Errorf("Calls = %d, want 2 (failed primary + failover)", sp.Calls)
	}
	if sp.HedgedCalls != 0 || sp.HedgeWins != 0 {
		t.Errorf("hedged=%d won=%d: failover legs are not hedges", sp.HedgedCalls, sp.HedgeWins)
	}
	if sp.Retries != 0 {
		t.Errorf("Retries = %d, want 0: failover happens inside one round", sp.Retries)
	}
	// The failure entered the primary's health window.
	st := rs.ReplicaStats()
	if st[0].Failures != 1 {
		t.Errorf("primary failures = %d, want 1", st[0].Failures)
	}
}

// When every replica fails, the round's error is a replica exhaustion:
// transient members make it retryable, retries run whole rounds, and a
// partial-results execution degrades with class FailReplicas naming the
// exhausted replicas.
func TestHedgeExhaustionRetriesAndDegrades(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	bad := func() sources.Source {
		return sources.NewFlaky(rTable(t, ps), sources.FlakyConfig{FailEveryN: 1})
	}
	cat, _ := replicaCat(t, bad(), bad())

	rt := NewRuntime()
	rt.Retry = RetryPolicy{MaxAttempts: 2}
	rt.Hedge = HedgePolicy{Delay: time.Hour}
	rel, prof, inc, err := rt.Eval(context.Background(), q, ps, cat, EvalOpts{Profile: true, Partial: true})
	if err != nil {
		t.Fatalf("partial mode must absorb the exhaustion: %v", err)
	}
	if rel.Len() != 0 {
		t.Errorf("answers = %d, want 0", rel.Len())
	}
	if len(inc.Failed) != 1 {
		t.Fatalf("failed rules = %d, want 1", len(inc.Failed))
	}
	f := inc.Failed[0]
	if f.Class != FailReplicas {
		t.Errorf("class = %s, want %s", f.Class, FailReplicas)
	}
	if len(f.Replicas) != 2 || f.Replicas[0] != "R#0" || f.Replicas[1] != "R#1" {
		t.Errorf("exhausted replicas = %v, want [R#0 R#1]", f.Replicas)
	}
	if !errors.Is(f.Err, sources.ErrReplicasExhausted) {
		t.Errorf("err must match ErrReplicasExhausted: %v", f.Err)
	}
	sp := prof.Rules[0].Steps[0]
	if sp.Calls != 4 {
		t.Errorf("Calls = %d, want 4 (2 rounds × 2 replicas)", sp.Calls)
	}
	if sp.Retries != 1 {
		t.Errorf("Retries = %d, want 1 (the second round)", sp.Retries)
	}
}

// A budget with one call left admits the primary and denies the hedge;
// the call still succeeds on the primary and the denial is invisible.
func TestHedgeDeniedByBudgetStillSucceeds(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	slow := sources.NewDelayed(rTable(t, ps), 30*time.Millisecond)
	cat, _ := replicaCat(t, slow, rTable(t, ps))

	rt := NewRuntime()
	rt.Hedge = HedgePolicy{Delay: 2 * time.Millisecond}
	rt.Budget = Budget{MaxCalls: 1}
	ans, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatalf("the primary must still win when the hedge is denied: %v", err)
	}
	if ans.Len() != 1 {
		t.Errorf("answers = %d, want 1", ans.Len())
	}
	if prof.Calls.BudgetSpent != 1 {
		t.Errorf("BudgetSpent = %d, want 1 (denied hedge never charged)", prof.Calls.BudgetSpent)
	}
	if got := prof.HedgedCalls(); got != 0 {
		t.Errorf("HedgedCalls = %d, want 0", got)
	}
}

// When the budget dies before any leg launches, the call fails with
// ErrCallBudget and charges nothing.
func TestHedgeBudgetExhaustedBeforePrimary(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	cat, _ := replicaCat(t, rTable(t, ps), rTable(t, ps))

	rt := NewRuntime()
	rt.Hedge = HedgePolicy{Delay: time.Millisecond}
	rt.Budget = Budget{MaxCalls: 0, MaxTime: time.Nanosecond}
	time.Sleep(time.Millisecond) // let the time budget lapse
	_, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if !errors.Is(err, ErrCallBudget) {
		t.Fatalf("err = %v, want ErrCallBudget", err)
	}
	_ = prof
	if got := cat.TotalStats().Calls; got != 0 {
		t.Errorf("remote calls = %d, want 0", got)
	}
}

// hedgeDelay prefers the observed latency quantile once the set is
// warm, and falls back to the fixed delay (then the 1ms floor) before.
func TestHedgeDelaySelection(t *testing.T) {
	ps := pats(t, `R^o`)
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	tbl := rTable(t, ps).(*sources.Table)
	tbl.OnCall = func(p access.Pattern, inputs []string) {
		mu.Lock()
		now = now.Add(10 * time.Millisecond) // every call "takes" 10ms
		mu.Unlock()
	}
	rs, err := sources.NewReplicaSet(sources.ReplicaConfig{Policy: declOrder{}, Now: clock}, tbl, rTable(t, ps))
	if err != nil {
		t.Fatal(err)
	}

	rt := NewRuntime()
	rt.Hedge = HedgePolicy{Quantile: 0.5, Delay: 40 * time.Millisecond}
	// Cold set: quantile has no samples, fixed delay wins.
	if d := rt.hedgeDelay(rs); d != 40*time.Millisecond {
		t.Errorf("cold delay = %v, want 40ms fallback", d)
	}
	for i := 0; i < 10; i++ {
		if _, err := rs.CallReplica(context.Background(), 0, "o", nil); err != nil {
			t.Fatal(err)
		}
	}
	if d := rt.hedgeDelay(rs); d != 10*time.Millisecond {
		t.Errorf("warm delay = %v, want observed 10ms median", d)
	}
	// Quantile-only, cold, no fixed delay: the floor applies.
	rt2 := NewRuntime()
	rt2.Hedge = HedgePolicy{Quantile: 0.95}
	rs2, err := sources.NewReplicaSet(sources.ReplicaConfig{Policy: declOrder{}}, rTable(t, ps), rTable(t, ps))
	if err != nil {
		t.Fatal(err)
	}
	if d := rt2.hedgeDelay(rs2); d != time.Millisecond {
		t.Errorf("floor delay = %v, want 1ms", d)
	}
}

// Hedging must not disturb deduplication: distinct keys are called
// once each (whatever replica answered), duplicates served for free.
func TestHedgeComposesWithDedup(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	mk := func() *Instance {
		in := NewInstance()
		for i := 0; i < 40; i++ {
			in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%4))
		}
		for z := 0; z < 4; z++ {
			in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
		}
		return in
	}
	catA, catB := mk().MustCatalog(ps), mk().MustCatalog(ps)
	cat, _, err := sources.ReplicaCatalog(sources.ReplicaConfig{Policy: declOrder{}}, catA, catB)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime()
	rt.Hedge = HedgePolicy{Delay: time.Hour}
	ans, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 40 {
		t.Errorf("answers = %d, want 40", ans.Len())
	}
	if got := prof.TotalCalls(); got != 5 { // 1 R scan + 4 distinct T keys
		t.Errorf("calls = %d, want 5", got)
	}
	if got := prof.TotalDeduped(); got != 36 {
		t.Errorf("deduped = %d, want 36", got)
	}
}

// A profiled run against replicated sources reports the per-replica
// breakdown.
func TestProfileSnapshotsReplicas(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	cat, _ := replicaCat(t, rTable(t, ps), rTable(t, ps))
	rt := NewRuntime()
	_, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Replicas) != 1 || prof.Replicas[0].Source != "R" {
		t.Fatalf("Replicas = %+v, want one entry for R", prof.Replicas)
	}
	if got := len(prof.Replicas[0].Replicas); got != 2 {
		t.Errorf("replica breakdown has %d entries, want 2", got)
	}
}

// A shared hedging runtime under concurrent queries with hung and
// failing replicas must stay consistent (exercised by -race) and keep
// the meter identity Calls == BudgetSpent.
func TestHedgeSharedRuntimeConcurrent(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	mk := func(hang bool) *sources.Catalog {
		in := NewInstance()
		for i := 0; i < 12; i++ {
			in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%3))
		}
		for z := 0; z < 3; z++ {
			in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
		}
		base := in.MustCatalog(ps)
		if !hang {
			return base
		}
		var wrapped []sources.Source
		for _, n := range base.Names() {
			wrapped = append(wrapped, sources.NewFlaky(base.Source(n), sources.FlakyConfig{FailEveryN: 3, Hang: true}))
		}
		cat, err := sources.NewCatalog(wrapped...)
		if err != nil {
			t.Fatal(err)
		}
		return cat
	}
	cat, _, err := sources.ReplicaCatalog(sources.ReplicaConfig{}, mk(true), mk(false), mk(false))
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime()
	rt.Hedge = HedgePolicy{Delay: time.Millisecond, MaxHedges: 2}
	rt.PerSource = 4
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				rel, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
				if err != nil {
					t.Errorf("Answer: %v", err)
					return
				}
				if rel.Len() != 12 {
					t.Errorf("answers = %d, want 12", rel.Len())
				}
				_ = prof
			}
		}()
	}
	wg.Wait()
}

// A hedged round must hold one per-source slot for all its legs. With
// per-leg slots this call self-deadlocks: PerSource=1, the hung primary
// holds the only slot, and the backup that would cancel it waits for
// that slot forever. (There is no CallTimeout here on purpose — the
// deadline must not be what unsticks the round.)
func TestHedgeRoundSharesSourceSlot(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	hung := sources.NewFlaky(rTable(t, ps), sources.FlakyConfig{FailEveryN: 1, Hang: true})
	cat, _ := replicaCat(t, hung, rTable(t, ps))

	rt := NewRuntime()
	rt.PerSource = 1
	rt.Hedge = HedgePolicy{Delay: time.Millisecond}

	done := make(chan error, 1)
	go func() {
		ans, err := rt.Answer(context.Background(), q, ps, cat)
		if err == nil && ans.Len() != 1 {
			err = fmt.Errorf("answers = %d, want 1", ans.Len())
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hedged round deadlocked on the per-source slot")
	}
}
