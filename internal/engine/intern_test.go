package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestInternRoundTrip pins the edge cases the evaluator relies on:
// interning is total over arbitrary byte strings — empty, NUL-bearing,
// non-UTF-8 — and str(id(s)) == s for every one of them.
func TestInternRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"a",
		"a\x00b",
		"\x00",
		"\xff\xfe\xfd", // not valid UTF-8
		"\x1f",         // the map path's old dedup separator
		"x\x1fy",       // value containing the separator
		strings.Repeat("v", 4096),
		"héllo wörld",
	}
	for _, s := range cases {
		id, _ := interned.id(s)
		if got := interned.str(id); got != s {
			t.Errorf("str(id(%q)) = %q", s, got)
		}
		id2, fresh := interned.id(s)
		if fresh || id2 != id {
			t.Errorf("re-interning %q: id %d→%d fresh=%v, want stable", s, id, id2, fresh)
		}
	}
}

// TestInternChunkBoundaries crosses several reverse-table chunk
// boundaries and re-reads every value afterwards: chunk growth must
// never invalidate earlier IDs.
func TestInternChunkBoundaries(t *testing.T) {
	n := 3*internChunkSize + 17
	ids := make([]uint32, n)
	vals := make([]string, n)
	for i := 0; i < n; i++ {
		vals[i] = fmt.Sprintf("chunk-test-%d", i)
		ids[i], _ = interned.id(vals[i])
	}
	for i := 0; i < n; i++ {
		if got := interned.str(ids[i]); got != vals[i] {
			t.Fatalf("str(ids[%d]) = %q, want %q", i, got, vals[i])
		}
	}
}

// TestInternConcurrent hammers the interner from many goroutines over
// an overlapping value set: every goroutine must observe the same ID
// for the same string, and every ID must read back to its string. Run
// under -race this exercises the publish-last chunk handoff.
func TestInternConcurrent(t *testing.T) {
	const workers = 8
	const values = 500
	got := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([]uint32, values)
			for i := 0; i < values; i++ {
				id, _ := interned.id(fmt.Sprintf("conc-%d", i))
				if s := interned.str(id); s != fmt.Sprintf("conc-%d", i) {
					t.Errorf("worker %d: str(%d) = %q", w, id, s)
					return
				}
				got[w][i] = id
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < values; i++ {
			if got[w][i] != got[0][i] {
				t.Fatalf("worker %d saw id %d for value %d, worker 0 saw %d", w, got[w][i], i, got[0][i])
			}
		}
	}
}

// FuzzInternRoundTrip fuzzes the round-trip over arbitrary byte
// strings. Without -fuzz the seed corpus runs as a regular test.
func FuzzInternRoundTrip(f *testing.F) {
	f.Add("")
	f.Add("plain")
	f.Add("a\x00b")
	f.Add("\xff\xfe")
	f.Add("\x1f\x1f")
	f.Add(strings.Repeat("long", 1024))
	f.Fuzz(func(t *testing.T, s string) {
		id, _ := interned.id(s)
		if got := interned.str(id); got != s {
			t.Fatalf("str(id(%q)) = %q", s, got)
		}
		id2, fresh := interned.id(s)
		if fresh || id2 != id {
			t.Fatalf("re-interning %q: id %d→%d fresh=%v", s, id, id2, fresh)
		}
	})
}
