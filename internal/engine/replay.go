package engine

// Cache replay support for the streaming path. ReplayStream serves a
// fully cached answer through the Stream interface; ComposeStream
// prepends cached disjunct rows to a live stream over the remaining
// disjuncts and merges the bookkeeping. Both live in this package
// because they assemble Stream's internals; the policy of *what* to
// replay belongs to internal/qcache and the Exec facade.

import (
	"context"
	"time"
)

// ReplayStream returns an already-finished Stream that yields the rows
// of rel (as one batch, in rel's insertion order) and then reports the
// given profile and incompleteness. Drained, it is byte-identical to
// the materialized relation it replays. inc may be nil (strict mode).
func ReplayStream(rel *Rel, prof Profile, inc *Incompleteness) *Stream {
	s := &Stream{
		rows:     make(chan []Row, 1),
		cancel:   func() {},
		start:    time.Now(),
		profDone: make(chan struct{}),
	}
	if rows := rel.Rows(); len(rows) > 0 {
		s.rows <- rows
	}
	close(s.rows)
	p := prof
	s.prof = &p
	s.inc = inc
	close(s.profDone)
	return s
}

// ComposeStream returns a Stream that first yields pre (the rows reused
// from the answer cache, one batch) and then forwards every batch of
// inner (the live stream over the disjuncts that were not reused).
// When inner finishes, its profile is merged with extra's cache
// counters; its incompleteness report, if any, is re-indexed through
// remap (remap[i] = the original rule index of inner's rule i) and
// widened by reusedRules disjuncts that were served from cache (reused
// disjuncts always count as survived). Closing the composed stream
// tears inner down; inner's teardown cancellation is not reported as an
// error.
func ComposeStream(pre []Row, inner *Stream, extra Profile, reusedRules int, remap []int) *Stream {
	cctx, ccancel := context.WithCancel(context.Background())
	out := &Stream{
		rows:     make(chan []Row, 1),
		start:    time.Now(),
		profDone: make(chan struct{}),
	}
	out.cancel = func() {
		ccancel()
		// Mark inner consumer-closed before cancelling it, so its
		// pipelines treat the cancellation as clean teardown rather
		// than a failure.
		inner.mu.Lock()
		inner.closed = true
		inner.mu.Unlock()
		inner.cancel()
	}
	out.wg.Add(1)
	go func() {
		defer out.wg.Done()
		if len(pre) > 0 {
			out.emit(cctx, pre)
		}
		for batch := range inner.rows {
			if !out.emit(cctx, batch) {
				break
			}
		}
		err := inner.Close()

		prof := extra
		if p, ok := inner.Profile(); ok {
			cache := prof
			prof = p
			prof.Cache.PlanHits += cache.Cache.PlanHits
			prof.Cache.AnswerHits += cache.Cache.AnswerHits
			prof.Cache.PartialReuseRules += cache.Cache.PartialReuseRules
			prof.Cache.Evictions += cache.Cache.Evictions
		}
		var inc *Incompleteness
		if in, ok := inner.Incomplete(); ok {
			merged := in
			merged.Failed = append([]RuleFailure(nil), in.Failed...)
			for i := range merged.Failed {
				if idx := merged.Failed[i].RuleIndex; idx >= 0 && idx < len(remap) {
					merged.Failed[i].RuleIndex = remap[idx]
				}
			}
			merged.RulesTotal += reusedRules
			merged.RulesSurvived += reusedRules
			inc = &merged
		}

		out.mu.Lock()
		prof.Elapsed = time.Since(out.start)
		prof.TimeToFirst = out.ttf
		out.prof = &prof
		out.inc = inc
		if err != nil && out.err == nil && !out.closed {
			out.err = err
		}
		out.mu.Unlock()
		close(out.rows)
		close(out.profDone)
	}()
	return out
}
