package engine

import (
	"strings"
	"testing"
)

func TestAnswerProfiled(t *testing.T) {
	in := NewInstance()
	for _, x := range []string{"a", "b", "c"} {
		in.MustAdd("R", x, "k")
	}
	in.MustAdd("T", "k", "v")
	in.MustAdd("L", "b")
	ps := pats(t, `R^oo T^io L^i`)
	cat := in.MustCatalog(ps)
	u := ucq(t, `Q(x, y) :- R(x, z), not L(x), T(z, y).`)

	rel, prof, err := AnswerProfiled(u, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("answers = %s", rel)
	}
	if len(prof.Rules) != 1 || len(prof.Rules[0].Steps) != 3 {
		t.Fatalf("profile shape: %+v", prof)
	}
	steps := prof.Rules[0].Steps
	// R^oo: one call, 3 tuples, bindings 1→3.
	if steps[0].Calls != 1 || steps[0].TuplesReturned != 3 || steps[0].BindingsIn != 1 || steps[0].BindingsOut != 3 {
		t.Errorf("R step = %+v", steps[0])
	}
	// not L: 3 calls (one per binding), filters b out: 3→2.
	if steps[1].Calls != 3 || steps[1].BindingsOut != 2 {
		t.Errorf("L step = %+v", steps[1])
	}
	// T^io: both surviving bindings share the input key k, so the
	// runtime issues 1 call and dedupes the other: 1 tuple, 2→2.
	if steps[2].Calls != 1 || steps[2].DedupedCalls != 1 || steps[2].BindingsOut != 2 {
		t.Errorf("T step = %+v", steps[2])
	}
	if prof.TotalCalls() != 5 {
		t.Errorf("TotalCalls = %d, want 5", prof.TotalCalls())
	}
	if prof.TotalDeduped() != 1 {
		t.Errorf("TotalDeduped = %d, want 1", prof.TotalDeduped())
	}
	if prof.TotalTuples() != 4+steps[1].TuplesReturned {
		t.Errorf("TotalTuples = %d", prof.TotalTuples())
	}
	if prof.Rules[0].Answers != 2 {
		t.Errorf("Answers = %d", prof.Rules[0].Answers)
	}
	if prof.Elapsed <= 0 || prof.Rules[0].Elapsed <= 0 {
		t.Errorf("wall-clock missing: plan=%v rule=%v", prof.Elapsed, prof.Rules[0].Elapsed)
	}
	for i, sp := range steps {
		if sp.Elapsed <= 0 {
			t.Errorf("step %d has no elapsed time", i)
		}
	}
	// Materializing evaluation holds input+output binding sets of the
	// widest step: R^oo goes 1→3, ¬L 3→2, T^io 2→2, so the peak is 3+2=5.
	if prof.Rules[0].PeakBindings != 5 || prof.PeakBindings() != 5 {
		t.Errorf("PeakBindings = %d (rule %d), want 5", prof.PeakBindings(), prof.Rules[0].PeakBindings)
	}
	s := prof.String()
	for _, want := range []string{"rule 1:", "calls=", "dedup=", "bindings 1→3", "(2 answers"} {
		if !strings.Contains(s, want) {
			t.Errorf("Profile.String() missing %q:\n%s", want, s)
		}
	}
}

// The profile's totals agree with the catalog's meters.
func TestProfileAgreesWithMeters(t *testing.T) {
	in := bookstore(t)
	ps := pats(t, `B^ioo B^oio C^oo L^o`)
	cat := in.MustCatalog(ps)
	u := ucq(t, `Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).`)
	_, prof, err := AnswerProfiled(u, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	st := cat.TotalStats()
	if prof.TotalCalls() != st.Calls {
		t.Errorf("profile calls %d != meter calls %d", prof.TotalCalls(), st.Calls)
	}
	if prof.TotalTuples() != st.TuplesReturned {
		t.Errorf("profile tuples %d != meter tuples %d", prof.TotalTuples(), st.TuplesReturned)
	}
}

func TestAnswerProfiledSkipsFalseRules(t *testing.T) {
	in := NewInstance().MustAdd("R", "a")
	ps := pats(t, `R^o`)
	cat := in.MustCatalog(ps)
	u := ucq(t, "Q(x) :- R(x).\nQ(x) :- false.")
	rel, prof, err := AnswerProfiled(u, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || len(prof.Rules) != 1 {
		t.Errorf("rel=%s profile rules=%d", rel, len(prof.Rules))
	}
}
