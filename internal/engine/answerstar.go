package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/sources"
)

// AnswerStar is the outcome of the ANSWER* algorithm (Figure 4 of the
// paper): the runtime underestimate and overestimate of the answer to Q
// on the current database, their difference Δ, and the completeness
// information ANSWER* reports to the user.
type AnswerStar struct {
	// Plans is the compile-time PLAN* output that was executed.
	Plans core.PlanStar
	// Under is ansᵤ = ANSWER(Qᵘ, D): tuples guaranteed to be answers.
	Under *Rel
	// Over is ansₒ = ANSWER(Qᵒ, D): every answer is subsumed by some
	// overestimate tuple (null means "unknown value", Example 7).
	Over *Rel
	// Delta is Δ = ansₒ \ ansᵤ, the tuples that may be answers.
	Delta *Rel
	// Complete reports Δ = ∅: the answer is complete even if the query
	// is infeasible (Example 5).
	Complete bool
	// Ratio is the completeness lower bound |ansᵤ|/|ansₒ|, valid only
	// when RatioValid (Δ nonempty and free of nulls; Example 7 explains
	// why nulls forbid a numeric bound).
	Ratio      float64
	RatioValid bool
}

// Report renders the ANSWER* output in the shape of Figure 4.
func (a AnswerStar) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "answer tuples (underestimate, %d):\n", a.Under.Len())
	for _, r := range a.Under.Sorted() {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	if a.Complete {
		b.WriteString("answer is complete\n")
		return strings.TrimRight(b.String(), "\n")
	}
	b.WriteString("answer is not known to be complete\n")
	b.WriteString("these tuples may be part of the answer:\n")
	for _, r := range a.Delta.Sorted() {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	if a.RatioValid {
		fmt.Fprintf(&b, "answer is at least %.2f complete\n", a.Ratio)
	}
	return strings.TrimRight(b.String(), "\n")
}

// RunAnswerStar executes ANSWER*: it computes the PLAN* plans for u,
// evaluates both against the catalog, and derives Δ and the completeness
// report.
func RunAnswerStar(u logic.UCQ, ps *access.Set, cat *sources.Catalog) (AnswerStar, error) {
	return defaultRuntime.RunAnswerStar(context.Background(), u, ps, cat)
}

// RunAnswerStar is the package-level RunAnswerStar on this runtime.
func (rt *Runtime) RunAnswerStar(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog) (AnswerStar, error) {
	plans := core.ComputePlans(u, ps)
	return rt.RunAnswerStarWithPlans(ctx, plans, ps, cat)
}

// RunAnswerStarWithPlans is RunAnswerStar for precomputed plans (so
// callers can reuse a compile-time PLAN* across database states).
func RunAnswerStarWithPlans(plans core.PlanStar, ps *access.Set, cat *sources.Catalog) (AnswerStar, error) {
	return defaultRuntime.RunAnswerStarWithPlans(context.Background(), plans, ps, cat)
}

// RunAnswerStarWithPlans is the package-level RunAnswerStarWithPlans on
// this runtime.
func (rt *Runtime) RunAnswerStarWithPlans(ctx context.Context, plans core.PlanStar, ps *access.Set, cat *sources.Catalog) (AnswerStar, error) {
	under, err := rt.Answer(ctx, plans.Under, ps, cat)
	if err != nil {
		return AnswerStar{}, fmt.Errorf("engine: evaluating underestimate: %w", err)
	}
	over, err := rt.Answer(ctx, plans.Over, ps, cat)
	if err != nil {
		return AnswerStar{}, fmt.Errorf("engine: evaluating overestimate: %w", err)
	}
	out := AnswerStar{Plans: plans, Under: under, Over: over, Delta: over.Minus(under)}
	out.Complete = out.Delta.Len() == 0
	if !out.Complete && !out.Delta.HasNull() && over.Len() > 0 {
		out.Ratio = float64(under.Len()) / float64(over.Len())
		out.RatioValid = true
	}
	return out, nil
}

// ImproveUnder upgrades the underestimate with domain enumeration views
// (the optional last step of Figure 4, detailed in Example 8): rules that
// PLAN* dismissed because of an unanswerable part U are re-admitted as
// ans ∧ dom(v…) ∧ U when every relation of U is callable at all. It
// returns the improved underestimate relation and the improved rules
// used, along with the enumeration metadata.
func ImproveUnder(a AnswerStar, ps *access.Set, cat *sources.Catalog, maxCalls int) (*Rel, logic.UCQ, DomResult, error) {
	return defaultRuntime.ImproveUnder(context.Background(), a, ps, cat, maxCalls)
}

// ImproveUnder is the package-level ImproveUnder on this runtime,
// honoring the context through both the domain enumeration and the
// improved-rule evaluation.
func (rt *Runtime) ImproveUnder(ctx context.Context, a AnswerStar, ps *access.Set, cat *sources.Catalog, maxCalls int) (*Rel, logic.UCQ, DomResult, error) {
	dom, err := EnumerateDomainContext(ctx, cat, nil, maxCalls)
	if err != nil {
		return nil, logic.UCQ{}, dom, err
	}
	cat2, ps2, err := WithDomSource(cat, ps, dom.Values)
	if err != nil {
		return nil, logic.UCQ{}, dom, err
	}
	improved := NewRel()
	improved.AddAll(a.Under)
	var rules []logic.CQ
	for _, ra := range a.Plans.Rules {
		if ra.Complete() || ra.Ans.False {
			continue
		}
		rule, ok := ImprovedUnderRule(ra.Ans, ra.Unanswerable, ps)
		if !ok {
			continue
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return improved, logic.UCQ{}, dom, nil
	}
	u := logic.UCQ{Rules: rules}
	extra, err := rt.Answer(ctx, u, ps2, cat2)
	if err != nil {
		return nil, u, dom, fmt.Errorf("engine: evaluating improved underestimate: %w", err)
	}
	improved.AddAll(extra)
	return improved, u, dom, nil
}
