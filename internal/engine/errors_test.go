package engine

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestAnswerErrorPaths(t *testing.T) {
	in := NewInstance().MustAdd("R", "a")
	ps := pats(t, `R^o`)
	cat := in.MustCatalog(ps)

	// Non-executable order.
	if _, err := Answer(ucq(t, `Q(x) :- S(x).`), ps, cat); err == nil {
		t.Error("rule over a pattern-less relation must fail")
	}

	// Catalog missing a relation the pattern set declares.
	ps2 := pats(t, `R^o S^o`)
	if _, err := Answer(ucq(t, `Q(x) :- S(x).`), ps2, cat); err == nil || !strings.Contains(err.Error(), "no source") {
		t.Errorf("missing source must fail, got %v", err)
	}
}

func TestHeadRowErrors(t *testing.T) {
	// An unsafe plan (head variable never bound) is caught at head
	// construction. Build it directly since the parser rejects it.
	q := logic.CQ{
		HeadPred: "Q",
		HeadArgs: []logic.Term{logic.Var("ghost")},
		Body:     []logic.Literal{logic.Pos(logic.NewAtom("R", logic.Var("x")))},
	}
	in := NewInstance().MustAdd("R", "a")
	ps := pats(t, `R^o`)
	cat := in.MustCatalog(ps)
	if _, err := Answer(logic.UCQ{Rules: []logic.CQ{q}}, ps, cat); err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("unsafe head must fail, got %v", err)
	}
}

func TestHeadConstantsAndNulls(t *testing.T) {
	in := NewInstance().MustAdd("R", "a")
	ps := pats(t, `R^o`)
	cat := in.MustCatalog(ps)
	q := logic.CQ{
		HeadPred: "Q",
		HeadArgs: []logic.Term{logic.Const("tag"), logic.Var("x"), logic.Null},
		Body:     []logic.Literal{logic.Pos(logic.NewAtom("R", logic.Var("x")))},
	}
	rel, err := Answer(logic.UCQ{Rules: []logic.CQ{q}}, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := Row{V("tag"), V("a"), NullValue}
	if rel.Len() != 1 || !rel.Contains(want) {
		t.Errorf("rel = %s, want %s", rel, want)
	}
}

func TestNaiveArityMismatch(t *testing.T) {
	in := NewInstance().MustAdd("R", "a", "b")
	if _, err := AnswerNaive(ucq(t, `Q(x) :- R(x).`), in); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestNaiveNullInBody(t *testing.T) {
	in := NewInstance().MustAdd("R", "a")
	q := logic.CQ{
		HeadPred: "Q",
		HeadArgs: []logic.Term{logic.Var("x")},
		Body: []logic.Literal{
			logic.Pos(logic.NewAtom("R", logic.Var("x"))),
			logic.Neg(logic.NewAtom("S", logic.Null)),
		},
	}
	if _, err := AnswerNaive(logic.UCQ{Rules: []logic.CQ{q}}, in); err == nil {
		t.Error("null in a body atom must fail")
	}
}

// Example 3 under naive evaluation: the union is equivalent to
// Q'(a) :- L(i), B(i, a, t) on every instance (active-domain semantics
// for the negation-unsafe variables).
func TestExample3NaiveSemantics(t *testing.T) {
	u := ucq(t, `
		Q(a) :- B(i, a, t), L(i), B(i', a', t).
		Q(a) :- B(i, a, t), L(i), not B(i', a', t).
	`)
	qp := ucq(t, `Q(a) :- L(i), B(i, a, t).`)
	instances := []*Instance{
		NewInstance().
			MustAdd("B", "i1", "knuth", "taocp").
			MustAdd("L", "i1"),
		NewInstance().
			MustAdd("B", "i1", "knuth", "taocp").
			MustAdd("B", "i2", "date", "taocp").
			MustAdd("L", "i1").MustAdd("L", "i2"),
		NewInstance().
			MustAdd("B", "i1", "knuth", "taocp").
			MustAdd("L", "i9"),
		NewInstance(),
	}
	for i, in := range instances {
		a, err := AnswerNaive(u, in)
		if err != nil {
			t.Fatal(err)
		}
		b, err := AnswerNaive(qp, in)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("instance %d: union = %s, Q' = %s", i, a, b)
		}
	}
}

func TestNegationJointWitness(t *testing.T) {
	// A variable shared by two negated literals needs one witness value
	// satisfying both: ∃z (¬P(z) ∧ ¬S(z)).
	q := logic.CQ{
		HeadPred: "Q",
		HeadArgs: []logic.Term{logic.Var("x")},
		Body: []logic.Literal{
			logic.Pos(logic.NewAtom("R", logic.Var("x"))),
			logic.Neg(logic.NewAtom("P", logic.Var("z"))),
			logic.Neg(logic.NewAtom("S", logic.Var("z"))),
		},
	}
	u := logic.UCQ{Rules: []logic.CQ{q}}
	// Domain {a, b}: P = {a}, S = {b}. No single z avoids both, so no
	// answers.
	in := NewInstance().MustAdd("R", "a").MustAdd("R", "b").MustAdd("P", "a").MustAdd("S", "b")
	rel, err := AnswerNaive(u, in)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Errorf("joint witness must fail, got %s", rel)
	}
	// Add a value outside both: now every x qualifies.
	in.MustAdd("R", "c")
	rel2, err := AnswerNaive(u, in)
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Len() != 3 {
		t.Errorf("with witness c want 3 answers, got %s", rel2)
	}
}

func TestRelStringAndSorted(t *testing.T) {
	r := NewRel()
	r.Add(RowOf("b"))
	r.Add(RowOf("a"))
	r.Add(Row{NullValue})
	s := r.String()
	if !strings.Contains(s, `("a")`) || !strings.Contains(s, "(null)") {
		t.Errorf("String = %q", s)
	}
	sorted := r.Sorted()
	if len(sorted) != 3 || sorted[0].Key() > sorted[1].Key() {
		t.Errorf("Sorted = %v", sorted)
	}
	if !r.HasNull() {
		t.Error("HasNull must see the null row")
	}
}

func TestInstanceCatalogArityMismatch(t *testing.T) {
	in := NewInstance().MustAdd("R", "a", "b")
	ps := pats(t, `R^o`)
	if _, err := in.Catalog(ps); err == nil {
		t.Error("declared arity 1 vs stored arity 2 must fail")
	}
}
