package engine

// Columnar batch evaluation: the hot loop of every execution path.
//
// The historical evaluator carries each binding as a map[string]string
// and re-unifies every returned tuple against every binding
// (tupleMatches), which allocates a map clone per surviving pair and
// compares strings throughout. Here a plan is compiled once per rule
// into a slot program — every variable gets a dense column slot, every
// atom position a static role — and bindings flow between steps as
// colBatch values: slot-indexed vectors of interned uint32 value IDs
// (see intern.go). One step is then a hash join: each distinct source
// call's tuples are interned, filtered by the static constant and
// repeated-variable constraints once, and grouped by their bound-
// position key — built once per call — and each input row probes by its
// own bound-slot key, emitting one output row per matching tuple.
// Column buffers are recycled through a per-execution colPool.
//
// The columnar path is observationally identical to the map path: same
// source calls in the same dedup groups (keys are now binary ID tuples,
// which also fixes the latent '\x1f'-in-value collision of the string
// key), same output rows in the same order (input-row order × tuple
// order, exactly the map path's fan-out), and the same lazily raised
// planning errors. Strings materialize only at the edges: call inputs
// handed to internal/sources and head rows handed to Rel/Stream.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// colBatch is one batch of bindings in columnar form: n rows over
// slot-indexed columns of interned value IDs. Only slots bound at this
// point of the plan have columns; the rest are nil.
type colBatch struct {
	n    int
	cols [][]uint32
}

// colPool recycles column buffers and batch headers within one
// execution. Batches die at every pipeline stage (the output batch
// never aliases the input), so without reuse the hot loop would churn
// one column allocation per slot per batch. The pool is shared by all
// rules and stages of an execution and is safe for concurrent use; it
// also carries the execution's batch accounting (Profile.Batch).
type colPool struct {
	mu          sync.Mutex
	freeCols    [][]uint32
	freeBatches []*colBatch

	nBatches  atomic.Int64 // batches run through applyStepCol
	nInterned atomic.Int64 // tuple values newly interned this execution
	nReuses   atomic.Int64 // column buffers served from the free list

	// Spill table: values the process-wide interner's cap refused
	// (SetInternerCap) get execution-local IDs at or above spillBase,
	// resolving here instead. The table dies with the execution, so a
	// tenant streaming unbounded distinct values pays for them only
	// while its own query runs.
	spillMu   sync.RWMutex
	spillIDs  map[string]uint32
	spillStrs []string
}

func newColPool() *colPool { return &colPool{} }

// internID resolves a value to an ID for this execution: the spill
// table first — a value this execution already spilled must keep its
// spill ID even if another execution interned it globally since — then
// the global interner, interning under the cap, then a fresh spill
// entry. fresh reports a new global intern (Profile.Batch accounting).
func (p *colPool) internID(s string) (id uint32, fresh bool) {
	p.spillMu.RLock()
	if p.spillIDs != nil {
		if id, ok := p.spillIDs[s]; ok {
			p.spillMu.RUnlock()
			return id, false
		}
	}
	p.spillMu.RUnlock()
	if id, ok := interned.lookup(s); ok {
		return id, false
	}
	if id, fresh, ok := interned.tryID(s); ok {
		return id, fresh
	}
	p.spillMu.Lock()
	if p.spillIDs == nil {
		p.spillIDs = map[string]uint32{}
	}
	if id, ok := p.spillIDs[s]; ok {
		p.spillMu.Unlock()
		return id, false
	}
	id = spillBase + uint32(len(p.spillStrs))
	p.spillStrs = append(p.spillStrs, s)
	p.spillIDs[s] = id
	p.spillMu.Unlock()
	return id, false
}

// str resolves an ID assigned by internID back to its value.
func (p *colPool) str(id uint32) string {
	if id < spillBase {
		return interned.str(id)
	}
	p.spillMu.RLock()
	s := p.spillStrs[id-spillBase]
	p.spillMu.RUnlock()
	return s
}

// spilled returns the number of values this execution spilled.
func (p *colPool) spilled() int {
	p.spillMu.RLock()
	defer p.spillMu.RUnlock()
	return len(p.spillStrs)
}

// getCol returns a column of length n, reusing a free buffer when one
// is large enough.
func (p *colPool) getCol(n int) []uint32 {
	p.mu.Lock()
	for i := len(p.freeCols) - 1; i >= 0; i-- {
		if cap(p.freeCols[i]) >= n {
			buf := p.freeCols[i]
			last := len(p.freeCols) - 1
			p.freeCols[i] = p.freeCols[last]
			p.freeCols = p.freeCols[:last]
			p.mu.Unlock()
			p.nReuses.Add(1)
			return buf[:n]
		}
	}
	p.mu.Unlock()
	return make([]uint32, n)
}

// getBatch returns an empty batch with a cols slice of numSlots nil
// columns.
func (p *colPool) getBatch(numSlots int) *colBatch {
	p.mu.Lock()
	var b *colBatch
	if n := len(p.freeBatches); n > 0 {
		b = p.freeBatches[n-1]
		p.freeBatches = p.freeBatches[:n-1]
	}
	p.mu.Unlock()
	if b == nil {
		b = &colBatch{}
	}
	b.n = 0
	if cap(b.cols) < numSlots {
		b.cols = make([][]uint32, numSlots)
	} else {
		b.cols = b.cols[:numSlots]
		for i := range b.cols {
			b.cols[i] = nil
		}
	}
	return b
}

// put releases a batch: its columns return to the free list and the
// header is recycled. The caller must not touch b afterwards.
func (p *colPool) put(b *colBatch) {
	if b == nil {
		return
	}
	p.mu.Lock()
	for i, c := range b.cols {
		if cap(c) > 0 {
			p.freeCols = append(p.freeCols, c[:0])
		}
		b.cols[i] = nil
	}
	b.n = 0
	p.freeBatches = append(p.freeBatches, b)
	p.mu.Unlock()
}

// batchProfile snapshots the pool's counters into a Profile section.
func (p *colPool) batchProfile() BatchProfile {
	return BatchProfile{
		BatchesProcessed: int(p.nBatches.Load()),
		InternedValues:   int(p.nInterned.Load()),
		ArenaReuses:      int(p.nReuses.Load()),
		SpilledValues:    p.spilled(),
	}
}

// argRole classifies one atom position of a compiled step.
type argRole uint8

const (
	// argConst: constant in the atom; a tuple survives iff its value at
	// this position equals constID.
	argConst argRole = iota
	// argFirst: a variable's first occurrence, bound by this atom; the
	// tuple value flows into the variable's slot (positive steps).
	argFirst
	// argRepeat: a later occurrence of an argFirst variable within the
	// same atom; the tuple must agree with itself at firstPos.
	argRepeat
	// argBound: a variable bound by an earlier step; a probe position of
	// the hash join.
	argBound
	// argNull: a null term in a body atom; it never matches stored data
	// (the map path's tupleMatches returns nil unconditionally).
	argNull
)

// stepArg is the compiled role of one atom position.
type stepArg struct {
	role     argRole
	constID  uint32 // argConst
	slot     int    // argFirst: slot written; argBound: slot probed
	firstPos int    // argRepeat: position of the variable's first occurrence
}

// inputSrc says where one call-input value comes from: a bound slot's
// column (slot ≥ 0) or a compile-time constant.
type inputSrc struct {
	slot    int // -1 for constants
	constID uint32
}

// newCol is a column a positive step adds: the variable's slot filled
// from the matching tuple's position.
type newCol struct {
	slot, pos int
}

// stepProgram is one compiled plan step.
type stepProgram struct {
	step       access.AdornedLiteral
	args       []stepArg
	inputs     []inputSrc
	boundPos   []int // atom positions with role argBound, in order
	probeSlots []int // the slot probed for each boundPos entry
	copySlots  []int // slots bound before this step (copied through)
	newCols    []newCol
	// err is the step's lazy compile error (unbound or null call input),
	// raised — like the map path's per-binding callInputs error — only
	// when rows actually reach the step.
	err error
}

// headArg kinds.
const (
	headConst = iota
	headNull
	headSlot
)

// headArg is one compiled head position.
type headArg struct {
	kind int
	val  Value // headConst
	slot int   // headSlot
}

// ruleProgram is one rule's compiled columnar plan.
type ruleProgram struct {
	rule     logic.CQ
	numSlots int
	steps    []stepProgram
	head     []headArg
	// headSlots are the slots of the headSlot args, in head order: the
	// ID-space identity of a head row within this rule (const and null
	// positions are fixed per rule, so they carry no information).
	headSlots []int
	// headErr is the unsafe-plan error (head variable never bound),
	// raised only when bindings reach the head, as in the map path.
	headErr error
}

// compileRule translates an adorned plan into a slot program. It never
// fails: structural problems (unbound inputs, unsafe heads) become lazy
// errors raised exactly where the per-binding evaluator would raise
// them. Compilation is cheap (linear in the plan) and runs once per
// rule per execution. Constants intern through the execution's pool so
// a capped interner spills them instead of growing the global table.
func compileRule(q logic.CQ, steps []access.AdornedLiteral, pool *colPool) *ruleProgram {
	prog := &ruleProgram{rule: q, steps: make([]stepProgram, len(steps))}
	slotOf := map[string]int{}
	var bound []bool // indexed by slot
	slot := func(name string) int {
		if s, ok := slotOf[name]; ok {
			return s
		}
		s := prog.numSlots
		prog.numSlots++
		slotOf[name] = s
		bound = append(bound, false)
		return s
	}
	for si, st := range steps {
		sp := &prog.steps[si]
		sp.step = st
		atom := st.Literal.Atom
		for j, t := range atom.Args {
			if !st.Pattern.Input(j) {
				continue
			}
			switch {
			case t.IsConst():
				id, _ := pool.internID(t.Name)
				sp.inputs = append(sp.inputs, inputSrc{slot: -1, constID: id})
			case t.IsVar():
				if s, ok := slotOf[t.Name]; ok && bound[s] {
					sp.inputs = append(sp.inputs, inputSrc{slot: s})
				} else if sp.err == nil {
					sp.err = fmt.Errorf("engine: input slot %d of %s needs unbound variable %s", j+1, st, t.Name)
				}
			default:
				if sp.err == nil {
					sp.err = fmt.Errorf("engine: null cannot be used as a call input in %s", st)
				}
			}
		}
		sp.args = make([]stepArg, len(atom.Args))
		firstAt := map[string]int{}
		for j, t := range atom.Args {
			a := &sp.args[j]
			switch {
			case t.IsConst():
				a.role = argConst
				a.constID, _ = pool.internID(t.Name)
			case t.IsVar():
				if s, ok := slotOf[t.Name]; ok && bound[s] {
					a.role = argBound
					a.slot = s
					sp.boundPos = append(sp.boundPos, j)
					sp.probeSlots = append(sp.probeSlots, s)
					continue
				}
				if p, ok := firstAt[t.Name]; ok {
					a.role = argRepeat
					a.firstPos = p
					continue
				}
				a.role = argFirst
				a.slot = slot(t.Name)
				firstAt[t.Name] = j
			default:
				a.role = argNull
			}
		}
		for s := 0; s < len(bound); s++ {
			if bound[s] {
				sp.copySlots = append(sp.copySlots, s)
			}
		}
		// A positive step binds its fresh variables for downstream steps;
		// a negated step is a pure filter (the map path discards the
		// extended binding and keeps the original).
		if !st.Literal.Negated {
			for j := range sp.args {
				if sp.args[j].role == argFirst {
					sp.newCols = append(sp.newCols, newCol{slot: sp.args[j].slot, pos: j})
					bound[sp.args[j].slot] = true
				}
			}
		}
	}
	prog.head = make([]headArg, len(q.HeadArgs))
	for i, t := range q.HeadArgs {
		h := &prog.head[i]
		switch {
		case t.IsNull():
			h.kind = headNull
		case t.IsConst():
			h.kind = headConst
			h.val = V(t.Name)
		default:
			if s, ok := slotOf[t.Name]; ok && bound[s] {
				h.kind = headSlot
				h.slot = s
				prog.headSlots = append(prog.headSlots, s)
			} else if prog.headErr == nil {
				prog.headErr = fmt.Errorf("engine: head variable %s is unbound; plan for %s is unsafe", t.Name, q.HeadPred)
			}
		}
	}
	return prog
}

// materializeInputs builds the string inputs of one distinct call (the
// only place input strings materialize; deduped rows never do).
func (sp *stepProgram) materializeInputs(in *colBatch, row int, pool *colPool) []string {
	if len(sp.inputs) == 0 {
		return nil
	}
	out := make([]string, len(sp.inputs))
	for k, s := range sp.inputs {
		if s.slot >= 0 {
			out[k] = pool.str(in.cols[s.slot][row])
		} else {
			out[k] = pool.str(s.constID)
		}
	}
	return out
}

// callJoin is the hash-join side of one distinct source call: the
// call's tuples interned and pre-filtered by the step's static
// constraints, grouped by their bound-position key. It is built once
// per call — in a streamed stage the memo carries it across batches —
// and probed once per input row.
type callJoin struct {
	vals   []uint32 // len(rows) × arity interned tuple values
	arity  int
	groups map[string][]int32 // probe key -> surviving tuple indices, in tuple order
}

// buildJoin interns and filters the call's tuples and groups them by
// bound-position key. Tuple order is preserved within each group, so
// probing emits matches in exactly the map path's order.
func (sp *stepProgram) buildJoin(rows []sources.Tuple, pool *colPool) *callJoin {
	arity := len(sp.args)
	j := &callJoin{arity: arity, groups: make(map[string][]int32, 1+len(rows)/4)}
	if len(rows) > 0 && arity > 0 {
		j.vals = make([]uint32, len(rows)*arity)
	}
	keyBuf := make([]byte, 0, 4*len(sp.boundPos))
	for ti, t := range rows {
		vals := j.vals[ti*arity : (ti+1)*arity]
		ok := true
		for p := 0; p < arity && ok; p++ {
			id, fresh := pool.internID(t[p])
			if fresh {
				pool.nInterned.Add(1)
			}
			vals[p] = id
			switch a := &sp.args[p]; a.role {
			case argConst:
				ok = id == a.constID
			case argRepeat:
				ok = id == vals[a.firstPos]
			case argNull:
				ok = false
			}
		}
		if !ok {
			continue
		}
		keyBuf = keyBuf[:0]
		for _, p := range sp.boundPos {
			v := vals[p]
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		if g, found := j.groups[string(keyBuf)]; found {
			j.groups[string(keyBuf)] = append(g, int32(ti))
		} else {
			j.groups[string(keyBuf)] = []int32{int32(ti)}
		}
	}
	return j
}

// applyStepCol runs one compiled plan step over a columnar batch: group
// rows into distinct calls by their input IDs, issue the distinct calls
// through the runtime (worker pool, retries, hedging, budget — the
// same issue() as the map path), then hash-join each row against its
// call's tuples and emit output batches of at most limit rows (limit
// ≤ 0 means one batch). memo extends call deduplication across batches
// exactly like the map path's.
//
// It returns the number of rows emitted and whether emit stopped the
// step early (pipeline cancellation; not an error).
func (rt *Runtime) applyStepCol(ctx context.Context, prog *ruleProgram, si int, cat *sources.Catalog, in *colBatch, sp *StepProfile, memo map[string]*stepCall, budget *budgetState, pool *colPool, limit int, emit func(*colBatch) bool) (int, bool, error) {
	sp0 := &prog.steps[si]
	step := sp0.step
	src := cat.Source(step.Literal.Atom.Pred)
	if src == nil {
		return 0, false, fmt.Errorf("engine: no source for relation %s", step.Literal.Atom.Pred)
	}
	if in.n > 0 && sp0.err != nil {
		return 0, false, sp0.err
	}
	pool.nBatches.Add(1)

	// Group rows into distinct calls by their binary input-ID key.
	calls := make([]*stepCall, 0, 8)
	callOf := make([]*stepCall, in.n)
	byKey := memo
	if rt.Dedup && byKey == nil {
		byKey = make(map[string]*stepCall, in.n)
	}
	keyBuf := make([]byte, 0, 4*len(sp0.inputs))
	for i := 0; i < in.n; i++ {
		if rt.Dedup {
			keyBuf = keyBuf[:0]
			for _, is := range sp0.inputs {
				v := is.constID
				if is.slot >= 0 {
					v = in.cols[is.slot][i]
				}
				keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			if c, ok := byKey[string(keyBuf)]; ok {
				callOf[i] = c
				sp.DedupedCalls++
				continue
			}
			c := &stepCall{inputs: sp0.materializeInputs(in, i, pool)}
			byKey[string(keyBuf)] = c
			calls = append(calls, c)
			callOf[i] = c
			continue
		}
		c := &stepCall{inputs: sp0.materializeInputs(in, i, pool)}
		calls = append(calls, c)
		callOf[i] = c
	}
	if err := rt.issue(ctx, src, step, calls, sp, budget); err != nil {
		return 0, false, err
	}
	for _, c := range calls {
		c.join = sp0.buildJoin(c.rows, pool)
	}

	// Probe every row, resolving its matching tuple group and the total
	// output cardinality before any output column is allocated.
	negated := step.Literal.Negated
	rowGroups := make([][]int32, in.n)
	total := 0
	for i := 0; i < in.n; i++ {
		keyBuf = keyBuf[:0]
		for _, s := range sp0.probeSlots {
			v := in.cols[s][i]
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		g := callOf[i].join.groups[string(keyBuf)]
		rowGroups[i] = g
		if negated {
			if len(g) == 0 {
				total++
			}
		} else {
			total += len(g)
		}
	}
	if total == 0 {
		return 0, false, nil
	}

	mk := func(n int) *colBatch {
		b := pool.getBatch(prog.numSlots)
		b.n = n
		for _, s := range sp0.copySlots {
			b.cols[s] = pool.getCol(n)
		}
		for _, nc := range sp0.newCols {
			b.cols[nc.slot] = pool.getCol(n)
		}
		return b
	}
	chunk := total
	if limit > 0 && limit < chunk {
		chunk = limit
	}
	ob := mk(chunk)
	emitted, k := 0, 0
	flush := func() bool {
		ob.n = k
		if !emit(ob) {
			return false
		}
		emitted += k
		k = 0
		if rem := total - emitted; rem > 0 {
			c := rem
			if limit > 0 && limit < c {
				c = limit
			}
			ob = mk(c)
		} else {
			ob = nil
		}
		return true
	}
	for i := 0; i < in.n; i++ {
		g := rowGroups[i]
		if negated {
			if len(g) != 0 {
				continue
			}
			for _, s := range sp0.copySlots {
				ob.cols[s][k] = in.cols[s][i]
			}
			k++
			if limit > 0 && k == limit && !flush() {
				return emitted, true, nil
			}
			continue
		}
		if len(g) == 0 {
			continue
		}
		join := callOf[i].join
		for _, ti := range g {
			vals := join.vals[int(ti)*join.arity:]
			for _, s := range sp0.copySlots {
				ob.cols[s][k] = in.cols[s][i]
			}
			for _, nc := range sp0.newCols {
				ob.cols[nc.slot][k] = vals[nc.pos]
			}
			k++
			if limit > 0 && k == limit && !flush() {
				return emitted, true, nil
			}
		}
	}
	if k > 0 && !flush() {
		return emitted, true, nil
	}
	return emitted, false, nil
}

// headKey appends batch row i's ID-space head identity to buf: two
// rows of the same rule produce equal keys iff their materialized head
// rows are byte-identical (const and null head positions are invariant
// within a rule, so only the slot-bound positions are encoded).
func (prog *ruleProgram) headKey(b *colBatch, i int, buf []byte) []byte {
	for _, s := range prog.headSlots {
		v := b.cols[s][i]
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// headRowCol materializes the answer row for one batch row: the only
// place head strings leave the interned domain.
func (prog *ruleProgram) headRowCol(b *colBatch, i int, pool *colPool) Row {
	row := make(Row, len(prog.head))
	for k := range prog.head {
		switch h := &prog.head[k]; h.kind {
		case headNull:
			row[k] = NullValue
		case headConst:
			row[k] = h.val
		default:
			row[k] = V(pool.str(b.cols[h.slot][i]))
		}
	}
	return row
}

// runStepsCol is the columnar materializing evaluator: the default
// implementation behind runSteps (Runtime.MapEval selects the
// historical map-based loop instead, kept as the differential-testing
// reference).
func (rt *Runtime) runStepsCol(ctx context.Context, q logic.CQ, steps []access.AdornedLiteral, cat *sources.Catalog, out *Rel, prof *RuleProfile, budget *budgetState, pool *colPool) error {
	ruleStart := time.Now()
	prog := compileRule(q, steps, pool)
	cur := pool.getBatch(prog.numSlots)
	cur.n = 1 // the single empty binding
	for si := range prog.steps {
		var sp StepProfile
		sp.Step = prog.steps[si].step
		sp.BindingsIn = cur.n
		start := time.Now()
		var next *colBatch
		outRows, _, err := rt.applyStepCol(ctx, prog, si, cat, cur, &sp, nil, budget, pool, 0, func(b *colBatch) bool {
			next = b
			return true
		})
		sp.Elapsed = time.Since(start)
		pool.put(cur)
		if err != nil {
			if prof != nil {
				// Keep the failed step's accounting: degraded executions
				// report the traffic a dropped disjunct cost.
				prof.Steps = append(prof.Steps, sp)
				prof.Elapsed = time.Since(ruleStart)
			}
			return err
		}
		sp.BindingsOut = outRows
		if prof != nil {
			prof.Steps = append(prof.Steps, sp)
			// Materializing evaluation holds the step's input and output
			// batches live at once.
			if resident := sp.BindingsIn + sp.BindingsOut; resident > prof.PeakBindings {
				prof.PeakBindings = resident
			}
		}
		if outRows == 0 {
			if prof != nil {
				prof.Elapsed = time.Since(ruleStart)
			}
			return nil
		}
		cur = next
	}
	if cur.n > 0 && prog.headErr != nil {
		pool.put(cur)
		return prog.headErr
	}
	// Dedup head rows in ID space before materializing strings: a row
	// whose key repeats within this rule is one Add would reject anyway,
	// so only the first occurrence pays Row.Key and string assembly.
	seen := make(map[string]struct{}, 1+cur.n/4)
	keyBuf := make([]byte, 0, 4*len(prog.headSlots))
	for i := 0; i < cur.n; i++ {
		keyBuf = prog.headKey(cur, i, keyBuf[:0])
		if _, dup := seen[string(keyBuf)]; dup {
			continue
		}
		seen[string(keyBuf)] = struct{}{}
		if out.Add(prog.headRowCol(cur, i, pool)) && prof != nil {
			prof.Answers++
		}
	}
	pool.put(cur)
	if prof != nil {
		prof.Elapsed = time.Since(ruleStart)
	}
	return nil
}
