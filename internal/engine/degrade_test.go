package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// deadCatalog builds a catalog from in where every relation in dead is
// permanently failing (every call injects a transient failure), wrapped
// in a circuit breaker when cfg is non-nil. It returns the catalog, the
// fault injectors, and the breakers, both keyed by relation name.
func deadCatalog(t *testing.T, in *Instance, ps *access.Set, dead map[string]bool, cfg *sources.BreakerConfig) (*sources.Catalog, map[string]*sources.Flaky, map[string]*sources.Breaker) {
	t.Helper()
	base := in.MustCatalog(ps)
	flakies := map[string]*sources.Flaky{}
	breakers := map[string]*sources.Breaker{}
	var wrapped []sources.Source
	for _, name := range base.Names() {
		src := base.Source(name)
		if dead[name] {
			f := sources.NewFlaky(src, sources.FlakyConfig{FailEveryN: 1})
			flakies[name] = f
			src = f
		}
		if cfg != nil {
			b := sources.NewBreaker(src, *cfg)
			breakers[name] = b
			src = b
		}
		wrapped = append(wrapped, src)
	}
	cat, err := sources.NewCatalog(wrapped...)
	if err != nil {
		t.Fatal(err)
	}
	return cat, flakies, breakers
}

func TestEvalPartialDropsFailedDisjunct(t *testing.T) {
	u := ucq(t, `Q(x) :- R(x). Q(x) :- S(x).`)
	ps := pats(t, `R^o S^o`)
	in := NewInstance()
	in.MustAdd("R", "a")
	in.MustAdd("R", "b")
	in.MustAdd("S", "c")
	healthy := in.MustCatalog(ps)
	want, err := NewRuntime().Answer(context.Background(), ucq(t, `Q(x) :- R(x).`), ps, healthy)
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			cat, _, _ := deadCatalog(t, in, ps, map[string]bool{"S": true}, nil)
			rt := NewRuntime()
			rt.Retry.MaxAttempts = 2
			rt.Retry.BaseDelay = 0

			// Strict mode surfaces the failure.
			if _, _, _, err := rt.Eval(context.Background(), u, ps, cat, EvalOpts{Parallel: parallel}); err == nil {
				t.Fatal("strict mode must fail when a source is dead")
			}

			// Partial mode drops rule 2 and answers with rule 1.
			rel, prof, inc, err := rt.Eval(context.Background(), u, ps, cat, EvalOpts{Parallel: parallel, Partial: true, Profile: !parallel})
			if err != nil {
				t.Fatalf("partial mode must absorb the failure: %v", err)
			}
			if !rel.Equal(want) {
				t.Errorf("degraded answer = %s, want the healthy disjunct's %s", rel, want)
			}
			if inc == nil || inc.Complete() {
				t.Fatalf("incompleteness = %+v, want a recorded failure", inc)
			}
			if len(inc.Failed) != 1 || inc.Failed[0].RuleIndex != 1 {
				t.Fatalf("failed = %+v, want exactly rule 2", inc.Failed)
			}
			f := inc.Failed[0]
			if f.Source != "S" || f.Class != FailTransient {
				t.Errorf("failure = source %q class %q, want S / retries-exhausted", f.Source, f.Class)
			}
			if got := inc.FailedSources(); len(got) != 1 || got[0] != "S" {
				t.Errorf("FailedSources = %v, want [S]", got)
			}
			if r, ok := inc.RuleRatio(); !ok || r != 0.5 {
				t.Errorf("RuleRatio = %v/%v, want 0.5", r, ok)
			}
			if inc.RulesTotal != 2 || inc.RulesSurvived != 1 {
				t.Errorf("rules = %d/%d, want 1 of 2 survived", inc.RulesSurvived, inc.RulesTotal)
			}
			if !strings.Contains(inc.Report(), "underestimate") || !strings.Contains(inc.Report(), "S") {
				t.Errorf("report must name the failure:\n%s", inc.Report())
			}
			if prof.Degraded.Rules != 1 {
				t.Errorf("prof.Degraded.Rules = %d, want 1", prof.Degraded.Rules)
			}
		})
	}
}

func TestEvalPartialCompleteRunReportsComplete(t *testing.T) {
	u := ucq(t, `Q(x) :- R(x). Q(x) :- S(x).`)
	ps := pats(t, `R^o S^o`)
	in := NewInstance()
	in.MustAdd("R", "a")
	in.MustAdd("S", "b")
	cat := in.MustCatalog(ps)
	rel, _, inc, err := NewRuntime().Eval(context.Background(), u, ps, cat, EvalOpts{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("answers = %s", rel)
	}
	if inc == nil || !inc.Complete() || inc.RulesSurvived != 2 {
		t.Errorf("inc = %+v, want complete 2/2", inc)
	}
	if !strings.Contains(inc.Report(), "complete") {
		t.Errorf("report = %q", inc.Report())
	}
}

// The breaker acceptance property: with one source permanently dead, the
// calls that reach it are bounded by the breaker window, not by
// rules × bindings × MaxAttempts.
func TestEvalPartialBreakerCapsDeadSourceCalls(t *testing.T) {
	u := ucq(t, `
		Q(x) :- R(x).
		Q(x) :- S("c1", x).
		Q(x) :- S("c2", x).
		Q(x) :- S("c3", x).
		Q(x) :- S("c4", x).
		Q(x) :- S("c5", x).
		Q(x) :- S("c6", x).
	`)
	ps := pats(t, `R^o S^io`)
	in := NewInstance()
	in.MustAdd("R", "a")
	for i := 1; i <= 6; i++ {
		in.MustAdd("S", fmt.Sprintf("c%d", i), "v")
	}
	newRT := func() *Runtime {
		rt := NewRuntime()
		rt.Concurrency = 1
		rt.Retry.MaxAttempts = 4
		rt.Retry.BaseDelay = 0
		return rt
	}

	// Bare retries: every dead-source rule burns its full retry budget.
	bareCat, bareFlaky, _ := deadCatalog(t, in, ps, map[string]bool{"S": true}, nil)
	rel, _, inc, err := newRT().Eval(context.Background(), u, ps, bareCat, EvalOpts{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Errorf("degraded answer = %s, want only R's row", rel)
	}
	bare := bareFlaky["S"].Injected()
	if want := 6 * 4; bare != want {
		t.Errorf("bare retries hit the dead source %d times, want rules×attempts = %d", bare, want)
	}

	// Breaker: the dead source absorbs at most the window before the
	// circuit opens; later rules fail fast without touching it.
	cfg := &sources.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour}
	brkCat, brkFlaky, breakers := deadCatalog(t, in, ps, map[string]bool{"S": true}, cfg)
	rel2, _, inc2, err := newRT().Eval(context.Background(), u, ps, brkCat, EvalOpts{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rel2.Equal(rel) {
		t.Errorf("breaker changed the degraded answer: %s vs %s", rel2, rel)
	}
	if got := brkFlaky["S"].Injected(); got > cfg.Window {
		t.Errorf("dead source saw %d calls with a breaker, want ≤ window (%d); bare retries cost %d", got, cfg.Window, bare)
	}
	if breakers["S"].State() != sources.BreakerOpen {
		t.Errorf("breaker state = %v, want open", breakers["S"].State())
	}
	if breakers["S"].Rejected() == 0 {
		t.Error("breaker should have fast-failed the later rules' calls")
	}
	if len(inc.Failed) != 6 || len(inc2.Failed) != 6 {
		t.Fatalf("failures = %d bare / %d breaker, want 6 each", len(inc.Failed), len(inc2.Failed))
	}
	// The first breaker failures classify as retries-exhausted (the calls
	// that tripped it), the later ones as breaker-open.
	last := inc2.Failed[len(inc2.Failed)-1]
	if last.Class != FailBreaker {
		t.Errorf("last failure class = %s, want breaker-open", last.Class)
	}
}

func TestEvalPartialBudgetExhausted(t *testing.T) {
	u := ucq(t, `Q(x) :- R(x). Q(x) :- S(x).`)
	ps := pats(t, `R^o S^o`)
	in := NewInstance()
	in.MustAdd("R", "a")
	in.MustAdd("S", "b")

	rt := NewRuntime()
	rt.Budget = Budget{MaxCalls: 1} // rule 1's single call spends it all

	// Strict: budget exhaustion is an error.
	if _, _, _, err := rt.Eval(context.Background(), u, ps, in.MustCatalog(ps), EvalOpts{}); !errors.Is(err, ErrCallBudget) {
		t.Fatalf("strict err = %v, want ErrCallBudget", err)
	}

	// Partial: rule 2 is dropped as budget-exhausted.
	rel, prof, inc, err := rt.Eval(context.Background(), u, ps, in.MustCatalog(ps), EvalOpts{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 {
		t.Errorf("answers = %s, want R's row only", rel)
	}
	if len(inc.Failed) != 1 || inc.Failed[0].Class != FailBudget {
		t.Fatalf("failures = %+v, want one budget-exhausted", inc.Failed)
	}
	if prof.Calls.BudgetSpent != 1 {
		t.Errorf("prof.Calls.BudgetSpent = %d, want 1", prof.Calls.BudgetSpent)
	}
}

func TestRuntimeCallTimeoutCutsHungSource(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance()
	in.MustAdd("R", "x0", "z0")
	in.MustAdd("T", "z0", "y0")
	// T hangs on its first call for each key instead of erroring.
	cat := flakyCatalog(t, in, ps, sources.FlakyConfig{FailFirst: 1, Hang: true})
	rt := NewRuntime()
	rt.CallTimeout = 5 * time.Millisecond
	rt.Retry.MaxAttempts = 3
	rt.Retry.BaseDelay = 0
	start := time.Now()
	rel, err := rt.Answer(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatalf("the per-call deadline must convert the hang into a retryable timeout: %v", err)
	}
	if rel.Len() != 1 {
		t.Errorf("answers = %s", rel)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("hung call was not cut by CallTimeout (took %s)", elapsed)
	}
}

func TestRuntimeCallTimeoutExhaustionIsTransient(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	in := NewInstance()
	in.MustAdd("R", "a")
	// Hangs forever: every attempt times out, the rule fails transient.
	cat := flakyCatalog(t, in, ps, sources.FlakyConfig{FailEveryN: 1, Hang: true})
	rt := NewRuntime()
	rt.CallTimeout = 2 * time.Millisecond
	rt.Retry.MaxAttempts = 2
	rt.Retry.BaseDelay = 0
	_, err := rt.Answer(context.Background(), q, ps, cat)
	if err == nil {
		t.Fatal("permanently hung source must fail")
	}
	if !sources.IsTransient(err) {
		t.Errorf("timeout exhaustion must classify transient, got %v", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("per-call deadline must not masquerade as caller cancellation: %v", err)
	}
	if ClassifyFailure(err) != FailTransient {
		t.Errorf("class = %s, want retries-exhausted", ClassifyFailure(err))
	}
}

func TestEvalPartialDoesNotAbsorbCallerCancellation(t *testing.T) {
	u := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	in := NewInstance()
	in.MustAdd("R", "a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := NewRuntime().Eval(ctx, u, ps, in.MustCatalog(ps), EvalOpts{Partial: true})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled even in partial mode", err)
	}
}

func TestEvalPartialDoesNotAbsorbPlanningErrors(t *testing.T) {
	u := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^i`) // no way to produce x
	in := NewInstance()
	in.MustAdd("R", "a")
	for _, parallel := range []bool{false, true} {
		_, _, _, err := NewRuntime().Eval(context.Background(), u, ps, in.MustCatalog(ps), EvalOpts{Partial: true, Parallel: parallel})
		if !errors.Is(err, errNotExecutable) {
			t.Errorf("parallel=%v: err = %v, want the compile error even in partial mode", parallel, err)
		}
	}
}

func TestSeededJitterDeterministicAndBounded(t *testing.T) {
	const d = 8 * time.Millisecond
	j1 := SeededJitter(42)
	j2 := SeededJitter(42)
	j3 := SeededJitter(43)
	var seq1, seq2, seq3 []time.Duration
	for i := 0; i < 64; i++ {
		seq1 = append(seq1, j1(d))
		seq2 = append(seq2, j2(d))
		seq3 = append(seq3, j3(d))
	}
	distinct := map[time.Duration]bool{}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, seq1[i], seq2[i])
		}
		if seq1[i] < d/2 || seq1[i] > d {
			t.Fatalf("draw %d: %v outside [d/2, d] = [%v, %v]", i, seq1[i], d/2, d)
		}
		distinct[seq1[i]] = true
	}
	if len(distinct) < 8 {
		t.Errorf("only %d distinct draws in 64: not jittering", len(distinct))
	}
	same := 0
	for i := range seq1 {
		if seq1[i] == seq3[i] {
			same++
		}
	}
	if same == len(seq1) {
		t.Error("different seeds produced identical sequences")
	}
	// Degenerate delays pass through unchanged.
	if got := j1(0); got != 0 {
		t.Errorf("jitter(0) = %v", got)
	}
	if got := j1(1); got != 1 {
		t.Errorf("jitter(1ns) = %v, want unchanged", got)
	}
}

// degradeStreamFixture is a three-rule union whose middle rule dies
// mid-pipeline: R fans out 20 bindings into a dead S behind a breaker,
// so the circuit opens while the rule's stages are still streaming
// batches. Rules 1 and 3 are healthy and must survive.
func degradeStreamFixture(t *testing.T) (u logic.UCQ, ps *access.Set, in *Instance) {
	t.Helper()
	u = ucq(t, `
		Q(x, y) :- U(x, y).
		Q(x, y) :- R(x, z), S(z, y).
		Q(x, y) :- W(x, y).
	`)
	ps = pats(t, `U^oo R^oo S^io W^oo`)
	in = NewInstance()
	for i := 0; i < 5; i++ {
		in.MustAdd("U", fmt.Sprintf("u%d", i), fmt.Sprintf("v%d", i))
		in.MustAdd("W", fmt.Sprintf("w%d", i), fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 20; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i))
		in.MustAdd("S", fmt.Sprintf("z%d", i), fmt.Sprintf("y%d", i))
	}
	return u, ps, in
}

func degradeRuntime() *Runtime {
	rt := NewRuntime()
	rt.Retry.MaxAttempts = 2
	rt.Retry.BaseDelay = 0
	rt.BatchSize = 1 // force the failure to land mid-stream
	rt.StageBuffer = 1
	return rt
}

// The streaming acceptance property: a drained partial-results stream is
// byte-identical to the materialized partial-results answer when the
// same source is permanently dead, the failed rule's early rows never
// leak to the consumer, and no goroutine outlives the stream.
func TestStreamPartialDegradedMatchesMaterialized(t *testing.T) {
	u, ps, in := degradeStreamFixture(t)
	cfg := &sources.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour}

	matCat, _, _ := deadCatalog(t, in, ps, map[string]bool{"S": true}, cfg)
	want, _, matInc, err := degradeRuntime().Eval(context.Background(), u, ps, matCat, EvalOpts{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(matInc.Failed) != 1 {
		t.Fatalf("materialized failures = %+v, want rule 2 only", matInc.Failed)
	}

	baseline := runtime.NumGoroutine()
	strCat, strFlaky, _ := deadCatalog(t, in, ps, map[string]bool{"S": true}, cfg)
	s, err := degradeRuntime().StreamEval(context.Background(), u, ps, strCat, StreamOpts{Partial: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Drain()
	if err != nil {
		t.Fatalf("partial stream must not surface the degraded failure: %v", err)
	}
	sameRows(t, got, want, "degraded stream vs materialized")
	inc, ok := s.Incomplete()
	if !ok {
		t.Fatal("Incomplete must be available after the stream finished")
	}
	if len(inc.Failed) != 1 || inc.Failed[0].RuleIndex != 1 || inc.Failed[0].Source != "S" {
		t.Fatalf("failures = %+v, want rule 2 at S", inc.Failed)
	}
	if inc.RulesTotal != 3 || inc.RulesSurvived != 2 {
		t.Errorf("rules = %d/%d, want 2 of 3", inc.RulesSurvived, inc.RulesTotal)
	}
	if got := strFlaky["S"].Injected(); got > cfg.Window {
		t.Errorf("dead source saw %d calls mid-stream, want the breaker to cap at %d", got, cfg.Window)
	}
	settleGoroutines(t, baseline)
}

// Breaker opens mid-batch and the victim rule's stages tear down alone:
// no leaked goroutines (run under -race), the stream stays usable for
// the rules after it, and a strict stream on the same inputs fails.
func TestStreamPartialMidPipelineTeardown(t *testing.T) {
	u, ps, in := degradeStreamFixture(t)
	cfg := &sources.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour}

	for _, parallel := range []bool{false, true} {
		t.Run(fmt.Sprintf("parallel=%v", parallel), func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			cat, _, breakers := deadCatalog(t, in, ps, map[string]bool{"S": true}, cfg)
			s, err := degradeRuntime().StreamEval(context.Background(), u, ps, cat, StreamOpts{Partial: true, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Drain()
			if err != nil {
				t.Fatal(err)
			}
			// Healthy rules' rows all arrive; no row of the dead rule does.
			if got.Len() != 10 {
				t.Errorf("answers = %d rows, want the 10 healthy ones:\n%s", got.Len(), got)
			}
			for _, row := range got.Rows() {
				if strings.HasPrefix(row[0].S, "x") {
					t.Fatalf("row %s leaked from the failed disjunct", row)
				}
			}
			if breakers["S"].State() != sources.BreakerOpen {
				t.Errorf("breaker = %v, want open", breakers["S"].State())
			}
			if inc, ok := s.Incomplete(); !ok || len(inc.Failed) != 1 {
				t.Errorf("Incomplete = %+v/%v, want the one dropped disjunct", inc, ok)
			}
			settleGoroutines(t, baseline)

			// Strict mode on the same inputs surfaces the failure.
			cat2, _, _ := deadCatalog(t, in, ps, map[string]bool{"S": true}, cfg)
			s2, err := degradeRuntime().StreamEval(context.Background(), u, ps, cat2, StreamOpts{Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s2.Drain(); err == nil {
				t.Error("strict stream must fail when a source is dead")
			}
			settleGoroutines(t, baseline)
		})
	}
}

func TestDefaultRetryPolicyJittersBackoff(t *testing.T) {
	p := DefaultRetryPolicy()
	if p.Jitter == nil {
		t.Fatal("DefaultRetryPolicy must install jitter (thundering-herd fix)")
	}
	// backoff() routes through the hook and stays within the equal-jitter
	// envelope of the deterministic schedule.
	plain := RetryPolicy{MaxAttempts: p.MaxAttempts, BaseDelay: p.BaseDelay, MaxDelay: p.MaxDelay}
	for attempt := 1; attempt < 4; attempt++ {
		base := plain.backoff(attempt)
		for i := 0; i < 16; i++ {
			if d := p.backoff(attempt); d < base/2 || d > base {
				t.Fatalf("attempt %d: jittered backoff %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
	}
}
