package engine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestAnswerParallelMatchesSequential(t *testing.T) {
	g := workload.New(91)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.4, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	tested := 0
	for i := 0; i < 100 && tested < 40; i++ {
		u := g.UCQ(s, 4, cfg)
		ordered, ok := core.ReorderUCQ(u, ps)
		if !ok {
			continue
		}
		in := NewInstance()
		if err := in.LoadFacts(g.Facts(s, 12, 6)); err != nil {
			t.Fatal(err)
		}
		cat := in.MustCatalog(ps)
		seq, err := Answer(ordered, ps, cat)
		if err != nil {
			t.Fatal(err)
		}
		par, err := AnswerParallel(ordered, ps, cat)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Equal(par) {
			t.Fatalf("parallel answer differs:\nseq %s\npar %s\nplan %s", seq, par, ordered)
		}
		tested++
	}
	if tested < 20 {
		t.Errorf("only %d plans engaged", tested)
	}
}

func TestAnswerParallelErrorPropagates(t *testing.T) {
	in := NewInstance().MustAdd("R", "a")
	ps := pats(t, `R^o`)
	cat := in.MustCatalog(ps)
	u := ucq(t, "Q(x) :- R(x).\nQ(x) :- Z(x).")
	if _, err := AnswerParallel(u, ps, cat); err == nil {
		t.Error("rule error must propagate")
	}
}

// When several rules fail, every failure must be reported — not just
// whichever goroutine lost the race.
func TestAnswerParallelAggregatesErrors(t *testing.T) {
	in := NewInstance().MustAdd("R", "a")
	ps := pats(t, `R^o Z1^o Z2^o`)
	cat := in.MustCatalog(pats(t, `R^o`)) // Z1/Z2 declared but unpublished
	u := ucq(t, "Q(x) :- Z1(x).\nQ(x) :- Z2(x).\nQ(x) :- R(x).")
	_, err := AnswerParallel(u, ps, cat)
	if err == nil {
		t.Fatal("rule errors must propagate")
	}
	for _, want := range []string{"rule 1", "Z1", "rule 2", "Z2"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

func TestAnswerParallelManyRules(t *testing.T) {
	in := NewInstance()
	var src string
	for i := 0; i < 20; i++ {
		in.MustAdd(fmt.Sprintf("R%d", i), fmt.Sprintf("v%d", i))
		src += fmt.Sprintf("Q(x) :- R%d(x).\n", i)
	}
	u := ucq(t, src)
	ps := pats(t, patternsFor(20))
	cat := in.MustCatalog(ps)
	rel, err := AnswerParallel(u, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 20 {
		t.Errorf("answers = %d, want 20", rel.Len())
	}
}

func patternsFor(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += fmt.Sprintf("R%d^o ", i)
	}
	return out
}
