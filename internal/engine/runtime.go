package engine

// The source-call runtime. The paper's cost model is source traffic —
// calls made through limited access patterns — and its setting is remote
// web services (Section 1), so the engine treats each plan step as a
// batch of service calls: bindings are grouped by their input-slot key
// (each distinct call issued exactly once), distinct calls go through a
// bounded worker pool, transient failures are retried with exponential
// backoff, and everything honors context cancellation. Answer sets are
// byte-identical to sequential per-binding evaluation: results are
// fanned back out to the bindings in their original order.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/sources"
)

// RetryPolicy says how the runtime retries failed source calls. Only
// errors classified as retryable (by default: transient source failures,
// see sources.Transient) are retried; contract violations and context
// cancellations always fail immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call, including
	// the first. Values below 1 mean 1 (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles on
	// every further attempt. Zero means retry immediately.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff when > 0.
	MaxDelay time.Duration
	// Jitter, when set, maps each computed backoff to the delay actually
	// slept — the hook where randomized jitter (or a test clock) plugs
	// in. Nil means no jitter: delays are deterministic.
	Jitter func(time.Duration) time.Duration
	// Retryable classifies errors; nil means sources.IsTransient.
	Retryable func(error) bool
}

// DefaultRetryPolicy retries transient failures up to 4 attempts with
// 2ms/4ms/8ms backoff, jittered (SeededJitter) so concurrent workers
// retrying the same failing source don't back off in lockstep and
// re-arrive as a synchronized herd.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Jitter:      SeededJitter(defaultJitterSeed),
	}
}

// defaultJitterSeed makes DefaultRetryPolicy's jitter reproducible run
// to run (the draw sequence is fixed; only the interleaving across
// goroutines varies).
const defaultJitterSeed = 0x9E3779B9

// SeededJitter returns an "equal jitter" hook for RetryPolicy.Jitter:
// each computed backoff d maps to a uniform delay in [d/2, d]. The
// random stream is deterministic for a given seed — tests get
// reproducible draw sequences — while still decorrelating concurrent
// workers, which draw different values from the shared stream. The
// returned function is safe for concurrent use.
func SeededJitter(seed int64) func(time.Duration) time.Duration {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(d time.Duration) time.Duration {
		half := int64(d) / 2
		if half <= 0 {
			return d
		}
		mu.Lock()
		off := rng.Int63n(half + 1)
		mu.Unlock()
		return time.Duration(half + off)
	}
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p RetryPolicy) isRetryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return sources.IsTransient(err)
}

// backoff returns the delay to sleep after the attempt-th failure
// (1-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter != nil {
		d = p.Jitter(d)
	}
	return d
}

// Runtime executes plans against a catalog. NewRuntime returns the
// production configuration (dedup on, pool per CPU, retries);
// SequentialRuntime reproduces the historical per-binding loop exactly.
// A Runtime is safe for concurrent use and may be shared across queries;
// the per-source limit is enforced across everything in flight on it.
type Runtime struct {
	// Concurrency bounds the worker pool issuing a step's distinct
	// calls. 0 means GOMAXPROCS; 1 means sequential.
	Concurrency int
	// PerSource caps the calls in flight against any one source across
	// all concurrent rules and steps (0 = no cap) — remote services
	// rate-limit per endpoint, not per client goroutine.
	PerSource int
	// Dedup groups a step's bindings by input-slot key so each distinct
	// (pattern, inputs) call is issued exactly once per step.
	Dedup bool
	// Retry is the per-call retry policy.
	Retry RetryPolicy
	// BatchSize is the number of bindings per batch flowing between the
	// stages of a streamed pipeline (Stream/StreamParallel). Smaller
	// batches deliver first tuples earlier; larger batches amortize
	// per-batch overhead. 0 means DefaultBatchSize. Materializing
	// evaluation ignores it.
	BatchSize int
	// StageBuffer is the capacity of the channel between consecutive
	// pipeline stages: how many batches a stage may run ahead of its
	// consumer. 0 means 1. Materializing evaluation ignores it.
	StageBuffer int
	// CallTimeout is the per-call deadline: each source-call attempt runs
	// under its own context deadline, so a hung service costs at most
	// CallTimeout per attempt instead of stalling the plan. An expired
	// attempt is reported as a transient timeout failure (retryable, and
	// counted as a failure by circuit breakers below). 0 means no
	// per-call deadline.
	CallTimeout time.Duration
	// Budget caps the source traffic of one execution (one Eval, Stream,
	// or facade Exec). The zero value means unlimited.
	Budget Budget
	// Hedge enables hedged requests against replicated sources: after
	// the configured delay a backup attempt is launched on the
	// next-healthiest replica, and the first success wins (see
	// HedgePolicy). Sources that are not replica sets are unaffected.
	// The zero value disables hedging.
	Hedge HedgePolicy
	// MapEval selects the historical map-based materializing evaluator
	// (one map[string]string per binding) instead of the columnar batch
	// evaluator. The two are observationally identical — same answers in
	// the same order, same source calls — so MapEval exists only as the
	// differential-testing reference and allocation baseline; streamed
	// pipelines are always columnar.
	MapEval bool

	mu   sync.Mutex
	sems map[string]chan struct{}
}

// Clone returns a runtime with the same configuration and fresh
// internal limiter state. The facade uses it to derive a per-execution
// variant (e.g. enabling hedging) without mutating a shared runtime.
func (rt *Runtime) Clone() *Runtime {
	return &Runtime{
		Concurrency: rt.Concurrency,
		PerSource:   rt.PerSource,
		Dedup:       rt.Dedup,
		Retry:       rt.Retry,
		BatchSize:   rt.BatchSize,
		StageBuffer: rt.StageBuffer,
		CallTimeout: rt.CallTimeout,
		Budget:      rt.Budget,
		Hedge:       rt.Hedge,
		MapEval:     rt.MapEval,
	}
}

// Budget is a per-query source-call budget: how much traffic one
// execution may spend before it is cut off. The budget is charged per
// call attempt (retries included) across all rules, steps, and workers
// of the execution; exceeding it fails the in-flight call with
// ErrCallBudget, which partial-results mode degrades on and strict mode
// surfaces.
type Budget struct {
	// MaxCalls is the maximum number of call attempts; 0 means unlimited.
	// A negative value admits no calls at all: every source call fails
	// ErrCallBudget immediately, so a partial-results execution degrades
	// to whatever cached answers cover — the overload-shedding mode of a
	// serving layer.
	MaxCalls int
	// MaxTime is the execution's wall-clock allowance, checked before
	// each attempt (attempts already in flight finish, bounded by
	// CallTimeout when set); 0 means unlimited.
	MaxTime time.Duration
}

func (b Budget) active() bool { return b.MaxCalls != 0 || b.MaxTime > 0 }

// ErrCallBudget marks source calls rejected because the per-query
// budget (Runtime.Budget) was exhausted. Like a breaker rejection it is
// terminal, never retried.
var ErrCallBudget = errors.New("engine: per-query call budget exhausted")

// budgetState is one execution's budget accounting, shared by all of
// its workers.
type budgetState struct {
	limit    int64 // 0 = unlimited
	deadline time.Time
	spent    atomic.Int64
}

// newBudget starts the per-execution budget clock for this runtime's
// configured Budget.
func (rt *Runtime) newBudget() *budgetState {
	b := &budgetState{limit: int64(rt.Budget.MaxCalls)}
	if rt.Budget.MaxTime > 0 {
		b.deadline = time.Now().Add(rt.Budget.MaxTime)
	}
	return b
}

// charge admits one call attempt or reports budget exhaustion. spent
// counts only admitted attempts.
func (b *budgetState) charge() error {
	if b == nil {
		return nil
	}
	if b.limit < 0 {
		return fmt.Errorf("%w: call budget is zero, no source calls admitted", ErrCallBudget)
	}
	if !b.deadline.IsZero() && time.Now().After(b.deadline) {
		return fmt.Errorf("%w: time budget spent after %d calls", ErrCallBudget, b.spent.Load())
	}
	if b.limit > 0 {
		if n := b.spent.Add(1); n > b.limit {
			b.spent.Add(-1)
			return fmt.Errorf("%w: call budget of %d spent", ErrCallBudget, b.limit)
		}
		return nil
	}
	b.spent.Add(1)
	return nil
}

// refund hands back one admitted attempt that was never launched (the
// per-source slot acquisition was abandoned to the context). Without it
// BudgetSpent would over-count launched legs — and an abandoned leg
// could spend the last slot of the budget that a live worker then gets
// rejected on.
func (b *budgetState) refund() {
	if b == nil {
		return
	}
	b.spent.Add(-1)
}

// NewRuntime returns the production runtime: deduplication on, one
// worker per CPU, transient failures retried.
func NewRuntime() *Runtime {
	return &Runtime{Concurrency: runtime.GOMAXPROCS(0), Dedup: true, Retry: DefaultRetryPolicy()}
}

// SequentialRuntime returns a runtime that reproduces the historical
// per-binding evaluation loop exactly: one call per binding, in binding
// order, no retries. Benchmarks use it as the baseline.
func SequentialRuntime() *Runtime {
	return &Runtime{Concurrency: 1}
}

// defaultRuntime backs the package-level Answer/AnswerProfiled/... ; it
// is shared, which is safe (the only state is the per-source limiter).
var defaultRuntime = NewRuntime()

// DefaultRuntime returns the shared runtime behind the package-level
// Answer/AnswerParallel/RunAnswerStar entry points, so facades can route
// their default path through the exact same per-source limiter state.
func DefaultRuntime() *Runtime { return defaultRuntime }

// DefaultBatchSize is the binding-batch size streamed pipelines use when
// Runtime.BatchSize is zero.
const DefaultBatchSize = 64

func (rt *Runtime) batchSize() int {
	if rt.BatchSize > 0 {
		return rt.BatchSize
	}
	return DefaultBatchSize
}

func (rt *Runtime) stageBuffer() int {
	if rt.StageBuffer > 0 {
		return rt.StageBuffer
	}
	return 1
}

func (rt *Runtime) workers(n int) int {
	w := rt.Concurrency
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if rt.PerSource > 0 && rt.PerSource < w {
		w = rt.PerSource // a step calls a single source
	}
	if n < w {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// sourceSem returns the shared in-flight limiter for the named source,
// or nil when unlimited.
func (rt *Runtime) sourceSem(name string) chan struct{} {
	if rt.PerSource <= 0 {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.sems == nil {
		rt.sems = map[string]chan struct{}{}
	}
	sem, ok := rt.sems[name]
	if !ok {
		sem = make(chan struct{}, rt.PerSource)
		rt.sems[name] = sem
	}
	return sem
}

// inFlightGauge tracks the high-water mark of a fluctuating count —
// concurrent source calls in flight, or bindings resident in a streamed
// pipeline.
type inFlightGauge struct {
	cur atomic.Int64
	max atomic.Int64
}

// add moves the current count by n (n may be negative) and updates the
// high-water mark.
func (g *inFlightGauge) add(n int64) {
	c := g.cur.Add(n)
	for {
		m := g.max.Load()
		if c <= m || g.max.CompareAndSwap(m, c) {
			return
		}
	}
}

func (g *inFlightGauge) enter() { g.add(1) }

func (g *inFlightGauge) leave() { g.cur.Add(-1) }

// callStats counts the work behind one logical source call: attempts is
// every launched leg — each charged to the budget and traffic stats
// exactly once — rounds the retry rounds (a hedged race over several
// replicas is one round), hedges the timer-launched backup legs, and
// hedgeWins whether a backup leg produced the winning rows.
type callStats struct {
	attempts  int
	rounds    int
	hedges    int
	hedgeWins int
}

// runLeg runs one call attempt end to end: per-source slot, per-call
// deadline, in-flight gauge, and deadline-to-transient conversion.
// launched reports whether the call was actually issued (false when the
// per-source slot acquisition was abandoned to the context).
func (rt *Runtime) runLeg(ctx context.Context, sem chan struct{}, gauge *inFlightGauge, name string, p access.Pattern, inputs []string, call func(context.Context) ([]sources.Tuple, error)) (rows []sources.Tuple, launched bool, err error) {
	if sem != nil {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		defer func() { <-sem }()
	}
	cctx, cancel := ctx, context.CancelFunc(nil)
	if rt.CallTimeout > 0 {
		cctx, cancel = context.WithTimeout(ctx, rt.CallTimeout)
	}
	gauge.enter()
	rows, err = call(cctx)
	gauge.leave()
	if cancel != nil {
		cancel()
		// The attempt's own deadline expiring is a source failure
		// (slow or hung service), not a caller cancellation: report
		// it as a retryable timeout so the policy and any circuit
		// breaker see it. The caller's context staying alive is what
		// distinguishes the two.
		if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			err = sources.Transient(fmt.Errorf("engine: %s^%s(%s): call timed out after %v",
				name, p, strings.Join(inputs, ","), rt.CallTimeout))
		}
	}
	return rows, true, err
}

// callWithRetry issues one source call under the per-source limit and
// the per-execution budget, retrying per the policy with each attempt
// bounded by the per-call deadline. Against a replicated source with
// hedging configured, each retry round runs as a hedged race across
// replicas instead of a single attempt. It returns the rows and the
// call's accounting (zero attempts when cancelled or cut off before the
// first).
func (rt *Runtime) callWithRetry(ctx context.Context, src sources.Source, name string, p access.Pattern, inputs []string, gauge *inFlightGauge, budget *budgetState) (rows []sources.Tuple, cs callStats, err error) {
	sem := rt.sourceSem(name)
	max := rt.Retry.attempts()
	rsrc, hedged := rt.hedgeTarget(src)
	for attempt := 1; ; attempt++ {
		if hedged {
			// The whole round holds ONE per-source slot: its legs are
			// replicas of one logical call, and per-leg slots can
			// deadlock — hung primaries holding every slot while the
			// backups that would cancel them wait for one.
			if sem != nil {
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					return nil, cs, ctx.Err()
				}
			}
			before := cs.attempts
			rows, err = rt.hedgedRound(ctx, rsrc, name, p, inputs, gauge, budget, &cs)
			if sem != nil {
				<-sem
			}
			if cs.attempts == before {
				return nil, cs, err // cut off before any leg launched
			}
			cs.rounds++
		} else {
			if err := budget.charge(); err != nil {
				return nil, cs, err
			}
			var launched bool
			rows, launched, err = rt.runLeg(ctx, sem, gauge, name, p, inputs, func(c context.Context) ([]sources.Tuple, error) {
				return sources.CallWithContext(c, src, p, inputs)
			})
			if !launched {
				// The slot acquisition was abandoned to the context: the
				// attempt never happened, so it must not stay charged —
				// BudgetSpent counts launched legs exactly.
				budget.refund()
				return nil, cs, err
			}
			cs.attempts++
			cs.rounds++
		}
		if err == nil || attempt >= max || !rt.Retry.isRetryable(err) || ctx.Err() != nil {
			return rows, cs, err
		}
		if d := rt.Retry.backoff(attempt); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil, cs, ctx.Err()
			}
		}
	}
}

// stepCall is one distinct (pattern, inputs) call of a step, shared by
// every binding whose input slots produced it.
type stepCall struct {
	inputs []string
	rows   []sources.Tuple
	stats  callStats
	err    error
	// join is the columnar path's per-call hash-join side (tuples
	// interned, filtered, grouped by bound-position key), built once per
	// call and carried across batches by a streamed stage's memo. The
	// map path leaves it nil.
	join *callJoin
}

// callError attributes a failed step call to the source it targeted, so
// degraded executions can name the failing service in their
// incompleteness report.
type callError struct {
	Source  string
	Pattern access.Pattern
	Inputs  string
	Err     error
}

func (e *callError) Error() string {
	return fmt.Sprintf("engine: calling %s^%s(%s): %v", e.Source, e.Pattern, e.Inputs, e.Err)
}

func (e *callError) Unwrap() error { return e.Err }

// applyStep runs one adorned literal over the current binding set: group
// bindings into distinct calls, issue the calls, fan the results back
// out. Traffic is recorded into sp.
//
// memo, when non-nil (and Dedup is on), is a cross-batch call memo owned
// by a streamed pipeline stage: keys resolved by an earlier batch are
// served from it without a new source call, so per-step deduplication is
// exactly as strong as in materializing evaluation even though the stage
// only ever sees one batch of the binding stream at a time. Calls issued
// here are added to it.
func (rt *Runtime) applyStep(ctx context.Context, step access.AdornedLiteral, cat *sources.Catalog, bindings []binding, sp *StepProfile, memo map[string]*stepCall, budget *budgetState) ([]binding, error) {
	src := cat.Source(step.Literal.Atom.Pred)
	if src == nil {
		return nil, fmt.Errorf("engine: no source for relation %s", step.Literal.Atom.Pred)
	}
	calls := make([]*stepCall, 0, len(bindings))
	callOf := make([]*stepCall, len(bindings))
	byKey := memo
	if rt.Dedup && byKey == nil {
		byKey = make(map[string]*stepCall, len(bindings))
	}
	for i, b := range bindings {
		inputs, err := callInputs(step, b)
		if err != nil {
			return nil, err
		}
		if rt.Dedup {
			key := strings.Join(inputs, "\x1f")
			if c, ok := byKey[key]; ok {
				callOf[i] = c
				sp.DedupedCalls++
				continue
			}
			c := &stepCall{inputs: inputs}
			byKey[key] = c
			calls = append(calls, c)
			callOf[i] = c
			continue
		}
		c := &stepCall{inputs: inputs}
		calls = append(calls, c)
		callOf[i] = c
	}
	if err := rt.issue(ctx, src, step, calls, sp, budget); err != nil {
		return nil, err
	}
	// Fan back out in the original binding order: the output bindings —
	// and hence everything downstream — are identical to sequential
	// evaluation, whatever order the calls completed in.
	var next []binding
	for i, b := range bindings {
		tuples := callOf[i].rows
		if step.Literal.Negated {
			// Filter: keep the binding iff no returned tuple matches the
			// (fully bound) arguments.
			matched := false
			for _, t := range tuples {
				if tupleMatches(step.Literal.Atom, t, b) != nil {
					matched = true
					break
				}
			}
			if !matched {
				next = append(next, b)
			}
			continue
		}
		for _, t := range tuples {
			if nb := tupleMatches(step.Literal.Atom, t, b); nb != nil {
				next = append(next, nb)
			}
		}
	}
	return next, nil
}

// issue drives the step's distinct calls through the bounded worker
// pool and records traffic into sp. On failure every distinct error is
// reported (joined), and outstanding calls are cancelled.
//
// When the source is genuinely batch-capable (a SQL or HTTP adapter, or
// a resilience wrapper around one) and the step produced more than one
// distinct call, the whole group is serviced as batched round trips
// instead: see issueBatch. A batch failure other than budget/context
// exhaustion falls back to the per-call pool below, so adapters degrade
// through exactly the failure classes plain sources produce.
func (rt *Runtime) issue(ctx context.Context, src sources.Source, step access.AdornedLiteral, calls []*stepCall, sp *StepProfile, budget *budgetState) error {
	if len(calls) == 0 {
		return nil
	}
	name := step.Literal.Atom.Pred
	var gauge inFlightGauge
	handled := false
	if len(calls) > 1 && sources.IsBatchCapable(src) {
		if _, hedged := rt.hedgeTarget(src); !hedged {
			handled = rt.issueBatch(ctx, src, step, calls, sp, budget, &gauge)
		}
	}
	if handled {
		// issueBatch filled rows (or the error) on every call; fall
		// through to the shared aggregation loop.
	} else if workers := rt.workers(len(calls)); workers <= 1 {
		for _, c := range calls {
			c.rows, c.stats, c.err = rt.callWithRetry(ctx, src, name, step.Pattern, c.inputs, &gauge, budget)
			if c.err != nil {
				break // abort like the sequential loop; later calls stay unissued
			}
		}
	} else {
		cctx, cancel := context.WithCancel(ctx)
		feed := make(chan *stepCall)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range feed {
					if cctx.Err() != nil {
						c.err = cctx.Err()
						continue
					}
					func() {
						defer func() {
							if r := recover(); r != nil {
								c.err = fmt.Errorf("engine: source %s panicked: %v", name, r)
							}
						}()
						c.rows, c.stats, c.err = rt.callWithRetry(cctx, src, name, step.Pattern, c.inputs, &gauge, budget)
					}()
					if c.err != nil {
						cancel() // fail fast: stop issuing, wake sleepers
					}
				}
			}()
		}
		for _, c := range calls {
			feed <- c
		}
		close(feed)
		wg.Wait()
		cancel()
	}
	var errs []error
	var cancelled error
	for _, c := range calls {
		sp.Calls += c.stats.attempts
		if c.stats.rounds > 1 {
			sp.Retries += c.stats.rounds - 1
		}
		sp.HedgedCalls += c.stats.hedges
		sp.HedgeWins += c.stats.hedgeWins
		sp.TuplesReturned += len(c.rows)
		if c.err == nil {
			continue
		}
		if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
			cancelled = c.err // secondary: either the real failure or the caller's ctx
			continue
		}
		errs = append(errs, &callError{Source: name, Pattern: step.Pattern, Inputs: strings.Join(c.inputs, ","), Err: c.err})
	}
	if m := int(gauge.max.Load()); m > sp.MaxInFlight {
		sp.MaxInFlight = m
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	return cancelled
}

// issueBatch services the step's distinct calls as one batched round
// trip (retried whole per the retry policy, each attempt charged one
// budget unit and bounded by the per-call deadline — the batch IS one
// wire call). On success every call's rows are filled and it reports
// true. Budget exhaustion and caller cancellation are terminal: the
// error lands on the first call — matching the sequential loop, where
// later calls stay unissued — and it reports true. Any other failure
// reports false, handing the whole group to the per-call path so the
// error surface is identical to a non-batching source.
func (rt *Runtime) issueBatch(ctx context.Context, src sources.Source, step access.AdornedLiteral, calls []*stepCall, sp *StepProfile, budget *budgetState, gauge *inFlightGauge) bool {
	name := step.Literal.Atom.Pred
	inputs := make([][]string, len(calls))
	for i, c := range calls {
		inputs[i] = c.inputs
	}
	sem := rt.sourceSem(name)
	max := rt.Retry.attempts()
	var attempts int
	var groups [][]sources.Tuple
	var err error
	for attempt := 1; ; attempt++ {
		if err = budget.charge(); err != nil {
			break
		}
		var launched bool
		groups, launched, err = rt.runBatchLeg(ctx, sem, gauge, src, name, step.Pattern, inputs)
		if !launched {
			budget.refund()
			break
		}
		attempts++
		if err == nil || attempt >= max || !rt.Retry.isRetryable(err) || ctx.Err() != nil {
			break
		}
		if d := rt.Retry.backoff(attempt); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				err = ctx.Err()
			}
			if err != nil && ctx.Err() != nil {
				break
			}
		}
	}
	sp.Calls += attempts
	if attempts > 1 {
		sp.Retries += attempts - 1
	}
	if err == nil {
		sp.BatchGroups++
		sp.BatchedCalls += len(calls)
		for i, c := range calls {
			c.rows = groups[i]
		}
		return true
	}
	if errors.Is(err, ErrCallBudget) || errors.Is(err, context.Canceled) || ctx.Err() != nil {
		calls[0].err = err
		return true
	}
	return false
}

// runBatchLeg is runLeg for one batched round-trip attempt: per-source
// slot, per-call deadline, in-flight gauge, deadline-to-transient
// conversion.
func (rt *Runtime) runBatchLeg(ctx context.Context, sem chan struct{}, gauge *inFlightGauge, src sources.Source, name string, p access.Pattern, inputs [][]string) (groups [][]sources.Tuple, launched bool, err error) {
	if sem != nil {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		defer func() { <-sem }()
	}
	cctx, cancel := ctx, context.CancelFunc(nil)
	if rt.CallTimeout > 0 {
		cctx, cancel = context.WithTimeout(ctx, rt.CallTimeout)
	}
	gauge.enter()
	groups, err = sources.CallBatchWithContext(cctx, src, p, inputs)
	gauge.leave()
	if cancel != nil {
		cancel()
		if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
			err = sources.Transient(fmt.Errorf("engine: %s^%s: batch of %d timed out after %v",
				name, p, len(inputs), rt.CallTimeout))
		}
	}
	return groups, true, err
}
