// Package engine evaluates executable query plans against catalogs of
// limited-access sources, implementing the runtime side of the paper:
// plan execution with negation-as-filter, null-valued overestimate
// tuples, the ANSWER* algorithm (Figure 4), ground-truth evaluation for
// experiments, and DL97-style domain enumeration for improving
// underestimates (Example 8).
package engine

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a constant answer value or the distinguished null that
// overestimate plans emit for head variables they cannot bind
// (Section 4.2 of the paper discusses how such tuples must be read).
type Value struct {
	S    string
	Null bool
}

// V returns a constant value.
func V(s string) Value { return Value{S: s} }

// NullValue is the null answer value.
var NullValue = Value{Null: true}

// String renders the value; nulls print as null, constants quoted.
func (v Value) String() string {
	if v.Null {
		return "null"
	}
	return fmt.Sprintf("%q", v.S)
}

// Row is one answer tuple.
type Row []Value

// Key encodes the row for set membership.
func (r Row) Key() string {
	parts := make([]string, len(r))
	for i, v := range r {
		if v.Null {
			parts[i] = "\x00null"
		} else {
			parts[i] = v.S
		}
	}
	return strings.Join(parts, "\x1f")
}

// HasNull reports whether any value in the row is null.
func (r Row) HasNull() bool {
	for _, v := range r {
		if v.Null {
			return true
		}
	}
	return false
}

// String renders the row as (v1, ..., vn).
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// RowOf builds a row of constant values; for tests.
func RowOf(vals ...string) Row {
	r := make(Row, len(vals))
	for i, s := range vals {
		r[i] = V(s)
	}
	return r
}

// Rel is a set of answer rows with deterministic iteration order
// (insertion order; Sorted gives a canonical order).
type Rel struct {
	rows []Row
	seen map[string]bool
}

// NewRel returns an empty relation.
func NewRel() *Rel { return &Rel{seen: map[string]bool{}} }

// Add inserts the row, reporting whether it was new.
func (r *Rel) Add(row Row) bool {
	k := row.Key()
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	r.rows = append(r.rows, append(Row(nil), row...))
	return true
}

// AddAll inserts every row of other.
func (r *Rel) AddAll(other *Rel) {
	for _, row := range other.rows {
		r.Add(row)
	}
}

// Contains reports membership.
func (r *Rel) Contains(row Row) bool { return r.seen[row.Key()] }

// Len returns the number of rows.
func (r *Rel) Len() int { return len(r.rows) }

// Rows returns the rows in insertion order (shared backing; do not
// mutate).
func (r *Rel) Rows() []Row { return r.rows }

// Sorted returns the rows in canonical (key) order.
func (r *Rel) Sorted() []Row {
	out := make([]Row, len(r.rows))
	copy(out, r.rows)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Minus returns the rows of r not in other (Δ of Figure 4).
func (r *Rel) Minus(other *Rel) *Rel {
	out := NewRel()
	for _, row := range r.rows {
		if !other.Contains(row) {
			out.Add(row)
		}
	}
	return out
}

// Equal reports set equality.
func (r *Rel) Equal(other *Rel) bool {
	if r.Len() != other.Len() {
		return false
	}
	for _, row := range r.rows {
		if !other.Contains(row) {
			return false
		}
	}
	return true
}

// HasNull reports whether any row contains a null.
func (r *Rel) HasNull() bool {
	for _, row := range r.rows {
		if row.HasNull() {
			return true
		}
	}
	return false
}

// String renders the relation, one sorted row per line.
func (r *Rel) String() string {
	rows := r.Sorted()
	parts := make([]string, len(rows))
	for i, row := range rows {
		parts[i] = row.String()
	}
	return strings.Join(parts, "\n")
}
