package engine

// Hedged requests — the classic tail-at-scale move. When a source is
// backed by a replica set, the runtime does not have to sit out one
// replica's latency tail: after a delay (fixed, or derived from the
// set's observed latency percentile) it launches a backup attempt on
// the next-healthiest replica; the first success wins and cancels the
// losers. Every launched leg charges the per-query budget and traffic
// stats exactly once, a leg that fails outright triggers immediate
// failover to the next replica (no timer wait), and the whole round
// composes with the retry policy exactly like a single call: a round
// that fails on every replica is one failed attempt, retried per the
// policy when its combined error is transient.

import (
	"context"
	"errors"
	"time"

	"repro/internal/access"
	"repro/internal/sources"
)

// HedgePolicy enables hedged requests against replicated sources
// (Runtime.Hedge). The zero value disables hedging.
type HedgePolicy struct {
	// Delay is the fixed wait before a backup attempt is launched on the
	// next-healthiest replica. When Quantile is also set, Delay is the
	// fallback used until enough latency samples exist.
	Delay time.Duration
	// Quantile, when in (0, 1], derives the hedge delay from the replica
	// set's observed latency distribution: a call hedges once it has
	// outlasted that fraction of recent traffic (0.95 hedges the slowest
	// 5% of calls).
	Quantile float64
	// MaxHedges bounds the timer-launched backup attempts per call.
	// 0 means 1. Failover legs after an outright failure are not
	// hedges and are not bounded by it (they are bounded by the replica
	// count).
	MaxHedges int
}

func (h HedgePolicy) enabled() bool { return h.Delay > 0 || h.Quantile > 0 }

func (h HedgePolicy) maxHedges() int {
	if h.MaxHedges > 0 {
		return h.MaxHedges
	}
	return 1
}

// Replicated is implemented by sources that front several equivalent
// replicas (sources.ReplicaSet): the runtime hedges across them by
// driving replicas individually in health-ranked order.
type Replicated interface {
	sources.Source
	// Replicas returns the number of replicas.
	Replicas() int
	// Ranked returns the order in which replicas should be tried now.
	Ranked() []int
	// CallReplica invokes one specific replica.
	CallReplica(ctx context.Context, idx int, p access.Pattern, inputs []string) ([]sources.Tuple, error)
	// ObservedLatency returns the q-quantile of recent call latencies,
	// when enough samples exist.
	ObservedLatency(q float64) (time.Duration, bool)
	// ExhaustedError wraps the member failures of a call that failed on
	// every replica (errs[i] belongs to replica tried[i]).
	ExhaustedError(tried []int, errs []error) error
}

// hedgeTarget reports whether calls to src should run hedged: hedging
// is configured and the source fronts at least two replicas.
func (rt *Runtime) hedgeTarget(src sources.Source) (Replicated, bool) {
	if !rt.Hedge.enabled() {
		return nil, false
	}
	r, ok := src.(Replicated)
	if !ok || r.Replicas() < 2 {
		return nil, false
	}
	return r, true
}

// hedgeDelay picks the wait before a backup leg: the observed latency
// quantile when configured and warmed up, else the fixed delay, with a
// small floor so an unwarmed quantile-only policy does not hedge every
// call instantly.
func (rt *Runtime) hedgeDelay(rsrc Replicated) time.Duration {
	if q := rt.Hedge.Quantile; q > 0 {
		if d, ok := rsrc.ObservedLatency(q); ok && d > 0 {
			return d
		}
	}
	if rt.Hedge.Delay > 0 {
		return rt.Hedge.Delay
	}
	return time.Millisecond
}

// hedgedRound runs one retry-round of a call as a race across replicas:
// the primary leg goes to the best-ranked replica; the hedge timer
// launches backups down the ranking; an outright leg failure fails over
// to the next replica immediately. The first success cancels the rest.
// The round returns once every launched leg has finished (losers
// observe the cancellation and stand down quickly), so counters and
// breaker windows are settled when it does. The caller holds the
// per-source slot for the whole round; legs here must not re-acquire
// it, or a round whose slot-holding primary hangs could never launch
// the backup that cancels it.
func (rt *Runtime) hedgedRound(ctx context.Context, rsrc Replicated, name string, p access.Pattern, inputs []string, gauge *inFlightGauge, budget *budgetState, cs *callStats) ([]sources.Tuple, error) {
	order := rsrc.Ranked()
	delay := rt.hedgeDelay(rsrc)
	maxHedges := rt.Hedge.maxHedges()

	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type legResult struct {
		rows   []sources.Tuple
		err    error
		idx    int
		backup bool
	}
	results := make(chan legResult, len(order))
	nextLeg, inFlight, hedges := 0, 0, 0
	launch := func(backup bool) error {
		if nextLeg >= len(order) {
			return errNoMoreReplicas
		}
		if err := budget.charge(); err != nil {
			return err
		}
		idx := order[nextLeg]
		nextLeg++
		inFlight++
		cs.attempts++
		go func() {
			rows, _, err := rt.runLeg(rctx, nil, gauge, name, p, inputs, func(c context.Context) ([]sources.Tuple, error) {
				return rsrc.CallReplica(c, idx, p, inputs)
			})
			results <- legResult{rows: rows, err: err, idx: idx, backup: backup}
		}()
		return nil
	}
	if err := launch(false); err != nil {
		return nil, err // budget exhausted before the primary leg
	}

	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C
	var winner *legResult
	var tried []int
	var errs []error
	var budgetErr error
	for inFlight > 0 {
		select {
		case r := <-results:
			inFlight--
			if winner != nil {
				continue // late loser; the round is decided
			}
			if r.err == nil {
				winner = &r
				cancel() // losers stand down; keep draining them
				timerC = nil
				continue
			}
			tried = append(tried, r.idx)
			errs = append(errs, r.err)
			if ctx.Err() != nil {
				continue // caller gone: just drain
			}
			// Failover: a leg that failed outright does not wait for the
			// hedge timer — the next replica is tried immediately.
			if err := launch(r.backup); err != nil && errors.Is(err, ErrCallBudget) {
				budgetErr = err
			}
		case <-timerC:
			timerC = nil
			if err := launch(true); err != nil {
				if errors.Is(err, ErrCallBudget) {
					budgetErr = err
				}
				continue
			}
			hedges++
			cs.hedges++
			if hedges < maxHedges {
				timer.Reset(delay)
				timerC = timer.C
			}
		}
	}
	if winner != nil {
		if winner.backup {
			cs.hedgeWins++
		}
		return winner.rows, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if budgetErr != nil {
		return nil, budgetErr
	}
	if nextLeg >= len(order) {
		return nil, rsrc.ExhaustedError(tried, errs)
	}
	return nil, errors.Join(errs...)
}

// errNoMoreReplicas is the internal launch outcome when the ranking is
// spent; the in-flight legs decide the round.
var errNoMoreReplicas = errors.New("engine: no further replicas to launch")
