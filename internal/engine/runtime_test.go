package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/sources"
	"repro/internal/workload"
)

// exampleInstance builds a deterministic instance over the relations a
// pattern set declares, with enough value sharing that joins produce
// repeated lookup keys (the case deduplication exists for).
func exampleInstance(ps *access.Set) *Instance {
	in := NewInstance()
	dom := []string{"a", "b", "c", "d"}
	for _, rel := range ps.Relations() {
		ar := ps.Arity(rel)
		for i := 0; i < 8; i++ {
			vals := make([]string, ar)
			for j := range vals {
				vals[j] = dom[(i+2*j)%len(dom)]
			}
			in.MustAdd(rel, vals...)
		}
	}
	return in
}

// The deduplicating concurrent runtime must return byte-identical
// answers to the seed sequential per-binding path on the paper's worked
// examples, executed the way the paper executes them: through the PLAN*
// under/overestimates.
func TestRuntimeMatchesSequentialOnPaperExamples(t *testing.T) {
	for _, ex := range workload.PaperExamples() {
		t.Run(ex.Name, func(t *testing.T) {
			plans := core.ComputePlans(ex.Query, ex.Patterns)
			cat := exampleInstance(ex.Patterns).MustCatalog(ex.Patterns)
			seq, err := SequentialRuntime().RunAnswerStarWithPlans(context.Background(), plans, ex.Patterns, cat)
			if err != nil {
				t.Fatal(err)
			}
			ded, err := NewRuntime().RunAnswerStarWithPlans(context.Background(), plans, ex.Patterns, cat)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := ded.Report(), seq.Report(); got != want {
				t.Errorf("reports differ:\nsequential:\n%s\nruntime:\n%s", want, got)
			}
			if !ded.Under.Equal(seq.Under) || !ded.Over.Equal(seq.Over) {
				t.Error("estimates differ between runtimes")
			}
		})
	}
}

// Same equivalence on random executable plans with negation (the
// property the seed test suite checks for AnswerParallel).
func TestRuntimeMatchesSequentialOnRandomPlans(t *testing.T) {
	g := workload.New(137)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.4, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	tested := 0
	for i := 0; i < 100 && tested < 30; i++ {
		u := g.UCQ(s, 3, cfg)
		ordered, ok := core.ReorderUCQ(u, ps)
		if !ok {
			continue
		}
		in := NewInstance()
		if err := in.LoadFacts(g.Facts(s, 15, 6)); err != nil {
			t.Fatal(err)
		}
		cat := in.MustCatalog(ps)
		seq, err := SequentialRuntime().Answer(context.Background(), ordered, ps, cat)
		if err != nil {
			t.Fatal(err)
		}
		ded, err := NewRuntime().Answer(context.Background(), ordered, ps, cat)
		if err != nil {
			t.Fatal(err)
		}
		if seq.String() != ded.String() {
			t.Fatalf("answers differ:\nseq %s\nded %s\nplan %s", seq, ded, ordered)
		}
		tested++
	}
	if tested < 15 {
		t.Errorf("only %d plans engaged", tested)
	}
}

// The acceptance property: on a join with repeated input keys the
// deduplicating runtime issues strictly fewer source calls than the
// per-binding loop, with identical answers.
func TestRuntimeDedupIssuesFewerCalls(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance()
	for i := 0; i < 200; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%10))
	}
	for z := 0; z < 10; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}

	catSeq := in.MustCatalog(ps)
	seqAns, seqProf, err := SequentialRuntime().AnswerProfiled(context.Background(), q, ps, catSeq)
	if err != nil {
		t.Fatal(err)
	}
	catDed := in.MustCatalog(ps)
	dedAns, dedProf, err := NewRuntime().AnswerProfiled(context.Background(), q, ps, catDed)
	if err != nil {
		t.Fatal(err)
	}
	if seqAns.String() != dedAns.String() {
		t.Fatal("answer sets differ")
	}
	seqCalls, dedCalls := catSeq.TotalStats().Calls, catDed.TotalStats().Calls
	if seqCalls != 201 { // 1 R scan + 200 T lookups
		t.Errorf("sequential calls = %d, want 201", seqCalls)
	}
	if dedCalls != 11 { // 1 R scan + 10 distinct T lookups
		t.Errorf("dedup calls = %d, want 11", dedCalls)
	}
	if dedCalls >= seqCalls {
		t.Errorf("dedup must issue strictly fewer calls: %d vs %d", dedCalls, seqCalls)
	}
	if seqProf.TotalCalls() != seqCalls || dedProf.TotalCalls() != dedCalls {
		t.Errorf("profiles disagree with meters: %d/%d vs %d/%d",
			seqProf.TotalCalls(), seqCalls, dedProf.TotalCalls(), dedCalls)
	}
	if dedProf.TotalDeduped() != 190 {
		t.Errorf("deduped = %d, want 190", dedProf.TotalDeduped())
	}
}

// flakyCatalog wraps every table of the instance catalog with a fault
// injector.
func flakyCatalog(t *testing.T, in *Instance, ps *access.Set, cfg sources.FlakyConfig) *sources.Catalog {
	t.Helper()
	base := in.MustCatalog(ps)
	var wrapped []sources.Source
	for _, name := range base.Names() {
		wrapped = append(wrapped, sources.NewFlaky(base.Source(name), cfg))
	}
	cat, err := sources.NewCatalog(wrapped...)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestRuntimeRetriesTransientFailures(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance()
	for i := 0; i < 20; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%4))
	}
	for z := 0; z < 4; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}
	cat := flakyCatalog(t, in, ps, sources.FlakyConfig{FailFirst: 2})

	rt := NewRuntime()
	rt.Retry = RetryPolicy{MaxAttempts: 4} // no backoff delay: fast test
	ans, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatalf("retries must absorb the injected failures: %v", err)
	}
	if ans.Len() != 20 {
		t.Errorf("answers = %d, want 20", ans.Len())
	}
	// Every distinct call (1 R scan + 4 T lookups) fails twice first.
	if got := prof.TotalRetries(); got != 10 {
		t.Errorf("retries = %d, want 10", got)
	}
	// The real traffic that reached the tables: one success per key.
	if st := cat.TotalStats(); st.Calls != 5 {
		t.Errorf("successful remote calls = %d, want 5", st.Calls)
	}
}

func TestRuntimeRetryExhaustionAggregatesErrors(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance().
		MustAdd("R", "x0", "z0").
		MustAdd("R", "x1", "z1").
		MustAdd("T", "z0", "y0").
		MustAdd("T", "z1", "y1")
	cat := flakyCatalog(t, in, ps, sources.FlakyConfig{FailFirst: 5})

	rt := NewRuntime()
	rt.Retry = RetryPolicy{MaxAttempts: 3}
	_, err := rt.Answer(context.Background(), q, ps, cat)
	if err == nil {
		t.Fatal("failures beyond the retry budget must surface")
	}
	if !sources.IsTransient(err) {
		t.Errorf("the transient classification must survive wrapping: %v", err)
	}
	if !strings.Contains(err.Error(), "injected transient failure") {
		t.Errorf("error must carry the source failure: %v", err)
	}
}

func TestRuntimeBackoffUsesJitterHook(t *testing.T) {
	var delays []time.Duration
	var mu sync.Mutex
	rt := NewRuntime()
	rt.Concurrency = 1
	rt.Retry = RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   8 * time.Microsecond,
		MaxDelay:    20 * time.Microsecond,
		Jitter: func(d time.Duration) time.Duration {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
			return 0 // don't actually sleep in tests
		},
	}
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	in := NewInstance().MustAdd("R", "a")
	cat := flakyCatalog(t, in, ps, sources.FlakyConfig{FailFirst: 3})
	if _, err := rt.Answer(context.Background(), q, ps, cat); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{8 * time.Microsecond, 16 * time.Microsecond, 20 * time.Microsecond}
	if len(delays) != len(want) {
		t.Fatalf("jitter hook saw %v", delays)
	}
	for i, d := range delays {
		if d != want[i] {
			t.Errorf("backoff %d = %v, want %v (exponential, capped)", i+1, d, want[i])
		}
	}
}

func TestRuntimeHonorsCancellation(t *testing.T) {
	q := ucq(t, `Q(x) :- R(x).`)
	ps := pats(t, `R^o`)
	cat := NewInstance().MustAdd("R", "a").MustCatalog(ps)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewRuntime().Answer(ctx, q, ps, cat); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// With enough distinct keys and a synchronization barrier in the source
// hook, the pool must actually overlap calls — and a per-source limit of
// 1 must serialize them again.
func TestRuntimeConcurrencyAndPerSourceLimit(t *testing.T) {
	mk := func() (*Instance, *access.Set) {
		in := NewInstance()
		for i := 0; i < 4; i++ {
			in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i))
			in.MustAdd("T", fmt.Sprintf("z%d", i), fmt.Sprintf("y%d", i))
		}
		return in, pats(t, `R^oo T^io`)
	}
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)

	// Barrier: the T table parks each call until all 4 arrive.
	in, ps := mk()
	cat := in.MustCatalog(ps)
	var arrived sync.WaitGroup
	arrived.Add(4)
	release := make(chan struct{})
	var once sync.Once
	cat.Source("T").(*sources.Table).OnCall = func(p access.Pattern, inputs []string) {
		arrived.Done()
		once.Do(func() {
			go func() {
				done := make(chan struct{})
				go func() { arrived.Wait(); close(done) }()
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					t.Error("barrier timed out: calls did not overlap")
				}
				close(release)
			}()
		})
		<-release
	}
	rt := NewRuntime()
	rt.Concurrency = 4
	_, prof, err := rt.AnswerProfiled(context.Background(), q, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.MaxInFlight(); got != 4 {
		t.Errorf("MaxInFlight = %d, want 4", got)
	}

	// Per-source limit 1: same shape, never more than one in flight.
	in2, ps2 := mk()
	cat2 := in2.MustCatalog(ps2)
	rt2 := NewRuntime()
	rt2.Concurrency = 4
	rt2.PerSource = 1
	_, prof2, err := rt2.AnswerProfiled(context.Background(), q, ps2, cat2)
	if err != nil {
		t.Fatal(err)
	}
	if got := prof2.MaxInFlight(); got > 1 {
		t.Errorf("MaxInFlight = %d, want ≤1 under PerSource=1", got)
	}
}

// A shared Runtime must be safe under concurrent queries (exercised by
// -race; the per-source limiter map is the shared state).
func TestRuntimeSharedAcrossGoroutines(t *testing.T) {
	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance()
	for i := 0; i < 50; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%5))
	}
	for z := 0; z < 5; z++ {
		in.MustAdd("T", fmt.Sprintf("z%d", z), fmt.Sprintf("y%d", z))
	}
	cat := in.MustCatalog(ps)
	rt := NewRuntime()
	rt.PerSource = 2
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				rel, err := rt.Answer(context.Background(), q, ps, cat)
				if err != nil {
					t.Errorf("Answer: %v", err)
					return
				}
				if rel.Len() != 50 {
					t.Errorf("answers = %d", rel.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
}
