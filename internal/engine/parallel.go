package engine

import (
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// AnswerParallel evaluates the executable plan with one goroutine per
// rule — the paper's reading of a UCQ¬ plan: "execute each rule
// separately (possibly in parallel) from left to right" (Section 3).
// Table sources are safe for concurrent use; results are merged under
// set semantics, so the answer equals Answer's. The first rule error
// aborts the whole evaluation.
func AnswerParallel(u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, error) {
	type ruleResult struct {
		rel *Rel
		err error
	}
	var wg sync.WaitGroup
	results := make([]ruleResult, len(u.Rules))
	for i, rule := range u.Rules {
		if rule.False {
			continue
		}
		wg.Add(1)
		go func(i int, rule logic.CQ) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					results[i] = ruleResult{err: fmt.Errorf("engine: rule %d panicked: %v", i+1, r)}
				}
			}()
			rel := NewRel()
			err := answerRule(rule, ps, cat, rel, nil)
			results[i] = ruleResult{rel: rel, err: err}
		}(i, rule)
	}
	wg.Wait()
	out := NewRel()
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.rel != nil {
			out.AddAll(r.rel)
		}
	}
	return out, nil
}
