package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// AnswerParallel evaluates the executable plan with one goroutine per
// rule — the paper's reading of a UCQ¬ plan: "execute each rule
// separately (possibly in parallel) from left to right" (Section 3).
// Sources are safe for concurrent use; results are merged under set
// semantics, so the answer equals Answer's. A rule failure cancels the
// rules still in flight; every distinct rule error is reported (joined),
// in rule order.
func AnswerParallel(u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, error) {
	return defaultRuntime.AnswerParallel(context.Background(), u, ps, cat)
}

// AnswerParallel is the package-level AnswerParallel on this runtime.
func (rt *Runtime) AnswerParallel(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, error) {
	rel, _, _, err := rt.Eval(ctx, u, ps, cat, EvalOpts{Parallel: true})
	return rel, err
}

// evalParallel is Eval's concurrent-rules path. In strict mode a rule
// failure cancels the rules still in flight; in partial-results mode a
// degradable failure is recorded into inc and the siblings keep running
// (only caller cancellation and planning errors abort).
func (rt *Runtime) evalParallel(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog, o EvalOpts, inc *Incompleteness, budget *budgetState, pool *colPool) (*Rel, Profile, error) {
	type ruleResult struct {
		rel *Rel
		err error
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	results := make([]ruleResult, len(u.Rules))
	rps := make([]RuleProfile, len(u.Rules))
	for i, rule := range u.Rules {
		if rule.False {
			continue
		}
		if inc != nil {
			inc.RulesTotal++
		}
		wg.Add(1)
		go func(i int, rule logic.CQ) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					results[i] = ruleResult{err: fmt.Errorf("engine: rule %d panicked: %v", i+1, r)}
					cancel()
				}
			}()
			var rp *RuleProfile
			if o.Profile {
				rps[i] = RuleProfile{Rule: rule.Clone()}
				rp = &rps[i]
			}
			rel := NewRel()
			err := rt.answerRule(cctx, rule, ps, cat, rel, rp, budget, pool)
			if err != nil && !(inc != nil && degradable(cctx, err)) {
				cancel() // stop the rules still in flight
			}
			results[i] = ruleResult{rel: rel, err: err}
		}(i, rule)
	}
	wg.Wait()
	var errs []error
	var cancelled error
	for i, r := range results {
		if r.err == nil {
			continue
		}
		if errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded) {
			// A rule stopped by a sibling's failure (or the caller's
			// context); only meaningful when no real failure surfaced.
			cancelled = r.err
			continue
		}
		if inc != nil && degradable(ctx, r.err) {
			inc.record(i, u.Rules[i], r.err)
			results[i].rel = nil // the disjunct contributes nothing
			continue
		}
		errs = append(errs, fmt.Errorf("engine: rule %d: %w", i+1, r.err))
	}
	if len(errs) > 0 {
		return nil, Profile{}, errors.Join(errs...)
	}
	if cancelled != nil {
		return nil, Profile{}, cancelled
	}
	out := NewRel()
	var prof Profile
	for i, r := range results {
		if r.rel == nil {
			if o.Profile && inc != nil && rps[i].Rule.HeadPred != "" {
				prof.Rules = append(prof.Rules, rps[i]) // dropped disjunct's traffic
			}
			continue
		}
		added := 0
		for _, row := range r.rel.Rows() {
			if out.Add(row) {
				added++
			}
		}
		if o.Profile {
			rps[i].Answers = added
			prof.Rules = append(prof.Rules, rps[i])
		}
		if o.OnRuleDone != nil {
			o.OnRuleDone(i, r.rel)
		}
	}
	return out, prof, nil
}
