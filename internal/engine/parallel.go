package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// AnswerParallel evaluates the executable plan with one goroutine per
// rule — the paper's reading of a UCQ¬ plan: "execute each rule
// separately (possibly in parallel) from left to right" (Section 3).
// Sources are safe for concurrent use; results are merged under set
// semantics, so the answer equals Answer's. A rule failure cancels the
// rules still in flight; every distinct rule error is reported (joined),
// in rule order.
func AnswerParallel(u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, error) {
	return defaultRuntime.AnswerParallel(context.Background(), u, ps, cat)
}

// AnswerParallel is the package-level AnswerParallel on this runtime.
func (rt *Runtime) AnswerParallel(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, error) {
	type ruleResult struct {
		rel *Rel
		err error
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	results := make([]ruleResult, len(u.Rules))
	for i, rule := range u.Rules {
		if rule.False {
			continue
		}
		wg.Add(1)
		go func(i int, rule logic.CQ) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					results[i] = ruleResult{err: fmt.Errorf("engine: rule %d panicked: %v", i+1, r)}
					cancel()
				}
			}()
			rel := NewRel()
			err := rt.answerRule(cctx, rule, ps, cat, rel, nil)
			if err != nil {
				cancel() // stop the rules still in flight
			}
			results[i] = ruleResult{rel: rel, err: err}
		}(i, rule)
	}
	wg.Wait()
	var errs []error
	var cancelled error
	for i, r := range results {
		if r.err == nil {
			continue
		}
		if errors.Is(r.err, context.Canceled) || errors.Is(r.err, context.DeadlineExceeded) {
			// A rule stopped by a sibling's failure (or the caller's
			// context); only meaningful when no real failure surfaced.
			cancelled = r.err
			continue
		}
		errs = append(errs, fmt.Errorf("engine: rule %d: %w", i+1, r.err))
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if cancelled != nil {
		return nil, cancelled
	}
	out := NewRel()
	for _, r := range results {
		if r.rel != nil {
			out.AddAll(r.rel)
		}
	}
	return out, nil
}
