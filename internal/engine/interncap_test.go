package engine

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// Hammer the interner cap: a workload streaming unbounded distinct
// strings through the columnar evaluator must (1) stop growing the
// process-wide table once the cap is reached, (2) keep returning
// correct answers through the execution-local spill table, and (3)
// surface the cap in the profile.
func TestInternerCapSpillsWithoutWrongAnswers(t *testing.T) {
	entries0, _ := InternerOccupancy()
	SetInternerCap(entries0+64, 0)
	defer SetInternerCap(0, 0)

	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	rt := NewRuntime()

	// Several executions, each with a fresh universe of distinct values
	// far beyond the remaining cap headroom.
	for round := 0; round < 4; round++ {
		in := NewInstance()
		for i := 0; i < 300; i++ {
			x := fmt.Sprintf("hammer_r%d_x%d", round, i)
			z := fmt.Sprintf("hammer_r%d_z%d", round, i%30)
			in.MustAdd("R", x, z)
		}
		for z := 0; z < 30; z++ {
			in.MustAdd("T", fmt.Sprintf("hammer_r%d_z%d", round, z), fmt.Sprintf("hammer_r%d_y%d", round, z))
		}
		ans, prof, err := rt.AnswerProfiled(context.Background(), q, ps, in.MustCatalog(ps))
		if err != nil {
			t.Fatal(err)
		}
		if ans.Len() != 300 {
			t.Fatalf("round %d: answers = %d, want 300", round, ans.Len())
		}
		// The values never seen before the cap filled must have spilled.
		if round > 0 {
			if prof.Batch.SpilledValues == 0 {
				t.Fatalf("round %d: no spilled values under a full cap", round)
			}
			if prof.Batch.InternerCapHits == 0 || !prof.Batch.InternerCapped {
				t.Fatalf("round %d: cap not surfaced in profile: %+v", round, prof.Batch)
			}
		}
		// Spot-check answer contents, not just cardinality.
		want := RowOf(fmt.Sprintf("hammer_r%d_x0", round), fmt.Sprintf("hammer_r%d_y0", round))
		if !ans.Contains(want) {
			t.Fatalf("round %d: missing answer %v", round, want)
		}
	}

	entries1, _ := InternerOccupancy()
	if entries1 > entries0+64 {
		t.Fatalf("cap did not bound the interner: %d -> %d entries (cap %d)", entries0, entries1, entries0+64)
	}
	if hits, capped := InternerCapStats(); hits == 0 || !capped {
		t.Fatalf("cap stats hits=%d capped=%v, want refusals and a full cap", hits, capped)
	}
}

// Concurrent executions under a full cap: spill tables are
// execution-local, so parallel queries over disjoint value universes
// must not interfere (exercised by -race).
func TestInternerCapConcurrentSpill(t *testing.T) {
	entries0, _ := InternerOccupancy()
	SetInternerCap(entries0, 0) // no headroom at all: everything new spills
	defer SetInternerCap(0, 0)

	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	rt := NewRuntime()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := NewInstance()
			for i := 0; i < 80; i++ {
				in.MustAdd("R", fmt.Sprintf("cc_g%d_x%d", g, i), fmt.Sprintf("cc_g%d_z%d", g, i%8))
			}
			for z := 0; z < 8; z++ {
				in.MustAdd("T", fmt.Sprintf("cc_g%d_z%d", g, z), fmt.Sprintf("cc_g%d_y%d", g, z))
			}
			ans, err := rt.Answer(context.Background(), q, ps, in.MustCatalog(ps))
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			if ans.Len() != 80 {
				t.Errorf("goroutine %d: answers = %d, want 80", g, ans.Len())
				return
			}
			if !ans.Contains(RowOf(fmt.Sprintf("cc_g%d_x0", g), fmt.Sprintf("cc_g%d_y0", g))) {
				t.Errorf("goroutine %d: wrong answer contents", g)
			}
		}(g)
	}
	wg.Wait()
	entries1, _ := InternerOccupancy()
	if entries1 != entries0 {
		t.Fatalf("zero-headroom cap admitted %d new entries", entries1-entries0)
	}
}

// The cap must also hold on the streamed pipeline (it shares colPool).
func TestInternerCapStreamSpill(t *testing.T) {
	entries0, _ := InternerOccupancy()
	SetInternerCap(entries0, 0)
	defer SetInternerCap(0, 0)

	q := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance()
	for i := 0; i < 50; i++ {
		in.MustAdd("R", fmt.Sprintf("st_x%d", i), fmt.Sprintf("st_z%d", i%5))
	}
	for z := 0; z < 5; z++ {
		in.MustAdd("T", fmt.Sprintf("st_z%d", z), fmt.Sprintf("st_y%d", z))
	}
	stream, err := NewRuntime().Stream(context.Background(), q, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := stream.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 50 {
		t.Fatalf("streamed answers = %d, want 50", rel.Len())
	}
	if entries1, _ := InternerOccupancy(); entries1 != entries0 {
		t.Fatalf("stream grew the capped interner by %d", entries1-entries0)
	}
}
