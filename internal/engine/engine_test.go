package engine

import (
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/parser"
)

func pats(t *testing.T, src string) *access.Set {
	t.Helper()
	s, err := parser.ParsePatterns(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func ucq(t *testing.T, src string) logic.UCQ {
	t.Helper()
	u, err := parser.ParseUCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// bookstore is the instance behind Examples 1 and 2.
func bookstore(t *testing.T) *Instance {
	t.Helper()
	in := NewInstance()
	if err := in.ParseInto(`
		B("i1", "knuth", "taocp").
		B("i2", "knuth", "concrete").
		B("i3", "date", "dbintro").
		C("i1", "knuth").
		C("i3", "date").
		L("i3").
	`); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestInstanceBasics(t *testing.T) {
	in := bookstore(t)
	if got := in.Relations(); len(got) != 3 {
		t.Errorf("Relations = %v", got)
	}
	if in.Arity("B") != 3 || in.Arity("Z") != -1 {
		t.Error("Arity lookup wrong")
	}
	if !in.Has("L", "i3") || in.Has("L", "i1") {
		t.Error("Has lookup wrong")
	}
	if in.Size() != 6 {
		t.Errorf("Size = %d, want 6", in.Size())
	}
	if err := in.Add("B", "only", "two"); err == nil {
		t.Error("arity mismatch must be rejected")
	}
	adom := in.ActiveDomain()
	if len(adom) != 8 {
		t.Errorf("ActiveDomain = %v, want 8 values", adom)
	}
}

// Example 1 executed end to end: reorder, then evaluate through the
// limited sources; the result matches ground truth.
func TestExample1EndToEnd(t *testing.T) {
	in := bookstore(t)
	ps := pats(t, `B^ioo B^oio C^oo L^o`)
	cat := in.MustCatalog(ps)
	q := ucq(t, `Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`)

	ordered, ok := core.ReorderUCQ(q, ps)
	if !ok {
		t.Fatal("Example 1 must be orderable")
	}
	got, err := Answer(ordered, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnswerNaive(q, in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("limited evaluation = %s, ground truth = %s", got, want)
	}
	// The only catalog book not in the library: i1/knuth/taocp.
	if got.Len() != 1 || !got.Contains(RowOf("i1", "knuth", "taocp")) {
		t.Errorf("answer = %s", got)
	}
	// The unordered query cannot be evaluated through the sources.
	if _, err := Answer(q, ps, cat); err == nil {
		t.Error("evaluating a non-executable order must fail")
	}
}

func TestNegationAsFilter(t *testing.T) {
	in := NewInstance().MustAdd("R", "a").MustAdd("R", "b").MustAdd("S", "b")
	ps := pats(t, `R^o S^i`)
	cat := in.MustCatalog(ps)
	got, err := Answer(ucq(t, `Q(x) :- R(x), not S(x).`), ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(RowOf("a")) {
		t.Errorf("answer = %s, want (a)", got)
	}
}

func TestConstantsInBody(t *testing.T) {
	in := NewInstance().
		MustAdd("B", "i1", "knuth", "taocp").
		MustAdd("B", "i2", "date", "dbintro")
	ps := pats(t, `B^oio`)
	cat := in.MustCatalog(ps)
	got, err := Answer(ucq(t, `Q(i, t) :- B(i, "knuth", t).`), ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Contains(RowOf("i1", "taocp")) {
		t.Errorf("answer = %s", got)
	}
}

// Example 4/5: the infeasible query yields a complete answer at runtime
// when the answerable part of the dismissed rule is empty on D.
func TestExample5RuntimeComplete(t *testing.T) {
	u := ucq(t, `
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := pats(t, `S^o R^oo B^oi T^oo`)

	// Every R.z value appears in S (the foreign key of Example 6), so
	// R(x,z), not S(z) is empty and the answer is complete.
	in := NewInstance().
		MustAdd("R", "x1", "z1").
		MustAdd("S", "z1").
		MustAdd("B", "x1", "y1").
		MustAdd("T", "t1", "t2")
	res, err := RunAnswerStar(u, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Errorf("answer must be complete: %s", res.Report())
	}
	if res.Under.Len() != 1 || !res.Under.Contains(RowOf("t1", "t2")) {
		t.Errorf("underestimate = %s", res.Under)
	}
	// Ground truth agrees.
	truth, err := AnswerNaive(u, in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Under.Equal(truth) {
		t.Errorf("under = %s, truth = %s", res.Under, truth)
	}
}

// Example 7: when R(x,z), not S(z) holds, the overestimate contains a
// null tuple (a, null), and no numeric completeness bound is given.
func TestExample7NullTuple(t *testing.T) {
	u := ucq(t, `
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := pats(t, `S^o R^oo B^oi T^oo`)
	in := NewInstance().
		MustAdd("R", "a", "b").
		MustAdd("S", "c").
		MustAdd("B", "a", "y1").
		MustAdd("T", "t1", "t2")
	res, err := RunAnswerStar(u, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("answer must not be known complete")
	}
	if !res.Delta.Contains(Row{V("a"), NullValue}) {
		t.Errorf("Δ = %s, want to contain (a, null)", res.Delta)
	}
	if res.RatioValid {
		t.Error("no numeric completeness bound when Δ has nulls (Example 7)")
	}
	report := res.Report()
	if !containsStr(report, "not known to be complete") {
		t.Errorf("report = %q", report)
	}
}

// A ratio is reported when Δ is null-free: drop the B literal so rule 1
// is fully answerable except for one dismissed rule producing null-free
// extras.
func TestCompletenessRatio(t *testing.T) {
	u := ucq(t, `
		Q(x) :- T(x).
		Q(x) :- R(x, z), B(z).
	`)
	ps := pats(t, `T^o R^oo B^i`)
	in := NewInstance().
		MustAdd("T", "t1").
		MustAdd("R", "r1", "z1").
		MustAdd("B", "z1")
	res, err := RunAnswerStar(u, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	// Rule 2's B(z) is unanswerable (B^i, z bound though... z is bound by
	// R, so B(z) is answerable as a filter call). Wait: B^i with z bound
	// is callable, so rule 2 is fully answerable and the query complete.
	if !res.Complete {
		t.Fatalf("expected complete: %s", res.Report())
	}

	// Now make the head variable come from an unanswerable literal-free
	// rule: U(y) with U^i and y in the head of a separate rule.
	u2 := ucq(t, `
		Q(x) :- T(x).
		Q(x) :- R(x, z), U(x, w).
	`)
	ps2 := pats(t, `T^o R^oo U^ii`)
	in2 := NewInstance().
		MustAdd("T", "t1").
		MustAdd("R", "r1", "z1")
	res2, err := RunAnswerStar(u2, ps2, in2.MustCatalog(ps2))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Complete {
		t.Fatal("rule 2 has unanswerable U, so completeness is unknown")
	}
	// Δ = {(r1)} (x is bound in the answerable part, so no null).
	if res2.Delta.HasNull() {
		t.Errorf("Δ = %s must be null-free", res2.Delta)
	}
	if !res2.RatioValid || res2.Ratio != 0.5 {
		t.Errorf("ratio = %v (valid=%v), want 0.5", res2.Ratio, res2.RatioValid)
	}
	if !containsStr(res2.Report(), "at least 0.50 complete") {
		t.Errorf("report = %q", res2.Report())
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return len(sub) == 0
}
