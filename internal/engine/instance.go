package engine

import (
	"fmt"
	"sort"

	"repro/internal/access"
	"repro/internal/parser"
	"repro/internal/sources"
)

// Instance is a database instance: named relations of constant tuples.
// It is the hidden "global" database of the paper's setting; plans can
// only observe it through limited-access sources (Catalog), while tests
// and experiments use it directly for ground truth.
type Instance struct {
	rels map[string]*storedRel
}

type storedRel struct {
	arity int
	rows  []sources.Tuple
	seen  map[string]bool
}

// NewInstance returns an empty instance.
func NewInstance() *Instance { return &Instance{rels: map[string]*storedRel{}} }

// Add inserts a tuple into the named relation, creating it on first use.
// Arity mismatches are an error; duplicates are ignored (set semantics).
func (in *Instance) Add(name string, vals ...string) error {
	r, ok := in.rels[name]
	if !ok {
		r = &storedRel{arity: len(vals), seen: map[string]bool{}}
		in.rels[name] = r
	}
	if len(vals) != r.arity {
		return fmt.Errorf("engine: relation %s has arity %d, got tuple of %d", name, r.arity, len(vals))
	}
	t := sources.Tuple(vals)
	if r.seen[t.Key()] {
		return nil
	}
	r.seen[t.Key()] = true
	r.rows = append(r.rows, append(sources.Tuple(nil), t...))
	return nil
}

// MustAdd is Add that panics on error.
func (in *Instance) MustAdd(name string, vals ...string) *Instance {
	if err := in.Add(name, vals...); err != nil {
		panic(err)
	}
	return in
}

// LoadFacts inserts parsed ground facts.
func (in *Instance) LoadFacts(facts []parser.Fact) error {
	for _, f := range facts {
		if err := in.Add(f.Pred, f.Args...); err != nil {
			return err
		}
	}
	return nil
}

// ParseInto parses the fact text and loads it.
func (in *Instance) ParseInto(src string) error {
	facts, err := parser.ParseFacts(src)
	if err != nil {
		return err
	}
	return in.LoadFacts(facts)
}

// Relations returns the relation names, sorted.
func (in *Instance) Relations() []string {
	out := make([]string, 0, len(in.rels))
	for n := range in.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Arity returns the arity of the relation, or -1 if absent.
func (in *Instance) Arity(name string) int {
	if r, ok := in.rels[name]; ok {
		return r.arity
	}
	return -1
}

// Rows returns the tuples of the relation (shared backing; do not
// mutate).
func (in *Instance) Rows(name string) []sources.Tuple {
	if r, ok := in.rels[name]; ok {
		return r.rows
	}
	return nil
}

// Has reports whether the named relation contains the tuple.
func (in *Instance) Has(name string, vals ...string) bool {
	r, ok := in.rels[name]
	if !ok {
		return false
	}
	return r.seen[sources.Tuple(vals).Key()]
}

// Size returns the total number of tuples across relations.
func (in *Instance) Size() int {
	n := 0
	for _, r := range in.rels {
		n += len(r.rows)
	}
	return n
}

// ActiveDomain returns all constant values occurring in the instance,
// sorted. Naive evaluation of negation-unsafe variables quantifies over
// this set.
func (in *Instance) ActiveDomain() []string {
	seen := map[string]bool{}
	for _, r := range in.rels {
		for _, t := range r.rows {
			for _, v := range t {
				seen[v] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Catalog wraps the instance's relations as limited-access Table sources
// according to the pattern set: each relation named in ps becomes a
// source with exactly the declared patterns. Relations of the instance
// not mentioned in ps get no source at all (they are unreachable, like a
// web service nobody published). Relations in ps absent from the
// instance become empty sources.
func (in *Instance) Catalog(ps *access.Set) (*sources.Catalog, error) {
	var srcs []sources.Source
	for _, name := range ps.Relations() {
		pats := ps.Patterns(name)
		arity := ps.Arity(name)
		var rows []sources.Tuple
		if r, ok := in.rels[name]; ok {
			if r.arity != arity {
				return nil, fmt.Errorf("engine: relation %s stored with arity %d but declared with patterns of arity %d", name, r.arity, arity)
			}
			rows = r.rows
		}
		t, err := sources.NewTable(name, arity, pats, rows)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, t)
	}
	return sources.NewCatalog(srcs...)
}

// MustCatalog is Catalog that panics on error.
func (in *Instance) MustCatalog(ps *access.Set) *sources.Catalog {
	c, err := in.Catalog(ps)
	if err != nil {
		panic(err)
	}
	return c
}
