package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/sources"
)

// Regression test for the abandoned-leg accounting bug: a call that
// gives up waiting for its per-source slot (context cancelled while
// parked on the semaphore) was charged to the budget but never
// launched, so BudgetSpent over-counted the profile's Calls — and a
// doomed waiter could spend the last budget slot a live worker then
// got rejected on. The charge must be refunded.
func TestBudgetRefundsAbandonedLeg(t *testing.T) {
	ps := pats(t, `R^o`)
	src := rTable(t, ps)
	rt := NewRuntime()
	rt.PerSource = 1
	rt.Budget = Budget{MaxCalls: 5}

	// Occupy the only per-source slot, then call under an already
	// cancelled context: the slot wait is abandoned deterministically.
	sem := rt.sourceSem("R")
	sem <- struct{}{}
	defer func() { <-sem }()

	budget := rt.newBudget()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var gauge inFlightGauge
	_, cs, err := rt.callWithRetry(ctx, src, "R", "o", nil, &gauge, budget)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cs.attempts != 0 {
		t.Fatalf("attempts = %d, want 0 (the leg never launched)", cs.attempts)
	}
	if got := budget.spent.Load(); got != 0 {
		t.Errorf("budget spent = %d, want 0: an abandoned slot wait must refund its charge", got)
	}
}

// Meter identity under concurrent rules + hedging: every launched leg —
// primary, timer hedge, failover, retry — is charged to the budget
// exactly once and recorded in the profile exactly once, so a profiled
// run must report BudgetSpent == TotalCalls however the rules
// interleave. Run under -race this also exercises the budget and
// profile counters for data races.
func TestBudgetMeterIdentityParallelHedged(t *testing.T) {
	u := ucq(t, `Q(x) :- R(x). Q(x) :- S(x). Q(x) :- T(x).`)
	ps := pats(t, `R^o S^o T^o`)

	mkSet := func(name string) sources.Source {
		healthy := NewInstance().MustAdd(name, "a").MustCatalog(ps).Source(name)
		flaky := sources.NewFlaky(NewInstance().MustAdd(name, "a").MustCatalog(ps).Source(name),
			sources.FlakyConfig{FailEveryN: 2})
		rs, err := sources.NewReplicaSet(sources.ReplicaConfig{Policy: declOrder{}}, flaky, healthy)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	newCat := func() *sources.Catalog {
		cat, err := sources.NewCatalog(mkSet("R"), mkSet("S"), mkSet("T"))
		if err != nil {
			t.Fatal(err)
		}
		return cat
	}

	for _, maxCalls := range []int{1000, 4, 2} {
		rt := NewRuntime()
		rt.Hedge = HedgePolicy{Delay: 100 * time.Microsecond, MaxHedges: 2}
		rt.PerSource = 2
		rt.Retry.BaseDelay = 0
		rt.Budget = Budget{MaxCalls: maxCalls}
		for i := 0; i < 20; i++ {
			rel, prof, inc, err := rt.Eval(context.Background(), u, ps, newCat(),
				EvalOpts{Parallel: true, Profile: true, Partial: true})
			if err != nil {
				t.Fatalf("MaxCalls=%d iter %d: %v", maxCalls, i, err)
			}
			if prof.Calls.BudgetSpent != prof.TotalCalls() {
				t.Fatalf("MaxCalls=%d iter %d: BudgetSpent = %d but profile Calls = %d (dropped or double-counted legs; %d rules degraded)",
					maxCalls, i, prof.Calls.BudgetSpent, prof.TotalCalls(), len(inc.Failed))
			}
			if len(inc.Failed) == 0 && rel.Len() != 1 {
				t.Fatalf("MaxCalls=%d iter %d: answers = %s, want the single row", maxCalls, i, rel)
			}
		}
	}
}

// A negative MaxCalls is the serving layer's shed mode: no source call
// is admitted at all. Strict mode surfaces ErrCallBudget; partial mode
// degrades every disjunct to budget-exhausted and certifies the empty
// underestimate, without a single call reaching the catalog.
func TestBudgetShedModeAdmitsNoCalls(t *testing.T) {
	u := ucq(t, `Q(x) :- R(x). Q(x) :- S(x).`)
	ps := pats(t, `R^o S^o`)
	in := NewInstance()
	in.MustAdd("R", "a")
	in.MustAdd("S", "b")

	rt := NewRuntime()
	rt.Budget = Budget{MaxCalls: -1}

	if _, _, _, err := rt.Eval(context.Background(), u, ps, in.MustCatalog(ps), EvalOpts{}); !errors.Is(err, ErrCallBudget) {
		t.Fatalf("strict err = %v, want ErrCallBudget", err)
	}

	cat := in.MustCatalog(ps)
	rel, prof, inc, err := rt.Eval(context.Background(), u, ps, cat, EvalOpts{Partial: true, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Errorf("shed answers = %s, want none", rel)
	}
	if len(inc.Failed) != 2 {
		t.Fatalf("failures = %+v, want both rules budget-exhausted", inc.Failed)
	}
	for _, f := range inc.Failed {
		if f.Class != FailBudget {
			t.Errorf("failure class = %s, want %s", f.Class, FailBudget)
		}
	}
	if prof.Calls.BudgetSpent != 0 || prof.TotalCalls() != 0 {
		t.Errorf("shed mode spent budget %d / calls %d, want 0/0", prof.Calls.BudgetSpent, prof.TotalCalls())
	}
	if st := cat.TotalStats(); st.Calls != 0 {
		t.Errorf("shed mode reached the catalog %d times, want 0", st.Calls)
	}
}
