package engine

// Process-wide value interning for columnar evaluation. Every constant
// that flows through a plan — source tuple values, call inputs, compile
// constants — maps to a dense uint32 ID, so binding batches hold machine
// words instead of string headers and join keys compare in one
// instruction. The table is append-only for the process lifetime:
// source values recur across queries (that is what makes the semantic
// caches pay off), so a per-execution table would re-intern the same
// working set on every request. Identity of *data* versions is not the
// interner's job — that is Catalog.Generation and Catalog.ID(); the
// interner only canonicalizes value bytes, and two catalogs sharing the
// string "paris" sharing an ID is correct, not a collision.

import (
	"math"
	"sync"
	"sync/atomic"
)

// Reverse-table chunking: IDs index fixed-size chunks, so growing the
// table never moves published strings and str() is two loads.
const (
	internChunkShift = 10
	internChunkSize  = 1 << internChunkShift
	internChunkMask  = internChunkSize - 1
)

// valueInterner maps strings to dense uint32 IDs and back. id() is
// lock-free for already-interned values (the hot path: a steady-state
// workload interns almost nothing); misses take a mutex to append.
// str() is always lock-free.
type valueInterner struct {
	ids sync.Map // string -> uint32

	mu     sync.Mutex // guards appends: n, bytes, and chunk writes
	n      uint32     // next ID to assign
	bytes  int64      // approximate resident bytes of interned values
	chunks atomic.Pointer[[][]string]
}

// internEntryOverhead approximates the per-entry cost beyond the value
// bytes themselves: the sync.Map entry, the reverse-table slot, and two
// string headers.
const internEntryOverhead = 64

func newValueInterner() *valueInterner {
	in := &valueInterner{}
	chunks := make([][]string, 0, 8)
	in.chunks.Store(&chunks)
	return in
}

// interned is the process-wide interner backing columnar evaluation.
var interned = newValueInterner()

// id returns the ID for s, assigning a fresh one on first sight, and
// reports whether the value was new. Any byte string round-trips,
// including "" and non-UTF-8 data: the interner stores values verbatim.
func (in *valueInterner) id(s string) (uint32, bool) {
	if v, ok := in.ids.Load(s); ok {
		return v.(uint32), false
	}
	in.mu.Lock()
	if v, ok := in.ids.Load(s); ok {
		in.mu.Unlock()
		return v.(uint32), false
	}
	id := in.n
	if id == math.MaxUint32 {
		in.mu.Unlock()
		panic("engine: value interner overflow: 2^32-1 distinct values")
	}
	chunks := *in.chunks.Load()
	if ci := int(id >> internChunkShift); ci == len(chunks) {
		grown := make([][]string, ci+1)
		copy(grown, chunks)
		grown[ci] = make([]string, internChunkSize)
		in.chunks.Store(&grown)
		chunks = grown
	}
	chunks[id>>internChunkShift][id&internChunkMask] = s
	in.n = id + 1
	in.bytes += int64(len(s)) + internEntryOverhead
	// Publish last: a reader can only learn this ID through the map (or
	// through data derived after this Store), so the chunk write above
	// happens-before every str(id).
	in.ids.Store(s, id)
	in.mu.Unlock()
	return id, true
}

// str returns the string for an ID previously assigned by id. IDs are
// never recycled, so the result is valid for the process lifetime.
func (in *valueInterner) str(id uint32) string {
	return (*in.chunks.Load())[id>>internChunkShift][id&internChunkMask]
}

// size returns the number of interned values (for tests).
func (in *valueInterner) size() uint32 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

// InternerOccupancy reports the process-wide value interner's entry
// count and approximate resident bytes. The table is append-only for
// the process lifetime, so both numbers are monotonic gauges — useful
// for watching whether a workload's value universe has stabilized
// (steady state interns almost nothing) or keeps growing.
func InternerOccupancy() (entries int, bytes int64) {
	interned.mu.Lock()
	defer interned.mu.Unlock()
	return int(interned.n), interned.bytes
}
