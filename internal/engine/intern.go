package engine

// Process-wide value interning for columnar evaluation. Every constant
// that flows through a plan — source tuple values, call inputs, compile
// constants — maps to a dense uint32 ID, so binding batches hold machine
// words instead of string headers and join keys compare in one
// instruction. The table is append-only for the process lifetime:
// source values recur across queries (that is what makes the semantic
// caches pay off), so a per-execution table would re-intern the same
// working set on every request. Identity of *data* versions is not the
// interner's job — that is Catalog.Generation and Catalog.ID(); the
// interner only canonicalizes value bytes, and two catalogs sharing the
// string "paris" sharing an ID is correct, not a collision.

import (
	"math"
	"sync"
	"sync/atomic"
)

// Reverse-table chunking: IDs index fixed-size chunks, so growing the
// table never moves published strings and str() is two loads.
const (
	internChunkShift = 10
	internChunkSize  = 1 << internChunkShift
	internChunkMask  = internChunkSize - 1
)

// valueInterner maps strings to dense uint32 IDs and back. id() is
// lock-free for already-interned values (the hot path: a steady-state
// workload interns almost nothing); misses take a mutex to append.
// str() is always lock-free.
type valueInterner struct {
	ids sync.Map // string -> uint32

	mu     sync.Mutex // guards appends: n, bytes, and chunk writes
	n      uint32     // next ID to assign
	bytes  int64      // approximate resident bytes of interned values
	chunks atomic.Pointer[[][]string]

	// Admission cap (SetInternerCap): the interner is process-wide and
	// append-only, so without a bound an adversarial tenant streaming
	// unbounded distinct strings grows it forever. When the cap is
	// reached, tryID refuses and the columnar evaluator spills the value
	// to an execution-local table instead (colPool.internID).
	maxEntries atomic.Int64 // 0 = unlimited
	maxBytes   atomic.Int64 // 0 = unlimited
	capHits    atomic.Int64 // intern attempts refused by the cap
}

// internEntryOverhead approximates the per-entry cost beyond the value
// bytes themselves: the sync.Map entry, the reverse-table slot, and two
// string headers.
const internEntryOverhead = 64

func newValueInterner() *valueInterner {
	in := &valueInterner{}
	chunks := make([][]string, 0, 8)
	in.chunks.Store(&chunks)
	return in
}

// interned is the process-wide interner backing columnar evaluation.
var interned = newValueInterner()

// id returns the ID for s, assigning a fresh one on first sight, and
// reports whether the value was new. Any byte string round-trips,
// including "" and non-UTF-8 data: the interner stores values verbatim.
// id ignores the admission cap; cap-aware callers use tryID.
func (in *valueInterner) id(s string) (uint32, bool) {
	id, fresh, _ := in.intern(s, false)
	return id, fresh
}

// lookup returns the ID of an already-interned value without interning.
func (in *valueInterner) lookup(s string) (uint32, bool) {
	if v, ok := in.ids.Load(s); ok {
		return v.(uint32), true
	}
	return 0, false
}

// tryID is id under the admission cap: ok=false means the cap refused
// the value (and nothing was interned) — the caller must resolve it
// some other way.
func (in *valueInterner) tryID(s string) (id uint32, fresh, ok bool) {
	return in.intern(s, true)
}

// intern is the shared implementation of id and tryID.
func (in *valueInterner) intern(s string, capped bool) (uint32, bool, bool) {
	if v, ok := in.ids.Load(s); ok {
		return v.(uint32), false, true
	}
	in.mu.Lock()
	if v, ok := in.ids.Load(s); ok {
		in.mu.Unlock()
		return v.(uint32), false, true
	}
	if capped {
		maxN, maxB := in.maxEntries.Load(), in.maxBytes.Load()
		if (maxN > 0 && int64(in.n) >= maxN) ||
			(maxB > 0 && in.bytes+int64(len(s))+internEntryOverhead > maxB) {
			in.mu.Unlock()
			in.capHits.Add(1)
			return 0, false, false
		}
	}
	id := in.n
	if id == math.MaxUint32 {
		in.mu.Unlock()
		panic("engine: value interner overflow: 2^32-1 distinct values")
	}
	chunks := *in.chunks.Load()
	if ci := int(id >> internChunkShift); ci == len(chunks) {
		grown := make([][]string, ci+1)
		copy(grown, chunks)
		grown[ci] = make([]string, internChunkSize)
		in.chunks.Store(&grown)
		chunks = grown
	}
	chunks[id>>internChunkShift][id&internChunkMask] = s
	in.n = id + 1
	in.bytes += int64(len(s)) + internEntryOverhead
	// Publish last: a reader can only learn this ID through the map (or
	// through data derived after this Store), so the chunk write above
	// happens-before every str(id).
	in.ids.Store(s, id)
	in.mu.Unlock()
	return id, true, true
}

// str returns the string for an ID previously assigned by id. IDs are
// never recycled, so the result is valid for the process lifetime.
func (in *valueInterner) str(id uint32) string {
	return (*in.chunks.Load())[id>>internChunkShift][id&internChunkMask]
}

// size returns the number of interned values (for tests).
func (in *valueInterner) size() uint32 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.n
}

// InternerOccupancy reports the process-wide value interner's entry
// count and approximate resident bytes. The table is append-only for
// the process lifetime, so both numbers are monotonic gauges — useful
// for watching whether a workload's value universe has stabilized
// (steady state interns almost nothing) or keeps growing.
func InternerOccupancy() (entries int, bytes int64) {
	interned.mu.Lock()
	defer interned.mu.Unlock()
	return int(interned.n), interned.bytes
}

// spillBase is the first execution-local spill ID: IDs at or above it
// resolve through the execution's colPool spill table, never the
// process-wide interner. SetInternerCap clamps the entry cap below it,
// so the two ID spaces cannot collide.
const spillBase uint32 = 1 << 31

// SetInternerCap bounds the process-wide value interner: at most
// maxEntries values and maxBytes approximate resident bytes (0 means
// unlimited for either). Values refused by the cap are not lost — the
// columnar evaluator resolves them through an execution-local spill
// table at some per-execution cost — so answers are unaffected; the cap
// only bounds what adversarial tenant input can pin in process memory
// forever. Already-interned values stay interned: the cap gates
// admission, it does not evict.
//
// Cap hits are surfaced in ExecProfile.Batch (InternerCapHits,
// SpilledValues) and the server's /v1/stats.
func SetInternerCap(maxEntries int, maxBytes int64) {
	if maxEntries < 0 {
		maxEntries = 0
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	// Clamp below the spill ID space; 2^31-1 entries is far beyond any
	// real memory budget anyway.
	if maxEntries != 0 && int64(maxEntries) >= int64(spillBase) {
		maxEntries = int(spillBase - 1)
	}
	interned.maxEntries.Store(int64(maxEntries))
	interned.maxBytes.Store(maxBytes)
}

// InternerCapStats reports how often the interner cap refused an intern
// attempt (a process-lifetime counter) and whether the cap is currently
// reached — i.e. whether new distinct values are being spilled.
func InternerCapStats() (capHits int64, capped bool) {
	hits := interned.capHits.Load()
	maxN, maxB := interned.maxEntries.Load(), interned.maxBytes.Load()
	interned.mu.Lock()
	n, bytes := int64(interned.n), interned.bytes
	interned.mu.Unlock()
	capped = (maxN > 0 && n >= maxN) || (maxB > 0 && bytes+internEntryOverhead >= maxB)
	return hits, capped
}
