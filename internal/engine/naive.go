package engine

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/sources"
)

// AnswerNaive evaluates a UCQ¬ query directly over the instance, ignoring
// access patterns. It is the ground truth ANSWER(Q, D) used by tests and
// experiments to judge the completeness of limited-access plans.
//
// Negated literals whose variables are all bound are absence checks.
// Variables occurring only in negated literals (the paper's Example 3
// admits them) are read existentially over the active domain.
func AnswerNaive(u logic.UCQ, in *Instance) (*Rel, error) {
	out := NewRel()
	for _, rule := range u.Rules {
		if rule.False {
			continue
		}
		if err := naiveRule(rule, in, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func naiveRule(q logic.CQ, in *Instance, out *Rel) error {
	// Join all positive literals first (full scans), then apply negations.
	bindings := []binding{{}}
	for _, l := range q.Positive() {
		var next []binding
		rows := in.Rows(l.Atom.Pred)
		if got := in.Arity(l.Atom.Pred); got >= 0 && got != l.Atom.Arity() {
			return fmt.Errorf("engine: relation %s has arity %d, query uses %d", l.Atom.Pred, got, l.Atom.Arity())
		}
		for _, b := range bindings {
			for _, t := range rows {
				if nb := tupleMatches(l.Atom, t, b); nb != nil {
					next = append(next, nb)
				}
			}
		}
		bindings = next
		if len(bindings) == 0 {
			return nil
		}
	}
	adom := in.ActiveDomain()
	negs := q.Negative()
	for _, b := range bindings {
		ok, err := negsSatisfied(negs, b, in, adom)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		row, err := headRow(q, b)
		if err != nil {
			return err
		}
		out.Add(row)
	}
	return nil
}

// negsSatisfied decides the conjunction of negated literals under b.
// Variables unbound after the positive join are existentially quantified
// over the active domain, jointly across all negated literals (so a
// variable shared by two negations gets a single witness value).
func negsSatisfied(negs []logic.Literal, b binding, in *Instance, adom []string) (bool, error) {
	var names []string
	seen := map[string]bool{}
	for _, l := range negs {
		for _, t := range l.Atom.Args {
			if t.IsNull() {
				return false, fmt.Errorf("engine: null in body atom %s", l.Atom)
			}
			if t.IsVar() && !seen[t.Name] {
				if _, bound := b[t.Name]; !bound {
					seen[t.Name] = true
					names = append(names, t.Name)
				}
			}
		}
	}
	check := func(bb binding) bool {
		for _, l := range negs {
			vals := make([]string, len(l.Atom.Args))
			for j, t := range l.Atom.Args {
				if t.IsConst() {
					vals[j] = t.Name
				} else {
					vals[j] = bb[t.Name]
				}
			}
			if in.Has(l.Atom.Pred, vals...) {
				return false
			}
		}
		return true
	}
	if len(names) == 0 {
		return check(b), nil
	}
	if len(adom) == 0 {
		return false, nil
	}
	ext := b.clone()
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(names) {
			return check(ext)
		}
		for _, v := range adom {
			ext[names[k]] = v
			if rec(k + 1) {
				return true
			}
		}
		return false
	}
	return rec(0), nil
}

// InstanceFromTables builds an Instance from the rows of the catalog's
// table sources; used by experiments that start from a catalog.
func InstanceFromTables(cat *sources.Catalog) *Instance {
	in := NewInstance()
	for _, name := range cat.Names() {
		if t, ok := cat.Source(name).(*sources.Table); ok {
			for _, row := range t.Rows() {
				_ = in.Add(name, row...)
			}
		}
	}
	return in
}
