package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/sources"
	"repro/internal/workload"
)

// drainOrdered drains the stream and returns the answer Rel; the test
// fails on any stream error.
func drainOrdered(t *testing.T, s *Stream) *Rel {
	t.Helper()
	rel, err := s.Drain()
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// sameRows asserts two relations are byte-identical: same rows in the
// same insertion order.
func sameRows(t *testing.T, got, want *Rel, label string) {
	t.Helper()
	g, w := got.Rows(), want.Rows()
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i].Key() != w[i].Key() {
			t.Fatalf("%s: row %d = %s, want %s", label, i, g[i], w[i])
		}
	}
}

// The tentpole property: a streamed drain is byte-identical to the seed
// sequential materializing evaluation on the paper's worked examples,
// executed through the PLAN* under/overestimates, and issues no more
// source calls.
func TestStreamDrainByteIdenticalOnPaperExamples(t *testing.T) {
	for _, ex := range workload.PaperExamples() {
		t.Run(ex.Name, func(t *testing.T) {
			plans := core.ComputePlans(ex.Query, ex.Patterns)
			for _, plan := range []struct {
				name string
				u    logic.UCQ
			}{{"under", plans.Under}, {"over", plans.Over}} {
				matCat := exampleInstance(ex.Patterns).MustCatalog(ex.Patterns)
				want, err := SequentialRuntime().Answer(context.Background(), plan.u, ex.Patterns, matCat)
				if err != nil {
					t.Fatal(err)
				}
				strCat := exampleInstance(ex.Patterns).MustCatalog(ex.Patterns)
				s, err := NewRuntime().Stream(context.Background(), plan.u, ex.Patterns, strCat)
				if err != nil {
					t.Fatal(err)
				}
				got := drainOrdered(t, s)
				sameRows(t, got, want, plan.name)
				if sc, mc := strCat.TotalStats().Calls, matCat.TotalStats().Calls; sc > mc {
					t.Errorf("%s: streaming issued more calls: %d vs %d", plan.name, sc, mc)
				}
			}
		})
	}
}

// The same property on random executable plans with negation, across
// batch-size and buffer-depth knob settings (batch 1 forces maximal
// cross-batch traffic through the per-stage memo).
func TestStreamMatchesSequentialOnRandomPlans(t *testing.T) {
	g := workload.New(137)
	s := g.Schema(4, 1, 2)
	ps := g.Patterns(s, 0.4, 2)
	cfg := workload.QueryConfig{PosLits: 3, NegLits: 1, VarPool: 4, ConstProb: 0.1, HeadVars: 1, DomainSize: 5}
	knobs := []struct{ batch, buffer int }{{0, 0}, {1, 1}, {3, 2}, {64, 4}}
	tested := 0
	for i := 0; i < 100 && tested < 30; i++ {
		u := g.UCQ(s, 3, cfg)
		ordered, ok := core.ReorderUCQ(u, ps)
		if !ok {
			continue
		}
		in := NewInstance()
		if err := in.LoadFacts(g.Facts(s, 15, 6)); err != nil {
			t.Fatal(err)
		}
		matCat := in.MustCatalog(ps)
		want, err := SequentialRuntime().Answer(context.Background(), ordered, ps, matCat)
		if err != nil {
			t.Fatal(err)
		}
		k := knobs[tested%len(knobs)]
		rt := NewRuntime()
		rt.BatchSize, rt.StageBuffer = k.batch, k.buffer
		strCat := in.MustCatalog(ps)
		st, err := rt.Stream(context.Background(), ordered, ps, strCat)
		if err != nil {
			t.Fatal(err)
		}
		got := drainOrdered(t, st)
		sameRows(t, got, want, fmt.Sprintf("plan %d (batch=%d buffer=%d)", i, k.batch, k.buffer))
		if sc, mc := strCat.TotalStats().Calls, matCat.TotalStats().Calls; sc > mc {
			t.Errorf("plan %d: streaming issued more calls (%d vs %d):\n%s", i, sc, mc, ordered)
		}
		tested++
	}
	if tested < 15 {
		t.Errorf("only %d plans engaged", tested)
	}
}

// StreamParallel merges concurrent rule pipelines into the same answer
// set (set semantics; interleaving may differ).
func TestStreamParallelMatchesAnswer(t *testing.T) {
	in := NewInstance()
	var src, patSrc string
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			in.MustAdd(fmt.Sprintf("R%d", i), fmt.Sprintf("v%d_%d", i, j))
		}
		src += fmt.Sprintf("Q(x) :- R%d(x).\n", i)
		patSrc += fmt.Sprintf("R%d^o ", i)
	}
	u := ucq(t, src)
	ps := pats(t, patSrc)
	want, err := Answer(u, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewRuntime().StreamParallel(context.Background(), u, ps, in.MustCatalog(ps))
	if err != nil {
		t.Fatal(err)
	}
	got := drainOrdered(t, s)
	if !got.Equal(want) {
		t.Errorf("parallel stream = %s, want %s", got, want)
	}
}

// A rule that is not executable as written fails at Stream time, before
// any goroutine or source call is spent.
func TestStreamRejectsNonExecutablePlan(t *testing.T) {
	u := ucq(t, `Q(x) :- T(z, x).`)
	ps := pats(t, `T^io`)
	cat := NewInstance().MustAdd("T", "k", "v").MustCatalog(ps)
	if _, err := NewRuntime().Stream(context.Background(), u, ps, cat); err == nil {
		t.Fatal("non-executable plan must be rejected")
	}
}

// settleGoroutines waits for the goroutine count to return to the
// baseline (with a little slack for runtime helpers).
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Closing a stream mid-flight tears down every stage: the goroutine
// count settles back to the baseline and no error is reported (the
// cancellation was the consumer's own).
func TestStreamCloseMidFlightLeaksNothing(t *testing.T) {
	u := ucq(t, `Q(x, y) :- R(x, z), S(z, w), T(w, y).`)
	ps := pats(t, `R^oo S^io T^io`)
	in := NewInstance()
	for i := 0; i < 200; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i))
		in.MustAdd("S", fmt.Sprintf("z%d", i), fmt.Sprintf("w%d", i))
		in.MustAdd("T", fmt.Sprintf("w%d", i), fmt.Sprintf("y%d", i))
	}
	base, err := sources.DelayedCatalog(in.MustCatalog(ps), 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime()
	rt.BatchSize = 8
	baseline := runtime.NumGoroutine()
	s, err := rt.Stream(context.Background(), u, ps, base)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Next() {
		t.Fatalf("no first tuple: %v", s.Err())
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close after consumer abandon must not report an error: %v", err)
	}
	settleGoroutines(t, baseline)
	if s.Next() {
		t.Error("Next after Close must report exhaustion")
	}
	if err := s.Close(); err != nil {
		t.Errorf("Close must be idempotent: %v", err)
	}
}

// Cancelling the caller's context mid-flight also tears everything down,
// and — unlike a consumer Close — surfaces as a context error.
func TestStreamContextCancellation(t *testing.T) {
	u := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance()
	for i := 0; i < 100; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i))
		in.MustAdd("T", fmt.Sprintf("z%d", i), fmt.Sprintf("y%d", i))
	}
	cat, err := sources.DelayedCatalog(in.MustCatalog(ps), 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime()
	rt.BatchSize = 4
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	s, err := rt.Stream(ctx, u, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Next() {
		t.Fatalf("no first tuple: %v", s.Err())
	}
	cancel()
	for s.Next() { // drain whatever was already emitted
	}
	if err := s.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err = %v, want context.Canceled", err)
	}
	s.Close()
	settleGoroutines(t, baseline)
}

// A context that is already dead when Stream is called must not look
// like a cleanly exhausted (empty) stream.
func TestStreamPreCancelledContext(t *testing.T) {
	u := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance()
	in.MustAdd("R", "x0", "z0")
	in.MustAdd("T", "z0", "y0")
	cat := in.MustCatalog(ps)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, parallel := range []bool{false, true} {
		s, err := NewRuntime().StreamEval(ctx, u, ps, cat, StreamOpts{Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Drain(); !errors.Is(err, context.Canceled) {
			t.Errorf("parallel=%v: Drain err = %v, want context.Canceled", parallel, err)
		}
	}
}

// A source failure mid-stream surfaces through Err and still tears the
// pipeline down.
func TestStreamSourceFailureSurfaces(t *testing.T) {
	u := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance()
	for i := 0; i < 10; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i))
		in.MustAdd("T", fmt.Sprintf("z%d", i), fmt.Sprintf("y%d", i))
	}
	cat := flakyCatalog(t, in, ps, sources.FlakyConfig{FailFirst: 100})
	rt := NewRuntime()
	rt.Retry = RetryPolicy{MaxAttempts: 1}
	baseline := runtime.NumGoroutine()
	s, err := rt.Stream(context.Background(), u, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	for s.Next() {
	}
	if err := s.Err(); err == nil || !sources.IsTransient(err) {
		t.Errorf("Err = %v, want the injected source failure", err)
	}
	if _, err := s.Drain(); err == nil {
		t.Error("Drain must report the pipeline failure")
	}
	settleGoroutines(t, baseline)
}

// The stream profile records time to first tuple, per-stage traffic
// equal to the materialized profile, and a bounded binding residency.
func TestStreamProfile(t *testing.T) {
	u := ucq(t, `Q(x, y) :- R(x, z), T(z, y).`)
	ps := pats(t, `R^oo T^io`)
	in := NewInstance()
	for i := 0; i < 50; i++ {
		in.MustAdd("R", fmt.Sprintf("x%d", i), fmt.Sprintf("z%d", i%5))
		in.MustAdd("T", fmt.Sprintf("z%d", i%5), fmt.Sprintf("y%d", i%5))
	}
	matCat := in.MustCatalog(ps)
	_, matProf, err := NewRuntime().AnswerProfiled(context.Background(), u, ps, matCat)
	if err != nil {
		t.Fatal(err)
	}

	rt := NewRuntime()
	rt.BatchSize = 8
	strCat := in.MustCatalog(ps)
	s, err := rt.Stream(context.Background(), u, ps, strCat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Profile(); ok {
		t.Error("profile must not be available while the stream runs")
	}
	if _, err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	prof, ok := s.Profile()
	if !ok {
		t.Fatal("profile must be available after the stream finished")
	}
	if prof.TimeToFirst <= 0 || prof.Elapsed < prof.TimeToFirst {
		t.Errorf("TimeToFirst=%v Elapsed=%v", prof.TimeToFirst, prof.Elapsed)
	}
	if got, want := prof.TotalCalls(), matProf.TotalCalls(); got != want {
		t.Errorf("streamed calls = %d, want %d (materialized)", got, want)
	}
	if got, want := prof.TotalDeduped(), matProf.TotalDeduped(); got != want {
		t.Errorf("streamed dedup = %d, want %d", got, want)
	}
	if prof.PeakBindings() <= 0 {
		t.Error("streamed PeakBindings must be recorded")
	}
	if len(prof.Rules) != 1 || len(prof.Rules[0].Steps) != 2 {
		t.Fatalf("profile shape: %+v", prof)
	}
	for i, sp := range prof.Rules[0].Steps {
		if sp.Elapsed <= 0 {
			t.Errorf("stage %d has no busy time", i)
		}
	}
}
