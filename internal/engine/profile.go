package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// StepProfile is the traffic accounting of one plan step (one adorned
// literal): how many source calls it issued, how many tuples came back,
// and how the binding set changed. It is the per-operator half of an
// EXPLAIN ANALYZE for limited-access plans.
type StepProfile struct {
	Step access.AdornedLiteral
	// Calls counts the call attempts issued to the source, including
	// retried attempts; with healthy sources it equals the catalog's
	// meter delta for the step.
	Calls          int
	TuplesReturned int
	BindingsIn     int
	BindingsOut    int
	// DedupedCalls counts bindings served by another binding's call:
	// their (pattern, inputs) key was already being fetched this step,
	// so no extra source call was issued.
	DedupedCalls int
	// Retries counts retry rounds beyond the first per call (transient
	// failures that the retry policy absorbed). A hedged race across
	// replicas is one round however many legs it launched.
	Retries int
	// HedgedCalls counts backup attempts the hedge timer launched
	// against replicated sources; each is also included in Calls.
	HedgedCalls int
	// HedgeWins counts calls whose winning rows came from a hedged
	// backup attempt rather than the primary.
	HedgeWins int
	// BatchGroups counts the binding groups this step serviced through a
	// batch-capable source as batched round trips (each group is one
	// wire call per attempt, counted once in Calls).
	BatchGroups int
	// BatchedCalls counts the distinct logical calls covered by those
	// groups — calls that did NOT each pay a wire round trip.
	BatchedCalls int
	// MaxInFlight is the peak number of concurrent calls the step had
	// outstanding against the source.
	MaxInFlight int
	// Elapsed is the wall-clock time spent in this step: issuing its
	// source calls and joining the results. In a streamed pipeline it is
	// the stage's busy time summed over batches (stages overlap, so step
	// times may sum to more than the rule's Elapsed).
	Elapsed time.Duration
}

// String renders one profile line.
func (sp StepProfile) String() string {
	s := fmt.Sprintf("%-36s calls=%-5d dedup=%-5d tuples=%-6d bindings %d→%d",
		sp.Step.String(), sp.Calls, sp.DedupedCalls, sp.TuplesReturned, sp.BindingsIn, sp.BindingsOut)
	if sp.Retries > 0 {
		s += fmt.Sprintf(" retries=%d", sp.Retries)
	}
	if sp.HedgedCalls > 0 {
		s += fmt.Sprintf(" hedged=%d(won %d)", sp.HedgedCalls, sp.HedgeWins)
	}
	if sp.BatchGroups > 0 {
		s += fmt.Sprintf(" batched=%d/%d", sp.BatchedCalls, sp.BatchGroups)
	}
	if sp.MaxInFlight > 1 {
		s += fmt.Sprintf(" inflight≤%d", sp.MaxInFlight)
	}
	if sp.Elapsed > 0 {
		s += fmt.Sprintf(" t=%s", sp.Elapsed.Round(time.Microsecond))
	}
	return s
}

// RuleProfile is the execution profile of one rule.
type RuleProfile struct {
	Rule    logic.CQ
	Steps   []StepProfile
	Answers int // new answer tuples this rule contributed
	// Elapsed is the rule's wall-clock execution time, first step start
	// to last answer.
	Elapsed time.Duration
	// PeakBindings is the high-water mark of bindings resident for this
	// rule: input+output set of the widest step when materializing, the
	// observed live-batch gauge when streaming.
	PeakBindings int
}

// CallsProfile groups an execution's aggregated source-call traffic.
// The per-step counters in Rules are the ground truth; these totals are
// derived from them when the execution finishes (finalize), except
// BudgetSpent, which the budget meter fills directly.
type CallsProfile struct {
	// Total is the number of call attempts issued, retries and hedged
	// legs included (the sum of StepProfile.Calls).
	Total int
	// Deduped counts bindings served by another binding's call.
	Deduped int
	// Retries counts retry rounds beyond the first per call.
	Retries int
	// Hedged counts timer-launched backup attempts; each is also in
	// Total.
	Hedged int
	// HedgeWins counts calls whose winning rows came from a backup leg.
	HedgeWins int
	// BatchGroups counts the binding groups serviced as batched round
	// trips through batch-capable sources (adapters); each group is one
	// wire call per attempt.
	BatchGroups int
	// BatchedCalls counts the logical calls covered by those groups.
	BatchedCalls int
	// MaxInFlight is the peak per-step call concurrency seen anywhere in
	// the plan.
	MaxInFlight int
	// BudgetSpent is the number of call attempts charged against the
	// runtime's per-query budget (0 when no budget is active).
	BudgetSpent int
}

// CacheProfile groups the semantic query cache's contribution to an
// execution.
type CacheProfile struct {
	// PlanHits counts plan-cache hits (0 or 1 per Exec; an int so
	// profiles can be summed across requests).
	PlanHits int
	// AnswerHits counts full answer-cache hits: the whole result was
	// served from cached rows with no live evaluation.
	AnswerHits int
	// PartialReuseRules counts the disjuncts whose rows were reused from
	// the answer cache while the remaining disjuncts ran live.
	PartialReuseRules int
	// Evictions counts query-cache entries (plans or answers) evicted
	// while serving this execution.
	Evictions int
	// PersistLoads counts answer entries warm-loaded from the cache's
	// persistence log. Like Replicas, these persistence counters are
	// cumulative across the cache's lifetime, not per-execution.
	PersistLoads int
	// PersistDrops counts persisted records dropped as unverifiable
	// (torn, bit-flipped, failed validation) or stale — dropped records
	// are never served.
	PersistDrops int
	// PersistBytes approximates the row bytes warm-loaded from disk.
	PersistBytes int64
}

// DegradedProfile groups the partial-results accounting.
type DegradedProfile struct {
	// Rules counts the disjuncts dropped in partial-results mode (0 in
	// strict mode or on a complete run).
	Rules int
}

// BatchProfile groups the columnar evaluator's batch accounting.
type BatchProfile struct {
	// BatchesProcessed counts the binding batches run through step
	// application (materialized evaluation processes one batch per
	// step; streamed pipelines many smaller ones).
	BatchesProcessed int
	// InternedValues counts source-tuple values first interned during
	// this execution (steady-state workloads re-see their working set,
	// so this trends to zero).
	InternedValues int
	// ArenaReuses counts column buffers served from the execution's
	// recycling pool instead of fresh allocations.
	ArenaReuses int
	// SpilledValues counts values this execution could not intern
	// because the process-wide interner hit its configured cap
	// (SetInternerCap) and instead resolved through the execution-local
	// spill table. Nonzero spills mean the cap is protecting the process
	// from unbounded distinct input, at some per-execution cost.
	SpilledValues int
	// InternerEntries and InternerBytes are the process-wide value
	// interner's occupancy (entry count and approximate resident bytes),
	// snapshotted when the execution finished. The interner is
	// append-only, so these are monotonic gauges, not per-execution
	// deltas.
	InternerEntries int
	InternerBytes   int64
	// InternerCapHits is the process-wide count of intern attempts
	// refused by the cap (a monotonic gauge, like the occupancy);
	// InternerCapped reports whether the cap is currently reached.
	InternerCapHits int64
	InternerCapped  bool
}

// Profile is the execution profile of a whole plan. Counter groups:
// Calls (source traffic), Cache (semantic query cache), Degraded
// (partial results), Batch (columnar evaluator).
type Profile struct {
	Rules []RuleProfile
	// Elapsed is the whole plan's wall-clock time.
	Elapsed time.Duration
	// TimeToFirst is the delay from execution start to the first head
	// tuple reaching the caller. Only streamed runs fill it; a
	// materializing run delivers nothing before Elapsed.
	TimeToFirst time.Duration

	// Calls is the aggregated source-call traffic.
	Calls CallsProfile
	// Cache is the semantic query cache's contribution.
	Cache CacheProfile
	// Degraded is the partial-results accounting.
	Degraded DegradedProfile
	// Batch is the columnar evaluator's batch accounting.
	Batch BatchProfile

	// Replicas is the per-replica health and traffic breakdown of every
	// replica-set source in the catalog, snapshotted when the execution
	// finished (profiled runs only; counters are cumulative across the
	// catalog's lifetime, not per-execution).
	Replicas []ReplicaSetProfile
}

// finalize derives the aggregated Calls counters from the per-step
// profiles (BudgetSpent is set by the budget meter and preserved).
// Every execution entry point calls it once the Rules slice is
// complete.
func (p *Profile) finalize() {
	c := &p.Calls
	c.Total, c.Deduped, c.Retries, c.Hedged, c.HedgeWins, c.MaxInFlight =
		p.TotalCalls(), p.TotalDeduped(), p.TotalRetries(), p.HedgedCalls(), p.HedgeWins(), p.MaxInFlight()
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			c.BatchGroups += s.BatchGroups
			c.BatchedCalls += s.BatchedCalls
		}
	}
	p.Batch.InternerEntries, p.Batch.InternerBytes = InternerOccupancy()
	p.Batch.InternerCapHits, p.Batch.InternerCapped = InternerCapStats()
}

// BudgetSpent returns Calls.BudgetSpent.
//
// Deprecated: read Calls.BudgetSpent.
func (p Profile) BudgetSpent() int { return p.Calls.BudgetSpent }

// DegradedRules returns Degraded.Rules.
//
// Deprecated: read Degraded.Rules.
func (p Profile) DegradedRules() int { return p.Degraded.Rules }

// PlanCacheHits returns Cache.PlanHits.
//
// Deprecated: read Cache.PlanHits.
func (p Profile) PlanCacheHits() int { return p.Cache.PlanHits }

// AnswerCacheHits returns Cache.AnswerHits.
//
// Deprecated: read Cache.AnswerHits.
func (p Profile) AnswerCacheHits() int { return p.Cache.AnswerHits }

// PartialReuseRules returns Cache.PartialReuseRules.
//
// Deprecated: read Cache.PartialReuseRules.
func (p Profile) PartialReuseRules() int { return p.Cache.PartialReuseRules }

// CacheEvictions returns Cache.Evictions.
//
// Deprecated: read Cache.Evictions.
func (p Profile) CacheEvictions() int { return p.Cache.Evictions }

// ReplicaSetProfile is the per-replica breakdown of one replicated
// source.
type ReplicaSetProfile struct {
	// Source is the relation name the replica set fronts.
	Source string
	// Replicas holds each replica's health and traffic, in declaration
	// order.
	Replicas []sources.ReplicaStats
}

// String renders one replica-set line.
func (rp ReplicaSetProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", rp.Source)
	for _, r := range rp.Replicas {
		fmt.Fprintf(&b, " %s[%s calls=%d fail=%d ewma=%s]",
			r.Replica, r.State, r.Calls, r.Failures, r.EWMALatency.Round(time.Microsecond))
	}
	return b.String()
}

// snapshotReplicas fills p.Replicas with the current per-replica
// breakdown of every replica-set source in the catalog.
func (p *Profile) snapshotReplicas(cat *sources.Catalog) {
	for _, name := range cat.Names() {
		if rs, ok := cat.Source(name).(*sources.ReplicaSet); ok {
			p.Replicas = append(p.Replicas, ReplicaSetProfile{Source: name, Replicas: rs.ReplicaStats()})
		}
	}
}

// TotalCalls sums source calls across all rules.
func (p Profile) TotalCalls() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.Calls
		}
	}
	return n
}

// TotalTuples sums tuples returned across all rules.
func (p Profile) TotalTuples() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.TuplesReturned
		}
	}
	return n
}

// TotalDeduped sums the calls saved by per-step deduplication.
func (p Profile) TotalDeduped() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.DedupedCalls
		}
	}
	return n
}

// TotalRetries sums the retried attempts across all rules.
func (p Profile) TotalRetries() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.Retries
		}
	}
	return n
}

// HedgedCalls sums the timer-launched backup attempts across all rules.
func (p Profile) HedgedCalls() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.HedgedCalls
		}
	}
	return n
}

// HedgeWins sums the calls won by a hedged backup attempt across all
// rules.
func (p Profile) HedgeWins() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.HedgeWins
		}
	}
	return n
}

// MaxInFlight is the peak per-step call concurrency seen anywhere in the
// plan.
func (p Profile) MaxInFlight() int {
	m := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			if s.MaxInFlight > m {
				m = s.MaxInFlight
			}
		}
	}
	return m
}

// PeakBindings is the largest per-rule binding residency seen in the
// plan (see RuleProfile.PeakBindings).
func (p Profile) PeakBindings() int {
	m := 0
	for _, r := range p.Rules {
		if r.PeakBindings > m {
			m = r.PeakBindings
		}
	}
	return m
}

// String renders the profile, one rule block per rule.
func (p Profile) String() string {
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "rule %d: %s   (%d answers", i+1, r.Rule, r.Answers)
		if r.Elapsed > 0 {
			fmt.Fprintf(&b, ", %s", r.Elapsed.Round(time.Microsecond))
		}
		b.WriteString(")\n")
		for _, s := range r.Steps {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	if p.TimeToFirst > 0 {
		fmt.Fprintf(&b, "first tuple after %s\n", p.TimeToFirst.Round(time.Microsecond))
	}
	if p.Degraded.Rules > 0 {
		fmt.Fprintf(&b, "degraded: %d disjunct(s) dropped\n", p.Degraded.Rules)
	}
	if p.Calls.BudgetSpent > 0 {
		fmt.Fprintf(&b, "budget spent: %d call(s)\n", p.Calls.BudgetSpent)
	}
	if c := p.Cache; c.PlanHits > 0 || c.AnswerHits > 0 || c.PartialReuseRules > 0 || c.Evictions > 0 {
		fmt.Fprintf(&b, "cache: plan hits=%d answer hits=%d reused rules=%d evictions=%d\n",
			c.PlanHits, c.AnswerHits, c.PartialReuseRules, c.Evictions)
	}
	if c := p.Cache; c.PersistLoads > 0 || c.PersistDrops > 0 {
		fmt.Fprintf(&b, "persist: %d entries warm-loaded (%d bytes), %d dropped\n",
			c.PersistLoads, c.PersistBytes, c.PersistDrops)
	}
	if p.Batch.BatchesProcessed > 0 {
		fmt.Fprintf(&b, "batches: %d processed, %d values interned, %d buffers reused\n",
			p.Batch.BatchesProcessed, p.Batch.InternedValues, p.Batch.ArenaReuses)
	}
	if p.Batch.SpilledValues > 0 {
		fmt.Fprintf(&b, "interner capped: %d value(s) spilled to execution-local table\n", p.Batch.SpilledValues)
	}
	if p.Calls.BatchGroups > 0 {
		fmt.Fprintf(&b, "pushdown: %d call(s) batched into %d round-trip group(s)\n",
			p.Calls.BatchedCalls, p.Calls.BatchGroups)
	}
	if h := p.HedgedCalls(); h > 0 {
		fmt.Fprintf(&b, "hedged: %d backup call(s), %d won\n", h, p.HedgeWins())
	}
	for _, rp := range p.Replicas {
		fmt.Fprintf(&b, "replicas %s\n", rp)
	}
	if p.Elapsed > 0 {
		fmt.Fprintf(&b, "total %s\n", p.Elapsed.Round(time.Microsecond))
	}
	return strings.TrimRight(b.String(), "\n")
}

// AnswerProfiled is Answer with per-step execution accounting: it
// evaluates the executable plan and returns both the answers and the
// profile of every rule's steps.
func AnswerProfiled(u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, Profile, error) {
	return defaultRuntime.AnswerProfiled(context.Background(), u, ps, cat)
}

// AnswerProfiled is the package-level AnswerProfiled on this runtime.
func (rt *Runtime) AnswerProfiled(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, Profile, error) {
	rel, prof, _, err := rt.Eval(ctx, u, ps, cat, EvalOpts{Profile: true})
	if err != nil {
		return nil, Profile{}, err
	}
	return rel, prof, nil
}
