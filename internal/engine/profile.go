package engine

import (
	"fmt"
	"strings"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// StepProfile is the traffic accounting of one plan step (one adorned
// literal): how many source calls it issued, how many tuples came back,
// and how the binding set changed. It is the per-operator half of an
// EXPLAIN ANALYZE for limited-access plans.
type StepProfile struct {
	Step           access.AdornedLiteral
	Calls          int
	TuplesReturned int
	BindingsIn     int
	BindingsOut    int
}

// String renders one profile line.
func (sp StepProfile) String() string {
	return fmt.Sprintf("%-36s calls=%-5d tuples=%-6d bindings %d→%d",
		sp.Step.String(), sp.Calls, sp.TuplesReturned, sp.BindingsIn, sp.BindingsOut)
}

// RuleProfile is the execution profile of one rule.
type RuleProfile struct {
	Rule    logic.CQ
	Steps   []StepProfile
	Answers int // new answer tuples this rule contributed
}

// Profile is the execution profile of a whole plan.
type Profile struct {
	Rules []RuleProfile
}

// TotalCalls sums source calls across all rules.
func (p Profile) TotalCalls() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.Calls
		}
	}
	return n
}

// TotalTuples sums tuples returned across all rules.
func (p Profile) TotalTuples() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.TuplesReturned
		}
	}
	return n
}

// String renders the profile, one rule block per rule.
func (p Profile) String() string {
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "rule %d: %s   (%d answers)\n", i+1, r.Rule, r.Answers)
		for _, s := range r.Steps {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// AnswerProfiled is Answer with per-step execution accounting: it
// evaluates the executable plan and returns both the answers and the
// profile of every rule's steps.
func AnswerProfiled(u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, Profile, error) {
	out := NewRel()
	var prof Profile
	for _, rule := range u.Rules {
		if rule.False {
			continue
		}
		rp := RuleProfile{Rule: rule.Clone()}
		if err := answerRule(rule, ps, cat, out, &rp); err != nil {
			return nil, Profile{}, err
		}
		prof.Rules = append(prof.Rules, rp)
	}
	return out, prof, nil
}
