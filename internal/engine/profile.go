package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// StepProfile is the traffic accounting of one plan step (one adorned
// literal): how many source calls it issued, how many tuples came back,
// and how the binding set changed. It is the per-operator half of an
// EXPLAIN ANALYZE for limited-access plans.
type StepProfile struct {
	Step access.AdornedLiteral
	// Calls counts the call attempts issued to the source, including
	// retried attempts; with healthy sources it equals the catalog's
	// meter delta for the step.
	Calls          int
	TuplesReturned int
	BindingsIn     int
	BindingsOut    int
	// DedupedCalls counts bindings served by another binding's call:
	// their (pattern, inputs) key was already being fetched this step,
	// so no extra source call was issued.
	DedupedCalls int
	// Retries counts retry rounds beyond the first per call (transient
	// failures that the retry policy absorbed). A hedged race across
	// replicas is one round however many legs it launched.
	Retries int
	// HedgedCalls counts backup attempts the hedge timer launched
	// against replicated sources; each is also included in Calls.
	HedgedCalls int
	// HedgeWins counts calls whose winning rows came from a hedged
	// backup attempt rather than the primary.
	HedgeWins int
	// MaxInFlight is the peak number of concurrent calls the step had
	// outstanding against the source.
	MaxInFlight int
	// Elapsed is the wall-clock time spent in this step: issuing its
	// source calls and joining the results. In a streamed pipeline it is
	// the stage's busy time summed over batches (stages overlap, so step
	// times may sum to more than the rule's Elapsed).
	Elapsed time.Duration
}

// String renders one profile line.
func (sp StepProfile) String() string {
	s := fmt.Sprintf("%-36s calls=%-5d dedup=%-5d tuples=%-6d bindings %d→%d",
		sp.Step.String(), sp.Calls, sp.DedupedCalls, sp.TuplesReturned, sp.BindingsIn, sp.BindingsOut)
	if sp.Retries > 0 {
		s += fmt.Sprintf(" retries=%d", sp.Retries)
	}
	if sp.HedgedCalls > 0 {
		s += fmt.Sprintf(" hedged=%d(won %d)", sp.HedgedCalls, sp.HedgeWins)
	}
	if sp.MaxInFlight > 1 {
		s += fmt.Sprintf(" inflight≤%d", sp.MaxInFlight)
	}
	if sp.Elapsed > 0 {
		s += fmt.Sprintf(" t=%s", sp.Elapsed.Round(time.Microsecond))
	}
	return s
}

// RuleProfile is the execution profile of one rule.
type RuleProfile struct {
	Rule    logic.CQ
	Steps   []StepProfile
	Answers int // new answer tuples this rule contributed
	// Elapsed is the rule's wall-clock execution time, first step start
	// to last answer.
	Elapsed time.Duration
	// PeakBindings is the high-water mark of bindings resident for this
	// rule: input+output set of the widest step when materializing, the
	// observed live-batch gauge when streaming.
	PeakBindings int
}

// Profile is the execution profile of a whole plan.
type Profile struct {
	Rules []RuleProfile
	// Elapsed is the whole plan's wall-clock time.
	Elapsed time.Duration
	// TimeToFirst is the delay from execution start to the first head
	// tuple reaching the caller. Only streamed runs fill it; a
	// materializing run delivers nothing before Elapsed.
	TimeToFirst time.Duration
	// BudgetSpent is the number of call attempts charged against the
	// runtime's per-query budget (0 when no budget is active).
	BudgetSpent int
	// DegradedRules counts the disjuncts dropped in partial-results mode
	// (0 in strict mode or on a complete run).
	DegradedRules int

	// PlanCacheHits counts plan-cache hits the semantic query cache
	// served this execution (0 or 1 per Exec; kept an int so profiles
	// can be summed across requests).
	PlanCacheHits int
	// AnswerCacheHits counts full answer-cache hits: the whole result
	// was served from cached rows with no live evaluation.
	AnswerCacheHits int
	// PartialReuseRules counts the disjuncts whose rows were reused from
	// the answer cache while the remaining disjuncts ran live.
	PartialReuseRules int
	// CacheEvictions counts query-cache entries (plans or answers)
	// evicted while serving this execution.
	CacheEvictions int

	// Replicas is the per-replica health and traffic breakdown of every
	// replica-set source in the catalog, snapshotted when the execution
	// finished (profiled runs only; counters are cumulative across the
	// catalog's lifetime, not per-execution).
	Replicas []ReplicaSetProfile
}

// ReplicaSetProfile is the per-replica breakdown of one replicated
// source.
type ReplicaSetProfile struct {
	// Source is the relation name the replica set fronts.
	Source string
	// Replicas holds each replica's health and traffic, in declaration
	// order.
	Replicas []sources.ReplicaStats
}

// String renders one replica-set line.
func (rp ReplicaSetProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", rp.Source)
	for _, r := range rp.Replicas {
		fmt.Fprintf(&b, " %s[%s calls=%d fail=%d ewma=%s]",
			r.Replica, r.State, r.Calls, r.Failures, r.EWMALatency.Round(time.Microsecond))
	}
	return b.String()
}

// snapshotReplicas fills p.Replicas with the current per-replica
// breakdown of every replica-set source in the catalog.
func (p *Profile) snapshotReplicas(cat *sources.Catalog) {
	for _, name := range cat.Names() {
		if rs, ok := cat.Source(name).(*sources.ReplicaSet); ok {
			p.Replicas = append(p.Replicas, ReplicaSetProfile{Source: name, Replicas: rs.ReplicaStats()})
		}
	}
}

// TotalCalls sums source calls across all rules.
func (p Profile) TotalCalls() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.Calls
		}
	}
	return n
}

// TotalTuples sums tuples returned across all rules.
func (p Profile) TotalTuples() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.TuplesReturned
		}
	}
	return n
}

// TotalDeduped sums the calls saved by per-step deduplication.
func (p Profile) TotalDeduped() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.DedupedCalls
		}
	}
	return n
}

// TotalRetries sums the retried attempts across all rules.
func (p Profile) TotalRetries() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.Retries
		}
	}
	return n
}

// HedgedCalls sums the timer-launched backup attempts across all rules.
func (p Profile) HedgedCalls() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.HedgedCalls
		}
	}
	return n
}

// HedgeWins sums the calls won by a hedged backup attempt across all
// rules.
func (p Profile) HedgeWins() int {
	n := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			n += s.HedgeWins
		}
	}
	return n
}

// MaxInFlight is the peak per-step call concurrency seen anywhere in the
// plan.
func (p Profile) MaxInFlight() int {
	m := 0
	for _, r := range p.Rules {
		for _, s := range r.Steps {
			if s.MaxInFlight > m {
				m = s.MaxInFlight
			}
		}
	}
	return m
}

// PeakBindings is the largest per-rule binding residency seen in the
// plan (see RuleProfile.PeakBindings).
func (p Profile) PeakBindings() int {
	m := 0
	for _, r := range p.Rules {
		if r.PeakBindings > m {
			m = r.PeakBindings
		}
	}
	return m
}

// String renders the profile, one rule block per rule.
func (p Profile) String() string {
	var b strings.Builder
	for i, r := range p.Rules {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "rule %d: %s   (%d answers", i+1, r.Rule, r.Answers)
		if r.Elapsed > 0 {
			fmt.Fprintf(&b, ", %s", r.Elapsed.Round(time.Microsecond))
		}
		b.WriteString(")\n")
		for _, s := range r.Steps {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	if p.TimeToFirst > 0 {
		fmt.Fprintf(&b, "first tuple after %s\n", p.TimeToFirst.Round(time.Microsecond))
	}
	if p.DegradedRules > 0 {
		fmt.Fprintf(&b, "degraded: %d disjunct(s) dropped\n", p.DegradedRules)
	}
	if p.BudgetSpent > 0 {
		fmt.Fprintf(&b, "budget spent: %d call(s)\n", p.BudgetSpent)
	}
	if p.PlanCacheHits > 0 || p.AnswerCacheHits > 0 || p.PartialReuseRules > 0 || p.CacheEvictions > 0 {
		fmt.Fprintf(&b, "cache: plan hits=%d answer hits=%d reused rules=%d evictions=%d\n",
			p.PlanCacheHits, p.AnswerCacheHits, p.PartialReuseRules, p.CacheEvictions)
	}
	if h := p.HedgedCalls(); h > 0 {
		fmt.Fprintf(&b, "hedged: %d backup call(s), %d won\n", h, p.HedgeWins())
	}
	for _, rp := range p.Replicas {
		fmt.Fprintf(&b, "replicas %s\n", rp)
	}
	if p.Elapsed > 0 {
		fmt.Fprintf(&b, "total %s\n", p.Elapsed.Round(time.Microsecond))
	}
	return strings.TrimRight(b.String(), "\n")
}

// AnswerProfiled is Answer with per-step execution accounting: it
// evaluates the executable plan and returns both the answers and the
// profile of every rule's steps.
func AnswerProfiled(u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, Profile, error) {
	return defaultRuntime.AnswerProfiled(context.Background(), u, ps, cat)
}

// AnswerProfiled is the package-level AnswerProfiled on this runtime.
func (rt *Runtime) AnswerProfiled(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, Profile, error) {
	rel, prof, _, err := rt.Eval(ctx, u, ps, cat, EvalOpts{Profile: true})
	if err != nil {
		return nil, Profile{}, err
	}
	return rel, prof, nil
}
