package engine

// Pipelined streaming execution. The materializing evaluator finishes
// step k over the *whole* binding set before step k+1 issues its first
// source call, so a slow or high-fanout early step delays every answer
// to the end of the plan. Here each rule's plan steps become pipeline
// stages connected by bounded channels carrying columnar binding
// batches (colBatch; see columnar.go): step k+1 calls its source for
// the first batches while step k is still fetching later ones, and head
// tuples reach the caller as soon as the last stage produces them. Each
// stage still runs through the Runtime — per-step call deduplication
// (extended across batches by a per-stage memo), the bounded worker
// pool, the per-source in-flight cap, and the retry policy all apply
// per stage — so a streamed run issues exactly the calls a materialized
// run would, and the drained answer set is byte-identical: stages are
// single goroutines consuming batches in order, and applyStepCol fans
// results back out in input-row order, so rows are emitted in the same
// order materializing evaluation would add them.
//
// Ordering and teardown guarantees:
//
//   - Stream: rules execute in rule order, one pipeline at a time;
//     emission order equals Answer's insertion order exactly.
//   - StreamParallel: all rule pipelines run concurrently and their
//     emissions interleave; the drained set is still equal (set
//     semantics), but insertion order is scheduling-dependent.
//   - Close (or cancelling the caller's context) tears down every stage:
//     all pipeline goroutines exit before Close returns; no goroutine
//     outlives the stream.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// Stream is a pull-style iterator over the head tuples of a streamed
// plan execution. The usual loop is
//
//	s, err := rt.Stream(ctx, q, ps, cat)
//	if err != nil { ... }
//	defer s.Close()
//	for s.Next() {
//	    use(s.Tuple())
//	}
//	if err := s.Err(); err != nil { ... }
//
// A Stream is single-consumer: Next/Tuple/Err/Close must be called from
// one goroutine. Close is idempotent, releases every pipeline goroutine,
// and must be called even after Next returned false (defer it).
type Stream struct {
	rows   chan []Row
	cancel context.CancelFunc
	wg     sync.WaitGroup // every pipeline goroutine, incl. the driver

	cur []Row // batch being handed out
	idx int   // next index into cur

	start    time.Time
	resident inFlightGauge // bindings live across all stages

	mu     sync.Mutex
	err    error
	closed bool
	ttf    time.Duration

	prof     *Profile
	inc      *Incompleteness // partial-results report; nil in strict mode
	profDone chan struct{}   // closed when prof (and inc) are fully assembled
}

// Next advances to the next tuple, blocking until one is available. It
// returns false when the stream is exhausted, failed, or closed; check
// Err afterwards.
func (s *Stream) Next() bool {
	if s.idx < len(s.cur) {
		s.idx++
		return true
	}
	for batch := range s.rows {
		if len(batch) == 0 {
			continue
		}
		s.cur, s.idx = batch, 1
		return true
	}
	return false
}

// Tuple returns the current tuple. It is only valid after Next returned
// true, and until the next call to Next.
func (s *Stream) Tuple() Row {
	return s.cur[s.idx-1]
}

// Err returns the first failure of the pipeline, or nil. Cancellations
// caused by Close itself are not errors.
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close tears the pipeline down: every stage is cancelled and Close
// blocks until all pipeline goroutines have exited. It is idempotent and
// returns Err.
func (s *Stream) Close() error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cancel()
	}
	s.mu.Unlock()
	s.cur, s.idx = nil, 0 // invalidate the cursor (Close is consumer-side)
	// Drain so stages blocked on sending can exit, then wait for them.
	for range s.rows {
	}
	s.wg.Wait()
	return s.Err()
}

// Drain consumes the rest of the stream into a Rel and closes it. On a
// stream fresh from Stream (rule-ordered pipelines), the result is
// byte-identical to materializing evaluation: same rows, same insertion
// order.
func (s *Stream) Drain() (*Rel, error) {
	out := NewRel()
	for s.Next() {
		out.Add(s.Tuple())
	}
	if err := s.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// Profile returns the execution profile once the stream has finished
// (exhausted, failed, or closed) and reports whether it is complete. It
// includes per-stage traffic and busy time, the rules' wall-clock, the
// time to first tuple, and the peak number of bindings resident in the
// pipeline.
func (s *Stream) Profile() (Profile, bool) {
	select {
	case <-s.profDone:
		return *s.prof, true
	default:
		return Profile{}, false
	}
}

// Incomplete returns the degradation report of a partial-results stream
// once it has finished (exhausted, failed, or closed). ok is false while
// the stream is still running or when the stream was not started with
// StreamOpts.Partial.
func (s *Stream) Incomplete() (Incompleteness, bool) {
	select {
	case <-s.profDone:
		if s.inc == nil {
			return Incompleteness{}, false
		}
		return *s.inc, true
	default:
		return Incompleteness{}, false
	}
}

// recordFailure logs a dropped disjunct of a partial-results stream.
func (s *Stream) recordFailure(i int, rule logic.CQ, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inc.record(i, rule, err)
}

// fail records the pipeline's first real failure and cancels every
// stage. Context errors after the consumer closed the stream are the
// teardown working as intended, not failures.
func (s *Stream) fail(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	skip := s.closed && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if s.err == nil && !skip {
		s.err = err
	}
	s.mu.Unlock()
	s.cancel()
}

// emit delivers one batch of head rows to the consumer, stamping the
// time to first tuple. It returns false when the pipeline is cancelled.
func (s *Stream) emit(ctx context.Context, batch []Row) bool {
	if len(batch) == 0 {
		return true
	}
	s.mu.Lock()
	if s.ttf == 0 {
		s.ttf = time.Since(s.start)
	}
	s.mu.Unlock()
	select {
	case s.rows <- batch:
		return true
	case <-ctx.Done():
		return false
	}
}

// rulePipeline is one rule's compiled plan.
type rulePipeline struct {
	idx   int // position in the executed union (for failure reports)
	rule  logic.CQ
	steps []access.AdornedLiteral
}

// StreamOpts selects how a streamed execution runs.
type StreamOpts struct {
	// Parallel runs all rule pipelines concurrently; emission
	// interleaving becomes scheduling-dependent.
	Parallel bool
	// Partial enables partial-results mode: a rule pipeline that fails
	// terminally is torn down alone — its failure recorded, its rows
	// discarded — and the remaining rules keep streaming. To keep the
	// drained answer byte-identical to a materialized degraded run, each
	// rule's head rows are held back until its pipeline completes (a
	// disjunct's answers are only certain once the whole disjunct
	// succeeded), so Partial trades time-to-first-tuple within a rule for
	// the certified-underestimate guarantee.
	Partial bool
}

// Stream starts pipelined evaluation of the executable plan: one
// pipeline per rule, rules in order (rule k+1's pipeline starts when
// rule k's finishes), stages within a rule overlapping. The answer
// stream, drained, is byte-identical to rt.Answer on the same inputs —
// same rows in the same order — and issues the same source calls.
// Batch size and per-stage buffering come from rt.BatchSize and
// rt.StageBuffer.
//
// The error return covers plan compilation (a rule not executable as
// written); runtime failures surface through Stream.Err.
func (rt *Runtime) Stream(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Stream, error) {
	return rt.StreamEval(ctx, u, ps, cat, StreamOpts{})
}

// StreamParallel is Stream with all rule pipelines running concurrently
// (the paper's "execute each rule separately, possibly in parallel").
// Emission interleaving is scheduling-dependent; the drained answer set
// is still equal to rt.Answer's.
func (rt *Runtime) StreamParallel(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Stream, error) {
	return rt.StreamEval(ctx, u, ps, cat, StreamOpts{Parallel: true})
}

// StreamEval starts pipelined evaluation with explicit options; Stream
// and StreamParallel are thin wrappers over it.
func (rt *Runtime) StreamEval(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog, o StreamOpts) (*Stream, error) {
	var pipes []rulePipeline
	for i, rule := range u.Rules {
		if rule.False {
			continue
		}
		steps, ok := access.AdornInOrder(rule.Body, ps)
		if !ok {
			return nil, fmt.Errorf("engine: rule is not executable as written: %s", rule)
		}
		pipes = append(pipes, rulePipeline{idx: i, rule: rule, steps: steps})
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Stream{
		rows:     make(chan []Row, rt.stageBuffer()),
		cancel:   cancel,
		start:    time.Now(),
		prof:     &Profile{Rules: make([]RuleProfile, len(pipes))},
		profDone: make(chan struct{}),
	}
	if o.Partial {
		s.inc = &Incompleteness{RulesTotal: len(pipes)}
	}
	budget := rt.newBudget()
	pool := newColPool()
	s.wg.Add(1)
	go func() { // driver
		defer s.wg.Done()
		defer close(s.rows)
		defer close(s.profDone)
		if o.Parallel {
			var wg sync.WaitGroup
			for i, p := range pipes {
				wg.Add(1)
				go func(i int, p rulePipeline) {
					defer wg.Done()
					rt.runPipeline(sctx, p, cat, s, &s.prof.Rules[i], budget, pool, o.Partial)
				}(i, p)
			}
			wg.Wait()
		} else {
			for i, p := range pipes {
				if sctx.Err() != nil {
					break
				}
				rt.runPipeline(sctx, p, cat, s, &s.prof.Rules[i], budget, pool, o.Partial)
			}
		}
		// A context already dead before (or between) pipelines would
		// otherwise look like clean exhaustion to the consumer.
		s.fail(sctx.Err())
		s.mu.Lock()
		s.prof.Elapsed = time.Since(s.start)
		s.prof.TimeToFirst = s.ttf
		if s.inc != nil {
			s.inc.RulesSurvived = s.inc.RulesTotal - len(s.inc.Failed)
			s.prof.Degraded.Rules = len(s.inc.Failed)
		}
		if rt.Budget.active() {
			s.prof.Calls.BudgetSpent = int(budget.spent.Load())
		}
		s.prof.Batch = pool.batchProfile()
		s.prof.finalize()
		s.prof.snapshotReplicas(cat)
		s.mu.Unlock()
	}()
	return s, nil
}

// runPipeline executes one rule as a chain of stage goroutines and
// blocks until every stage has exited. Each stage owns one compiled
// plan step: it consumes columnar batches from its inbound channel,
// applies the step through the runtime (with a cross-batch dedup memo),
// and emits the surviving rows downstream in batches of at most
// rt.batchSize(). The final stage materializes head rows from the
// interned columns and emits them to the consumer.
//
// In partial-results mode the rule runs under its own child context: a
// degradable failure cancels only this rule's stages (the stream stays
// live for the remaining rules), the failure is recorded, and the head
// rows — buffered until the pipeline completes — are discarded.
func (rt *Runtime) runPipeline(ctx context.Context, p rulePipeline, cat *sources.Catalog, s *Stream, rp *RuleProfile, budget *budgetState, pool *colPool, partial bool) {
	ruleStart := time.Now()
	rp.Rule = p.rule.Clone()
	rp.Steps = make([]StepProfile, len(p.steps))
	prog := compileRule(p.rule, p.steps, pool)

	// Stages run under rctx; in partial mode it is rule-local, so a
	// dropped disjunct's teardown cannot touch the other rules.
	rctx := ctx
	rcancel := func() {}
	var failMu sync.Mutex
	var ruleErr error
	if partial {
		rctx, rcancel = context.WithCancel(ctx)
		defer rcancel()
	}
	fail := func(err error) {
		if err == nil {
			return
		}
		if partial {
			if ctx.Err() == nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
				// Rule-local teardown already under way: the failure that
				// caused it is recorded; cancellation fallout is not news.
				return
			}
			if degradable(ctx, err) {
				failMu.Lock()
				if ruleErr == nil {
					ruleErr = err
				}
				failMu.Unlock()
				rcancel()
				return
			}
		}
		s.fail(err)
	}

	depth := rt.stageBuffer()
	chans := make([]chan *colBatch, len(p.steps)+1)
	for i := range chans {
		chans[i] = make(chan *colBatch, depth)
	}

	var wg sync.WaitGroup
	for i := range p.steps {
		wg.Add(1)
		go func(i int, in <-chan *colBatch, out chan<- *colBatch) {
			defer wg.Done()
			defer close(out)
			sp := &rp.Steps[i]
			sp.Step = prog.steps[i].step
			var memo map[string]*stepCall
			if rt.Dedup {
				memo = map[string]*stepCall{}
			}
			// emit hands one output batch downstream, charging the
			// resident gauge; ownership transfers to the next stage.
			emit := func(b *colBatch) bool {
				s.resident.add(int64(b.n))
				select {
				case out <- b:
					return true
				case <-rctx.Done():
					s.resident.add(int64(-b.n))
					pool.put(b)
					return false
				}
			}
			for batch := range in {
				n := batch.n
				sp.BindingsIn += n
				t0 := time.Now()
				emitted, stopped, err := rt.applyStepCol(rctx, prog, i, cat, batch, sp, memo, budget, pool, rt.batchSize(), emit)
				sp.Elapsed += time.Since(t0)
				pool.put(batch)
				if err != nil {
					fail(err)
					s.resident.add(int64(-n))
					return
				}
				sp.BindingsOut += emitted
				s.resident.add(int64(-n))
				if stopped {
					return
				}
			}
		}(i, chans[i], chans[i+1])
	}

	// Head stage: columnar batches → answer rows → consumer. Head
	// strings materialize here, nowhere earlier. In partial mode the
	// rows are held back until the whole pipeline succeeded: a
	// disjunct's answers are only certain once the disjunct is complete.
	var held [][]Row // partial mode only; owned by the head goroutine
	wg.Add(1)
	go func(in <-chan *colBatch) {
		defer wg.Done()
		// Duplicate head rows are still emitted (the stream surfaces the
		// full fan-out), but each distinct row is materialized once and
		// shared by ID-space key; consumers treat rows as read-only.
		rowCache := map[string]Row{}
		var keyBuf []byte
		for batch := range in {
			n := batch.n
			if n > 0 && prog.headErr != nil {
				pool.put(batch)
				fail(prog.headErr)
				s.resident.add(int64(-n))
				return
			}
			rows := make([]Row, 0, n)
			for ri := 0; ri < n; ri++ {
				keyBuf = prog.headKey(batch, ri, keyBuf[:0])
				row, ok := rowCache[string(keyBuf)]
				if !ok {
					row = prog.headRowCol(batch, ri, pool)
					rowCache[string(keyBuf)] = row
				}
				rows = append(rows, row)
			}
			pool.put(batch)
			if partial {
				held = append(held, rows)
				s.resident.add(int64(-n))
				continue
			}
			rp.Answers += len(rows)
			ok := s.emit(rctx, rows)
			s.resident.add(int64(-n))
			if !ok {
				return
			}
		}
	}(chans[len(p.steps)])

	// Seed the pipeline with the single empty binding.
	seed := pool.getBatch(prog.numSlots)
	seed.n = 1
	s.resident.add(1)
	select {
	case chans[0] <- seed:
	case <-rctx.Done():
		fail(rctx.Err())
		s.resident.add(-1)
		pool.put(seed)
	}
	close(chans[0])

	wg.Wait()
	if partial {
		failMu.Lock()
		err := ruleErr
		failMu.Unlock()
		switch {
		case err != nil:
			s.recordFailure(p.idx, p.rule, err)
		case ctx.Err() == nil:
			for _, rows := range held {
				rp.Answers += len(rows)
				if !s.emit(ctx, rows) {
					break
				}
			}
		}
	}
	rp.Elapsed = time.Since(ruleStart)
	rp.PeakBindings = int(s.resident.max.Load())
	if err := ctx.Err(); err != nil {
		s.fail(err)
	}
}
