package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/access"
	"repro/internal/logic"
	"repro/internal/sources"
)

// binding maps variable names to constant values during evaluation.
type binding map[string]string

func (b binding) clone() binding {
	out := make(binding, len(b)+2)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// errNotExecutable marks compile-time plan failures: a rule that cannot
// be executed as written. Partial-results mode never degrades on it —
// it is a planning error, not a runtime fault.
var errNotExecutable = errors.New("engine: rule is not executable as written")

// EvalOpts selects how Eval runs a union.
type EvalOpts struct {
	// Parallel evaluates the rules concurrently, one goroutine per rule.
	Parallel bool
	// Profile records per-step execution accounting into the returned
	// Profile.
	Profile bool
	// Partial enables partial-results mode (graceful degradation): a
	// rule whose evaluation fails terminally at runtime — circuit
	// breaker open, per-query budget exhausted, retries exhausted, or a
	// non-transient source error — is dropped and recorded in the
	// returned Incompleteness instead of failing the execution. The
	// returned relation is then exactly ANSWER of the surviving rules: a
	// certified underestimate of the full answer. Caller-context
	// cancellation and compile-time planning errors still abort.
	Partial bool
	// OnRuleDone, when set, is called once per successfully evaluated
	// non-False rule with the rule's index in u.Rules and that rule's own
	// answer relation (before union dedup). The semantic query cache uses
	// it to store per-disjunct answers. Calls are serialized: sequential
	// evaluation invokes it in rule order, parallel evaluation from the
	// single-threaded merge.
	OnRuleDone func(i int, rel *Rel)
}

// Eval is the engine's single materializing entry point: Answer,
// AnswerProfiled, and AnswerParallel are thin wrappers over it. It
// returns the answers, the profile (meaningful when o.Profile), and —
// in partial-results mode only — the degradation report (nil otherwise).
func (rt *Runtime) Eval(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog, o EvalOpts) (*Rel, Profile, *Incompleteness, error) {
	start := time.Now()
	budget := rt.newBudget()
	pool := newColPool()
	var inc *Incompleteness
	if o.Partial {
		inc = &Incompleteness{}
	}
	var out *Rel
	var prof Profile
	var err error
	if o.Parallel {
		out, prof, err = rt.evalParallel(ctx, u, ps, cat, o, inc, budget, pool)
	} else {
		out, prof, err = rt.evalSequential(ctx, u, ps, cat, o, inc, budget, pool)
	}
	if err != nil {
		return nil, Profile{}, nil, err
	}
	prof.Elapsed = time.Since(start)
	if inc != nil {
		inc.RulesSurvived = inc.RulesTotal - len(inc.Failed)
		prof.Degraded.Rules = len(inc.Failed)
	}
	if rt.Budget.active() {
		prof.Calls.BudgetSpent = int(budget.spent.Load())
	}
	prof.Batch = pool.batchProfile()
	prof.finalize()
	if o.Profile {
		prof.snapshotReplicas(cat)
	}
	return out, prof, inc, nil
}

// evalSequential runs the rules in order, sharing one budget.
func (rt *Runtime) evalSequential(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog, o EvalOpts, inc *Incompleteness, budget *budgetState, pool *colPool) (*Rel, Profile, error) {
	out := NewRel()
	var prof Profile
	for i, rule := range u.Rules {
		if rule.False {
			continue
		}
		if inc != nil {
			inc.RulesTotal++
		}
		var rp *RuleProfile
		if o.Profile {
			prof.Rules = append(prof.Rules, RuleProfile{Rule: rule.Clone()})
			rp = &prof.Rules[len(prof.Rules)-1]
		}
		// In partial mode each rule evaluates into its own relation, so
		// a disjunct that dies mid-head leaves no partial rows behind.
		// A per-rule observer needs the same separation.
		target := out
		if inc != nil || o.OnRuleDone != nil {
			target = NewRel()
		}
		if err := rt.answerRule(ctx, rule, ps, cat, target, rp, budget, pool); err != nil {
			if inc == nil || !degradable(ctx, err) {
				return nil, Profile{}, err
			}
			inc.record(i, rule, err)
			continue
		}
		if target != out {
			added := 0
			for _, row := range target.Rows() {
				if out.Add(row) {
					added++
				}
			}
			if rp != nil {
				rp.Answers = added
			}
			if o.OnRuleDone != nil {
				o.OnRuleDone(i, target)
			}
		}
	}
	return out, prof, nil
}

// Answer evaluates an executable UCQ¬ plan against the catalog: each rule
// is executed left to right through source calls that respect the access
// patterns declared by ps. Rules must be executable as written (PLAN*
// and Reorder emit such rules); otherwise an error is returned. This is
// ANSWER(Q, D) of the paper, computed the only way the setting allows —
// through the sources. It runs on the default Runtime (deduplicating,
// concurrent); use a Runtime value for cancellation or custom knobs.
func Answer(u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, error) {
	return defaultRuntime.Answer(context.Background(), u, ps, cat)
}

// Answer is ANSWER(Q, D) on this runtime; see the package-level Answer.
func (rt *Runtime) Answer(ctx context.Context, u logic.UCQ, ps *access.Set, cat *sources.Catalog) (*Rel, error) {
	rel, _, _, err := rt.Eval(ctx, u, ps, cat, EvalOpts{})
	return rel, err
}

// answerRule executes one rule and adds its answers to out. When prof is
// non-nil, per-step accounting is recorded into it.
func (rt *Runtime) answerRule(ctx context.Context, q logic.CQ, ps *access.Set, cat *sources.Catalog, out *Rel, prof *RuleProfile, budget *budgetState, pool *colPool) error {
	steps, ok := access.AdornInOrder(q.Body, ps)
	if !ok {
		return fmt.Errorf("%w: %s", errNotExecutable, q)
	}
	return rt.runSteps(ctx, q, steps, cat, out, prof, budget, pool)
}

// AnswerSteps executes an explicitly adorned plan for one rule — the
// caller chooses the access pattern of every step (e.g. via
// access.AdornInOrderPrefer) — and returns its answers.
func AnswerSteps(q logic.CQ, steps []access.AdornedLiteral, cat *sources.Catalog) (*Rel, error) {
	return defaultRuntime.AnswerSteps(context.Background(), q, steps, cat)
}

// AnswerSteps is the package-level AnswerSteps on this runtime.
func (rt *Runtime) AnswerSteps(ctx context.Context, q logic.CQ, steps []access.AdornedLiteral, cat *sources.Catalog) (*Rel, error) {
	out := NewRel()
	if q.False {
		return out, nil
	}
	if err := rt.runSteps(ctx, q, steps, cat, out, nil, rt.newBudget(), newColPool()); err != nil {
		return nil, err
	}
	return out, nil
}

// runSteps drives one rule's materializing execution: the columnar
// batch evaluator by default (runStepsCol), or the historical
// per-binding map loop when Runtime.MapEval is set. The two are
// observationally identical; the map path is kept as the reference for
// differential tests and as the allocation baseline for benchmarks.
func (rt *Runtime) runSteps(ctx context.Context, q logic.CQ, steps []access.AdornedLiteral, cat *sources.Catalog, out *Rel, prof *RuleProfile, budget *budgetState, pool *colPool) error {
	if rt.MapEval {
		return rt.runStepsMap(ctx, q, steps, cat, out, prof, budget)
	}
	return rt.runStepsCol(ctx, q, steps, cat, out, prof, budget, pool)
}

// runStepsMap drives the nested-loop map-based execution of an adorned
// plan. Within a step the runtime batches the bindings' source calls
// (see applyStep); across steps the binding set flows left to right as
// in the paper.
func (rt *Runtime) runStepsMap(ctx context.Context, q logic.CQ, steps []access.AdornedLiteral, cat *sources.Catalog, out *Rel, prof *RuleProfile, budget *budgetState) error {
	ruleStart := time.Now()
	bindings := []binding{{}}
	for _, step := range steps {
		var sp StepProfile
		sp.Step = step
		sp.BindingsIn = len(bindings)
		start := time.Now()
		var err error
		bindings, err = rt.applyStep(ctx, step, cat, bindings, &sp, nil, budget)
		sp.Elapsed = time.Since(start)
		if err != nil {
			if prof != nil {
				// Keep the failed step's accounting: degraded executions
				// report the traffic a dropped disjunct cost.
				prof.Steps = append(prof.Steps, sp)
				prof.Elapsed = time.Since(ruleStart)
			}
			return err
		}
		sp.BindingsOut = len(bindings)
		if prof != nil {
			prof.Steps = append(prof.Steps, sp)
			// Materializing evaluation holds the step's input and output
			// binding sets live at once.
			if resident := sp.BindingsIn + sp.BindingsOut; resident > prof.PeakBindings {
				prof.PeakBindings = resident
			}
		}
		if len(bindings) == 0 {
			if prof != nil {
				prof.Elapsed = time.Since(ruleStart)
			}
			return nil
		}
	}
	for _, b := range bindings {
		row, err := headRow(q, b)
		if err != nil {
			return err
		}
		if out.Add(row) && prof != nil {
			prof.Answers++
		}
	}
	if prof != nil {
		prof.Elapsed = time.Since(ruleStart)
	}
	return nil
}

// callInputs extracts the values for the input slots of the step's
// pattern from the binding; executability guarantees they exist.
func callInputs(step access.AdornedLiteral, b binding) ([]string, error) {
	var inputs []string
	for j, t := range step.Literal.Atom.Args {
		if !step.Pattern.Input(j) {
			continue
		}
		switch {
		case t.IsConst():
			inputs = append(inputs, t.Name)
		case t.IsVar():
			v, ok := b[t.Name]
			if !ok {
				return nil, fmt.Errorf("engine: input slot %d of %s needs unbound variable %s", j+1, step, t.Name)
			}
			inputs = append(inputs, v)
		default:
			return nil, fmt.Errorf("engine: null cannot be used as a call input in %s", step)
		}
	}
	return inputs, nil
}

// tupleMatches unifies the atom's arguments with a returned tuple under
// binding b, returning the extended binding or nil on mismatch. (Sources
// may return tuples that disagree with already-bound output slots; the
// join filters them, per footnote 4 of the paper.)
func tupleMatches(a logic.Atom, t sources.Tuple, b binding) binding {
	nb := b
	copied := false
	for j, arg := range a.Args {
		switch {
		case arg.IsConst():
			if t[j] != arg.Name {
				return nil
			}
		case arg.IsVar():
			if v, ok := nb[arg.Name]; ok {
				if v != t[j] {
					return nil
				}
				continue
			}
			if !copied {
				nb = nb.clone()
				copied = true
			}
			nb[arg.Name] = t[j]
		default:
			return nil // null in a body atom never matches stored data
		}
	}
	if !copied && len(a.Args) > 0 {
		// All arguments were already bound or constants; reuse b.
		return b
	}
	return nb
}

// headRow builds the answer row for a binding. Null head arguments (from
// overestimate rules) become null values; unbound head variables are an
// error (the plan was unsafe).
func headRow(q logic.CQ, b binding) (Row, error) {
	row := make(Row, len(q.HeadArgs))
	for i, t := range q.HeadArgs {
		switch {
		case t.IsNull():
			row[i] = NullValue
		case t.IsConst():
			row[i] = V(t.Name)
		default:
			v, ok := b[t.Name]
			if !ok {
				return nil, fmt.Errorf("engine: head variable %s is unbound; plan for %s is unsafe", t.Name, q.HeadPred)
			}
			row[i] = V(v)
		}
	}
	return row, nil
}
