package engine

import (
	"testing"

	"repro/internal/core"
)

// Example 8 of the paper: the dismissed rule Q1(x,y) :- not S(z), R(x,z),
// B(x,y) is re-admitted to the underestimate as
// Q1(x,y) :- R(x,z), not S(z), dom(y), B(x,y).
func TestExample8ImprovedUnderestimate(t *testing.T) {
	u := ucq(t, `
		Q(x, y) :- not S(z), R(x, z), B(x, y).
		Q(x, y) :- T(x, y).
	`)
	ps := pats(t, `S^o R^oo B^oi T^oo`)
	// B(a, b): y=b is reachable through the domain (it appears in R), so
	// the improved underestimate finds the answer (a, b) that the plain
	// underestimate misses.
	in := NewInstance().
		MustAdd("R", "a", "b").
		MustAdd("B", "a", "b").
		MustAdd("S", "c").
		MustAdd("T", "t1", "t2")
	cat := in.MustCatalog(ps)
	res, err := RunAnswerStar(u, ps, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Under.Contains(RowOf("a", "b")) {
		t.Fatal("plain underestimate must miss (a, b)")
	}
	improved, rules, dom, err := ImproveUnder(res, ps, cat, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !improved.Contains(RowOf("a", "b")) {
		t.Errorf("improved underestimate = %s, want to contain (a, b); dom = %v", improved, dom.Values)
	}
	if len(rules.Rules) != 1 {
		t.Fatalf("improved rules = %s", rules)
	}
	// The improved rule has the shape of Example 8.
	got := rules.Rules[0].String()
	want := "Q(x, y) :- R(x, z), not S(z), __dom(y), B(x, y)"
	if got != want {
		t.Errorf("improved rule = %q, want %q", got, want)
	}
	// The improved underestimate is still sound: contained in ground truth.
	truth, err := AnswerNaive(u, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range improved.Rows() {
		if !truth.Contains(row) {
			t.Errorf("improved underestimate row %s is not a true answer", row)
		}
	}
}

func TestEnumerateDomainFixpoint(t *testing.T) {
	// R^oo seeds {a, b}; F^io maps a→c, c→d; d reachable only through
	// two rounds of chaining.
	in := NewInstance().
		MustAdd("R", "a", "b").
		MustAdd("F", "a", "c").
		MustAdd("F", "c", "d").
		MustAdd("F", "x", "y") // x unreachable: never enumerated as input
	ps := pats(t, `R^oo F^io`)
	cat := in.MustCatalog(ps)
	dom := EnumerateDomain(cat, nil, 10_000)
	want := []string{"a", "b", "c", "d"}
	if len(dom.Values) != len(want) {
		t.Fatalf("dom = %v, want %v", dom.Values, want)
	}
	for i, v := range want {
		if dom.Values[i] != v {
			t.Fatalf("dom = %v, want %v", dom.Values, want)
		}
	}
	if dom.Truncated {
		t.Error("fixpoint must complete within budget")
	}
	if dom.Calls == 0 {
		t.Error("enumeration must issue calls")
	}
}

func TestEnumerateDomainBudget(t *testing.T) {
	in := NewInstance()
	for i := 0; i < 50; i++ {
		in.MustAdd("R", string(rune('a'+i%26))+string(rune('0'+i/26)), "v")
	}
	ps := pats(t, `R^oo F^io`)
	in.MustAdd("F", "a0", "z9")
	cat := in.MustCatalog(ps)
	dom := EnumerateDomain(cat, nil, 3)
	if !dom.Truncated {
		t.Errorf("tiny budget must truncate; calls = %d, values = %d", dom.Calls, len(dom.Values))
	}
	if dom.Calls > 3 {
		t.Errorf("budget exceeded: %d calls", dom.Calls)
	}
}

func TestEnumerateDomainSeeds(t *testing.T) {
	in := NewInstance().MustAdd("F", "seed", "out")
	ps := pats(t, `F^io`)
	cat := in.MustCatalog(ps)
	dom := EnumerateDomain(cat, []string{"seed"}, 100)
	if len(dom.Values) != 2 {
		t.Errorf("dom = %v, want [out seed]", dom.Values)
	}
}

func TestImprovedUnderRuleGuards(t *testing.T) {
	u := ucq(t, `Q(x, y) :- R(x, z), B(x, y).`)
	ps := pats(t, `R^oo`) // B has no pattern at all
	plans := core.ComputePlans(u, ps)
	if _, ok := ImprovedUnderRule(plans.Rules[0].Ans, plans.Rules[0].Unanswerable, ps); ok {
		t.Error("improvement must be refused when a relation has no pattern")
	}
	// Complete rules cannot be improved.
	u2 := ucq(t, `Q(x) :- R(x, z).`)
	plans2 := core.ComputePlans(u2, ps)
	if _, ok := ImprovedUnderRule(plans2.Rules[0].Ans, plans2.Rules[0].Unanswerable, ps); ok {
		t.Error("complete rule must not be improved")
	}
}
