package cli

import (
	"bytes"
	"strings"
	"testing"
)

func runRepl(t *testing.T, script string) (string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := Repl(strings.NewReader(script), &out, &errb)
	if code != ExitOK {
		t.Fatalf("Repl exit = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	return out.String(), errb.String()
}

func TestReplFullSession(t *testing.T) {
	out, errs := runRepl(t, `
:patterns B^ioo B^oio C^oo L^o
:fact B("i1", "knuth", "taocp"). B("i2", "date", "dbintro"). C("i1", "knuth"). L("i2").
Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).
:show
:feasible
:plan
:answer
:quit
`)
	if errs != "" {
		t.Errorf("stderr = %q", errs)
	}
	for _, want := range []string{
		"patterns: B^ioo B^oio C^oo L^o",
		"instance now has 4 tuples",
		"staged 1 rule(s)",
		"feasible:   true (underestimate equals overestimate)",
		"underestimate Q^u:",
		`("i1", "knuth", "taocp")`,
		"answer is complete",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplMultiRuleAndClear(t *testing.T) {
	out, _ := runRepl(t, `
:patterns T^oo S^o R^oo B^oi
Q(x, y) :- not S(z), R(x, z), B(x, y).
Q(x, y) :- T(x, y).
:feasible
:clear
:show
`)
	for _, want := range []string{
		"staged 2 rule(s)",
		"feasible:   false (null in overestimate)",
		"query cleared",
		"query:    (none)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplINDsChangeVerdict(t *testing.T) {
	out, _ := runRepl(t, `
:patterns T^oo S^o R^oo B^oi
:inds R[1] < S[0]
Q(x, y) :- not S(z), R(x, z), B(x, y).
Q(x, y) :- T(x, y).
:feasible
`)
	for _, want := range []string{
		"1 inclusion dependencies",
		"semantic optimizer dropped 1 rule(s)",
		"feasible:   true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReplErrors(t *testing.T) {
	_, errs := runRepl(t, `
:patterns B^zz
:fact R(x).
:inds garbage
:feasible
:bogus
Q(x) :- ~
:quit
`)
	for _, want := range []string{
		"invalid pattern",
		"non-constant argument",
		"want R[cols]",
		"no query staged",
		"unknown command",
		"unexpected character",
	} {
		if !strings.Contains(errs, want) {
			t.Errorf("stderr missing %q:\n%s", want, errs)
		}
	}
}

func TestReplNeedsPatterns(t *testing.T) {
	_, errs := runRepl(t, `
Q(x) :- R(x).
:feasible
:plan
:answer
`)
	if got := strings.Count(errs, "no patterns declared"); got != 3 {
		t.Errorf("want 3 pattern errors, got %d:\n%s", got, errs)
	}
}

func TestReplHelpAndEOF(t *testing.T) {
	out, _ := runRepl(t, ":help\n")
	if !strings.Contains(out, ":patterns") {
		t.Errorf("help output = %q", out)
	}
}
