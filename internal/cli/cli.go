// Package cli implements the command-line front ends (feasible, plan,
// answer) as testable functions: each takes argument list and streams
// and returns a process exit code. The binaries under cmd/ are thin
// wrappers around these.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/parser"
)

// Exit codes shared by the commands.
const (
	ExitOK         = 0
	ExitInfeasible = 1
	ExitUsage      = 2
)

type env struct {
	stdin          io.Reader
	stdout, stderr io.Writer
	readFile       func(string) ([]byte, error)
}

func newEnv(stdin io.Reader, stdout, stderr io.Writer) env {
	return env{stdin: stdin, stdout: stdout, stderr: stderr, readFile: os.ReadFile}
}

func (e env) failf(cmd, format string, args ...any) int {
	fmt.Fprintf(e.stderr, "%s: %s\n", cmd, fmt.Sprintf(format, args...))
	return ExitUsage
}

// readQuery loads the query from the file or, when path is empty, stdin.
func (e env) readQuery(path string) (logic.UCQ, error) {
	var data []byte
	var err error
	if path == "" {
		data, err = io.ReadAll(e.stdin)
	} else {
		data, err = e.readFile(path)
	}
	if err != nil {
		return logic.UCQ{}, err
	}
	return parser.ParseUCQ(string(data))
}

// Feasible is the `feasible` command: decide executability,
// orderability, and feasibility, with optional -verbose detail.
func Feasible(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	e := newEnv(stdin, stdout, stderr)
	fs := flag.NewFlagSet("feasible", flag.ContinueOnError)
	fs.SetOutput(stderr)
	patterns := fs.String("patterns", "", "access patterns, e.g. 'B^ioo C^oo' (required)")
	queryFile := fs.String("query", "", "file with the query rules (default: stdin)")
	verbose := fs.Bool("verbose", false, "also print ans(Q) and the PLAN* plans")
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}
	if *patterns == "" {
		return e.failf("feasible", "-patterns is required")
	}
	ps, err := parser.ParsePatterns(*patterns)
	if err != nil {
		return e.failf("feasible", "%v", err)
	}
	q, err := e.readQuery(*queryFile)
	if err != nil {
		return e.failf("feasible", "%v", err)
	}

	fmt.Fprintf(stdout, "query:\n%s\n", indent(q.String()))
	fmt.Fprintf(stdout, "patterns: %s\n\n", ps)
	fmt.Fprintf(stdout, "executable as written: %v\n", core.Executable(q, ps))
	fmt.Fprintf(stdout, "orderable:             %v\n", core.OrderableUCQ(q, ps))
	ex := core.ExplainFeasible(q, ps)
	res := ex.Result
	fmt.Fprintf(stdout, "feasible:              %v   (%s)\n", res.Feasible, res.Verdict)
	if res.Nodes > 0 {
		fmt.Fprintf(stdout, "containment nodes:     %d\n", res.Nodes)
	}
	if *verbose {
		fmt.Fprintf(stdout, "\nans(Q):\n%s\n", indent(core.AnswerableUCQ(q, ps).String()))
		fmt.Fprintf(stdout, "\n%s\n", res.Plans)
		for i, w := range ex.Witnesses {
			fmt.Fprintf(stdout, "\ncontainment witness for overestimate rule %d:\n%s\n", i+1, indent(w.String()))
		}
	}
	if ordered, ok := core.ReorderUCQ(q, ps); ok && !core.Executable(q, ps) {
		fmt.Fprintf(stdout, "\nexecutable reordering:\n%s\n", indent(ordered.String()))
	}
	if !res.Feasible {
		return ExitInfeasible
	}
	return ExitOK
}

// Plan is the `plan` command: print the PLAN* decomposition.
func Plan(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	e := newEnv(stdin, stdout, stderr)
	fs := flag.NewFlagSet("plan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	patterns := fs.String("patterns", "", "access patterns (required)")
	queryFile := fs.String("query", "", "file with the query rules (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}
	if *patterns == "" {
		return e.failf("plan", "-patterns is required")
	}
	ps, err := parser.ParsePatterns(*patterns)
	if err != nil {
		return e.failf("plan", "%v", err)
	}
	q, err := e.readQuery(*queryFile)
	if err != nil {
		return e.failf("plan", "%v", err)
	}

	plans := core.ComputePlans(q, ps)
	for i, ra := range plans.Rules {
		fmt.Fprintf(stdout, "rule %d: %s\n", i+1, ra.Rule)
		fmt.Fprintf(stdout, "  answerable part:   %s\n", ra.Ans)
		if len(ra.Unanswerable) > 0 {
			fmt.Fprintf(stdout, "  unanswerable part:")
			for _, l := range ra.Unanswerable {
				fmt.Fprintf(stdout, " %s", l)
			}
			fmt.Fprintln(stdout)
		}
		if !ra.Under.False {
			if steps, err := core.ExecutionOrder(ra.Under, ps); err == nil {
				fmt.Fprintf(stdout, "  execution steps:  ")
				for _, s := range steps {
					fmt.Fprintf(stdout, " %s", s)
				}
				fmt.Fprintln(stdout)
			}
		}
	}
	fmt.Fprintf(stdout, "\n%s\n", plans)
	switch {
	case plans.UnderEqualsOver():
		fmt.Fprintln(stdout, "\nQ^u = Q^o: the query is feasible (orderable).")
	case plans.HasNull():
		fmt.Fprintln(stdout, "\nthe overestimate contains null: the query is infeasible.")
	default:
		fmt.Fprintln(stdout, "\nQ^u ≠ Q^o: run `feasible` for the exact (Π₂ᴾ) test.")
	}
	return ExitOK
}

// Answer is the `answer` command: run ANSWER* against an instance file.
func Answer(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	e := newEnv(stdin, stdout, stderr)
	fs := flag.NewFlagSet("answer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	patterns := fs.String("patterns", "", "access patterns (required)")
	queryFile := fs.String("query", "", "file with the query rules (default: stdin)")
	dataFile := fs.String("data", "", "file with ground facts (required)")
	improve := fs.Bool("improve", false, "improve the underestimate with domain enumeration views")
	maxCalls := fs.Int("maxcalls", 100000, "source-call budget for domain enumeration")
	if err := fs.Parse(args); err != nil {
		return ExitUsage
	}
	if *patterns == "" || *dataFile == "" {
		return e.failf("answer", "-patterns and -data are required")
	}
	ps, err := parser.ParsePatterns(*patterns)
	if err != nil {
		return e.failf("answer", "%v", err)
	}
	q, err := e.readQuery(*queryFile)
	if err != nil {
		return e.failf("answer", "%v", err)
	}
	facts, err := e.readFile(*dataFile)
	if err != nil {
		return e.failf("answer", "%v", err)
	}
	in := engine.NewInstance()
	if err := in.ParseInto(string(facts)); err != nil {
		return e.failf("answer", "%v", err)
	}
	cat, err := in.Catalog(ps)
	if err != nil {
		return e.failf("answer", "%v", err)
	}
	res, err := engine.RunAnswerStar(q, ps, cat)
	if err != nil {
		return e.failf("answer", "%v", err)
	}
	fmt.Fprintln(stdout, res.Report())
	st := cat.TotalStats()
	fmt.Fprintf(stdout, "source traffic: %d calls, %d tuples\n", st.Calls, st.TuplesReturned)

	if *improve && !res.Complete {
		improved, rules, dom, err := engine.ImproveUnder(res, ps, cat, *maxCalls)
		if err != nil {
			return e.failf("answer", "%v", err)
		}
		fmt.Fprintf(stdout, "\ndomain enumeration: %d values, %d calls (truncated: %v)\n",
			len(dom.Values), dom.Calls, dom.Truncated)
		if len(rules.Rules) > 0 {
			fmt.Fprintln(stdout, "improved underestimate rules:")
			for _, r := range rules.Rules {
				fmt.Fprintf(stdout, "  %s\n", r)
			}
		}
		fmt.Fprintf(stdout, "improved underestimate (%d tuples):\n", improved.Len())
		for _, row := range improved.Sorted() {
			fmt.Fprintf(stdout, "  %s\n", row)
		}
	}
	return ExitOK
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(s, "\n", "\n  ")
}
