package cli

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/access"
	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/parser"
)

// Repl is an interactive session for exploring queries under limited
// access patterns. Lines are commands or query rules:
//
//	:patterns B^ioo B^oio C^oo L^o    declare access patterns
//	:fact B("i1", "knuth", "taocp").  add facts to the instance
//	:inds R[1] < S[0]                 declare inclusion dependencies
//	:feasible                         analyze the staged query
//	:answer                           run ANSWER* on the staged query
//	:plan                             show the PLAN* decomposition
//	:show                             show the session state
//	:clear                            drop the staged query
//	:help                             this text
//	:quit                             leave
//
// Anything else is parsed as query rules and staged (multi-line queries
// accumulate until a command runs them).
func Repl(stdin io.Reader, stdout, stderr io.Writer) int {
	s := &session{out: stdout, errw: stderr, in: engine.NewInstance()}
	fmt.Fprintln(stdout, "ucqn shell — :help for commands")
	sc := bufio.NewScanner(stdin)
	for {
		fmt.Fprint(stdout, "> ")
		if !sc.Scan() {
			fmt.Fprintln(stdout)
			return ExitOK
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == ":quit" || line == ":exit" {
			return ExitOK
		}
		s.handle(line)
	}
}

type session struct {
	out, errw io.Writer
	patterns  *access.Set // nil until :patterns runs
	inds      constraints.Set
	in        *engine.Instance
	staged    []string // staged rule lines
}

func (s *session) handle(line string) {
	switch {
	case strings.HasPrefix(line, ":patterns"):
		s.setPatterns(strings.TrimSpace(strings.TrimPrefix(line, ":patterns")))
	case strings.HasPrefix(line, ":fact"):
		s.addFacts(strings.TrimSpace(strings.TrimPrefix(line, ":fact")))
	case strings.HasPrefix(line, ":inds"):
		s.setINDs(strings.TrimSpace(strings.TrimPrefix(line, ":inds")))
	case line == ":feasible":
		s.feasible()
	case line == ":plan":
		s.plan()
	case line == ":answer":
		s.answer()
	case line == ":show":
		s.show()
	case line == ":clear":
		s.staged = nil
		fmt.Fprintln(s.out, "query cleared")
	case line == ":help":
		fmt.Fprintln(s.out, replHelp)
	case strings.HasPrefix(line, ":"):
		fmt.Fprintf(s.errw, "unknown command %s (:help)\n", line)
	default:
		s.stage(line)
	}
}

const replHelp = `  :patterns B^ioo C^oo   declare access patterns
  :fact R("a", "b").     add facts
  :inds R[1] < S[0]      declare inclusion dependencies
  :feasible              analyze the staged query (uses :inds if set)
  :plan                  PLAN* decomposition of the staged query
  :answer                run ANSWER* against the facts
  :show                  session state    :clear  drop staged query
  :quit                  leave
  other lines            staged as query rules`

func (s *session) setPatterns(src string) {
	ps, err := parser.ParsePatterns(src)
	if err != nil {
		fmt.Fprintln(s.errw, err)
		return
	}
	s.patterns = ps
	fmt.Fprintf(s.out, "patterns: %s\n", ps)
}

func (s *session) addFacts(src string) {
	if err := s.in.ParseInto(src); err != nil {
		fmt.Fprintln(s.errw, err)
		return
	}
	fmt.Fprintf(s.out, "instance now has %d tuples\n", s.in.Size())
}

func (s *session) setINDs(src string) {
	inds, err := constraints.Parse(src)
	if err != nil {
		fmt.Fprintln(s.errw, err)
		return
	}
	s.inds = inds
	fmt.Fprintf(s.out, "%d inclusion dependencies\n", len(inds))
}

func (s *session) stage(line string) {
	// Validate incrementally: the staged lines so far plus this one must
	// be a parseable prefix or a complete query.
	candidate := append(append([]string{}, s.staged...), line)
	if _, err := parser.ParseUCQ(strings.Join(candidate, "\n")); err != nil {
		fmt.Fprintln(s.errw, err)
		return
	}
	s.staged = candidate
	fmt.Fprintf(s.out, "staged %d rule(s)\n", len(s.staged))
}

func (s *session) query() (logic.UCQ, bool) {
	if len(s.staged) == 0 {
		fmt.Fprintln(s.errw, "no query staged; enter rules first")
		return logic.UCQ{}, false
	}
	u, err := parser.ParseUCQ(strings.Join(s.staged, "\n"))
	if err != nil {
		fmt.Fprintln(s.errw, err)
		return logic.UCQ{}, false
	}
	return u, true
}

func (s *session) feasible() {
	u, ok := s.query()
	if !ok {
		return
	}
	if s.patterns == nil {
		fmt.Fprintln(s.errw, "no patterns declared; use :patterns")
		return
	}
	ps := s.patterns
	target := u
	if len(s.inds) > 0 {
		target = s.inds.OptimizeChase(u)
		if len(target.Rules) < len(u.Rules) {
			fmt.Fprintf(s.out, "semantic optimizer dropped %d rule(s)\n", len(u.Rules)-len(target.Rules))
		}
	}
	fmt.Fprintf(s.out, "executable: %v\n", core.Executable(target, ps))
	fmt.Fprintf(s.out, "orderable:  %v\n", core.OrderableUCQ(target, ps))
	res := core.Feasible(target, ps)
	fmt.Fprintf(s.out, "feasible:   %v (%s)\n", res.Feasible, res.Verdict)
	if ordered, ok := core.ReorderUCQ(target, ps); ok && !core.Executable(target, ps) {
		fmt.Fprintf(s.out, "plan:\n%s\n", ordered)
	}
}

func (s *session) plan() {
	u, ok := s.query()
	if !ok {
		return
	}
	if s.patterns == nil {
		fmt.Fprintln(s.errw, "no patterns declared; use :patterns")
		return
	}
	fmt.Fprintln(s.out, core.ComputePlans(u, s.patterns).String())
}

func (s *session) answer() {
	u, ok := s.query()
	if !ok {
		return
	}
	if s.patterns == nil {
		fmt.Fprintln(s.errw, "no patterns declared; use :patterns")
		return
	}
	cat, err := s.in.Catalog(s.patterns)
	if err != nil {
		fmt.Fprintln(s.errw, err)
		return
	}
	res, err := engine.RunAnswerStar(u, s.patterns, cat)
	if err != nil {
		fmt.Fprintln(s.errw, err)
		return
	}
	fmt.Fprintln(s.out, res.Report())
}

func (s *session) show() {
	if s.patterns != nil {
		fmt.Fprintf(s.out, "patterns: %s\n", s.patterns)
	} else {
		fmt.Fprintln(s.out, "patterns: (none)")
	}
	fmt.Fprintf(s.out, "instance: %d tuples over %v\n", s.in.Size(), s.in.Relations())
	fmt.Fprintf(s.out, "inds:     %d\n", len(s.inds))
	if len(s.staged) > 0 {
		fmt.Fprintf(s.out, "query:\n  %s\n", strings.Join(s.staged, "\n  "))
	} else {
		fmt.Fprintln(s.out, "query:    (none)")
	}
}
