package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func run(t *testing.T, fn func([]string, *strings.Reader, *bytes.Buffer, *bytes.Buffer) int,
	args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := fn(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func feasibleCmd(args []string, in *strings.Reader, out, errb *bytes.Buffer) int {
	return Feasible(args, in, out, errb)
}
func planCmd(args []string, in *strings.Reader, out, errb *bytes.Buffer) int {
	return Plan(args, in, out, errb)
}
func answerCmd(args []string, in *strings.Reader, out, errb *bytes.Buffer) int {
	return Answer(args, in, out, errb)
}

const ex1Query = `Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).`
const ex1Patterns = `B^ioo B^oio C^oo L^o`

func TestFeasibleCommandFeasible(t *testing.T) {
	code, out, _ := run(t, feasibleCmd, []string{"-patterns", ex1Patterns}, ex1Query)
	if code != ExitOK {
		t.Fatalf("exit = %d, want 0; out:\n%s", code, out)
	}
	for _, want := range []string{
		"executable as written: false",
		"orderable:             true",
		"feasible:              true",
		"executable reordering",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFeasibleCommandInfeasible(t *testing.T) {
	code, out, _ := run(t, feasibleCmd,
		[]string{"-patterns", "F^o B^i", "-verbose"}, `Q(x) :- F(x), B(y).`)
	if code != ExitInfeasible {
		t.Fatalf("exit = %d, want 1; out:\n%s", code, out)
	}
	for _, want := range []string{"feasible:              false", "ans(Q)", "underestimate"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFeasibleCommandUsageErrors(t *testing.T) {
	if code, _, errs := run(t, feasibleCmd, nil, ""); code != ExitUsage || !strings.Contains(errs, "-patterns") {
		t.Errorf("missing -patterns: code=%d err=%q", code, errs)
	}
	if code, _, _ := run(t, feasibleCmd, []string{"-patterns", "B^zz"}, ex1Query); code != ExitUsage {
		t.Error("bad pattern must be a usage error")
	}
	if code, _, _ := run(t, feasibleCmd, []string{"-patterns", ex1Patterns}, "not a query"); code != ExitUsage {
		t.Error("bad query must be a usage error")
	}
	if code, _, _ := run(t, feasibleCmd, []string{"-bogusflag"}, ""); code != ExitUsage {
		t.Error("unknown flag must be a usage error")
	}
	if code, _, _ := run(t, feasibleCmd, []string{"-patterns", ex1Patterns, "-query", "/nonexistent/q"}, ""); code != ExitUsage {
		t.Error("unreadable file must be a usage error")
	}
}

func TestFeasibleCommandWitness(t *testing.T) {
	// Example 9 is decided by containment; -verbose must print the
	// witness mapping.
	code, out, _ := run(t, feasibleCmd,
		[]string{"-patterns", "F^o B^i", "-verbose"}, `Q(x) :- F(x), B(x), B(y), F(z).`)
	if code != ExitOK {
		t.Fatalf("exit = %d; out:\n%s", code, out)
	}
	for _, want := range []string{"containment witness for overestimate rule 1", "via disjunct 1 with σ"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFeasibleCommandFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.dlog")
	if err := os.WriteFile(path, []byte(ex1Query), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := run(t, feasibleCmd, []string{"-patterns", ex1Patterns, "-query", path}, "")
	if code != ExitOK || !strings.Contains(out, "feasible:              true") {
		t.Errorf("code=%d out:\n%s", code, out)
	}
}

func TestPlanCommand(t *testing.T) {
	query := "Q(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y)."
	code, out, _ := run(t, planCmd, []string{"-patterns", "S^o R^oo B^oi T^oo"}, query)
	if code != ExitOK {
		t.Fatalf("exit = %d; out:\n%s", code, out)
	}
	for _, want := range []string{
		"rule 1:",
		"answerable part:   Q(x, y) :- R(x, z), not S(z)",
		"unanswerable part: B(x, y)",
		"execution steps:",
		"overestimate contains null",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Orderable query gets the feasible verdict line.
	_, out2, _ := run(t, planCmd, []string{"-patterns", ex1Patterns}, ex1Query)
	if !strings.Contains(out2, "feasible (orderable)") {
		t.Errorf("orderable verdict missing:\n%s", out2)
	}
}

func TestAnswerCommand(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "facts.dlog")
	if err := os.WriteFile(data, []byte(`
		R("a", "b").
		B("a", "b").
		S("c").
		T("t1", "t2").
	`), 0o644); err != nil {
		t.Fatal(err)
	}
	query := "Q(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y)."
	args := []string{"-patterns", "S^o R^oo B^oi T^oo", "-data", data}
	code, out, _ := run(t, answerCmd, args, query)
	if code != ExitOK {
		t.Fatalf("exit = %d; out:\n%s", code, out)
	}
	for _, want := range []string{
		`("t1", "t2")`,
		"not known to be complete",
		`("a", null)`,
		"source traffic:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// With -improve the dom view recovers (a, b).
	code, out, _ = run(t, answerCmd, append(args, "-improve"), query)
	if code != ExitOK {
		t.Fatalf("exit = %d; out:\n%s", code, out)
	}
	for _, want := range []string{"domain enumeration:", "__dom(y)", `("a", "b")`} {
		if !strings.Contains(out, want) {
			t.Errorf("improve output missing %q:\n%s", want, out)
		}
	}
}

func TestAnswerCommandCompleteCase(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "facts.dlog")
	if err := os.WriteFile(data, []byte(`R("x1", "z1"). S("z1"). T("t1", "t2").`), 0o644); err != nil {
		t.Fatal(err)
	}
	query := "Q(x, y) :- not S(z), R(x, z), B(x, y).\nQ(x, y) :- T(x, y)."
	code, out, _ := run(t, answerCmd,
		[]string{"-patterns", "S^o R^oo B^oi T^oo", "-data", data}, query)
	if code != ExitOK || !strings.Contains(out, "answer is complete") {
		t.Errorf("code=%d out:\n%s", code, out)
	}
}

func TestAnswerCommandUsageErrors(t *testing.T) {
	if code, _, _ := run(t, answerCmd, []string{"-patterns", "R^o"}, ""); code != ExitUsage {
		t.Error("missing -data must be a usage error")
	}
	if code, _, _ := run(t, answerCmd, []string{"-patterns", "R^o", "-data", "/nonexistent"}, "Q(x) :- R(x)."); code != ExitUsage {
		t.Error("unreadable data file must be a usage error")
	}
}
