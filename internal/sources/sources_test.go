package sources

import (
	"testing"

	"repro/internal/access"
)

func bookTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("B", 3,
		[]access.Pattern{"ioo", "oio"},
		[]Tuple{
			{"i1", "knuth", "taocp"},
			{"i2", "knuth", "concrete math"},
			{"i3", "date", "introduction to db"},
			{"i1", "knuth", "taocp"}, // duplicate, dropped
		})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// Example 2 of the paper: with B^ioo and B^oio we can look up by ISBN or
// by author, but we cannot list the whole relation.
func TestExample2AccessPatterns(t *testing.T) {
	b := bookTable(t)

	byISBN, err := b.Call("ioo", []string{"i1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(byISBN) != 1 || byISBN[0][1] != "knuth" {
		t.Errorf("by ISBN = %v", byISBN)
	}

	byAuthor, err := b.Call("oio", []string{"knuth"})
	if err != nil {
		t.Fatal(err)
	}
	if len(byAuthor) != 2 {
		t.Errorf("by author = %v, want 2 tuples", byAuthor)
	}

	if _, err := b.Call("ooo", nil); err == nil {
		t.Error("full scan must be rejected: ooo is not a declared pattern")
	}
	if _, err := b.Call("ioo", nil); err == nil {
		t.Error("call with missing input must be rejected")
	}
	if _, err := b.Call("ioo", []string{"a", "b"}); err == nil {
		t.Error("call with too many inputs must be rejected")
	}
}

func TestTableDeduplicatesAndValidates(t *testing.T) {
	b := bookTable(t)
	if got := len(b.Rows()); got != 3 {
		t.Errorf("rows = %d, want 3 (duplicate dropped)", got)
	}
	if _, err := NewTable("X", 2, []access.Pattern{"io"}, []Tuple{{"a"}}); err == nil {
		t.Error("tuple arity mismatch must be rejected")
	}
	if _, err := NewTable("X", 2, []access.Pattern{"i"}, nil); err == nil {
		t.Error("pattern arity mismatch must be rejected")
	}
	if _, err := NewTable("X", 2, nil, nil); err == nil {
		t.Error("table without patterns must be rejected")
	}
}

func TestMetering(t *testing.T) {
	b := bookTable(t)
	if _, err := b.Call("oio", []string{"knuth"}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Call("oio", []string{"nobody"}); err != nil {
		t.Fatal(err)
	}
	st := b.StatsSnapshot()
	if st.Calls != 2 || st.TuplesReturned != 2 {
		t.Errorf("stats = %+v, want 2 calls, 2 tuples", st)
	}
	b.ResetStats()
	if st := b.StatsSnapshot(); st.Calls != 0 || st.TuplesReturned != 0 {
		t.Errorf("after reset stats = %+v", st)
	}
}

func TestCallReturnsCopies(t *testing.T) {
	b := bookTable(t)
	rows, err := b.Call("ioo", []string{"i1"})
	if err != nil {
		t.Fatal(err)
	}
	rows[0][1] = "mangled"
	rows2, _ := b.Call("ioo", []string{"i1"})
	if rows2[0][1] != "knuth" {
		t.Error("Call must return copies of stored tuples")
	}
}

func TestCatalog(t *testing.T) {
	b := bookTable(t)
	l := MustTable("L", 1, []access.Pattern{"o"}, []Tuple{{"i3"}})
	cat, err := NewCatalog(b, l)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Source("B") != b || cat.Source("Z") != nil {
		t.Error("Source lookup wrong")
	}
	if got := cat.Names(); len(got) != 2 || got[0] != "B" || got[1] != "L" {
		t.Errorf("Names = %v", got)
	}
	ps := cat.PatternSet()
	if got := ps.String(); got != "B^ioo B^oio L^o" {
		t.Errorf("PatternSet = %q", got)
	}
	if _, err := NewCatalog(b, b); err == nil {
		t.Error("duplicate source must be rejected")
	}
	if _, err := l.Call("o", nil); err != nil {
		t.Fatal(err)
	}
	if st := cat.TotalStats(); st.Calls != 1 || st.TuplesReturned != 1 {
		t.Errorf("TotalStats = %+v", st)
	}
	cat.ResetStats()
	if st := cat.TotalStats(); st.Calls != 0 {
		t.Errorf("after reset TotalStats = %+v", st)
	}
}

func TestOnCallHook(t *testing.T) {
	b := bookTable(t)
	var seen []string
	b.OnCall = func(p access.Pattern, inputs []string) {
		seen = append(seen, string(p))
	}
	if _, err := b.Call("ioo", []string{"i1"}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != "ioo" {
		t.Errorf("hook saw %v", seen)
	}
}

func TestCatalogGeneration(t *testing.T) {
	cat := MustCatalog(bookTable(t))
	if g := cat.Generation(); g != 0 {
		t.Fatalf("fresh catalog generation = %d, want 0", g)
	}
	cat.Invalidate()
	if g := cat.Generation(); g != 1 {
		t.Errorf("generation after Invalidate = %d, want 1", g)
	}
	cat.ResetStats()
	if g := cat.Generation(); g != 2 {
		t.Errorf("ResetStats must bump the generation, got %d", g)
	}
}
