package sources

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/access"
)

// Delayed wraps a Source with a fixed per-call latency — the simulated
// network round trip of a remote web service. DESIGN.md's cost model
// counts calls; Delayed makes each call also cost wall-clock time, which
// is what streaming pipelines and concurrent runtimes overlap. The delay
// honors the caller's context: a cancelled call returns the context
// error without forwarding to the inner source. It is safe for
// concurrent use.
type Delayed struct {
	inner Source
	d     time.Duration

	// Now and Sleep inject the clock, mirroring Breaker's Now hook: nil
	// means the real time.Now and a timer-backed sleep that honors the
	// context. Tests plug in a VirtualClock to step latency without
	// real sleeping. Set them before first use.
	Now   func() time.Time
	Sleep func(ctx context.Context, d time.Duration) error

	mu  sync.Mutex
	lat Stats // latency observations overlaid on the inner snapshot
}

// NewDelayed wraps src so every call takes at least d before the inner
// source is consulted.
func NewDelayed(src Source, d time.Duration) *Delayed {
	return &Delayed{inner: src, d: d}
}

// Name implements Source.
func (s *Delayed) Name() string { return s.inner.Name() }

// Arity implements Source.
func (s *Delayed) Arity() int { return s.inner.Arity() }

// Patterns implements Source.
func (s *Delayed) Patterns() []access.Pattern { return s.inner.Patterns() }

func (s *Delayed) clockNow() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

func (s *Delayed) sleep(ctx context.Context, d time.Duration) error {
	if s.Sleep != nil {
		return s.Sleep(ctx, d)
	}
	return sleepContext(ctx, d)
}

// Call implements Source.
func (s *Delayed) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	return s.CallContext(context.Background(), p, inputs)
}

// CallContext implements ContextSource: it sleeps for the configured
// latency (abandoning the call if the context is cancelled first), then
// forwards to the inner source. Completed calls — successful or failed —
// are metered into the latency aggregates; calls abandoned to the
// caller's context are not.
func (s *Delayed) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]Tuple, error) {
	start := s.clockNow()
	if s.d > 0 {
		if err := s.sleep(ctx, s.d); err != nil {
			return nil, err
		}
	}
	rows, err := CallWithContext(ctx, s.inner, p, inputs)
	if err == nil || !errors.Is(err, context.Canceled) {
		el := s.clockNow().Sub(start)
		s.mu.Lock()
		s.lat.Observe(el)
		s.mu.Unlock()
	}
	return rows, err
}

// BatchCapable reports whether the wrapped source genuinely batches.
func (s *Delayed) BatchCapable() bool { return IsBatchCapable(s.inner) }

// CallBatch implements BatchSource: the batch is one round trip, so it
// pays the simulated latency once, then forwards the whole group.
func (s *Delayed) CallBatch(ctx context.Context, p access.Pattern, inputs [][]string) ([][]Tuple, error) {
	start := s.clockNow()
	if s.d > 0 {
		if err := s.sleep(ctx, s.d); err != nil {
			return nil, err
		}
	}
	groups, err := CallBatchWithContext(ctx, s.inner, p, inputs)
	if err == nil || !errors.Is(err, context.Canceled) {
		el := s.clockNow().Sub(start)
		s.mu.Lock()
		s.lat.Observe(el)
		s.mu.Unlock()
	}
	return groups, err
}

// StatsSnapshot implements StatsReporter by forwarding to the wrapped
// source — metered traffic is unaffected by the added latency — and
// overlaying the end-to-end latency observed here (delay included),
// which is what the caller actually experiences.
func (s *Delayed) StatsSnapshot() Stats {
	var st Stats
	if r, ok := s.inner.(StatsReporter); ok {
		st = r.StatsSnapshot()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lat.LatencyCalls > 0 {
		st.LatencyCalls = s.lat.LatencyCalls
		st.TotalLatency = s.lat.TotalLatency
		st.MaxLatency = s.lat.MaxLatency
		st.EWMALatency = s.lat.EWMALatency
	}
	return st
}

// ResetStats implements StatsReporter by forwarding to the wrapped
// source and clearing the local latency aggregates.
func (s *Delayed) ResetStats() {
	if r, ok := s.inner.(StatsReporter); ok {
		r.ResetStats()
	}
	s.mu.Lock()
	s.lat = Stats{}
	s.mu.Unlock()
}

// DelayedCatalog wraps every source of the catalog with the same
// per-call latency, returning the wrapped catalog.
func DelayedCatalog(cat *Catalog, d time.Duration) (*Catalog, error) {
	var srcs []Source
	for _, name := range cat.Names() {
		srcs = append(srcs, NewDelayed(cat.Source(name), d))
	}
	return NewCatalog(srcs...)
}
