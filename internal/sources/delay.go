package sources

import (
	"context"
	"time"

	"repro/internal/access"
)

// Delayed wraps a Source with a fixed per-call latency — the simulated
// network round trip of a remote web service. DESIGN.md's cost model
// counts calls; Delayed makes each call also cost wall-clock time, which
// is what streaming pipelines and concurrent runtimes overlap. The delay
// honors the caller's context: a cancelled call returns the context
// error without forwarding to the inner source. It is safe for
// concurrent use.
type Delayed struct {
	inner Source
	d     time.Duration
}

// NewDelayed wraps src so every call takes at least d before the inner
// source is consulted.
func NewDelayed(src Source, d time.Duration) *Delayed {
	return &Delayed{inner: src, d: d}
}

// Name implements Source.
func (s *Delayed) Name() string { return s.inner.Name() }

// Arity implements Source.
func (s *Delayed) Arity() int { return s.inner.Arity() }

// Patterns implements Source.
func (s *Delayed) Patterns() []access.Pattern { return s.inner.Patterns() }

// Call implements Source.
func (s *Delayed) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	return s.CallContext(context.Background(), p, inputs)
}

// CallContext implements ContextSource: it sleeps for the configured
// latency (abandoning the call if the context is cancelled first), then
// forwards to the inner source.
func (s *Delayed) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]Tuple, error) {
	if s.d > 0 {
		timer := time.NewTimer(s.d)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	return CallWithContext(ctx, s.inner, p, inputs)
}

// StatsSnapshot implements StatsReporter by forwarding to the wrapped
// source, so metered traffic is unaffected by the added latency.
func (s *Delayed) StatsSnapshot() Stats {
	if r, ok := s.inner.(StatsReporter); ok {
		return r.StatsSnapshot()
	}
	return Stats{}
}

// ResetStats implements StatsReporter by forwarding to the wrapped
// source.
func (s *Delayed) ResetStats() {
	if r, ok := s.inner.(StatsReporter); ok {
		r.ResetStats()
	}
}

// DelayedCatalog wraps every source of the catalog with the same
// per-call latency, returning the wrapped catalog.
func DelayedCatalog(cat *Catalog, d time.Duration) (*Catalog, error) {
	var srcs []Source
	for _, name := range cat.Names() {
		srcs = append(srcs, NewDelayed(cat.Source(name), d))
	}
	return NewCatalog(srcs...)
}
