// Package sources simulates relations exposed as web-service-style
// sources with limited access patterns (Section 1 of the paper models a
// web service operation as a relation with an access pattern). A source
// can only be called by supplying values for every input slot of one of
// its declared patterns; the call returns the matching tuples. Each
// source meters its traffic (calls made, tuples returned), which the
// benchmark harness reports as the cost of a plan.
//
// This package substitutes for the distributed sources of the paper's
// BIRN mediator deployment: the paper's algorithms interact with sources
// only through the access-pattern contract, which is enforced here at the
// call boundary.
package sources

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
)

// Tuple is a row of constant values.
type Tuple []string

// Key encodes the tuple for use as a map key.
func (t Tuple) Key() string { return strings.Join(t, "\x1f") }

// Source is a callable relation with limited access patterns.
type Source interface {
	// Name returns the relation name.
	Name() string
	// Arity returns the relation arity.
	Arity() int
	// Patterns returns the declared access patterns.
	Patterns() []access.Pattern
	// Call invokes the source through pattern p, supplying inputs for the
	// input slots of p in slot order. It returns all matching tuples
	// (full rows, including the input positions). Calling with a pattern
	// not declared for the source, or with the wrong number of inputs,
	// is an error: that is exactly the restriction the paper studies.
	Call(p access.Pattern, inputs []string) ([]Tuple, error)
}

// Stats is a source's traffic accounting. Besides call and tuple
// counts it carries per-call latency aggregates: sources that meter
// latency (Table, Delayed) fold each observed call duration in via
// Observe, and the replica router uses the EWMA to rank replicas.
type Stats struct {
	Calls          int // number of Call invocations
	TuplesReturned int // total tuples transferred

	LatencyCalls int           // calls with a latency observation
	TotalLatency time.Duration // sum of observed call latencies
	MaxLatency   time.Duration // slowest observed call
	EWMALatency  time.Duration // moving average (alpha DefaultEWMAAlpha)

	// Batch round trips: a BatchSource that services a whole binding
	// group in one request counts it as one round trip covering
	// BatchedCalls logical calls. Plain per-binding sources leave both
	// zero.
	RoundTrips   int // wire round trips made by CallBatch
	BatchedCalls int // logical calls covered by those round trips

	// Rate limiting: sources with a client-side limiter (the HTTP/JSON
	// adapter) record how often and how long calls waited for a token.
	RateLimitWaits int           // calls that had to wait for the limiter
	RateLimitWait  time.Duration // total time spent waiting
}

// DefaultEWMAAlpha is the smoothing factor of the latency moving
// average kept by Stats.Observe and the replica health tracker.
const DefaultEWMAAlpha = 0.2

// Observe folds one call latency into the latency aggregates. The
// caller is responsible for synchronization.
func (s *Stats) Observe(d time.Duration) {
	s.LatencyCalls++
	s.TotalLatency += d
	if d > s.MaxLatency {
		s.MaxLatency = d
	}
	if s.LatencyCalls == 1 {
		s.EWMALatency = d
		return
	}
	s.EWMALatency = ewma(s.EWMALatency, d, DefaultEWMAAlpha)
}

// ewma advances a moving average by one sample.
func ewma(prev, sample time.Duration, alpha float64) time.Duration {
	return time.Duration(float64(prev) + alpha*(float64(sample)-float64(prev)))
}

// MeanLatency returns the average observed call latency (zero when no
// call was metered).
func (s Stats) MeanLatency() time.Duration {
	if s.LatencyCalls == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.LatencyCalls)
}

// Add accumulates other into s. The merged EWMA is the
// observation-count-weighted mean of the two averages: exact enough for
// catalog-level reporting, where per-source ordering is what matters.
func (s *Stats) Add(other Stats) {
	s.Calls += other.Calls
	s.TuplesReturned += other.TuplesReturned
	s.RoundTrips += other.RoundTrips
	s.BatchedCalls += other.BatchedCalls
	s.RateLimitWaits += other.RateLimitWaits
	s.RateLimitWait += other.RateLimitWait
	s.TotalLatency += other.TotalLatency
	if other.MaxLatency > s.MaxLatency {
		s.MaxLatency = other.MaxLatency
	}
	if other.LatencyCalls > 0 {
		n := s.LatencyCalls + other.LatencyCalls
		s.EWMALatency = time.Duration(
			(int64(s.EWMALatency)*int64(s.LatencyCalls) +
				int64(other.EWMALatency)*int64(other.LatencyCalls)) / int64(n))
		s.LatencyCalls = n
	}
}

// StatsReporter is implemented by sources that meter their traffic.
// Wrappers (Cached, Flaky, ...) forward to the wrapped source, so a
// catalog of wrapped sources still reports the real remote traffic.
type StatsReporter interface {
	// StatsSnapshot returns a snapshot of the traffic counters.
	StatsSnapshot() Stats
	// ResetStats zeroes the traffic counters.
	ResetStats()
}

// ContextSource is implemented by sources whose calls honor a
// context.Context (cancellation, deadlines). Use CallWithContext to call
// any Source with a context: it uses CallContext when available and
// falls back to a pre-call cancellation check otherwise.
type ContextSource interface {
	Source
	CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]Tuple, error)
}

// CallWithContext invokes the source, honoring ctx as far as the source
// allows. Context errors are reported as-is (and are never transient).
func CallWithContext(ctx context.Context, s Source, p access.Pattern, inputs []string) ([]Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cs, ok := s.(ContextSource); ok {
		return cs.CallContext(ctx, p, inputs)
	}
	return s.Call(p, inputs)
}

// BatchSource is implemented by sources that can service a whole group
// of calls — same pattern, distinct input vectors — in one wire round
// trip (a SQL adapter compiles the group into one IN (...) query; an
// HTTP adapter posts the group as one request). The engine's call layer
// detects the capability on the catalog source and groups per-step
// calls through it; wrappers (Cached, Breaker, ReplicaSet, Delayed)
// forward the capability so the whole resilience stack stays
// batch-transparent.
type BatchSource interface {
	Source
	// CallBatch answers every input vector of the group through pattern
	// p. Result group i holds exactly the tuples Call(p, inputs[i])
	// would return; the outer slice is aligned with inputs. A batch
	// either succeeds as a whole or fails as a whole: on error the
	// caller falls back to per-vector calls, so no new failure class is
	// introduced.
	CallBatch(ctx context.Context, p access.Pattern, inputs [][]string) ([][]Tuple, error)
}

// batchCapable is implemented by wrappers whose CallBatch method exists
// statically but only pays off when the wrapped source can actually
// batch. IsBatchCapable consults it so a Breaker around a plain Table
// does not masquerade as a one-round-trip source.
type batchCapable interface{ BatchCapable() bool }

// IsBatchCapable reports whether calling s through CallBatch genuinely
// services the group in batched round trips, i.e. whether s — or, for
// wrappers, the source at the bottom of the stack — implements the
// batching itself. The engine uses this to decide when to charge one
// budget unit for a whole group.
func IsBatchCapable(s Source) bool {
	bs, ok := s.(BatchSource)
	if !ok {
		return false
	}
	if c, ok := bs.(batchCapable); ok {
		return c.BatchCapable()
	}
	return true
}

// CallBatchWithContext services a group of calls through s, in batched
// round trips when s is genuinely batch-capable and one per-vector call
// otherwise. Results are aligned with inputs. In the fallback path the
// first per-vector error aborts the batch, matching the all-or-nothing
// contract of CallBatch.
func CallBatchWithContext(ctx context.Context, s Source, p access.Pattern, inputs [][]string) ([][]Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if IsBatchCapable(s) {
		return s.(BatchSource).CallBatch(ctx, p, inputs)
	}
	out := make([][]Tuple, len(inputs))
	for i, in := range inputs {
		rows, err := CallWithContext(ctx, s, p, in)
		if err != nil {
			return nil, err
		}
		out[i] = rows
	}
	return out, nil
}

// transientError marks a source failure as transient: the call may
// succeed if retried (network blips, rate limiting, service restarts).
// Contract violations (undeclared pattern, wrong input count) are
// permanent and are never marked transient.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err to mark it as a transient source failure. A nil
// err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is (or wraps) a transient source
// failure, i.e. one worth retrying.
func IsTransient(err error) bool {
	var te *transientError
	return errors.As(err, &te)
}

// Table is an in-memory Source over a fixed set of tuples, with one hash
// index per declared pattern. It is safe for concurrent use.
type Table struct {
	name     string
	arity    int
	patterns []access.Pattern

	mu     sync.Mutex
	rows   []Tuple
	index  map[access.Pattern]map[string][]Tuple
	stats  Stats
	OnCall func(p access.Pattern, inputs []string) // optional test/benchmark hook
}

// NewTable builds a table source. Every tuple must have the table's
// arity, and every pattern must match it.
func NewTable(name string, arity int, patterns []access.Pattern, rows []Tuple) (*Table, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("sources: table %s declared with no access pattern", name)
	}
	for _, p := range patterns {
		if p.Arity() != arity {
			return nil, fmt.Errorf("sources: table %s has arity %d but pattern %s has arity %d", name, arity, p, p.Arity())
		}
	}
	t := &Table{name: name, arity: arity, patterns: append([]access.Pattern(nil), patterns...)}
	seen := map[string]bool{}
	for _, r := range rows {
		if len(r) != arity {
			return nil, fmt.Errorf("sources: table %s tuple %v has %d values, want %d", name, r, len(r), arity)
		}
		k := r.Key()
		if seen[k] {
			continue // set semantics
		}
		seen[k] = true
		t.rows = append(t.rows, append(Tuple(nil), r...))
	}
	t.buildIndexes()
	return t, nil
}

// MustTable is NewTable that panics on error; for tests and fixtures.
func MustTable(name string, arity int, patterns []access.Pattern, rows []Tuple) *Table {
	t, err := NewTable(name, arity, patterns, rows)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Table) buildIndexes() {
	t.index = map[access.Pattern]map[string][]Tuple{}
	for _, p := range t.patterns {
		idx := map[string][]Tuple{}
		for _, r := range t.rows {
			k := inputKey(p, r)
			idx[k] = append(idx[k], r)
		}
		t.index[p] = idx
	}
}

// inputKey extracts the input-slot values of row r under pattern p.
func inputKey(p access.Pattern, r Tuple) string {
	var parts []string
	for j := 0; j < p.Arity(); j++ {
		if p.Input(j) {
			parts = append(parts, r[j])
		}
	}
	return strings.Join(parts, "\x1f")
}

// Name implements Source.
func (t *Table) Name() string { return t.name }

// Arity implements Source.
func (t *Table) Arity() int { return t.arity }

// Patterns implements Source.
func (t *Table) Patterns() []access.Pattern {
	return append([]access.Pattern(nil), t.patterns...)
}

// Call implements Source, enforcing the access-pattern contract.
func (t *Table) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	start := time.Now()
	idx, ok := t.index[p]
	if !ok {
		return nil, fmt.Errorf("sources: table %s does not support pattern %s (has %v)", t.name, p, t.patterns)
	}
	if len(inputs) != p.InputCount() {
		return nil, fmt.Errorf("sources: call to %s^%s with %d inputs, want %d", t.name, p, len(inputs), p.InputCount())
	}
	t.mu.Lock()
	t.stats.Calls++
	rows := idx[strings.Join(inputs, "\x1f")]
	t.stats.TuplesReturned += len(rows)
	t.stats.Observe(time.Since(start))
	hook := t.OnCall
	t.mu.Unlock()
	if hook != nil {
		hook(p, inputs)
	}
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = append(Tuple(nil), r...)
	}
	return out, nil
}

// CallContext implements ContextSource. The table answers from memory,
// so the context is only checked before the lookup.
func (t *Table) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.Call(p, inputs)
}

// StatsSnapshot returns a snapshot of the source's traffic counters.
func (t *Table) StatsSnapshot() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// ResetStats zeroes the traffic counters.
func (t *Table) ResetStats() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = Stats{}
}

// Rows returns a copy of all tuples (for ground-truth evaluation in
// tests; real limited sources would not expose this).
func (t *Table) Rows() []Tuple {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Tuple, len(t.rows))
	for i, r := range t.rows {
		out[i] = append(Tuple(nil), r...)
	}
	return out
}

// Catalog is a set of sources addressable by relation name.
//
// The catalog carries a generation counter for answer-level caches
// (internal/qcache): Invalidate bumps it, and ResetStats bumps it too,
// since callers reset stats exactly when they are about to re-measure —
// typically after changing the underlying data or wrappers. Cached
// answers keyed to an older generation are never reused.
//
// It also carries a process-unique identity (ID): caches must never key
// a catalog by its pointer, because the garbage collector recycles
// addresses — a new catalog allocated where a dead one lived would
// silently inherit the dead one's cached answers. IDs are handed out
// from a monotonic counter and are never reused within a process.
type Catalog struct {
	byName map[string]Source
	gen    atomic.Int64
	id     atomic.Int64
	pid    atomic.Pointer[string]
}

// catalogIDs hands out process-unique catalog identities; 0 is reserved
// for "not yet assigned".
var catalogIDs atomic.Int64

// NewCatalog builds a catalog from sources; duplicate names are an error.
func NewCatalog(srcs ...Source) (*Catalog, error) {
	c := &Catalog{byName: map[string]Source{}}
	for _, s := range srcs {
		if _, dup := c.byName[s.Name()]; dup {
			return nil, fmt.Errorf("sources: duplicate source %s", s.Name())
		}
		c.byName[s.Name()] = s
	}
	return c, nil
}

// MustCatalog is NewCatalog that panics on error.
func MustCatalog(srcs ...Source) *Catalog {
	c, err := NewCatalog(srcs...)
	if err != nil {
		panic(err)
	}
	return c
}

// Source returns the source for the relation, or nil.
func (c *Catalog) Source(name string) Source { return c.byName[name] }

// Names returns the catalog's relation names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.byName))
	for n := range c.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PatternSet derives the access.Set the catalog's sources declare.
func (c *Catalog) PatternSet() *access.Set {
	set := access.NewSet()
	for _, s := range c.byName {
		for _, p := range s.Patterns() {
			// Arities are validated by the sources themselves.
			_ = set.Add(s.Name(), p)
		}
	}
	return set
}

// TotalStats sums the traffic of every metering source in the catalog.
// Wrappers such as Cached and Flaky forward their inner source's
// counters, so a wrapped catalog reports the real remote traffic.
func (c *Catalog) TotalStats() Stats {
	var total Stats
	for _, s := range c.byName {
		if r, ok := s.(StatsReporter); ok {
			total.Add(r.StatsSnapshot())
		}
	}
	return total
}

// ResetStats zeroes the traffic of every metering source in the catalog
// and invalidates answer-level caches keyed to this catalog.
func (c *Catalog) ResetStats() {
	c.Invalidate()
	for _, s := range c.byName {
		if r, ok := s.(StatsReporter); ok {
			r.ResetStats()
		}
	}
}

// ID returns the catalog's process-unique identity, assigning it on
// first use. Unlike the catalog's address it is monotonic and never
// recycled, so two catalogs alive at different times can never share an
// ID — the property answer caches key on. The zero Catalog value gets
// an ID lazily; IDs are safe to request concurrently.
func (c *Catalog) ID() int64 {
	if id := c.id.Load(); id != 0 {
		return id
	}
	next := catalogIDs.Add(1)
	if c.id.CompareAndSwap(0, next) {
		return next
	}
	return c.id.Load()
}

// Generation returns the catalog's invalidation generation.
func (c *Catalog) Generation() int64 { return c.gen.Load() }

// Invalidate bumps the catalog's generation: answers cached against an
// earlier generation will not be reused. Call it after mutating the
// data behind any of the catalog's sources.
func (c *Catalog) Invalidate() { c.gen.Add(1) }

// SetPersistentID labels the catalog with a stable, operator-chosen
// identity (e.g. the tenant name) that — unlike ID(), which is
// process-local — survives restarts. A persistent answer cache keys its
// on-disk state by this label; catalogs without one are never
// persisted. The label must be unique per logical dataset: two catalogs
// sharing a label are treated as the same data across restarts.
func (c *Catalog) SetPersistentID(label string) { c.pid.Store(&label) }

// PersistentID returns the label set by SetPersistentID ("" if none).
func (c *Catalog) PersistentID() string {
	if p := c.pid.Load(); p != nil {
		return *p
	}
	return ""
}

// AdvanceGeneration raises the catalog's generation to at least gen
// (no-op when already past it). A persistent cache calls it during warm
// restore to sync the live catalog past the generation its on-disk
// entries were stored under, so recovered and freshly computed answers
// share one fingerprint.
func (c *Catalog) AdvanceGeneration(gen int64) {
	for {
		cur := c.gen.Load()
		if cur >= gen || c.gen.CompareAndSwap(cur, gen) {
			return
		}
	}
}
