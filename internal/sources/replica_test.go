package sources

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
)

func replicaTable(t testing.TB, rows ...Tuple) *Table {
	t.Helper()
	if rows == nil {
		rows = []Tuple{{"a"}, {"b"}}
	}
	tab, err := NewTable("R", 1, []access.Pattern{"o"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestReplicaSetValidation(t *testing.T) {
	if _, err := NewReplicaSet(ReplicaConfig{}); err == nil {
		t.Error("empty replica set must be rejected")
	}
	r1 := replicaTable(t)
	other := MustTable("S", 1, []access.Pattern{"o"}, nil)
	if _, err := NewReplicaSet(ReplicaConfig{}, r1, other); err == nil {
		t.Error("replicas of different relations must be rejected")
	}
	twoPat := MustTable("R", 1, []access.Pattern{"o", "i"}, nil)
	if _, err := NewReplicaSet(ReplicaConfig{}, r1, twoPat); err == nil {
		t.Error("replicas with different pattern sets must be rejected")
	}
	rs, err := NewReplicaSet(ReplicaConfig{}, r1, replicaTable(t))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Name() != "R" || rs.Arity() != 1 || rs.Replicas() != 2 {
		t.Errorf("set identity: name=%s arity=%d replicas=%d", rs.Name(), rs.Arity(), rs.Replicas())
	}
	if rs.ReplicaLabel(1) != "R#1" {
		t.Errorf("label = %s", rs.ReplicaLabel(1))
	}
}

func TestReplicaSetContractCheckedOnce(t *testing.T) {
	r1, r2 := replicaTable(t), replicaTable(t)
	rs, err := NewReplicaSet(ReplicaConfig{}, r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Call("i", []string{"a"}); err == nil {
		t.Fatal("undeclared pattern must fail")
	}
	if _, err := rs.Call("o", []string{"x"}); err == nil {
		t.Fatal("wrong input count must fail")
	}
	if st := rs.StatsSnapshot(); st.Calls != 0 {
		t.Errorf("contract violations must not burn replica calls: %+v", st)
	}
}

func TestReplicaSetFailsOver(t *testing.T) {
	bad := NewFlaky(replicaTable(t), FlakyConfig{FailEveryN: 1}) // always fails
	good := replicaTable(t)
	rs, err := NewReplicaSet(ReplicaConfig{Policy: RoundRobin{}}, bad, good)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rows, err := rs.Call("o", nil)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if len(rows) != 2 {
			t.Fatalf("call %d rows = %v", i, rows)
		}
	}
	st := rs.ReplicaStats()
	if st[1].Failures != 0 || st[1].Calls == 0 {
		t.Errorf("healthy replica stats: %+v", st[1])
	}
	if st[0].Failures == 0 {
		t.Errorf("failing replica must record failures: %+v", st[0])
	}
}

func TestReplicaSetQuarantinesFailingReplica(t *testing.T) {
	bad := NewFlaky(replicaTable(t), FlakyConfig{FailEveryN: 1})
	good := replicaTable(t)
	rs, err := NewReplicaSet(ReplicaConfig{
		Breaker: BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour},
		Policy:  RoundRobin{},
	}, bad, good)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := rs.Call("o", nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := rs.ReplicaStats()[0].State; got != BreakerOpen {
		t.Fatalf("failing replica state = %v, want open", got)
	}
	// Quarantined replicas rank last: calls now go straight to the
	// healthy one, with no further traffic on the bad replica's schedule.
	before := bad.Injected()
	for i := 0; i < 5; i++ {
		if _, err := rs.Call("o", nil); err != nil {
			t.Fatal(err)
		}
	}
	if bad.Injected() != before {
		t.Errorf("quarantined replica still receives traffic: %d -> %d", before, bad.Injected())
	}
}

func TestReplicaSetExhaustion(t *testing.T) {
	mk := func() Source { return NewFlaky(replicaTable(t), FlakyConfig{FailEveryN: 1}) }
	rs, err := NewReplicaSet(ReplicaConfig{}, mk(), mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	_, err = rs.Call("o", nil)
	if err == nil {
		t.Fatal("all-replicas-failing call must fail")
	}
	if !errors.Is(err, ErrReplicasExhausted) {
		t.Errorf("err = %v, want ErrReplicasExhausted", err)
	}
	var re *ReplicasError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T, want *ReplicasError", err)
	}
	if re.Source != "R" || len(re.Tried) != 3 || len(re.Errs) != 3 {
		t.Errorf("exhaustion report: %+v", re)
	}
	if !IsTransient(err) {
		t.Error("exhaustion over transient member failures must stay transient")
	}
}

func TestReplicaSetExhaustionTerminal(t *testing.T) {
	// Terminal member failures (quarantine fast-fails) must not make the
	// combined error retryable.
	rs, err := NewReplicaSet(ReplicaConfig{
		Breaker: BreakerConfig{Window: 2, Threshold: 1, Cooldown: time.Hour},
	}, NewFlaky(replicaTable(t), FlakyConfig{FailEveryN: 1}), NewFlaky(replicaTable(t), FlakyConfig{FailEveryN: 1}))
	if err != nil {
		t.Fatal(err)
	}
	rs.Call("o", nil) // trips both breakers
	_, err = rs.Call("o", nil)
	if !errors.Is(err, ErrReplicasExhausted) {
		t.Fatalf("err = %v, want exhausted", err)
	}
	if IsTransient(err) {
		t.Error("breaker-rejected exhaustion must be terminal")
	}
	if !errors.Is(err, ErrBreakerOpen) {
		t.Error("member breaker errors must stay visible through the wrapper")
	}
}

func TestHealthiestFirstRanking(t *testing.T) {
	h := []ReplicaHealth{
		{Replica: "R#0", EWMALatency: 50 * time.Millisecond, Calls: 10},
		{Replica: "R#1", EWMALatency: time.Millisecond, Calls: 10},
		{Replica: "R#2", EWMALatency: time.Millisecond, Calls: 10, State: BreakerOpen},
	}
	order := HealthiestFirst{}.Rank(0, h)
	if order[0] != 1 || order[1] != 0 || order[2] != 2 {
		t.Errorf("order = %v, want [1 0 2] (fastest first, quarantined last)", order)
	}
	// High failure rate outranks even slower latency.
	h = []ReplicaHealth{
		{Replica: "R#0", EWMALatency: time.Millisecond, FailureRate: 1, Calls: 10},
		{Replica: "R#1", EWMALatency: 3 * time.Millisecond, Calls: 10},
	}
	if order := (HealthiestFirst{}).Rank(0, h); order[0] != 1 {
		t.Errorf("order = %v, want failing replica demoted", order)
	}
}

func TestHealthiestFirstRotatesBand(t *testing.T) {
	h := []ReplicaHealth{
		{Replica: "R#0", EWMALatency: time.Millisecond, Calls: 10},
		{Replica: "R#1", EWMALatency: time.Millisecond, Calls: 10},
	}
	seen := map[int]bool{}
	for tick := uint64(0); tick < 4; tick++ {
		seen[HealthiestFirst{}.Rank(tick, h)[0]] = true
	}
	if !seen[0] || !seen[1] {
		t.Errorf("equally healthy replicas must share leadership, got %v", seen)
	}
}

func TestRoundRobinRanking(t *testing.T) {
	h := make([]ReplicaHealth, 3)
	for tick := uint64(0); tick < 3; tick++ {
		order := RoundRobin{}.Rank(tick, h)
		if order[0] != int(tick%3) {
			t.Errorf("tick %d leader = %d", tick, order[0])
		}
	}
	h[1].State = BreakerOpen
	order := RoundRobin{}.Rank(0, h)
	if order[2] != 1 {
		t.Errorf("quarantined replica must rank last: %v", order)
	}
}

func TestReplicaSetObservedLatency(t *testing.T) {
	clk := NewVirtualClock(time.Unix(0, 0))
	mkDelayed := func(d time.Duration) Source {
		del := NewDelayed(replicaTable(t), d)
		del.Now = clk.Now
		del.Sleep = clk.Sleep
		return del
	}
	rs, err := NewReplicaSet(ReplicaConfig{Now: clk.Now, Policy: RoundRobin{}}, mkDelayed(10*time.Millisecond), mkDelayed(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := rs.Call("o", nil)
			done <- err
		}()
		if !clk.AwaitSleepers(1, 5*time.Second) {
			t.Fatal("replica call never parked")
		}
		clk.Advance(10 * time.Millisecond)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	p99, ok := rs.ObservedLatency(0.99)
	if !ok {
		t.Fatal("8 samples must be enough for a percentile")
	}
	if p99 != 10*time.Millisecond {
		t.Errorf("p99 = %v, want 10ms", p99)
	}
	st := rs.ReplicaStats()
	if st[0].EWMALatency != 10*time.Millisecond {
		t.Errorf("EWMA = %v, want 10ms", st[0].EWMALatency)
	}
}

func TestReplicaCatalog(t *testing.T) {
	mkCat := func() *Catalog {
		return MustCatalog(
			MustTable("R", 1, []access.Pattern{"o"}, []Tuple{{"a"}}),
			MustTable("S", 2, []access.Pattern{"io"}, []Tuple{{"a", "b"}}),
		)
	}
	cat, sets, err := ReplicaCatalog(ReplicaConfig{}, mkCat(), mkCat(), mkCat())
	if err != nil {
		t.Fatal(err)
	}
	names := cat.Names()
	if len(names) != 2 || len(sets) != 2 {
		t.Fatalf("names=%v sets=%d", names, len(sets))
	}
	for i, n := range names {
		if sets[i].Name() != n {
			t.Errorf("set %d = %s, want %s (indexed like Names)", i, sets[i].Name(), n)
		}
		if sets[i].Replicas() != 3 {
			t.Errorf("set %s has %d replicas", n, sets[i].Replicas())
		}
	}
	if _, err := cat.Source("R").Call("o", nil); err != nil {
		t.Fatal(err)
	}
	if st := cat.TotalStats(); st.Calls != 1 {
		t.Errorf("replica catalog must meter real traffic: %+v", st)
	}

	lopsided := MustCatalog(MustTable("R", 1, []access.Pattern{"o"}, nil))
	if _, _, err := ReplicaCatalog(ReplicaConfig{}, mkCat(), lopsided); err == nil {
		t.Error("catalogs with different schemas must be rejected")
	}
}

func TestReplicaSetConcurrentCalls(t *testing.T) {
	bad := NewFlaky(replicaTable(t), FlakyConfig{FailEveryN: 2})
	rs, err := NewReplicaSet(ReplicaConfig{}, bad, replicaTable(t), replicaTable(t))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if _, err := rs.CallContext(context.Background(), "o", nil); err != nil {
					errCh <- fmt.Errorf("call: %w", err)
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	var calls int
	for _, st := range rs.ReplicaStats() {
		calls += st.Calls
	}
	if calls < 64 {
		t.Errorf("observed calls = %d, want >= 64", calls)
	}
}
