package sources

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/access"
)

func TestCachedServesRepeats(t *testing.T) {
	b := bookTable(t)
	c := NewCached(b)
	if c.Name() != "B" || c.Arity() != 3 || len(c.Patterns()) != 2 {
		t.Error("wrapper must forward metadata")
	}
	for i := 0; i < 5; i++ {
		rows, err := c.Call("oio", []string{"knuth"})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("rows = %v", rows)
		}
	}
	hits, misses := c.HitsMisses()
	if hits != 4 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 4/1", hits, misses)
	}
	if st := b.StatsSnapshot(); st.Calls != 1 {
		t.Errorf("inner source called %d times, want 1", st.Calls)
	}
}

func TestCachedReturnsCopies(t *testing.T) {
	c := NewCached(bookTable(t))
	rows, err := c.Call("ioo", []string{"i1"})
	if err != nil {
		t.Fatal(err)
	}
	rows[0][1] = "mangled"
	rows2, _ := c.Call("ioo", []string{"i1"})
	if rows2[0][1] != "knuth" {
		t.Error("cache must not leak shared tuple storage")
	}
}

func TestCachedErrorsNotCached(t *testing.T) {
	c := NewCached(bookTable(t))
	if _, err := c.Call("ooo", nil); err == nil {
		t.Fatal("bad pattern must error")
	}
	if _, err := c.Call("ooo", nil); err == nil {
		t.Fatal("bad pattern must keep erroring")
	}
	if hits, misses := c.HitsMisses(); hits != 0 || misses != 0 {
		t.Errorf("errors must not touch counters: %d/%d", hits, misses)
	}
}

func TestCachedReset(t *testing.T) {
	c := NewCached(bookTable(t))
	if _, err := c.Call("ioo", []string{"i1"}); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if _, err := c.Call("ioo", []string{"i1"}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.HitsMisses(); hits != 0 || misses != 1 {
		t.Errorf("after reset: hits=%d misses=%d", hits, misses)
	}
}

// blockingSource serves fixed rows but parks every call until released,
// so tests can pile up concurrent callers deterministically.
type blockingSource struct {
	rows    []Tuple
	release chan struct{}
	calls   atomic.Int32
}

func (s *blockingSource) Name() string               { return "B" }
func (s *blockingSource) Arity() int                 { return 2 }
func (s *blockingSource) Patterns() []access.Pattern { return []access.Pattern{"io"} }
func (s *blockingSource) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	s.calls.Add(1)
	<-s.release
	return copyTuples(s.rows), nil
}

// Regression test for the thundering-herd bug: N goroutines missing on
// the same key must collapse into exactly one inner call.
func TestCachedSingleflight(t *testing.T) {
	const n = 16
	inner := &blockingSource{rows: []Tuple{{"k", "v"}}, release: make(chan struct{})}
	c := NewCached(inner)

	var wg sync.WaitGroup
	errs := make([]error, n)
	rows := make([][]Tuple, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i], errs[i] = c.Call("io", []string{"k"})
		}(i)
	}
	// Wait for the leader to reach the inner source, give the followers a
	// moment to queue up (stragglers hit the cache instead — either way
	// the inner call count must stay 1), then release the fetch.
	for inner.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(inner.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if len(rows[i]) != 1 || rows[i][0][1] != "v" {
			t.Fatalf("caller %d rows = %v", i, rows[i])
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("inner calls = %d, want exactly 1", got)
	}
	hits, misses := c.HitsMisses()
	if misses != 1 || hits != n-1 {
		t.Errorf("hits=%d misses=%d, want %d/1", hits, misses, n-1)
	}
}

// A caller waiting on someone else's in-flight fetch must honor its own
// context.
func TestCachedFollowerCancellation(t *testing.T) {
	inner := &blockingSource{rows: []Tuple{{"k", "v"}}, release: make(chan struct{})}
	c := NewCached(inner)
	go c.Call("io", []string{"k"}) // leader, parked on the inner source
	for inner.calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CallContext(ctx, "io", []string{"k"}); err != context.Canceled {
		t.Errorf("follower error = %v, want context.Canceled", err)
	}
	close(inner.release)
}

// ctxBlockingSource parks calls until released but gives up when the
// caller's context is cancelled, like a real remote client would. Every
// call that reaches the source sends one token on started.
type ctxBlockingSource struct {
	rows    []Tuple
	release chan struct{}
	started chan struct{}
	calls   atomic.Int32
}

func (s *ctxBlockingSource) Name() string               { return "B" }
func (s *ctxBlockingSource) Arity() int                 { return 2 }
func (s *ctxBlockingSource) Patterns() []access.Pattern { return []access.Pattern{"io"} }
func (s *ctxBlockingSource) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	return s.CallContext(context.Background(), p, inputs)
}
func (s *ctxBlockingSource) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]Tuple, error) {
	s.calls.Add(1)
	s.started <- struct{}{}
	select {
	case <-s.release:
		return copyTuples(s.rows), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Regression test for the cancellation-poisoning bug: a leader whose
// *own* context is cancelled mid-fetch used to hand context.Canceled to
// every waiting follower, even though their contexts were live. One
// follower must instead take over as the new leader and refetch; the
// rest wait on it and get rows.
func TestCachedCancelledLeaderDoesNotPoisonFollowers(t *testing.T) {
	inner := &ctxBlockingSource{
		rows:    []Tuple{{"k", "v"}},
		release: make(chan struct{}),
		started: make(chan struct{}, 16),
	}
	c := NewCached(inner)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := c.CallContext(leaderCtx, "io", []string{"k"})
		leaderErr <- err
	}()
	<-inner.started // leader is parked inside the source

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	rows := make([][]Tuple, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i], errs[i] = c.CallContext(context.Background(), "io", []string{"k"})
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // let the followers join the flight
	cancelLeader()
	if err := <-leaderErr; err != context.Canceled {
		t.Fatalf("cancelled leader error = %v, want context.Canceled", err)
	}

	select {
	case <-inner.started: // exactly one follower took over and refetched
	case <-time.After(5 * time.Second):
		t.Fatal("no follower was promoted to leader after the leader's cancellation")
	}
	close(inner.release)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d poisoned by the leader's cancellation: %v", i, errs[i])
		}
		if len(rows[i]) != 1 || rows[i][0][1] != "v" {
			t.Fatalf("follower %d rows = %v", i, rows[i])
		}
	}
	// One fetch died with the old leader, one succeeded under the new
	// one; the promotion must not fan out into a thundering herd.
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("inner calls = %d, want exactly 2 (dead leader + promoted follower)", got)
	}
}

// Regression test for the wrapped-catalog accounting bug: TotalStats on
// a CachedCatalog must report the inner sources' real traffic instead of
// zero (the wrappers are not *Table).
func TestCachedCatalogReportsInnerTraffic(t *testing.T) {
	b := bookTable(t)
	l := MustTable("L", 1, []access.Pattern{"o"}, []Tuple{{"i3"}})
	wrapped, _, err := CachedCatalog(MustCatalog(b, l))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // 1 remote call + 2 cache hits
		if _, err := wrapped.Source("B").Call("oio", []string{"knuth"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := wrapped.Source("L").Call("o", nil); err != nil {
		t.Fatal(err)
	}
	st := wrapped.TotalStats()
	if st.Calls != 2 || st.TuplesReturned != 3 {
		t.Errorf("wrapped TotalStats = %+v, want 2 calls / 3 tuples", st)
	}
	wrapped.ResetStats()
	if st := wrapped.TotalStats(); st.Calls != 0 || st.TuplesReturned != 0 {
		t.Errorf("after reset, wrapped TotalStats = %+v", st)
	}
	if st := b.StatsSnapshot(); st.Calls != 0 {
		t.Errorf("ResetStats must reach the inner source; inner = %+v", st)
	}
}

func TestCachedCatalog(t *testing.T) {
	b := bookTable(t)
	l := MustTable("L", 1, []access.Pattern{"o"}, []Tuple{{"i3"}})
	cat := MustCatalog(b, l)
	wrapped, caches, err := CachedCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(caches) != 2 {
		t.Fatalf("caches = %d", len(caches))
	}
	if _, err := wrapped.Source("B").Call("ioo", []string{"i1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Source("B").Call("ioo", []string{"i1"}); err != nil {
		t.Fatal(err)
	}
	var totalHits int
	for _, c := range caches {
		h, _ := c.HitsMisses()
		totalHits += h
	}
	if totalHits != 1 {
		t.Errorf("total hits = %d, want 1", totalHits)
	}
	if got := wrapped.PatternSet().String(); got != "B^ioo B^oio L^o" {
		t.Errorf("PatternSet through wrapper = %q", got)
	}
}

func TestCachedCapacityLRU(t *testing.T) {
	b := bookTable(t)
	c := NewCachedWithCapacity(b, 2)
	call := func(id string) {
		t.Helper()
		if _, err := c.Call("ioo", []string{id}); err != nil {
			t.Fatal(err)
		}
	}
	call("i1")
	call("i2")
	call("i1") // refresh i1: i2 is now the LRU key
	call("i3") // evicts i2
	if ev := c.Evictions(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	inner := b.StatsSnapshot().Calls
	call("i1") // still cached
	if got := b.StatsSnapshot().Calls; got != inner {
		t.Errorf("i1 was evicted: inner calls went %d -> %d", inner, got)
	}
	call("i2") // evicted, refetches (and evicts i3)
	if got := b.StatsSnapshot().Calls; got != inner+1 {
		t.Errorf("i2 must refetch after eviction: inner calls %d, want %d", got, inner+1)
	}
	if ev := c.Evictions(); ev != 2 {
		t.Errorf("evictions = %d, want 2", ev)
	}
	hits, misses := c.HitsMisses()
	if misses != 4 {
		t.Errorf("misses = %d (hits %d), want 4 inner fetches", misses, hits)
	}
	c.Reset()
	if ev := c.Evictions(); ev != 0 {
		t.Errorf("Reset must clear evictions, got %d", ev)
	}
}

func TestCachedUnboundedNeverEvicts(t *testing.T) {
	c := NewCached(bookTable(t))
	for _, id := range []string{"i1", "i2", "i3"} {
		if _, err := c.Call("ioo", []string{id}); err != nil {
			t.Fatal(err)
		}
	}
	if ev := c.Evictions(); ev != 0 {
		t.Errorf("unbounded cache evicted %d keys", ev)
	}
}
