package sources

import (
	"testing"

	"repro/internal/access"
)

func TestCachedServesRepeats(t *testing.T) {
	b := bookTable(t)
	c := NewCached(b)
	if c.Name() != "B" || c.Arity() != 3 || len(c.Patterns()) != 2 {
		t.Error("wrapper must forward metadata")
	}
	for i := 0; i < 5; i++ {
		rows, err := c.Call("oio", []string{"knuth"})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatalf("rows = %v", rows)
		}
	}
	hits, misses := c.HitsMisses()
	if hits != 4 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 4/1", hits, misses)
	}
	if st := b.StatsSnapshot(); st.Calls != 1 {
		t.Errorf("inner source called %d times, want 1", st.Calls)
	}
}

func TestCachedReturnsCopies(t *testing.T) {
	c := NewCached(bookTable(t))
	rows, err := c.Call("ioo", []string{"i1"})
	if err != nil {
		t.Fatal(err)
	}
	rows[0][1] = "mangled"
	rows2, _ := c.Call("ioo", []string{"i1"})
	if rows2[0][1] != "knuth" {
		t.Error("cache must not leak shared tuple storage")
	}
}

func TestCachedErrorsNotCached(t *testing.T) {
	c := NewCached(bookTable(t))
	if _, err := c.Call("ooo", nil); err == nil {
		t.Fatal("bad pattern must error")
	}
	if _, err := c.Call("ooo", nil); err == nil {
		t.Fatal("bad pattern must keep erroring")
	}
	if hits, misses := c.HitsMisses(); hits != 0 || misses != 0 {
		t.Errorf("errors must not touch counters: %d/%d", hits, misses)
	}
}

func TestCachedReset(t *testing.T) {
	c := NewCached(bookTable(t))
	if _, err := c.Call("ioo", []string{"i1"}); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if _, err := c.Call("ioo", []string{"i1"}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.HitsMisses(); hits != 0 || misses != 1 {
		t.Errorf("after reset: hits=%d misses=%d", hits, misses)
	}
}

func TestCachedCatalog(t *testing.T) {
	b := bookTable(t)
	l := MustTable("L", 1, []access.Pattern{"o"}, []Tuple{{"i3"}})
	cat := MustCatalog(b, l)
	wrapped, caches, err := CachedCatalog(cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(caches) != 2 {
		t.Fatalf("caches = %d", len(caches))
	}
	if _, err := wrapped.Source("B").Call("ioo", []string{"i1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.Source("B").Call("ioo", []string{"i1"}); err != nil {
		t.Fatal(err)
	}
	var totalHits int
	for _, c := range caches {
		h, _ := c.HitsMisses()
		totalHits += h
	}
	if totalHits != 1 {
		t.Errorf("total hits = %d, want 1", totalHits)
	}
	if got := wrapped.PatternSet().String(); got != "B^ioo B^oio L^o" {
		t.Errorf("PatternSet through wrapper = %q", got)
	}
}
