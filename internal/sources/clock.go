package sources

import (
	"context"
	"sync"
	"time"
)

// sleepContext is the real-clock sleep used by latency wrappers when no
// Sleep hook is injected: it waits out d, abandoning the wait when the
// context ends first.
func sleepContext(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// VirtualClock is a manually stepped clock for tests. Now returns the
// current virtual time and Sleep parks the caller until Advance moves
// the clock past its wake-up deadline (or the context is cancelled), so
// latency and hedging tests step simulated time instead of sleeping for
// real. Plug its methods into the Now/Sleep hooks of Delayed, Breaker,
// or ReplicaConfig. It is safe for concurrent use.
type VirtualClock struct {
	mu       sync.Mutex
	now      time.Time
	sleepers map[int]*vcSleeper
	nextID   int
}

type vcSleeper struct {
	deadline time.Time
	ch       chan struct{}
}

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start, sleepers: map[int]*vcSleeper{}}
}

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep parks the caller until the virtual clock advances past d from
// now, or ctx ends. A non-positive d returns immediately.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	s := &vcSleeper{deadline: c.now.Add(d), ch: make(chan struct{})}
	c.sleepers[id] = s
	c.mu.Unlock()
	select {
	case <-s.ch:
		return nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.sleepers, id)
		c.mu.Unlock()
		return ctx.Err()
	}
}

// Advance moves the clock forward by d, waking every sleeper whose
// deadline has been reached.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for id, s := range c.sleepers {
		if !s.deadline.After(c.now) {
			close(s.ch)
			delete(c.sleepers, id)
		}
	}
}

// Sleepers returns how many goroutines are currently parked in Sleep.
func (c *VirtualClock) Sleepers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sleepers)
}

// AwaitSleepers waits (in real time) until at least n goroutines are
// parked in Sleep, reporting whether that happened before the timeout.
// Tests call it to make sure a concurrent call has reached its sleep
// before Advance releases it.
func (c *VirtualClock) AwaitSleepers(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if c.Sleepers() >= n {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}
