package sources

// Concurrency smoke tests: hammer Call / StatsSnapshot / ResetStats on
// every metering source from many goroutines. They assert only basic
// sanity — their real job is to give `go test -race` something to bite
// on (the engine's source-call runtime issues calls concurrently).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/access"
)

func hammer(t *testing.T, s Source) {
	t.Helper()
	const goroutines, iters = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case i%10 == 9:
					if r, ok := s.(StatsReporter); ok {
						r.ResetStats()
					}
				case i%5 == 4:
					if r, ok := s.(StatsReporter); ok {
						_ = r.StatsSnapshot()
					}
				default:
					rows, err := s.Call("io", []string{fmt.Sprintf("k%d", (g+i)%4)})
					if err != nil {
						t.Errorf("Call: %v", err)
						return
					}
					if len(rows) != 1 {
						t.Errorf("rows = %v", rows)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func raceTable(t *testing.T) *Table {
	t.Helper()
	var rows []Tuple
	for i := 0; i < 4; i++ {
		rows = append(rows, Tuple{fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)})
	}
	return MustTable("R", 2, []access.Pattern{"io"}, rows)
}

func TestTableConcurrentAccess(t *testing.T) {
	hammer(t, raceTable(t))
}

func TestCachedConcurrentAccess(t *testing.T) {
	c := NewCached(raceTable(t))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // interleave cache resets with the traffic
		defer wg.Done()
		for i := 0; i < 20; i++ {
			c.Reset()
			_, _ = c.HitsMisses()
		}
	}()
	hammer(t, c)
	wg.Wait()
}

func TestFlakyConcurrentAccess(t *testing.T) {
	// FailFirst: 1 exercises the schedule bookkeeping concurrently; the
	// hammer tolerates no errors, so wrap with enough retries inline.
	f := NewFlaky(raceTable(t), FlakyConfig{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = f.Injected()
			f.ResetSchedule()
		}
	}()
	hammer(t, f)
	wg.Wait()
}
