package sources

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/access"
)

func TestFlakyFailsFirstNPerKey(t *testing.T) {
	b := bookTable(t)
	f := NewFlaky(b, FlakyConfig{FailFirst: 2})
	if f.Name() != "B" || f.Arity() != 3 || len(f.Patterns()) != 2 {
		t.Error("wrapper must forward metadata")
	}
	for i := 0; i < 2; i++ {
		_, err := f.Call("oio", []string{"knuth"})
		if err == nil {
			t.Fatalf("call %d: expected injected failure", i+1)
		}
		if !IsTransient(err) {
			t.Fatalf("call %d: injected error must be transient: %v", i+1, err)
		}
	}
	rows, err := f.Call("oio", []string{"knuth"})
	if err != nil {
		t.Fatalf("third call must succeed: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// A different key has its own schedule.
	if _, err := f.Call("ioo", []string{"i1"}); err == nil {
		t.Error("fresh key must start failing again")
	}
	if f.Injected() != 3 {
		t.Errorf("injected = %d, want 3", f.Injected())
	}
	// Inner meters saw only the one call that got through.
	if st := f.StatsSnapshot(); st.Calls != 1 || st.TuplesReturned != 2 {
		t.Errorf("forwarded stats = %+v, want 1 call / 2 tuples", st)
	}
	f.ResetStats()
	if st := b.StatsSnapshot(); st.Calls != 0 {
		t.Errorf("ResetStats must reach the inner table: %+v", st)
	}
}

func TestFlakyDeterministicFraction(t *testing.T) {
	b := bookTable(t)
	f := NewFlaky(b, FlakyConfig{FailEveryN: 3})
	var failed int
	for i := 0; i < 9; i++ {
		if _, err := f.Call("ioo", []string{fmt.Sprintf("i%d", i%3+1)}); err != nil {
			if !IsTransient(err) {
				t.Fatalf("injected error must be transient: %v", err)
			}
			failed++
		}
	}
	if failed != 3 || f.Injected() != 3 {
		t.Errorf("failed=%d injected=%d, want 3/3 (every 3rd call)", failed, f.Injected())
	}
	f.ResetSchedule()
	if f.Injected() != 0 {
		t.Errorf("after ResetSchedule injected = %d", f.Injected())
	}
	if _, err := f.Call("ioo", []string{"i1"}); err == nil {
		t.Error("schedule must restart: first call fails again")
	}
}

func TestFlakyContractErrorsAreNotTransient(t *testing.T) {
	f := NewFlaky(bookTable(t), FlakyConfig{})
	_, err := f.Call("ooo", nil)
	if err == nil {
		t.Fatal("undeclared pattern must error")
	}
	if IsTransient(err) {
		t.Error("contract violations must not be classified transient")
	}
	if f.Injected() != 0 {
		t.Errorf("injected = %d, want 0", f.Injected())
	}
}

func TestFlakyHonorsContext(t *testing.T) {
	f := NewFlaky(bookTable(t), FlakyConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.CallContext(ctx, "ioo", []string{"i1"}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestFlakyHangBlocksUntilDeadline(t *testing.T) {
	f := NewFlaky(bookTable(t), FlakyConfig{FailFirst: 1, Hang: true})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.CallContext(ctx, "ioo", []string{"i1"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded: a hung call ends only with the context", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("hung call returned before the deadline")
	}
	if f.Injected() != 1 {
		t.Errorf("injected = %d, want 1", f.Injected())
	}
	// The schedule is spent for this key: the retry gets through.
	rows, err := f.CallContext(context.Background(), "ioo", []string{"i1"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("retry after hang: rows=%v err=%v", rows, err)
	}
}

func TestFlakyHangComposesWithDelayed(t *testing.T) {
	// Delayed(Flaky{Hang}): the wrapper latency elapses first, then the
	// injected hang blocks until the deadline; a healthy later call pays
	// only the latency. Both wrappers keep forwarding stats.
	f := NewFlaky(bookTable(t), FlakyConfig{FailFirst: 1, Hang: true})
	d := NewDelayed(f, time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := d.CallContext(ctx, "ioo", []string{"i1"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded through Delayed(Flaky{Hang})", err)
	}
	rows, err := d.CallContext(context.Background(), "ioo", []string{"i1"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("healthy call: rows=%v err=%v", rows, err)
	}
	if st := d.StatsSnapshot(); st.Calls != 1 {
		t.Errorf("stats through both wrappers = %+v, want the 1 call that got through", st)
	}
}

func TestTransientClassification(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) must be nil")
	}
	base := errors.New("boom")
	te := Transient(base)
	if !IsTransient(te) || !errors.Is(te, base) {
		t.Error("transient wrapper must classify and unwrap")
	}
	if IsTransient(base) || IsTransient(context.Canceled) {
		t.Error("plain and context errors must not be transient")
	}
	wrapped := fmt.Errorf("call failed: %w", te)
	if !IsTransient(wrapped) {
		t.Error("IsTransient must see through wrapping")
	}
}

func TestFlakyCachedCatalogStats(t *testing.T) {
	// The full production stack: Cached(Flaky(Table)). TotalStats must
	// still surface the table's real traffic through both wrappers.
	b := MustTable("R", 2, []access.Pattern{"io"}, []Tuple{{"k", "v"}})
	c := NewCached(NewFlaky(b, FlakyConfig{}))
	cat := MustCatalog(c)
	if _, err := c.Call("io", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("io", []string{"k"}); err != nil { // cache hit
		t.Fatal(err)
	}
	if st := cat.TotalStats(); st.Calls != 1 || st.TuplesReturned != 1 {
		t.Errorf("TotalStats through Cached(Flaky(Table)) = %+v", st)
	}
}
