package sources

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/access"
)

func TestFlakyFailsFirstNPerKey(t *testing.T) {
	b := bookTable(t)
	f := NewFlaky(b, FlakyConfig{FailFirst: 2})
	if f.Name() != "B" || f.Arity() != 3 || len(f.Patterns()) != 2 {
		t.Error("wrapper must forward metadata")
	}
	for i := 0; i < 2; i++ {
		_, err := f.Call("oio", []string{"knuth"})
		if err == nil {
			t.Fatalf("call %d: expected injected failure", i+1)
		}
		if !IsTransient(err) {
			t.Fatalf("call %d: injected error must be transient: %v", i+1, err)
		}
	}
	rows, err := f.Call("oio", []string{"knuth"})
	if err != nil {
		t.Fatalf("third call must succeed: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// A different key has its own schedule.
	if _, err := f.Call("ioo", []string{"i1"}); err == nil {
		t.Error("fresh key must start failing again")
	}
	if f.Injected() != 3 {
		t.Errorf("injected = %d, want 3", f.Injected())
	}
	// Inner meters saw only the one call that got through.
	if st := f.StatsSnapshot(); st.Calls != 1 || st.TuplesReturned != 2 {
		t.Errorf("forwarded stats = %+v, want 1 call / 2 tuples", st)
	}
	f.ResetStats()
	if st := b.StatsSnapshot(); st.Calls != 0 {
		t.Errorf("ResetStats must reach the inner table: %+v", st)
	}
}

func TestFlakyDeterministicFraction(t *testing.T) {
	b := bookTable(t)
	f := NewFlaky(b, FlakyConfig{FailEveryN: 3})
	var failed int
	for i := 0; i < 9; i++ {
		if _, err := f.Call("ioo", []string{fmt.Sprintf("i%d", i%3+1)}); err != nil {
			if !IsTransient(err) {
				t.Fatalf("injected error must be transient: %v", err)
			}
			failed++
		}
	}
	if failed != 3 || f.Injected() != 3 {
		t.Errorf("failed=%d injected=%d, want 3/3 (every 3rd call)", failed, f.Injected())
	}
	f.ResetSchedule()
	if f.Injected() != 0 {
		t.Errorf("after ResetSchedule injected = %d", f.Injected())
	}
	if _, err := f.Call("ioo", []string{"i1"}); err == nil {
		t.Error("schedule must restart: first call fails again")
	}
}

func TestFlakyContractErrorsAreNotTransient(t *testing.T) {
	f := NewFlaky(bookTable(t), FlakyConfig{})
	_, err := f.Call("ooo", nil)
	if err == nil {
		t.Fatal("undeclared pattern must error")
	}
	if IsTransient(err) {
		t.Error("contract violations must not be classified transient")
	}
	if f.Injected() != 0 {
		t.Errorf("injected = %d, want 0", f.Injected())
	}
}

func TestFlakyHonorsContext(t *testing.T) {
	f := NewFlaky(bookTable(t), FlakyConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.CallContext(ctx, "ioo", []string{"i1"}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestTransientClassification(t *testing.T) {
	if Transient(nil) != nil {
		t.Error("Transient(nil) must be nil")
	}
	base := errors.New("boom")
	te := Transient(base)
	if !IsTransient(te) || !errors.Is(te, base) {
		t.Error("transient wrapper must classify and unwrap")
	}
	if IsTransient(base) || IsTransient(context.Canceled) {
		t.Error("plain and context errors must not be transient")
	}
	wrapped := fmt.Errorf("call failed: %w", te)
	if !IsTransient(wrapped) {
		t.Error("IsTransient must see through wrapping")
	}
}

func TestFlakyCachedCatalogStats(t *testing.T) {
	// The full production stack: Cached(Flaky(Table)). TotalStats must
	// still surface the table's real traffic through both wrappers.
	b := MustTable("R", 2, []access.Pattern{"io"}, []Tuple{{"k", "v"}})
	c := NewCached(NewFlaky(b, FlakyConfig{}))
	cat := MustCatalog(c)
	if _, err := c.Call("io", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call("io", []string{"k"}); err != nil { // cache hit
		t.Fatal(err)
	}
	if st := cat.TotalStats(); st.Calls != 1 || st.TuplesReturned != 1 {
		t.Errorf("TotalStats through Cached(Flaky(Table)) = %+v", st)
	}
}
