package sources

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/access"
)

// FlakyConfig controls how a Flaky wrapper injects failures. Both knobs
// are deterministic, so tests and benchmarks that exercise the retry
// machinery are reproducible.
type FlakyConfig struct {
	// FailFirst fails the first N calls for each distinct (pattern,
	// inputs) key before letting calls through. Retried calls for the
	// same key therefore eventually succeed.
	FailFirst int
	// FailEveryN, when > 0, fails every Nth call overall (the 1st,
	// N+1st, ... in arrival order), independent of key: a deterministic
	// 1/N failure fraction.
	FailEveryN int
	// Hang turns injected faults from fast errors into hung calls: the
	// call blocks until the caller's context is done and returns the
	// context error (context.DeadlineExceeded under a per-call deadline)
	// instead of a transient error. This is the fault a circuit breaker
	// and per-call deadline exist for — a service that stops answering
	// rather than erroring. A hung call through the pattern-only Call
	// (no context) would block forever, so Hang requires CallContext
	// with a cancellable context; it composes with Delayed in either
	// order (wrapper latency elapses first when Delayed is outermost).
	Hang bool
}

// Flaky wraps a Source and injects transient failures according to a
// deterministic schedule — the stand-in for rate-limited or unreliable
// web services. Injected failures satisfy IsTransient and never reach
// the inner source, so the inner meters count only successful traffic.
// It is safe for concurrent use.
type Flaky struct {
	inner Source
	cfg   FlakyConfig

	mu       sync.Mutex
	perKey   map[string]int // calls seen per key
	total    int            // calls seen overall
	injected int            // failures injected
}

// NewFlaky wraps src with a deterministic fault injector.
func NewFlaky(src Source, cfg FlakyConfig) *Flaky {
	return &Flaky{inner: src, cfg: cfg, perKey: map[string]int{}}
}

// Name implements Source.
func (f *Flaky) Name() string { return f.inner.Name() }

// Arity implements Source.
func (f *Flaky) Arity() int { return f.inner.Arity() }

// Patterns implements Source.
func (f *Flaky) Patterns() []access.Pattern { return f.inner.Patterns() }

// Call implements Source.
func (f *Flaky) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	return f.CallContext(context.Background(), p, inputs)
}

// CallContext implements ContextSource, consulting the failure schedule
// before forwarding to the inner source.
func (f *Flaky) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]Tuple, error) {
	key := string(p) + "\x00" + strings.Join(inputs, "\x1f")
	f.mu.Lock()
	f.total++
	f.perKey[key]++
	fail := f.perKey[key] <= f.cfg.FailFirst ||
		(f.cfg.FailEveryN > 0 && (f.total-1)%f.cfg.FailEveryN == 0)
	if fail {
		f.injected++
	}
	f.mu.Unlock()
	if fail {
		if f.cfg.Hang {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return nil, Transient(fmt.Errorf("sources: %s^%s(%s): injected transient failure", f.Name(), p, strings.Join(inputs, ",")))
	}
	return CallWithContext(ctx, f.inner, p, inputs)
}

// Injected returns how many failures the schedule has injected so far.
func (f *Flaky) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// ResetSchedule restarts the failure schedule (the traffic meters of the
// inner source are untouched; use ResetStats for those).
func (f *Flaky) ResetSchedule() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.perKey = map[string]int{}
	f.total, f.injected = 0, 0
}

// StatsSnapshot implements StatsReporter by forwarding to the wrapped
// source: injected failures never reached it, so the counters are the
// real traffic that got through.
func (f *Flaky) StatsSnapshot() Stats {
	if r, ok := f.inner.(StatsReporter); ok {
		return r.StatsSnapshot()
	}
	return Stats{}
}

// ResetStats implements StatsReporter by forwarding to the wrapped
// source.
func (f *Flaky) ResetStats() {
	if r, ok := f.inner.(StatsReporter); ok {
		r.ResetStats()
	}
}
