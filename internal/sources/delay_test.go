package sources

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/access"
)

func delayedTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("R", 1, []access.Pattern{"o"}, []Tuple{{"a"}, {"b"}})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestDelayedAddsLatencyAndForwards(t *testing.T) {
	tab := delayedTable(t)
	d := NewDelayed(tab, 5*time.Millisecond)
	start := time.Now()
	rows, err := d.Call("o", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("call returned after %v, want ≥5ms", elapsed)
	}
	if d.Name() != "R" || d.Arity() != 1 || len(d.Patterns()) != 1 {
		t.Error("identity must forward to the inner source")
	}
	if st := d.StatsSnapshot(); st.Calls != 1 || st.TuplesReturned != 2 {
		t.Errorf("stats must forward to the inner meters: %+v", st)
	}
}

func TestDelayedHonorsCancellation(t *testing.T) {
	tab := delayedTable(t)
	d := NewDelayed(tab, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := d.CallContext(ctx, "o", nil)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call did not return")
	}
	if st := d.StatsSnapshot(); st.Calls != 0 {
		t.Errorf("abandoned call must not reach the inner source: %+v", st)
	}
}

func TestDelayedCatalogWrapsEverySource(t *testing.T) {
	tab := delayedTable(t)
	cat, err := NewCatalog(tab)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := DelayedCatalog(cat, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range wrapped.Names() {
		if _, ok := wrapped.Source(name).(*Delayed); !ok {
			t.Errorf("source %s is not delayed", name)
		}
	}
	if _, err := wrapped.Source("R").Call("o", nil); err != nil {
		t.Fatal(err)
	}
	if st := wrapped.TotalStats(); st.Calls != 1 {
		t.Errorf("wrapped catalog must meter inner traffic: %+v", st)
	}
}
