package sources

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/access"
)

func delayedTable(t *testing.T) *Table {
	t.Helper()
	tab, err := NewTable("R", 1, []access.Pattern{"o"}, []Tuple{{"a"}, {"b"}})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// virtualDelayed wires a Delayed to a virtual clock so tests step
// latency instead of sleeping for real.
func virtualDelayed(src Source, d time.Duration) (*Delayed, *VirtualClock) {
	clk := NewVirtualClock(time.Unix(0, 0))
	del := NewDelayed(src, d)
	del.Now = clk.Now
	del.Sleep = clk.Sleep
	return del, clk
}

func TestDelayedAddsLatencyAndForwards(t *testing.T) {
	tab := delayedTable(t)
	d, clk := virtualDelayed(tab, 5*time.Second)
	done := make(chan struct{})
	var rows []Tuple
	var err error
	go func() {
		rows, err = d.Call("o", nil)
		close(done)
	}()
	if !clk.AwaitSleepers(1, 5*time.Second) {
		t.Fatal("call never parked in the virtual sleep")
	}
	select {
	case <-done:
		t.Fatal("call returned before the virtual clock advanced")
	default:
	}
	clk.Advance(4 * time.Second)
	if clk.Sleepers() != 1 {
		t.Fatal("call woke before the full delay elapsed")
	}
	clk.Advance(time.Second)
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
	if d.Name() != "R" || d.Arity() != 1 || len(d.Patterns()) != 1 {
		t.Error("identity must forward to the inner source")
	}
	st := d.StatsSnapshot()
	if st.Calls != 1 || st.TuplesReturned != 2 {
		t.Errorf("stats must forward to the inner meters: %+v", st)
	}
	if st.LatencyCalls != 1 || st.TotalLatency != 5*time.Second || st.MaxLatency != 5*time.Second || st.EWMALatency != 5*time.Second {
		t.Errorf("delayed call must meter its end-to-end virtual latency: %+v", st)
	}
}

func TestDelayedLatencyAggregates(t *testing.T) {
	tab := delayedTable(t)
	d, clk := virtualDelayed(tab, 2*time.Second)
	for i := 0; i < 3; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := d.Call("o", nil)
			done <- err
		}()
		if !clk.AwaitSleepers(1, 5*time.Second) {
			t.Fatal("call never parked in the virtual sleep")
		}
		clk.Advance(2 * time.Second)
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := d.StatsSnapshot()
	if st.LatencyCalls != 3 || st.TotalLatency != 6*time.Second || st.MaxLatency != 2*time.Second {
		t.Errorf("latency aggregates = %+v", st)
	}
	if st.MeanLatency() != 2*time.Second {
		t.Errorf("MeanLatency = %v, want 2s", st.MeanLatency())
	}
	if st.EWMALatency != 2*time.Second {
		t.Errorf("EWMA over constant samples must be the constant: %v", st.EWMALatency)
	}
	d.ResetStats()
	if st := d.StatsSnapshot(); st.Calls != 0 || st.LatencyCalls != 0 || st.EWMALatency != 0 {
		t.Errorf("ResetStats must clear the latency overlay: %+v", st)
	}
}

func TestDelayedHonorsCancellation(t *testing.T) {
	tab := delayedTable(t)
	d, clk := virtualDelayed(tab, time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := d.CallContext(ctx, "o", nil)
		done <- err
	}()
	if !clk.AwaitSleepers(1, 5*time.Second) {
		t.Fatal("call never parked in the virtual sleep")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call did not return")
	}
	st := d.StatsSnapshot()
	if st.Calls != 0 {
		t.Errorf("abandoned call must not reach the inner source: %+v", st)
	}
	if st.LatencyCalls != 0 {
		t.Errorf("abandoned call must not be metered as latency: %+v", st)
	}
	if clk.Sleepers() != 0 {
		t.Errorf("cancelled sleeper must deregister, have %d", clk.Sleepers())
	}
}

func TestDelayedCatalogWrapsEverySource(t *testing.T) {
	tab := delayedTable(t)
	cat, err := NewCatalog(tab)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := DelayedCatalog(cat, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range wrapped.Names() {
		if _, ok := wrapped.Source(name).(*Delayed); !ok {
			t.Errorf("source %s is not delayed", name)
		}
	}
	if _, err := wrapped.Source("R").Call("o", nil); err != nil {
		t.Fatal(err)
	}
	if st := wrapped.TotalStats(); st.Calls != 1 {
		t.Errorf("wrapped catalog must meter inner traffic: %+v", st)
	}
}
