package sources

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
)

// ErrReplicasExhausted marks a call that failed on every replica of a
// replica set. Like ErrBreakerOpen it is the signature of a *terminal*
// condition for degraded execution — a rule degrades to a partial
// answer only when all replicas of a needed source are down — but the
// error additionally satisfies IsTransient when any member failure was
// transient, so the retry policy still gets a shot at a set that merely
// blipped everywhere at once.
var ErrReplicasExhausted = errors.New("sources: all replicas exhausted")

// ReplicasError reports a call that failed on every replica it tried.
// It unwraps to the member errors (so errors.Is/As see through it) and
// matches ErrReplicasExhausted.
type ReplicasError struct {
	Source string   // relation name
	Tried  []string // replica labels in the order they were tried
	Errs   []error  // the corresponding failures
}

// Error implements error.
func (e *ReplicasError) Error() string {
	last := "no replicas"
	if len(e.Errs) > 0 {
		last = e.Errs[len(e.Errs)-1].Error()
	}
	return fmt.Sprintf("sources: %s: all %d replicas exhausted (last: %s)", e.Source, len(e.Errs), last)
}

// Unwrap exposes the member errors to errors.Is/As.
func (e *ReplicasError) Unwrap() []error { return e.Errs }

// Is matches ErrReplicasExhausted.
func (e *ReplicasError) Is(target error) bool { return target == ErrReplicasExhausted }

// ReplicaHealth is the router-facing health snapshot of one replica.
type ReplicaHealth struct {
	Replica     string        // replica label, e.g. "R#1"
	State       BreakerState  // quarantine position
	Calls       int           // completed calls observed
	Failures    int           // failed completed calls
	FailureRate float64       // failures over the sliding outcome window
	EWMALatency time.Duration // moving average call latency
}

// RoutingPolicy orders a replica set's members for the next call.
type RoutingPolicy interface {
	// Rank returns the order in which replicas should be tried: a
	// permutation of the indices of h. tick increments once per routed
	// call, for policies that spread load. An invalid permutation is
	// ignored and replaced by declaration order.
	Rank(tick uint64, h []ReplicaHealth) []int
}

// HealthiestFirst is the default routing policy: replicas are ranked by
// a health score combining EWMA latency and sliding-window failure
// rate, quarantined (breaker-open) replicas sort last, and replicas
// whose scores are within a tolerance band of the best rotate
// round-robin so load spreads across equally healthy members. Untried
// replicas score best, so fresh members are probed immediately.
type HealthiestFirst struct {
	// Tolerance widens the rotation band: a replica joins it when its
	// score is within Tolerance× the best score. 0 means 1.5.
	Tolerance float64
}

func healthScore(h ReplicaHealth) float64 {
	return float64(h.EWMALatency+1) * (1 + 4*h.FailureRate)
}

// Rank implements RoutingPolicy.
func (p HealthiestFirst) Rank(tick uint64, h []ReplicaHealth) []int {
	tol := p.Tolerance
	if tol == 0 {
		tol = 1.5
	}
	avail, quarantined := splitQuarantined(h)
	less := func(a, b int) bool { return healthScore(h[a]) < healthScore(h[b]) }
	sort.SliceStable(avail, func(i, j int) bool { return less(avail[i], avail[j]) })
	sort.SliceStable(quarantined, func(i, j int) bool { return less(quarantined[i], quarantined[j]) })
	band := 0
	if len(avail) > 0 {
		best := healthScore(h[avail[0]])
		band = 1
		for band < len(avail) && healthScore(h[avail[band]]) <= best*tol {
			band++
		}
	}
	out := make([]int, 0, len(h))
	for i := 0; i < band; i++ {
		out = append(out, avail[(int(tick%uint64(band))+i)%band])
	}
	out = append(out, avail[band:]...)
	return append(out, quarantined...)
}

// RoundRobin rotates through non-quarantined replicas regardless of
// latency; quarantined replicas still sort last.
type RoundRobin struct{}

// Rank implements RoutingPolicy.
func (RoundRobin) Rank(tick uint64, h []ReplicaHealth) []int {
	avail, quarantined := splitQuarantined(h)
	out := make([]int, 0, len(h))
	if n := len(avail); n > 0 {
		off := int(tick % uint64(n))
		for i := 0; i < n; i++ {
			out = append(out, avail[(off+i)%n])
		}
	}
	return append(out, quarantined...)
}

func splitQuarantined(h []ReplicaHealth) (avail, quarantined []int) {
	for i := range h {
		if h[i].State == BreakerOpen {
			quarantined = append(quarantined, i)
		} else {
			avail = append(avail, i)
		}
	}
	return avail, quarantined
}

// ReplicaConfig tunes a ReplicaSet. The zero value gets sensible
// defaults (HealthiestFirst routing, window 64, default breaker).
type ReplicaConfig struct {
	// Breaker configures the per-replica quarantine breaker. Its Now
	// hook defaults to ReplicaConfig.Now when unset.
	Breaker BreakerConfig
	// Policy orders replicas per call. nil means HealthiestFirst{}.
	Policy RoutingPolicy
	// Window sizes the per-replica sliding outcome and latency sample
	// windows. 0 means 64.
	Window int
	// Alpha is the EWMA smoothing factor. 0 means DefaultEWMAAlpha.
	Alpha float64
	// Now is the clock used for latency measurement; nil means time.Now.
	Now func() time.Time
}

func (c ReplicaConfig) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 64
}

func (c ReplicaConfig) alpha() float64 {
	if c.Alpha > 0 {
		return c.Alpha
	}
	return DefaultEWMAAlpha
}

// ReplicaSet fronts N equivalent replicas of one relation behind the
// ordinary Source interface. A plain call routes to the healthiest
// replica (per the configured policy) and fails over down the ranking
// until one succeeds; each replica sits behind its own circuit breaker,
// so a repeatedly failing replica is quarantined (and later probed)
// exactly like a failing source, without poisoning its siblings. The
// engine's hedged-request path drives replicas individually through
// Ranked/CallReplica. The call fails only when every replica failed,
// with a ReplicasError recording which replica set exhausted.
//
// StatsSnapshot sums the replicas' own metered traffic, so a catalog of
// replica sets still reports the real remote traffic. It is safe for
// concurrent use.
type ReplicaSet struct {
	name     string
	arity    int
	patterns []access.Pattern
	declared map[access.Pattern]bool
	cfg      ReplicaConfig
	policy   RoutingPolicy
	replicas []*replicaState
	tick     atomic.Uint64
}

type replicaState struct {
	label string
	src   Source
	brk   *Breaker

	mu       sync.Mutex
	calls    int
	failures int
	outcomes []bool // ring of recent outcomes; true = failure
	next     int
	filled   int
	fails    int
	ewma     time.Duration
	ewmaN    int
	lats     []time.Duration // ring of recent latencies (for percentiles)
	latNext  int
	latFill  int
}

// NewReplicaSet fronts the given replicas, which must agree on name,
// arity, and declared pattern set.
func NewReplicaSet(cfg ReplicaConfig, replicas ...Source) (*ReplicaSet, error) {
	if len(replicas) == 0 {
		return nil, errors.New("sources: replica set needs at least one replica")
	}
	first := replicas[0]
	rs := &ReplicaSet{
		name:     first.Name(),
		arity:    first.Arity(),
		patterns: first.Patterns(),
		declared: map[access.Pattern]bool{},
		cfg:      cfg,
		policy:   cfg.Policy,
	}
	if rs.policy == nil {
		rs.policy = HealthiestFirst{}
	}
	for _, p := range rs.patterns {
		rs.declared[p] = true
	}
	bcfg := cfg.Breaker
	if bcfg.Now == nil {
		bcfg.Now = cfg.Now
	}
	for i, src := range replicas {
		if src.Name() != rs.name || src.Arity() != rs.arity {
			return nil, fmt.Errorf("sources: replica %d is %s/%d, want %s/%d", i, src.Name(), src.Arity(), rs.name, rs.arity)
		}
		if !samePatternSet(src.Patterns(), rs.declared) {
			return nil, fmt.Errorf("sources: replica %d of %s declares patterns %v, want %v", i, rs.name, src.Patterns(), rs.patterns)
		}
		rs.replicas = append(rs.replicas, &replicaState{
			label:    fmt.Sprintf("%s#%d", rs.name, i),
			src:      src,
			brk:      NewBreaker(src, bcfg),
			outcomes: make([]bool, cfg.window()),
			lats:     make([]time.Duration, cfg.window()),
		})
	}
	return rs, nil
}

func samePatternSet(ps []access.Pattern, declared map[access.Pattern]bool) bool {
	if len(ps) != len(declared) {
		return false
	}
	seen := map[access.Pattern]bool{}
	for _, p := range ps {
		if !declared[p] || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// Name implements Source.
func (rs *ReplicaSet) Name() string { return rs.name }

// Arity implements Source.
func (rs *ReplicaSet) Arity() int { return rs.arity }

// Patterns implements Source.
func (rs *ReplicaSet) Patterns() []access.Pattern {
	return append([]access.Pattern(nil), rs.patterns...)
}

// Replicas returns the number of replicas in the set.
func (rs *ReplicaSet) Replicas() int { return len(rs.replicas) }

// ReplicaLabel returns the display label of replica idx ("name#idx").
func (rs *ReplicaSet) ReplicaLabel(idx int) string { return rs.replicas[idx].label }

// Breaker returns replica idx's quarantine breaker (for tests and
// diagnostics).
func (rs *ReplicaSet) Breaker(idx int) *Breaker { return rs.replicas[idx].brk }

func (rs *ReplicaSet) now() time.Time {
	if rs.cfg.Now != nil {
		return rs.cfg.Now()
	}
	return time.Now()
}

// checkContract validates the pattern and input count once up front, so
// a contract violation — identical on every replica by construction —
// never burns replica calls failing over.
func (rs *ReplicaSet) checkContract(p access.Pattern, inputs []string) error {
	if !rs.declared[p] {
		return fmt.Errorf("sources: replica set %s does not support pattern %s (has %v)", rs.name, p, rs.patterns)
	}
	if len(inputs) != p.InputCount() {
		return fmt.Errorf("sources: call to %s^%s with %d inputs, want %d", rs.name, p, len(inputs), p.InputCount())
	}
	return nil
}

// Ranked returns the order in which replicas should be tried right now,
// per the routing policy over fresh health snapshots.
func (rs *ReplicaSet) Ranked() []int {
	h := make([]ReplicaHealth, len(rs.replicas))
	for i, r := range rs.replicas {
		h[i] = r.health()
	}
	order := rs.policy.Rank(rs.tick.Add(1)-1, h)
	if !validPermutation(order, len(h)) {
		order = make([]int, len(h))
		for i := range order {
			order[i] = i
		}
	}
	return order
}

func validPermutation(order []int, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, i := range order {
		if i < 0 || i >= n || seen[i] {
			return false
		}
		seen[i] = true
	}
	return true
}

// CallReplica invokes one specific replica through its quarantine
// breaker and feeds the outcome into that replica's health tracking.
// The engine's hedged-request path uses it to race replicas directly.
func (rs *ReplicaSet) CallReplica(ctx context.Context, idx int, p access.Pattern, inputs []string) ([]Tuple, error) {
	if idx < 0 || idx >= len(rs.replicas) {
		return nil, fmt.Errorf("sources: replica set %s has no replica %d", rs.name, idx)
	}
	r := rs.replicas[idx]
	start := rs.now()
	rows, err := r.brk.CallContext(ctx, p, inputs)
	r.observe(rs.now().Sub(start), err, rs.cfg.alpha())
	return rows, err
}

// observe records one completed call into the replica's health state.
// Caller cancellations are not replica failures and breaker fast-fails
// never reached the replica (and would record a misleading ~0 latency),
// so both are skipped; a deadline expiry counts, with its observed
// latency — a hung replica is a slow, failing replica.
func (r *replicaState) observe(el time.Duration, err error, alpha float64) {
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, ErrBreakerOpen)) {
		return
	}
	failed := err != nil
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	if failed {
		r.failures++
	}
	if r.filled == len(r.outcomes) {
		if r.outcomes[r.next] {
			r.fails--
		}
	} else {
		r.filled++
	}
	r.outcomes[r.next] = failed
	if failed {
		r.fails++
	}
	r.next = (r.next + 1) % len(r.outcomes)
	r.ewmaN++
	if r.ewmaN == 1 {
		r.ewma = el
	} else {
		r.ewma = ewma(r.ewma, el, alpha)
	}
	r.lats[r.latNext] = el
	r.latNext = (r.latNext + 1) % len(r.lats)
	if r.latFill < len(r.lats) {
		r.latFill++
	}
}

func (r *replicaState) health() ReplicaHealth {
	st := r.brk.State()
	r.mu.Lock()
	defer r.mu.Unlock()
	fr := 0.0
	if r.filled > 0 {
		fr = float64(r.fails) / float64(r.filled)
	}
	return ReplicaHealth{
		Replica:     r.label,
		State:       st,
		Calls:       r.calls,
		Failures:    r.failures,
		FailureRate: fr,
		EWMALatency: r.ewma,
	}
}

// Call implements Source.
func (rs *ReplicaSet) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	return rs.CallContext(context.Background(), p, inputs)
}

// CallContext implements ContextSource: it tries replicas in ranked
// order, returning the first success. A caller cancellation stops the
// failover immediately with the cancelled attempt's error; if every
// replica fails, the combined failure is a ReplicasError.
func (rs *ReplicaSet) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]Tuple, error) {
	if err := rs.checkContract(p, inputs); err != nil {
		return nil, err
	}
	order := rs.Ranked()
	tried := make([]int, 0, len(order))
	errs := make([]error, 0, len(order))
	for _, idx := range order {
		rows, err := rs.CallReplica(ctx, idx, p, inputs)
		if err == nil {
			return rows, nil
		}
		tried = append(tried, idx)
		errs = append(errs, err)
		if ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, rs.ExhaustedError(tried, errs)
}

// BatchCapable reports whether every replica genuinely batches —
// failover may route a batch to any member, so one per-binding replica
// makes the whole set per-binding.
func (rs *ReplicaSet) BatchCapable() bool {
	for _, r := range rs.replicas {
		if !IsBatchCapable(r.src) {
			return false
		}
	}
	return true
}

// CallBatchReplica sends one batch to one specific replica through its
// quarantine breaker, feeding the outcome into that replica's health
// tracking exactly like CallReplica.
func (rs *ReplicaSet) CallBatchReplica(ctx context.Context, idx int, p access.Pattern, inputs [][]string) ([][]Tuple, error) {
	if idx < 0 || idx >= len(rs.replicas) {
		return nil, fmt.Errorf("sources: replica set %s has no replica %d", rs.name, idx)
	}
	r := rs.replicas[idx]
	start := rs.now()
	groups, err := r.brk.CallBatch(ctx, p, inputs)
	r.observe(rs.now().Sub(start), err, rs.cfg.alpha())
	return groups, err
}

// CallBatch implements BatchSource: the whole group fails over down the
// ranked replica order as a unit, so batched and per-binding calls see
// the same failure classes (ReplicasError on exhaustion).
func (rs *ReplicaSet) CallBatch(ctx context.Context, p access.Pattern, inputs [][]string) ([][]Tuple, error) {
	for _, in := range inputs {
		if err := rs.checkContract(p, in); err != nil {
			return nil, err
		}
	}
	order := rs.Ranked()
	tried := make([]int, 0, len(order))
	errs := make([]error, 0, len(order))
	for _, idx := range order {
		groups, err := rs.CallBatchReplica(ctx, idx, p, inputs)
		if err == nil {
			return groups, nil
		}
		tried = append(tried, idx)
		errs = append(errs, err)
		if ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, rs.ExhaustedError(tried, errs)
}

// ExhaustedError builds the error for a call that failed on the listed
// replicas (errs[i] belongs to replica tried[i]). The engine's hedged
// call path uses it so hedged and sequential-failover failures classify
// identically downstream.
func (rs *ReplicaSet) ExhaustedError(tried []int, errs []error) error {
	e := &ReplicasError{Source: rs.name, Errs: errs}
	for _, idx := range tried {
		e.Tried = append(e.Tried, rs.replicas[idx].label)
	}
	return e
}

// ObservedLatency returns the q-quantile (0 < q <= 1) of recent call
// latencies pooled across all replicas, and whether enough samples
// exist (at least 8) for it to be meaningful. The engine derives
// percentile-based hedge delays from it.
func (rs *ReplicaSet) ObservedLatency(q float64) (time.Duration, bool) {
	var pool []time.Duration
	for _, r := range rs.replicas {
		r.mu.Lock()
		pool = append(pool, r.lats[:r.latFill]...)
		r.mu.Unlock()
	}
	if len(pool) < 8 {
		return 0, false
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i] < pool[j] })
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(pool)-1))
	return pool[idx], true
}

// ReplicaStats is the per-replica health and traffic breakdown.
type ReplicaStats struct {
	Replica     string        // replica label
	State       BreakerState  // quarantine position
	Calls       int           // completed calls observed by the router
	Failures    int           // failed completed calls
	FailureRate float64       // failures over the sliding window
	EWMALatency time.Duration // moving average call latency
	Trips       int           // quarantine breaker trips
	Rejected    int           // calls fast-failed while quarantined
	Traffic     Stats         // the replica's own metered traffic
}

// ReplicaStats returns the health and traffic breakdown of every
// replica, in declaration order.
func (rs *ReplicaSet) ReplicaStats() []ReplicaStats {
	out := make([]ReplicaStats, len(rs.replicas))
	for i, r := range rs.replicas {
		h := r.health()
		out[i] = ReplicaStats{
			Replica:     h.Replica,
			State:       h.State,
			Calls:       h.Calls,
			Failures:    h.Failures,
			FailureRate: h.FailureRate,
			EWMALatency: h.EWMALatency,
			Trips:       r.brk.Trips(),
			Rejected:    r.brk.Rejected(),
			Traffic:     r.brk.StatsSnapshot(),
		}
	}
	return out
}

// StatsSnapshot implements StatsReporter: the sum of the replicas' own
// metered traffic (each replica's breaker forwards to the replica), so
// a catalog of replica sets reports the real remote traffic.
func (rs *ReplicaSet) StatsSnapshot() Stats {
	var total Stats
	for _, r := range rs.replicas {
		total.Add(r.brk.StatsSnapshot())
	}
	return total
}

// ResetStats implements StatsReporter by forwarding to every replica.
// Routing health (EWMA, failure windows, breaker state) is measurement
// state of the set itself and survives; use ResetHealth to clear it.
func (rs *ReplicaSet) ResetStats() {
	for _, r := range rs.replicas {
		r.brk.ResetStats()
	}
}

// ResetHealth clears every replica's health tracking and force-closes
// its quarantine breaker.
func (rs *ReplicaSet) ResetHealth() {
	for _, r := range rs.replicas {
		r.brk.Reset()
		r.mu.Lock()
		r.calls, r.failures = 0, 0
		for i := range r.outcomes {
			r.outcomes[i] = false
		}
		r.next, r.filled, r.fails = 0, 0, 0
		r.ewma, r.ewmaN = 0, 0
		r.latNext, r.latFill = 0, 0
		r.mu.Unlock()
	}
}

// ReplicaCatalog zips N same-schema catalogs into one catalog of
// replica sets: relation R's source in each catalog becomes one replica
// of R. It returns the combined catalog and the replica-set handles,
// indexed like cat.Names().
func ReplicaCatalog(cfg ReplicaConfig, cats ...*Catalog) (*Catalog, []*ReplicaSet, error) {
	if len(cats) == 0 {
		return nil, nil, errors.New("sources: ReplicaCatalog needs at least one catalog")
	}
	names := cats[0].Names()
	for ci, c := range cats[1:] {
		if got := c.Names(); len(got) != len(names) {
			return nil, nil, fmt.Errorf("sources: replica catalog %d has %d relations, want %d", ci+1, len(got), len(names))
		}
	}
	var srcs []Source
	var sets []*ReplicaSet
	for _, n := range names {
		var reps []Source
		for ci, c := range cats {
			s := c.Source(n)
			if s == nil {
				return nil, nil, fmt.Errorf("sources: replica catalog %d is missing relation %s", ci, n)
			}
			reps = append(reps, s)
		}
		rs, err := NewReplicaSet(cfg, reps...)
		if err != nil {
			return nil, nil, err
		}
		srcs = append(srcs, rs)
		sets = append(sets, rs)
	}
	cat, err := NewCatalog(srcs...)
	if err != nil {
		return nil, nil, err
	}
	return cat, sets, nil
}
