package sources

import (
	"strings"
	"sync"

	"repro/internal/access"
)

// Cached wraps a Source with a call cache: repeated calls with the same
// pattern and inputs are served locally. Mediator plans join through
// remote services, so the same lookup is often issued once per binding;
// caching converts that to one remote call. The wrapper is safe for
// concurrent use and exposes hit/miss counters.
type Cached struct {
	inner Source

	mu     sync.Mutex
	cache  map[string][]Tuple
	hits   int
	misses int
}

// NewCached wraps src with a cache.
func NewCached(src Source) *Cached {
	return &Cached{inner: src, cache: map[string][]Tuple{}}
}

// Name implements Source.
func (c *Cached) Name() string { return c.inner.Name() }

// Arity implements Source.
func (c *Cached) Arity() int { return c.inner.Arity() }

// Patterns implements Source.
func (c *Cached) Patterns() []access.Pattern { return c.inner.Patterns() }

// Call implements Source, consulting the cache first. Errors are not
// cached (a bad pattern stays an error on every call).
func (c *Cached) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	key := string(p) + "\x00" + strings.Join(inputs, "\x1f")
	c.mu.Lock()
	if rows, ok := c.cache[key]; ok {
		c.hits++
		c.mu.Unlock()
		return copyTuples(rows), nil
	}
	c.mu.Unlock()
	rows, err := c.inner.Call(p, inputs)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.misses++
	c.cache[key] = copyTuples(rows)
	c.mu.Unlock()
	return rows, nil
}

func copyTuples(rows []Tuple) []Tuple {
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = append(Tuple(nil), r...)
	}
	return out
}

// HitsMisses returns the cache counters.
func (c *Cached) HitsMisses() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Reset clears the cache and counters (call after the underlying data
// changes).
func (c *Cached) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache = map[string][]Tuple{}
	c.hits, c.misses = 0, 0
}

// CachedCatalog wraps every source of a catalog with a cache.
func CachedCatalog(cat *Catalog) (*Catalog, []*Cached, error) {
	var wrapped []Source
	var caches []*Cached
	for _, name := range cat.Names() {
		c := NewCached(cat.Source(name))
		wrapped = append(wrapped, c)
		caches = append(caches, c)
	}
	out, err := NewCatalog(wrapped...)
	if err != nil {
		return nil, nil, err
	}
	return out, caches, nil
}
