package sources

import (
	"container/list"
	"context"
	"errors"
	"strings"
	"sync"

	"repro/internal/access"
)

// Cached wraps a Source with a call cache: repeated calls with the same
// pattern and inputs are served locally. Mediator plans join through
// remote services, so the same lookup is often issued once per binding;
// caching converts that to one remote call. The wrapper is safe for
// concurrent use and exposes hit/miss/eviction counters.
//
// Concurrent misses on the same key are collapsed into a single inner
// call (singleflight): the first caller fetches, the others wait for its
// result. Followers are counted as hits — they were served without
// inner traffic — so misses counts exactly the inner calls made.
//
// A capacity (NewCachedWithCapacity) bounds the number of cached keys
// with least-recently-used eviction; serving workloads otherwise grow
// the call cache without limit. Zero capacity means unbounded.
type Cached struct {
	inner    Source
	capacity int // 0 = unbounded

	mu        sync.Mutex
	cache     map[string]*list.Element // key -> element in lru
	lru       *list.List               // of *cacheEntry; front = most recently used
	inflight  map[string]*flight
	gen       int // bumped by Reset; fetches from an old generation are not installed
	hits      int
	misses    int
	evictions int
}

// cacheEntry is one cached key with its rows.
type cacheEntry struct {
	key  string
	rows []Tuple
}

// flight is one in-progress inner fetch that concurrent callers of the
// same key wait on.
type flight struct {
	done chan struct{}
	rows []Tuple
	err  error
}

// NewCached wraps src with an unbounded cache.
func NewCached(src Source) *Cached {
	return NewCachedWithCapacity(src, 0)
}

// NewCachedWithCapacity wraps src with a cache of at most maxEntries
// keys, evicting the least recently used key when full. A maxEntries of
// zero (or negative) means unbounded.
func NewCachedWithCapacity(src Source, maxEntries int) *Cached {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &Cached{
		inner:    src,
		capacity: maxEntries,
		cache:    map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*flight{},
	}
}

// Name implements Source.
func (c *Cached) Name() string { return c.inner.Name() }

// Arity implements Source.
func (c *Cached) Arity() int { return c.inner.Arity() }

// Patterns implements Source.
func (c *Cached) Patterns() []access.Pattern { return c.inner.Patterns() }

// Call implements Source, consulting the cache first. Errors are not
// cached (a bad pattern stays an error on every call).
func (c *Cached) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	return c.CallContext(context.Background(), p, inputs)
}

// CallContext implements ContextSource. A caller waiting on another
// goroutine's in-flight fetch of the same key stops waiting when its
// own context is cancelled; the fetch itself runs under the leader's
// context.
//
// A leader whose fetch died of its *own* context's cancellation must
// not poison the followers: their contexts may be perfectly live (one
// query's caller hanging up says nothing about the others), so such a
// follower loops back and retries — re-checking the cache, joining a
// newer flight, or becoming the new leader and fetching under its own
// context. Real source failures still propagate to every waiter
// unchanged.
func (c *Cached) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]Tuple, error) {
	key := string(p) + "\x00" + strings.Join(inputs, "\x1f")
	for {
		c.mu.Lock()
		if elem, ok := c.cache[key]; ok {
			c.hits++
			c.lru.MoveToFront(elem)
			rows := elem.Value.(*cacheEntry).rows
			c.mu.Unlock()
			return copyTuples(rows), nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if f.err != nil {
				if isContextError(f.err) && ctx.Err() == nil {
					continue // leader hung up, we did not: take over
				}
				return nil, f.err
			}
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return copyTuples(f.rows), nil
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		gen := c.gen
		c.mu.Unlock()

		rows, err := CallWithContext(ctx, c.inner, p, inputs)

		c.mu.Lock()
		if err != nil {
			f.err = err
		} else {
			f.rows = copyTuples(rows)
			if gen == c.gen {
				c.misses++
				c.install(key, f.rows)
			}
		}
		if gen == c.gen {
			delete(c.inflight, key)
		}
		c.mu.Unlock()
		close(f.done)
		if err != nil {
			return nil, err
		}
		return rows, nil
	}
}

// BatchCapable reports whether the wrapped source genuinely batches;
// the cache layer itself adds no round trips either way.
func (c *Cached) BatchCapable() bool { return IsBatchCapable(c.inner) }

// CallBatch implements BatchSource: cached keys are answered locally
// and only the misses travel to the inner source, as one inner batch.
// Keys already being fetched by another goroutine are joined through
// the per-key singleflight path rather than fetched again. Any failure
// fails the whole batch (the caller falls back to per-vector calls).
func (c *Cached) CallBatch(ctx context.Context, p access.Pattern, inputs [][]string) ([][]Tuple, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]Tuple, len(inputs))
	var joined []int // indexes delegated to CallContext (flight in progress)
	var missKeys []string
	var missInputs [][]string
	pending := map[string][]int{}   // miss key -> batch indexes waiting on it
	flights := map[string]*flight{} // miss key -> flight we registered

	c.mu.Lock()
	for i, in := range inputs {
		key := string(p) + "\x00" + strings.Join(in, "\x1f")
		if idxs, ok := pending[key]; ok { // duplicate within the batch
			pending[key] = append(idxs, i)
			continue
		}
		if elem, ok := c.cache[key]; ok {
			c.hits++
			c.lru.MoveToFront(elem)
			out[i] = copyTuples(elem.Value.(*cacheEntry).rows)
			continue
		}
		if _, ok := c.inflight[key]; ok {
			joined = append(joined, i)
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[key] = f
		flights[key] = f
		pending[key] = []int{i}
		missKeys = append(missKeys, key)
		missInputs = append(missInputs, in)
	}
	gen := c.gen
	c.mu.Unlock()

	var groups [][]Tuple
	var err error
	if len(missInputs) > 0 {
		groups, err = CallBatchWithContext(ctx, c.inner, p, missInputs)
	}
	c.mu.Lock()
	for k, key := range missKeys {
		f := flights[key]
		if err != nil {
			f.err = err
		} else {
			f.rows = copyTuples(groups[k])
			if gen == c.gen {
				c.misses++
				c.install(key, f.rows)
			}
		}
		if gen == c.gen {
			delete(c.inflight, key)
		}
	}
	c.mu.Unlock()
	for _, f := range flights {
		close(f.done)
	}
	if err != nil {
		return nil, err
	}
	for k, key := range missKeys {
		for _, i := range pending[key] {
			out[i] = copyTuples(groups[k])
		}
	}
	// Keys another goroutine was already fetching go through the normal
	// singleflight wait (which also handles a leader dying of its own
	// context's cancellation).
	for _, i := range joined {
		rows, err := c.CallContext(ctx, p, inputs[i])
		if err != nil {
			return nil, err
		}
		out[i] = rows
	}
	return out, nil
}

// isContextError reports whether err is a context cancellation or
// deadline expiry — the error classes that belong to one caller's
// context rather than to the source.
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// install adds a fetched key to the cache and evicts past capacity;
// c.mu must be held.
func (c *Cached) install(key string, rows []Tuple) {
	c.cache[key] = c.lru.PushFront(&cacheEntry{key: key, rows: rows})
	if c.capacity <= 0 {
		return
	}
	for c.lru.Len() > c.capacity {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.cache, back.Value.(*cacheEntry).key)
		c.evictions++
	}
}

func copyTuples(rows []Tuple) []Tuple {
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = append(Tuple(nil), r...)
	}
	return out
}

// HitsMisses returns the cache counters.
func (c *Cached) HitsMisses() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions returns the number of keys evicted by the capacity bound.
func (c *Cached) Evictions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Reset clears the cache and counters (call after the underlying data
// changes). In-flight fetches complete against the old generation; their
// results are not installed into the fresh cache.
func (c *Cached) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache = map[string]*list.Element{}
	c.lru = list.New()
	c.inflight = map[string]*flight{}
	c.gen++
	c.hits, c.misses, c.evictions = 0, 0, 0
}

// StatsSnapshot implements StatsReporter by forwarding to the wrapped
// source, so catalogs of cached sources report the real remote traffic.
// Wrapping a source that does not meter reports zero.
func (c *Cached) StatsSnapshot() Stats {
	if r, ok := c.inner.(StatsReporter); ok {
		return r.StatsSnapshot()
	}
	return Stats{}
}

// ResetStats implements StatsReporter by forwarding to the wrapped
// source.
func (c *Cached) ResetStats() {
	if r, ok := c.inner.(StatsReporter); ok {
		r.ResetStats()
	}
}

// CachedCatalog wraps every source of a catalog with a cache.
func CachedCatalog(cat *Catalog) (*Catalog, []*Cached, error) {
	var wrapped []Source
	var caches []*Cached
	for _, name := range cat.Names() {
		c := NewCached(cat.Source(name))
		wrapped = append(wrapped, c)
		caches = append(caches, c)
	}
	out, err := NewCatalog(wrapped...)
	if err != nil {
		return nil, nil, err
	}
	return out, caches, nil
}
