package sources

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
)

// fakeClock is a manually advanced clock for stepping a Breaker through
// its open → half-open transition without sleeping.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func breakerUnderTest(t *testing.T) (*Breaker, *Flaky, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	// Flaky with FailEveryN=1 fails every call: a permanently dead source.
	f := NewFlaky(bookTable(t), FlakyConfig{FailEveryN: 1})
	b := NewBreaker(f, BreakerConfig{Window: 4, Threshold: 3, Cooldown: time.Second, Now: clk.Now})
	return b, f, clk
}

func TestBreakerOpensAfterThresholdAndFailsFast(t *testing.T) {
	b, f, _ := breakerUnderTest(t)
	if b.Name() != "B" || b.Arity() != 3 || len(b.Patterns()) != 2 {
		t.Error("wrapper must forward metadata")
	}
	for i := 0; i < 3; i++ {
		if b.State() != BreakerClosed {
			t.Fatalf("call %d: state = %v, want closed", i+1, b.State())
		}
		if _, err := b.Call("ioo", []string{"i1"}); err == nil || errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("call %d: err = %v, want the inner failure", i+1, err)
		}
	}
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state = %v trips = %d, want open after threshold failures", b.State(), b.Trips())
	}
	// Open circuit: fast fail, inner source untouched.
	before := f.Injected()
	for i := 0; i < 10; i++ {
		_, err := b.Call("ioo", []string{"i1"})
		if !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("open call %d: err = %v, want ErrBreakerOpen", i+1, err)
		}
		if IsTransient(err) {
			t.Fatal("breaker rejections must be terminal, not transient")
		}
	}
	if f.Injected() != before {
		t.Errorf("open circuit reached the inner source: %d → %d calls", before, f.Injected())
	}
	if b.Rejected() != 10 {
		t.Errorf("rejected = %d, want 10", b.Rejected())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, f, clk := breakerUnderTest(t)
	for i := 0; i < 3; i++ {
		b.Call("ioo", []string{"i1"})
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	clk.Advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("after cooldown state = %v, want half-open", b.State())
	}
	// The probe reaches the (still dead) source and re-opens the circuit.
	inner := f.Injected()
	if _, err := b.Call("ioo", []string{"i1"}); errors.Is(err, ErrBreakerOpen) || err == nil {
		t.Fatalf("probe err = %v, want the inner failure", err)
	}
	if f.Injected() != inner+1 {
		t.Errorf("probe must reach the inner source exactly once: %d → %d", inner, f.Injected())
	}
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state = %v trips = %d, want re-opened", b.State(), b.Trips())
	}
	// Source recovers; the next probe closes the circuit for good.
	f.ResetSchedule()
	f.cfg = FlakyConfig{} // healthy from here on
	clk.Advance(time.Second)
	rows, err := b.Call("ioo", []string{"i1"})
	if err != nil || len(rows) != 1 {
		t.Fatalf("recovery probe: rows=%v err=%v", rows, err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
	// The window was reset: one new failure must not re-open it.
	f.cfg = FlakyConfig{FailEveryN: 1}
	b.Call("ioo", []string{"i1"})
	if b.State() != BreakerClosed {
		t.Error("a single failure after reset must not trip a threshold-3 breaker")
	}
}

func TestBreakerIgnoresCallerCancellation(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	b := NewBreaker(bookTable(t), BreakerConfig{Window: 4, Threshold: 2, Now: clk.Now})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 8; i++ {
		if _, err := b.CallContext(ctx, "ioo", []string{"i1"}); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	}
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Errorf("caller cancellations tripped the breaker: state=%v trips=%d", b.State(), b.Trips())
	}
}

func TestBreakerCountsDeadlineExpiryAsFailure(t *testing.T) {
	// A hung source under a per-call deadline: DeadlineExceeded outcomes
	// must count toward opening the circuit.
	clk := &fakeClock{now: time.Unix(1000, 0)}
	hung := NewFlaky(bookTable(t), FlakyConfig{FailEveryN: 1, Hang: true})
	b := NewBreaker(hung, BreakerConfig{Window: 4, Threshold: 2, Now: clk.Now})
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err := b.CallContext(ctx, "ioo", []string{"i1"})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want DeadlineExceeded from the hung call", err)
		}
	}
	if b.State() != BreakerOpen {
		t.Errorf("state = %v, want open: hung calls are failures", b.State())
	}
}

func TestBreakerStatsForwardAndReset(t *testing.T) {
	tbl := MustTable("R", 2, []access.Pattern{"io"}, []Tuple{{"k", "v"}})
	b := NewBreaker(tbl, BreakerConfig{})
	if _, err := b.Call("io", []string{"k"}); err != nil {
		t.Fatal(err)
	}
	if st := b.StatsSnapshot(); st.Calls != 1 || st.TuplesReturned != 1 {
		t.Errorf("forwarded stats = %+v, want the inner table's traffic", st)
	}
	cat := MustCatalog(b)
	if st := cat.TotalStats(); st.Calls != 1 {
		t.Errorf("TotalStats through Breaker(Table) = %+v", st)
	}
	b.ResetStats()
	if st := tbl.StatsSnapshot(); st.Calls != 0 {
		t.Errorf("ResetStats must reach the inner table: %+v", st)
	}
	b.Reset()
	if b.State() != BreakerClosed || b.Trips() != 0 || b.Rejected() != 0 {
		t.Error("Reset must clear the circuit")
	}
}

func TestBreakerCatalogWrapsEverySource(t *testing.T) {
	r := MustTable("R", 1, []access.Pattern{"o"}, []Tuple{{"a"}})
	s := MustTable("S", 1, []access.Pattern{"o"}, []Tuple{{"b"}})
	cat := MustCatalog(r, s)
	wrapped, breakers, err := BreakerCatalog(cat, BreakerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	names := cat.Names()
	if len(breakers) != len(names) {
		t.Fatalf("breakers = %d, want one per source", len(breakers))
	}
	for i, name := range names {
		if breakers[i].Name() != name {
			t.Errorf("breakers[%d] wraps %s, want %s (indexed like Names)", i, breakers[i].Name(), name)
		}
		if _, ok := wrapped.Source(name).(*Breaker); !ok {
			t.Errorf("source %s is not breaker-wrapped", name)
		}
	}
	if _, err := wrapped.Source("R").Call("o", nil); err != nil {
		t.Fatal(err)
	}
	if st := wrapped.TotalStats(); st.Calls != 1 {
		t.Errorf("TotalStats through BreakerCatalog = %+v", st)
	}
}

func TestBreakerConcurrentHammer(t *testing.T) {
	// Race check: many goroutines slam a dying source; state machine and
	// counters must stay consistent, and the breaker must end up open.
	f := NewFlaky(bookTable(t), FlakyConfig{FailEveryN: 1})
	b := NewBreaker(f, BreakerConfig{Window: 8, Threshold: 4, Cooldown: time.Hour})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Call("ioo", []string{fmt.Sprintf("i%d", w)})
				b.State()
			}
		}(w)
	}
	wg.Wait()
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	// Real calls that reached the dead source are bounded by the window
	// (plus races in flight at trip time), not by the 400 attempts.
	if got := f.Injected(); got > 8+8 {
		t.Errorf("inner source saw %d calls; breaker should cap near the window size", got)
	}
	if b.Trips() != 1 {
		t.Errorf("trips = %d, want 1", b.Trips())
	}
}
