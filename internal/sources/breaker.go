package sources

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/access"
)

// ErrBreakerOpen marks calls rejected by an open circuit breaker. The
// error is terminal, not transient: retrying through an open breaker is
// pointless by construction, so the engine's retry policy never absorbs
// it and degraded executions classify it as a breaker failure.
var ErrBreakerOpen = errors.New("sources: circuit breaker open")

// BreakerState is the circuit breaker's current position.
type BreakerState int32

const (
	// BreakerClosed: calls flow to the inner source; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls fail fast with ErrBreakerOpen without touching
	// the inner source, until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe call is allowed through; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

// String renders the state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// BreakerConfig tunes a Breaker. The zero value gets sensible defaults
// (window 8, threshold 4, cooldown 100ms).
type BreakerConfig struct {
	// Window is the number of most recent call outcomes the failure
	// count is computed over. 0 means 8.
	Window int
	// Threshold opens the circuit when the failures within the window
	// reach it. 0 means half the window (rounded up).
	Threshold int
	// Cooldown is how long the circuit stays open before a half-open
	// probe is allowed. 0 means 100ms.
	Cooldown time.Duration
	// Now is the clock; nil means time.Now. Tests inject a fake clock to
	// step through open → half-open transitions deterministically.
	Now func() time.Time
}

func (c BreakerConfig) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 8
}

func (c BreakerConfig) threshold() int {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return (c.window() + 1) / 2
}

func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 100 * time.Millisecond
}

// Breaker wraps a Source with a circuit breaker: after Threshold
// failures within a sliding window of Window recent calls the circuit
// opens, and every call fails fast with ErrBreakerOpen instead of
// burning a remote call (and the engine's whole retry budget) on a
// source that is known to be down. After Cooldown the breaker goes
// half-open and lets exactly one probe call through: success closes the
// circuit (window reset), failure re-opens it for another cooldown.
//
// A dead source therefore costs O(Threshold) real calls plus one probe
// per cooldown period, independent of how many bindings, retries, rules,
// or queries would otherwise have called it.
//
// Like Cached and Flaky, the Breaker forwards StatsReporter to the inner
// source, so Catalog.TotalStats over a wrapped catalog still reports the
// real remote traffic (fast-failed calls never reached the source and
// are metered separately by Rejected). It is safe for concurrent use.
type Breaker struct {
	inner Source
	cfg   BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	outcomes []bool // ring buffer of recent outcomes; true = failure
	next     int    // ring index of the oldest entry
	filled   int    // entries in use
	fails    int    // failures among the entries in use
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	trips    int  // closed/half-open → open transitions
	rejected int  // calls failed fast while open
}

// NewBreaker wraps src with a circuit breaker.
func NewBreaker(src Source, cfg BreakerConfig) *Breaker {
	return &Breaker{inner: src, cfg: cfg, outcomes: make([]bool, cfg.window())}
}

// Name implements Source.
func (b *Breaker) Name() string { return b.inner.Name() }

// Arity implements Source.
func (b *Breaker) Arity() int { return b.inner.Arity() }

// Patterns implements Source.
func (b *Breaker) Patterns() []access.Pattern { return b.inner.Patterns() }

func (b *Breaker) now() time.Time {
	if b.cfg.Now != nil {
		return b.cfg.Now()
	}
	return time.Now()
}

// admit decides whether a call may proceed. It returns probe=true when
// the call is the half-open probe, and a non-nil error when the call
// must fail fast.
func (b *Breaker) admit() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return false, nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cfg.cooldown() {
			b.state = BreakerHalfOpen
			b.probing = true
			return true, nil
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return true, nil
		}
	}
	b.rejected++
	return false, fmt.Errorf("sources: %s: %w (state %s, %d trips)", b.inner.Name(), ErrBreakerOpen, b.state, b.trips)
}

// record feeds one call outcome back into the state machine. Context
// cancellation by the caller is not a source failure and leaves the
// window untouched; a deadline expiry is counted (a hung source is a
// failing source).
func (b *Breaker) record(probe bool, err error) {
	failed := err != nil && !errors.Is(err, context.Canceled)
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if failed {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		} else {
			b.state = BreakerClosed
			b.reset()
		}
		return
	}
	if b.state != BreakerClosed {
		// A non-probe call that was already in flight when the circuit
		// moved; its outcome no longer drives the state machine.
		return
	}
	if err != nil && errors.Is(err, context.Canceled) {
		return
	}
	b.push(failed)
	if b.fails >= b.cfg.threshold() {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	}
}

// push appends one outcome to the ring buffer, evicting the oldest when
// full. Caller holds b.mu.
func (b *Breaker) push(failed bool) {
	if b.filled == len(b.outcomes) {
		if b.outcomes[b.next] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.outcomes[b.next] = failed
	if failed {
		b.fails++
	}
	b.next = (b.next + 1) % len(b.outcomes)
}

// reset clears the outcome window. Caller holds b.mu.
func (b *Breaker) reset() {
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.next, b.filled, b.fails = 0, 0, 0
}

// Call implements Source.
func (b *Breaker) Call(p access.Pattern, inputs []string) ([]Tuple, error) {
	return b.CallContext(context.Background(), p, inputs)
}

// CallContext implements ContextSource, consulting the circuit before
// forwarding to the inner source.
func (b *Breaker) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]Tuple, error) {
	probe, err := b.admit()
	if err != nil {
		return nil, err
	}
	rows, err := CallWithContext(ctx, b.inner, p, inputs)
	b.record(probe, err)
	return rows, err
}

// BatchCapable reports whether the wrapped source genuinely batches.
func (b *Breaker) BatchCapable() bool { return IsBatchCapable(b.inner) }

// CallBatch implements BatchSource. A batch is one wire round trip, so
// it is one admission decision and one recorded outcome — a failing
// backend trips the breaker at the same rate whether callers batch or
// not.
func (b *Breaker) CallBatch(ctx context.Context, p access.Pattern, inputs [][]string) ([][]Tuple, error) {
	probe, err := b.admit()
	if err != nil {
		return nil, err
	}
	groups, err := CallBatchWithContext(ctx, b.inner, p, inputs)
	b.record(probe, err)
	return groups, err
}

// State returns the breaker's current position, advancing an expired
// open circuit to half-open first so callers observe the state a call
// would see.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.cooldown() {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the circuit has opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Rejected returns how many calls failed fast on an open circuit —
// remote calls the breaker saved.
func (b *Breaker) Rejected() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rejected
}

// Reset force-closes the circuit and clears the window and counters.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.probing = false
	b.trips, b.rejected = 0, 0
	b.reset()
}

// StatsSnapshot implements StatsReporter by forwarding to the wrapped
// source: fast-failed calls never reached it, so the counters are the
// real remote traffic.
func (b *Breaker) StatsSnapshot() Stats {
	if r, ok := b.inner.(StatsReporter); ok {
		return r.StatsSnapshot()
	}
	return Stats{}
}

// ResetStats implements StatsReporter by forwarding to the wrapped
// source.
func (b *Breaker) ResetStats() {
	if r, ok := b.inner.(StatsReporter); ok {
		r.ResetStats()
	}
}

// BreakerCatalog wraps every source of the catalog with a circuit
// breaker sharing cfg, returning the wrapped catalog and the breaker
// handles (indexed like cat.Names()).
func BreakerCatalog(cat *Catalog, cfg BreakerConfig) (*Catalog, []*Breaker, error) {
	var srcs []Source
	var breakers []*Breaker
	for _, name := range cat.Names() {
		b := NewBreaker(cat.Source(name), cfg)
		srcs = append(srcs, b)
		breakers = append(breakers, b)
	}
	wrapped, err := NewCatalog(srcs...)
	if err != nil {
		return nil, nil, err
	}
	return wrapped, breakers, nil
}
