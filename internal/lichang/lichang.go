// Package lichang implements the four baseline feasibility algorithms of
// Li & Chang ("On Answering Queries in the Presence of Limited Access
// Patterns", ICDT 2001), as recalled in Sections 5.3 and 5.4 of Nash &
// Ludäscher (EDBT 2004):
//
//   - CQstable:   minimize Q, then check the minimal query is orderable.
//   - CQstable*:  compute ans(Q), then check ans(Q) ⊑ Q.
//   - UCQstable:  minimize the union, then check every disjunct stable.
//   - UCQstable*: take the union P of the feasible disjuncts, check Q ⊑ P.
//
// They are defined for CQ and UCQ (no negation); the paper's uniform
// FEASIBLE algorithm coincides with CQstable* on CQ and provides a third
// algorithm for UCQ. These baselines exist here to cross-validate
// FEASIBLE and to benchmark the relative cost of the five algorithms
// (experiment E7).
package lichang

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/containment"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/minimize"
)

// requireNegationFree rejects CQ¬ inputs: the Li–Chang algorithms are
// specified for CQ/UCQ only.
func requireNegationFree(u logic.UCQ) error {
	for _, r := range u.Rules {
		for _, l := range r.Body {
			if l.Negated {
				return fmt.Errorf("lichang: %s has negation; the Li–Chang algorithms handle CQ/UCQ only", r.HeadPred)
			}
		}
	}
	return nil
}

// CQStable decides feasibility of a conjunctive query by minimizing it
// and checking that the minimal query is orderable (ans(M) = M).
func CQStable(q logic.CQ, ps *access.Set) (bool, error) {
	if err := requireNegationFree(logic.AsUnion(q)); err != nil {
		return false, err
	}
	m := minimize.CQ(q)
	if m.False {
		return true, nil
	}
	return core.Orderable(m, ps), nil
}

// CQStableStar decides feasibility of a conjunctive query by computing
// ans(Q) and checking ans(Q) ⊑ Q. On conjunctive queries this is exactly
// the paper's FEASIBLE.
func CQStableStar(q logic.CQ, ps *access.Set) (bool, error) {
	if err := requireNegationFree(logic.AsUnion(q)); err != nil {
		return false, err
	}
	a := core.AnswerablePart(q, ps)
	if a.False {
		return true, nil
	}
	if !a.Safe() {
		return false, nil
	}
	return containment.ContainedCQ(a, q), nil
}

// UCQStable decides feasibility of a UCQ by minimizing the union (with
// respect to both disjuncts and literals) and checking that every
// remaining disjunct is stable per CQStable.
func UCQStable(u logic.UCQ, ps *access.Set) (bool, error) {
	if err := requireNegationFree(u); err != nil {
		return false, err
	}
	m := minimize.UCQ(u)
	for _, r := range m.Rules {
		ok, err := CQStable(r, ps)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// UCQStableStar decides feasibility of a UCQ by collecting the union P
// of its feasible disjuncts (P ⊑ Q holds by construction) and checking
// Q ⊑ P.
func UCQStableStar(u logic.UCQ, ps *access.Set) (bool, error) {
	if err := requireNegationFree(u); err != nil {
		return false, err
	}
	var feasible []logic.CQ
	for _, r := range u.Rules {
		ok, err := CQStableStar(r, ps)
		if err != nil {
			return false, err
		}
		if ok {
			feasible = append(feasible, r.Clone())
		}
	}
	if len(feasible) == 0 {
		// P is the empty union (false); Q ⊑ false only if every rule is
		// unsatisfiable.
		return !containment.SatisfiableUCQ(u), nil
	}
	return containment.ContainedUCQ(u, logic.UCQ{Rules: feasible}), nil
}
