package lichang

import (
	"testing"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/logic"
	"repro/internal/parser"
)

func cq(t *testing.T, src string) logic.CQ {
	t.Helper()
	q, err := parser.ParseCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func ucq(t *testing.T, src string) logic.UCQ {
	t.Helper()
	u, err := parser.ParseUCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func pats(t *testing.T, src string) *access.Set {
	t.Helper()
	s, err := parser.ParsePatterns(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Example 9 of the paper, decided by all three CQ algorithms.
func TestExample9AllAlgorithmsAgree(t *testing.T) {
	q := cq(t, `Q(x) :- F(x), B(x), B(y), F(z).`)
	ps := pats(t, `F^o B^i`)

	stable, err := CQStable(q, ps)
	if err != nil {
		t.Fatal(err)
	}
	star, err := CQStableStar(q, ps)
	if err != nil {
		t.Fatal(err)
	}
	uniform := core.FeasibleCQ(q, ps).Feasible
	if !stable || !star || !uniform {
		t.Errorf("CQstable=%v CQstable*=%v FEASIBLE=%v, want all true", stable, star, uniform)
	}
}

// Example 10 of the paper, decided by UCQstable, UCQstable*, and FEASIBLE.
func TestExample10AllAlgorithmsAgree(t *testing.T) {
	u := ucq(t, `
		Q(x) :- F(x), G(x).
		Q(x) :- F(x), H(x), B(y).
		Q(x) :- F(x).
	`)
	ps := pats(t, `F^o G^o H^o B^i`)

	stable, err := UCQStable(u, ps)
	if err != nil {
		t.Fatal(err)
	}
	star, err := UCQStableStar(u, ps)
	if err != nil {
		t.Fatal(err)
	}
	uniform := core.Feasible(u, ps).Feasible
	if !stable || !star || !uniform {
		t.Errorf("UCQstable=%v UCQstable*=%v FEASIBLE=%v, want all true", stable, star, uniform)
	}
}

func TestInfeasibleCQ(t *testing.T) {
	// ans(Q) = F(x) but B(y) is essential: Q is infeasible.
	q := cq(t, `Q(x) :- F(x), B(y).`)
	ps := pats(t, `F^o B^i`)
	stable, err := CQStable(q, ps)
	if err != nil {
		t.Fatal(err)
	}
	star, err := CQStableStar(q, ps)
	if err != nil {
		t.Fatal(err)
	}
	uniform := core.FeasibleCQ(q, ps).Feasible
	if stable || star || uniform {
		t.Errorf("CQstable=%v CQstable*=%v FEASIBLE=%v, want all false", stable, star, uniform)
	}
}

func TestInfeasibleUCQ(t *testing.T) {
	u := ucq(t, "Q(x) :- F(x), B(y).\nQ(x) :- G(x).")
	ps := pats(t, `F^o G^o B^i`)
	stable, err := UCQStable(u, ps)
	if err != nil {
		t.Fatal(err)
	}
	star, err := UCQStableStar(u, ps)
	if err != nil {
		t.Fatal(err)
	}
	uniform := core.Feasible(u, ps).Feasible
	if stable || star || uniform {
		t.Errorf("UCQstable=%v UCQstable*=%v FEASIBLE=%v, want all false", stable, star, uniform)
	}
}

// A UCQ where an infeasible disjunct is absorbed by a feasible one.
func TestAbsorbedInfeasibleDisjunct(t *testing.T) {
	u := ucq(t, "Q(x) :- F(x), B(y).\nQ(x) :- F(x).")
	ps := pats(t, `F^o B^i`)
	for name, fn := range map[string]func(logic.UCQ, *access.Set) (bool, error){
		"UCQstable":  UCQStable,
		"UCQstable*": UCQStableStar,
	} {
		got, err := fn(u, ps)
		if err != nil {
			t.Fatal(err)
		}
		if !got {
			t.Errorf("%s = false, want true (dismissed disjunct is redundant)", name)
		}
	}
	if !core.Feasible(u, ps).Feasible {
		t.Error("FEASIBLE must also report true")
	}
}

func TestRejectNegation(t *testing.T) {
	q := cq(t, `Q(x) :- F(x), not S(x).`)
	ps := pats(t, `F^o S^o`)
	if _, err := CQStable(q, ps); err == nil {
		t.Error("CQstable must reject negation")
	}
	if _, err := CQStableStar(q, ps); err == nil {
		t.Error("CQstable* must reject negation")
	}
	u := logic.AsUnion(q)
	if _, err := UCQStable(u, ps); err == nil {
		t.Error("UCQstable must reject negation")
	}
	if _, err := UCQStableStar(u, ps); err == nil {
		t.Error("UCQstable* must reject negation")
	}
}

// Cross-validation on a grid of small CQ/UCQ cases: all five algorithms
// must agree with FEASIBLE.
func TestAgreementGrid(t *testing.T) {
	cases := []struct {
		query    string
		patterns string
	}{
		{`Q(x) :- F(x).`, `F^o`},
		{`Q(x) :- F(x).`, `F^i`},
		{`Q(x) :- F(x), B(x).`, `F^o B^i`},
		{`Q(x) :- B(x), F(x).`, `F^o B^i`},
		{`Q(x) :- B(x).`, `B^i`},
		{`Q(x) :- F(x), B(x), B(y), F(z).`, `F^o B^i`},
		{`Q(x) :- F(x), G(y).`, `F^o G^i`},
		{`Q(x) :- F(x), G(y), G(x).`, `F^o G^i`},
		{"Q(x) :- F(x), G(x).\nQ(x) :- F(x).", `F^o G^i`},
		{"Q(x) :- F(x), G(x).\nQ(x) :- G(x).", `F^o G^i`},
		{"Q(x) :- F(x), B(y).\nQ(x) :- F(x), G(x).", `F^o G^o B^i`},
	}
	for _, c := range cases {
		u := ucq(t, c.query)
		ps := pats(t, c.patterns)
		want := core.Feasible(u, ps).Feasible

		st, err := UCQStable(u, ps)
		if err != nil {
			t.Fatal(err)
		}
		star, err := UCQStableStar(u, ps)
		if err != nil {
			t.Fatal(err)
		}
		if st != want || star != want {
			t.Errorf("disagreement on %q (%s): FEASIBLE=%v UCQstable=%v UCQstable*=%v",
				c.query, c.patterns, want, st, star)
		}
		if len(u.Rules) == 1 {
			cs, err := CQStable(u.Rules[0], ps)
			if err != nil {
				t.Fatal(err)
			}
			css, err := CQStableStar(u.Rules[0], ps)
			if err != nil {
				t.Fatal(err)
			}
			if cs != want || css != want {
				t.Errorf("CQ disagreement on %q (%s): FEASIBLE=%v CQstable=%v CQstable*=%v",
					c.query, c.patterns, want, cs, css)
			}
		}
	}
}
