package mediator

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/workload"
)

func views(t *testing.T, defs ...string) *Views {
	t.Helper()
	v := NewViews()
	for _, d := range defs {
		if err := v.Add(parser.MustUCQ(d)); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

func TestAddValidation(t *testing.T) {
	v := NewViews()
	if err := v.Add(parser.MustUCQ(`G(x) :- S(x).`)); err != nil {
		t.Fatal(err)
	}
	if err := v.Add(parser.MustUCQ(`G(x) :- T(x).`)); err == nil {
		t.Error("duplicate view must be rejected")
	}
	// Negation in a definition is allowed (it can be inlined positively).
	if err := v.Add(parser.MustUCQ(`H(x) :- S(x), not T(x).`)); err != nil {
		t.Errorf("negation in a view definition must be accepted: %v", err)
	}
	// ... but referencing such a view under negation is not expressible.
	if _, err := v.Unfold(parser.MustUCQ(`Q(a) :- S(a), not H(a).`)); err == nil {
		t.Error("negated reference to a negation-bearing view must be rejected")
	}
	// Positive references splice the body, negation included.
	u, err := v.Unfold(parser.MustUCQ(`Q(a) :- H(a).`))
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Rules[0].String(); got != "Q(a) :- S(a), not T(a)" {
		t.Errorf("positive inlining of negation-bearing view = %q", got)
	}
	if err := v.Add(parser.MustUCQ(`K(x, x) :- S(x, x).`)); err == nil {
		t.Error("repeated head variable must be rejected")
	}
	if !v.Defined("G") || !v.Defined("H") || v.Defined("K") {
		t.Error("Defined lookup wrong")
	}
	if got := v.Globals(); len(got) != 2 || got[0] != "G" || got[1] != "H" {
		t.Errorf("Globals = %v", got)
	}
}

func TestUnfoldPositiveSingle(t *testing.T) {
	v := views(t, `G(x, y) :- S(x, z), T(z, y).`)
	q := parser.MustUCQ(`Q(a) :- G(a, b), U(b).`)
	u, err := v.Unfold(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 1 {
		t.Fatalf("unfolded = %s", u)
	}
	got := u.Rules[0].String()
	want := "Q(a) :- S(a, z), T(z, b), U(b)"
	if got != want {
		t.Errorf("unfolded = %q, want %q", got, want)
	}
}

func TestUnfoldUnionCrossProduct(t *testing.T) {
	v := views(t, "G(x) :- S1(x).\nG(x) :- S2(x).")
	q := parser.MustUCQ(`Q(a) :- G(a), G(a).`)
	u, err := v.Unfold(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 4 {
		t.Fatalf("cross product must give 4 rules, got %d:\n%s", len(u.Rules), u)
	}
}

func TestUnfoldRenamesApart(t *testing.T) {
	// The definition uses variable z; so does the query. They must not
	// be conflated.
	v := views(t, `G(x) :- S(x, z).`)
	q := parser.MustUCQ(`Q(a) :- G(a), T(z), U(z).`)
	u, err := v.Unfold(q)
	if err != nil {
		t.Fatal(err)
	}
	body := u.Rules[0].String()
	if strings.Count(body, "S(a, z)") > 0 && strings.Contains(body, "T(z)") {
		// S's z must have been renamed; seeing both means capture.
		t.Errorf("variable capture in unfolding: %s", body)
	}
}

func TestUnfoldNegatedSimpleUnion(t *testing.T) {
	v := views(t, "G(x) :- S1(x).\nG(x) :- S2(x).")
	q := parser.MustUCQ(`Q(a) :- T(a), not G(a).`)
	u, err := v.Unfold(q)
	if err != nil {
		t.Fatal(err)
	}
	got := u.Rules[0].String()
	want := "Q(a) :- T(a), not S1(a), not S2(a)"
	if got != want {
		t.Errorf("unfolded = %q, want %q", got, want)
	}
}

func TestUnfoldNegatedRejectsExistentials(t *testing.T) {
	v := views(t, `G(x) :- S(x, z).`)
	q := parser.MustUCQ(`Q(a) :- T(a), not G(a).`)
	if _, err := v.Unfold(q); err == nil {
		t.Error("negated view with existential variable must be rejected")
	}
	v2 := views(t, `H(x) :- S1(x), S2(x).`)
	q2 := parser.MustUCQ(`Q(a) :- T(a), not H(a).`)
	if _, err := v2.Unfold(q2); err == nil {
		t.Error("negated view with a join must be rejected")
	}
}

func TestUnfoldConstantsInCall(t *testing.T) {
	v := views(t, `G(x, y) :- S(x, y).`)
	q := parser.MustUCQ(`Q(a) :- G(a, "fixed").`)
	u, err := v.Unfold(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := u.Rules[0].String(), `Q(a) :- S(a, "fixed")`; got != want {
		t.Errorf("unfolded = %q, want %q", got, want)
	}
}

func TestUnfoldArityMismatch(t *testing.T) {
	v := views(t, `G(x, y) :- S(x, y).`)
	q := parser.MustUCQ(`Q(a) :- G(a), T(a).`)
	if _, err := v.Unfold(q); err == nil {
		t.Error("arity mismatch must be rejected")
	}
}

// Semantics: evaluating the unfolded query over the sources equals
// evaluating the original query over the materialized global relations.
func TestUnfoldingSemantics(t *testing.T) {
	v := views(t,
		"G(x, y) :- S(x, z), T(z, y).\nG(x, y) :- D(x, y).",
		"M(x) :- S(x, x).",
	)
	queries := []string{
		`Q(a, b) :- G(a, b).`,
		`Q(a) :- G(a, b), M(b).`,
		"Q(a) :- G(a, b), not M(b).\nQ(a) :- M(a), G(a, a).",
		`Q(a) :- M(a), U(a).`,
	}
	g := workload.New(9)
	s := workload.Schema{Relations: []workload.RelDef{
		{Name: "S", Arity: 2}, {Name: "T", Arity: 2}, {Name: "D", Arity: 2}, {Name: "U", Arity: 1},
	}}
	for trial := 0; trial < 20; trial++ {
		src := engine.NewInstance()
		if err := src.LoadFacts(g.Facts(s, 10, 5)); err != nil {
			t.Fatal(err)
		}
		// Materialize the global relations.
		global := engine.NewInstance()
		for _, rel := range []string{"S", "T", "D", "U"} {
			for _, row := range src.Rows(rel) {
				global.MustAdd(rel, row...)
			}
		}
		for _, name := range v.Globals() {
			rel, err := engine.AnswerNaive(v.defs[name], src)
			if err != nil {
				t.Fatal(err)
			}
			for _, row := range rel.Rows() {
				vals := make([]string, len(row))
				for i, val := range row {
					vals[i] = val.S
				}
				global.MustAdd(name, vals...)
			}
		}
		for _, qs := range queries {
			q := parser.MustUCQ(qs)
			unfolded, err := v.Unfold(q)
			if err != nil {
				t.Fatal(err)
			}
			overSources, err := engine.AnswerNaive(unfolded, src)
			if err != nil {
				t.Fatal(err)
			}
			overGlobal, err := engine.AnswerNaive(q, global)
			if err != nil {
				t.Fatal(err)
			}
			if !overSources.Equal(overGlobal) {
				t.Fatalf("unfolding changed semantics for %q\nunfolded: %s\nsources:  %s\nglobal:   %s",
					qs, unfolded, overSources, overGlobal)
			}
		}
	}
}

func TestUnfoldFalseRulePassesThrough(t *testing.T) {
	v := views(t, `G(x) :- S(x).`)
	u, err := v.Unfold(logic.Union(logic.FalseQuery("Q", []logic.Term{logic.Var("x")})))
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rules) != 1 || !u.Rules[0].False {
		t.Errorf("unfolded = %s", u)
	}
}
