// Package mediator implements global-as-view (GAV) query unfolding: the
// front half of the database mediator the paper was built for
// (Section 6: "The current prototype takes a query against a
// global-as-view definition and unfolds it into a UCQ¬ plan"). Each
// global relation is defined as a union of conjunctive queries over the
// source relations; a client query over the global schema unfolds into a
// UCQ¬ over the sources, which internal/core then plans under the
// sources' access patterns.
package mediator

import (
	"fmt"
	"sort"

	"repro/internal/logic"
)

// Views is a set of GAV view definitions, one per global relation.
type Views struct {
	defs map[string]logic.UCQ
}

// NewViews returns an empty view set.
func NewViews() *Views { return &Views{defs: map[string]logic.UCQ{}} }

// Add registers the definition of one global relation; def's head names
// the global relation. Definitions are unions of safe CQ¬ rules; a
// definition that uses negation can be referenced positively (its body
// is spliced in), but not under negation (see Unfold). Head arguments
// must be distinct variables.
func (v *Views) Add(def logic.UCQ) error {
	if len(def.Rules) == 0 {
		return fmt.Errorf("mediator: empty view definition")
	}
	if err := def.Validate(); err != nil {
		return fmt.Errorf("mediator: invalid view: %w", err)
	}
	name := def.HeadPred()
	if _, dup := v.defs[name]; dup {
		return fmt.Errorf("mediator: duplicate view definition for %s", name)
	}
	seen := map[string]bool{}
	for _, t := range def.Rules[0].HeadArgs {
		if !t.IsVar() || seen[t.Name] {
			return fmt.Errorf("mediator: view %s head arguments must be distinct variables", name)
		}
		seen[t.Name] = true
	}
	for _, r := range def.Rules {
		if !r.Safe() {
			return fmt.Errorf("mediator: view %s has an unsafe rule", name)
		}
	}
	v.defs[name] = def.Clone()
	return nil
}

// MustAdd is Add that panics on error.
func (v *Views) MustAdd(def logic.UCQ) *Views {
	if err := v.Add(def); err != nil {
		panic(err)
	}
	return v
}

// ParseAdd parses rules and registers them as one view definition.
func (v *Views) ParseAdd(src string, parse func(string) (logic.UCQ, error)) error {
	def, err := parse(src)
	if err != nil {
		return err
	}
	return v.Add(def)
}

// Defined reports whether the relation has a view definition.
func (v *Views) Defined(name string) bool {
	_, ok := v.defs[name]
	return ok
}

// Globals returns the defined global relation names, sorted.
func (v *Views) Globals() []string {
	out := make([]string, 0, len(v.defs))
	for n := range v.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Unfold rewrites a UCQ¬ query over the global schema into a UCQ¬ over
// the source relations:
//
//   - a positive global literal G(x̄) is replaced by the body of each
//     disjunct of G's definition (one output rule per combination of
//     choices), with the definition's variables renamed apart and its
//     head unified with x̄;
//   - a negated global literal ¬G(x̄) is expressible in UCQ¬ only when
//     every disjunct of G's definition is a single atom without
//     existential variables; it then becomes the conjunction of the
//     negated source atoms (¬(A ∨ B) = ¬A ∧ ¬B). Otherwise Unfold
//     returns an error, because ¬∃ȳ φ(ȳ) has no UCQ¬ equivalent;
//   - literals over undefined (source) relations pass through unchanged.
func (v *Views) Unfold(q logic.UCQ) (logic.UCQ, error) {
	var out []logic.CQ
	for _, r := range q.Rules {
		rules, err := v.unfoldRule(r)
		if err != nil {
			return logic.UCQ{}, err
		}
		out = append(out, rules...)
	}
	u := logic.UCQ{Rules: out}
	if err := u.Validate(); err != nil {
		return logic.UCQ{}, fmt.Errorf("mediator: unfolding produced an invalid query: %w", err)
	}
	return u, nil
}

// unfoldRule expands one rule into the cross product of its positive
// global literals' definitions.
func (v *Views) unfoldRule(r logic.CQ) ([]logic.CQ, error) {
	if r.False {
		return []logic.CQ{r.Clone()}, nil
	}
	partial := []logic.CQ{{HeadPred: r.HeadPred, HeadArgs: append([]logic.Term(nil), r.HeadArgs...)}}
	for _, l := range r.Body {
		def, isGlobal := v.defs[l.Atom.Pred]
		if !isGlobal {
			for i := range partial {
				partial[i].Body = append(partial[i].Body, l.Clone())
			}
			continue
		}
		if l.Negated {
			lits, err := negatedExpansion(l.Atom, def)
			if err != nil {
				return nil, err
			}
			for i := range partial {
				partial[i].Body = append(partial[i].Body, lits...)
			}
			continue
		}
		var next []logic.CQ
		for _, p := range partial {
			for _, d := range def.Rules {
				expanded, err := inline(p, l.Atom, d, r)
				if err != nil {
					return nil, err
				}
				next = append(next, expanded)
			}
		}
		partial = next
	}
	return partial, nil
}

// inline appends definition rule d's body to partial rule p, renaming
// d's variables apart from everything used so far and unifying d's head
// with the call atom.
func inline(p logic.CQ, call logic.Atom, d logic.CQ, orig logic.CQ) (logic.CQ, error) {
	if len(d.HeadArgs) != len(call.Args) {
		return logic.CQ{}, fmt.Errorf("mediator: %s called with arity %d, defined with %d",
			call.Pred, len(call.Args), len(d.HeadArgs))
	}
	taken := logic.VarNames(orig)
	for k, v := range logic.VarNames(p) {
		taken[k] = v
	}
	fresh, _ := logic.RenameApart(d, taken)
	// Substitute the (renamed) head variables by the call arguments.
	sub := logic.NewSubst()
	for j, hv := range fresh.HeadArgs {
		sub[hv.Name] = call.Args[j]
	}
	out := p.Clone()
	for _, l := range fresh.Body {
		out.Body = append(out.Body, sub.Literal(l))
	}
	return out, nil
}

// negatedExpansion turns ¬G(x̄) into negated source atoms when G's
// definition permits it.
func negatedExpansion(call logic.Atom, def logic.UCQ) ([]logic.Literal, error) {
	var out []logic.Literal
	for _, d := range def.Rules {
		if len(d.Body) != 1 || d.Body[0].Negated {
			return nil, fmt.Errorf("mediator: cannot unfold negated %s: definition disjunct must be a single positive atom",
				call.Pred)
		}
		atom := d.Body[0].Atom
		// Every variable of the disjunct body must be a head variable
		// (no existentials under the negation).
		headVar := map[string]int{}
		for j, t := range d.HeadArgs {
			headVar[t.Name] = j
		}
		args := make([]logic.Term, len(atom.Args))
		for j, t := range atom.Args {
			if t.IsConst() {
				args[j] = t
				continue
			}
			hj, ok := headVar[t.Name]
			if !ok {
				return nil, fmt.Errorf("mediator: cannot unfold negated %s: definition has existential variable %s under the negation",
					call.Pred, t.Name)
			}
			args[j] = call.Args[hj]
		}
		out = append(out, logic.Neg(logic.NewAtom(atom.Pred, args...)))
	}
	return out, nil
}
