package minimize

import (
	"testing"

	"repro/internal/containment"
	"repro/internal/logic"
	"repro/internal/parser"
)

func cq(t *testing.T, src string) logic.CQ {
	t.Helper()
	q, err := parser.ParseCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func ucq(t *testing.T, src string) logic.UCQ {
	t.Helper()
	u, err := parser.ParseUCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestMinimizeCQ(t *testing.T) {
	tests := []struct {
		name     string
		src      string
		wantBody int
	}{
		{
			// Example 9 of the paper: M(x) :- F(x), B(x).
			"example 9",
			`Q(x) :- F(x), B(x), B(y), F(z).`,
			2,
		},
		{
			"already minimal",
			`Q(x) :- E(x, y), E(y, x).`,
			2,
		},
		{
			"duplicate literal",
			`Q(x) :- R(x, y), R(x, y).`,
			1,
		},
		{
			"folds onto smaller pattern",
			`Q(x) :- E(x, y), E(x, z), E(z, w).`,
			2, // E(x,y) folds into E(x,z); E(z,w) stays
		},
		{
			"negation preserved",
			`Q(x) :- R(x), R(y), not S(x).`,
			2, // R(y) folds onto R(x); not S(x) must remain
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := cq(t, tt.src)
			m := CQ(q)
			if len(m.Body) != tt.wantBody {
				t.Errorf("minimized to %s (%d literals), want %d", m, len(m.Body), tt.wantBody)
			}
			if !containment.Equivalent(logic.AsUnion(m), logic.AsUnion(q)) {
				t.Errorf("minimization changed meaning: %s vs %s", m, q)
			}
		})
	}
}

func TestMinimizeCQExample9Exact(t *testing.T) {
	m := CQ(cq(t, `Q(x) :- F(x), B(x), B(y), F(z).`))
	want := cq(t, `Q(x) :- F(x), B(x).`)
	if !m.EqualAsSet(want) {
		t.Errorf("minimal = %s, want %s", m, want)
	}
}

func TestMinimizeUnsatisfiable(t *testing.T) {
	m := CQ(cq(t, `Q(x) :- R(x), not R(x).`))
	if !m.False {
		t.Errorf("unsatisfiable query must minimize to false, got %s", m)
	}
}

func TestMinimizeUCQExample10(t *testing.T) {
	u := ucq(t, `
		Q(x) :- F(x), G(x).
		Q(x) :- F(x), H(x), B(y).
		Q(x) :- F(x).
	`)
	m := UCQ(u)
	// Example 10: the minimal union is just Q(x) :- F(x).
	if len(m.Rules) != 1 {
		t.Fatalf("minimal union = %s, want a single rule", m)
	}
	want := cq(t, `Q(x) :- F(x).`)
	if !m.Rules[0].EqualAsSet(want) {
		t.Errorf("minimal rule = %s, want %s", m.Rules[0], want)
	}
	if !containment.Equivalent(m, u) {
		t.Error("union minimization changed meaning")
	}
}

func TestMinimizeUCQKeepsIncomparableRules(t *testing.T) {
	u := ucq(t, "Q(x) :- F(x).\nQ(x) :- G(x).")
	m := UCQ(u)
	if len(m.Rules) != 2 {
		t.Errorf("incomparable rules must both survive: %s", m)
	}
}

func TestMinimizeUCQDropsUnsatisfiableRules(t *testing.T) {
	u := ucq(t, "Q(x) :- F(x).\nQ(x) :- G(x), not G(x).")
	m := UCQ(u)
	if len(m.Rules) != 1 {
		t.Errorf("unsatisfiable disjunct must be dropped: %s", m)
	}
}

func TestMinimizeKeepsHeadCoverage(t *testing.T) {
	// R(x,y) covers head variables; S(x) is implied but removing R would
	// orphan y.
	q := cq(t, `Q(x, y) :- R(x, y), S(x).`)
	m := CQ(q)
	if !containment.Equivalent(logic.AsUnion(m), logic.AsUnion(q)) {
		t.Errorf("minimization changed meaning: %s", m)
	}
	for _, v := range m.FreeVars() {
		found := false
		for _, l := range m.Body {
			for _, w := range l.Vars() {
				if w == v {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("head variable %s lost from body: %s", v, m)
		}
	}
}

func TestCoresPreservesPositions(t *testing.T) {
	u := ucq(t, `
		Q(x) :- R(x, y), R(x, z).
		Q(x) :- S(x), not S(x).
		Q(x) :- T(x).
	`)
	cores := Cores(u)
	if len(cores) != len(u.Rules) {
		t.Fatalf("Cores returned %d entries for %d rules", len(cores), len(u.Rules))
	}
	if len(cores[0].Body) != 1 {
		t.Errorf("core of rule 0 = %s, want the single-literal core", cores[0])
	}
	if !cores[1].False {
		t.Errorf("core of unsatisfiable rule 1 = %s, want false", cores[1])
	}
	if !cores[2].Equal(u.Rules[2]) {
		t.Errorf("core of minimal rule 2 = %s, want it unchanged", cores[2])
	}
	// Each non-false core is equivalent to its rule.
	for i, c := range cores {
		if c.False {
			continue
		}
		if !containment.Equivalent(logic.AsUnion(c), logic.AsUnion(u.Rules[i])) {
			t.Errorf("core %d not equivalent to its rule", i)
		}
	}
}
