// Package minimize implements query minimization: computing the core of
// a conjunctive query (the unique minimal equivalent subquery, up to
// isomorphism) and removing redundant disjuncts from unions. The
// Li–Chang baseline algorithms CQstable and UCQstable (Section 5.3–5.4 of
// the paper) minimize before testing orderability; this package supplies
// that step. Minimization is sound for CQ¬/UCQ¬ as well, because every
// removal is verified by a full equivalence check.
package minimize

import (
	"repro/internal/containment"
	"repro/internal/logic"
)

// CQ returns a minimal query equivalent to q: no body literal can be
// removed without changing the query's meaning. For negation-free q this
// is the core of q. Removal candidates that would leave a head variable
// uncovered are skipped (the result must stay range-restricted).
func CQ(q logic.CQ) logic.CQ {
	if q.False || !containment.Satisfiable(q) {
		return logic.FalseQuery(q.HeadPred, q.HeadArgs)
	}
	cur := q.Clone()
	for {
		removed := false
		for i := range cur.Body {
			cand := without(cur, i)
			if !cand.HeadSafe() {
				continue
			}
			if len(cand.Body) == 0 && len(cand.HeadArgs) > 0 {
				continue
			}
			if equivalentCQ(cand, cur) {
				cur = cand
				removed = true
				break
			}
		}
		if !removed {
			return cur
		}
	}
}

// without returns cur with body literal i removed.
func without(cur logic.CQ, i int) logic.CQ {
	out := logic.CQ{HeadPred: cur.HeadPred, HeadArgs: append([]logic.Term(nil), cur.HeadArgs...)}
	for j, l := range cur.Body {
		if j != i {
			out.Body = append(out.Body, l.Clone())
		}
	}
	return out
}

func equivalentCQ(a, b logic.CQ) bool {
	return containment.ContainedCQ(a, b) && containment.ContainedCQ(b, a)
}

// Cores minimizes each rule of u independently, preserving positions:
// result[i] is the core of u.Rules[i] (or the query "false" when the
// rule is unsatisfiable). Unlike UCQ it never drops or reorders
// disjuncts, so callers can correlate cores with the original rules —
// the semantic query cache keys each disjunct's answers by its core.
func Cores(u logic.UCQ) []logic.CQ {
	out := make([]logic.CQ, len(u.Rules))
	for i, r := range u.Rules {
		out[i] = CQ(r)
	}
	return out
}

// UCQ returns a minimal union equivalent to u: each rule is minimized,
// then rules contained in the union of the others are removed (so the
// result has no redundant disjunct).
func UCQ(u logic.UCQ) logic.UCQ {
	rules := make([]logic.CQ, 0, len(u.Rules))
	for _, r := range u.Rules {
		m := CQ(r)
		if m.False {
			continue
		}
		rules = append(rules, m)
	}
	// Drop duplicate and redundant disjuncts, scanning greedily.
	for i := 0; i < len(rules); {
		rest := logic.UCQ{Rules: append(append([]logic.CQ(nil), rules[:i]...), rules[i+1:]...)}
		if len(rest.Rules) > 0 && containment.Contained(rules[i], rest) {
			rules = rest.Rules
			i = 0 // containments may newly hold; restart scan
			continue
		}
		i++
	}
	return logic.UCQ{Rules: rules}
}
