package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	ucqn "repro"
)

// newTestServer boots a server over n fixture tenants.
func newTestServer(t *testing.T, cfg Config, n int) (*Server, []*TenantFixture) {
	t.Helper()
	s := New(cfg)
	fixtures := PaperTenants(n)
	for _, f := range fixtures {
		if _, err := s.AddTenant(f.Name, f.Patterns, f.Catalog(), ucqn.Budget{}); err != nil {
			t.Fatal(err)
		}
	}
	return s, fixtures
}

// post issues a query over HTTP and returns the response and headers.
func post(t *testing.T, url, tenant, query string) (*Response, http.Header, int) {
	t.Helper()
	body, _ := json.Marshal(Request{Tenant: tenant, Query: query})
	httpResp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp Response
	if httpResp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
	}
	return &resp, httpResp.Header, httpResp.StatusCode
}

// relOf rebuilds a Rel from wire rows.
func relOf(rows [][]string) *ucqn.Rel {
	rel := ucqn.NewRel()
	for _, row := range rows {
		rel.Add(ucqn.RowOf(row...))
	}
	return rel
}

func TestServerAnswersEveryTenantExactly(t *testing.T) {
	s, fixtures := newTestServer(t, Config{}, 3)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, f := range fixtures {
		for qi, q := range f.Queries {
			resp, hdr, status := post(t, ts.URL, f.Name, q)
			if status != http.StatusOK {
				t.Fatalf("%s q%d: status %d", f.Name, qi, status)
			}
			if !resp.Complete || resp.Shed || resp.Degraded {
				t.Fatalf("%s q%d: complete=%v shed=%v degraded=%v, want a complete live answer",
					f.Name, qi, resp.Complete, resp.Shed, resp.Degraded)
			}
			if hdr.Get(HeaderComplete) != "true" || hdr.Get(HeaderShed) != "false" {
				t.Fatalf("%s q%d: headers complete=%q shed=%q", f.Name, qi, hdr.Get(HeaderComplete), hdr.Get(HeaderShed))
			}
			if got := relOf(resp.Answers); !got.Equal(f.Expected[qi]) {
				t.Fatalf("%s q%d: answers = %v, ground truth %v", f.Name, qi, got, f.Expected[qi])
			}
		}
	}
	st := s.Stats()
	for _, f := range fixtures {
		ts := st.Tenants[f.Name]
		if ts.Requests != int64(len(f.Queries)) || ts.Errors != 0 || ts.Shed != 0 {
			t.Errorf("%s stats = %+v", f.Name, ts)
		}
	}
}

func TestServerUnknownTenantAndBadQuery(t *testing.T) {
	s, fixtures := newTestServer(t, Config{}, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, _, status := post(t, ts.URL, "nobody", fixtures[0].Queries[0]); status != http.StatusNotFound {
		t.Errorf("unknown tenant status = %d, want 404", status)
	}
	if _, _, status := post(t, ts.URL, fixtures[0].Name, "this is not a query"); status != http.StatusBadRequest {
		t.Errorf("bad query status = %d, want 400", status)
	}
}

// Overload must degrade to the certified underestimate, never a 503:
// with the only execution slot occupied and the queue wait elapsed, a
// query with warm cached answers still returns them complete; a cold
// query returns an empty underestimate whose Incompleteness report says
// every disjunct was budget-exhausted. Both are HTTP 200.
func TestServerShedsToCertifiedUnderestimate(t *testing.T) {
	s, fixtures := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 2, QueueWait: 2 * time.Millisecond}, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	f := fixtures[0]
	warm, cold := f.Queries[0], f.Queries[1]

	// Warm the answer cache at full budget. A cold query pays real
	// source calls and the response meters them.
	if resp, _, _ := post(t, ts.URL, f.Name, warm); !resp.Complete {
		t.Fatal("warm-up must answer completely")
	} else if resp.Calls == 0 {
		t.Fatal("cold query reported 0 source calls; Response.Calls must meter real traffic")
	}

	// Occupy the only slot: everything below runs overloaded.
	s.slots <- struct{}{}
	defer func() { <-s.slots }()

	resp, hdr, status := post(t, ts.URL, f.Name, warm)
	if status != http.StatusOK {
		t.Fatalf("shed warm status = %d, want 200", status)
	}
	if !resp.Shed || !resp.Complete {
		t.Fatalf("shed warm: shed=%v complete=%v, want a complete cache-served answer", resp.Shed, resp.Complete)
	}
	if got := relOf(resp.Answers); !got.Equal(f.Expected[0]) {
		t.Fatalf("shed warm answers = %v, want %v", got, f.Expected[0])
	}
	if resp.Calls != 0 {
		t.Errorf("shed request spent %d source calls, want 0", resp.Calls)
	}
	if hdr.Get(HeaderShed) != "true" {
		t.Errorf("%s = %q, want true", HeaderShed, hdr.Get(HeaderShed))
	}

	resp, hdr, status = post(t, ts.URL, f.Name, cold)
	if status != http.StatusOK {
		t.Fatalf("shed cold status = %d, want 200 (never a 503)", status)
	}
	if !resp.Shed || resp.Complete || !resp.Degraded {
		t.Fatalf("shed cold: shed=%v complete=%v degraded=%v", resp.Shed, resp.Complete, resp.Degraded)
	}
	if len(resp.Answers) != 0 {
		t.Errorf("shed cold answers = %v, want the empty underestimate", resp.Answers)
	}
	if resp.Incompleteness == nil || len(resp.Incompleteness.Failed) == 0 {
		t.Fatalf("shed cold: incompleteness = %+v, want budget-exhausted failures", resp.Incompleteness)
	}
	for _, fr := range resp.Incompleteness.Failed {
		if fr.Class != "budget-exhausted" {
			t.Errorf("failure class = %q, want budget-exhausted", fr.Class)
		}
	}
	if h := hdr.Get(HeaderIncompleteness); !strings.Contains(h, "budget-exhausted") {
		t.Errorf("%s = %q, want the compact report naming budget-exhausted", HeaderIncompleteness, h)
	}
	if st := s.Stats(); st.Shed != 2 || st.Tenants[f.Name].Shed != 2 {
		t.Errorf("shed counters = %d global / %d tenant, want 2/2", st.Shed, st.Tenants[f.Name].Shed)
	}
}

// Invalidation bumps the tenant's catalog generation: cached answers
// stop matching and the next query re-reads the sources.
func TestServerInvalidateBustsTenantAnswers(t *testing.T) {
	s, fixtures := newTestServer(t, Config{}, 2)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	f := fixtures[0]
	ctx := context.Background()

	if _, err := s.Query(ctx, f.Name, f.Queries[0]); err != nil {
		t.Fatal(err)
	}
	before := s.Tenant(f.Name).cat.TotalStats().Calls
	if before == 0 {
		t.Fatal("sanity: sources were never called")
	}
	cached, err := s.Query(ctx, f.Name, f.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Complete {
		t.Fatal("cached answer must be complete")
	}
	if after := s.Tenant(f.Name).cat.TotalStats().Calls; after != before {
		t.Fatalf("second query re-read the sources: %d -> %d calls", before, after)
	}

	body, _ := json.Marshal(Request{Tenant: f.Name})
	httpResp, err := http.Post(ts.URL+"/v1/invalidate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Tenant string `json:"tenant"`
		Gen    int64  `json:"gen"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&ack); err != nil {
		t.Fatalf("invalidate body: %v", err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate status = %d", httpResp.StatusCode)
	}
	if ack.Gen <= 0 {
		t.Fatalf("invalidate gen = %d, want the bumped generation", ack.Gen)
	}

	if _, err := s.Query(ctx, f.Name, f.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if after := s.Tenant(f.Name).cat.TotalStats().Calls; after <= before {
		t.Fatalf("post-invalidate query served stale cache: calls still %d", after)
	}

	// The sibling tenant's cached answers are untouched by the bump.
	g := fixtures[1]
	if _, err := s.Query(ctx, g.Name, g.Queries[0]); err != nil {
		t.Fatal(err)
	}
	gBefore := s.Tenant(g.Name).cat.TotalStats().Calls
	if _, err := s.Query(ctx, g.Name, g.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if gAfter := s.Tenant(g.Name).cat.TotalStats().Calls; gAfter != gBefore {
		t.Errorf("tenant %s lost its cache to %s's invalidation", g.Name, f.Name)
	}
}

func TestValidateBenchReport(t *testing.T) {
	good := &LoadReport{Experiment: "E24", Requests: 10, QPS: 3.3, Sound: true}
	data, _ := json.Marshal(good)
	if err := ValidateBenchReport(data); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "p99_ms")
	bad, _ := json.Marshal(m)
	if err := ValidateBenchReport(bad); err == nil {
		t.Error("missing p99_ms must fail validation")
	}
	m["p99_ms"] = "fast"
	bad, _ = json.Marshal(m)
	if err := ValidateBenchReport(bad); err == nil {
		t.Error("non-numeric p99_ms must fail validation")
	}
	m["p99_ms"] = 1.0
	m["experiment"] = "E7"
	bad, _ = json.Marshal(m)
	if err := ValidateBenchReport(bad); err == nil {
		t.Error("wrong experiment tag must fail validation")
	}
}

func TestValidateBenchReportE25(t *testing.T) {
	good := &ColumnarReport{
		Experiment: "E25",
		Config:     ColumnarConfig{BaseRows: 4000, Fanout: 8},
		Rows:       32000, Answers: 120,
		MapMS: 75.0, ColumnarMS: 11.0, Speedup: 6.8,
		MapCalls: 49, ColumnarCalls: 49,
		MapAllocsPerOp: 280000, ColumnarAllocsPerOp: 5900,
		ByteIdentical: true,
	}
	data, _ := json.Marshal(good)
	if err := ValidateBenchReport(data); err != nil {
		t.Fatalf("valid E25 report rejected: %v", err)
	}
	remarshal := func(mutate func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		out, _ := json.Marshal(m)
		return out
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { delete(m, "speedup") })); err == nil {
		t.Error("missing speedup must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["columnar_ms"] = "fast" })); err == nil {
		t.Error("non-numeric columnar_ms must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["map_calls"] = 48.0 })); err == nil {
		t.Error("diverging source-call counts must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["byte_identical"] = false })); err == nil {
		t.Error("byte_identical=false must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["columnar_allocs_per_op"] = 400000.0 })); err == nil {
		t.Error("columnar allocs above the map baseline must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["speedup"] = 0.9 })); err == nil {
		t.Error("speedup below 1 must fail validation")
	}
}

func TestValidateBenchReportE26(t *testing.T) {
	good := &WarmRestartReport{
		Experiment: "E26",
		Config:     WarmRestartConfig{Tenants: 3, DelayMS: 2},
		Queries:    24,
		ColdCalls:  21, ColdP50MS: 0.043, ColdMeanMS: 2.05,
		SteadyCalls: 0, SteadyP50MS: 0.012, SteadyMeanMS: 0.016,
		WarmCalls: 0, WarmP50MS: 0.022, WarmMeanMS: 0.038,
		PersistLoads: 9, PersistDrops: 0, PersistBytes: 1968,
		Sound: true,
	}
	data, _ := json.Marshal(good)
	if err := ValidateBenchReport(data); err != nil {
		t.Fatalf("valid E26 report rejected: %v", err)
	}
	remarshal := func(mutate func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		out, _ := json.Marshal(m)
		return out
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { delete(m, "persist_loads") })); err == nil {
		t.Error("missing persist_loads must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["warm_p50_ms"] = "fast" })); err == nil {
		t.Error("non-numeric warm_p50_ms must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["sound"] = false })); err == nil {
		t.Error("sound=false must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["warm_calls"] = 21.0 })); err == nil {
		t.Error("warm_calls above steady state must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["persist_loads"] = 0.0 })); err == nil {
		t.Error("zero persist_loads must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["warm_mean_ms"] = 9.9 })); err == nil {
		t.Error("warm mean above cold must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["cold_calls"] = 0.0 })); err == nil {
		t.Error("zero cold_calls must fail validation")
	}
}

// Every committed BENCH_*.json at the repo root must pass the schema
// gate it was written under — a drifting schema or a hand-edited
// artifact fails here, not in a later comparison script.
func TestCommittedBenchArtifacts(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Skip("no committed bench artifacts")
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
			continue
		}
		if err := ValidateBenchReport(data); err != nil {
			t.Errorf("%s: %v", filepath.Base(path), err)
		}
	}
}

// The E26 harness end to end: cold pass pays source calls, the warm
// restart over the same directory pays none, and the report passes the
// committed-artifact schema gate.
func TestRunWarmRestart(t *testing.T) {
	rep, err := RunWarmRestart(context.Background(), t.TempDir(),
		WarmRestartConfig{Tenants: 2, DelayMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdCalls == 0 {
		t.Error("cold pass made no source calls")
	}
	if rep.WarmCalls != rep.SteadyCalls {
		t.Errorf("warm pass made %d calls, steady state is %d", rep.WarmCalls, rep.SteadyCalls)
	}
	if rep.PersistLoads == 0 {
		t.Error("warm restart loaded nothing from disk")
	}
	if !rep.Sound {
		t.Error("a pass served an unsound answer")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(data); err != nil {
		t.Errorf("harness report fails its own schema gate: %v", err)
	}
}

// The load generator against a live server must produce a sound,
// schema-valid report with traffic in it.
func TestLoadGenSoundReport(t *testing.T) {
	s, fixtures := newTestServer(t, Config{}, 3)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	report, err := RunLoad(context.Background(), ts.URL, fixtures, LoadConfig{
		Users: 4, Duration: 300 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("loadgen made no requests")
	}
	if !report.Sound {
		t.Fatalf("unsound responses: %v", report.Unsound)
	}
	if report.Errors != 0 {
		t.Errorf("errors = %d", report.Errors)
	}
	if report.QPS <= 0 || report.P50MS < 0 || report.P99MS < report.P50MS {
		t.Errorf("latency summary: qps=%.1f p50=%.3f p99=%.3f", report.QPS, report.P50MS, report.P99MS)
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(data); err != nil {
		t.Errorf("harness output fails its own schema: %v", err)
	}
}

// The invalidation mix: mid-run /v1/invalidate calls interleave with
// the load, and the generation-watermark check must observe zero
// post-invalidation responses carrying a pre-invalidation generation.
func TestLoadGenInvalidationMixSeesNoStaleRows(t *testing.T) {
	s, fixtures := newTestServer(t, Config{}, 3)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	report, err := RunLoad(context.Background(), ts.URL, fixtures, LoadConfig{
		Users: 4, Duration: 400 * time.Millisecond, Seed: 1,
		InvalidateEvery: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Invalidations == 0 {
		t.Fatal("the invalidator never fired")
	}
	if report.Stale != 0 {
		t.Fatalf("%d responses carried a generation below an acked invalidation watermark: %v",
			report.Stale, report.Unsound)
	}
	if !report.Sound {
		t.Fatalf("unsound responses under the invalidation mix: %v", report.Unsound)
	}
	if report.Config.InvalidateEveryS == 0 {
		t.Error("report config dropped the invalidation cadence")
	}
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(data); err != nil {
		t.Errorf("invalidation-mix report fails the schema gate: %v", err)
	}
}
