package server

// The E27 bench harness and artifact (BENCH_E27.json): batched IN
// pushdown through the SQL adapter vs the per-call round-trip loop.
// One fan-out join drives a deduplicated binding group of `Bindings`
// lookups into a SQL-backed relation; the batched mode services the
// group through sources.BatchSource (one IN (...) statement per
// MaxBatch chunk), the baseline hides the batch capability so the
// engine issues one statement per binding. Both modes run against the
// same in-repo fakedb backend with the same injected per-statement
// latency, the backend's own query counter is the round-trip ground
// truth, and the answers must be identical — the pushdown is an
// execution-cost optimization, never a semantics change.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	ucqn "repro"
	"repro/internal/access"
	"repro/internal/adapter/fakedb"
	"repro/internal/sources"
)

// BatchPushdownConfig is the E27 workload shape.
type BatchPushdownConfig struct {
	// Bindings is the number of distinct join keys — the size of the
	// deduplicated binding group the adapter batches. 0 means 256.
	Bindings int `json:"bindings"`
	// Fanout is the R multiplicity per key. 0 means 4.
	Fanout int `json:"fanout"`
	// Iters is the number of timed evaluations per mode. 0 means 7.
	Iters int `json:"iters"`
	// LatencyMS is the injected per-statement backend latency; it makes
	// round trips the dominant cost, as on a real network. 0 means 1.
	LatencyMS float64 `json:"latency_ms"`
}

func (c *BatchPushdownConfig) fill() {
	if c.Bindings <= 0 {
		c.Bindings = 256
	}
	if c.Fanout <= 0 {
		c.Fanout = 4
	}
	if c.Iters <= 0 {
		c.Iters = 7
	}
	if c.LatencyMS <= 0 {
		c.LatencyMS = 1
	}
}

// PushdownModeStats is one mode's per-evaluation traffic and latency.
type PushdownModeStats struct {
	// Calls is the logical source calls per evaluation.
	Calls int `json:"calls"`
	// RoundTrips is the backend statements per evaluation (the fakedb
	// query counter divided by Iters).
	RoundTrips int `json:"round_trips"`
	// BytesOnWire is the approximate backend payload per evaluation.
	BytesOnWire int64 `json:"bytes_on_wire"`
	// P50MS and P99MS are evaluation wall-clock percentiles.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// BatchPushdownReport is the E27 report. Every field is part of the
// schema checked by ValidateBenchReport.
type BatchPushdownReport struct {
	Experiment string              `json:"experiment"` // always "E27"
	Config     BatchPushdownConfig `json:"config"`
	// Bindings is the batched group size actually serviced.
	Bindings int `json:"bindings"`
	// Answers is the answer count (identical in both modes).
	Answers int `json:"answers"`
	// PerCall and Batched are the two modes' measurements.
	PerCall PushdownModeStats `json:"per_call"`
	Batched PushdownModeStats `json:"batched"`
	// RoundTripRatio is PerCall.RoundTrips / Batched.RoundTrips.
	RoundTripRatio float64 `json:"round_trip_ratio"`
	// EqualAnswers records that both modes returned the same relation.
	EqualAnswers bool `json:"equal_answers"`
}

// validateE27 schema-checks a committed E27 report and enforces the
// experiment's acceptance bar: a real binding group, identical answers,
// and at least a 10x round-trip reduction from batching.
func validateE27(raw map[string]json.RawMessage) error {
	checks := []struct {
		key  string
		into any
	}{
		{"experiment", new(string)},
		{"config", new(BatchPushdownConfig)},
		{"bindings", new(int)},
		{"answers", new(int)},
		{"per_call", new(PushdownModeStats)},
		{"batched", new(PushdownModeStats)},
		{"round_trip_ratio", new(float64)},
		{"equal_answers", new(bool)},
	}
	for _, c := range checks {
		v, ok := raw[c.key]
		if !ok {
			return fmt.Errorf("bench report: missing key %q", c.key)
		}
		if err := json.Unmarshal(v, c.into); err != nil {
			return fmt.Errorf("bench report: key %q: %w", c.key, err)
		}
	}
	var r BatchPushdownReport
	full, _ := json.Marshal(raw)
	if err := json.Unmarshal(full, &r); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if r.Bindings < 256 {
		return fmt.Errorf("bench report: bindings = %d, want >= 256", r.Bindings)
	}
	if r.Answers <= 0 {
		return fmt.Errorf("bench report: answers = %d", r.Answers)
	}
	if !r.EqualAnswers {
		return fmt.Errorf("bench report: equal_answers = false")
	}
	if r.Batched.RoundTrips <= 0 {
		return fmt.Errorf("bench report: batched round_trips = %d", r.Batched.RoundTrips)
	}
	if r.PerCall.RoundTrips < 10*r.Batched.RoundTrips {
		return fmt.Errorf("bench report: per-call %d round trips vs batched %d: less than 10x reduction",
			r.PerCall.RoundTrips, r.Batched.RoundTrips)
	}
	if r.RoundTripRatio < 10 {
		return fmt.Errorf("bench report: round_trip_ratio = %.2f, want >= 10", r.RoundTripRatio)
	}
	return nil
}

// unbatchedSource hides an adapter's batch capability, forcing the
// engine's per-call path — the E27 baseline.
type unbatchedSource struct {
	inner sources.Source
}

func (u unbatchedSource) Name() string               { return u.inner.Name() }
func (u unbatchedSource) Arity() int                 { return u.inner.Arity() }
func (u unbatchedSource) Patterns() []access.Pattern { return u.inner.Patterns() }
func (u unbatchedSource) Call(p access.Pattern, inputs []string) ([]sources.Tuple, error) {
	return sources.CallWithContext(context.Background(), u.inner, p, inputs)
}
func (u unbatchedSource) CallContext(ctx context.Context, p access.Pattern, inputs []string) ([]sources.Tuple, error) {
	return sources.CallWithContext(ctx, u.inner, p, inputs)
}
func (u unbatchedSource) StatsSnapshot() sources.Stats {
	if r, ok := u.inner.(sources.StatsReporter); ok {
		return r.StatsSnapshot()
	}
	return sources.Stats{}
}
func (u unbatchedSource) ResetStats() {
	if r, ok := u.inner.(sources.StatsReporter); ok {
		r.ResetStats()
	}
}

// RunBatchPushdown runs the E27 comparison and returns its report.
func RunBatchPushdown(ctx context.Context, cfg BatchPushdownConfig) (*BatchPushdownReport, error) {
	cfg.fill()
	q := ucqn.MustParseQuery(`Q(x, y) :- R(x, z), T(z, y).`)
	ps := ucqn.MustParsePatterns(`R^oo T^io`)

	// R fans out in memory; T lives behind the SQL adapter.
	var rRows []sources.Tuple
	for k := 0; k < cfg.Bindings; k++ {
		for f := 0; f < cfg.Fanout; f++ {
			rRows = append(rRows, sources.Tuple{fmt.Sprintf("x%d_%d", k, f), fmt.Sprintf("z%d", k)})
		}
	}
	var tRows [][]string
	for k := 0; k < cfg.Bindings; k++ {
		tRows = append(tRows, []string{fmt.Sprintf("z%d", k), fmt.Sprintf("y%d", k)})
	}
	st := fakedb.StoreFor("e27")
	st.Reset()
	st.Load("t_rel", []string{"zc", "yc"}, tRows)
	st.SetLatency(time.Duration(cfg.LatencyMS * float64(time.Millisecond)))
	defer st.SetLatency(0)

	openT := func() (sources.Source, error) {
		return ucqn.OpenAdapter(ucqn.AdapterSpec{
			Name: "T", Arity: 2, Patterns: []string{"io"},
			Backend: "sql://fakedb/e27", Table: "t_rel", Columns: []string{"zc", "yc"},
		})
	}

	measure := func(wrap func(sources.Source) sources.Source) (PushdownModeStats, *ucqn.Rel, error) {
		adapterT, err := openT()
		if err != nil {
			return PushdownModeStats{}, nil, err
		}
		rTbl, err := sources.NewTable("R", 2, []access.Pattern{"oo"}, rRows)
		if err != nil {
			return PushdownModeStats{}, nil, err
		}
		cat, err := sources.NewCatalog(rTbl, wrap(adapterT))
		if err != nil {
			return PushdownModeStats{}, nil, err
		}
		st.Reset()
		st.SetLatency(time.Duration(cfg.LatencyMS * float64(time.Millisecond)))
		rt := ucqn.NewRuntime()
		var rel *ucqn.Rel
		lat := make([]time.Duration, 0, cfg.Iters)
		for i := 0; i < cfg.Iters; i++ {
			start := time.Now()
			rel, err = rt.Answer(ctx, q, ps, cat)
			if err != nil {
				return PushdownModeStats{}, nil, err
			}
			lat = append(lat, time.Since(start))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		stats := cat.TotalStats()
		return PushdownModeStats{
			Calls:       stats.Calls / cfg.Iters,
			RoundTrips:  int(st.Queries()) / cfg.Iters,
			BytesOnWire: st.BytesOnWire() / int64(cfg.Iters),
			P50MS:       float64(pctlDur(lat, 50).Nanoseconds()) / 1e6,
			P99MS:       float64(pctlDur(lat, 99).Nanoseconds()) / 1e6,
		}, rel, nil
	}

	perCall, perCallRel, err := measure(func(s sources.Source) sources.Source { return unbatchedSource{inner: s} })
	if err != nil {
		return nil, fmt.Errorf("per-call mode: %w", err)
	}
	batched, batchedRel, err := measure(func(s sources.Source) sources.Source { return s })
	if err != nil {
		return nil, fmt.Errorf("batched mode: %w", err)
	}

	rep := &BatchPushdownReport{
		Experiment:   "E27",
		Config:       cfg,
		Bindings:     cfg.Bindings,
		Answers:      batchedRel.Len(),
		PerCall:      perCall,
		Batched:      batched,
		EqualAnswers: batchedRel.Equal(perCallRel),
	}
	if batched.RoundTrips > 0 {
		rep.RoundTripRatio = float64(perCall.RoundTrips) / float64(batched.RoundTrips)
	}
	return rep, nil
}
