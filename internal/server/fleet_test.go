package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	ucqn "repro"
	"repro/internal/qcache/persist"
)

// openFleetServer boots a server replica over the shared dir with
// manual fleet ticks and per-append durability, returning the server
// and the metered catalogs (one per fixture tenant).
func openFleetServer(t *testing.T, dir, id string, fixtures []*TenantFixture) (*Server, []*ucqn.Catalog) {
	t.Helper()
	s, err := Open(Config{
		FleetDir:        dir,
		FleetID:         id,
		FleetManualTick: true,
		PersistOptions:  persist.Options{SyncEvery: 1},
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", id, err)
	}
	cats := make([]*ucqn.Catalog, 0, len(fixtures))
	for _, f := range fixtures {
		cat := f.Catalog()
		if _, err := s.AddTenant(f.Name, f.Patterns, cat, ucqn.Budget{}); err != nil {
			t.Fatal(err)
		}
		cats = append(cats, cat)
	}
	return s, cats
}

// fleetPass serves every fixture query once, verifies each response
// against the ground truth, and returns the pass's source-call delta.
func fleetPass(t *testing.T, s *Server, cats []*ucqn.Catalog, fixtures []*TenantFixture) int {
	t.Helper()
	before := totalCalls(cats)
	for _, f := range fixtures {
		for qi, q := range f.Queries {
			resp, err := s.Query(context.Background(), f.Name, q)
			if err != nil {
				t.Fatalf("%s q%d: %v", f.Name, qi, err)
			}
			if !resp.Complete {
				t.Fatalf("%s q%d: incomplete", f.Name, qi)
			}
			if got := relOf(resp.Answers); !got.Equal(f.Expected[qi]) {
				t.Fatalf("%s q%d: answers = %v, ground truth %v", f.Name, qi, got, f.Expected[qi])
			}
		}
	}
	return totalCalls(cats) - before
}

// Two server replicas over one fleet directory: B warm-starts from
// the answers A paid for, and an invalidation accepted by B kills the
// answer on A within one tick — the E28 regime, in-process.
func TestServerFleetWarmStartAndInvalidationFanOut(t *testing.T) {
	dir := t.TempDir()
	fixtures := PaperTenants(2)

	a, catsA := openFleetServer(t, dir, "replica-a", fixtures)
	if a.Fleet().Role().String() != "writer" {
		t.Fatalf("first replica role = %s", a.Fleet().Role())
	}
	cold := fleetPass(t, a, catsA, fixtures)
	if cold == 0 {
		t.Fatal("sanity: cold pass made no source calls")
	}
	steady := fleetPass(t, a, catsA, fixtures)

	// B joins the same directory with fresh catalogs: after one tick it
	// serves the whole mix at the sibling's steady state — A's disk
	// answers, not B's sources, pay for the pass.
	b, catsB := openFleetServer(t, dir, "replica-b", fixtures)
	if b.Fleet().Role().String() != "reader" {
		t.Fatalf("second replica role = %s", b.Fleet().Role())
	}
	b.Fleet().Tick(time.Now())
	warm := fleetPass(t, b, catsB, fixtures)
	if warm > steady {
		t.Fatalf("replica B warm pass made %d calls, sibling steady state is %d", warm, steady)
	}
	if warm >= cold {
		t.Fatalf("replica B paid the cold cost: %d calls vs %d", warm, cold)
	}

	// Role and lease surface in stats and healthz on both replicas.
	if st := a.Stats(); st.Fleet == nil || st.Fleet.Role != "writer" || st.Fleet.LeaseID != "replica-a" {
		t.Fatalf("A fleet stats = %+v", st.Fleet)
	}
	if st := b.Stats(); st.Fleet == nil || st.Fleet.Role != "reader" {
		t.Fatalf("B fleet stats = %+v", st.Fleet)
	}
	tsA := httptest.NewServer(a.Handler())
	defer tsA.Close()
	if body := healthzBody(t, tsA.URL); !strings.Contains(body, "role=writer") || !strings.Contains(body, "staleness_bound_ms=") {
		t.Fatalf("writer healthz = %q", body)
	}

	// An invalidation accepted by B (a reader: it goes durable in B's
	// inbox) re-derives on B at once...
	f := fixtures[0]
	gen, err := b.Invalidate(f.Name)
	if err != nil || gen <= 0 {
		t.Fatalf("Invalidate on reader: gen=%d err=%v", gen, err)
	}
	beforeB := totalCalls(catsB)
	if _, err := b.Query(context.Background(), f.Name, f.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if totalCalls(catsB) == beforeB {
		t.Fatal("B served a tombstoned answer after its own invalidation")
	}

	// ...and reaches A within one tick: A's warm cache for the tenant
	// is orphaned and the next query re-reads the sources.
	beforeA := totalCalls(catsA)
	if _, err := a.Query(context.Background(), f.Name, f.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if totalCalls(catsA) != beforeA {
		t.Fatal("sanity: A was not warm before the fan-out tick")
	}
	a.Fleet().Tick(time.Now())
	resp, err := a.Query(context.Background(), f.Name, f.Queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if totalCalls(catsA) == beforeA {
		t.Fatal("A served a tombstoned answer after the invalidation fanned out")
	}
	if got := relOf(resp.Answers); !got.Equal(f.Expected[0]) {
		t.Fatalf("post-invalidation answers = %v, ground truth %v", got, f.Expected[0])
	}
	// The sibling tenant's warm answers survive the bump on both sides.
	g := fixtures[1]
	beforeG := totalCalls(catsA)
	if _, err := a.Query(context.Background(), g.Name, g.Queries[0]); err != nil {
		t.Fatal(err)
	}
	if totalCalls(catsA) != beforeG {
		t.Errorf("tenant %s lost its fleet cache to %s's invalidation", g.Name, f.Name)
	}

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

// The E28 harness end to end: replica B's warm pass rides on A's
// answers, the reader-issued invalidation re-derives on both sides,
// and the report passes the committed-artifact schema gate.
func TestRunFleetShare(t *testing.T) {
	rep, err := RunFleetShare(context.Background(), t.TempDir(),
		FleetShareConfig{Tenants: 2, DelayMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColdCalls == 0 {
		t.Error("cold pass made no source calls")
	}
	if rep.WarmCalls > rep.SteadyCalls {
		t.Errorf("replica B made %d calls, sibling steady state is %d", rep.WarmCalls, rep.SteadyCalls)
	}
	if rep.PostInvalidationCallsB == 0 || rep.PostInvalidationCallsA == 0 {
		t.Errorf("invalidation did not re-derive on both replicas: B=%d A=%d",
			rep.PostInvalidationCallsB, rep.PostInvalidationCallsA)
	}
	if !rep.Sound {
		t.Error("a pass served an unsound answer")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(data); err != nil {
		t.Errorf("harness report fails its own schema gate: %v", err)
	}
}

func healthzBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d (the replica still serves; it must not be pulled)", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// An inert persistence log must surface in /v1/stats and flip healthz
// to "degraded" — without failing queries or the health check itself.
func TestServerHealthzDegradedWhenLogInert(t *testing.T) {
	s, err := Open(Config{
		PersistDir:     t.TempDir(),
		PersistOptions: persist.Options{FS: &persist.FaultFS{FailSyncEveryN: 1}, SyncEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fixtures := PaperTenants(1)
	f := fixtures[0]
	if _, err := s.AddTenant(f.Name, f.Patterns, f.Catalog(), ucqn.Budget{}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if body := healthzBody(t, ts.URL); !strings.HasPrefix(body, "ok") {
		t.Fatalf("healthy healthz = %q", body)
	}

	// The first cached answer's fsync fails: the log goes inert, the
	// query still answers completely.
	resp, err := s.Query(context.Background(), f.Name, f.Queries[0])
	if err != nil {
		t.Fatalf("query over broken storage: %v", err)
	}
	if !resp.Complete {
		t.Fatal("query degraded by a broken log")
	}
	if st := s.Stats(); st.Persist.Broken == "" {
		t.Fatalf("stats did not surface the inert log: %+v", st.Persist)
	}
	body := healthzBody(t, ts.URL)
	if !strings.HasPrefix(body, "degraded") || !strings.Contains(body, "persist=") {
		t.Fatalf("healthz over inert log = %q, want degraded with the persist reason", body)
	}
}
