package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	ucqn "repro"
	"repro/internal/adapter"
	"repro/internal/adapter/fakedb"
)

func TestValidateBenchReportE27(t *testing.T) {
	good := &BatchPushdownReport{
		Experiment: "E27",
		Config:     BatchPushdownConfig{Bindings: 256, Fanout: 4, Iters: 7, LatencyMS: 1},
		Bindings:   256, Answers: 1024,
		PerCall:        PushdownModeStats{Calls: 257, RoundTrips: 256, BytesOnWire: 12000, P50MS: 300, P99MS: 310},
		Batched:        PushdownModeStats{Calls: 257, RoundTrips: 1, BytesOnWire: 3500, P50MS: 3, P99MS: 4},
		RoundTripRatio: 256,
		EqualAnswers:   true,
	}
	data, _ := json.Marshal(good)
	if err := ValidateBenchReport(data); err != nil {
		t.Fatalf("valid E27 report rejected: %v", err)
	}
	remarshal := func(mutate func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		out, _ := json.Marshal(m)
		return out
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { delete(m, "round_trip_ratio") })); err == nil {
		t.Error("missing round_trip_ratio must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["bindings"] = "many" })); err == nil {
		t.Error("non-numeric bindings must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["bindings"] = 100.0 })); err == nil {
		t.Error("bindings below 256 must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["equal_answers"] = false })); err == nil {
		t.Error("equal_answers=false must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["answers"] = 0.0 })); err == nil {
		t.Error("zero answers must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) {
		m["per_call"] = map[string]any{"calls": 257, "round_trips": 5, "bytes_on_wire": 12000, "p50_ms": 300.0, "p99_ms": 310.0}
	})); err == nil {
		t.Error("less than 10x round-trip reduction must fail validation")
	}
	if err := ValidateBenchReport(remarshal(func(m map[string]any) { m["round_trip_ratio"] = 2.0 })); err == nil {
		t.Error("round_trip_ratio below 10 must fail validation")
	}
}

// The E27 harness end to end at a small size: the batched mode must
// reach the 10x round-trip bar with identical answers, and the report
// must pass the committed-artifact schema gate.
func TestRunBatchPushdown(t *testing.T) {
	rep, err := RunBatchPushdown(context.Background(),
		BatchPushdownConfig{Bindings: 256, Fanout: 2, Iters: 2, LatencyMS: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.EqualAnswers {
		t.Fatal("per-call and batched answers diverge")
	}
	if rep.Answers != 256*2 {
		t.Errorf("answers = %d, want %d", rep.Answers, 256*2)
	}
	if rep.PerCall.RoundTrips < 10*rep.Batched.RoundTrips {
		t.Errorf("round trips %d vs %d: batching saved less than 10x",
			rep.PerCall.RoundTrips, rep.Batched.RoundTrips)
	}
	if rep.Batched.BytesOnWire >= rep.PerCall.BytesOnWire {
		t.Errorf("batched wire bytes %d did not drop below per-call %d",
			rep.Batched.BytesOnWire, rep.PerCall.BytesOnWire)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateBenchReport(data); err != nil {
		t.Errorf("E27 report fails its own schema gate: %v", err)
	}
}

// A catalog config file mounts straight onto the multi-tenant server:
// the tenant's relations live behind the SQL adapter and are queryable
// over the HTTP API.
func TestMountCatalogConfig(t *testing.T) {
	st := fakedb.StoreFor("mount_test")
	st.Reset()
	st.Load("edges", []string{"src", "dst"}, [][]string{
		{"a", "b"}, {"b", "c"}, {"c", "a"},
	})
	cfg := &adapter.Config{Tenants: []adapter.CatalogConfig{{
		Tenant: "graph",
		Sources: []adapter.Spec{{
			Name: "E", Arity: 2, Patterns: []string{"oo", "io"},
			Backend: "sql://fakedb/mount_test", Table: "edges", Columns: []string{"src", "dst"},
		}},
	}}}
	s := New(Config{})
	if err := MountCatalogConfig(s, cfg, ucqn.Budget{}); err != nil {
		t.Fatal(err)
	}
	if s.Tenant("graph") == nil {
		t.Fatal("tenant not registered")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _, code := post(t, ts.URL, "graph", `Q(x, y) :- E(x, y).`)
	if code != 200 {
		t.Fatalf("query status = %d", code)
	}
	if got := relOf(resp.Answers); got.Len() != 3 {
		t.Fatalf("answers = %d, want 3", got.Len())
	}

	// A second mount of the same tenant name must fail.
	if err := MountCatalogConfig(s, cfg, ucqn.Budget{}); err == nil {
		t.Fatal("duplicate tenant mount must fail")
	}
}
