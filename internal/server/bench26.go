package server

// The E26 bench harness and artifact (BENCH_E26.json): cold start vs
// warm restart through the serving layer. One server opens over an
// empty persistence directory and serves the full fixture mix twice
// (the cold pass pays every source call; the steady pass is the PR-4
// answer-cache regime), then shuts down cleanly and a second server —
// fresh process state, fresh catalogs, same directory — serves the mix
// again. The warm pass must match the steady pass's source calls: the
// restart recovered the answers from disk instead of re-calling the
// sources. Every response in every pass is verified against the
// fixture's naive ground truth, so a recovery bug that resurrects
// stale or corrupt rows fails the run, not just the numbers.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	ucqn "repro"
)

// WarmRestartConfig is the E26 workload shape.
type WarmRestartConfig struct {
	// Tenants is the fixture tenant count; 0 means 3.
	Tenants int `json:"tenants"`
	// DelayMS is the artificial per-source-call latency. It makes the
	// cold pass's p50 visibly dominated by source round trips, the cost
	// the warm restart exists to avoid.
	DelayMS float64 `json:"delay_ms"`
}

func (c WarmRestartConfig) tenants() int {
	if c.Tenants > 0 {
		return c.Tenants
	}
	return 3
}

// WarmRestartReport is the E26 report. Every field is part of the
// schema checked by ValidateBenchReport. Calls are summed over one
// full pass (every tenant × every fixture query); p50 is over the
// per-query latencies of that pass.
type WarmRestartReport struct {
	Experiment string            `json:"experiment"` // always "E26"
	Config     WarmRestartConfig `json:"config"`
	// Queries is the number of requests per pass.
	Queries int `json:"queries"`
	// Cold: first pass of the first server over an empty directory.
	// The mean is the telling latency — the fixture mix hits the
	// in-memory cache within the pass (α-variants, union reuse), so
	// the per-pass median underweights the queries that actually pay
	// source round trips.
	ColdCalls  int     `json:"cold_calls"`
	ColdP50MS  float64 `json:"cold_p50_ms"`
	ColdMeanMS float64 `json:"cold_mean_ms"`
	// Steady: second pass of the same server — the in-memory
	// answer-cache regime a restart is measured against.
	SteadyCalls  int     `json:"steady_calls"`
	SteadyP50MS  float64 `json:"steady_p50_ms"`
	SteadyMeanMS float64 `json:"steady_mean_ms"`
	// Warm: first pass of a second server opened over the same
	// directory with fresh catalogs.
	WarmCalls  int     `json:"warm_calls"`
	WarmP50MS  float64 `json:"warm_p50_ms"`
	WarmMeanMS float64 `json:"warm_mean_ms"`
	// PersistLoads/Drops/Bytes are the restarted cache's recovery
	// counters: entries warm-loaded from disk, entries dropped
	// (corrupt, stale, expired), and row bytes restored.
	PersistLoads int   `json:"persist_loads"`
	PersistDrops int   `json:"persist_drops"`
	PersistBytes int64 `json:"persist_bytes"`
	// Sound records that every response of every pass verified against
	// the naive ground truth.
	Sound bool `json:"sound"`
}

// RunWarmRestart runs the E26 experiment over dir, which must be an
// empty (or fresh) directory; the persistence log is created there and
// left behind for inspection.
func RunWarmRestart(ctx context.Context, dir string, cfg WarmRestartConfig) (*WarmRestartReport, error) {
	fixtures := PaperTenants(cfg.tenants())
	delay := time.Duration(cfg.DelayMS * float64(time.Millisecond))

	// open boots a server over dir with fresh catalogs — the second
	// call is the restart: new catalog identities, same tenant names,
	// so recovery must re-home the persisted entries by label. The
	// catalogs are returned so each pass can meter the actual source
	// traffic (TotalStats deltas), not a budget counter.
	open := func() (*Server, []*ucqn.Catalog, error) {
		s, err := Open(Config{PersistDir: dir})
		if err != nil {
			return nil, nil, err
		}
		cats := make([]*ucqn.Catalog, 0, len(fixtures))
		for _, f := range fixtures {
			cat := f.Catalog()
			if delay > 0 {
				if cat, err = ucqn.DelayedCatalog(cat, delay); err != nil {
					return nil, nil, err
				}
			}
			if _, err := s.AddTenant(f.Name, f.Patterns, cat, ucqn.Budget{}); err != nil {
				return nil, nil, err
			}
			cats = append(cats, cat)
		}
		return s, cats, nil
	}

	rep := &WarmRestartReport{
		Experiment: "E26",
		Config:     cfg,
		Sound:      true,
	}

	s, cats, err := open()
	if err != nil {
		return nil, err
	}
	cold, err := warmRestartPass(ctx, s, cats, fixtures, rep)
	if err != nil {
		return nil, err
	}
	steady, err := warmRestartPass(ctx, s, cats, fixtures, rep)
	if err != nil {
		return nil, err
	}
	if err := s.Close(); err != nil {
		return nil, fmt.Errorf("close first server: %w", err)
	}

	s2, cats2, err := open()
	if err != nil {
		return nil, fmt.Errorf("reopen: %w", err)
	}
	warm, err := warmRestartPass(ctx, s2, cats2, fixtures, rep)
	if err != nil {
		return nil, err
	}
	st := s2.Cache().Stats()
	rep.PersistLoads = st.PersistLoads
	rep.PersistDrops = st.PersistDrops
	rep.PersistBytes = st.PersistBytes
	if err := s2.Close(); err != nil {
		return nil, fmt.Errorf("close second server: %w", err)
	}

	rep.Queries = cold.queries
	rep.ColdCalls, rep.ColdP50MS, rep.ColdMeanMS = cold.calls, cold.p50MS, cold.meanMS
	rep.SteadyCalls, rep.SteadyP50MS, rep.SteadyMeanMS = steady.calls, steady.p50MS, steady.meanMS
	rep.WarmCalls, rep.WarmP50MS, rep.WarmMeanMS = warm.calls, warm.p50MS, warm.meanMS
	return rep, nil
}

// passStats summarizes one full pass over the fixture mix.
type passStats struct {
	queries int
	calls   int
	p50MS   float64
	meanMS  float64
}

// warmRestartPass serves every fixture query of every tenant once,
// verifying each response against the ground truth and flipping
// rep.Sound on any violation. Source traffic is the pass's delta of
// the catalogs' call meters.
func warmRestartPass(ctx context.Context, s *Server, cats []*ucqn.Catalog, fixtures []*TenantFixture, rep *WarmRestartReport) (passStats, error) {
	var ps passStats
	var lats []time.Duration
	before := totalCalls(cats)
	for _, f := range fixtures {
		for qi, q := range f.Queries {
			start := time.Now()
			resp, err := s.Query(ctx, f.Name, q)
			if err != nil {
				return ps, fmt.Errorf("%s q%d: %w", f.Name, qi, err)
			}
			lats = append(lats, time.Since(start))
			ps.queries++
			if msg := checkSound(f, qi, resp); msg != "" {
				rep.Sound = false
			}
		}
	}
	ps.calls = totalCalls(cats) - before
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ps.p50MS = float64(pctlDur(lats, 50).Nanoseconds()) / 1e6
	ps.meanMS = float64(sum.Nanoseconds()) / 1e6 / float64(len(lats))
	return ps, nil
}

// totalCalls sums the catalogs' cumulative source-call meters.
func totalCalls(cats []*ucqn.Catalog) int {
	total := 0
	for _, c := range cats {
		total += c.TotalStats().Calls
	}
	return total
}

// validateE26 schema-checks a WarmRestartReport document and enforces
// the acceptance invariants the artifact exists to witness: the warm
// restart matches the steady-state source-call count (the disk log —
// not re-calling the sources — repopulated the cache), recovery
// actually loaded entries, and every answer verified.
func validateE26(raw map[string]json.RawMessage) error {
	checks := []struct {
		key  string
		into any
	}{
		{"experiment", new(string)},
		{"config", new(WarmRestartConfig)},
		{"queries", new(int)},
		{"cold_calls", new(int)},
		{"cold_p50_ms", new(float64)},
		{"cold_mean_ms", new(float64)},
		{"steady_calls", new(int)},
		{"steady_p50_ms", new(float64)},
		{"steady_mean_ms", new(float64)},
		{"warm_calls", new(int)},
		{"warm_p50_ms", new(float64)},
		{"warm_mean_ms", new(float64)},
		{"persist_loads", new(int)},
		{"persist_drops", new(int)},
		{"persist_bytes", new(int64)},
		{"sound", new(bool)},
	}
	for _, c := range checks {
		v, ok := raw[c.key]
		if !ok {
			return fmt.Errorf("bench report: missing key %q", c.key)
		}
		if err := json.Unmarshal(v, c.into); err != nil {
			return fmt.Errorf("bench report: key %q: %w", c.key, err)
		}
	}
	var r WarmRestartReport
	full, _ := json.Marshal(raw)
	if err := json.Unmarshal(full, &r); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if r.Queries <= 0 {
		return fmt.Errorf("bench report: queries = %d", r.Queries)
	}
	if !r.Sound {
		return fmt.Errorf("bench report: sound = false")
	}
	if r.ColdCalls <= 0 {
		return fmt.Errorf("bench report: cold_calls = %d, want > 0", r.ColdCalls)
	}
	if r.WarmCalls > r.SteadyCalls {
		return fmt.Errorf("bench report: warm_calls = %d did not reach steady state %d",
			r.WarmCalls, r.SteadyCalls)
	}
	if r.WarmCalls >= r.ColdCalls {
		return fmt.Errorf("bench report: warm_calls = %d, want < cold %d", r.WarmCalls, r.ColdCalls)
	}
	if r.PersistLoads <= 0 {
		return fmt.Errorf("bench report: persist_loads = %d, want > 0", r.PersistLoads)
	}
	// No p50 gate: the fixture mix hits the in-memory cache within a
	// pass, so both medians sit in the microsecond noise floor (see the
	// ColdP50MS comment) — the mean is the enforceable contrast.
	if r.WarmMeanMS >= r.ColdMeanMS {
		return fmt.Errorf("bench report: warm mean %.3fms did not drop below cold %.3fms",
			r.WarmMeanMS, r.ColdMeanMS)
	}
	return nil
}
