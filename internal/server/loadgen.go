package server

// Closed-loop load generator and the E24 bench harness. N simulated
// users issue a Zipf-distributed query mix against a running ucqnd,
// verify every response against the fixture's naive ground truth
// (complete answers must be exact; shed or degraded answers must be
// subsets — the soundness half of the ANSWER* contract), and the run is
// summarized as BENCH_E24.json with p50/p99/QPS so later PRs have a
// perf trajectory to compare against.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	ucqn "repro"
)

// LoadConfig shapes one load run.
type LoadConfig struct {
	// Users is the number of closed-loop clients; 0 means 8.
	Users int
	// Duration is how long the run lasts; 0 means 3s.
	Duration time.Duration
	// Seed makes the query mix reproducible.
	Seed int64
	// ZipfS is the Zipf skew parameter (>1); 0 means 1.2.
	ZipfS float64
	// InvalidateEvery, when positive, runs a background invalidator
	// that POSTs /v1/invalidate for a random tenant at this interval
	// mid-run. Each ack returns the bumped generation, which becomes
	// the tenant's watermark: every response whose request started
	// after the ack must carry Gen >= watermark, or the run reports it
	// stale (a row cached before the invalidation leaked through).
	InvalidateEvery time.Duration
}

func (c LoadConfig) users() int {
	if c.Users > 0 {
		return c.Users
	}
	return 8
}

func (c LoadConfig) duration() time.Duration {
	if c.Duration > 0 {
		return c.Duration
	}
	return 3 * time.Second
}

func (c LoadConfig) zipfS() float64 {
	if c.ZipfS > 1 {
		return c.ZipfS
	}
	return 1.2
}

// LoadReport is the harness output (BENCH_E24.json). Every field is
// part of the schema checked by ValidateBenchReport.
type LoadReport struct {
	Experiment string     `json:"experiment"`
	Config     LoadParams `json:"config"`
	Requests   int        `json:"requests"`
	QPS        float64    `json:"qps"`
	P50MS      float64    `json:"p50_ms"`
	P99MS      float64    `json:"p99_ms"`
	Shed       int        `json:"shed"`
	Degraded   int        `json:"degraded"`
	Complete   int        `json:"complete"`
	Errors     int        `json:"errors"`
	Sound      bool       `json:"sound"`
	Unsound    []string   `json:"unsound,omitempty"`
	// Invalidations counts acked mid-run /v1/invalidate calls (0 when
	// LoadConfig.InvalidateEvery is off); Stale counts responses that
	// violated an invalidation watermark — started after an ack yet
	// carrying an older generation. Any nonzero Stale fails the run.
	Invalidations int `json:"invalidations"`
	Stale         int `json:"stale"`
}

// LoadParams echoes the run's configuration into the report.
type LoadParams struct {
	Users     int     `json:"users"`
	DurationS float64 `json:"duration_s"`
	Tenants   int     `json:"tenants"`
	Queries   int     `json:"queries"`
	ZipfS     float64 `json:"zipf_s"`
	Seed      int64   `json:"seed"`
	// InvalidateEveryS is the mid-run invalidation interval (0 = off).
	InvalidateEveryS float64 `json:"invalidate_every_s,omitempty"`
}

// RunLoad drives the load against baseURL (e.g. "http://127.0.0.1:8099")
// until the duration elapses or ctx is cancelled, and returns the
// report. Soundness is verified per response against the fixtures.
func RunLoad(ctx context.Context, baseURL string, tenants []*TenantFixture, cfg LoadConfig) (*LoadReport, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("loadgen: no tenants")
	}
	nq := len(tenants[0].Queries)
	report := &LoadReport{
		Experiment: "E24",
		Config: LoadParams{
			Users:            cfg.users(),
			DurationS:        cfg.duration().Seconds(),
			Tenants:          len(tenants),
			Queries:          nq,
			ZipfS:            cfg.zipfS(),
			Seed:             cfg.Seed,
			InvalidateEveryS: cfg.InvalidateEvery.Seconds(),
		},
		Sound: true,
	}

	deadline := time.Now().Add(cfg.duration())
	rctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	client := &http.Client{}

	var mu sync.Mutex
	var latencies []time.Duration
	// watermarks holds, per tenant, the highest generation an acked
	// mid-run invalidation reported. A worker snapshots the watermark
	// before issuing a request; the response must come back at or past
	// it (the server took the invalidation before the ack, so any
	// request started after it cannot legitimately see an older
	// generation).
	watermarks := map[string]int64{}
	var wg sync.WaitGroup
	start := time.Now()
	if cfg.InvalidateEvery > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + 104729))
			tick := time.NewTicker(cfg.InvalidateEvery)
			defer tick.Stop()
			for {
				select {
				case <-rctx.Done():
					return
				case <-tick.C:
				}
				f := tenants[rng.Intn(len(tenants))]
				gen, err := postInvalidate(rctx, client, baseURL, f.Name)
				mu.Lock()
				if err != nil {
					if rctx.Err() == nil {
						report.Errors++
					}
				} else {
					report.Invalidations++
					if gen > watermarks[f.Name] {
						watermarks[f.Name] = gen
					}
				}
				mu.Unlock()
			}
		}()
	}
	for u := 0; u < cfg.users(); u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(u)*7919))
			zipf := rand.NewZipf(rng, cfg.zipfS(), 1, uint64(nq-1))
			for rctx.Err() == nil {
				f := tenants[rng.Intn(len(tenants))]
				qi := int(zipf.Uint64())
				mu.Lock()
				wm := watermarks[f.Name]
				mu.Unlock()
				t0 := time.Now()
				resp, err := postQuery(rctx, client, baseURL, f.Name, f.Queries[qi])
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					if rctx.Err() == nil {
						report.Errors++
					}
					mu.Unlock()
					continue
				}
				report.Requests++
				latencies = append(latencies, lat)
				if wm > 0 && resp.Gen < wm {
					report.Stale++
					if len(report.Unsound) < 10 {
						report.Unsound = append(report.Unsound,
							fmt.Sprintf("%s q%d: gen %d below invalidation watermark %d", f.Name, qi, resp.Gen, wm))
					}
				}
				if resp.Shed {
					report.Shed++
				}
				if resp.Degraded {
					report.Degraded++
				}
				if resp.Complete {
					report.Complete++
				}
				if msg := checkSound(f, qi, resp); msg != "" {
					report.Sound = false
					if len(report.Unsound) < 10 {
						report.Unsound = append(report.Unsound, msg)
					}
				}
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if report.Requests > 0 {
		report.QPS = float64(report.Requests) / elapsed.Seconds()
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		report.P50MS = float64(pctlDur(latencies, 50).Microseconds()) / 1000
		report.P99MS = float64(pctlDur(latencies, 99).Microseconds()) / 1000
	}
	return report, nil
}

// postQuery issues one POST /v1/query and decodes the response.
func postQuery(ctx context.Context, client *http.Client, baseURL, tenant, query string) (*Response, error) {
	body, err := json.Marshal(Request{Tenant: tenant, Query: query})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: status %d", httpResp.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// postInvalidate issues one POST /v1/invalidate and returns the acked
// generation watermark.
func postInvalidate(ctx context.Context, client *http.Client, baseURL, tenant string) (int64, error) {
	body, err := json.Marshal(Request{Tenant: tenant})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/invalidate", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	httpResp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("loadgen: invalidate status %d", httpResp.StatusCode)
	}
	var ack struct {
		Gen int64 `json:"gen"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&ack); err != nil {
		return 0, err
	}
	return ack.Gen, nil
}

// checkSound verifies one response against the ground truth: every
// answer row must be a certain answer, and a response claiming
// completeness must be exactly the ground truth. Returns "" when sound.
func checkSound(f *TenantFixture, qi int, resp *Response) string {
	expected := f.Expected[qi]
	got := ucqn.NewRel()
	for _, row := range resp.Answers {
		r := make(ucqn.Row, len(row))
		for i, v := range row {
			r[i] = ucqn.Value{S: v}
		}
		got.Add(r)
		if !expected.Contains(r) {
			return fmt.Sprintf("%s q%d: row %v not a certain answer", f.Name, qi, row)
		}
	}
	if resp.Complete && !got.Equal(expected) {
		return fmt.Sprintf("%s q%d: claimed complete with %d rows, ground truth has %d",
			f.Name, qi, got.Len(), expected.Len())
	}
	return ""
}

// pctlDur returns the p-th percentile of sorted latencies.
func pctlDur(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}

// WriteBenchReport writes the report to path as indented JSON.
func WriteBenchReport(path string, r *LoadReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateBenchReport schema-checks a committed BENCH_*.json document:
// required keys present with the right JSON types and sane values. It
// dispatches on the experiment tag — "E24" is the serving load report
// (LoadReport), "E25" the columnar evaluator report (ColumnarReport),
// "E26" the warm-restart report (WarmRestartReport), "E27" the batched
// pushdown report (BatchPushdownReport), "E28" the cache-fleet report
// (FleetShareReport). CI runs it on the harness outputs so a drifting
// schema fails the build, not a later comparison script.
func ValidateBenchReport(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("bench report: not a JSON object: %w", err)
	}
	tag, ok := raw["experiment"]
	if !ok {
		return fmt.Errorf("bench report: missing key %q", "experiment")
	}
	var exp string
	if err := json.Unmarshal(tag, &exp); err != nil {
		return fmt.Errorf("bench report: key %q: %w", "experiment", err)
	}
	switch exp {
	case "E24":
		return validateE24(raw)
	case "E25":
		return validateE25(raw)
	case "E26":
		return validateE26(raw)
	case "E27":
		return validateE27(raw)
	case "E28":
		return validateE28(raw)
	default:
		return fmt.Errorf("bench report: experiment = %q, want E24, E25, E26, E27, or E28", exp)
	}
}

// validateE24 schema-checks the serving load report.
func validateE24(raw map[string]json.RawMessage) error {
	checks := []struct {
		key  string
		into any
	}{
		{"experiment", new(string)},
		{"config", new(LoadParams)},
		{"requests", new(int)},
		{"qps", new(float64)},
		{"p50_ms", new(float64)},
		{"p99_ms", new(float64)},
		{"shed", new(int)},
		{"degraded", new(int)},
		{"complete", new(int)},
		{"errors", new(int)},
		{"sound", new(bool)},
	}
	for _, c := range checks {
		v, ok := raw[c.key]
		if !ok {
			return fmt.Errorf("bench report: missing key %q", c.key)
		}
		if err := json.Unmarshal(v, c.into); err != nil {
			return fmt.Errorf("bench report: key %q: %w", c.key, err)
		}
	}
	var reqs int
	_ = json.Unmarshal(raw["requests"], &reqs)
	if reqs < 0 {
		return fmt.Errorf("bench report: requests = %d", reqs)
	}
	// Stale is required to be zero when present (reports predating the
	// invalidation mix do not carry the key).
	if v, ok := raw["stale"]; ok {
		var stale int
		if err := json.Unmarshal(v, &stale); err != nil {
			return fmt.Errorf("bench report: key %q: %w", "stale", err)
		}
		if stale != 0 {
			return fmt.Errorf("bench report: stale = %d, want 0 (a post-invalidation response carried an old generation)", stale)
		}
	}
	return nil
}
