package server

// The E28 bench harness and artifact (BENCH_E28.json): cache-fleet
// sharing and fleet-wide invalidation through the serving layer. One
// server replica (A, the lease holder) opens over an empty shared
// directory and serves the full fixture mix twice — the cold pass pays
// every source call, the steady pass is the in-memory answer-cache
// regime. A second replica (B, fresh process state, fresh catalogs,
// same directory) joins as a reader, refreshes once, and serves the
// mix: its warm pass must match A's steady state — the answers A paid
// for, not B's sources, service the pass. Then an invalidation
// accepted by B (the *reader*: it travels through B's durable inbox,
// not the shared log) must kill the tenant's answers on BOTH replicas
// within one tick: each side's next query re-reads the sources and
// verifies against ground truth. Every response of every pass is
// checked against the fixture's naive ground truth, so a fleet bug
// that serves a sibling's stale or corrupt rows fails the run, not
// just the numbers.

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	ucqn "repro"
	"repro/internal/qcache/persist"
)

// FleetShareConfig is the E28 workload shape.
type FleetShareConfig struct {
	// Tenants is the fixture tenant count; 0 means 3.
	Tenants int `json:"tenants"`
	// DelayMS is the artificial per-source-call latency, making the
	// cold pass's latency visibly dominated by the round trips the
	// fleet warm start avoids.
	DelayMS float64 `json:"delay_ms"`
}

func (c FleetShareConfig) tenants() int {
	if c.Tenants > 0 {
		return c.Tenants
	}
	return 3
}

// FleetShareReport is the E28 report. Every field is part of the
// schema checked by ValidateBenchReport. Calls are summed over one
// full pass (every tenant × every fixture query).
type FleetShareReport struct {
	Experiment string           `json:"experiment"` // always "E28"
	Config     FleetShareConfig `json:"config"`
	// Queries is the number of requests per pass.
	Queries int `json:"queries"`
	// Cold: replica A's first pass over the empty shared directory.
	ColdCalls  int     `json:"cold_calls"`
	ColdP50MS  float64 `json:"cold_p50_ms"`
	ColdMeanMS float64 `json:"cold_mean_ms"`
	// Steady: A's second pass — the in-memory regime B is measured
	// against.
	SteadyCalls  int     `json:"steady_calls"`
	SteadyP50MS  float64 `json:"steady_p50_ms"`
	SteadyMeanMS float64 `json:"steady_mean_ms"`
	// Warm: replica B's first pass after one follower refresh of the
	// shared state.
	WarmCalls  int     `json:"warm_calls"`
	WarmP50MS  float64 `json:"warm_p50_ms"`
	WarmMeanMS float64 `json:"warm_mean_ms"`
	// InvalidationGen is the generation acked by the reader-side
	// /v1/invalidate; PostInvalidationCallsB and ...CallsA are the
	// source calls each replica paid re-deriving the killed tenant's
	// first query (both must be > 0 — neither side served the corpse).
	InvalidationGen        int64 `json:"invalidation_gen"`
	PostInvalidationCallsB int   `json:"post_invalidation_calls_b"`
	PostInvalidationCallsA int   `json:"post_invalidation_calls_a"`
	// Roles as observed after B's refresh (the lease holder and the
	// follower the numbers belong to).
	RoleA string `json:"role_a"`
	RoleB string `json:"role_b"`
	// Sound records that every response of every pass verified against
	// the naive ground truth.
	Sound bool `json:"sound"`
}

// RunFleetShare runs the E28 experiment over dir, which must be an
// empty (or fresh) directory; the shared fleet state is created there
// and left behind for inspection.
func RunFleetShare(ctx context.Context, dir string, cfg FleetShareConfig) (*FleetShareReport, error) {
	fixtures := PaperTenants(cfg.tenants())
	delay := time.Duration(cfg.DelayMS * float64(time.Millisecond))

	// open boots one replica over the shared dir with fresh catalogs
	// and manual fleet ticks (the harness drives refresh explicitly, so
	// the run is deterministic). Per-append durability keeps the
	// sibling's visible lag at exactly one tick.
	open := func(id string) (*Server, []*ucqn.Catalog, error) {
		s, err := Open(Config{
			FleetDir:        dir,
			FleetID:         id,
			FleetManualTick: true,
			PersistOptions:  persist.Options{SyncEvery: 1},
		})
		if err != nil {
			return nil, nil, err
		}
		cats := make([]*ucqn.Catalog, 0, len(fixtures))
		for _, f := range fixtures {
			cat := f.Catalog()
			if delay > 0 {
				if cat, err = ucqn.DelayedCatalog(cat, delay); err != nil {
					return nil, nil, err
				}
			}
			if _, err := s.AddTenant(f.Name, f.Patterns, cat, ucqn.Budget{}); err != nil {
				return nil, nil, err
			}
			cats = append(cats, cat)
		}
		return s, cats, nil
	}

	rep := &FleetShareReport{
		Experiment: "E28",
		Config:     cfg,
		Sound:      true,
	}

	a, catsA, err := open("replica-a")
	if err != nil {
		return nil, err
	}
	cold, err := fleetSharePass(ctx, a, catsA, fixtures, rep)
	if err != nil {
		return nil, err
	}
	steady, err := fleetSharePass(ctx, a, catsA, fixtures, rep)
	if err != nil {
		return nil, err
	}

	// B joins the live fleet — A stays up (this is replication, not a
	// restart) — and refreshes the follower state once.
	b, catsB, err := open("replica-b")
	if err != nil {
		return nil, fmt.Errorf("join replica-b: %w", err)
	}
	b.Fleet().Tick(time.Now())
	warm, err := fleetSharePass(ctx, b, catsB, fixtures, rep)
	if err != nil {
		return nil, err
	}
	rep.RoleA = a.Fleet().Role().String()
	rep.RoleB = b.Fleet().Role().String()

	// Fleet-wide invalidation, issued on the reader: B re-derives at
	// once; A re-derives after absorbing B's inbox on its next tick.
	f := fixtures[0]
	gen, err := b.Invalidate(f.Name)
	if err != nil {
		return nil, fmt.Errorf("invalidate on reader: %w", err)
	}
	rep.InvalidationGen = gen
	reDerive := func(s *Server, cats []*ucqn.Catalog) (int, error) {
		before := totalCalls(cats)
		resp, err := s.Query(ctx, f.Name, f.Queries[0])
		if err != nil {
			return 0, err
		}
		if msg := checkSound(f, 0, resp); msg != "" {
			rep.Sound = false
		}
		return totalCalls(cats) - before, nil
	}
	if rep.PostInvalidationCallsB, err = reDerive(b, catsB); err != nil {
		return nil, err
	}
	a.Fleet().Tick(time.Now())
	if rep.PostInvalidationCallsA, err = reDerive(a, catsA); err != nil {
		return nil, err
	}

	if err := b.Close(); err != nil {
		return nil, fmt.Errorf("close replica-b: %w", err)
	}
	if err := a.Close(); err != nil {
		return nil, fmt.Errorf("close replica-a: %w", err)
	}

	rep.Queries = cold.queries
	rep.ColdCalls, rep.ColdP50MS, rep.ColdMeanMS = cold.calls, cold.p50MS, cold.meanMS
	rep.SteadyCalls, rep.SteadyP50MS, rep.SteadyMeanMS = steady.calls, steady.p50MS, steady.meanMS
	rep.WarmCalls, rep.WarmP50MS, rep.WarmMeanMS = warm.calls, warm.p50MS, warm.meanMS
	return rep, nil
}

// fleetSharePass serves every fixture query of every tenant once,
// verifying each response against the ground truth and flipping
// rep.Sound on any violation. Source traffic is the pass's delta of
// the catalogs' call meters.
func fleetSharePass(ctx context.Context, s *Server, cats []*ucqn.Catalog, fixtures []*TenantFixture, rep *FleetShareReport) (passStats, error) {
	var ps passStats
	var lats []time.Duration
	before := totalCalls(cats)
	for _, f := range fixtures {
		for qi, q := range f.Queries {
			start := time.Now()
			resp, err := s.Query(ctx, f.Name, q)
			if err != nil {
				return ps, fmt.Errorf("%s q%d: %w", f.Name, qi, err)
			}
			lats = append(lats, time.Since(start))
			ps.queries++
			if msg := checkSound(f, qi, resp); msg != "" {
				rep.Sound = false
			}
		}
	}
	ps.calls = totalCalls(cats) - before
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ps.p50MS = float64(pctlDur(lats, 50).Nanoseconds()) / 1e6
	ps.meanMS = float64(sum.Nanoseconds()) / 1e6 / float64(len(lats))
	return ps, nil
}

// validateE28 schema-checks a FleetShareReport document and enforces
// the acceptance invariants the artifact exists to witness: the
// second replica's warm pass matched the sibling's steady-state call
// count (the shared directory — not B's sources — serviced the pass),
// the reader-issued invalidation re-derived on both replicas, and
// every answer verified.
func validateE28(raw map[string]json.RawMessage) error {
	checks := []struct {
		key  string
		into any
	}{
		{"experiment", new(string)},
		{"config", new(FleetShareConfig)},
		{"queries", new(int)},
		{"cold_calls", new(int)},
		{"cold_p50_ms", new(float64)},
		{"cold_mean_ms", new(float64)},
		{"steady_calls", new(int)},
		{"steady_p50_ms", new(float64)},
		{"steady_mean_ms", new(float64)},
		{"warm_calls", new(int)},
		{"warm_p50_ms", new(float64)},
		{"warm_mean_ms", new(float64)},
		{"invalidation_gen", new(int64)},
		{"post_invalidation_calls_b", new(int)},
		{"post_invalidation_calls_a", new(int)},
		{"role_a", new(string)},
		{"role_b", new(string)},
		{"sound", new(bool)},
	}
	for _, c := range checks {
		v, ok := raw[c.key]
		if !ok {
			return fmt.Errorf("bench report: missing key %q", c.key)
		}
		if err := json.Unmarshal(v, c.into); err != nil {
			return fmt.Errorf("bench report: key %q: %w", c.key, err)
		}
	}
	var r FleetShareReport
	full, _ := json.Marshal(raw)
	if err := json.Unmarshal(full, &r); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if r.Queries <= 0 {
		return fmt.Errorf("bench report: queries = %d", r.Queries)
	}
	if !r.Sound {
		return fmt.Errorf("bench report: sound = false")
	}
	if r.ColdCalls <= 0 {
		return fmt.Errorf("bench report: cold_calls = %d, want > 0", r.ColdCalls)
	}
	if r.WarmCalls > r.SteadyCalls {
		return fmt.Errorf("bench report: replica B's warm_calls = %d did not reach the sibling steady state %d",
			r.WarmCalls, r.SteadyCalls)
	}
	if r.WarmCalls >= r.ColdCalls {
		return fmt.Errorf("bench report: warm_calls = %d, want < cold %d", r.WarmCalls, r.ColdCalls)
	}
	if r.RoleA != "writer" || r.RoleB != "reader" {
		return fmt.Errorf("bench report: roles = %s/%s, want writer/reader", r.RoleA, r.RoleB)
	}
	if r.InvalidationGen <= 0 {
		return fmt.Errorf("bench report: invalidation_gen = %d, want > 0", r.InvalidationGen)
	}
	if r.PostInvalidationCallsB <= 0 || r.PostInvalidationCallsA <= 0 {
		return fmt.Errorf("bench report: post-invalidation calls B=%d A=%d, want both > 0 (a replica served a tombstoned answer)",
			r.PostInvalidationCallsB, r.PostInvalidationCallsA)
	}
	// As in E26, the per-pass median sits in the cache-hit noise floor;
	// the mean is the enforceable contrast.
	if r.WarmMeanMS >= r.ColdMeanMS {
		return fmt.Errorf("bench report: warm mean %.3fms did not drop below cold %.3fms",
			r.WarmMeanMS, r.ColdMeanMS)
	}
	return nil
}
