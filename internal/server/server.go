// Package server is the multi-tenant serving layer over the ucqn
// facade: an HTTP daemon (cmd/ucqnd) exposing Exec over the wire with
// per-tenant catalogs and quotas, admission control with queue-depth
// shedding, and one semantic query cache shared across tenants.
//
// The overload contract follows the paper's ANSWER* reading: a request
// the server cannot afford to evaluate is not refused with a 503 — it
// is executed in shed mode (a per-query budget that admits no source
// calls), which degrades it to the certified underestimate covered by
// the answer cache, with the Incompleteness report serialized into the
// response instead of an error. Every 200 is sound; "complete" says
// whether it is also exact.
//
// Tenant isolation rests on two invariants of the underlying runtime
// (see DESIGN.md): answer-cache entries are keyed by the registered
// monotonic catalog ID (never a recycled pointer), and cross-tenant
// reuse of answers requires proven query equivalence plus an identical
// catalog fingerprint. Each tenant owns its catalog, so one tenant's
// rows can never serve another's query.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	ucqn "repro"
	"repro/internal/engine"
	"repro/internal/qcache"
	"repro/internal/qcache/fleet"
	"repro/internal/qcache/persist"
)

// Config configures a Server. The zero value serves with GOMAXPROCS
// execution slots, a queue of four waiters per slot, a 25ms queue wait,
// no default quota, and default cache options.
type Config struct {
	// MaxConcurrent is the number of queries evaluated simultaneously;
	// 0 means GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue is how many admitted requests may wait for a slot before
	// further arrivals shed; 0 means 4×MaxConcurrent.
	MaxQueue int
	// QueueWait bounds how long an admitted request waits for a slot
	// before it sheds; 0 means 25ms.
	QueueWait time.Duration
	// DefaultQuota is the per-request source-call budget applied to
	// tenants registered without their own. Zero means unlimited.
	DefaultQuota ucqn.Budget
	// Cache configures the shared cross-tenant query cache.
	Cache ucqn.QueryCacheOptions
	// PersistDir, when non-empty, backs the shared query cache with the
	// crash-safe persistence log in that directory: answer entries
	// survive restarts (warm-loaded under the same bounds), recovery
	// tolerates torn or corrupt files by dropping exactly the
	// unverifiable records, and /v1/invalidate tombstones persisted
	// entries so a restart cannot resurrect them. Construct the server
	// with Open (not New) to use it, and Close it on shutdown so the
	// final fsync batch is durable. Tenant names are the persistence
	// labels: a tenant's answers warm-load only for a tenant of the same
	// name.
	PersistDir string
	// PersistOptions tunes the persistence log under PersistDir or
	// FleetDir (zero value = production defaults). Tests inject a
	// FaultFS or a virtual clock here.
	PersistOptions persist.Options
	// FleetDir, when non-empty, joins the answer cache to a *shared*
	// persistence directory as one replica of a cache fleet (mutually
	// exclusive with PersistDir): one replica at a time — the holder of
	// the TTL'd writer lease — owns the log, the others follow the
	// published state at the poll interval and warm-start from answers
	// any sibling paid for. Invalidations fan out fleet-wide within one
	// poll interval. See internal/qcache/fleet.
	FleetDir string
	// FleetID names this replica in the fleet (required with FleetDir;
	// must be unique across replicas and stable across restarts).
	FleetID string
	// FleetTTL and FleetPoll are the lease TTL and the poll/renewal
	// interval (defaults per fleet.Options).
	FleetTTL  time.Duration
	FleetPoll time.Duration
	// FleetManualTick disables the background ticker when set (tests
	// drive Fleet().Tick with a virtual clock).
	FleetManualTick bool
}

func (c Config) maxConcurrent() int {
	if c.MaxConcurrent > 0 {
		return c.MaxConcurrent
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) maxQueue() int {
	if c.MaxQueue > 0 {
		return c.MaxQueue
	}
	return 4 * c.maxConcurrent()
}

func (c Config) queueWait() time.Duration {
	if c.QueueWait > 0 {
		return c.QueueWait
	}
	return 25 * time.Millisecond
}

// Tenant is one registered tenant: its catalog, declared patterns, and
// per-request quota, plus cumulative serving counters.
type Tenant struct {
	name  string
	ps    *ucqn.PatternSet
	cat   *ucqn.Catalog
	quota ucqn.Budget

	requests atomic.Int64
	shed     atomic.Int64
	degraded atomic.Int64
	errors   atomic.Int64
	calls    atomic.Int64 // source-call budget spent across requests
}

// Catalog returns the tenant's catalog.
func (t *Tenant) Catalog() *ucqn.Catalog { return t.cat }

// Patterns returns the tenant's declared access patterns.
func (t *Tenant) Patterns() *ucqn.PatternSet { return t.ps }

// Server serves Exec over HTTP for a set of tenants. Construct with
// New, register tenants with AddTenant, and mount Handler.
type Server struct {
	cfg   Config
	qc    *ucqn.QueryCache
	fleet *fleet.Node // nil unless Config.FleetDir was set
	slots chan struct{}

	queued atomic.Int64
	sheds  atomic.Int64

	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// New returns a server with the given configuration and a fresh shared
// in-memory query cache. Config.PersistDir is ignored here — use Open
// for a persistence-backed server.
func New(cfg Config) *Server {
	return &Server{
		cfg:     cfg,
		qc:      ucqn.NewQueryCache(cfg.Cache),
		slots:   make(chan struct{}, cfg.maxConcurrent()),
		tenants: map[string]*Tenant{},
	}
}

// Open is New plus persistence: when Config.PersistDir is set, the
// shared query cache is backed by the crash-safe log in that directory
// and whatever answer entries survived a previous process are
// warm-loaded on each tenant's first query. Each Open owns its log
// instance (one writer per server); call Close on shutdown. The only
// errors are real filesystem failures — corrupt or torn on-disk state
// recovers to a cold cache, never a failed start.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	switch {
	case cfg.FleetDir != "" && cfg.PersistDir != "":
		return nil, errors.New("server: FleetDir and PersistDir are mutually exclusive")
	case cfg.FleetDir != "":
		qc, node, err := qcache.OpenFleet(cfg.FleetDir, cfg.Cache, fleet.Options{
			ID:         cfg.FleetID,
			TTL:        cfg.FleetTTL,
			Poll:       cfg.FleetPoll,
			FS:         cfg.PersistOptions.FS,
			Now:        cfg.PersistOptions.Now,
			Log:        cfg.PersistOptions,
			Background: !cfg.FleetManualTick,
		})
		if err != nil {
			return nil, err
		}
		s.qc, s.fleet = qc, node
	case cfg.PersistDir != "":
		qc, _, err := qcache.OpenPersistent(cfg.PersistDir, cfg.Cache, cfg.PersistOptions)
		if err != nil {
			return nil, err
		}
		s.qc = qc
	}
	return s, nil
}

// Fleet returns the server's fleet node (nil unless Config.FleetDir
// was set) — for stats, role inspection, and manual ticking in tests.
func (s *Server) Fleet() *fleet.Node { return s.fleet }

// Close flushes and closes the persistence log (no-op for an in-memory
// server). The graceful-shutdown path should call it after draining
// requests so every cached answer appended since the last fsync batch
// is durable for the next start.
func (s *Server) Close() error {
	return s.qc.ClosePersist()
}

// Cache returns the shared cross-tenant query cache.
func (s *Server) Cache() *ucqn.QueryCache { return s.qc }

// AddTenant registers a tenant with its own catalog and patterns. A
// zero quota inherits Config.DefaultQuota. Registering an existing name
// is an error.
func (s *Server) AddTenant(name string, ps *ucqn.PatternSet, cat *ucqn.Catalog, quota ucqn.Budget) (*Tenant, error) {
	if name == "" {
		return nil, errors.New("server: tenant name must be non-empty")
	}
	if ps == nil || cat == nil {
		return nil, errors.New("server: tenant needs patterns and a catalog")
	}
	if quota == (ucqn.Budget{}) {
		quota = s.cfg.DefaultQuota
	}
	t := &Tenant{name: name, ps: ps, cat: cat, quota: quota}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[name]; ok {
		return nil, fmt.Errorf("server: tenant %q already registered", name)
	}
	if s.qc.Persist() != nil {
		// The tenant name is the catalog's stable identity on disk: a
		// restarted server warm-loads the tenant's answers by name.
		cat.SetPersistentID(name)
	}
	s.tenants[name] = t
	return t, nil
}

// Tenant returns the named tenant, or nil.
func (s *Server) Tenant(name string) *Tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tenants[name]
}

// Invalidate bumps the named tenant's catalog generation: its cached
// answers stop matching and are re-derived from the sources on the next
// query. Other tenants' entries are untouched. On a persistence-backed
// server this also tombstones the tenant's persisted entries (the
// bumped generation is appended to the log), so a later restart cannot
// resurrect the invalidated answers; on a fleet replica the tombstone
// additionally fans out to every sibling within one poll interval. The
// returned generation is the invalidation's watermark: any response
// whose Gen is at least it was computed after the invalidation took
// local effect.
func (s *Server) Invalidate(name string) (int64, error) {
	t := s.Tenant(name)
	if t == nil {
		return 0, fmt.Errorf("server: unknown tenant %q", name)
	}
	s.qc.InvalidateCatalog(t.cat)
	return t.cat.Generation(), nil
}

// Request is the wire shape of POST /v1/query.
type Request struct {
	Tenant string `json:"tenant"`
	Query  string `json:"query"`
}

// FailedRule is one dropped disjunct of a degraded answer.
type FailedRule struct {
	Rule   int    `json:"rule"` // 1-based index in the executed union
	Class  string `json:"class"`
	Source string `json:"source,omitempty"`
	Error  string `json:"error"`
}

// IncompletenessReport serializes an engine Incompleteness for the
// wire: how many disjuncts survived and why the rest were dropped.
type IncompletenessReport struct {
	RulesTotal    int          `json:"rules_total"`
	RulesSurvived int          `json:"rules_survived"`
	Failed        []FailedRule `json:"failed,omitempty"`
}

// Response is the wire shape of one answered query. Answers are always
// sound (every row is a certain answer); Complete says whether they are
// also exact, and Incompleteness reports what was dropped when not.
// Shed marks answers produced in overload shed mode (no source calls;
// the certified underestimate covered by the cache).
type Response struct {
	Tenant         string                `json:"tenant"`
	Answers        [][]string            `json:"answers"`
	Complete       bool                  `json:"complete"`
	Shed           bool                  `json:"shed"`
	Degraded       bool                  `json:"degraded"`
	Incompleteness *IncompletenessReport `json:"incompleteness,omitempty"`
	// Calls is the source-call attempts this request issued (0 when
	// served entirely from cache or shed).
	Calls     int     `json:"calls"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Gen is the tenant's catalog generation the answers were computed
	// under, read before evaluation began. Clients racing an
	// invalidation compare it with the generation /v1/invalidate
	// returned: Gen >= that watermark proves the response cannot carry
	// rows cached before the invalidation.
	Gen int64 `json:"gen"`
}

// Header names carrying the completeness contract alongside the body,
// so clients can triage without decoding it.
const (
	HeaderComplete       = "X-UCQN-Complete"       // "true" | "false"
	HeaderShed           = "X-UCQN-Shed"           // "true" | "false"
	HeaderIncompleteness = "X-UCQN-Incompleteness" // compact report, e.g. "2/3 disjuncts; classes=budget-exhausted"
)

// admit reserves an execution slot. It returns a release function when
// the request may run at full budget, or shed=true when the server is
// past its queue depth (or the wait timed out) and the request must
// degrade to cache-only evaluation.
func (s *Server) admit(ctx context.Context) (release func(), shed bool) {
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, false
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.maxQueue()) {
		s.queued.Add(-1)
		return nil, true
	}
	defer s.queued.Add(-1)
	timer := time.NewTimer(s.cfg.queueWait())
	defer timer.Stop()
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, false
	case <-timer.C:
		return nil, true
	case <-ctx.Done():
		return nil, true
	}
}

// Query answers one tenant query, applying admission control, the
// tenant quota, and the shared cache. It is the HTTP handler's core and
// is also callable directly (tests, in-process loadgen).
func (s *Server) Query(ctx context.Context, tenant, query string) (*Response, error) {
	t := s.Tenant(tenant)
	if t == nil {
		return nil, fmt.Errorf("server: unknown tenant %q", tenant)
	}
	q, err := ucqn.ParseQuery(query)
	if err != nil {
		return nil, fmt.Errorf("server: parse query: %w", err)
	}
	t.requests.Add(1)
	// Read the generation before evaluation: a response claims only the
	// invalidation state it is sure of having seen (see Response.Gen).
	gen := t.cat.Generation()

	start := time.Now()
	release, shed := s.admit(ctx)
	opts := []ucqn.ExecOption{
		ucqn.WithQueryCache(s.qc),
		ucqn.WithPartialResults(),
		ucqn.WithProfile(),
	}
	if shed {
		s.sheds.Add(1)
		t.shed.Add(1)
		// Overload: no source calls are admitted. Cached disjuncts still
		// answer; the rest degrade to budget-exhausted. The response is
		// the certified underestimate, never a 503.
		opts = append(opts, ucqn.WithBudget(ucqn.Budget{MaxCalls: -1}))
	} else {
		defer release()
		if t.quota != (ucqn.Budget{}) {
			opts = append(opts, ucqn.WithBudget(t.quota))
		}
	}
	res, err := ucqn.Exec(ctx, q, t.ps, t.cat, opts...)
	if err != nil {
		t.errors.Add(1)
		return nil, err
	}
	rel, err := res.Rel()
	if err != nil {
		t.errors.Add(1)
		return nil, err
	}

	resp := &Response{
		Tenant:    tenant,
		Answers:   wireRows(rel),
		Complete:  true,
		Shed:      shed,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Gen:       gen,
	}
	if prof, ok := res.Profile(); ok {
		resp.Calls = prof.Calls.Total
		t.calls.Add(int64(prof.Calls.Total))
	}
	if inc, ok := res.Incompleteness(); ok {
		resp.Incompleteness = wireIncompleteness(inc)
		if !inc.Complete() {
			resp.Complete = false
			resp.Degraded = true
			t.degraded.Add(1)
		}
	}
	return resp, nil
}

// wireRows flattens a relation for the wire. Underestimates carry no
// nulls (they are answers of surviving disjuncts); a null from other
// execution modes serializes as the string "null".
func wireRows(rel *ucqn.Rel) [][]string {
	out := make([][]string, 0, rel.Len())
	for _, row := range rel.Sorted() {
		r := make([]string, len(row))
		for i, v := range row {
			if v.Null {
				r[i] = "null"
			} else {
				r[i] = v.S
			}
		}
		out = append(out, r)
	}
	return out
}

func wireIncompleteness(inc ucqn.Incompleteness) *IncompletenessReport {
	rep := &IncompletenessReport{RulesTotal: inc.RulesTotal, RulesSurvived: inc.RulesSurvived}
	for _, f := range inc.Failed {
		fr := FailedRule{Rule: f.RuleIndex + 1, Class: string(f.Class), Source: f.Source}
		if f.Err != nil {
			fr.Error = f.Err.Error()
		}
		rep.Failed = append(rep.Failed, fr)
	}
	return rep
}

// compactIncompleteness renders the report for the response header: one
// line, survivors out of total plus the distinct failure classes.
func compactIncompleteness(rep *IncompletenessReport) string {
	classes := []string{}
	seen := map[string]bool{}
	for _, f := range rep.Failed {
		if !seen[f.Class] {
			seen[f.Class] = true
			classes = append(classes, f.Class)
		}
	}
	sort.Strings(classes)
	out := fmt.Sprintf("%d/%d disjuncts", rep.RulesSurvived, rep.RulesTotal)
	if len(classes) > 0 {
		out += "; classes=" + strings.Join(classes, ",")
	}
	return out
}

// TenantStats is one tenant's cumulative serving counters.
type TenantStats struct {
	Requests int64 `json:"requests"`
	Shed     int64 `json:"shed"`
	Degraded int64 `json:"degraded"`
	Errors   int64 `json:"errors"`
	Calls    int64 `json:"calls"`
}

// InternerStats is the process-wide value interner's occupancy: how
// many distinct values the columnar evaluator has interned and their
// approximate resident bytes (monotonic gauges — the table is
// append-only for the process lifetime), plus the cap's traffic when
// one is configured: how many intern attempts were refused (and spilled
// to execution-local tables) and whether the cap is currently reached.
type InternerStats struct {
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	CapHits int64 `json:"cap_hits"`
	Capped  bool  `json:"capped"`
}

// PersistStats reports the persistence layer's health (zero value for
// an in-memory server).
type PersistStats struct {
	// Enabled is true when the cache is persistence-backed.
	Enabled bool `json:"enabled"`
	// Dir is the persistence directory.
	Dir string `json:"dir,omitempty"`
	// Broken carries the first unrecoverable write failure, after which
	// the server keeps running memory-only ("" while healthy).
	Broken string `json:"broken,omitempty"`
}

// Stats reports the server's counters per tenant plus the shared cache,
// the interner occupancy, the persistence health, and — on a fleet
// replica — the node's role, lease, and staleness bound.
type Stats struct {
	Tenants  map[string]TenantStats `json:"tenants"`
	Shed     int64                  `json:"shed"`
	Cache    ucqn.QueryCacheStats   `json:"cache"`
	Interner InternerStats          `json:"interner"`
	Persist  PersistStats           `json:"persist"`
	Fleet    *fleet.Stats           `json:"fleet,omitempty"`
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	out := Stats{Tenants: map[string]TenantStats{}, Shed: s.sheds.Load(), Cache: s.qc.Stats()}
	out.Interner.Entries, out.Interner.Bytes = engine.InternerOccupancy()
	out.Interner.CapHits, out.Interner.Capped = engine.InternerCapStats()
	if lg := s.qc.Persist(); lg != nil {
		out.Persist.Enabled = true
		out.Persist.Dir = lg.Dir()
		if err := lg.Err(); err != nil {
			out.Persist.Broken = err.Error()
		}
	}
	if s.fleet != nil {
		fs := s.fleet.Stats()
		out.Fleet = &fs
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, t := range s.tenants {
		out.Tenants[name] = TenantStats{
			Requests: t.requests.Load(),
			Shed:     t.shed.Load(),
			Degraded: t.degraded.Load(),
			Errors:   t.errors.Load(),
			Calls:    t.calls.Load(),
		}
	}
	return out
}

// Handler returns the HTTP API:
//
//	POST /v1/query      {"tenant": ..., "query": ...} → Response
//	POST /v1/invalidate {"tenant": ...}               → {"tenant": ..., "gen": N}
//	GET  /v1/stats                                    → Stats
//	GET  /v1/healthz                                  → 200 "ok ..." | "degraded ..."
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/invalidate", s.handleInvalidate)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	return mux
}

// handleHealthz reports liveness plus the durability and fleet state.
// The status is always 200 — a replica whose persistence went inert
// still serves sound answers from memory, so it must not be pulled
// from rotation — but the first word of the body flips from "ok" to
// "degraded" and names the reason, giving operators the signal a
// silent inert log never did. On a fleet replica the body also carries
// the role and lease age.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, parts := "ok", []string(nil)
	if lg := s.qc.Persist(); lg != nil {
		if err := lg.Err(); err != nil {
			status = "degraded"
			parts = append(parts, "persist="+strconv.Quote(err.Error()))
		}
	}
	if s.fleet != nil {
		fs := s.fleet.Stats()
		parts = append(parts,
			"role="+fs.Role,
			fmt.Sprintf("lease_age_ms=%d", fs.LeaseAgeMS),
			fmt.Sprintf("staleness_bound_ms=%d", fs.StalenessBoundMS))
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, strings.Join(append([]string{status}, parts...), " "))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := s.Query(r.Context(), req.Tenant, req.Query)
	if err != nil {
		status := http.StatusInternalServerError
		if s.Tenant(req.Tenant) == nil {
			status = http.StatusNotFound
		} else if strings.Contains(err.Error(), "parse query") {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(HeaderComplete, strconv.FormatBool(resp.Complete))
	w.Header().Set(HeaderShed, strconv.FormatBool(resp.Shed))
	if resp.Incompleteness != nil && !resp.Complete {
		w.Header().Set(HeaderIncompleteness, compactIncompleteness(resp.Incompleteness))
	}
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		return // client went away mid-body; nothing to salvage
	}
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	gen, err := s.Invalidate(req.Tenant)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// The body is the invalidation watermark: responses carrying
	// Gen >= gen were computed after this invalidation took effect
	// (see Response.Gen), which is what lets a client assert it never
	// saw a stale row.
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Tenant string `json:"tenant"`
		Gen    int64  `json:"gen"`
	}{req.Tenant, gen})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Stats()); err != nil {
		return
	}
}
