package server

// The multi-tenant hammer: concurrent Execs across three tenants
// sharing ONE query cache, with one tenant's catalog replica-backed,
// run under -race. Every tenant submits the *same query texts* over
// *different data* — the worst case for cache aliasing — so any
// cross-tenant answer reuse without proven equivalence (or any catalog
// identity collision) surfaces as a wrong answer. Budget accounting is
// asserted exactly per request: BudgetSpent must equal the profile's
// launched calls and never exceed the quota.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	ucqn "repro"
)

func TestMultiTenantHammer(t *testing.T) {
	const tenants = 3
	fixtures := PaperTenants(tenants)
	qc := ucqn.NewQueryCache(ucqn.QueryCacheOptions{})
	quota := ucqn.Budget{MaxCalls: 50}

	// Tenant 0 is replica-backed: two same-data catalogs zipped into
	// replica sets, exercising the replicated call path under the same
	// shared cache.
	cat0, _, err := ucqn.ReplicaCatalog(ucqn.ReplicaConfig{}, fixtures[0].Catalog(), fixtures[0].Catalog())
	if err != nil {
		t.Fatal(err)
	}
	cats := []*ucqn.Catalog{cat0, fixtures[1].Catalog(), fixtures[2].Catalog()}

	const workersPerTenant = 4
	const requestsPerWorker = 25
	var tenantCalls [tenants]atomic.Int64
	var wg sync.WaitGroup
	ctx := context.Background()
	for ti := 0; ti < tenants; ti++ {
		for w := 0; w < workersPerTenant; w++ {
			wg.Add(1)
			go func(ti, w int) {
				defer wg.Done()
				f := fixtures[ti]
				rng := rand.New(rand.NewSource(int64(ti)*101 + int64(w)))
				for i := 0; i < requestsPerWorker; i++ {
					qi := rng.Intn(len(f.Queries))
					q, err := ucqn.ParseQuery(f.Queries[qi])
					if err != nil {
						t.Errorf("parse: %v", err)
						return
					}
					res, err := ucqn.Exec(ctx, q, f.Patterns, cats[ti],
						ucqn.WithQueryCache(qc),
						ucqn.WithPartialResults(),
						ucqn.WithProfile(),
						ucqn.WithBudget(quota),
					)
					if err != nil {
						t.Errorf("tenant %d q%d: %v", ti, qi, err)
						return
					}
					rel, err := res.Rel()
					if err != nil {
						t.Errorf("tenant %d q%d: %v", ti, qi, err)
						return
					}
					inc, ok := res.Incompleteness()
					if !ok {
						t.Errorf("tenant %d q%d: no incompleteness report in partial mode", ti, qi)
						return
					}
					expected := f.Expected[qi]
					if inc.Complete() {
						// Isolation: a complete answer must be exactly this
						// tenant's ground truth. A leaked sibling entry would
						// surface foreign rows here (the constants carry the
						// tenant index).
						if !rel.Equal(expected) {
							t.Errorf("tenant %d q%d: answers != ground truth:\n got %v\nwant %v", ti, qi, rel, expected)
							return
						}
					} else {
						for _, row := range rel.Rows() {
							if !expected.Contains(row) {
								t.Errorf("tenant %d q%d: degraded answer carries foreign row %v", ti, qi, row)
								return
							}
						}
					}
					prof, ok := res.Profile()
					if !ok {
						t.Errorf("tenant %d q%d: no profile", ti, qi)
						return
					}
					// Exact accounting: the per-request budget meter equals
					// the profile's launched calls (no drops, no double
					// counts) and respects the quota.
					if prof.Calls.BudgetSpent != prof.TotalCalls() {
						t.Errorf("tenant %d q%d: BudgetSpent = %d, profile calls = %d", ti, qi, prof.Calls.BudgetSpent, prof.TotalCalls())
						return
					}
					if prof.Calls.BudgetSpent > quota.MaxCalls {
						t.Errorf("tenant %d q%d: spent %d calls over quota %d", ti, qi, prof.Calls.BudgetSpent, quota.MaxCalls)
						return
					}
					tenantCalls[ti].Add(int64(prof.Calls.BudgetSpent))
				}
			}(ti, w)
		}
	}
	wg.Wait()

	// Per-tenant totals reconcile with the catalogs' own meters: calls
	// charged to a tenant's budget all hit that tenant's sources (the
	// replica-backed catalog meters through its replica sets).
	for ti, cat := range cats {
		spent := tenantCalls[ti].Load()
		meter := int64(cat.TotalStats().Calls)
		if meter > spent {
			t.Errorf("tenant %d: catalog saw %d calls but budgets paid for %d", ti, meter, spent)
		}
		if spent > 0 && meter == 0 {
			t.Errorf("tenant %d: budgets paid %d calls but the catalog never saw one", ti, spent)
		}
	}
	if st := qc.Stats(); st.PlanHits == 0 {
		t.Error("shared cache never served a plan hit across the hammer")
	}
}
