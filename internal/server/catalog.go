package server

// Mounting external-source catalogs. A catalog config file (see
// internal/adapter: one or more tenants, each a list of backend specs)
// maps directly onto the multi-tenant server: every tenant in the
// config becomes a registered tenant whose relations live behind SQL or
// HTTP adapters, with the access-pattern set derived from the opened
// sources. cmd/ucqnd feeds its -catalog flag through here.

import (
	"fmt"

	ucqn "repro"
	"repro/internal/adapter"
)

// MountCatalogConfig opens every tenant in cfg and registers it on s.
// Each tenant's sources are opened through the adapter registry, so the
// schemes in the config decide the backends. A zero quota inherits the
// server default. On error no partial tenant set is rolled back — the
// caller should treat the server as tainted and rebuild it.
func MountCatalogConfig(s *Server, cfg *adapter.Config, quota ucqn.Budget) error {
	if cfg == nil {
		return fmt.Errorf("server: nil catalog config")
	}
	for _, tc := range cfg.Tenants {
		cat, err := tc.Open()
		if err != nil {
			return fmt.Errorf("server: tenant %q: %w", tc.Tenant, err)
		}
		if _, err := s.AddTenant(tc.Tenant, cat.PatternSet(), cat, quota); err != nil {
			return err
		}
	}
	return nil
}
