package server

// Shared multi-tenant fixture: every tenant serves the same schema and
// query mix (the worst case for cache aliasing — identical query texts
// over distinct data), with per-tenant rows so cross-tenant leakage is
// observable as wrong answers. The server tests, the hammer, and the
// load generator (cmd/ucqnload) all build on it.

import (
	"context"
	"fmt"

	ucqn "repro"
	"repro/internal/workload"
)

// FixturePatterns is the access-pattern declaration every fixture
// tenant serves under: R is freely scannable, S requires its first
// column bound — the book-store shape of the paper's running examples.
const FixturePatterns = `R^oo S^io L^o`

// TenantFixture is one simulated tenant: its data, its catalog, the
// query mix (Zipf-ranked: index 0 is the hottest), and the ground-truth
// answer per query computed naively over the instance.
type TenantFixture struct {
	Name     string
	Patterns *ucqn.PatternSet
	Instance *ucqn.Instance
	Queries  []string
	Expected []*ucqn.Rel
}

// Catalog builds a fresh limited-access catalog over the tenant's
// instance. Each call returns a new catalog (fresh identity, fresh
// meters); a server tenant should be registered with exactly one.
func (f *TenantFixture) Catalog() *ucqn.Catalog {
	return f.Instance.MustCatalog(f.Patterns)
}

// fixtureQueries is the mix every tenant serves, hottest first. The
// α-renamed variants resubmit the same semantic query under different
// variable names, so a healthy plan cache collapses them; the negation
// rule keeps the UCQ¬ shape of the paper in the mix.
func fixtureQueries() []string {
	base := []string{
		`Q(x, y) :- R(x, y).`,
		`Q(x, y) :- R(x, z), S(z, y).`,
		`Q(x, y) :- R(x, y), not L(x).`,
		`Q(x, y) :- R(x, y). Q(x, y) :- R(x, z), S(z, y).`,
	}
	out := append([]string(nil), base...)
	for i, src := range base {
		u := ucqn.MustParseQuery(src)
		out = append(out, workload.AlphaRename(u, fmt.Sprintf("v%d", i)).String())
	}
	return out
}

// PaperTenants builds n tenants named tenant-0..tenant-n-1, each with
// its own rows (tenant i's constants carry an i suffix) over the shared
// schema, plus naive ground truth for every query in the mix.
func PaperTenants(n int) []*TenantFixture {
	ps := ucqn.MustParsePatterns(FixturePatterns)
	queries := fixtureQueries()
	out := make([]*TenantFixture, 0, n)
	for i := 0; i < n; i++ {
		in := ucqn.NewInstance()
		for k := 0; k < 6; k++ {
			a := fmt.Sprintf("a%d_%d", i, k)
			b := fmt.Sprintf("b%d_%d", i, k%3)
			in.MustAdd("R", a, b)
			in.MustAdd("S", b, fmt.Sprintf("c%d_%d", i, k%3))
		}
		// L blocks two of the R subjects for the negation rule.
		in.MustAdd("L", fmt.Sprintf("a%d_0", i))
		in.MustAdd("L", fmt.Sprintf("a%d_3", i))

		f := &TenantFixture{
			Name:     fmt.Sprintf("tenant-%d", i),
			Patterns: ps,
			Instance: in,
			Queries:  queries,
		}
		for _, src := range queries {
			res, err := ucqn.Exec(context.Background(), ucqn.MustParseQuery(src), nil, nil, ucqn.WithNaive(in))
			if err != nil {
				panic(fmt.Sprintf("server fixture: naive ground truth for %q: %v", src, err))
			}
			rel, err := res.Rel()
			if err != nil {
				panic(fmt.Sprintf("server fixture: naive ground truth for %q: %v", src, err))
			}
			f.Expected = append(f.Expected, rel)
		}
		out = append(out, f)
	}
	return out
}
