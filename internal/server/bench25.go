package server

// The E25 bench artifact (BENCH_E25.json): the columnar-vs-map
// evaluator comparison recorded by `paperbench -run E25 -bench-out`.
// It lives next to the E24 load report because ValidateBenchReport is
// the single schema gate for every committed BENCH_*.json: CI re-runs
// it on the artifacts so a drifting schema — or a regression in the
// invariants the artifact claims (identical calls, byte-identical
// answers, allocations below the map baseline) — fails the build.

import (
	"encoding/json"
	"fmt"
)

// ColumnarConfig is the E25 workload shape.
type ColumnarConfig struct {
	// BaseRows is the number of R facts seeding the join.
	BaseRows int `json:"base_rows"`
	// Fanout is the S multiplicity per join key.
	Fanout int `json:"fanout"`
}

// ColumnarReport is the E25 report. Every field is part of the schema
// checked by ValidateBenchReport.
type ColumnarReport struct {
	Experiment string         `json:"experiment"` // always "E25"
	Config     ColumnarConfig `json:"config"`
	// Rows is the binding count through the widest plan step.
	Rows int `json:"rows"`
	// Answers is the deduplicated answer count (identical under both
	// evaluators).
	Answers int `json:"answers"`
	// MapMS and ColumnarMS are best-of wall-clock times for one full
	// evaluation under each evaluator.
	MapMS      float64 `json:"map_ms"`
	ColumnarMS float64 `json:"columnar_ms"`
	// Speedup is MapMS / ColumnarMS.
	Speedup float64 `json:"speedup"`
	// MapCalls and ColumnarCalls are the per-evaluation source-call
	// counts; the evaluators must agree.
	MapCalls      int `json:"map_calls"`
	ColumnarCalls int `json:"columnar_calls"`
	// MapAllocsPerOp and ColumnarAllocsPerOp are heap allocations per
	// evaluation; BenchmarkE25Columnar gates against the map baseline.
	MapAllocsPerOp      float64 `json:"map_allocs_per_op"`
	ColumnarAllocsPerOp float64 `json:"columnar_allocs_per_op"`
	// ByteIdentical records that both evaluators produced the same rows
	// in the same order.
	ByteIdentical bool `json:"byte_identical"`
}

// validateE25 schema-checks a ColumnarReport document and enforces the
// acceptance invariants the artifact exists to witness.
func validateE25(raw map[string]json.RawMessage) error {
	checks := []struct {
		key  string
		into any
	}{
		{"experiment", new(string)},
		{"config", new(ColumnarConfig)},
		{"rows", new(int)},
		{"answers", new(int)},
		{"map_ms", new(float64)},
		{"columnar_ms", new(float64)},
		{"speedup", new(float64)},
		{"map_calls", new(int)},
		{"columnar_calls", new(int)},
		{"map_allocs_per_op", new(float64)},
		{"columnar_allocs_per_op", new(float64)},
		{"byte_identical", new(bool)},
	}
	for _, c := range checks {
		v, ok := raw[c.key]
		if !ok {
			return fmt.Errorf("bench report: missing key %q", c.key)
		}
		if err := json.Unmarshal(v, c.into); err != nil {
			return fmt.Errorf("bench report: key %q: %w", c.key, err)
		}
	}
	var r ColumnarReport
	full, _ := json.Marshal(raw)
	if err := json.Unmarshal(full, &r); err != nil {
		return fmt.Errorf("bench report: %w", err)
	}
	if r.Rows <= 0 {
		return fmt.Errorf("bench report: rows = %d", r.Rows)
	}
	if r.MapCalls != r.ColumnarCalls {
		return fmt.Errorf("bench report: source calls differ: map=%d columnar=%d", r.MapCalls, r.ColumnarCalls)
	}
	if !r.ByteIdentical {
		return fmt.Errorf("bench report: byte_identical = false")
	}
	if r.Speedup <= 1 {
		return fmt.Errorf("bench report: speedup = %.2f, want > 1", r.Speedup)
	}
	if r.ColumnarAllocsPerOp >= r.MapAllocsPerOp {
		return fmt.Errorf("bench report: columnar allocs/op %.0f did not drop below map %.0f",
			r.ColumnarAllocsPerOp, r.MapAllocsPerOp)
	}
	return nil
}
