package access

import (
	"fmt"
	"strings"

	"repro/internal/logic"
)

// AdornedLiteral is a body literal together with the access pattern chosen
// for it. A sequence of adorned literals is an execution plan fragment:
// executed left to right, each positive literal is a source call and each
// negated literal is a filter (footnote 4 of the paper: already-bound
// output slots are checked by post-filtering the call result).
type AdornedLiteral struct {
	Literal logic.Literal
	Pattern Pattern
}

// String renders the adorned literal, e.g. B^oio(i, a, t).
func (al AdornedLiteral) String() string {
	s := fmt.Sprintf("%s^%s(%s)", al.Literal.Atom.Pred, al.Pattern, joinTerms(al.Literal.Atom.Args))
	if al.Literal.Negated {
		return "not " + s
	}
	return s
}

func joinTerms(ts []logic.Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// AdornInOrder checks whether the body literals, in the given order, form
// an executable plan under the pattern set (Definition 3 of the paper):
// scanning left to right with a set of bound variables (constants are
// always bound),
//
//   - a positive literal needs some pattern whose input-slot variables are
//     all bound; its variables then all become bound;
//   - a negated literal needs all its variables bound already and at least
//     one pattern of the right arity to call the source as a filter.
//
// On success it returns the chosen adornments. The empty body (the query
// "true") is not executable.
func AdornInOrder(body []logic.Literal, ps *Set) ([]AdornedLiteral, bool) {
	return AdornInOrderPrefer(body, ps, PreferMostInputs)
}

// AdornStrategy selects among the usable patterns of a callable literal.
type AdornStrategy int

const (
	// PreferMostInputs pushes selections into the source: among usable
	// patterns, the one with the most input slots transfers the fewest
	// tuples. This is the default.
	PreferMostInputs AdornStrategy = iota
	// PreferFewestInputs asks for the widest retrieval; useful as an
	// ablation baseline and when answers will be cached and reused.
	PreferFewestInputs
)

// AdornInOrderPrefer is AdornInOrder with an explicit pattern-selection
// strategy. The strategy never changes which bodies are executable —
// only how much data the sources ship back.
func AdornInOrderPrefer(body []logic.Literal, ps *Set, strat AdornStrategy) ([]AdornedLiteral, bool) {
	if len(body) == 0 {
		return nil, false
	}
	bound := map[string]bool{}
	plan := make([]AdornedLiteral, 0, len(body))
	for _, l := range body {
		p, ok := adornOne(l, ps, bound, strat)
		if !ok {
			return nil, false
		}
		plan = append(plan, AdornedLiteral{Literal: l.Clone(), Pattern: p})
		for _, v := range l.Vars() {
			bound[v.Name] = true
		}
	}
	return plan, true
}

// adornOne picks a pattern for literal l given the bound variables, or
// reports that none works.
func adornOne(l logic.Literal, ps *Set, bound map[string]bool, strat AdornStrategy) (Pattern, bool) {
	if l.Negated {
		// A negated call can only filter: every variable must already be
		// bound, and the source must be callable at all (any pattern is
		// then usable: input slots are supplied; extra outputs are
		// post-filtered).
		for _, v := range l.Vars() {
			if !bound[v.Name] {
				return "", false
			}
		}
		var best Pattern
		found := false
		for _, p := range ps.Patterns(l.Atom.Pred) {
			if len(p) != len(l.Atom.Args) {
				continue
			}
			if !found || better(p, best, strat) {
				best, found = p, true
			}
		}
		return best, found
	}
	var best Pattern
	found := false
	for _, p := range ps.Patterns(l.Atom.Pred) {
		if len(p) != len(l.Atom.Args) {
			continue
		}
		usable := true
		for j, t := range l.Atom.Args {
			if p.Input(j) && t.IsVar() && !bound[t.Name] {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		if !found || better(p, best, strat) {
			best, found = p, true
		}
	}
	return best, found
}

func better(p, q Pattern, strat AdornStrategy) bool {
	if strat == PreferFewestInputs {
		return p.InputCount() < q.InputCount()
	}
	return p.InputCount() > q.InputCount()
}

// ExecutableCQ reports whether q, with its literal order as written, is
// executable under ps. The query "false" is vacuously executable
// (paper, Section 3); the query "true" is not.
func ExecutableCQ(q logic.CQ, ps *Set) bool {
	if q.False {
		return true
	}
	_, ok := AdornInOrder(q.Body, ps)
	return ok
}

// ExecutableUCQ reports whether every rule of u is executable as written.
func ExecutableUCQ(u logic.UCQ, ps *Set) bool {
	for _, r := range u.Rules {
		if !ExecutableCQ(r, ps) {
			return false
		}
	}
	return true
}
