package access

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/logic"
)

// genPattern is a quick.Generator for patterns of arity 1–4.
type genPattern struct {
	P Pattern
}

func (genPattern) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(4)
	w := make([]byte, n)
	for i := range w {
		if r.Intn(2) == 0 {
			w[i] = 'i'
		} else {
			w[i] = 'o'
		}
	}
	return reflect.ValueOf(genPattern{P: Pattern(w)})
}

func qc(t *testing.T, f any) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubsumptionIsAPreorder(t *testing.T) {
	qc(t, func(a genPattern) bool { return a.P.Subsumes(a.P) })
	qc(t, func(a, b, c genPattern) bool {
		// Transitivity on same-arity triples.
		if len(a.P) != len(b.P) || len(b.P) != len(c.P) {
			return true
		}
		if a.P.Subsumes(b.P) && b.P.Subsumes(c.P) {
			return a.P.Subsumes(c.P)
		}
		return true
	})
}

func TestQuickAllOutputSubsumesEverything(t *testing.T) {
	qc(t, func(a genPattern) bool {
		return AllOutputPattern(a.P.Arity()).Subsumes(a.P)
	})
}

func TestQuickSubsumptionImpliesCallability(t *testing.T) {
	// If p subsumes q and an atom is callable through a set containing
	// only q, it is also callable through a set containing only p.
	qc(t, func(a, b genPattern, boundMask uint8) bool {
		if len(a.P) != len(b.P) || !a.P.Subsumes(b.P) {
			return true
		}
		args := make([]logic.Term, a.P.Arity())
		bound := map[string]bool{}
		for i := range args {
			name := string(rune('a' + i))
			args[i] = logic.Var(name)
			if boundMask&(1<<i) != 0 {
				bound[name] = true
			}
		}
		atom := logic.NewAtom("R", args...)
		withQ := NewSet()
		_ = withQ.Add("R", b.P)
		withP := NewSet()
		_ = withP.Add("R", a.P)
		if _, ok := withQ.Callable(atom, bound); ok {
			_, ok2 := withP.Callable(atom, bound)
			return ok2
		}
		return true
	})
}

func TestQuickCallabilityIsMonotoneInBindings(t *testing.T) {
	qc(t, func(a genPattern, boundMask uint8) bool {
		args := make([]logic.Term, a.P.Arity())
		smaller := map[string]bool{}
		larger := map[string]bool{}
		for i := range args {
			name := string(rune('a' + i))
			args[i] = logic.Var(name)
			if boundMask&(1<<i) != 0 {
				smaller[name] = true
			}
			larger[name] = true
		}
		atom := logic.NewAtom("R", args...)
		s := NewSet()
		_ = s.Add("R", a.P)
		if _, ok := s.Callable(atom, smaller); ok {
			_, ok2 := s.Callable(atom, larger)
			return ok2
		}
		return true
	})
}

func TestQuickMinimizePreservesCallability(t *testing.T) {
	qc(t, func(a, b, c genPattern, boundMask uint8) bool {
		// Force equal arity by truncating to the shortest.
		n := len(a.P)
		if len(b.P) < n {
			n = len(b.P)
		}
		if len(c.P) < n {
			n = len(c.P)
		}
		s := NewSet()
		_ = s.Add("R", a.P[:n])
		_ = s.Add("R", b.P[:n])
		_ = s.Add("R", c.P[:n])
		m := s.Minimize()
		args := make([]logic.Term, n)
		bound := map[string]bool{}
		for i := range args {
			name := string(rune('a' + i))
			args[i] = logic.Var(name)
			if boundMask&(1<<i) != 0 {
				bound[name] = true
			}
		}
		atom := logic.NewAtom("R", args...)
		_, okS := s.Callable(atom, bound)
		_, okM := m.Callable(atom, bound)
		return okS == okM
	})
}
